// Ablations for the design choices DESIGN.md §6 calls out:
//   A. matching engine: min-cost flow vs greedy earliest-greenest-fit
//      (solution quality and planning cost);
//   B. activation hysteresis: dwell 0 / 2 / 6 slots (tracking lag vs
//      spin cycling);
//   C. forecast-noise sensitivity: relative error 0–30%;
//   D. fidelity gap: slot-level vs event-level energy agreement.

#include "bench_support.hpp"

using namespace gm;

namespace {

core::ExperimentConfig base() {
  auto config = bench::canonical_config();
  config.panel_area_m2 = bench::kInsufficientPanelM2;
  config.battery = energy::BatteryConfig::lithium_ion(kwh_to_j(40));
  config.policy.kind = core::PolicyKind::kGreenMatch;
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  gm::bench::ExhibitReporter reporter("ablation_design_choices", argc, argv);
  bench::print_header("Ablations", "design-choice studies (DESIGN.md §6)");

  {
    std::cout << "A. matching engine (40 kWh battery):\n";
    TextTable t({"solver", "brown kWh", "misses", "plan time ms",
                 "migrations"});
    struct Solver {
      std::string label;
      core::PolicyKind kind;
      bool battery_aware;
    };
    for (const auto& solver :
         {Solver{"flow", core::PolicyKind::kGreenMatch, false},
          Solver{"flow+battery-chain", core::PolicyKind::kGreenMatch,
                 true},
          Solver{"greedy", core::PolicyKind::kGreenMatchGreedy, false}}) {
      auto config = base();
      config.policy.kind = solver.kind;
      config.policy.battery_aware = solver.battery_aware;
      const auto r = bench::run(config);
      t.add_row({solver.label, bench::fmt(r.brown_kwh()),
                 std::to_string(r.qos.deadline_misses),
                 bench::fmt(r.scheduler.plan_solve_ms_total, 1),
                 std::to_string(r.scheduler.task_migrations)});
      bench::csv_row({"solver", solver.label,
                      bench::fmt(r.brown_kwh(), 4),
                      bench::fmt(r.scheduler.plan_solve_ms_total, 2)});
    }
    t.print(std::cout);
  }

  {
    std::cout << "\nB. activation hysteresis (dwell in slots):\n";
    TextTable t({"dwell", "brown kWh", "power cycles", "migrations"});
    for (int dwell : {0, 1, 2, 4, 6}) {
      auto config = base();
      config.min_dwell_slots = dwell;
      const auto r = bench::run(config);
      t.add_row({std::to_string(dwell), bench::fmt(r.brown_kwh()),
                 std::to_string(r.scheduler.node_power_ons +
                                r.scheduler.node_power_offs),
                 std::to_string(r.scheduler.task_migrations)});
      bench::csv_row({"dwell", std::to_string(dwell),
                      bench::fmt(r.brown_kwh(), 4)});
    }
    t.print(std::cout);
  }

  {
    std::cout << "\nC. forecast-noise sensitivity (error at 1 h lead):\n";
    TextTable t({"noise", "brown kWh", "curtailed kWh", "misses"});
    for (double err : {0.0, 0.05, 0.15, 0.30}) {
      auto config = base();
      config.noisy_forecast = err > 0.0;
      config.forecast_noise.error_at_1h = err;
      const auto r = bench::run(config);
      t.add_row({TextTable::percent(err, 0), bench::fmt(r.brown_kwh()),
                 bench::fmt(r.curtailed_kwh()),
                 std::to_string(r.qos.deadline_misses)});
      bench::csv_row({"noise", bench::fmt(err, 2),
                      bench::fmt(r.brown_kwh(), 4)});
    }
    t.print(std::cout);
  }

  {
    std::cout << "\nE. DVFS eco frequency for grid-powered task runs:\n";
    TextTable t({"eco speed", "brown kWh", "sojourn h", "misses"});
    for (double speed : {1.0, 0.85, 0.7, 0.55}) {
      auto config = base();
      config.dvfs_eco_speed = speed;
      const auto r = bench::run(config);
      t.add_row({bench::fmt(speed), bench::fmt(r.brown_kwh()),
                 bench::fmt(r.qos.mean_task_sojourn_h, 1),
                 std::to_string(r.qos.deadline_misses)});
      bench::csv_row({"dvfs", bench::fmt(speed, 2),
                      bench::fmt(r.brown_kwh(), 4)});
    }
    t.print(std::cout);
  }

  {
    std::cout << "\nF. MAID per-disk spin-down on idle active nodes:\n";
    TextTable t({"maid", "brown kWh", "demand kWh", "transition kWh",
                 "misses"});
    for (bool maid : {false, true}) {
      auto config = base();
      config.maid_enabled = maid;
      const auto r = bench::run(config);
      t.add_row({maid ? "on" : "off", bench::fmt(r.brown_kwh()),
                 bench::fmt(r.demand_kwh()),
                 bench::fmt(j_to_kwh(r.energy.overhead_transition_j)),
                 std::to_string(r.qos.deadline_misses)});
      bench::csv_row({"maid", maid ? "on" : "off",
                      bench::fmt(r.brown_kwh(), 4)});
    }
    t.print(std::cout);
  }

  {
    std::cout << "\nD. fidelity gap (same config, both modes):\n";
    TextTable t({"fidelity", "demand kWh", "brown kWh", "runtime info"});
    for (auto fidelity :
         {core::Fidelity::kSlotLevel, core::Fidelity::kEventLevel}) {
      auto config = base();
      config.fidelity = fidelity;
      const auto r = bench::run(config);
      t.add_row({fidelity == core::Fidelity::kSlotLevel ? "slot"
                                                        : "event",
                 bench::fmt(r.demand_kwh()), bench::fmt(r.brown_kwh()),
                 fidelity == core::Fidelity::kEventLevel
                     ? std::to_string(r.qos.foreground_requests) +
                           " requests routed"
                     : "aggregate only"});
      bench::csv_row({"fidelity",
                      fidelity == core::Fidelity::kSlotLevel ? "slot"
                                                             : "event",
                      bench::fmt(r.demand_kwh(), 4),
                      bench::fmt(r.brown_kwh(), 4)});
    }
    t.print(std::cout);
  }
  return 0;
}
