#pragma once
// Shared helpers for the reproduction bench binaries. Every bench
// prints its exhibit as an aligned table (and a `csv:`-prefixed
// machine-readable block) so `for b in build/bench/*; do $b; done`
// regenerates the whole evaluation. Benches take no required
// arguments; the optional `--json=<path>` appends flat BenchRecord
// lines (wall time plus any named metrics — see json_report.hpp) for
// gm_bench_merge to collate into a BENCH_*.json perf baseline.
//
// Sweep-shaped benches fan their independent simulations out on a
// process-wide gm::ThreadPool (run_sweep / parallel_map below);
// results land by index, so the printed exhibit is byte-identical to
// a serial run.

#include <cstddef>
#include <iostream>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "core/engine.hpp"
#include "json_report.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace gm::bench {

/// The canonical evaluation setup from DESIGN.md §4 (workload W1,
/// supply S1): one week, 64-node cluster, June solar, LI battery.
inline core::ExperimentConfig canonical_config() {
  return core::ExperimentConfig::canonical();
}

/// Panel area at which fig4 finds the workload fully green-coverable
/// with an ideal battery (kept as the shared "sufficient solar" size).
inline constexpr double kSufficientPanelM2 = 320.0;
/// The "insufficient solar" size used by fig6–fig8 (supply < demand).
inline constexpr double kInsufficientPanelM2 = 120.0;

/// Process-wide pool for bench sweeps, sized to the machine. Shared so
/// every helper reuses the same workers instead of spawning per sweep.
inline ThreadPool& bench_pool() {
  static ThreadPool pool;
  return pool;
}

/// Generates (once) and caches the workload trace for a spec, so a
/// sweep of N runs does not regenerate N identical traces. The mutex
/// makes the cache safe under run_sweep's fan-out; generation happens
/// under the lock so concurrent points block on the first generator
/// instead of racing to fill the slot.
inline std::shared_ptr<const workload::Workload> shared_workload(
    const workload::WorkloadSpec& spec, std::uint32_t group_count) {
  static std::mutex mutex;
  static std::map<std::pair<std::uint64_t, std::uint32_t>,
                  std::shared_ptr<const workload::Workload>>
      cache;
  std::lock_guard lock(mutex);
  const auto key = std::make_pair(spec.fingerprint(), group_count);
  auto& slot = cache[key];
  if (!slot)
    slot = std::make_shared<const workload::Workload>(
        workload::generate_workload(spec, group_count));
  return slot;
}

/// Attaches the cached trace for config.workload to the config.
inline void use_shared_workload(core::ExperimentConfig& config) {
  config.preset_workload = shared_workload(
      config.workload, config.cluster.placement.group_count);
}

/// Runs and returns just the result (ledger dropped).
inline metrics::RunResult run(core::ExperimentConfig config) {
  use_shared_workload(config);
  return core::run_experiment(config).result;
}

/// Generic indexed parallel map on the bench pool: out[i] = fn(i).
/// Results are collected by index, so printing in input order is
/// deterministic regardless of which worker finished first.
template <typename R, typename Fn>
std::vector<R> parallel_map(std::size_t n, Fn&& fn) {
  std::vector<R> out(n);
  parallel_for(bench_pool(), n,
               [&](std::size_t i) { out[i] = fn(i); });
  return out;
}

/// Runs one independent simulation per config on the bench pool and
/// returns the results in config order.
inline std::vector<metrics::RunResult> run_sweep(
    const std::vector<core::ExperimentConfig>& configs) {
  return parallel_map<metrics::RunResult>(
      configs.size(), [&](std::size_t i) { return run(configs[i]); });
}

inline void print_header(const std::string& exhibit,
                         const std::string& caption) {
  std::cout << "==== " << exhibit << " — " << caption << " ====\n\n";
}

/// Emits a csv block (one `csv:`-prefixed line per row) for plotting.
inline void csv_row(std::initializer_list<std::string> fields) {
  std::cout << "csv:";
  bool first = true;
  for (const auto& f : fields) {
    if (!first) std::cout << ',';
    std::cout << f;
    first = false;
  }
  std::cout << '\n';
}

inline std::string fmt(double v, int precision = 2) {
  return TextTable::num(v, precision);
}

}  // namespace gm::bench
