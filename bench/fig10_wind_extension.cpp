// R-Fig-10: the paper's stated future work — does the
// storage-vs-deferral trade-off survive under a wind profile? Wind is
// not diurnal: production appears in multi-hour bursts at any hour,
// so deferral has less structure to exploit and storage relatively
// more. We scale the turbine so weekly wind energy matches the solar
// case, then repeat the fig6-style sweep.

#include "bench_support.hpp"
#include "energy/wind.hpp"

int main(int argc, char** argv) {
  gm::bench::ExhibitReporter reporter("fig10_wind_extension", argc, argv);
  using namespace gm;
  bench::print_header(
      "R-Fig-10",
      "wind instead of solar: brown kWh vs battery size, per policy");

  // Match weekly energy of the insufficient-solar case: measure both.
  auto probe = bench::canonical_config();
  probe.panel_area_m2 = bench::kInsufficientPanelM2;
  energy::SolarConfig solar = probe.solar;
  auto pv = energy::make_pv_array(solar, bench::kInsufficientPanelM2);
  const Joules solar_week = pv->energy_j(0, 7 * 86400, 900);

  energy::WindConfig wind;
  wind.horizon_days = 14;
  wind.rated_power_w = 10000.0;
  const Joules wind_week =
      energy::WindModel(wind).energy_j(0, 7 * 86400, 900);
  wind.rated_power_w *= solar_week / wind_week;  // energy-matched

  std::cout << "solar week: " << bench::fmt(j_to_kwh(solar_week))
            << " kWh → turbine rated at "
            << bench::fmt(wind.rated_power_w / 1000.0)
            << " kW for the same weekly energy\n\n";

  struct Config {
    std::string label;
    core::PolicyKind kind;
    double deferral;
  };
  const std::vector<Config> policies{
      {"esd-only", core::PolicyKind::kAsap, 0.0},
      {"opp-100%", core::PolicyKind::kOpportunistic, 1.0},
      {"greenmatch", core::PolicyKind::kGreenMatch, 1.0},
  };

  for (bool use_wind : {false, true}) {
    std::cout << (use_wind ? "wind supply:\n" : "solar supply:\n");
    TextTable t({"battery kWh", "esd-only", "opp-100%", "greenmatch"});
    for (double kwh : {0.0, 20.0, 40.0, 80.0}) {
      std::vector<std::string> row{bench::fmt(kwh, 0)};
      for (const auto& p : policies) {
        auto config = bench::canonical_config();
        config.battery =
            energy::BatteryConfig::lithium_ion(kwh_to_j(kwh));
        config.policy.kind = p.kind;
        config.policy.deferral_fraction = p.deferral;
        if (use_wind) {
          config.panel_area_m2 = 0.0;
          config.use_wind = true;
          config.wind = wind;
        } else {
          config.panel_area_m2 = bench::kInsufficientPanelM2;
        }
        const double brown = bench::run(config).brown_kwh();
        row.push_back(bench::fmt(brown));
        bench::csv_row({use_wind ? "wind" : "solar",
                        bench::fmt(kwh, 0), p.label,
                        bench::fmt(brown, 4)});
      }
      t.add_row(row);
    }
    t.print(std::cout);
    std::cout << '\n';
  }
  std::cout << "(expected shape: deferral's edge over ESD-only shrinks "
               "under wind — production bursts are not aligned with "
               "anything a deadline window can anticipate)\n";
  return 0;
}
