// R-Fig-11 (extension): follow-the-sun federation — the geographic
// scheduling the lineage's introduction motivates but a single data
// center cannot do. Three staggered sites (UTC+0/+8/−8) and one
// asymmetric pair (a site with no local renewables + a well-provisioned
// one), with the task-routing broker on and off.

#include "bench_support.hpp"
#include "federation/federation.hpp"

using namespace gm;

namespace {

core::ExperimentConfig site_base() {
  auto config = bench::canonical_config();
  config.cluster.racks = 2;
  config.cluster.nodes_per_rack = 16;
  config.cluster.placement.group_count = 256;
  config.workload = workload::WorkloadSpec::canonical(7, 21);
  // Halve per-site volume: three sites together ≈ one canonical DC.
  for (auto& c : config.workload.task_classes) c.mean_per_day *= 0.5;
  config.workload.foreground.base_rate_per_s = 2.0;
  config.panel_area_m2 = 80.0;
  config.battery = energy::BatteryConfig::lithium_ion(kwh_to_j(20));
  return config;
}

void report(const std::string& label,
            const federation::FederationResult& r) {
  std::cout << label << ": grid " << bench::fmt(r.total_grid_kwh())
            << " kWh (brown " << bench::fmt(r.total_brown_kwh())
            << " + WAN " << bench::fmt(j_to_kwh(r.wan_energy_j))
            << "), curtailed " << bench::fmt(r.total_curtailed_kwh())
            << " kWh, moved " << r.tasks_moved << " tasks, misses "
            << r.total_deadline_misses() << "\n";
  for (const auto& s : r.sites)
    std::cout << "    " << s.name << ": brown "
              << bench::fmt(s.result.brown_kwh()) << " kWh, green util "
              << TextTable::percent(s.result.energy.green_utilization())
              << "\n";
  bench::csv_row({label, bench::fmt(r.total_grid_kwh(), 4),
                  std::to_string(r.tasks_moved)});
}

}  // namespace

int main(int argc, char** argv) {
  gm::bench::ExhibitReporter reporter("fig11_follow_the_sun", argc, argv);
  bench::print_header(
      "R-Fig-11", "follow-the-sun federation (3 staggered sites; and an "
                  "asymmetric pair)");

  {
    std::cout << "symmetric, staggered UTC offsets (0 / +8 / -8):\n";
    auto config = federation::make_follow_the_sun(site_base(), 3);
    config.enable_task_routing = false;
    report("  routing off", federation::run_federation(config));
    config.enable_task_routing = true;
    report("  routing on ", federation::run_federation(config));
  }

  {
    std::cout << "\nasymmetric pair (dark site + 240 m² site):\n";
    federation::FederationConfig config;
    auto dark = site_base();
    dark.panel_area_m2 = 0.0;
    auto sunny = site_base();
    sunny.panel_area_m2 = 240.0;
    sunny.workload.seed += 9;
    sunny.solar.seed += 9;
    config.sites.push_back({"dark", dark});
    config.sites.push_back({"sunny", sunny});
    config.enable_task_routing = false;
    report("  routing off", federation::run_federation(config));
    config.enable_task_routing = true;
    report("  routing on ", federation::run_federation(config));
  }

  std::cout << "\n(the broker only helps where local deferral cannot: "
               "sites whose own sun cannot cover their backlog)\n";
  return 0;
}
