// R-Fig-2: one-week workload energy demand vs solar supply, hourly —
// the motivation figure: demand exceeds supply at night (battery or
// deferral needed) and supply exceeds demand around noon (storage or
// extra work needed).

#include "bench_support.hpp"

int main(int argc, char** argv) {
  gm::bench::ExhibitReporter reporter("fig2_supply_vs_demand", argc, argv);
  using namespace gm;
  bench::print_header("R-Fig-2",
                      "hourly workload demand vs solar supply (one week)");

  auto config = bench::canonical_config();
  config.panel_area_m2 = bench::kInsufficientPanelM2;
  config.policy.kind = core::PolicyKind::kAsap;
  bench::use_shared_workload(config);
  const auto artifacts = core::run_experiment(config);

  TextTable t({"hour", "demand kW", "solar kW", "surplus kW"});
  double total_demand = 0.0, total_supply = 0.0;
  std::size_t week_slots = std::min<std::size_t>(
      artifacts.ledger.slots().size(), 168);
  for (std::size_t i = 0; i < week_slots; ++i) {
    const auto& s = artifacts.ledger.slots()[i];
    const double demand_kw = s.demand_j / 3.6e6;
    const double solar_kw = s.green_supply_j / 3.6e6;
    total_demand += s.demand_j;
    total_supply += s.green_supply_j;
    // Print every third hour to keep the table readable; the csv block
    // carries every hour.
    if (i % 3 == 0)
      t.add_row({std::to_string(i), bench::fmt(demand_kw),
                 bench::fmt(solar_kw),
                 bench::fmt(solar_kw - demand_kw)});
    bench::csv_row({std::to_string(i), bench::fmt(demand_kw, 4),
                    bench::fmt(solar_kw, 4)});
  }
  t.print(std::cout);
  std::cout << "\nweek totals: demand "
            << bench::fmt(j_to_kwh(total_demand)) << " kWh, solar "
            << bench::fmt(j_to_kwh(total_supply)) << " kWh ("
            << bench::fmt(100.0 * total_supply / total_demand, 1)
            << "% of demand) — insufficient-solar regime as intended\n";
  return 0;
}
