// R-Fig-3: solar production trace for a small PV farm (the analogue of
// the lineage's 5.52 m² university mini-farm figure): hourly output
// over one week, plus the per-day weather states the Markov chain drew.

#include "bench_support.hpp"
#include "energy/solar.hpp"

int main(int argc, char** argv) {
  gm::bench::ExhibitReporter reporter("fig3_solar_trace", argc, argv);
  using namespace gm;
  bench::print_header(
      "R-Fig-3", "solar production, 8-panel mini-farm (11.04 m²), 1 week");

  energy::SolarConfig solar;  // June, Nantes-like latitude
  solar.horizon_days = 7;
  auto irradiance =
      std::make_shared<energy::SolarIrradianceModel>(solar);
  energy::PvArrayConfig pv;  // defaults: 8 × 1.38 m² panels
  energy::PvArray array(irradiance, pv);

  std::cout << "rated peak: " << bench::fmt(array.rated_peak_w(), 0)
            << " W (" << bench::fmt(array.total_area_m2()) << " m²)\n\n";

  const char* weather_names[] = {"sunny", "partly-cloudy", "cloudy"};
  TextTable days({"day", "weather", "energy kWh", "peak W"});
  for (int d = 0; d < 7; ++d) {
    const SimTime t0 = d * 86400;
    double peak = 0.0;
    for (int h = 0; h < 24; ++h) {
      const double p = array.power_w(t0 + h * 3600 + 1800);
      peak = std::max(peak, p);
      bench::csv_row({std::to_string(d * 24 + h), bench::fmt(p, 1)});
    }
    days.add_row(
        {std::to_string(d),
         weather_names[static_cast<int>(irradiance->weather_on_day(d))],
         bench::fmt(j_to_kwh(array.energy_j(t0, t0 + 86400, 300))),
         bench::fmt(peak, 0)});
  }
  days.print(std::cout);

  std::cout << "\nhourly profile of day 0 (W):\n";
  TextTable hours({"hour", "output W"});
  for (int h = 0; h < 24; ++h)
    hours.add_row({std::to_string(h),
                   bench::fmt(array.power_w(h * 3600 + 1800), 1)});
  hours.print(std::cout);
  return 0;
}
