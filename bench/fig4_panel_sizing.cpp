// R-Fig-4: brown energy vs PV panel area under an (effectively)
// infinite ideal battery — finds the panel dimension at which the
// whole workload can be powered by solar alone. Mirrors the lineage's
// "optimal solar panel dimension" experiment.

#include "bench_support.hpp"

int main(int argc, char** argv) {
  gm::bench::ExhibitReporter reporter("fig4_panel_sizing", argc, argv);
  using namespace gm;
  bench::print_header(
      "R-Fig-4",
      "brown energy vs panel area (ideal, effectively infinite ESD)");

  TextTable t({"area m²", "supply/demand", "brown kWh", "brown %",
               "curtailed kWh"});
  double zero_brown_area = -1.0;
  const std::vector<double> areas{0.0,   40.0,  80.0,  120.0,
                                  160.0, 200.0, 240.0, 280.0,
                                  320.0, 400.0, 480.0};
  std::vector<core::ExperimentConfig> configs;
  for (double area : areas) {
    auto config = bench::canonical_config();
    config.policy.kind = core::PolicyKind::kAsap;
    config.panel_area_m2 = area;
    // "Infinite" ideal battery: far larger than weekly demand.
    config.battery = energy::BatteryConfig::ideal(kwh_to_j(100000.0));
    configs.push_back(config);
  }
  const auto results = bench::run_sweep(configs);
  for (std::size_t i = 0; i < areas.size(); ++i) {
    const double area = areas[i];
    const auto& r = results[i];
    const double ratio =
        r.energy.demand_j > 0
            ? r.energy.green_supply_j / r.energy.demand_j
            : 0.0;
    const double brown_pct =
        100.0 * r.energy.brown_j / r.energy.demand_j;
    t.add_row({bench::fmt(area, 0), bench::fmt(ratio),
               bench::fmt(r.brown_kwh()), bench::fmt(brown_pct, 1),
               bench::fmt(r.curtailed_kwh())});
    bench::csv_row({bench::fmt(area, 0), bench::fmt(r.brown_kwh(), 4)});
    if (zero_brown_area < 0 && brown_pct < 3.0) zero_brown_area = area;
  }
  t.print(std::cout);
  if (zero_brown_area > 0)
    std::cout << "\n→ brown energy <3% of demand from ≈ "
              << bench::fmt(zero_brown_area, 0)
              << " m² (the 'optimal panel dimension'; residual brown is "
                 "the empty-battery first night)\n";
  return 0;
}
