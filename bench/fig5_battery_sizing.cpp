// R-Fig-5: brown energy vs battery size at the "sufficient" panel
// area, GreenMatch vs the ESD-only baseline, with the battery volume
// overlay for both technologies. Mirrors the lineage's "optimal
// battery size in ideal case": the renewable-aware scheduler should
// reach zero brown with a distinctly smaller battery than the
// baseline.

#include "bench_support.hpp"

int main(int argc, char** argv) {
  gm::bench::ExhibitReporter reporter("fig5_battery_sizing", argc, argv);
  using namespace gm;
  bench::print_header(
      "R-Fig-5",
      "brown energy vs LI battery size (sufficient solar), and volume");

  TextTable t({"battery kWh", "brown asap kWh", "brown greenmatch kWh",
               "LI volume L", "LA volume L"});
  double zero_asap = -1, zero_gm = -1;
  const std::vector<double> sizes{0.0,   10.0,  20.0,  40.0,  60.0,
                                  80.0,  100.0, 110.0, 120.0, 130.0,
                                  140.0, 150.0, 160.0};
  // Two configs per size (asap, greenmatch), flattened for the pool.
  std::vector<core::ExperimentConfig> configs;
  for (double kwh : sizes) {
    for (auto kind :
         {core::PolicyKind::kAsap, core::PolicyKind::kGreenMatch}) {
      auto config = bench::canonical_config();
      config.panel_area_m2 = bench::kSufficientPanelM2;
      config.battery = energy::BatteryConfig::lithium_ion(kwh_to_j(kwh));
      config.battery.initial_soc_fraction = 0.5;  // no cold-start bias
      config.policy.kind = kind;
      configs.push_back(config);
    }
  }
  const auto results = bench::run_sweep(configs);
  for (std::size_t s = 0; s < sizes.size(); ++s) {
    const double kwh = sizes[s];
    const double brown[2] = {results[2 * s].brown_kwh(),
                             results[2 * s + 1].brown_kwh()};
    const auto li = energy::BatteryConfig::lithium_ion(kwh_to_j(kwh));
    const auto la = energy::BatteryConfig::lead_acid(kwh_to_j(kwh));
    t.add_row({bench::fmt(kwh, 0), bench::fmt(brown[0]),
               bench::fmt(brown[1]), bench::fmt(li.volume_l(), 0),
               bench::fmt(la.volume_l(), 0)});
    bench::csv_row({bench::fmt(kwh, 0), bench::fmt(brown[0], 4),
                    bench::fmt(brown[1], 4)});
    // "Zero brown" = under 1 kWh over the whole week.
    if (zero_asap < 0 && brown[0] < 1.0) zero_asap = kwh;
    if (zero_gm < 0 && brown[1] < 1.0) zero_gm = kwh;
  }
  t.print(std::cout);

  std::cout << '\n';
  if (zero_gm > 0 && zero_asap > 0) {
    std::cout << "→ near-zero brown at ≈ " << bench::fmt(zero_gm, 0)
              << " kWh for GreenMatch vs ≈ " << bench::fmt(zero_asap, 0)
              << " kWh for the ESD-only baseline ("
              << bench::fmt(100.0 * (1.0 - zero_gm / zero_asap), 0)
              << "% smaller battery)\n";
  } else {
    std::cout << "→ neither policy reached near-zero brown in the "
                 "swept range\n";
  }
  return 0;
}
