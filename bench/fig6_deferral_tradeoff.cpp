// R-Fig-6: brown energy vs battery size when solar is *insufficient*
// for the workload, across deferral configurations: the ESD-only
// baseline, opportunistic scheduling delaying 30/50/70/100% of
// deferrable tasks, and GreenMatch. Mirrors the lineage's Figure 6
// trade-off between storing green energy and delaying work into it.

#include "bench_support.hpp"

int main(int argc, char** argv) {
  gm::bench::ExhibitReporter reporter("fig6_deferral_tradeoff", argc, argv);
  using namespace gm;
  bench::print_header(
      "R-Fig-6",
      "brown kWh vs battery size (insufficient solar), per policy");

  const std::vector<double> sizes{0.0, 10.0, 20.0, 40.0, 60.0, 80.0,
                                  110.0};
  struct Config {
    std::string label;
    core::PolicyKind kind;
    double deferral;
  };
  const std::vector<Config> policies{
      {"esd-only", core::PolicyKind::kAsap, 0.0},
      {"opp-30%", core::PolicyKind::kOpportunistic, 0.3},
      {"opp-50%", core::PolicyKind::kOpportunistic, 0.5},
      {"opp-70%", core::PolicyKind::kOpportunistic, 0.7},
      {"opp-100%", core::PolicyKind::kOpportunistic, 1.0},
      {"greenmatch", core::PolicyKind::kGreenMatch, 1.0},
  };

  std::vector<std::string> headers{"battery kWh"};
  for (const auto& p : policies) headers.push_back(p.label);
  TextTable t(headers);

  // size × policy grid, flattened row-major for the pool.
  std::vector<core::ExperimentConfig> configs;
  for (double kwh : sizes) {
    for (const auto& p : policies) {
      auto config = bench::canonical_config();
      config.panel_area_m2 = bench::kInsufficientPanelM2;
      config.battery =
          energy::BatteryConfig::lithium_ion(kwh_to_j(kwh));
      config.policy.kind = p.kind;
      config.policy.deferral_fraction = p.deferral;
      configs.push_back(config);
    }
  }
  const auto results = bench::run_sweep(configs);

  for (std::size_t s = 0; s < sizes.size(); ++s) {
    const double kwh = sizes[s];
    std::vector<std::string> row{bench::fmt(kwh, 0)};
    std::vector<std::string> csv{bench::fmt(kwh, 0)};
    for (std::size_t p = 0; p < policies.size(); ++p) {
      const double brown =
          results[s * policies.size() + p].brown_kwh();
      row.push_back(bench::fmt(brown));
      csv.push_back(bench::fmt(brown, 4));
    }
    t.add_row(row);
    std::cout << "csv:";
    for (std::size_t i = 0; i < csv.size(); ++i)
      std::cout << (i ? "," : "") << csv[i];
    std::cout << '\n';
  }
  t.print(std::cout);
  std::cout << "\n(the crossover: small batteries favour aggressive "
               "deferral, large batteries favour storing)\n";
  return 0;
}
