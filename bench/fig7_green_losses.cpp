// R-Fig-7: curtailed (lost) green energy vs battery size, per policy
// — renewable production that found no taker because the battery was
// full or its charge rate was exceeded. Mirrors the lineage's "solar
// energy losses with variable battery size": deferral-based policies
// need less storage to stop wasting green energy.

#include "bench_support.hpp"

int main(int argc, char** argv) {
  gm::bench::ExhibitReporter reporter("fig7_green_losses", argc, argv);
  using namespace gm;
  bench::print_header(
      "R-Fig-7", "curtailed green kWh vs battery size (insufficient "
                 "solar), per policy");

  struct Config {
    std::string label;
    core::PolicyKind kind;
    double deferral;
  };
  const std::vector<Config> policies{
      {"esd-only", core::PolicyKind::kAsap, 0.0},
      {"opp-100%", core::PolicyKind::kOpportunistic, 1.0},
      {"greenmatch", core::PolicyKind::kGreenMatch, 1.0},
  };

  TextTable t({"battery kWh", "esd-only", "opp-100%", "greenmatch"});
  for (double kwh : {0.0, 10.0, 20.0, 40.0, 60.0, 80.0, 110.0}) {
    std::vector<std::string> row{bench::fmt(kwh, 0)};
    std::vector<std::string> csv{bench::fmt(kwh, 0)};
    for (const auto& p : policies) {
      auto config = bench::canonical_config();
      config.panel_area_m2 = bench::kInsufficientPanelM2;
      config.battery =
          energy::BatteryConfig::lithium_ion(kwh_to_j(kwh));
      config.policy.kind = p.kind;
      config.policy.deferral_fraction = p.deferral;
      const double lost = bench::run(config).curtailed_kwh();
      row.push_back(bench::fmt(lost));
      csv.push_back(bench::fmt(lost, 4));
    }
    t.add_row(row);
    std::cout << "csv:";
    for (std::size_t i = 0; i < csv.size(); ++i)
      std::cout << (i ? "," : "") << csv[i];
    std::cout << '\n';
  }
  t.print(std::cout);
  std::cout << "\n(losses fall with battery size for everyone; the "
               "deferring policies start lower and reach ≈0 with a "
               "smaller battery)\n";
  return 0;
}
