// R-Fig-8: decomposition of scheduling-attributable energy losses vs
// battery size — battery conversion + self-discharge losses against
// migration + power-transition overheads, per policy. Mirrors the
// lineage's "migration cost vs battery efficiency loss" figure: the
// baseline loses through the battery, deferring policies lose through
// consolidation churn, and the best configuration balances the two.

#include "bench_support.hpp"

int main(int argc, char** argv) {
  gm::bench::ExhibitReporter reporter("fig8_loss_decomposition", argc, argv);
  using namespace gm;
  bench::print_header(
      "R-Fig-8",
      "loss decomposition (kWh) vs battery size, per policy");

  struct Config {
    std::string label;
    core::PolicyKind kind;
    double deferral;
  };
  const std::vector<Config> policies{
      {"esd-only", core::PolicyKind::kAsap, 0.0},
      {"opp-30%", core::PolicyKind::kOpportunistic, 0.3},
      {"opp-100%", core::PolicyKind::kOpportunistic, 1.0},
      {"greenmatch", core::PolicyKind::kGreenMatch, 1.0},
  };

  TextTable t({"battery kWh", "policy", "battery loss", "churn loss",
               "total loss", "migrations", "power cycles"});
  for (double kwh : {0.0, 20.0, 40.0, 80.0, 110.0}) {
    for (const auto& p : policies) {
      auto config = bench::canonical_config();
      config.panel_area_m2 = bench::kInsufficientPanelM2;
      config.battery =
          energy::BatteryConfig::lithium_ion(kwh_to_j(kwh));
      config.policy.kind = p.kind;
      config.policy.deferral_fraction = p.deferral;
      const auto r = bench::run(config);
      const double battery_loss =
          j_to_kwh(r.battery.conversion_loss_j +
                   r.battery.self_discharge_loss_j);
      const double churn_loss =
          j_to_kwh(r.energy.overhead_migration_j +
                   r.energy.overhead_transition_j);
      t.add_row({bench::fmt(kwh, 0), p.label,
                 bench::fmt(battery_loss), bench::fmt(churn_loss),
                 bench::fmt(battery_loss + churn_loss),
                 std::to_string(r.scheduler.task_migrations),
                 std::to_string(r.scheduler.node_power_ons +
                                r.scheduler.node_power_offs)});
      bench::csv_row({bench::fmt(kwh, 0), p.label,
                      bench::fmt(battery_loss, 4),
                      bench::fmt(churn_loss, 4)});
    }
  }
  t.print(std::cout);
  std::cout << "\n(battery losses grow with battery size and shrink "
               "with deferral; churn losses do the opposite)\n";
  return 0;
}
