// R-Fig-9: the QoS cost of renewable-awareness — sweep the
// opportunistic deferral fraction (the aggressiveness knob) at
// event-level fidelity and report deadline misses, task sojourn,
// request p95 latency and scheduler churn.

#include "bench_support.hpp"

int main(int argc, char** argv) {
  gm::bench::ExhibitReporter reporter("fig9_qos_tradeoff", argc, argv);
  using namespace gm;
  bench::print_header(
      "R-Fig-9",
      "QoS vs deferral aggressiveness (event-level, 40 kWh battery)");

  TextTable t({"deferral", "brown kWh", "miss rate", "sojourn h",
               "p95 ms", "migr", "wakeups"});
  for (double frac : {0.0, 0.2, 0.4, 0.6, 0.8, 1.0}) {
    auto config = bench::canonical_config();
    config.panel_area_m2 = bench::kInsufficientPanelM2;
    config.battery = energy::BatteryConfig::lithium_ion(kwh_to_j(40));
    config.policy.kind = core::PolicyKind::kOpportunistic;
    config.policy.deferral_fraction = frac;
    config.fidelity = core::Fidelity::kEventLevel;
    const auto r = bench::run(config);
    t.add_row({TextTable::percent(frac, 0), bench::fmt(r.brown_kwh()),
               TextTable::percent(r.qos.deadline_miss_rate(), 2),
               bench::fmt(r.qos.mean_task_sojourn_h, 1),
               bench::fmt(r.qos.read_latency_p95_s * 1000.0, 1),
               std::to_string(r.scheduler.task_migrations),
               std::to_string(r.scheduler.forced_wakeups)});
    bench::csv_row({bench::fmt(frac, 2), bench::fmt(r.brown_kwh(), 4),
                    bench::fmt(r.qos.deadline_miss_rate(), 5),
                    bench::fmt(r.qos.mean_task_sojourn_h, 3)});
  }
  t.print(std::cout);
  std::cout << "\n(more deferral buys brown-energy reduction at the "
               "price of longer task sojourn and more churn; "
               "foreground latency stays flat — the router always "
               "finds an active replica)\n";
  return 0;
}
