#include "json_report.hpp"

#include <cstring>
#include <fstream>

#include "obs/trace.hpp"
#include "util/assert.hpp"

namespace gm::bench {

std::string current_git_sha() {
#ifdef GM_GIT_SHA
  return GM_GIT_SHA;
#else
  return "unknown";
#endif
}

std::string render_record(const BenchRecord& record) {
  obs::JsonObject object;
  object.set("bench", record.bench)
      .set("metric", record.metric)
      .set("value", record.value)
      .set("unit", record.unit)
      .set("wall_ms", record.wall_ms)
      .set("git_sha", record.git_sha);
  return object.str();
}

BenchRecord parse_bench_record(const std::string& line) {
  const obs::FlatRecord flat = obs::parse_flat_json(line);
  BenchRecord record;
  record.bench = obs::record_str(flat, "bench");
  record.metric = obs::record_str(flat, "metric");
  record.value = obs::record_num(flat, "value");
  record.unit = obs::record_str(flat, "unit");
  record.wall_ms = obs::record_num(flat, "wall_ms");
  record.git_sha = obs::record_str(flat, "git_sha");
  return record;
}

std::vector<BenchRecord> read_report(const std::string& path) {
  std::ifstream in(path);
  if (!in)
    throw RuntimeError("cannot open bench report for reading: " + path);
  std::vector<BenchRecord> records;
  std::string line;
  while (std::getline(in, line)) {
    // Tolerate the merged-array form: strip brackets and trailing
    // commas so both JSONL and write_merged_json output load.
    while (!line.empty() &&
           (line.back() == ',' || line.back() == ' ' ||
            line.back() == '\r'))
      line.pop_back();
    std::size_t start = 0;
    while (start < line.size() && line[start] == ' ') ++start;
    line.erase(0, start);
    if (line.empty() || line == "[" || line == "]") continue;
    records.push_back(parse_bench_record(line));
  }
  return records;
}

std::vector<BenchRecord> merge_reports(
    const std::vector<std::string>& paths) {
  std::vector<BenchRecord> merged;
  for (const auto& path : paths) {
    auto records = read_report(path);
    merged.insert(merged.end(), records.begin(), records.end());
  }
  return merged;
}

void write_merged_json(const std::vector<BenchRecord>& records,
                       const std::string& path) {
  std::ofstream out(path);
  if (!out)
    throw RuntimeError("cannot open merged report for writing: " + path);
  out << "[\n";
  for (std::size_t i = 0; i < records.size(); ++i) {
    out << "  " << render_record(records[i]);
    if (i + 1 < records.size()) out << ',';
    out << '\n';
  }
  out << "]\n";
  out.flush();
  GM_CHECK(out.good(), "short write to merged report: " << path);
}

BenchReportWriter::BenchReportWriter(std::string path)
    : path_(std::move(path)), out_(path_, std::ios::app) {
  if (!out_)
    throw RuntimeError("cannot open bench report for append: " + path_);
}

void BenchReportWriter::append(const BenchRecord& record) {
  out_ << render_record(record) << '\n';
  out_.flush();  // benches may be interleaved with other binaries
  ++records_;
}

std::unique_ptr<BenchReportWriter> writer_from_args(int& argc,
                                                    char** argv) {
  static constexpr const char kFlag[] = "--json=";
  static constexpr std::size_t kFlagLen = sizeof(kFlag) - 1;
  std::string path;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], kFlag, kFlagLen) == 0) {
      path.assign(argv[i] + kFlagLen);
      GM_CHECK(!path.empty(), "--json= requires a path");
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
  argv[argc] = nullptr;
  if (path.empty()) return nullptr;
  return std::make_unique<BenchReportWriter>(path);
}

ExhibitReporter::ExhibitReporter(std::string bench_name, int& argc,
                                 char** argv)
    : bench_(std::move(bench_name)),
      writer_(writer_from_args(argc, argv)),
      start_(std::chrono::steady_clock::now()) {}

double ExhibitReporter::elapsed_ms() const {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start_)
      .count();
}

void ExhibitReporter::metric(const std::string& name, double value,
                             const std::string& unit) {
  if (!writer_) return;
  writer_->append(BenchRecord{bench_, name, value, unit, elapsed_ms(),
                              current_git_sha()});
}

ExhibitReporter::~ExhibitReporter() {
  if (!writer_) return;
  const double wall = elapsed_ms();
  writer_->append(
      BenchRecord{bench_, "wall_ms", wall, "ms", wall,
                  current_git_sha()});
}

}  // namespace gm::bench
