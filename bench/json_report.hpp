#pragma once
// Machine-readable bench output: every bench binary accepts
// `--json=<path>` and appends one flat JSON record per metric to that
// file (JSONL, append mode — several binaries can share one file).
// `tools/gm_bench_merge` collates the per-binary files into a single
// pretty-printed JSON array (e.g. the checked-in BENCH_PR3.json) that
// docs/performance.md treats as the perf baseline.
//
// Record schema (all fields always present):
//   bench    string  producing benchmark ("fig4_panel_sizing",
//                    "BM_GreenMatchPlanDay", ...)
//   metric   string  what was measured ("wall_ms", "real_time_ms",
//                    counter names, ...)
//   value    number
//   unit     string  "ms", "items/s", "" for dimensionless
//   wall_ms  number  wall-clock ms since the producing process
//                    started, when the record was appended
//   git_sha  string  short sha the binary was built from

#include <chrono>
#include <cstdint>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

namespace gm::bench {

struct BenchRecord {
  std::string bench;
  std::string metric;
  double value = 0.0;
  std::string unit;
  double wall_ms = 0.0;
  std::string git_sha;
};

/// Short git sha the build was configured from (GM_GIT_SHA compile
/// definition, captured by CMake), or "unknown" outside a checkout.
std::string current_git_sha();

/// Renders one record as a single flat JSON line (no newline).
std::string render_record(const BenchRecord& record);

/// Parses one flat JSON object into a record. Unknown keys are
/// ignored; missing keys get the field's default. Throws
/// gm::RuntimeError on malformed JSON.
BenchRecord parse_bench_record(const std::string& line);

/// Reads a report file: JSONL as written by BenchReportWriter, or the
/// merged-array form written by write_merged_json (brackets and
/// trailing commas are tolerated, blank lines skipped). Throws
/// gm::RuntimeError if the file cannot be opened.
std::vector<BenchRecord> read_report(const std::string& path);

/// Collates several report files into one list (input order kept —
/// merge output is stable across reruns of the same inputs).
std::vector<BenchRecord> merge_reports(
    const std::vector<std::string>& paths);

/// Writes records as a pretty JSON array, one record per line, that
/// read_report can load back. Throws gm::RuntimeError on open failure.
void write_merged_json(const std::vector<BenchRecord>& records,
                       const std::string& path);

/// Appends records to a JSONL file (opened in append mode so every
/// bench binary of a suite run can target the same file).
class BenchReportWriter {
 public:
  explicit BenchReportWriter(std::string path);

  void append(const BenchRecord& record);
  const std::string& path() const { return path_; }
  std::uint64_t records_written() const { return records_; }

 private:
  std::string path_;
  std::ofstream out_;
  std::uint64_t records_ = 0;
};

/// Scans argv for `--json=<path>`, removes it (argc is adjusted so
/// the remaining args can go to e.g. benchmark::Initialize), and
/// returns a writer for the path — or nullptr when the flag is
/// absent.
std::unique_ptr<BenchReportWriter> writer_from_args(int& argc,
                                                    char** argv);

/// RAII reporter for the exhibit benches: construct at the top of
/// main with the binary's name and argc/argv (consumes `--json=`),
/// call metric() for any named values worth recording, and on
/// destruction a `wall_ms` record for the whole run is appended.
/// Without `--json=` every call is a no-op, so the printed exhibit is
/// unchanged.
class ExhibitReporter {
 public:
  ExhibitReporter(std::string bench_name, int& argc, char** argv);
  ~ExhibitReporter();

  ExhibitReporter(const ExhibitReporter&) = delete;
  ExhibitReporter& operator=(const ExhibitReporter&) = delete;

  void metric(const std::string& name, double value,
              const std::string& unit = "");
  bool enabled() const { return writer_ != nullptr; }

 private:
  double elapsed_ms() const;

  std::string bench_;
  std::unique_ptr<BenchReportWriter> writer_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace gm::bench
