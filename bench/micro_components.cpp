// Micro-benchmarks (google-benchmark) for the hot components: event
// queue, min-cost-flow planner, placement construction, coverage
// queries, battery stepping and the solar model.
//
// `--json=<path>` (stripped before benchmark::Initialize sees argv)
// appends one BenchRecord per benchmark — real time plus every user
// counter — for gm_bench_merge / BENCH_*.json.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>

#include "bench_support.hpp"
#include "core/engine.hpp"
#include "workload/arrival_stream.hpp"
#include "json_report.hpp"
#include "core/mincost_flow.hpp"
#include "energy/battery.hpp"
#include "energy/solar.hpp"
#include "obs/recorder.hpp"
#include "sim/simulator.hpp"
#include "storage/cluster.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace {

using namespace gm;

void BM_EventQueueScheduleRun(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  for (auto _ : state) {
    sim::Simulator sim;
    for (std::size_t i = 0; i < n; ++i)
      sim.schedule_at(static_cast<SimTime>(rng.uniform_u64(1'000'000)),
                      [] {});
    sim.run();
    benchmark::DoNotOptimize(sim.events_executed());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EventQueueScheduleRun)->Arg(1024)->Arg(16384);

void BM_MinCostFlowAssignment(benchmark::State& state) {
  const int tasks = static_cast<int>(state.range(0));
  const int slots = 24;
  Rng rng(7);
  for (auto _ : state) {
    core::MinCostFlow f(tasks + slots + 2);
    const int sink = tasks + slots + 1;
    for (int i = 0; i < tasks; ++i) f.add_edge(0, 1 + i, 4, 0);
    for (int i = 0; i < tasks; ++i)
      for (int s = 0; s < slots; ++s)
        f.add_edge(1 + i, 1 + tasks + s, 1,
                   static_cast<long long>(rng.uniform_u64(1000)));
    for (int s = 0; s < slots; ++s)
      f.add_edge(1 + tasks + s, sink, tasks, 0);
    const auto r = f.solve(0, sink);
    benchmark::DoNotOptimize(r.cost);
  }
}
BENCHMARK(BM_MinCostFlowAssignment)->Arg(32)->Arg(128);

void BM_PlacementBuild(benchmark::State& state) {
  storage::ClusterConfig config;
  config.racks = 4;
  config.nodes_per_rack = static_cast<int>(state.range(0)) / 4;
  config.placement.group_count = 1024;
  config.placement.replication = 3;
  for (auto _ : state) {
    storage::Cluster cluster(config);
    benchmark::DoNotOptimize(cluster.node_count());
  }
}
BENCHMARK(BM_PlacementBuild)->Arg(64)->Arg(256);

void BM_ChooseActiveSet(benchmark::State& state) {
  storage::ClusterConfig config;
  config.racks = 4;
  config.nodes_per_rack = 16;
  config.placement.group_count = 512;
  config.placement.replication = 3;
  storage::Cluster cluster(config);
  int target = 0;
  for (auto _ : state) {
    target = (target + 7) % 64;
    benchmark::DoNotOptimize(cluster.choose_active_set(target));
  }
}
BENCHMARK(BM_ChooseActiveSet);

void BM_BatteryStep(benchmark::State& state) {
  energy::Battery battery(
      energy::BatteryConfig::lithium_ion(kwh_to_j(40)));
  bool charge = true;
  for (auto _ : state) {
    if (charge)
      benchmark::DoNotOptimize(battery.charge(kwh_to_j(1), 3600.0));
    else
      benchmark::DoNotOptimize(battery.discharge(kwh_to_j(1), 3600.0));
    battery.apply_self_discharge(3600.0);
    charge = !charge;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BatteryStep);

// One short GreenMatch run per iteration; surfaces the planner's CPU
// time (SchedulerReport::plan_solve_ms_total) as a per-run counter so
// regressions in the flow planner show up here, not just in R-Tab-2.
void BM_GreenMatchPlanDay(benchmark::State& state) {
  auto config = core::ExperimentConfig::canonical();
  config.workload.duration_days = 1;
  config.policy.kind = core::PolicyKind::kGreenMatch;
  config.policy.deferral_fraction = 1.0;
  double plan_ms = 0.0;
  double pops = 0.0, augments = 0.0, warm = 0.0;
  for (auto _ : state) {
    const auto r = core::run_experiment(config).result;
    plan_ms += r.scheduler.plan_solve_ms_total;
    pops += static_cast<double>(r.scheduler.solver_dijkstra_pops);
    augments +=
        static_cast<double>(r.scheduler.solver_augmenting_paths);
    warm += static_cast<double>(r.scheduler.warm_accepts);
    benchmark::DoNotOptimize(r.scheduler.plan_solve_ms_total);
  }
  const auto iters = static_cast<double>(state.iterations());
  state.counters["plan_ms_per_run"] =
      benchmark::Counter(plan_ms / iters);
  // Solver work per run (SolveStats totals): a perf regression that
  // holds wall-time but does more Dijkstra work still shows up here.
  state.counters["dijkstra_pops_per_run"] =
      benchmark::Counter(pops / iters);
  state.counters["augmenting_paths_per_run"] =
      benchmark::Counter(augments / iters);
  state.counters["warm_accepts_per_run"] =
      benchmark::Counter(warm / iters);
}
BENCHMARK(BM_GreenMatchPlanDay)->Unit(benchmark::kMillisecond);

// The massive-fleet scale tier (configs/massive_fleet_week.conf at
// scale 8, configs/colossal_fleet_week.conf at scale 80): `scale`
// multiplies racks, groups, supply, storage and the pending-queue
// depth together, so every tier sits in the same insufficient-solar
// regime while the planner's pool deepens with the fleet. Arg(1) is
// the 1,280-node smoke tier the ctest suite runs; Arg(8) is the
// 10,240-node week the PR5 acceptance numbers quote; Arg(80) is the
// 102,400-node colossal week the PR8 incremental cost-scaling A/B
// (BENCH_PR8.json) quotes.
core::ExperimentConfig massive_fleet_config(int scale) {
  auto config = core::ExperimentConfig::canonical();
  config.cluster.racks = 16 * scale;
  config.cluster.nodes_per_rack = 80;
  config.cluster.placement.group_count = 1024 * scale;
  config.workload = workload::WorkloadSpec::canonical(7, 1234);
  config.workload.task_scale = static_cast<double>(scale);
  config.panel_area_m2 = 150.0 * 16.0 * scale;
  config.battery = energy::BatteryConfig::lithium_ion(
      kwh_to_j(50.0 * 16.0 * scale));
  config.policy.kind = core::PolicyKind::kGreenMatch;
  config.policy.deferral_fraction = 1.0;
  return config;
}

// One full week per iteration against a trace generated once outside
// the timing loop; plan_ms_per_run isolates the planner from the rest
// of the engine. Iterations are pinned to 1 (a run is seconds long);
// use --benchmark_repetitions for medians.
void BM_GreenMatchPlanWeek(benchmark::State& state) {
  auto config = massive_fleet_config(static_cast<int>(state.range(0)));
  gm::bench::use_shared_workload(config);
  double plan_ms = 0.0;
  for (auto _ : state) {
    const auto r = core::run_experiment(config).result;
    plan_ms += r.scheduler.plan_solve_ms_total;
    benchmark::DoNotOptimize(r.scheduler.plan_solve_ms_total);
  }
  state.counters["plan_ms_per_run"] = benchmark::Counter(
      plan_ms / static_cast<double>(state.iterations()));
}
BENCHMARK(BM_GreenMatchPlanWeek)
    ->Arg(1)
    ->Arg(8)
    ->Arg(80)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

// The same scale ladder through the cost-scaling solver with
// incremental re-optimization (PolicyConfig::cost_scaling_planner).
// plan_ms_per_run is directly comparable against BM_GreenMatchPlanWeek
// at the same Arg; the incremental counters show how many slot replans
// rode the residual-graph patch path vs fell back to a cold build —
// the PR8 sub-100ms median-slot-replan criterion is
// plan_ms_per_run / 168 slots on this benchmark at Arg(80).
void BM_GreenMatchPlanWeekCostScaling(benchmark::State& state) {
  auto config = massive_fleet_config(static_cast<int>(state.range(0)));
  config.policy.cost_scaling_planner = true;
  gm::bench::use_shared_workload(config);
  double plan_ms = 0.0;
  double accepts = 0.0, rebuilds = 0.0;
  for (auto _ : state) {
    const auto r = core::run_experiment(config).result;
    plan_ms += r.scheduler.plan_solve_ms_total;
    accepts +=
        static_cast<double>(r.scheduler.solver_incremental_accepts);
    rebuilds +=
        static_cast<double>(r.scheduler.solver_incremental_rebuilds);
    benchmark::DoNotOptimize(r.scheduler.plan_solve_ms_total);
  }
  const auto iters = static_cast<double>(state.iterations());
  state.counters["plan_ms_per_run"] =
      benchmark::Counter(plan_ms / iters);
  state.counters["incremental_accepts_per_run"] =
      benchmark::Counter(accepts / iters);
  state.counters["incremental_rebuilds_per_run"] =
      benchmark::Counter(rebuilds / iters);
}
BENCHMARK(BM_GreenMatchPlanWeekCostScaling)
    ->Arg(1)
    ->Arg(8)
    ->Arg(80)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

// The scale ladder through the sharded planner (scheduler.shards = 8,
// the PR9 tentpole): eight per-shard flow networks per slot plus the
// green-headroom reconciliation pass, instead of one fleet-wide
// network. plan_ms_per_run is directly comparable against
// BM_GreenMatchPlanWeek at the same Arg — the sharding win is the
// superlinear term of the flat solve, so it grows with the tier;
// reconciliation_solves_per_run shows how often the residual pass had
// cross-shard headroom worth a re-solve.
void BM_GreenMatchPlanWeekSharded(benchmark::State& state) {
  auto config = massive_fleet_config(static_cast<int>(state.range(0)));
  config.policy.shards = 8;
  gm::bench::use_shared_workload(config);
  double plan_ms = 0.0;
  double reconciliations = 0.0;
  for (auto _ : state) {
    const auto artifacts = core::run_experiment(config);
    const auto& r = artifacts.result;
    plan_ms += r.scheduler.plan_solve_ms_total;
    reconciliations +=
        static_cast<double>(r.scheduler.reconciliation_solves);
    benchmark::DoNotOptimize(r.scheduler.plan_solve_ms_total);
  }
  const auto iters = static_cast<double>(state.iterations());
  state.counters["plan_ms_per_run"] =
      benchmark::Counter(plan_ms / iters);
  state.counters["reconciliation_solves_per_run"] =
      benchmark::Counter(reconciliations / iters);
}
BENCHMARK(BM_GreenMatchPlanWeekSharded)
    ->Arg(1)
    ->Arg(8)
    ->Arg(80)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

// The streaming admission fast path (PR10): a massive-fleet week in
// open-system mode, arrivals pouring in at ~150*scale tasks/hour,
// every admit/defer/reject taken by the cached-headroom ledger with
// zero solver work. admission_tasks_per_s is sustained decision
// throughput over the hot-path CPU alone (the slot replans around it
// are the same work the closed-loop engine does and are timed by
// BM_GreenMatchPlanWeek); the latency counters are the per-decision
// wall quantiles. Compare against BM_AdmissionThroughputNaive at the
// same Arg for the A/B in BENCH_PR10.json.
void BM_AdmissionThroughput(benchmark::State& state) {
  const int scale = static_cast<int>(state.range(0));
  auto config = massive_fleet_config(scale);
  gm::bench::use_shared_workload(config);
  config.arrivals.enabled = true;
  config.arrivals.rate_per_h = 150.0 * scale;
  config.arrivals.seed = 9090;
  double decisions = 0.0, wall_ms = 0.0, p50 = 0.0, p99 = 0.0;
  for (auto _ : state) {
    const auto r = core::run_experiment(config).result;
    decisions += static_cast<double>(r.qos.admission_decisions);
    wall_ms += r.scheduler.admission_decision_wall_ms;
    p50 = r.scheduler.admission_decision_p50_us;
    p99 = r.scheduler.admission_decision_p99_us;
    benchmark::DoNotOptimize(r.qos.admission_decisions);
  }
  state.counters["admission_tasks_per_s"] =
      benchmark::Counter(wall_ms > 0.0 ? decisions / (wall_ms / 1000.0)
                                       : 0.0);
  state.counters["decision_p50_us"] = benchmark::Counter(p50);
  state.counters["decision_p99_us"] = benchmark::Counter(p99);
}
BENCHMARK(BM_AdmissionThroughput)
    ->Arg(1)
    ->Arg(8)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

// The replan-per-arrival strawman the fast path replaces: every
// arrival re-runs the policy's full slot decision (a MinCostFlow
// solve for GreenMatch) on the live context with the newcomer
// appended. A couple dozen arrivals is plenty to price it — the
// counters carry per-decision wall and the same tasks/sec metric.
void BM_AdmissionThroughputNaive(benchmark::State& state) {
  const int scale = static_cast<int>(state.range(0));
  auto config = massive_fleet_config(scale);
  gm::bench::use_shared_workload(config);
  constexpr int kWarmSlots = 24;
  constexpr std::size_t kArrivals = 24;

  workload::ArrivalSpec spec;
  spec.enabled = true;
  spec.rate_per_h = 150.0 * scale;
  spec.seed = 9090;
  std::vector<double> decision_us;
  double wall_ms_total = 0.0;
  for (auto _ : state) {
    core::SimulationEngine engine(config);
    for (SlotIndex s = 0; s < kWarmSlots; ++s) engine.run_slot(s);
    core::SlotContext ctx = engine.observe(kWarmSlots);

    workload::ArrivalStream stream(
        spec, config.cluster.placement.group_count);
    std::vector<storage::BackgroundTask> arrivals;
    stream.pull(0, 7 * 86400, arrivals);
    arrivals.resize(std::min(arrivals.size(), kArrivals));

    auto policy = core::make_policy(config.policy);
    policy->initialize(engine.facts());
    for (const auto& task : arrivals) {
      core::PendingTask p;
      p.task = task;
      p.task.release = ctx.start;
      p.task.deadline = ctx.start + static_cast<SimTime>(
          task.work_s + spec.deadline_slack_s);
      p.remaining_s = task.work_s;
      ctx.pending.push_back(p);
      const auto t0 = std::chrono::steady_clock::now();
      const auto decision = policy->decide(ctx);
      const auto t1 = std::chrono::steady_clock::now();
      benchmark::DoNotOptimize(decision.run_tasks.size());
      const double us =
          std::chrono::duration<double, std::micro>(t1 - t0).count();
      decision_us.push_back(us);
      wall_ms_total += us / 1000.0;
    }
  }
  std::sort(decision_us.begin(), decision_us.end());
  const auto quant = [&](double q) {
    if (decision_us.empty()) return 0.0;
    const auto i = static_cast<std::size_t>(
        q * static_cast<double>(decision_us.size() - 1));
    return decision_us[i];
  };
  state.counters["admission_tasks_per_s"] = benchmark::Counter(
      wall_ms_total > 0.0
          ? static_cast<double>(decision_us.size()) /
                (wall_ms_total / 1000.0)
          : 0.0);
  state.counters["decision_p50_us"] = benchmark::Counter(quant(0.5));
  state.counters["decision_p99_us"] = benchmark::Counter(quant(0.99));
}
BENCHMARK(BM_AdmissionThroughputNaive)
    ->Arg(1)
    ->Arg(8)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

// Cost of GM_OBS_SCOPE when no recorder is installed: one
// thread-local read and a branch. Guards the <2% overhead budget.
void BM_ObsScopeDisabled(benchmark::State& state) {
  for (auto _ : state) {
    GM_OBS_SCOPE("bench.disabled");
    benchmark::DoNotOptimize(obs::current_recorder());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ObsScopeDisabled);

// Cost of GM_OBS_SCOPE when a profiling recorder *is* installed.
// Guards the heterogeneous-lookup fast path in PhaseProfiler::record:
// a steady-state hit must not construct a std::string per call.
void BM_ObsScopeProfiled(benchmark::State& state) {
  obs::RecorderConfig config;
  config.profile = true;
  obs::Recorder recorder(config);
  obs::ScopedRecorder install(&recorder);
  for (auto _ : state) {
    GM_OBS_SCOPE("bench.profiled");
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ObsScopeProfiled);

// Incremental cost of decision provenance: the same one-day GreenMatch
// run with a tracing recorder attached, provenance off vs on. The
// delta between the pair is what --provenance costs end to end
// (per-task decision demux in plan_flow plus JSONL serialization);
// the trace itself goes to /dev/null so disk speed stays out of the
// measurement.
void provenance_run(benchmark::State& state, bool provenance) {
  auto config = core::ExperimentConfig::canonical();
  config.workload.duration_days = 1;
  config.policy.kind = core::PolicyKind::kGreenMatch;
  config.policy.deferral_fraction = 1.0;
  std::uint64_t decisions = 0;
  for (auto _ : state) {
    obs::RecorderConfig rc;
    rc.trace_path = "/dev/null";
    rc.provenance = provenance;
    auto recorder = std::make_shared<obs::Recorder>(rc);
    const auto artifacts = core::run_experiment(config, recorder);
    recorder->finish();
    for (const char* a : {"run", "defer", "beyond", "drop"})
      decisions +=
          recorder->metrics().counter(std::string("decisions.") + a);
    benchmark::DoNotOptimize(artifacts.result.energy.brown_j);
  }
  state.counters["decisions_per_run"] = benchmark::Counter(
      static_cast<double>(decisions) /
      static_cast<double>(state.iterations()));
}

void BM_ProvenanceDisabled(benchmark::State& state) {
  provenance_run(state, false);
}
BENCHMARK(BM_ProvenanceDisabled)->Unit(benchmark::kMillisecond);

void BM_ProvenanceEnabled(benchmark::State& state) {
  provenance_run(state, true);
}
BENCHMARK(BM_ProvenanceEnabled)->Unit(benchmark::kMillisecond);

void BM_SolarPower(benchmark::State& state) {
  energy::SolarConfig config;
  config.horizon_days = 14;
  energy::SolarIrradianceModel model(config);
  SimTime t = 0;
  for (auto _ : state) {
    t = (t + 937) % (14 * 86400);
    benchmark::DoNotOptimize(model.power_w(t));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SolarPower);

// Console output as usual, plus one record per finished benchmark
// (real time and every user counter) appended to the --json report.
class JsonAppendReporter : public benchmark::ConsoleReporter {
 public:
  explicit JsonAppendReporter(gm::bench::BenchReportWriter* writer)
      : writer_(writer) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    ConsoleReporter::ReportRuns(runs);
    if (!writer_) return;
    for (const Run& run : runs) {
      if (run.error_occurred) continue;
      const double wall_ms = elapsed_ms();
      const std::string name = run.benchmark_name();
      // The cv aggregate is a dimensionless ratio (stddev/mean);
      // GetAdjustedRealTime would scale it by the time-unit
      // multiplier, recording e.g. 0.004 as ~4 million "ns".
      const bool ratio =
          run.run_type == Run::RT_Aggregate &&
          run.aggregate_unit == benchmark::kPercentage;
      writer_->append({name, "real_time",
                       ratio ? run.real_accumulated_time
                             : run.GetAdjustedRealTime(),
                       ratio ? ""
                             : benchmark::GetTimeUnitString(
                                   run.time_unit),
                       wall_ms, gm::bench::current_git_sha()});
      for (const auto& [counter_name, counter] : run.counters)
        writer_->append({name, counter_name,
                         static_cast<double>(counter.value), "",
                         wall_ms, gm::bench::current_git_sha()});
    }
  }

 private:
  double elapsed_ms() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }
  gm::bench::BenchReportWriter* writer_;
  std::chrono::steady_clock::time_point start_ =
      std::chrono::steady_clock::now();
};

}  // namespace

int main(int argc, char** argv) {
  auto writer = gm::bench::writer_from_args(argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  JsonAppendReporter reporter(writer.get());
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  return 0;
}
