// R-Tab-1: battery technology characteristics (lead-acid vs
// lithium-ion presets) and derived model behaviour — the analogue of
// the lineage's battery-parameters table, extended with the derived
// quantities the simulator actually uses.

#include "bench_support.hpp"
#include "energy/battery.hpp"

int main(int argc, char** argv) {
  gm::bench::ExhibitReporter reporter("tab1_battery_presets", argc, argv);
  using namespace gm;
  bench::print_header("R-Tab-1",
                      "battery technology characteristics (90 kWh)");

  const auto la = energy::BatteryConfig::lead_acid(kwh_to_j(90));
  const auto li = energy::BatteryConfig::lithium_ion(kwh_to_j(90));

  TextTable t({"parameter", "lead-acid", "lithium-ion"});
  const auto row = [&](const std::string& name, double a, double b,
                       int prec = 2) {
    t.add_row({name, TextTable::num(a, prec), TextTable::num(b, prec)});
  };
  row("DoD", la.depth_of_discharge, li.depth_of_discharge);
  row("charge rate (C/h)", la.charge_rate_c_per_hour,
      li.charge_rate_c_per_hour, 3);
  row("charge efficiency", la.charge_efficiency, li.charge_efficiency);
  row("self-discharge (%/day)", la.self_discharge_per_day * 100,
      li.self_discharge_per_day * 100, 2);
  row("discharge/charge ratio", la.discharge_to_charge_ratio,
      li.discharge_to_charge_ratio, 0);
  row("price ($/kWh)", la.price_per_kwh_usd, li.price_per_kwh_usd, 0);
  row("max charge (kW)", la.max_charge_w() / 1000,
      li.max_charge_w() / 1000);
  row("max discharge (kW)", la.max_discharge_w() / 1000,
      li.max_discharge_w() / 1000);
  row("usable capacity (kWh)", gm::j_to_kwh(la.usable_capacity_j()),
      gm::j_to_kwh(li.usable_capacity_j()));
  row("volume (L)", la.volume_l(), li.volume_l(), 0);
  row("price ($)", la.price_usd(), li.price_usd(), 0);
  t.print(std::cout);

  // Behavioural check: round-trip one full day of charge/discharge and
  // report delivered fraction (the effective round-trip efficiency).
  std::cout << "\nround-trip behaviour (offer 90 kWh over 8 h, then "
               "drain):\n";
  TextTable rt({"technology", "accepted kWh", "delivered kWh",
                "round-trip eff", "conv. loss kWh"});
  struct RoundTrip {
    Joules accepted = 0.0;
    Joules delivered = 0.0;
    Joules loss = 0.0;
  };
  const std::vector<energy::BatteryConfig> techs{la, li};
  const auto trips = bench::parallel_map<RoundTrip>(
      techs.size(), [&](std::size_t i) {
        energy::Battery b(techs[i]);
        RoundTrip trip;
        for (int h = 0; h < 8; ++h)
          trip.accepted += b.charge(kwh_to_j(90.0 / 8), 3600.0);
        for (int h = 0; h < 24; ++h)
          trip.delivered += b.discharge(kwh_to_j(90), 3600.0);
        trip.loss = b.conversion_loss_j();
        return trip;
      });
  for (std::size_t i = 0; i < techs.size(); ++i) {
    const auto& trip = trips[i];
    const auto name =
        energy::battery_technology_name(techs[i].technology);
    rt.add_row({name, bench::fmt(j_to_kwh(trip.accepted)),
                bench::fmt(j_to_kwh(trip.delivered)),
                bench::fmt(trip.delivered / trip.accepted, 3),
                bench::fmt(j_to_kwh(trip.loss))});
    bench::csv_row({name, bench::fmt(j_to_kwh(trip.accepted), 4),
                    bench::fmt(j_to_kwh(trip.delivered), 4)});
  }
  rt.print(std::cout);
  return 0;
}
