// R-Tab-2: full policy comparison across three workload mixes
// (canonical, read-heavy, backup-heavy) at event-level fidelity:
// brown energy, green utilization, deadline misses, request p95
// latency, and scheduling churn.

#include "bench_support.hpp"

int main(int argc, char** argv) {
  gm::bench::ExhibitReporter reporter("tab2_policy_comparison", argc, argv);
  using namespace gm;
  bench::print_header(
      "R-Tab-2",
      "policy comparison, 3 workload mixes, event-level fidelity");

  struct Mix {
    std::string name;
    workload::WorkloadSpec spec;
  };
  const std::vector<Mix> mixes{
      {"canonical", workload::WorkloadSpec::canonical()},
      {"read-heavy", workload::WorkloadSpec::read_heavy()},
      {"backup-heavy", workload::WorkloadSpec::backup_heavy()},
  };
  const std::vector<core::PolicyKind> kinds{
      core::PolicyKind::kAsap, core::PolicyKind::kNightShift,
      core::PolicyKind::kOpportunistic, core::PolicyKind::kGreenMatchGreedy,
      core::PolicyKind::kGreenMatch};

  TextTable t({"mix", "policy", "brown kWh", "green util", "misses",
               "p95 ms", "migr", "cycles", "wakeups", "plan ms"});
  // mix × policy grid, flattened row-major for the pool.
  std::vector<core::ExperimentConfig> configs;
  for (const auto& mix : mixes) {
    for (auto kind : kinds) {
      auto config = bench::canonical_config();
      config.workload = mix.spec;
      config.panel_area_m2 = bench::kInsufficientPanelM2;
      config.battery = energy::BatteryConfig::lithium_ion(kwh_to_j(40));
      config.policy.kind = kind;
      config.policy.deferral_fraction = 1.0;
      config.fidelity = core::Fidelity::kEventLevel;
      configs.push_back(config);
    }
  }
  const auto results = bench::run_sweep(configs);
  for (std::size_t m = 0; m < mixes.size(); ++m) {
    const auto& mix = mixes[m];
    for (std::size_t k = 0; k < kinds.size(); ++k) {
      const auto& r = results[m * kinds.size() + k];
      t.add_row({mix.name, r.scheduler.policy_name,
                 bench::fmt(r.brown_kwh()),
                 TextTable::percent(r.energy.green_utilization()),
                 std::to_string(r.qos.deadline_misses),
                 bench::fmt(r.qos.read_latency_p95_s * 1000.0, 1),
                 std::to_string(r.scheduler.task_migrations),
                 std::to_string(r.scheduler.node_power_ons +
                                r.scheduler.node_power_offs),
                 std::to_string(r.scheduler.forced_wakeups),
                 bench::fmt(r.scheduler.plan_solve_ms_total, 1)});
      bench::csv_row({mix.name, r.scheduler.policy_name,
                      bench::fmt(r.brown_kwh(), 4),
                      bench::fmt(r.energy.green_utilization(), 4),
                      bench::fmt(r.scheduler.plan_solve_ms_total, 2)});
    }
  }
  t.print(std::cout);
  return 0;
}
