// R-Tab-3 (extension): battery wear per policy — equivalent cycles
// accumulated over the evaluation week, remaining health, and the
// projected calendar life of the ESD under each scheduling policy.
// Deferral policies route green energy around the battery, so they
// should also extend its life — an economic argument the sizing
// discussion needs.

#include "bench_support.hpp"

int main(int argc, char** argv) {
  gm::bench::ExhibitReporter reporter("tab3_battery_lifetime", argc, argv);
  using namespace gm;
  bench::print_header(
      "R-Tab-3",
      "battery wear per policy (40 kWh LI, insufficient solar)");

  struct Config {
    std::string label;
    core::PolicyKind kind;
    double deferral;
  };
  const std::vector<Config> policies{
      {"esd-only", core::PolicyKind::kAsap, 0.0},
      {"opp-30%", core::PolicyKind::kOpportunistic, 0.3},
      {"opp-100%", core::PolicyKind::kOpportunistic, 1.0},
      {"greenmatch", core::PolicyKind::kGreenMatch, 1.0},
  };

  TextTable t({"policy", "cycles/week", "through-battery kWh",
               "projected life (years)", "battery loss kWh"});
  for (const auto& p : policies) {
    auto config = bench::canonical_config();
    config.panel_area_m2 = bench::kInsufficientPanelM2;
    config.battery = energy::BatteryConfig::lithium_ion(kwh_to_j(40));
    config.policy.kind = p.kind;
    config.policy.deferral_fraction = p.deferral;
    const auto r = bench::run(config);
    const double cycles_per_week = r.battery.equivalent_cycles;
    // LI preset: 4000 cycles to end of life.
    const double weeks_to_eol =
        cycles_per_week > 0 ? 4000.0 / cycles_per_week : 1e9;
    t.add_row({p.label, bench::fmt(cycles_per_week),
               bench::fmt(j_to_kwh(r.battery.discharged_out_j)),
               cycles_per_week > 0
                   ? bench::fmt(weeks_to_eol / 52.0, 1)
                   : "∞",
               bench::fmt(j_to_kwh(r.battery.conversion_loss_j +
                                   r.battery.self_discharge_loss_j))});
    bench::csv_row({p.label, bench::fmt(cycles_per_week, 4),
                    bench::fmt(weeks_to_eol / 52.0, 2)});
  }
  t.print(std::cout);
  std::cout << "\n(deferral substitutes direct green consumption for "
               "battery round-trips: fewer cycles, longer ESD life)\n";
  return 0;
}
