// R-Tab-4 (extension): carbon-aware scheduling. Under a time-varying
// grid carbon profile, minimizing grid *kWh* and minimizing grid
// *gCO2e* are different objectives: the carbon-aware matcher shifts
// unavoidable grid draws into clean-grid hours. Three grid profiles ×
// {esd-only, greenmatch, greenmatch+carbon}.

#include "bench_support.hpp"
#include "energy/grid.hpp"

int main(int argc, char** argv) {
  gm::bench::ExhibitReporter reporter("tab4_carbon_aware", argc, argv);
  using namespace gm;
  bench::print_header(
      "R-Tab-4",
      "carbon-aware scheduling under time-varying grid intensity");

  struct Grid {
    std::string name;
    energy::GridConfig config;
  };
  const std::vector<Grid> grids{
      {"flat-300", energy::GridConfig::flat(300.0)},
      {"wind-heavy", energy::GridConfig::wind_heavy()},
      {"solar-heavy", energy::GridConfig::solar_heavy()},
  };
  struct Policy {
    std::string name;
    core::PolicyKind kind;
    bool carbon_aware;
  };
  const std::vector<Policy> policies{
      {"esd-only", core::PolicyKind::kAsap, false},
      {"greenmatch", core::PolicyKind::kGreenMatch, false},
      {"greenmatch+carbon", core::PolicyKind::kGreenMatch, true},
  };

  TextTable t({"grid", "policy", "brown kWh", "carbon kg",
               "g/kWh effective"});
  for (const auto& grid : grids) {
    for (const auto& p : policies) {
      auto config = bench::canonical_config();
      config.panel_area_m2 = bench::kInsufficientPanelM2;
      config.battery = energy::BatteryConfig::lithium_ion(kwh_to_j(40));
      config.grid = grid.config;
      config.policy.kind = p.kind;
      config.policy.carbon_aware = p.carbon_aware;
      const auto r = bench::run(config);
      const double effective =
          r.brown_kwh() > 0 ? r.grid_carbon_g / r.brown_kwh() : 0.0;
      t.add_row({grid.name, p.name, bench::fmt(r.brown_kwh()),
                 bench::fmt(r.grid_carbon_g / 1000.0),
                 bench::fmt(effective, 0)});
      bench::csv_row({grid.name, p.name, bench::fmt(r.brown_kwh(), 4),
                      bench::fmt(r.grid_carbon_g / 1000.0, 4)});
    }
  }
  t.print(std::cout);
  std::cout << "\n(carbon-aware matching should lower kg — and the "
               "effective g/kWh — on the varying grids at roughly "
               "equal kWh; on the flat grid it changes nothing)\n";
  return 0;
}
