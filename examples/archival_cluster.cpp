// Archival-cluster scenario: a backup-heavy storage system (nightly
// backup windows, bulk rebalances) running at event-level fidelity —
// the workload whose deferrable share is largest and whose foreground
// QoS must survive aggressive node power-downs. Demonstrates the full
// event-level API: the request router, write offloading, forced
// wake-ups and QoS reporting.
//
// Build & run:  cmake --build build && ./build/examples/archival_cluster

#include <iostream>

#include "core/engine.hpp"
#include "util/table.hpp"

using namespace gm;

int main() {
  auto config = core::ExperimentConfig::canonical();
  config.workload = workload::WorkloadSpec::backup_heavy();
  config.panel_area_m2 = 160.0;
  config.battery = energy::BatteryConfig::lithium_ion(kwh_to_j(60.0));
  config.fidelity = core::Fidelity::kEventLevel;

  std::cout << "Archival cluster: " << config.cluster.total_nodes()
            << " nodes, backup-heavy week, 160 m² PV, 60 kWh LI "
               "battery\n\n";

  TextTable t({"policy", "brown kWh", "green util", "misses",
               "p50 ms", "p95 ms", "offloaded", "wakeups"});
  for (auto kind : {core::PolicyKind::kAsap,
                    core::PolicyKind::kOpportunistic,
                    core::PolicyKind::kGreenMatch}) {
    config.policy.kind = kind;
    config.policy.deferral_fraction = 1.0;
    const auto r = core::run_experiment(config).result;
    t.add_row({r.scheduler.policy_name, TextTable::num(r.brown_kwh()),
               TextTable::percent(r.energy.green_utilization()),
               std::to_string(r.qos.deadline_misses),
               TextTable::num(r.qos.read_latency_p50_s * 1000, 1),
               TextTable::num(r.qos.read_latency_p95_s * 1000, 1),
               std::to_string(r.qos.offloaded_writes),
               std::to_string(r.scheduler.forced_wakeups)});
  }
  t.print(std::cout);

  std::cout << "\nDetailed report for GreenMatch:\n\n";
  config.policy.kind = core::PolicyKind::kGreenMatch;
  core::run_experiment(config).result.print_summary(std::cout);
  return 0;
}
