// Follow-the-sun: three storage sites spread around the globe, one
// common task stream per site, and the federation broker shipping
// deferrable work to whichever site has sun to spare. Demonstrates the
// federation API: building a FederationConfig, running lockstep sites,
// and reading per-site + fleet-level results.
//
// Build & run:  cmake --build build && ./build/examples/follow_the_sun

#include <iostream>

#include "federation/federation.hpp"
#include "util/table.hpp"

using namespace gm;

int main() {
  core::ExperimentConfig base;
  base.cluster.racks = 2;
  base.cluster.nodes_per_rack = 12;
  base.cluster.placement.group_count = 256;
  base.cluster.placement.replication = 3;
  base.workload = workload::WorkloadSpec::canonical(5, 2026);
  for (auto& c : base.workload.task_classes) c.mean_per_day *= 0.5;
  base.workload.foreground.base_rate_per_s = 1.5;
  base.solar.horizon_days = 10;
  base.panel_area_m2 = 90.0;
  base.battery = energy::BatteryConfig::lithium_ion(kwh_to_j(15.0));
  base.policy.kind = core::PolicyKind::kGreenMatch;

  // One of the three sites has no renewables at all — the case the
  // broker exists for.
  auto config = federation::make_follow_the_sun(base, 3);
  config.sites[1].experiment.panel_area_m2 = 0.0;
  config.min_surplus_gap_w = 500.0;

  std::cout << "Three sites, 5 simulated days; site-1 has no panels.\n\n";

  for (bool routing : {false, true}) {
    config.enable_task_routing = routing;
    const auto r = federation::run_federation(config);
    std::cout << (routing ? "WITH task routing:\n"
                          : "WITHOUT task routing:\n");
    TextTable t({"site", "brown kWh", "green util", "tasks done",
                 "misses"});
    for (const auto& s : r.sites)
      t.add_row({s.name, TextTable::num(s.result.brown_kwh()),
                 TextTable::percent(s.result.energy.green_utilization()),
                 std::to_string(s.result.qos.tasks_completed),
                 std::to_string(s.result.qos.deadline_misses)});
    t.print(std::cout);
    std::cout << "  fleet grid total: "
              << TextTable::num(r.total_grid_kwh()) << " kWh ("
              << r.tasks_moved << " tasks moved, WAN "
              << TextTable::num(j_to_kwh(r.wan_energy_j), 3)
              << " kWh)\n\n";
  }
  std::cout << "The broker moves work away from the dark site only "
               "when its deadline slack allows and the sunny sites "
               "have spare green capacity.\n";
  return 0;
}
