// Quickstart: simulate one week of a 64-node storage cluster powered
// by a 120 m² solar array and a 40 kWh lithium-ion battery, scheduled
// by GreenMatch, and print the energy/QoS summary.
//
// Build & run:  cmake --build build && ./build/examples/quickstart

#include <iostream>

#include "core/engine.hpp"

int main() {
  using namespace gm;

  core::ExperimentConfig config = core::ExperimentConfig::canonical();
  config.battery = energy::BatteryConfig::lithium_ion(kwh_to_j(40.0));
  config.policy.kind = core::PolicyKind::kGreenMatch;
  config.fidelity = core::Fidelity::kEventLevel;

  std::cout << "GreenMatch quickstart — one simulated week, "
            << config.cluster.total_nodes() << " nodes, "
            << config.panel_area_m2 << " m² PV, "
            << j_to_kwh(config.battery.capacity_j) << " kWh "
            << energy::battery_technology_name(config.battery.technology)
            << " battery\n\n";

  const core::RunArtifacts artifacts = core::run_experiment(config);
  artifacts.result.print_summary(std::cout);

  std::cout << "\nFor comparison, the energy-oblivious baseline "
               "(same battery):\n\n";
  config.policy.kind = core::PolicyKind::kAsap;
  const core::RunArtifacts baseline = core::run_experiment(config);
  baseline.result.print_summary(std::cout);

  const double saved =
      baseline.result.brown_kwh() - artifacts.result.brown_kwh();
  std::cout << "\nGreenMatch used " << saved
            << " kWh less grid energy than the baseline ("
            << (baseline.result.brown_kwh() > 0
                    ? 100.0 * saved / baseline.result.brown_kwh()
                    : 0.0)
            << "% reduction).\n";
  return 0;
}
