// Sizing study: how big do the PV array and the battery need to be for
// a given storage cluster and workload? Walks the two-step methodology
// from the evaluation: (1) find the panel area that covers the
// workload with an ideal battery, (2) find the smallest real battery
// that keeps brown energy near zero at that area — for both the
// renewable-aware scheduler and the ESD-only baseline.
//
// Build & run:  cmake --build build && ./build/examples/sizing_study

#include <iostream>

#include "core/engine.hpp"
#include "util/table.hpp"

using namespace gm;

namespace {

core::ExperimentConfig base_config() {
  auto config = core::ExperimentConfig::canonical();
  // A shorter 5-day study keeps this example snappy.
  config.workload = workload::WorkloadSpec::canonical(5);
  config.solar.horizon_days = 10;
  return config;
}

double brown_kwh_for(core::ExperimentConfig config) {
  return core::run_experiment(config).result.brown_kwh();
}

}  // namespace

int main() {
  std::cout << "Step 1 — panel area for full solar coverage "
               "(ideal battery, ASAP policy)\n\n";

  TextTable panels({"area m²", "brown kWh", "of demand"});
  double chosen_area = 0.0;
  for (double area = 80.0; area <= 400.0; area += 80.0) {
    auto config = base_config();
    config.policy.kind = core::PolicyKind::kAsap;
    config.panel_area_m2 = area;
    config.battery = energy::BatteryConfig::ideal(kwh_to_j(50000.0));
    const auto r = core::run_experiment(config).result;
    panels.add_row({TextTable::num(area, 0),
                    TextTable::num(r.brown_kwh()),
                    TextTable::percent(r.energy.brown_j /
                                       r.energy.demand_j)});
    if (chosen_area == 0.0 &&
        r.energy.brown_j < 0.03 * r.energy.demand_j)
      chosen_area = area;
  }
  panels.print(std::cout);
  if (chosen_area == 0.0) chosen_area = 400.0;
  std::cout << "\n→ using " << chosen_area << " m²\n\n";

  std::cout << "Step 2 — smallest real LI battery with near-zero brown "
               "at that area\n\n";
  TextTable batteries(
      {"battery kWh", "asap brown", "greenmatch brown", "price $"});
  for (double kwh = 0.0; kwh <= 160.0; kwh += 40.0) {
    std::vector<std::string> row{TextTable::num(kwh, 0)};
    for (auto kind :
         {core::PolicyKind::kAsap, core::PolicyKind::kGreenMatch}) {
      auto config = base_config();
      config.policy.kind = kind;
      config.panel_area_m2 = chosen_area;
      config.battery =
          energy::BatteryConfig::lithium_ion(kwh_to_j(kwh));
      config.battery.initial_soc_fraction = 0.5;
      row.push_back(TextTable::num(brown_kwh_for(config)));
    }
    row.push_back(TextTable::num(
        energy::BatteryConfig::lithium_ion(kwh_to_j(kwh)).price_usd(),
        0));
    batteries.add_row(row);
  }
  batteries.print(std::cout);
  std::cout << "\nThe renewable-aware scheduler reaches any given brown "
               "level with a smaller (cheaper) battery than the "
               "ESD-only baseline.\n";
  return 0;
}
