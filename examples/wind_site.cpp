// Wind-powered site: the paper's stated future-work direction as a
// runnable scenario. A site with a small turbine instead of (or on top
// of) PV panels — wind is bursty and non-diurnal, so deadline-window
// deferral loses structure while horizon-based matching keeps some.
//
// Build & run:  cmake --build build && ./build/examples/wind_site

#include <iostream>

#include "core/engine.hpp"
#include "energy/wind.hpp"
#include "util/table.hpp"

using namespace gm;

int main() {
  auto config = core::ExperimentConfig::canonical();
  config.battery = energy::BatteryConfig::lithium_ion(kwh_to_j(40.0));

  energy::WindConfig wind;
  wind.horizon_days = 10;
  wind.rated_power_w = 18'000.0;

  std::cout << "One week, 64-node cluster, 40 kWh LI battery.\n"
            << "Comparing three supply mixes under ESD-only vs "
               "GreenMatch.\n\n";

  struct Site {
    std::string name;
    double panel_m2;
    bool use_wind;
  };
  const std::vector<Site> sites{
      {"solar-only (120 m²)", 120.0, false},
      {"wind-only (18 kW)", 0.0, true},
      {"hybrid (60 m² + wind)", 60.0, true},
  };

  TextTable t({"site", "policy", "green kWh", "brown kWh",
               "green util", "curtailed"});
  for (const auto& site : sites) {
    for (auto kind :
         {core::PolicyKind::kAsap, core::PolicyKind::kGreenMatch}) {
      config.panel_area_m2 = site.panel_m2;
      config.use_wind = site.use_wind;
      config.wind = wind;
      config.policy.kind = kind;
      const auto r = core::run_experiment(config).result;
      t.add_row({site.name, r.scheduler.policy_name,
                 TextTable::num(r.green_supply_kwh()),
                 TextTable::num(r.brown_kwh()),
                 TextTable::percent(r.energy.green_utilization()),
                 TextTable::num(r.curtailed_kwh())});
    }
  }
  t.print(std::cout);
  std::cout << "\nWind shifts the trade-off toward storage: without a "
               "diurnal pattern the scheduler's forecast horizon is "
               "the only structure left to exploit.\n";
  return 0;
}
