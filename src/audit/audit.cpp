#include "audit/audit.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <fstream>
#include <ostream>
#include <sstream>
#include <utility>

#include "core/config_io.hpp"
#include "energy/ledger.hpp"
#include "obs/trace.hpp"
#include "util/assert.hpp"
#include "util/config_kv.hpp"

namespace gm::audit {

namespace {

double scale_of(double lhs, double rhs) {
  return std::max({1.0, std::abs(lhs), std::abs(rhs)});
}

/// Accumulates one per-slot identity family into a single AuditCheck:
/// remembers the worst-offending slot (largest tolerance-normalized
/// residual) and counts violations.
class SlotFamily {
 public:
  SlotFamily(std::string name, double abs_tol, double rel_tol)
      : name_(std::move(name)), abs_tol_(abs_tol), rel_tol_(rel_tol) {}

  void observe(std::size_t slot, double lhs, double rhs,
               const char* what = nullptr) {
    const double tol = abs_tol_ + rel_tol_ * scale_of(lhs, rhs);
    const double residual = std::abs(lhs - rhs);
    const bool ok = residual <= tol;
    if (!ok) {
      if (violations_ == 0) {
        first_slot_ = slot;
        first_what_ = what ? what : "";
      }
      ++violations_;
    }
    // Track the worst residual relative to its own tolerance so the
    // reported lhs/rhs pair is the most damning one.
    const double severity = tol > 0.0 ? residual / tol : residual;
    if (severity > worst_severity_) {
      worst_severity_ = severity;
      worst_ = {lhs, rhs, tol, slot};
    }
    ++observed_;
  }

  AuditCheck finish() const {
    AuditCheck check;
    check.name = name_;
    check.passed = violations_ == 0;
    check.lhs = worst_.lhs;
    check.rhs = worst_.rhs;
    check.tolerance = worst_.tol;
    std::ostringstream detail;
    if (violations_ > 0) {
      detail << violations_ << "/" << observed_
             << " slots violated; first at slot " << first_slot_;
      if (!first_what_.empty()) detail << " (" << first_what_ << ")";
      detail << ", worst at slot " << worst_.slot;
    } else {
      detail << observed_ << " slots, worst residual "
             << std::abs(worst_.lhs - worst_.rhs) << " J at slot "
             << worst_.slot;
    }
    check.detail = detail.str();
    return check;
  }

 private:
  struct Worst {
    double lhs = 0.0, rhs = 0.0, tol = 0.0;
    std::size_t slot = 0;
  };
  std::string name_;
  double abs_tol_;
  double rel_tol_;
  std::size_t observed_ = 0;
  std::size_t violations_ = 0;
  std::size_t first_slot_ = 0;
  std::string first_what_;
  double worst_severity_ = -1.0;
  Worst worst_;
};

AuditCheck scalar_check(const std::string& name, double lhs, double rhs,
                        double abs_tol, double rel_tol,
                        const std::string& detail) {
  AuditCheck check;
  check.name = name;
  check.lhs = lhs;
  check.rhs = rhs;
  check.tolerance = abs_tol + rel_tol * scale_of(lhs, rhs);
  check.passed = std::abs(lhs - rhs) <= check.tolerance;
  check.detail = detail;
  return check;
}

AuditCheck exact_count_check(const std::string& name, std::uint64_t lhs,
                             std::uint64_t rhs,
                             const std::string& detail) {
  AuditCheck check;
  check.name = name;
  check.lhs = static_cast<double>(lhs);
  check.rhs = static_cast<double>(rhs);
  check.tolerance = 0.0;
  check.passed = lhs == rhs;
  check.detail = detail;
  return check;
}

}  // namespace

std::size_t AuditReport::failures() const {
  return static_cast<std::size_t>(
      std::count_if(checks.begin(), checks.end(),
                    [](const AuditCheck& c) { return !c.passed; }));
}

void AuditReport::print(std::ostream& out) const {
  out << "audit: " << checks.size() << " checks, " << failures()
      << " failures\n";
  for (const auto& c : checks) {
    out << "  [" << (c.passed ? "PASS" : "FAIL") << "] " << c.name;
    if (!c.passed)
      out << "  lhs=" << c.lhs << " rhs=" << c.rhs
          << " |diff|=" << std::abs(c.lhs - c.rhs)
          << " tol=" << c.tolerance;
    if (!c.detail.empty()) out << "  (" << c.detail << ")";
    out << "\n";
  }
}

void AuditReport::write_jsonl(const std::string& path,
                              const std::string& label) const {
  std::ofstream out(path, std::ios::app);
  if (!out)
    throw RuntimeError("cannot open audit output file for writing: " +
                       path);
  for (const auto& c : checks) {
    obs::JsonObject record;
    record.set("kind", "audit_check")
        .set("label", label)
        .set("check", c.name)
        .set("passed", c.passed)
        .set("lhs", c.lhs)
        .set("rhs", c.rhs)
        .set("tolerance", c.tolerance)
        .set("detail", c.detail);
    out << record.str() << "\n";
  }
  obs::JsonObject summary;
  summary.set("kind", "audit_run")
      .set("label", label)
      .set("checks", static_cast<std::uint64_t>(checks.size()))
      .set("failures", static_cast<std::uint64_t>(failures()))
      .set("passed", passed());
  out << summary.str() << "\n";
}

void AuditReport::emit(obs::Recorder& recorder) const {
  for (const auto& c : checks) {
    obs::AuditSample sample;
    sample.check = c.name;
    sample.passed = c.passed;
    sample.lhs = c.lhs;
    sample.rhs = c.rhs;
    sample.tolerance = c.tolerance;
    sample.detail = c.detail;
    recorder.record_audit(sample);
  }
}

AuditReport audit_run(const core::SimulationEngine& engine,
                      const core::RunArtifacts& artifacts,
                      const AuditOptions& opt) {
  AuditReport report;
  const core::ExperimentConfig& config = engine.config();
  const energy::Battery& battery = engine.battery();
  const auto& slots = artifacts.ledger.slots();
  const energy::LedgerTotals totals = artifacts.ledger.totals();
  const std::size_t n = slots.size();

  // --- shape: every per-slot series covers the whole fixed horizon ---
  {
    const auto expected =
        static_cast<std::uint64_t>(engine.total_slots());
    std::ostringstream detail;
    detail << "ledger=" << n << " active="
           << artifacts.active_nodes_per_slot.size()
           << " task_util=" << artifacts.task_util_per_slot.size()
           << " fg_util=" << artifacts.fg_util_per_slot.size()
           << " horizon=" << expected;
    const bool shapes_ok =
        n == artifacts.active_nodes_per_slot.size() &&
        n == artifacts.task_util_per_slot.size() &&
        n == artifacts.fg_util_per_slot.size() && n == expected;
    AuditCheck check = exact_count_check(
        "series.slot_count", static_cast<std::uint64_t>(n), expected,
        detail.str());
    check.passed = shapes_ok;
    report.checks.push_back(std::move(check));
  }
  const bool series_aligned =
      n == artifacts.active_nodes_per_slot.size() &&
      n == artifacts.task_util_per_slot.size() &&
      n == artifacts.fg_util_per_slot.size();

  // --- per-slot identities, re-verified with ABSOLUTE tolerances -----
  // The ledger's own append() check is relative to the slot's energy
  // scale (~1e7 J), so a constant leak orders of magnitude below that
  // passes it every slot; these families use opt.slot_abs_tol_j.
  SlotFamily supply_split("slot.supply_split", opt.slot_abs_tol_j,
                          opt.slot_rel_tol);
  SlotFamily demand_cover("slot.demand_coverage", opt.slot_abs_tol_j,
                          opt.slot_rel_tol);
  SlotFamily supply_integral("slot.supply_integral", opt.slot_abs_tol_j,
                             opt.slot_rel_tol);
  SlotFamily nonnegative("slot.nonnegative", opt.slot_abs_tol_j,
                         opt.slot_rel_tol);
  SlotFamily soc_bounds("slot.soc_bounds", opt.slot_abs_tol_j,
                        opt.slot_rel_tol);
  SlotFamily overheads("slot.overheads", opt.slot_abs_tol_j,
                       opt.slot_rel_tol);
  SlotFamily active_bounds("slot.active_bounds", 0.0, 0.0);
  SlotFamily utilization("slot.utilization", 1e-9, 1e-12);

  const double usable = battery.usable_capacity_j();
  const int total_nodes = config.cluster.total_nodes();
  const double max_util = config.max_utilization_per_node;

  for (std::size_t i = 0; i < n; ++i) {
    const energy::SlotRecord& s = slots[i];

    supply_split.observe(
        i, s.green_supply_j,
        s.green_direct_j + s.battery_charge_drawn_j + s.curtailed_j);
    demand_cover.observe(
        i, s.demand_j,
        s.green_direct_j + s.battery_discharged_j + s.brown_j);
    // Independent re-integration of the renewable trace over the same
    // interval (deterministic model ⇒ expected exact).
    supply_integral.observe(i, s.green_supply_j,
                            engine.supply().energy_j(s.start, s.end));

    // One-sided bounds are expressed as lhs vs clamp(lhs) so the
    // residual is the overshoot.
    const double fields[] = {s.green_supply_j,
                             s.green_direct_j,
                             s.battery_charge_drawn_j,
                             s.battery_discharged_j,
                             s.brown_j,
                             s.curtailed_j,
                             s.demand_j,
                             s.overhead_transition_j,
                             s.overhead_migration_j,
                             s.battery_stored_end_j};
    double most_negative = 0.0;
    for (const double f : fields)
      most_negative = std::min(most_negative, f);
    nonnegative.observe(i, most_negative, 0.0, "negative energy field");

    soc_bounds.observe(i, std::max(s.battery_stored_end_j, usable),
                       usable, "stored above usable capacity");
    overheads.observe(
        i,
        std::max(s.overhead_transition_j + s.overhead_migration_j,
                 s.demand_j),
        s.demand_j, "overheads exceed demand");

    if (series_aligned) {
      const int active = artifacts.active_nodes_per_slot[i];
      const double active_clamped = std::clamp(active, 0, total_nodes);
      active_bounds.observe(i, static_cast<double>(active),
                            active_clamped,
                            "active nodes outside [0, fleet]");
      // Node/task-slot conservation: assignment packs tasks under the
      // per-node utilization cap on top of the foreground share, so
      // effective task occupancy + foreground never exceeds the active
      // capacity — unless foreground alone is infeasible, in which
      // case no background work fits at all.
      const double task_util = artifacts.task_util_per_slot[i];
      const double fg_util = artifacts.fg_util_per_slot[i];
      const double capacity = active * max_util;
      if (fg_util <= capacity)
        utilization.observe(i, std::max(task_util + fg_util, capacity),
                            capacity, "tasks overflow node capacity");
      else
        utilization.observe(i, task_util, 0.0,
                            "tasks ran with infeasible foreground");
    }
  }
  report.checks.push_back(supply_split.finish());
  report.checks.push_back(demand_cover.finish());
  report.checks.push_back(supply_integral.finish());
  report.checks.push_back(nonnegative.finish());
  report.checks.push_back(soc_bounds.finish());
  report.checks.push_back(overheads.finish());
  if (series_aligned) {
    report.checks.push_back(active_bounds.finish());
    report.checks.push_back(utilization.finish());
  }

  // --- ledger totals vs an independent re-summation ------------------
  {
    struct Field {
      const char* name;
      double total;
      double sum;
    };
    Field fields[] = {
        {"green_supply_j", totals.green_supply_j, 0.0},
        {"green_direct_j", totals.green_direct_j, 0.0},
        {"battery_charge_drawn_j", totals.battery_charge_drawn_j, 0.0},
        {"battery_discharged_j", totals.battery_discharged_j, 0.0},
        {"brown_j", totals.brown_j, 0.0},
        {"curtailed_j", totals.curtailed_j, 0.0},
        {"demand_j", totals.demand_j, 0.0},
        {"overhead_transition_j", totals.overhead_transition_j, 0.0},
        {"overhead_migration_j", totals.overhead_migration_j, 0.0},
    };
    for (const auto& s : slots) {
      fields[0].sum += s.green_supply_j;
      fields[1].sum += s.green_direct_j;
      fields[2].sum += s.battery_charge_drawn_j;
      fields[3].sum += s.battery_discharged_j;
      fields[4].sum += s.brown_j;
      fields[5].sum += s.curtailed_j;
      fields[6].sum += s.demand_j;
      fields[7].sum += s.overhead_transition_j;
      fields[8].sum += s.overhead_migration_j;
    }
    AuditCheck check;
    check.name = "ledger.totals";
    check.passed = true;
    std::string bad;
    double worst = -1.0;
    for (const auto& f : fields) {
      const double tol =
          opt.run_abs_tol_j + opt.run_rel_tol * scale_of(f.total, f.sum);
      const double residual = std::abs(f.total - f.sum);
      if (residual > tol) {
        check.passed = false;
        if (bad.empty()) bad = f.name;
      }
      const double severity = tol > 0.0 ? residual / tol : residual;
      if (severity > worst) {
        worst = severity;
        check.lhs = f.total;
        check.rhs = f.sum;
        check.tolerance = tol;
        check.detail = std::string("worst field: ") + f.name;
      }
    }
    if (!check.passed)
      check.detail += ", first failing field: " + bad;
    report.checks.push_back(std::move(check));
  }

  // --- battery: ledger columns vs internal counters, and the closed
  //     internal energy identity -------------------------------------
  report.checks.push_back(scalar_check(
      "battery.flow_in", totals.battery_charge_drawn_j,
      battery.total_charged_in_j(), opt.run_abs_tol_j, opt.run_rel_tol,
      "ledger charge column vs Battery::total_charged_in_j"));
  report.checks.push_back(scalar_check(
      "battery.flow_out", totals.battery_discharged_j,
      battery.total_discharged_out_j(), opt.run_abs_tol_j,
      opt.run_rel_tol,
      "ledger discharge column vs Battery::total_discharged_out_j"));
  report.checks.push_back(scalar_check(
      "battery.identity",
      battery.total_charged_in_j() - battery.total_discharged_out_j(),
      (battery.stored_j() - battery.initial_stored_j()) +
          battery.conversion_loss_j() +
          battery.self_discharge_loss_j() + battery.clamp_loss_j(),
      opt.run_abs_tol_j, opt.run_rel_tol,
      "in - out = dStored + conversion + self_discharge + clamp"));
  if (n > 0)
    report.checks.push_back(scalar_check(
        "battery.final_soc", slots.back().battery_stored_end_j,
        battery.stored_j(), opt.run_abs_tol_j, opt.run_rel_tol,
        "last slot SoC vs Battery::stored_j"));

  // --- grid meter vs ledger brown column -----------------------------
  report.checks.push_back(scalar_check(
      "grid.import", totals.brown_j, engine.grid_meter().total_j(),
      opt.run_abs_tol_j, opt.run_rel_tol,
      "ledger brown column vs GridMeter::total_j"));

  // --- result aggregation consistency --------------------------------
  const metrics::RunResult& result = artifacts.result;
  report.checks.push_back(scalar_check(
      "result.energy_totals", result.energy.demand_j, totals.demand_j,
      0.0, 0.0, "RunResult.energy is the ledger totals verbatim"));

  // --- task accounting ------------------------------------------------
  report.checks.push_back(exact_count_check(
      "qos.task_accounting", result.qos.tasks_total,
      result.qos.tasks_completed + result.qos.tasks_unfinished,
      "admitted = completed + unfinished"));
  {
    AuditCheck check;
    check.name = "qos.deadline_misses";
    check.lhs = static_cast<double>(result.qos.deadline_misses);
    check.rhs = static_cast<double>(result.qos.tasks_total);
    check.tolerance = 0.0;
    check.passed =
        result.qos.deadline_misses >= result.qos.tasks_unfinished &&
        result.qos.deadline_misses <= result.qos.tasks_total;
    check.detail = "unfinished <= misses <= admitted (unfinished=" +
                   std::to_string(result.qos.tasks_unfinished) + ")";
    report.checks.push_back(std::move(check));
  }

  // --- open-system arrival accounting --------------------------------
  // Every arrival the stream emitted is either admitted into the pool
  // or explicitly booked as rejected (tasks still deferred at the run
  // horizon are booked rejected at finalize). Degenerates to 0 == 0
  // for closed-loop runs, so the check is unconditional.
  report.checks.push_back(exact_count_check(
      "admission.arrival_accounting", result.qos.arrivals_generated,
      result.qos.arrivals_admitted + result.qos.arrivals_rejected,
      "arrivals = admitted + rejected"));
  {
    AuditCheck check;
    check.name = "admission.overflow_bound";
    check.lhs = static_cast<double>(result.qos.arrivals_overflow_admits);
    check.rhs = static_cast<double>(result.qos.arrivals_admitted);
    check.tolerance = 0.0;
    check.passed = result.qos.arrivals_overflow_admits <=
                   result.qos.arrivals_admitted;
    check.detail = "overflow admits are a subset of admitted arrivals";
    report.checks.push_back(std::move(check));
  }

  return report;
}

RoundTripResult config_roundtrip(const core::ExperimentConfig& config) {
  const auto echo1 = core::config_echo(config);

  KeyValueConfig kv;
  for (const auto& [key, value] : echo1) kv.set(key, value);
  core::ExperimentConfig reapplied = core::ExperimentConfig::canonical();
  core::apply_config(reapplied, kv);
  const auto echo2 = core::config_echo(reapplied);

  RoundTripResult result;
  const std::size_t common = std::min(echo1.size(), echo2.size());
  for (std::size_t i = 0; i < common; ++i) {
    if (echo1[i] == echo2[i]) continue;
    result.fixed_point = false;
    result.mismatches.push_back(echo1[i].first + ": '" +
                                echo1[i].second + "' -> " +
                                echo2[i].first + "='" + echo2[i].second +
                                "'");
  }
  for (std::size_t i = common; i < echo1.size(); ++i) {
    result.fixed_point = false;
    result.mismatches.push_back(echo1[i].first + ": '" +
                                echo1[i].second + "' -> (missing)");
  }
  for (std::size_t i = common; i < echo2.size(); ++i) {
    result.fixed_point = false;
    result.mismatches.push_back(echo2[i].first + ": (missing) -> '" +
                                echo2[i].second + "'");
  }
  return result;
}

}  // namespace gm::audit
