#pragma once
// gm::audit — run-level conservation auditing. The per-slot
// EnergyLedger guards each slot as it is appended; this subsystem
// closes the loop at end of run by cross-checking four independent
// books against each other:
//
//   1. the ledger's own identities, re-verified per slot and at the
//      totals level with *absolute* joule tolerances tight enough to
//      catch sub-relative-tolerance leaks (the ledger's append check
//      is relative, so a 1e-3 J/slot leak sails through it);
//   2. the Battery's internal counters:
//        total_in − total_out =
//            Δstored + conversion_loss + self_loss + clamp_loss
//      and the ledger's battery flow columns against total_in/out;
//   3. the supply trace: every slot's recorded green_supply_j against
//      a fresh integral of the PowerSource over the same interval;
//   4. engine fleet-state invariants: active-node bounds, per-slot
//      task-slot/utilization conservation, battery SoC bounds, task
//      accounting (admitted = completed + unfinished, misses
//      consistent with unfinished), and grid-meter agreement.
//
// `audit_run` needs the engine (battery/grid/supply internals stay
// valid after finalize()) plus the artifacts finalize() returned.
// `config_roundtrip` checks that config_echo → apply_config →
// config_echo is a fixed point, i.e. a run manifest really reproduces
// the run it describes (over the kv-representable config surface;
// preset workload objects have no kv form — failure injections do,
// via `failures.events`, as do the seeded scenario generators via
// `scenario.*`).
//
// Used by `greenmatch_sim --audit`, `greenmatch_sweep --audit` and
// `tools/gm_golden`; see docs/correctness.md.

#include <iosfwd>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "core/engine.hpp"
#include "obs/recorder.hpp"

namespace gm::audit {

/// One verified identity. For per-slot families, `detail` carries the
/// first violating slot and the violation count; lhs/rhs hold the
/// worst-offending pair.
struct AuditCheck {
  std::string name;
  bool passed = true;
  double lhs = 0.0;
  double rhs = 0.0;
  double tolerance = 0.0;  ///< |lhs-rhs| allowance actually applied
  std::string detail;
};

struct AuditOptions {
  /// Per-slot identity tolerance: |lhs-rhs| <= abs + rel * scale with
  /// scale = max(1, |lhs|, |rhs|). The absolute term dominates at slot
  /// energy scales (~1e7 J) — that is what catches small leaks.
  double slot_abs_tol_j = 1e-6;
  double slot_rel_tol = 1e-12;
  /// Cross-accumulator tolerance (different summation orders drift by
  /// a few hundred ulps over a run).
  double run_abs_tol_j = 1e-6;
  double run_rel_tol = 1e-9;
};

struct AuditReport {
  std::vector<AuditCheck> checks;

  std::size_t failures() const;
  bool passed() const { return failures() == 0; }

  /// Multi-line human-readable table (one line per check; failures
  /// carry lhs/rhs/tolerance and the detail string).
  void print(std::ostream& out) const;
  /// Appends one flat-JSON line per check plus a summary line
  /// (kind=audit_run) to `path` — JSONL, append mode, next to the
  /// bench records. `label` tags every record (e.g. config name).
  void write_jsonl(const std::string& path,
                   const std::string& label) const;
  /// Feeds every check into a Recorder (kind=audit trace records and
  /// the audit.checks / audit.failures counters).
  void emit(obs::Recorder& recorder) const;
};

/// Audits one finished run. Call after SimulationEngine::finalize()
/// (or run()); the engine's battery, grid meter, supply and config
/// remain valid and are the independent books the artifacts are
/// checked against.
AuditReport audit_run(const core::SimulationEngine& engine,
                      const core::RunArtifacts& artifacts,
                      const AuditOptions& options = {});

/// config_echo → apply_config(canonical) → config_echo fixed-point
/// check. `mismatches` lists offending keys as "key: 'a' -> 'b'".
struct RoundTripResult {
  bool fixed_point = true;
  std::vector<std::string> mismatches;
};

RoundTripResult config_roundtrip(const core::ExperimentConfig& config);

}  // namespace gm::audit
