#include "core/admission.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "util/assert.hpp"

namespace gm::core {

void AdmissionConfig::validate() const {
  GM_CHECK(horizon_slots >= 1, "admission.horizon must be >= 1");
  GM_CHECK(battery_reserve_soc >= 0.0 && battery_reserve_soc <= 1.0,
           "admission.battery_reserve_soc must be in [0, 1]");
}

AdmissionController::AdmissionController(const AdmissionConfig& config,
                                         const Facts& facts,
                                         SlotEnergyFn slot_supply_j,
                                         SlotEnergyFn slot_baseline_j)
    : config_(config),
      facts_(facts),
      slot_supply_j_(std::move(slot_supply_j)),
      slot_baseline_j_(std::move(slot_baseline_j)),
      horizon_(config.horizon_slots) {
  config_.validate();
  GM_CHECK(facts_.slot_length_s > 0.0,
           "AdmissionController needs slot_length_s > 0");
  GM_CHECK(facts_.node_peak_w >= facts_.node_idle_floor_w,
           "node_peak_w must be >= node_idle_floor_w");
  GM_CHECK(static_cast<bool>(slot_supply_j_) &&
               static_cast<bool>(slot_baseline_j_),
           "AdmissionController needs supply and baseline callbacks");
  battery_reserve_j_ =
      config_.battery_reserve_soc * facts_.battery_usable_j;
  green_j_.assign(static_cast<std::size_t>(horizon_), 0.0);
  baseline_j_.assign(static_cast<std::size_t>(horizon_), 0.0);
  committed_j_.assign(static_cast<std::size_t>(horizon_), 0.0);
}

void AdmissionController::fill_slot(SlotIndex slot) {
  const std::size_t i = idx(slot);
  green_j_[i] = slot_supply_j_(slot);
  baseline_j_[i] = slot_baseline_j_(slot);
  committed_j_[i] = 0.0;
}

void AdmissionController::begin_slot(SlotIndex slot,
                                     Joules battery_stored_j) {
  if (!primed_) {
    base_slot_ = slot;
    for (SlotIndex s = slot; s < slot + horizon_; ++s) fill_slot(s);
    primed_ = true;
  } else {
    GM_CHECK(slot >= base_slot_, "admission ledger cannot rewind");
    // Expired head slots become the newly visible tail — O(advanced).
    for (SlotIndex s = base_slot_ + horizon_; s < slot + horizon_; ++s) {
      fill_slot(s);
    }
    base_slot_ = slot;
  }
  battery_credit_j_ =
      std::max(0.0, battery_stored_j - battery_reserve_j_);
}

void AdmissionController::revise_supply(SlotIndex slot, Joules green_j) {
  if (slot < base_slot_ || slot >= base_slot_ + horizon_) return;
  green_j_[idx(slot)] = green_j;
}

Joules AdmissionController::task_energy_j(double utilization,
                                          Seconds work_s) const {
  return utilization * (facts_.node_peak_w - facts_.node_idle_floor_w) *
         work_s;
}

Joules AdmissionController::headroom_j(SlotIndex slot) const {
  if (slot < base_slot_ || slot >= base_slot_ + horizon_) return 0.0;
  const std::size_t i = idx(slot);
  const Joules surplus =
      std::max(0.0, green_j_[i] - baseline_j_[i]) - committed_j_[i];
  return std::max(0.0, surplus);
}

void AdmissionController::rebuild_commitments(
    const std::vector<PendingTask>& pending, SimTime now) {
  std::fill(committed_j_.begin(), committed_j_.end(), 0.0);
  const SlotIndex last_visible = base_slot_ + horizon_ - 1;
  for (const PendingTask& p : pending) {
    const Joules need =
        task_energy_j(p.task.utilization, p.remaining_s);
    if (need <= 0.0) continue;
    SlotIndex last = static_cast<SlotIndex>(
        p.task.deadline / static_cast<SimTime>(facts_.slot_length_s));
    last = std::min(std::max(last, base_slot_), last_visible);
    const SlotIndex width = last - base_slot_ + 1;
    const Joules share = need / static_cast<double>(width);
    for (SlotIndex s = base_slot_; s <= last; ++s) {
      committed_j_[idx(s)] += share;
    }
  }
  (void)now;
}

AdmissionDecision AdmissionController::decide(
    const storage::BackgroundTask& task, SimTime now) {
  const auto t0 = std::chrono::steady_clock::now();
  ++stats_.decisions;
  AdmissionDecision decision;

  const Joules need = task_energy_j(task.utilization, task.work_s);
  const SlotIndex last_visible = base_slot_ + horizon_ - 1;
  SlotIndex last_feasible = static_cast<SlotIndex>(
      task.deadline / static_cast<SimTime>(facts_.slot_length_s));
  last_feasible = std::max(last_feasible, base_slot_);
  const SlotIndex scan_end = std::min(last_feasible, last_visible);

  // Bounded scan: accumulate per-slot surplus earliest-first, then
  // the battery's above-reserve credit.
  Joules gathered = 0.0;
  SlotIndex stop = scan_end;
  for (SlotIndex s = base_slot_; s <= scan_end; ++s) {
    gathered += headroom_j(s);
    if (gathered >= need) {
      stop = s;
      break;
    }
  }
  const bool use_credit = gathered < need;
  if (use_credit) gathered += battery_credit_j_;

  if (gathered >= need) {
    // Second bounded pass: consume what the first pass gathered.
    Joules remaining = need;
    for (SlotIndex s = base_slot_; s <= stop && remaining > 0.0; ++s) {
      const Joules take = std::min(remaining, headroom_j(s));
      if (take <= 0.0) continue;
      committed_j_[idx(s)] += take;
      remaining -= take;
      if (decision.chosen_offset < 0) {
        decision.chosen_offset = static_cast<int>(s - base_slot_);
      }
    }
    if (remaining > 0.0) {
      battery_credit_j_ = std::max(0.0, battery_credit_j_ - remaining);
    }
    decision.action = AdmissionAction::kAdmit;
    decision.reason = "green-headroom";
    ++stats_.admitted;
  } else if (last_feasible > last_visible) {
    // Can't see the whole feasible window yet — park the task and
    // re-offer it at the next slot boundary.
    decision.action = AdmissionAction::kDefer;
    decision.reason = "beyond-horizon";
    ++stats_.deferred;
  } else if (config_.overflow == AdmissionOverflow::kGrid) {
    decision.action = AdmissionAction::kAdmit;
    decision.overflow = true;
    decision.reason = "grid-overflow";
    ++stats_.admitted;
    ++stats_.overflow_admits;
  } else {
    decision.action = AdmissionAction::kReject;
    decision.reason = "no-headroom";
    ++stats_.rejected;
  }

  const auto t1 = std::chrono::steady_clock::now();
  const double us =
      std::chrono::duration<double, std::micro>(t1 - t0).count();
  latency_us_.add(us);
  stats_.decision_wall_ms += us / 1000.0;
  (void)now;
  return decision;
}

}  // namespace gm::core
