#pragma once
// AdmissionController: the open-system arrival fast path. Maintains a
// cached green-headroom ledger over the next `admission.horizon`
// slots — per-slot forecast green energy minus the baseline the
// cluster must spend anyway (coverage idle floor + foreground
// dynamic power) minus energy already committed to admitted-but-
// unfinished tasks, with the battery's above-reserve charge as a
// one-shot credit. Each admit/defer/reject decision is a bounded
// scan over the intersection of the task's feasible window and the
// ledger horizon: no MinCostFlow solve, no allocation, O(horizon)
// worst case. The per-slot replan (GreenMatch or otherwise) remains
// the authority on *where* admitted tasks actually run; the ledger
// is reconciled against the live pending pool once per slot, after
// the planner's plan lands (rebuild_commitments), and patched in
// O(touched slots) when a forecast revision or scenario event
// changes a slot's expected supply (revise_supply).
//
// Contract details and the decision vocabulary live in
// docs/admission.md.

#include <cstdint>
#include <functional>
#include <vector>

#include "core/policy.hpp"
#include "obs/profile.hpp"
#include "storage/types.hpp"
#include "util/time_types.hpp"
#include "util/units.hpp"

namespace gm::core {

/// What to do with an arrival whose whole feasible window is visible
/// but lacks green headroom (`admission.overflow`).
enum class AdmissionOverflow : std::uint8_t {
  kGrid = 0,  ///< admit anyway; the shortfall runs on grid energy
  kReject,    ///< turn the task away (booked explicitly in QoS)
};

/// `admission.*` config keys.
struct AdmissionConfig {
  /// Ledger depth in slots; also bounds the per-decision scan.
  int horizon_slots = 24;
  /// Fraction of usable battery capacity held back from admission —
  /// stored energy below the reserve never funds new arrivals.
  double battery_reserve_soc = 0.25;
  AdmissionOverflow overflow = AdmissionOverflow::kGrid;

  void validate() const;
};

enum class AdmissionAction : std::uint8_t { kAdmit = 0, kDefer, kReject };

struct AdmissionDecision {
  AdmissionAction action = AdmissionAction::kAdmit;
  /// True for kAdmit decisions taken via the grid-overflow policy.
  bool overflow = false;
  /// Offset (slots from now) of the first slot whose headroom the
  /// decision consumed; -1 when nothing was consumed.
  int chosen_offset = -1;
  const char* reason = "";
};

struct AdmissionStats {
  std::uint64_t decisions = 0;  ///< decide() calls incl. re-offers
  std::uint64_t admitted = 0;
  std::uint64_t deferred = 0;  ///< defer decisions, not unique tasks
  std::uint64_t rejected = 0;
  std::uint64_t overflow_admits = 0;  ///< subset of admitted
  double decision_wall_ms = 0.0;      ///< hot-path CPU (telemetry)
};

class AdmissionController {
 public:
  /// Static cluster facts the energy model needs.
  struct Facts {
    Seconds slot_length_s = 3600.0;
    Watts node_peak_w = 0.0;
    Watts node_idle_floor_w = 0.0;
    Joules battery_usable_j = 0.0;
  };
  /// slot → joules callbacks, supplied by the engine: forecast green
  /// supply for a slot, and the baseline spend (coverage idle floor +
  /// foreground dynamic energy) that is owed regardless of admission.
  using SlotEnergyFn = std::function<Joules(SlotIndex)>;

  AdmissionController(const AdmissionConfig& config, const Facts& facts,
                      SlotEnergyFn slot_supply_j,
                      SlotEnergyFn slot_baseline_j);

  /// Advance the ledger base to `slot` (filling newly visible tail
  /// slots from the callbacks) and refresh the battery credit from
  /// the current stored charge. O(slots advanced).
  void begin_slot(SlotIndex slot, Joules battery_stored_j);

  /// Patch one slot's expected green supply — forecast revision or
  /// scenario event. O(1); slots outside the ledger are ignored.
  void revise_supply(SlotIndex slot, Joules green_j);

  /// Reconcile the committed layer against the live pending pool:
  /// each unfinished task's remaining dynamic energy is spread
  /// uniformly over its feasible slots. Called once per slot after
  /// the planner's plan lands; never on the arrival path.
  void rebuild_commitments(const std::vector<PendingTask>& pending,
                           SimTime now);

  /// The hot path: admit/defer/reject `task` arriving at `now`.
  /// Bounded scan, no solver, no allocation.
  AdmissionDecision decide(const storage::BackgroundTask& task,
                           SimTime now);

  /// Residual headroom of an absolute slot (0 outside the ledger).
  Joules headroom_j(SlotIndex slot) const;
  Joules battery_credit_j() const { return battery_credit_j_; }
  /// Dynamic energy a task needs for `work_s` seconds of execution.
  Joules task_energy_j(double utilization, Seconds work_s) const;

  const AdmissionStats& stats() const { return stats_; }
  /// Per-decision wall latency in microseconds (telemetry only — the
  /// histogram never feeds deterministic outputs).
  const obs::LogHistogram& latency_us() const { return latency_us_; }
  SlotIndex base_slot() const { return base_slot_; }
  int horizon_slots() const { return horizon_; }

 private:
  std::size_t idx(SlotIndex slot) const {
    return static_cast<std::size_t>(slot % horizon_);
  }
  void fill_slot(SlotIndex slot);

  AdmissionConfig config_;
  Facts facts_;
  SlotEnergyFn slot_supply_j_;
  SlotEnergyFn slot_baseline_j_;
  int horizon_ = 0;
  SlotIndex base_slot_ = 0;
  bool primed_ = false;
  Joules battery_reserve_j_ = 0.0;
  Joules battery_credit_j_ = 0.0;
  // Ring buffers indexed by absolute slot modulo horizon_, valid for
  // slots in [base_slot_, base_slot_ + horizon_).
  std::vector<Joules> green_j_;
  std::vector<Joules> baseline_j_;
  std::vector<Joules> committed_j_;
  AdmissionStats stats_;
  obs::LogHistogram latency_us_;
};

}  // namespace gm::core
