#include <algorithm>
#include <cmath>

#include "core/policies.hpp"
#include "obs/recorder.hpp"

namespace gm::core {

namespace {

/// Shared provenance emitter for the greedy baselines: one record per
/// pending task, run-or-deferred with the given cause. Callers gate on
/// provenance being enabled before building the reason strings.
void emit_decision(obs::Recorder* rec, const SlotContext& ctx,
                   const char* policy, const PendingTask& p, bool ran,
                   const char* reason, Seconds slot_len) {
  obs::DecisionSample d;
  d.slot = ctx.slot;
  d.t = ctx.start;
  d.policy = policy;
  d.task = p.task.id;
  d.action = ran ? "run" : "defer";
  d.reason = reason;
  if (ran) d.chosen_offset = 0;
  d.deadline_slack = static_cast<std::int64_t>(
      std::floor(p.slack(ctx.start) / slot_len));
  rec->record_decision(d);
}

}  // namespace

SlotDecision AsapPolicy::decide(const SlotContext& ctx) {
  SlotDecision decision;
  double util = ctx.foreground_util;
  int count = 0;
  // Pending arrives deadline-sorted; take everything capacity allows.
  const double util_cap =
      facts_.total_nodes * facts_.max_utilization_per_node;
  const int slot_cap = facts_.total_nodes * facts_.task_slots_per_node;
  obs::Recorder* rec = obs::current_recorder();
  const bool provenance = rec && rec->provenance();
  bool full = false;
  for (const auto& p : ctx.pending) {
    if (full || count >= slot_cap ||
        util + p.task.utilization > util_cap) {
      // The admission loop breaks at the first capacity miss; for
      // provenance every remaining task still gets its "why not".
      if (!provenance) break;
      full = true;
      emit_decision(rec, ctx, name(), p, false, "capacity",
                    facts_.slot_length_s);
      continue;
    }
    decision.run_tasks.push_back(p.task.id);
    util += p.task.utilization;
    ++count;
    if (provenance)
      emit_decision(rec, ctx, name(), p, true, "asap",
                    facts_.slot_length_s);
  }
  decision.target_active_nodes = nodes_for_load(util, count);
  return decision;
}

NightShiftPolicy::NightShiftPolicy(double window_start_h,
                                   double window_end_h)
    : start_h_(window_start_h), end_h_(window_end_h) {}

SlotDecision NightShiftPolicy::decide(const SlotContext& ctx) {
  const CalendarTime cal = calendar_of(ctx.start);
  const bool in_window = cal.hour >= start_h_ && cal.hour < end_h_;

  SlotDecision decision;
  double util = ctx.foreground_util;
  int count = 0;
  const double util_cap =
      facts_.total_nodes * facts_.max_utilization_per_node;
  const int slot_cap = facts_.total_nodes * facts_.task_slots_per_node;
  for (const auto& p : ctx.pending) {
    const bool must = p.urgent(ctx.start, facts_.slot_length_s);
    if (!in_window && !must) continue;
    if (count >= slot_cap) break;
    if (util + p.task.utilization > util_cap) break;
    decision.run_tasks.push_back(p.task.id);
    util += p.task.utilization;
    ++count;
  }
  decision.target_active_nodes = nodes_for_load(util, count);
  return decision;
}

}  // namespace gm::core
