#include <algorithm>

#include "core/policies.hpp"

namespace gm::core {

SlotDecision AsapPolicy::decide(const SlotContext& ctx) {
  SlotDecision decision;
  double util = ctx.foreground_util;
  int count = 0;
  // Pending arrives deadline-sorted; take everything capacity allows.
  const double util_cap =
      facts_.total_nodes * facts_.max_utilization_per_node;
  const int slot_cap = facts_.total_nodes * facts_.task_slots_per_node;
  for (const auto& p : ctx.pending) {
    if (count >= slot_cap) break;
    if (util + p.task.utilization > util_cap) break;
    decision.run_tasks.push_back(p.task.id);
    util += p.task.utilization;
    ++count;
  }
  decision.target_active_nodes = nodes_for_load(util, count);
  return decision;
}

NightShiftPolicy::NightShiftPolicy(double window_start_h,
                                   double window_end_h)
    : start_h_(window_start_h), end_h_(window_end_h) {}

SlotDecision NightShiftPolicy::decide(const SlotContext& ctx) {
  const CalendarTime cal = calendar_of(ctx.start);
  const bool in_window = cal.hour >= start_h_ && cal.hour < end_h_;

  SlotDecision decision;
  double util = ctx.foreground_util;
  int count = 0;
  const double util_cap =
      facts_.total_nodes * facts_.max_utilization_per_node;
  const int slot_cap = facts_.total_nodes * facts_.task_slots_per_node;
  for (const auto& p : ctx.pending) {
    const bool must = p.urgent(ctx.start, facts_.slot_length_s);
    if (!in_window && !must) continue;
    if (count >= slot_cap) break;
    if (util + p.task.utilization > util_cap) break;
    decision.run_tasks.push_back(p.task.id);
    util += p.task.utilization;
    ++count;
  }
  decision.target_active_nodes = nodes_for_load(util, count);
  return decision;
}

}  // namespace gm::core
