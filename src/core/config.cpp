#include "core/config.hpp"

#include "util/assert.hpp"

namespace gm::core {

ExperimentConfig::ExperimentConfig() {
  battery = energy::BatteryConfig::lithium_ion(0.0);
}

void ExperimentConfig::validate() const {
  cluster.validate();
  workload.validate();
  arrivals.validate();
  admission.validate();
  policy.validate();
  battery.validate();
  GM_CHECK(panel_area_m2 >= 0.0, "negative panel area");
  GM_CHECK(slot_length_s > 0, "slot length must be positive");
  GM_CHECK(min_dwell_slots >= 0, "negative dwell");
  GM_CHECK(task_migration_energy_j >= 0.0, "negative migration energy");
  GM_CHECK(max_utilization_per_node > 0.0 &&
               max_utilization_per_node <= 1.0,
           "per-node utilization cap must be in (0, 1]");
  GM_CHECK(foreground_cpu_factor >= 0.0, "negative cpu factor");
  GM_CHECK(dvfs_eco_speed > 0.0 && dvfs_eco_speed <= 1.0,
           "DVFS eco speed must be in (0, 1]");
  GM_CHECK(dvfs_alpha >= 1.0, "DVFS alpha must be >= 1");
  GM_CHECK(maid_min_spinning_disks >= 1,
           "MAID must keep at least one disk spinning");
  GM_CHECK(max_drain_slots >= 0, "negative drain allowance");
  GM_CHECK(repair_rate_bytes_per_s > 0.0,
           "repair rate must be positive");
  GM_CHECK(repair_deadline_s > 0.0, "repair deadline must be positive");
  if (noisy_forecast) forecast_noise.validate();
  scenario.validate();
  for (const auto& f : node_failures) {
    GM_CHECK(f.fail_at >= 0, "failure before simulation start");
    GM_CHECK(f.recover_at == 0 || f.recover_at > f.fail_at,
             "recovery must follow failure");
  }
  const int horizon_days =
      static_cast<int>(s_to_days(static_cast<double>(
          duration() + max_drain_slots * slot_length_s))) + 1;
  GM_CHECK(solar.horizon_days >= horizon_days,
           "solar horizon (" << solar.horizon_days
                             << " d) shorter than the run ("
                             << horizon_days << " d)");
}

ExperimentConfig ExperimentConfig::canonical() {
  ExperimentConfig config;
  config.cluster.racks = 4;
  config.cluster.nodes_per_rack = 16;
  config.cluster.placement.group_count = 512;
  config.cluster.placement.replication = 3;
  config.workload = workload::WorkloadSpec::canonical();
  config.solar.horizon_days = 14;
  config.panel_area_m2 = 120.0;
  config.battery = energy::BatteryConfig::lithium_ion(0.0);
  config.policy.kind = PolicyKind::kGreenMatch;
  config.validate();
  return config;
}

}  // namespace gm::core
