#pragma once
// Experiment configuration: one struct that fully determines a run —
// cluster, workload, energy supply, battery, policy, fidelity. Sweeps
// copy a base config and vary one field, so every bench row is exactly
// reproducible from its config and seed.

#include <cstdint>
#include <memory>
#include <string>

#include "core/admission.hpp"
#include "core/policy.hpp"
#include "workload/arrival_stream.hpp"
#include "workload/generator.hpp"
#include "energy/battery.hpp"
#include "energy/forecast.hpp"
#include "energy/grid.hpp"
#include "energy/solar.hpp"
#include "energy/wind.hpp"
#include "scenario/scenario.hpp"
#include "storage/cluster.hpp"
#include "workload/spec.hpp"

namespace gm::core {

/// Simulation fidelity. Slot-level integrates aggregate demand (fast,
/// used by parameter sweeps); event-level additionally routes every
/// foreground request through the disk model for QoS metrics.
enum class Fidelity : std::uint8_t { kSlotLevel = 0, kEventLevel };

/// Injected hardware failure: the node crashes at `fail_at` (instant
/// power loss, no orderly shutdown) and becomes usable again at
/// `recover_at`. On failure the engine emits one repair task per
/// placement group that had a replica on the node.
struct NodeFailureEvent {
  SimTime fail_at = 0;
  SimTime recover_at = 0;
  storage::NodeId node = 0;
};

struct ExperimentConfig {
  storage::ClusterConfig cluster;
  workload::WorkloadSpec workload = workload::WorkloadSpec::canonical();
  /// When set, this exact trace is used instead of generating one from
  /// `workload` (sweeps share one generated trace across many runs;
  /// `workload.duration_days` must still match the trace horizon).
  std::shared_ptr<const workload::Workload> preset_workload;

  // --- renewable supply -------------------------------------------
  energy::SolarConfig solar;
  double panel_area_m2 = 120.0;  ///< 0 disables solar
  /// When non-empty, solar production is played back from this CSV
  /// (one power sample in watts per line, hourly grid) instead of the
  /// synthetic model; panel_area_m2 is ignored for the trace.
  std::string solar_trace_csv;
  bool use_wind = false;
  energy::WindConfig wind;

  // --- storage & grid ----------------------------------------------
  energy::BatteryConfig battery;  ///< capacity 0 disables the ESD
  energy::GridConfig grid;

  // --- open-system arrivals ------------------------------------------
  /// Streaming arrival process (`arrivals.*`). When enabled the engine
  /// runs in open-system mode: background tasks come from this stream
  /// at arrival time (admitted, deferred or rejected by the admission
  /// controller below) instead of the pregenerated workload task pool.
  /// Foreground requests, repairs and federation offloads are
  /// unaffected. Disabled = closed-loop mode, bit-identical to
  /// previous releases.
  workload::ArrivalSpec arrivals;
  /// Green-headroom admission controller (`admission.*`); only
  /// consulted when `arrivals.enabled` (docs/admission.md).
  AdmissionConfig admission;

  // --- scheduling ---------------------------------------------------
  PolicyConfig policy;
  SimTime slot_length_s = 3600;
  Fidelity fidelity = Fidelity::kSlotLevel;
  bool noisy_forecast = false;
  energy::NoisyForecastConfig forecast_noise;

  // --- power management ----------------------------------------------
  /// Minimum slots a node stays in its power state (hysteresis).
  int min_dwell_slots = 2;
  /// Energy to suspend/migrate/resume one background task.
  Joules task_migration_energy_j = 60e3;  ///< ≈ 1 node-minute @ 1 kW
  double max_utilization_per_node = 0.95;
  /// DVFS: relative frequency background tasks run at when the policy
  /// requests eco mode (1.0 disables DVFS). Work rate scales with f,
  /// dynamic power with f^dvfs_alpha, so energy per unit work scales
  /// with f^(alpha-1). Urgent tasks always run at full speed.
  double dvfs_eco_speed = 1.0;
  double dvfs_alpha = 3.0;
  /// MAID-style per-disk power management: on active nodes with no
  /// running background tasks and negligible foreground share, spin
  /// all but `maid_min_spinning_disks` disks down; they spin back up
  /// (paying the transition energy) when work returns.
  bool maid_enabled = false;
  int maid_min_spinning_disks = 1;
  /// CPU utilization-seconds per disk service second for foreground
  /// requests (request handling busies more than the disk).
  double foreground_cpu_factor = 1.5;
  /// Extra slots simulated after the workload window so deferred tasks
  /// can drain. The horizon is FIXED: every run covers exactly
  /// duration + max_drain_slots, so energy totals are comparable
  /// across policies. Tasks still unfinished at the horizon count as
  /// deadline misses.
  int max_drain_slots = 36;

  // --- correctness testing -------------------------------------------
  /// TEST-ONLY energy leak: on every slot with nonzero green supply,
  /// this many joules are added to the recorded curtailment without
  /// existing anywhere else, breaking the supply-split identity by an
  /// amount small enough to slip past the ledger's relative-tolerance
  /// check (which scales with the ~1e7 J slot energies). Exercises
  /// gm::audit and the golden corpus (both must catch it);
  /// deliberately NOT reachable from the config-file key space. Leave
  /// at 0 for real runs.
  Joules test_leak_j_per_slot = 0.0;

  // --- scenario engine -----------------------------------------------
  /// Stochastic adversarial-week processes (seeded node-failure
  /// streams, grid spikes, renewable curtailment). The engine
  /// materializes them deterministically at construction and layers
  /// the results on top of the explicit lists below, so a manifest
  /// carrying the scenario.* keys reproduces the exact same week.
  scenario::ScenarioConfig scenario;

  // --- failure injection ---------------------------------------------
  std::vector<NodeFailureEvent> node_failures;
  /// Re-replication rate: a failed node's groups are repaired at this
  /// rate, so repair work per group = group_bytes / rate.
  double repair_rate_bytes_per_s = 200e6;
  Seconds repair_deadline_s = 24 * 3600.0;

  ExperimentConfig();

  SimTime duration() const {
    return static_cast<SimTime>(days_to_s(workload.duration_days));
  }
  void validate() const;

  /// The canonical evaluation setup (DESIGN.md §4): 64-node cluster,
  /// one-week canonical workload, June solar, LI battery.
  static ExperimentConfig canonical();
};

}  // namespace gm::core
