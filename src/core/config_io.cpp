#include "core/config_io.hpp"

#include <limits>
#include <sstream>

#include "util/assert.hpp"

namespace gm::core {

PolicyKind parse_policy_kind(const std::string& name) {
  if (name == "asap" || name == "esd-only") return PolicyKind::kAsap;
  if (name == "opportunistic") return PolicyKind::kOpportunistic;
  if (name == "greenmatch") return PolicyKind::kGreenMatch;
  if (name == "greenmatch-greedy") return PolicyKind::kGreenMatchGreedy;
  if (name == "night-shift" || name == "nightshift")
    return PolicyKind::kNightShift;
  throw InvalidArgument("unknown policy kind: '" + name + "'");
}

namespace {

workload::WorkloadSpec parse_workload_preset(const std::string& name,
                                             int days,
                                             std::uint64_t seed) {
  if (name == "canonical")
    return workload::WorkloadSpec::canonical(days, seed);
  if (name == "read-heavy")
    return workload::WorkloadSpec::read_heavy(days, seed);
  if (name == "backup-heavy")
    return workload::WorkloadSpec::backup_heavy(days, seed);
  throw InvalidArgument("unknown workload preset: '" + name + "'");
}

energy::BatteryConfig parse_battery(const std::string& technology,
                                    double kwh) {
  if (technology == "li" || technology == "lithium-ion")
    return energy::BatteryConfig::lithium_ion(kwh_to_j(kwh));
  if (technology == "la" || technology == "lead-acid")
    return energy::BatteryConfig::lead_acid(kwh_to_j(kwh));
  if (technology == "ideal")
    return energy::BatteryConfig::ideal(kwh_to_j(kwh));
  throw InvalidArgument("unknown battery technology: '" + technology +
                        "'");
}

/// The config-file spelling of a battery's technology — also the
/// default `battery.technology` in apply_config, so re-applying a kv
/// set that omits the key is a no-op for the technology (an in-memory
/// ideal battery must not silently become lithium-ion).
std::string echo_battery_technology(const energy::BatteryConfig& b) {
  switch (b.technology) {
    case energy::BatteryTechnology::kLeadAcid: return "la";
    case energy::BatteryTechnology::kLithiumIon: return "li";
    case energy::BatteryTechnology::kCustom: return "ideal";
  }
  return "li";
}

scenario::FailureProcess parse_failure_process(const std::string& name) {
  if (name == "none") return scenario::FailureProcess::kNone;
  if (name == "poisson") return scenario::FailureProcess::kPoisson;
  if (name == "weibull") return scenario::FailureProcess::kWeibull;
  throw InvalidArgument("unknown scenario.failure_process: '" + name +
                        "'");
}

/// failures.events value: `node@fail_s@recover_s` entries separated by
/// ';' (recover_s 0 = the node never comes back). All integers, so the
/// echo round-trips exactly.
std::vector<NodeFailureEvent> parse_failure_events(
    const std::string& text) {
  std::vector<NodeFailureEvent> events;
  std::istringstream stream(text);
  std::string entry;
  while (std::getline(stream, entry, ';')) {
    if (entry.empty()) continue;
    const auto first = entry.find('@');
    const auto second =
        first == std::string::npos ? first : entry.find('@', first + 1);
    if (second == std::string::npos)
      throw InvalidArgument(
          "failures.events entry must be node@fail_s@recover_s: '" +
          entry + "'");
    NodeFailureEvent e;
    try {
      e.node = static_cast<storage::NodeId>(
          std::stoul(entry.substr(0, first)));
      e.fail_at = static_cast<SimTime>(
          std::stoll(entry.substr(first + 1, second - first - 1)));
      e.recover_at =
          static_cast<SimTime>(std::stoll(entry.substr(second + 1)));
    } catch (const std::exception&) {
      throw InvalidArgument("bad failures.events entry: '" + entry + "'");
    }
    events.push_back(e);
  }
  return events;
}

std::string echo_failure_events(
    const std::vector<NodeFailureEvent>& events) {
  std::ostringstream os;
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (i > 0) os << ';';
    os << events[i].node << '@' << events[i].fail_at << '@'
       << events[i].recover_at;
  }
  return os.str();
}

}  // namespace

void apply_config(ExperimentConfig& config, const KeyValueConfig& kv) {
  // --- cluster -------------------------------------------------------
  config.cluster.racks = static_cast<int>(
      kv.get_int_or("cluster.racks", config.cluster.racks));
  config.cluster.nodes_per_rack = static_cast<int>(kv.get_int_or(
      "cluster.nodes_per_rack", config.cluster.nodes_per_rack));
  config.cluster.placement.replication = static_cast<int>(kv.get_int_or(
      "cluster.replication", config.cluster.placement.replication));
  config.cluster.placement.group_count =
      static_cast<std::uint32_t>(kv.get_int_or(
          "cluster.groups", config.cluster.placement.group_count));
  config.cluster.node.task_slots = static_cast<int>(kv.get_int_or(
      "cluster.task_slots", config.cluster.node.task_slots));

  // --- workload ------------------------------------------------------
  const int days = static_cast<int>(
      kv.get_int_or("workload.days", config.workload.duration_days));
  const auto seed = static_cast<std::uint64_t>(
      kv.get_int_or("workload.seed",
                    static_cast<std::int64_t>(config.workload.seed)));
  if (const auto preset = kv.get_string("workload.preset")) {
    config.workload = parse_workload_preset(*preset, days, seed);
  } else {
    config.workload.duration_days = days;
    config.workload.seed = seed;
  }
  config.workload.foreground.base_rate_per_s =
      kv.get_double_or("workload.foreground_rate",
                       config.workload.foreground.base_rate_per_s);
  config.workload.task_scale = kv.get_double_or(
      "workload.task_scale", config.workload.task_scale);

  // --- supply --------------------------------------------------------
  config.panel_area_m2 =
      kv.get_double_or("solar.panel_area_m2", config.panel_area_m2);
  config.solar.latitude_deg =
      kv.get_double_or("solar.latitude_deg", config.solar.latitude_deg);
  config.solar.seed = static_cast<std::uint64_t>(kv.get_int_or(
      "solar.seed", static_cast<std::int64_t>(config.solar.seed)));
  config.solar.horizon_days = static_cast<int>(kv.get_int_or(
      "solar.horizon_days", config.solar.horizon_days));
  config.solar_trace_csv =
      kv.get_string_or("solar.trace_csv", config.solar_trace_csv);
  config.use_wind = kv.get_bool_or("wind.enabled", config.use_wind);
  config.wind.rated_power_w =
      kv.get_double_or("wind.rated_kw",
                       config.wind.rated_power_w / 1000.0) *
      1000.0;
  config.wind.horizon_days = static_cast<int>(kv.get_int_or(
      "wind.horizon_days", config.wind.horizon_days));

  // --- battery -------------------------------------------------------
  // Rebuilding from the preset resets every battery field, so the
  // defaults must come from the *incoming* config, not the freshly
  // built preset: the technology via its echo spelling (kCustom/ideal
  // must survive a re-apply) and the initial SoC captured before the
  // rebuild overwrites it.
  const double battery_kwh = kv.get_double_or(
      "battery.kwh", j_to_kwh(config.battery.capacity_j));
  const std::string technology = kv.get_string_or(
      "battery.technology", echo_battery_technology(config.battery));
  const double prior_initial_soc = config.battery.initial_soc_fraction;
  config.battery = parse_battery(technology, battery_kwh);
  config.battery.initial_soc_fraction = kv.get_double_or(
      "battery.initial_soc", prior_initial_soc);

  // --- policy --------------------------------------------------------
  if (const auto kind = kv.get_string("policy.kind"))
    config.policy.kind = parse_policy_kind(*kind);
  config.policy.deferral_fraction = kv.get_double_or(
      "policy.deferral", config.policy.deferral_fraction);
  config.policy.horizon_slots = static_cast<int>(kv.get_int_or(
      "policy.horizon", config.policy.horizon_slots));
  config.policy.battery_aware = kv.get_bool_or(
      "policy.battery_aware", config.policy.battery_aware);
  config.policy.carbon_aware = kv.get_bool_or(
      "policy.carbon_aware", config.policy.carbon_aware);
  if (const auto profile = kv.get_string("grid.profile")) {
    if (*profile == "flat")
      config.grid = energy::GridConfig::flat();
    else if (*profile == "wind-heavy")
      config.grid = energy::GridConfig::wind_heavy();
    else if (*profile == "solar-heavy")
      config.grid = energy::GridConfig::solar_heavy();
    else
      throw InvalidArgument("unknown grid profile: '" + *profile + "'");
  }
  config.policy.window_start_h = kv.get_double_or(
      "policy.window_start_h", config.policy.window_start_h);
  config.policy.window_end_h = kv.get_double_or(
      "policy.window_end_h", config.policy.window_end_h);
  config.policy.shards = static_cast<int>(
      kv.get_int_or("scheduler.shards", config.policy.shards));

  // --- simulation ----------------------------------------------------
  if (const auto fidelity = kv.get_string("sim.fidelity")) {
    if (*fidelity == "slot")
      config.fidelity = Fidelity::kSlotLevel;
    else if (*fidelity == "event")
      config.fidelity = Fidelity::kEventLevel;
    else
      throw InvalidArgument("sim.fidelity must be 'slot' or 'event'");
  }
  config.slot_length_s =
      kv.get_int_or("sim.slot_seconds", config.slot_length_s);
  config.min_dwell_slots = static_cast<int>(
      kv.get_int_or("sim.dwell_slots", config.min_dwell_slots));
  config.max_drain_slots = static_cast<int>(
      kv.get_int_or("sim.drain_slots", config.max_drain_slots));
  config.dvfs_eco_speed =
      kv.get_double_or("sim.dvfs_eco_speed", config.dvfs_eco_speed);
  config.maid_enabled = kv.get_bool_or("sim.maid", config.maid_enabled);
  config.maid_min_spinning_disks = static_cast<int>(kv.get_int_or(
      "sim.maid_min_disks", config.maid_min_spinning_disks));
  config.noisy_forecast =
      kv.get_bool_or("forecast.noisy", config.noisy_forecast);
  config.forecast_noise.error_at_1h = kv.get_double_or(
      "forecast.error_at_1h", config.forecast_noise.error_at_1h);
  config.forecast_noise.error_cap = kv.get_double_or(
      "forecast.error_cap", config.forecast_noise.error_cap);
  config.forecast_noise.bias_at_1h = kv.get_double_or(
      "forecast.bias_at_1h", config.forecast_noise.bias_at_1h);
  config.forecast_noise.ar1_rho = kv.get_double_or(
      "forecast.ar1_rho", config.forecast_noise.ar1_rho);
  config.forecast_noise.seed = static_cast<std::uint64_t>(kv.get_int_or(
      "forecast.seed",
      static_cast<std::int64_t>(config.forecast_noise.seed)));

  // --- open-system arrivals & admission ------------------------------
  auto& ar = config.arrivals;
  ar.enabled = kv.get_bool_or("arrivals.enabled", ar.enabled);
  ar.rate_per_h = kv.get_double_or("arrivals.rate_per_h", ar.rate_per_h);
  ar.seed = static_cast<std::uint64_t>(kv.get_int_or(
      "arrivals.seed", static_cast<std::int64_t>(ar.seed)));
  ar.mean_work_s =
      kv.get_double_or("arrivals.mean_work_s", ar.mean_work_s);
  ar.work_sigma = kv.get_double_or("arrivals.work_sigma", ar.work_sigma);
  ar.deadline_slack_s = kv.get_double_or("arrivals.deadline_slack_s",
                                         ar.deadline_slack_s);
  ar.utilization =
      kv.get_double_or("arrivals.utilization", ar.utilization);
  ar.diurnal = kv.get_bool_or("arrivals.diurnal", ar.diurnal);
  auto& ad = config.admission;
  ad.horizon_slots = static_cast<int>(
      kv.get_int_or("admission.horizon", ad.horizon_slots));
  ad.battery_reserve_soc = kv.get_double_or(
      "admission.battery_reserve_soc", ad.battery_reserve_soc);
  if (const auto overflow = kv.get_string("admission.overflow")) {
    if (*overflow == "grid")
      ad.overflow = AdmissionOverflow::kGrid;
    else if (*overflow == "reject")
      ad.overflow = AdmissionOverflow::kReject;
    else
      throw InvalidArgument("admission.overflow must be 'grid' or "
                            "'reject', got '" +
                            *overflow + "'");
  }

  // --- failure injection ---------------------------------------------
  if (const auto events = kv.get_string("failures.events"))
    config.node_failures = parse_failure_events(*events);
  config.repair_rate_bytes_per_s =
      kv.get_double_or("failures.repair_rate_bytes_per_s",
                       config.repair_rate_bytes_per_s);
  config.repair_deadline_s = kv.get_double_or(
      "failures.repair_deadline_s", config.repair_deadline_s);

  // --- scenario processes --------------------------------------------
  auto& sc = config.scenario;
  if (const auto process = kv.get_string("scenario.failure_process"))
    sc.failures.process = parse_failure_process(*process);
  sc.failures.mtbf_hours =
      kv.get_double_or("scenario.mtbf_hours", sc.failures.mtbf_hours);
  sc.failures.weibull_shape = kv.get_double_or(
      "scenario.weibull_shape", sc.failures.weibull_shape);
  sc.failures.mttr_hours =
      kv.get_double_or("scenario.mttr_hours", sc.failures.mttr_hours);
  sc.failures.seed = static_cast<std::uint64_t>(kv.get_int_or(
      "scenario.failure_seed",
      static_cast<std::int64_t>(sc.failures.seed)));
  sc.grid_spikes.rate_per_day = kv.get_double_or(
      "scenario.spike_rate_per_day", sc.grid_spikes.rate_per_day);
  sc.grid_spikes.duration_h = kv.get_double_or(
      "scenario.spike_duration_h", sc.grid_spikes.duration_h);
  sc.grid_spikes.carbon_multiplier = kv.get_double_or(
      "scenario.spike_carbon_x", sc.grid_spikes.carbon_multiplier);
  sc.grid_spikes.price_multiplier = kv.get_double_or(
      "scenario.spike_price_x", sc.grid_spikes.price_multiplier);
  sc.grid_spikes.seed = static_cast<std::uint64_t>(kv.get_int_or(
      "scenario.spike_seed",
      static_cast<std::int64_t>(sc.grid_spikes.seed)));
  sc.curtailment.rate_per_day = kv.get_double_or(
      "scenario.curtail_rate_per_day", sc.curtailment.rate_per_day);
  sc.curtailment.duration_h = kv.get_double_or(
      "scenario.curtail_duration_h", sc.curtailment.duration_h);
  sc.curtailment.supply_fraction =
      kv.get_double_or("scenario.curtail_supply_fraction",
                       sc.curtailment.supply_fraction);
  sc.curtailment.seed = static_cast<std::uint64_t>(kv.get_int_or(
      "scenario.curtail_seed",
      static_cast<std::int64_t>(sc.curtailment.seed)));

  const auto unknown = kv.unconsumed_keys();
  if (!unknown.empty()) {
    std::ostringstream os;
    os << "unknown config keys:";
    for (const auto& k : unknown) os << " '" << k << "'";
    throw InvalidArgument(os.str());
  }
  config.validate();
}

ExperimentConfig config_from_file(const std::string& path) {
  ExperimentConfig config = ExperimentConfig::canonical();
  apply_config(config, KeyValueConfig::load_file(path));
  return config;
}

namespace {

std::string echo_num(double v) {
  std::ostringstream os;
  os.precision(std::numeric_limits<double>::max_digits10);
  os << v;
  return os.str();
}

std::string echo_bool(bool v) { return v ? "true" : "false"; }

}  // namespace

std::vector<std::pair<std::string, std::string>> config_echo(
    const ExperimentConfig& c) {
  std::vector<std::pair<std::string, std::string>> kv;
  const auto add = [&kv](const std::string& k, const std::string& v) {
    kv.emplace_back(k, v);
  };
  add("cluster.racks", std::to_string(c.cluster.racks));
  add("cluster.nodes_per_rack",
      std::to_string(c.cluster.nodes_per_rack));
  add("cluster.replication",
      std::to_string(c.cluster.placement.replication));
  add("cluster.groups", std::to_string(c.cluster.placement.group_count));
  add("cluster.task_slots", std::to_string(c.cluster.node.task_slots));
  add("workload.days", std::to_string(c.workload.duration_days));
  add("workload.seed", std::to_string(c.workload.seed));
  add("workload.foreground_rate",
      echo_num(c.workload.foreground.base_rate_per_s));
  add("workload.task_scale", echo_num(c.workload.task_scale));
  add("solar.panel_area_m2", echo_num(c.panel_area_m2));
  add("solar.latitude_deg", echo_num(c.solar.latitude_deg));
  add("solar.seed", std::to_string(c.solar.seed));
  add("solar.horizon_days", std::to_string(c.solar.horizon_days));
  if (!c.solar_trace_csv.empty())
    add("solar.trace_csv", c.solar_trace_csv);
  add("wind.enabled", echo_bool(c.use_wind));
  add("wind.rated_kw", echo_num(c.wind.rated_power_w / 1000.0));
  add("wind.horizon_days", std::to_string(c.wind.horizon_days));
  add("battery.technology", echo_battery_technology(c.battery));
  add("battery.kwh", echo_num(j_to_kwh(c.battery.capacity_j)));
  add("battery.initial_soc", echo_num(c.battery.initial_soc_fraction));
  add("policy.kind", policy_kind_name(c.policy.kind));
  add("policy.deferral", echo_num(c.policy.deferral_fraction));
  add("policy.horizon", std::to_string(c.policy.horizon_slots));
  add("policy.battery_aware", echo_bool(c.policy.battery_aware));
  add("policy.carbon_aware", echo_bool(c.policy.carbon_aware));
  add("grid.profile", c.grid.profile);
  add("policy.window_start_h", echo_num(c.policy.window_start_h));
  add("policy.window_end_h", echo_num(c.policy.window_end_h));
  add("scheduler.shards", std::to_string(c.policy.shards));
  add("sim.fidelity",
      c.fidelity == Fidelity::kEventLevel ? "event" : "slot");
  add("sim.slot_seconds", std::to_string(c.slot_length_s));
  add("sim.dwell_slots", std::to_string(c.min_dwell_slots));
  add("sim.drain_slots", std::to_string(c.max_drain_slots));
  add("sim.dvfs_eco_speed", echo_num(c.dvfs_eco_speed));
  add("sim.maid", echo_bool(c.maid_enabled));
  add("sim.maid_min_disks", std::to_string(c.maid_min_spinning_disks));
  add("forecast.noisy", echo_bool(c.noisy_forecast));
  add("forecast.error_at_1h", echo_num(c.forecast_noise.error_at_1h));
  add("forecast.error_cap", echo_num(c.forecast_noise.error_cap));
  add("forecast.bias_at_1h", echo_num(c.forecast_noise.bias_at_1h));
  add("forecast.ar1_rho", echo_num(c.forecast_noise.ar1_rho));
  add("forecast.seed", std::to_string(c.forecast_noise.seed));
  // Open-system keys are echoed only when the mode is on: closed-loop
  // echoes (and the goldens that pin them) stay byte-identical to
  // pre-arrival releases, same convention as solar.trace_csv and
  // failures.events. The round-trip fixed point holds either way —
  // a disabled config echoes nothing and re-applies to the defaults.
  if (c.arrivals.enabled) {
    add("arrivals.enabled", echo_bool(c.arrivals.enabled));
    add("arrivals.rate_per_h", echo_num(c.arrivals.rate_per_h));
    add("arrivals.seed", std::to_string(c.arrivals.seed));
    add("arrivals.mean_work_s", echo_num(c.arrivals.mean_work_s));
    add("arrivals.work_sigma", echo_num(c.arrivals.work_sigma));
    add("arrivals.deadline_slack_s",
        echo_num(c.arrivals.deadline_slack_s));
    add("arrivals.utilization", echo_num(c.arrivals.utilization));
    add("arrivals.diurnal", echo_bool(c.arrivals.diurnal));
    add("admission.horizon", std::to_string(c.admission.horizon_slots));
    add("admission.battery_reserve_soc",
        echo_num(c.admission.battery_reserve_soc));
    add("admission.overflow",
        c.admission.overflow == AdmissionOverflow::kReject ? "reject"
                                                           : "grid");
  }
  if (!c.node_failures.empty())
    add("failures.events", echo_failure_events(c.node_failures));
  add("failures.repair_rate_bytes_per_s",
      echo_num(c.repair_rate_bytes_per_s));
  add("failures.repair_deadline_s", echo_num(c.repair_deadline_s));
  add("scenario.failure_process",
      scenario::failure_process_name(c.scenario.failures.process));
  add("scenario.mtbf_hours", echo_num(c.scenario.failures.mtbf_hours));
  add("scenario.weibull_shape",
      echo_num(c.scenario.failures.weibull_shape));
  add("scenario.mttr_hours", echo_num(c.scenario.failures.mttr_hours));
  add("scenario.failure_seed",
      std::to_string(c.scenario.failures.seed));
  add("scenario.spike_rate_per_day",
      echo_num(c.scenario.grid_spikes.rate_per_day));
  add("scenario.spike_duration_h",
      echo_num(c.scenario.grid_spikes.duration_h));
  add("scenario.spike_carbon_x",
      echo_num(c.scenario.grid_spikes.carbon_multiplier));
  add("scenario.spike_price_x",
      echo_num(c.scenario.grid_spikes.price_multiplier));
  add("scenario.spike_seed",
      std::to_string(c.scenario.grid_spikes.seed));
  add("scenario.curtail_rate_per_day",
      echo_num(c.scenario.curtailment.rate_per_day));
  add("scenario.curtail_duration_h",
      echo_num(c.scenario.curtailment.duration_h));
  add("scenario.curtail_supply_fraction",
      echo_num(c.scenario.curtailment.supply_fraction));
  add("scenario.curtail_seed",
      std::to_string(c.scenario.curtailment.seed));
  return kv;
}

std::string config_keys_help() {
  return
      "cluster.racks, cluster.nodes_per_rack, cluster.replication,\n"
      "cluster.groups, cluster.task_slots\n"
      "workload.preset (canonical|read-heavy|backup-heavy),\n"
      "workload.days, workload.seed, workload.foreground_rate,\n"
      "workload.task_scale\n"
      "solar.panel_area_m2, solar.latitude_deg, solar.seed,\n"
      "solar.horizon_days, solar.trace_csv\n"
      "wind.enabled, wind.rated_kw, wind.horizon_days\n"
      "battery.technology (li|la|ideal), battery.kwh,\n"
      "battery.initial_soc\n"
      "policy.kind (asap|opportunistic|greenmatch|greenmatch-greedy|\n"
      "night-shift), policy.deferral, policy.horizon,\n"
      "policy.battery_aware, policy.carbon_aware, policy.window_start_h,\n"
      "policy.window_end_h, grid.profile (flat|wind-heavy|solar-heavy)\n"
      "scheduler.shards (placement-group scheduling shards, default 1)\n"
      "sim.fidelity (slot|event), sim.slot_seconds, sim.dwell_slots,\n"
      "sim.drain_slots, sim.dvfs_eco_speed, sim.maid, sim.maid_min_disks\n"
      "arrivals.enabled, arrivals.rate_per_h, arrivals.seed,\n"
      "arrivals.mean_work_s, arrivals.work_sigma,\n"
      "arrivals.deadline_slack_s, arrivals.utilization, arrivals.diurnal\n"
      "admission.horizon, admission.battery_reserve_soc,\n"
      "admission.overflow (grid|reject)\n"
      "forecast.noisy, forecast.error_at_1h, forecast.error_cap,\n"
      "forecast.bias_at_1h, forecast.ar1_rho, forecast.seed\n"
      "failures.events (node@fail_s@recover_s;... recover 0 = never),\n"
      "failures.repair_rate_bytes_per_s, failures.repair_deadline_s\n"
      "scenario.failure_process (none|poisson|weibull),\n"
      "scenario.mtbf_hours, scenario.weibull_shape, scenario.mttr_hours,\n"
      "scenario.failure_seed\n"
      "scenario.spike_rate_per_day, scenario.spike_duration_h,\n"
      "scenario.spike_carbon_x, scenario.spike_price_x,\n"
      "scenario.spike_seed\n"
      "scenario.curtail_rate_per_day, scenario.curtail_duration_h,\n"
      "scenario.curtail_supply_fraction, scenario.curtail_seed\n";
}

}  // namespace gm::core
