#pragma once
// Experiment configuration from key=value files (and CLI overrides).
// Every supported key is documented in `config_keys_help()`; unknown
// keys are an error so typos fail loudly instead of silently running
// the default.

#include <string>
#include <utility>
#include <vector>

#include "core/config.hpp"
#include "util/config_kv.hpp"

namespace gm::core {

/// Applies the keys in `kv` on top of `config`. Throws
/// gm::InvalidArgument on unknown keys or malformed values.
void apply_config(ExperimentConfig& config, const KeyValueConfig& kv);

/// Builds a config from a file (canonical defaults + file contents).
ExperimentConfig config_from_file(const std::string& path);

/// One-line-per-key description of the accepted configuration keys.
std::string config_keys_help();

/// Echoes a config back as (key, value) pairs in the same key space
/// `apply_config` consumes, so a run manifest doubles as a config file
/// that reproduces the run. Covers every CLI-settable key; fields only
/// reachable through the C++ API (preset workloads, custom grids,
/// failure schedules) are not representable and are echoed by their
/// nearest key-space equivalent (battery kCustom echoes as "ideal").
std::vector<std::pair<std::string, std::string>> config_echo(
    const ExperimentConfig& config);

/// Parses policy names as used in config files and CLIs.
PolicyKind parse_policy_kind(const std::string& name);

}  // namespace gm::core
