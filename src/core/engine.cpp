#include "core/engine.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "core/config_io.hpp"
#include "core/policies.hpp"
#include "util/assert.hpp"
#include "util/log.hpp"

namespace gm::core {

namespace {

/// Horizon the scenario processes must cover: the workload window plus
/// the drain tail (events in the drain still hit the engine).
SimTime scenario_horizon(const ExperimentConfig& config) {
  return config.duration() +
         static_cast<SimTime>(config.max_drain_slots) *
             config.slot_length_s;
}

std::shared_ptr<const energy::PowerSource> build_supply(
    const ExperimentConfig& config) {
  auto composite = std::make_shared<energy::CompositeSource>();
  bool any = false;
  if (!config.solar_trace_csv.empty()) {
    composite->add(std::make_shared<energy::TraceSource>(
        energy::TraceSource::from_csv(config.solar_trace_csv, 3600)));
    any = true;
  } else if (config.panel_area_m2 > 0.0) {
    composite->add(energy::make_pv_array(config.solar,
                                         config.panel_area_m2));
    any = true;
  }
  if (config.use_wind) {
    composite->add(std::make_shared<energy::WindModel>(config.wind));
    any = true;
  }
  if (!any) return std::make_shared<energy::NullSource>();
  // Demand-response curtailment windows derate the whole site feed;
  // wrapping here means the truth source, the forecasters and the
  // precomputed slot energies all see the curtailed supply.
  auto windows = scenario::generate_curtailment_windows(
      config.scenario.curtailment, scenario_horizon(config));
  if (windows.empty()) return composite;
  return std::make_shared<energy::ModulatedSource>(std::move(composite),
                                                   std::move(windows));
}

std::unique_ptr<energy::ForecastProvider> build_forecast(
    const ExperimentConfig& config,
    std::shared_ptr<const energy::PowerSource> supply) {
  if (config.noisy_forecast)
    return std::make_unique<energy::NoisyForecast>(
        std::move(supply), config.forecast_noise, config.slot_length_s);
  return std::make_unique<energy::PerfectForecast>(std::move(supply));
}

/// config.grid with scenario-generated spike events appended. Both the
/// meter and the planner's carbon forecast read the result, so a
/// carbon-aware policy sees the same spike it will be charged for.
energy::GridConfig build_effective_grid(const ExperimentConfig& config) {
  energy::GridConfig grid = config.grid;
  auto spikes = scenario::generate_grid_spikes(
      config.scenario.grid_spikes, scenario_horizon(config));
  grid.events.insert(grid.events.end(), spikes.begin(), spikes.end());
  return grid;
}

}  // namespace

SimulationEngine::SimulationEngine(const ExperimentConfig& config,
                                   std::shared_ptr<obs::Recorder> recorder)
    : config_(config),
      recorder_(std::move(recorder)),
      cluster_(config.cluster),
      workload_(config.preset_workload
                    ? config.preset_workload
                    : std::make_shared<const workload::Workload>(
                          workload::generate_workload(
                              config.workload,
                              config.cluster.placement.group_count))),
      supply_(build_supply(config)),
      forecast_(build_forecast(config, supply_)),
      battery_(config.battery),
      effective_grid_(build_effective_grid(config)),
      grid_(effective_grid_),
      policy_(make_policy(config.policy)),
      power_(cluster_, config.min_dwell_slots),
      router_(cluster_, storage::RouterConfig{}),
      slots_(config.slot_length_s) {
  config_.validate();

  facts_.total_nodes = static_cast<int>(cluster_.node_count());
  facts_.min_nodes_for_coverage = power_.min_feasible();
  facts_.task_slots_per_node = config_.cluster.node.task_slots;
  facts_.node_idle_floor_w = config_.cluster.node.idle_floor_w();
  facts_.node_peak_w = config_.cluster.node.peak_w();
  facts_.slot_length_s = static_cast<Seconds>(config_.slot_length_s);
  facts_.node_boot_energy_j = config_.cluster.node.boot_energy_j();
  facts_.max_utilization_per_node = config_.max_utilization_per_node;
  policy_->initialize(facts_);

  std::sort(config_.node_failures.begin(), config_.node_failures.end(),
            [](const NodeFailureEvent& a, const NodeFailureEvent& b) {
              return a.fail_at < b.fail_at;
            });
  // Merge the explicit failure list with the scenario-generated outage
  // stream; process_failures consumes the merged, sorted list. config_
  // itself stays pristine so the echoed manifest replays exactly
  // (replaying would regenerate the same outages from scenario.*).
  failure_events_ = config_.node_failures;
  for (const auto& o : scenario::generate_node_outages(
           config_.scenario.failures,
           static_cast<int>(cluster_.node_count()),
           scenario_horizon(config_))) {
    NodeFailureEvent e;
    e.fail_at = o.fail_at;
    e.recover_at = o.recover_at;
    e.node = static_cast<storage::NodeId>(o.node);
    failure_events_.push_back(e);
  }
  std::sort(failure_events_.begin(), failure_events_.end(),
            [](const NodeFailureEvent& a, const NodeFailureEvent& b) {
              if (a.fail_at != b.fail_at) return a.fail_at < b.fail_at;
              return a.node < b.node;
            });

  // Precompute per-slot foreground utilization (node-equivalents).
  const auto total_slots = static_cast<std::size_t>(
      config_.duration() / config_.slot_length_s +
      config_.max_drain_slots + 1);
  fg_util_.assign(total_slots, 0.0);
  // In open-system mode the admission ledger may look further ahead
  // than the planner; size the precomputed supply for the deeper of
  // the two. Closed-loop sizing is unchanged.
  const int supply_horizon =
      config_.arrivals.enabled
          ? std::max(config_.policy.horizon_slots,
                     config_.admission.horizon_slots)
          : config_.policy.horizon_slots;
  slot_green_j_.resize(total_slots + supply_horizon + 1);
  for (std::size_t s = 0; s < slot_green_j_.size(); ++s) {
    const SimTime a = static_cast<SimTime>(s) * config_.slot_length_s;
    slot_green_j_[s] = supply_->energy_j(a, a + config_.slot_length_s);
  }

  const auto& disk = config_.cluster.node.disk;
  for (const auto& r : workload_->requests) {
    const double service =
        disk.avg_seek_s +
        static_cast<double>(r.size_bytes) / disk.bandwidth_bytes_per_s;
    const auto s = static_cast<std::size_t>(slots_.slot_of(r.arrival));
    if (s < fg_util_.size())
      fg_util_[s] += service * config_.foreground_cpu_factor /
                     static_cast<double>(config_.slot_length_s);
  }

  if (config_.arrivals.enabled) {
    arrival_stream_ = std::make_unique<workload::ArrivalStream>(
        config_.arrivals, config_.cluster.placement.group_count);
    AdmissionController::Facts af;
    af.slot_length_s = facts_.slot_length_s;
    af.node_peak_w = facts_.node_peak_w;
    af.node_idle_floor_w = facts_.node_idle_floor_w;
    af.battery_usable_j = battery_.usable_capacity_j();
    // Ledger inputs: forecast green supply per slot, and the baseline
    // spend the cluster owes regardless of admission (coverage-floor
    // idle energy + foreground dynamic energy).
    admission_ = std::make_unique<AdmissionController>(
        config_.admission, af,
        [this](SlotIndex s) {
          const auto i = static_cast<std::size_t>(s);
          return i < slot_green_j_.size() ? slot_green_j_[i] : 0.0;
        },
        [this](SlotIndex s) {
          const double slot_len =
              static_cast<double>(config_.slot_length_s);
          const Watts spread =
              facts_.node_peak_w - facts_.node_idle_floor_w;
          return power_.min_feasible() * facts_.node_idle_floor_w *
                     slot_len +
                 spread * slot_fg_util(s) * slot_len;
        });
  }

  // Manifest first thing, so even an aborted run leaves its
  // reproduction recipe next to the (partial) trace.
  if (recorder_) {
    obs::ManifestInfo info;
    info.config_echo = config_echo(config_);
    info.policy_name = policy_->name();
    info.workload_seed = config_.workload.seed;
    info.solar_seed = config_.solar.seed;
    info.policy_seed = config_.policy.seed;
    info.slot_length_s = static_cast<double>(config_.slot_length_s);
    info.total_slots = static_cast<std::int64_t>(this->total_slots());
    recorder_->write_manifest(info);
  }
}

void SimulationEngine::admit_released_tasks(SimTime now) {
  // Open-system mode replaces the pregenerated background task pool
  // with the arrival stream (intake_arrivals); repairs, offloads and
  // federation injections are obligations and bypass admission.
  while (!admission_ && next_task_index_ < workload_->tasks.size() &&
         workload_->tasks[next_task_index_].release <= now) {
    PendingTask p;
    p.task = workload_->tasks[next_task_index_++];
    p.remaining_s = p.task.work_s;
    p.policy_tag = policy_->admit(p.task);
    if (trace_events()) trace_task_admit(p.task, now, "workload");
    pending_.push_back(p);
  }
  for (auto& task : router_.drain_offload_tasks()) {
    PendingTask p;
    p.task = task;
    p.remaining_s = task.work_s;
    p.policy_tag = policy_->admit(p.task);
    if (trace_events()) trace_task_admit(p.task, now, "offload");
    pending_.push_back(p);
  }
}

void SimulationEngine::intake_arrivals(SlotIndex slot, SimTime start) {
  GM_OBS_SCOPE("engine.intake_arrivals");
  // Ledger upkeep, none of it on the per-arrival path: advance the
  // ring (O(slots advanced)), patch revised forecasts (O(touched
  // slots)), and reconcile commitments against the live pool now that
  // the previous slot's plan has landed.
  admission_->begin_slot(slot, battery_.stored_j());
  if (config_.noisy_forecast) {
    const SimTime slot_len = config_.slot_length_s;
    for (int j = 0; j < admission_->horizon_slots(); ++j) {
      const SimTime a = start + static_cast<SimTime>(j) * slot_len;
      admission_->revise_supply(
          slot + j, forecast_->forecast_mean_w(start, a, a + slot_len) *
                        static_cast<double>(slot_len));
    }
  }
  admission_->rebuild_commitments(pending_, start);

  // Offer list: parked tasks first (older arrivals get first claim on
  // headroom), then the stream pulled up to this boundary. Arrivals
  // during slot s are decided at the s+1 boundary — the same release
  // <= now convention the closed-loop admit path uses.
  arrival_buf_.clear();
  arrival_buf_.swap(deferred_arrivals_);
  const std::size_t parked = arrival_buf_.size();
  const SimTime cover_to = std::min(start, config_.duration());
  if (cover_to > arrivals_covered_) {
    arrival_stream_->pull(arrivals_covered_, cover_to, arrival_buf_);
    arrivals_covered_ = cover_to;
  }
  arrivals_new_last_slot_ =
      static_cast<std::uint64_t>(arrival_buf_.size() - parked);
  arrivals_generated_ += arrivals_new_last_slot_;

  const bool provenance = recorder_ && recorder_->provenance();
  for (const auto& task : arrival_buf_) {
    const AdmissionDecision d = admission_->decide(task, start);
    if (provenance) {
      obs::DecisionSample sample;
      sample.slot = static_cast<std::int64_t>(slot);
      sample.t = static_cast<double>(start);
      sample.policy = "admission";
      sample.task = static_cast<std::uint64_t>(task.id);
      sample.action = d.action == AdmissionAction::kAdmit  ? "run"
                      : d.action == AdmissionAction::kDefer ? "defer"
                                                            : "drop";
      sample.reason = d.reason;
      sample.chosen_offset = d.chosen_offset;
      sample.deadline_slack = static_cast<std::int64_t>(
          (task.deadline - start) / config_.slot_length_s);
      recorder_->record_decision(sample);
    }
    switch (d.action) {
      case AdmissionAction::kAdmit: {
        PendingTask p;
        p.task = task;
        p.remaining_s = task.work_s;
        p.policy_tag = policy_->admit(p.task);
        if (trace_events()) trace_task_admit(task, start, "arrival");
        pending_.push_back(p);
        break;
      }
      case AdmissionAction::kDefer:
        deferred_arrivals_.push_back(task);
        break;
      case AdmissionAction::kReject:
        if (trace_events())
          recorder_->event("task_reject", static_cast<double>(start))
              .set("task", static_cast<std::uint64_t>(task.id))
              .set("reason", d.reason)
              .set("work_s", task.work_s);
        break;
    }
  }
}

void SimulationEngine::trace_task_admit(const storage::BackgroundTask& task,
                                        SimTime now, const char* source) {
  recorder_->event("task_admit", static_cast<double>(now))
      .set("task", static_cast<std::uint64_t>(task.id))
      .set("type", storage::task_type_name(task.type))
      .set("source", source)
      .set("deadline_s", static_cast<double>(task.deadline))
      .set("work_s", task.work_s);
}

void SimulationEngine::process_failures(SimTime now, SlotIndex slot) {
  // Recoveries first so a fail/recover pair in the same slot nets out.
  std::erase_if(pending_recoveries_, [&](const NodeFailureEvent& e) {
    if (e.recover_at > now) return false;
    power_.recover_node(e.node, now, slot);
    if (trace_events())
      recorder_->event("node_repair", static_cast<double>(now))
          .set("node", static_cast<std::uint64_t>(e.node));
    return true;
  });
  const auto& events = failure_events_;
  while (next_failure_index_ < events.size() &&
         events[next_failure_index_].fail_at <= now) {
    const NodeFailureEvent& e = events[next_failure_index_++];
    GM_CHECK(e.node < cluster_.node_count(),
             "failure event names unknown node " << e.node);
    power_.fail_node(e.node, now);
    ++nodes_failed_;
    if (trace_events())
      recorder_->event("node_fail", static_cast<double>(now))
          .set("node", static_cast<std::uint64_t>(e.node))
          .set("recover_at_s", static_cast<double>(e.recover_at));
    if (e.recover_at > e.fail_at) pending_recoveries_.push_back(e);
    // Re-replication: one repair task per group the node hosted.
    for (storage::GroupId g : cluster_.placement().groups_on(e.node)) {
      PendingTask p;
      p.task.id = next_repair_task_id_++;
      p.task.type = storage::TaskType::kRepair;
      p.task.release = now;
      p.task.deadline =
          now + static_cast<SimTime>(config_.repair_deadline_s);
      p.task.work_s = std::max(
          60.0, cluster_.placement().group_bytes(g) /
                    config_.repair_rate_bytes_per_s);
      p.task.utilization = 0.2;
      p.task.group = g;
      p.remaining_s = p.task.work_s;
      p.policy_tag = policy_->admit(p.task);
      if (trace_events()) trace_task_admit(p.task, now, "repair");
      pending_.push_back(p);
    }
  }
}

const SlotContext& SimulationEngine::make_context(SlotIndex slot,
                                                  SimTime start,
                                                  SimTime end) {
  // ctx_ is a rolling buffer: the forecast vectors and the pending
  // snapshot are refilled in place every slot, so their allocations
  // are made once per run instead of once per slot.
  SlotContext& ctx = ctx_;
  ctx.slot = slot;
  ctx.start = start;
  ctx.end = end;
  ctx.battery_stored_j = battery_.stored_j();
  ctx.battery_usable_capacity_j = battery_.usable_capacity_j();
  ctx.battery_max_charge_w = battery_.config().max_charge_w();
  ctx.battery_max_discharge_w = battery_.config().max_discharge_w();
  ctx.battery_charge_efficiency = battery_.config().charge_efficiency;
  ctx.currently_active_nodes = power_.active_count();
  ctx.arrivals_new = arrivals_new_last_slot_;
  ctx.arrivals_deferred_backlog =
      static_cast<std::uint64_t>(deferred_arrivals_.size());

  const int horizon = std::max(1, config_.policy.horizon_slots);
  ctx.green_forecast_w.clear();
  ctx.foreground_util_forecast.clear();
  ctx.grid_carbon_g_per_kwh.clear();
  ctx.green_forecast_w.reserve(horizon);
  ctx.foreground_util_forecast.reserve(horizon);
  ctx.grid_carbon_g_per_kwh.reserve(horizon);
  for (int j = 0; j < horizon; ++j) {
    const auto s = static_cast<std::size_t>(slot + j);
    if (config_.noisy_forecast) {
      const SimTime a = start + static_cast<SimTime>(j) *
                                    config_.slot_length_s;
      const SimTime b = a + config_.slot_length_s;
      ctx.green_forecast_w.push_back(
          forecast_->forecast_mean_w(start, a, b));
    } else {
      ctx.green_forecast_w.push_back(
          s < slot_green_j_.size()
              ? slot_green_j_[s] /
                    static_cast<double>(config_.slot_length_s)
              : 0.0);
    }
    ctx.foreground_util_forecast.push_back(
        s < fg_util_.size() ? fg_util_[s] : 0.0);
    const SimTime mid = start + static_cast<SimTime>(j) *
                                    config_.slot_length_s +
                        config_.slot_length_s / 2;
    ctx.grid_carbon_g_per_kwh.push_back(
        effective_grid_.carbon_g_per_kwh_at(mid));
  }
  ctx.foreground_util = ctx.foreground_util_forecast[0];
  ctx.pending.assign(pending_.begin(), pending_.end());
  return ctx;
}

std::vector<std::size_t> SimulationEngine::assign_tasks(
    const SlotDecision& decision, SimTime now, Joules& migration_j) {
  GM_OBS_SCOPE("engine.assign_tasks");
  std::unordered_set<storage::TaskId> chosen(decision.run_tasks.begin(),
                                             decision.run_tasks.end());

  // Per-node headroom under the post-transition active set. `active`
  // is a live reference: urgent-task wake-ups below update it.
  const auto& active = power_.active();
  const int active_count = power_.active_count();
  const double fg_share =
      active_count > 0
          ? fg_util_[static_cast<std::size_t>(slots_.slot_of(now))] /
                active_count
          : 0.0;
  std::vector<int> free_slots(cluster_.node_count(), 0);
  std::vector<double> node_util(cluster_.node_count(), 0.0);
  for (storage::NodeId n = 0; n < cluster_.node_count(); ++n) {
    if (!active[n]) continue;
    free_slots[n] = config_.cluster.node.task_slots;
    node_util[n] = fg_share;
  }

  std::vector<std::size_t> running;
  const Seconds slot_len = static_cast<Seconds>(config_.slot_length_s);

  // pending_ is deadline-sorted; iterate once so urgent tasks get
  // first pick of the capacity even if the policy omitted them.
  for (std::size_t i = 0; i < pending_.size(); ++i) {
    PendingTask& p = pending_[i];
    const bool urgent = p.urgent(now, slot_len);
    const bool wanted = chosen.count(p.task.id) > 0;
    if (!wanted && !urgent) {
      if (p.running) p.running = false;  // suspended by the policy
      continue;
    }
    if (!wanted && urgent) ++forced_urgent_;

    // Candidate nodes: active replicas of the task's group with a free
    // task slot and utilization headroom.
    const auto find_candidate = [&]() {
      storage::NodeId best = storage::kInvalidNode;
      double best_util = 1e18;
      for (storage::NodeId n :
           cluster_.placement().replicas(p.task.group)) {
        if (!active[n] || free_slots[n] <= 0) continue;
        if (node_util[n] + p.task.utilization >
            config_.max_utilization_per_node)
          continue;
        if (n == p.assigned_node && p.running) return n;  // sticky
        if (node_util[n] < best_util) {
          best_util = node_util[n];
          best = n;
        }
      }
      return best;
    };
    storage::NodeId best = find_candidate();
    if (best == storage::kInvalidNode && urgent) {
      // Last resort for a task about to miss its deadline: wake a
      // sleeping replica (transition energy is accounted by the
      // power manager's forced-energy channel).
      const storage::NodeId woken = power_.wake_sleeping_replica(
          p.task.group, now, slots_.slot_of(now));
      if (woken != storage::kInvalidNode) {
        free_slots[woken] = config_.cluster.node.task_slots;
        node_util[woken] = fg_share;
        best = find_candidate();
      }
    }
    if (best == storage::kInvalidNode) {
      ++assignment_failures_;
      if (p.running) p.running = false;
      continue;
    }
    if (p.running && p.assigned_node != best) {
      ++migrations_;
      migration_j += config_.task_migration_energy_j;
    }
    p.assigned_node = best;
    p.running = true;
    --free_slots[best];
    node_util[best] += p.task.utilization;
    running.push_back(i);
  }
  return running;
}

void SimulationEngine::route_requests(SlotIndex slot, SimTime start,
                                      SimTime end) {
  GM_OBS_SCOPE("engine.route_requests");
  const storage::NodeWaker waker = [&](storage::GroupId group,
                                       SimTime now) -> SimTime {
    return power_.force_wake_for_group(group, now, slot);
  };
  while (next_request_index_ < workload_->requests.size() &&
         workload_->requests[next_request_index_].arrival < end) {
    const auto& req = workload_->requests[next_request_index_++];
    GM_ASSERT(req.arrival >= start);
    simulator_.schedule_at(req.arrival, [this, &req, &waker] {
      router_.route(req, simulator_.now(), waker);
    });
  }
  simulator_.run_until(end);
}

SlotIndex SimulationEngine::total_slots() const {
  // Fixed accounting horizon: every run simulates exactly
  // workload + max_drain_slots slots so that policies that defer work
  // later are compared over the same wall-clock window (and pay the
  // same idle-floor baseline).
  return static_cast<SlotIndex>(config_.duration() /
                                config_.slot_length_s) +
         config_.max_drain_slots;
}

Watts SimulationEngine::slot_green_w(SlotIndex slot) const {
  const auto s = static_cast<std::size_t>(slot);
  return s < slot_green_j_.size()
             ? slot_green_j_[s] / static_cast<double>(config_.slot_length_s)
             : 0.0;
}

Seconds SimulationEngine::pending_work_s() const {
  Seconds total = 0.0;
  for (const auto& p : pending_)
    if (!p.running) total += p.remaining_s;
  return total;
}

double SimulationEngine::slot_fg_util(SlotIndex slot) const {
  const auto s = static_cast<std::size_t>(slot);
  return s < fg_util_.size() ? fg_util_[s] : 0.0;
}

std::vector<PendingTask> SimulationEngine::extract_transferable_tasks(
    SimTime now, Seconds min_slack_s, std::size_t max_tasks) {
  std::vector<PendingTask> moved;
  std::erase_if(pending_, [&](const PendingTask& p) {
    if (moved.size() >= max_tasks) return false;
    if (p.running) return false;
    if (p.slack(now) < min_slack_s) return false;
    moved.push_back(p);
    return true;
  });
  // Mid-pool erasure shifts later (possibly unsorted, injected)
  // entries into the sorted prefix; re-sort from scratch next slot.
  pending_sorted_ = 0;
  // Moved tasks become the destination site's responsibility.
  GM_ASSERT(tasks_admitted_ >= moved.size());
  tasks_admitted_ -= moved.size();
  return moved;
}

void SimulationEngine::inject_task(const storage::BackgroundTask& task,
                                   Seconds remaining_s) {
  GM_CHECK(task.group < config_.cluster.placement.group_count,
           "injected task group out of range: " << task.group);
  PendingTask p;
  p.task = task;
  p.remaining_s = remaining_s;
  p.policy_tag = policy_->admit(p.task);
  if (trace_events())
    trace_task_admit(p.task, next_slot_ * config_.slot_length_s,
                     "federation");
  pending_.push_back(p);
  ++tasks_admitted_;
}

const SlotContext& SimulationEngine::observe(SlotIndex slot) {
  GM_CHECK(!finalized_, "observe after finalize");
  GM_CHECK(slot == next_slot_, "slots must run consecutively: expected "
                                   << next_slot_ << ", got " << slot);
  GM_CHECK(!observed_, "observe called twice without an act between");
  observed_ = true;

  obs::ScopedRecorder obs_install(recorder_.get());
  GM_OBS_SCOPE("engine.observe");

  const SimTime slot_len = config_.slot_length_s;
  const SimTime start = slot * slot_len;
  const SimTime end = start + slot_len;

  // 1. Failures/recoveries, then admit released tasks; keep the
  //    pool deadline-sorted. The pool left by the previous slot is
  //    already sorted (pending_sorted_ tracks the prefix length, and
  //    federation injections land past it), so instead of re-sorting
  //    everything we sort just the newcomers and admit them into
  //    position with an inplace_merge. (deadline, id) keys are
  //    unique for coexisting tasks, so this yields the same order a
  //    full sort would.
  const std::size_t before = pending_.size();
  process_failures(start, slot);
  admit_released_tasks(start);
  if (admission_) intake_arrivals(slot, start);
  tasks_admitted_ += pending_.size() - before;
  const auto by_deadline = [](const PendingTask& a,
                              const PendingTask& b) {
    if (a.task.deadline != b.task.deadline)
      return a.task.deadline < b.task.deadline;
    return a.task.id < b.task.id;
  };
  const auto mid =
      pending_.begin() +
      static_cast<std::ptrdiff_t>(std::min(pending_sorted_, before));
  std::sort(mid, pending_.end(), by_deadline);
  std::inplace_merge(pending_.begin(), mid, pending_.end(),
                     by_deadline);
  pending_sorted_ = pending_.size();

  // 2. The observation the agent decides on.
  return make_context(slot, start, end);
}

void SimulationEngine::run_slot(SlotIndex slot) {
  // Make this engine's recorder visible to GM_OBS_SCOPE timers in the
  // policy, planner, power manager and router for the slot's duration.
  obs::ScopedRecorder obs_install(recorder_.get());
  GM_OBS_SCOPE("engine.run_slot");

  const SlotContext& ctx = observe(slot);

  // Policy decision. The extra steady_clock reads around decide()
  // feed the per-slot plan-latency histogram (p50/p95/p99 at finish)
  // and are taken only when a recorder is attached.
  SlotDecision decision;
  if (recorder_) {
    const auto plan_t0 = std::chrono::steady_clock::now();
    {
      GM_OBS_SCOPE("policy.decide");
      decision = policy_->decide(ctx);
    }
    recorder_->observe_plan_latency(
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - plan_t0)
            .count());
  } else {
    decision = policy_->decide(ctx);
  }

  act(slot, decision);
}

void SimulationEngine::act(SlotIndex slot, const SlotDecision& decision) {
  GM_CHECK(observed_ && slot == next_slot_,
           "act(" << slot << ") without a matching observe");
  observed_ = false;
  ++next_slot_;

  obs::ScopedRecorder obs_install(recorder_.get());
  GM_OBS_SCOPE("engine.act");

  const SimTime slot_len = config_.slot_length_s;
  const auto workload_slots =
      static_cast<SlotIndex>(config_.duration() / slot_len);
  const Watts idle_floor = facts_.node_idle_floor_w;
  const Watts spread = facts_.node_peak_w - facts_.node_idle_floor_w;
  RunArtifacts& artifacts = artifacts_;
  {
    const SimTime start = slot * slot_len;
    const SimTime end = start + slot_len;
    const bool in_workload = slot < workload_slots;

    // 3. Power management. The engine recomputes the floor the
    //    foreground demand imposes so a broken policy cannot starve it.
    const double fg = ctx_.foreground_util;
    const int fg_floor = static_cast<int>(
        std::ceil(fg / config_.max_utilization_per_node));
    const int target =
        std::max({decision.target_active_nodes, fg_floor,
                  power_.min_feasible()});
    PowerManager::Transition tr;
    {
      GM_OBS_SCOPE("power.apply_target");
      tr = power_.apply_target(slot, target, start);
    }
    power_ons_ += tr.powered_on;
    power_offs_ += tr.powered_off;

    // 4. Task assignment and execution. Non-urgent tasks may run at
    //    the DVFS eco frequency when the policy asked for it: work
    //    rate scales with f, dynamic power with f^alpha.
    Joules migration_j = 0.0;
    const auto running = assign_tasks(decision, start, migration_j);
    const double eco = decision.eco_speed ? config_.dvfs_eco_speed : 1.0;
    double task_util_eff = 0.0;   // occupancy (capacity accounting)
    Joules task_dynamic_j = 0.0;  // dynamic energy of running tasks
    for (std::size_t i : running) {
      PendingTask& p = pending_[i];
      const bool urgent =
          p.urgent(start, static_cast<Seconds>(slot_len));
      const double speed = urgent ? 1.0 : eco;
      const Seconds wall = std::min(static_cast<Seconds>(slot_len),
                                    p.remaining_s / speed);
      const Seconds work = wall * speed;
      task_util_eff += p.task.utilization * wall /
                       static_cast<double>(slot_len);
      task_dynamic_j += p.task.utilization * spread *
                        std::pow(speed, config_.dvfs_alpha) * wall;
      p.remaining_s -= work;
      if (p.remaining_s <= 1e-9) {
        const SimTime completion = start + static_cast<SimTime>(wall);
        ++tasks_completed_;
        const bool missed = completion > p.task.deadline;
        if (missed) ++deadline_misses_;
        sojourn_hours_sum_ +=
            s_to_hours(static_cast<double>(completion - p.task.release));
        p.remaining_s = 0.0;
        if (trace_events())
          recorder_->event("task_complete",
                           static_cast<double>(completion))
              .set("task", static_cast<std::uint64_t>(p.task.id))
              .set("missed", missed)
              .set("sojourn_h",
                   s_to_hours(static_cast<double>(completion -
                                                  p.task.release)));
      }
    }
    // 4b. MAID disk power management: on active nodes hosting no
    //     running background task, spin all but the configured minimum
    //     of disks down; busy nodes get all disks back (spin-up energy
    //     is charged as transition overhead).
    Joules maid_j = 0.0;
    if (config_.maid_enabled) {
      std::vector<bool> busy(cluster_.node_count(), false);
      for (std::size_t i : running)
        busy[pending_[i].assigned_node] = true;
      const auto& active = power_.active();
      for (storage::NodeId n = 0; n < cluster_.node_count(); ++n) {
        if (!active[n]) continue;
        auto& disks = cluster_.node(n).disks();
        const int keep =
            busy[n] ? static_cast<int>(disks.size())
                    : std::min<int>(config_.maid_min_spinning_disks,
                                    static_cast<int>(disks.size()));
        for (int d = 0; d < static_cast<int>(disks.size()); ++d) {
          auto& disk = disks[d];
          if (d < keep && !disk.spinning()) {
            const SimTime done = disk.begin_spinup(start);
            disk.complete_spinup(std::max(done, start));
            maid_j += disk.config().spinup_energy_j();
          } else if (d >= keep && disk.spinning()) {
            disk.spin_down(start);
          }
        }
      }
    }

    std::erase_if(pending_,
                  [](const PendingTask& p) { return p.remaining_s <= 0.0; });
    pending_sorted_ = pending_.size();  // erasure preserves the order

    // 5. Event-level request routing inside the slot.
    if (config_.fidelity == Fidelity::kEventLevel && in_workload)
      route_requests(slot, start, end);

    // 6. Energy integration and balance.
    const int active_count = power_.active_count();
    const Joules forced_j = power_.drain_forced_energy_j();
    const Joules transition_j = tr.energy_j + forced_j + maid_j;
    Joules base_j =
        active_count * idle_floor * static_cast<double>(slot_len);
    if (config_.maid_enabled) {
      // Per-node floor reflecting actual disk states.
      base_j = 0.0;
      const auto& active = power_.active();
      for (storage::NodeId n = 0; n < cluster_.node_count(); ++n) {
        if (!active[n]) continue;
        Watts node_floor = config_.cluster.node.cpu_idle_w;
        for (const auto& disk : cluster_.node(n).disks())
          node_floor += disk.power_w();
        base_j += node_floor * static_cast<double>(slot_len);
      }
    }
    const Joules dynamic_j =
        spread * fg * static_cast<double>(slot_len) + task_dynamic_j;
    const Joules demand_j =
        base_j + dynamic_j + transition_j + migration_j;

    const Joules supply_j =
        static_cast<std::size_t>(slot) < slot_green_j_.size()
            ? slot_green_j_[slot]
            : supply_->energy_j(start, end);
    const Joules green_direct = std::min(demand_j, supply_j);
    const Joules surplus = supply_j - green_direct;
    const Joules deficit = demand_j - green_direct;

    Joules charged = 0.0, discharged = 0.0, brown = 0.0;
    if (surplus > 0.0)
      charged = battery_.charge(surplus, static_cast<Seconds>(slot_len));
    if (deficit > 0.0) {
      discharged =
          battery_.discharge(deficit, static_cast<Seconds>(slot_len));
      brown = deficit - discharged;
      if (brown > 0.0) grid_.draw(start, brown);
    }
    battery_.apply_self_discharge(static_cast<Seconds>(slot_len));

    energy::SlotRecord record;
    record.slot = slot;
    record.start = start;
    record.end = end;
    record.green_supply_j = supply_j;
    record.green_direct_j = green_direct;
    record.battery_charge_drawn_j = charged;
    record.battery_discharged_j = discharged;
    record.brown_j = brown;
    // test_leak_j_per_slot (test-only, see config.hpp) books phantom
    // curtailment on slots with real supply, where the ledger's
    // RELATIVE tolerance scales to ~10 J and is blind to it — only
    // gm::audit's absolute re-check / the golden corpus can catch it.
    // (On zero-supply slots the relative check degenerates to a 1e-6 J
    // absolute one, which would catch the leak trivially.)
    record.curtailed_j =
        surplus - charged +
        (supply_j > 1.0 ? config_.test_leak_j_per_slot : 0.0);
    record.demand_j = demand_j;
    record.overhead_transition_j = transition_j;
    record.overhead_migration_j = migration_j;
    record.battery_stored_end_j = battery_.stored_j();
    artifacts.ledger.append(record);

    active_nodes_tw_.set(start, active_count);
    artifacts.active_nodes_per_slot.push_back(active_count);
    artifacts.task_util_per_slot.push_back(task_util_eff);
    artifacts.fg_util_per_slot.push_back(fg);

    if (recorder_) {
      obs::SlotSample sample;
      sample.slot = static_cast<std::int64_t>(slot);
      sample.start_s = static_cast<double>(start);
      sample.end_s = static_cast<double>(end);
      sample.green_supply_j = supply_j;
      sample.green_direct_j = green_direct;
      sample.battery_in_j = charged;
      sample.battery_out_j = discharged;
      sample.brown_j = brown;
      sample.curtailed_j = surplus - charged;
      sample.demand_j = demand_j;
      sample.battery_soc_j = battery_.stored_j();
      sample.active_nodes = active_count;
      sample.pending_depth =
          static_cast<std::int64_t>(pending_.size());
      sample.tasks_running = static_cast<std::int64_t>(running.size());
      sample.target_active_nodes = decision.target_active_nodes;
      sample.run_set_size =
          static_cast<std::int64_t>(decision.run_tasks.size());
      sample.eco_speed = decision.eco_speed;
      const std::uint64_t wakeups = router_.stats().forced_wakeups;
      sample.forced_wakeups =
          static_cast<std::int64_t>(wakeups - last_forced_wakeups_);
      last_forced_wakeups_ = wakeups;
      sample.node_failures =
          static_cast<std::int64_t>(nodes_failed_ - last_nodes_failed_);
      last_nodes_failed_ = nodes_failed_;
      recorder_->record_slot(sample);
    }
  }
}

RunArtifacts SimulationEngine::finalize() {
  GM_CHECK(!finalized_, "finalize called twice");
  finalized_ = true;
  RunArtifacts& artifacts = artifacts_;
  const SimTime slot_len = config_.slot_length_s;

  // Any tasks that never completed (pool drained by the slot cap) are
  // counted as misses.
  deadline_misses_ += pending_.size();
  const auto tasks_unfinished =
      static_cast<std::uint64_t>(pending_.size());
  const SimTime final_time =
      static_cast<SimTime>(artifacts.ledger.size()) * slot_len;
  active_nodes_tw_.advance_to(final_time);
  if (trace_events())
    for (const auto& p : pending_)
      recorder_->event("task_miss", static_cast<double>(final_time))
          .set("task", static_cast<std::uint64_t>(p.task.id))
          .set("remaining_s", p.remaining_s);

  // --- assemble the result -----------------------------------------
  metrics::RunResult& r = artifacts.result;
  r.energy = artifacts.ledger.totals();
  r.duration = final_time;
  r.grid_carbon_g = grid_.total_carbon_g();
  r.grid_cost_usd = grid_.total_cost_usd();

  r.qos.foreground_requests = router_.stats().requests;
  r.qos.unavailable_reads = router_.unavailable_reads();
  r.qos.offloaded_writes = router_.stats().offloaded_writes;
  if (router_.latency_histogram().count() > 0) {
    r.qos.read_latency_p50_s = router_.latency_histogram().quantile(0.50);
    r.qos.read_latency_p95_s = router_.latency_histogram().quantile(0.95);
    r.qos.read_latency_p99_s = router_.latency_histogram().quantile(0.99);
  }
  r.qos.tasks_total = tasks_admitted_;
  r.qos.tasks_completed = tasks_completed_;
  r.qos.deadline_misses = deadline_misses_;
  r.qos.tasks_unfinished = tasks_unfinished;
  if (admission_) {
    // Arrivals still parked at the horizon never entered the pool;
    // book them as rejected so every generated arrival is accounted
    // exactly once (audited: admission.arrival_accounting).
    const AdmissionStats& st = admission_->stats();
    r.qos.arrivals_generated = arrivals_generated_;
    r.qos.arrivals_admitted = st.admitted;
    r.qos.arrivals_rejected =
        st.rejected +
        static_cast<std::uint64_t>(deferred_arrivals_.size());
    r.qos.arrivals_overflow_admits = st.overflow_admits;
    r.qos.admission_decisions = st.decisions;
    r.qos.admission_deferrals = st.deferred;
    GM_ASSERT(r.qos.arrivals_generated ==
              r.qos.arrivals_admitted + r.qos.arrivals_rejected);
    if (trace_events())
      for (const auto& task : deferred_arrivals_)
        recorder_->event("task_reject", static_cast<double>(final_time))
            .set("task", static_cast<std::uint64_t>(task.id))
            .set("reason", "deferred-at-horizon")
            .set("work_s", task.work_s);
  }
  r.qos.mean_task_sojourn_h =
      tasks_completed_ > 0
          ? sojourn_hours_sum_ / static_cast<double>(tasks_completed_)
          : 0.0;

  r.battery.capacity_j = config_.battery.capacity_j;
  r.battery.charged_in_j = battery_.total_charged_in_j();
  r.battery.discharged_out_j = battery_.total_discharged_out_j();
  r.battery.conversion_loss_j = battery_.conversion_loss_j();
  r.battery.self_discharge_loss_j = battery_.self_discharge_loss_j();
  r.battery.clamp_loss_j = battery_.clamp_loss_j();
  r.battery.initial_stored_j = battery_.initial_stored_j();
  r.battery.final_stored_j = battery_.stored_j();
  r.battery.equivalent_cycles = battery_.equivalent_cycles();
  r.battery.health_fraction = battery_.health_fraction();
  r.battery.volume_l = config_.battery.volume_l();
  r.battery.price_usd = config_.battery.price_usd();

  r.scheduler.policy_name = policy_->name();
  r.scheduler.node_power_ons = power_ons_;
  r.scheduler.node_power_offs = power_offs_;
  r.scheduler.task_migrations = migrations_;
  r.scheduler.forced_wakeups = router_.stats().forced_wakeups;
  r.scheduler.forced_urgent_runs = forced_urgent_;
  r.scheduler.assignment_failures = assignment_failures_;
  r.scheduler.nodes_failed = nodes_failed_;
  r.scheduler.mean_active_nodes = active_nodes_tw_.time_average();
  if (admission_) {
    r.scheduler.admission_decision_wall_ms =
        admission_->stats().decision_wall_ms;
    if (admission_->latency_us().count() > 0) {
      r.scheduler.admission_decision_p50_us =
          admission_->latency_us().quantile(0.50);
      r.scheduler.admission_decision_p99_us =
          admission_->latency_us().quantile(0.99);
    }
  }
  if (const auto* gm =
          dynamic_cast<const GreenMatchPolicy*>(policy_.get())) {
    r.scheduler.plan_solve_ms_total = gm->solve_ms_total();
    r.scheduler.plan_cache_hits = gm->plan_cache_hits();
    r.scheduler.warm_accepts = gm->warm_accepts();
    r.scheduler.warm_rejects = gm->warm_rejects();
    const auto totals = gm->solver_totals();
    r.scheduler.solver_solves = totals.solves;
    r.scheduler.solver_dijkstra_runs = totals.dijkstra_runs;
    r.scheduler.solver_dijkstra_pops = totals.dijkstra_pops;
    r.scheduler.solver_relaxations = totals.dijkstra_relaxations;
    r.scheduler.solver_augmenting_paths = totals.augmenting_paths;
    r.scheduler.solver_arena_bytes_peak = totals.arena_bytes_peak;
    r.scheduler.solver_cs_phases = totals.cs_phases;
    r.scheduler.solver_cs_pushes = totals.cs_pushes;
    r.scheduler.solver_cs_relabels = totals.cs_relabels;
    r.scheduler.solver_cs_price_refinements = totals.cs_price_refinements;
    r.scheduler.solver_cs_global_updates = totals.cs_global_updates;
    r.scheduler.solver_incremental_accepts = totals.incremental_accepts;
    r.scheduler.solver_incremental_rebuilds = totals.incremental_rebuilds;
    if (gm->shards() > 1) {
      r.scheduler.planner_shards =
          static_cast<std::uint64_t>(gm->shards());
      r.scheduler.reconciliation_solves = gm->reconciliation_solves();
    }
  }

  if (recorder_) {
    auto& m = recorder_->metrics();
    m.counter_set("run.tasks_admitted", tasks_admitted_);
    m.counter_set("run.tasks_completed", tasks_completed_);
    m.counter_set("run.deadline_misses", deadline_misses_);
    m.counter_set("run.task_migrations", migrations_);
    m.counter_set("run.node_power_ons", power_ons_);
    m.counter_set("run.node_power_offs", power_offs_);
    m.counter_set("run.forced_urgent_runs", forced_urgent_);
    m.counter_set("run.assignment_failures", assignment_failures_);
    m.counter_set("run.nodes_failed", nodes_failed_);
    m.counter_set("run.forced_wakeups", router_.stats().forced_wakeups);
    m.counter_set("run.foreground_requests", router_.stats().requests);
    m.counter_set("run.offloaded_writes",
                  router_.stats().offloaded_writes);
    m.gauge_set("run.brown_kwh", r.brown_kwh());
    m.gauge_set("run.green_supply_kwh", r.green_supply_kwh());
    m.gauge_set("run.curtailed_kwh", r.curtailed_kwh());
    m.gauge_set("run.demand_kwh", r.demand_kwh());
    m.gauge_set("run.green_utilization", r.energy.green_utilization());
    m.gauge_set("run.grid_carbon_g", r.grid_carbon_g);
    m.gauge_set("run.grid_cost_usd", r.grid_cost_usd);
    m.gauge_set("run.mean_active_nodes", r.scheduler.mean_active_nodes);
    m.gauge_set("run.plan_solve_ms_total",
                r.scheduler.plan_solve_ms_total);
    // Flow-planner solver telemetry (satellite of the provenance
    // work): all-zero for non-GreenMatch policies, so emit only when
    // the planner actually solved something.
    if (r.scheduler.solver_solves > 0 || r.scheduler.warm_accepts > 0 ||
        r.scheduler.warm_rejects > 0) {
      m.counter_set("planner.solves", r.scheduler.solver_solves);
      m.counter_set("planner.plan_cache_hits",
                    r.scheduler.plan_cache_hits);
      m.counter_set("planner.warm_accepts", r.scheduler.warm_accepts);
      m.counter_set("planner.warm_rejects", r.scheduler.warm_rejects);
      m.counter_set("planner.dijkstra_runs",
                    r.scheduler.solver_dijkstra_runs);
      m.counter_set("planner.dijkstra_pops",
                    r.scheduler.solver_dijkstra_pops);
      m.counter_set("planner.dijkstra_relaxations",
                    r.scheduler.solver_relaxations);
      m.counter_set("planner.augmenting_paths",
                    r.scheduler.solver_augmenting_paths);
      // Cost-scaling / incremental counters (zero under the default
      // SSP solver, emitted unconditionally so dashboards can key on
      // them without probing which solver ran).
      m.counter_set("planner.cs_phases", r.scheduler.solver_cs_phases);
      m.counter_set("planner.cs_pushes", r.scheduler.solver_cs_pushes);
      m.counter_set("planner.cs_relabels",
                    r.scheduler.solver_cs_relabels);
      m.counter_set("planner.cs_price_refinements",
                    r.scheduler.solver_cs_price_refinements);
      m.counter_set("planner.cs_global_updates",
                    r.scheduler.solver_cs_global_updates);
      m.counter_set("planner.incremental_accepts",
                    r.scheduler.solver_incremental_accepts);
      m.counter_set("planner.incremental_rebuilds",
                    r.scheduler.solver_incremental_rebuilds);
      m.gauge_set("planner.arena_bytes_peak",
                  static_cast<double>(
                      r.scheduler.solver_arena_bytes_peak));
      // Sharded-planner telemetry (tentpole of the sharding work):
      // emitted only when the run actually sharded, so flat-planner
      // metric dumps are unchanged byte for byte.
      if (const auto* gm =
              dynamic_cast<const GreenMatchPolicy*>(policy_.get());
          gm && gm->shards() > 1) {
        m.gauge_set("planner.shards", static_cast<double>(gm->shards()));
        m.counter_set("planner.reconciliation_solves",
                      gm->reconciliation_solves());
        for (const auto& st : gm->shard_stats()) {
          const std::string prefix =
              "planner.shard" + std::to_string(st.shard);
          m.gauge_set(prefix + ".solve_ms", st.solve_ms);
          m.counter_set(prefix + ".solves", st.solves);
        }
      }
    }
    m.gauge_set("run.read_latency_p95_s", r.qos.read_latency_p95_s);
    m.gauge_set("run.battery_equivalent_cycles",
                r.battery.equivalent_cycles);
    // Admission fast-path telemetry: emitted only for open-system
    // runs, so closed-loop metric dumps are unchanged byte for byte.
    if (admission_) {
      m.counter_set("admission.arrivals", r.qos.arrivals_generated);
      m.counter_set("admission.admitted", r.qos.arrivals_admitted);
      m.counter_set("admission.rejected", r.qos.arrivals_rejected);
      m.counter_set("admission.overflow_admits",
                    r.qos.arrivals_overflow_admits);
      m.counter_set("admission.decisions", r.qos.admission_decisions);
      m.counter_set("admission.deferrals", r.qos.admission_deferrals);
      m.gauge_set("admission.decision_wall_ms",
                  r.scheduler.admission_decision_wall_ms);
      m.gauge_set("admission.decision_p50_us",
                  r.scheduler.admission_decision_p50_us);
      m.gauge_set("admission.decision_p99_us",
                  r.scheduler.admission_decision_p99_us);
    }
  }
  return std::move(artifacts_);
}

RunArtifacts SimulationEngine::run() {
  const SlotIndex n = total_slots();
  for (SlotIndex slot = 0; slot < n; ++slot) run_slot(slot);
  return finalize();
}

RunArtifacts run_experiment(const ExperimentConfig& config,
                            std::shared_ptr<obs::Recorder> recorder) {
  SimulationEngine engine(config, std::move(recorder));
  return engine.run();
}

}  // namespace gm::core
