#pragma once
// Simulation engine: glues workload, cluster, energy supply, battery,
// policy and power manager into one slot-driven run and produces a
// metrics::RunResult. Two fidelities share the same energy accounting;
// event-level additionally routes every foreground request through the
// disk model on the DES kernel for QoS metrics.
//
// Per-slot sequence (DESIGN.md §3):
//   1. admit released tasks, sort pending by deadline
//   2. policy.decide() on forecasts + pool
//   3. power manager applies the activation target (coverage,
//      hysteresis, transition energy)
//   4. tasks are assigned to active replica nodes (urgent first);
//      migrations of displaced tasks are charged
//   5. demand is integrated, the balance green-direct → battery →
//      grid is settled, the ledger row is appended
//   6. (event mode) requests inside the slot are routed

#include <memory>
#include <vector>

#include "core/admission.hpp"
#include "core/config.hpp"
#include "core/policy.hpp"
#include "core/power_manager.hpp"
#include "workload/arrival_stream.hpp"
#include "energy/battery.hpp"
#include "energy/forecast.hpp"
#include "energy/grid.hpp"
#include "energy/ledger.hpp"
#include "metrics/report.hpp"
#include "obs/recorder.hpp"
#include "sim/simulator.hpp"
#include "storage/cluster.hpp"
#include "storage/router.hpp"
#include "workload/generator.hpp"

namespace gm::core {

struct RunArtifacts {
  metrics::RunResult result;
  energy::EnergyLedger ledger;                ///< per-slot series
  std::vector<int> active_nodes_per_slot;
  std::vector<double> task_util_per_slot;
  std::vector<double> fg_util_per_slot;
};

class SimulationEngine {
 public:
  /// `recorder` is the optional observability handle (trace, metrics,
  /// phase profile — see obs/recorder.hpp). The default null recorder
  /// keeps the hot path free of instrumentation cost; a non-null one
  /// gets the run manifest written at construction and per-slot
  /// telemetry during the run. Observability never alters simulation
  /// behavior: a run with a recorder is bit-identical to one without.
  explicit SimulationEngine(const ExperimentConfig& config,
                            std::shared_ptr<obs::Recorder> recorder =
                                nullptr);

  /// Runs to completion (workload + drain) and returns the artifacts.
  RunArtifacts run();

  // --- stepwise API (federation drives sites in lockstep) -----------
  /// Total slots this run covers (workload + fixed drain).
  SlotIndex total_slots() const;
  /// Executes one slot; must be called with consecutive indices
  /// starting at 0. Equivalent to
  /// `act(slot, policy.decide(observe(slot)))` with the internal
  /// policy — bit-for-bit (the golden corpus pins this).
  void run_slot(SlotIndex slot);
  /// Assembles the result after the last slot. Call exactly once.
  RunArtifacts finalize();

  // --- step/observe/act interface (RL-style environment framing) ----
  /// Advances the environment into `slot` — applies due failures and
  /// recoveries, admits released tasks, re-sorts the pending pool —
  /// and returns the observation a scheduling agent decides on. Each
  /// observe() must be paired with one act() on the same slot before
  /// the next slot is observed. The returned reference is a rolling
  /// buffer, valid until the next observe()/run_slot().
  const SlotContext& observe(SlotIndex slot);
  /// Applies a decision to the slot prepared by observe(): power
  /// transitions, task assignment and execution (DVFS/MAID), request
  /// routing, and the green→battery→grid energy settlement. External
  /// agents (e.g. an RL driver) call observe()/act() directly with
  /// their own SlotDecision; run() and run_slot() stay the legacy
  /// slot loop on top of the same two steps.
  void act(SlotIndex slot, const SlotDecision& decision);
  /// The cluster facts handed to the internal policy's initialize() —
  /// an external agent driving observe()/act() initializes its own
  /// policy with the same facts to reproduce run() exactly.
  const ClusterFacts& facts() const { return facts_; }

  /// Forecast green power (W) and foreground utilization for a slot —
  /// the signals a federation broker routes tasks by.
  Watts slot_green_w(SlotIndex slot) const;
  double slot_fg_util(SlotIndex slot) const;
  std::size_t pending_count() const { return pending_.size(); }
  /// Remaining work (seconds) across pending, non-running tasks.
  Seconds pending_work_s() const;
  /// The coverage floor (minimum active nodes) of this site.
  int coverage_floor() const { return power_.min_feasible(); }

  /// Removes and returns pending tasks that are safe to move to
  /// another site: not running, not urgent, with at least
  /// `min_slack_s` of slack at time `now`. At most `max_tasks`.
  std::vector<PendingTask> extract_transferable_tasks(
      SimTime now, Seconds min_slack_s, std::size_t max_tasks);
  /// Admits a task arriving from another site. The caller must remap
  /// `task.group` into this site's group universe.
  void inject_task(const storage::BackgroundTask& task,
                   Seconds remaining_s);

  /// The workload in use (preset or generated from config.workload),
  /// exposed so callers can inspect or archive the exact trace.
  const workload::Workload& workload() const { return *workload_; }
  const storage::Cluster& cluster() const { return cluster_; }
  const energy::PowerSource& supply() const { return *supply_; }
  obs::Recorder* recorder() const { return recorder_.get(); }

  // --- audit surface (gm::audit, valid after finalize() too) --------
  /// The validated config the run executed with (failure events
  /// sorted, unlike the constructor argument).
  const ExperimentConfig& config() const { return config_; }
  /// Admission controller, or nullptr in closed-loop runs — exposed
  /// for the throughput bench and the admission tests.
  const AdmissionController* admission() const {
    return admission_.get();
  }
  /// Arrivals the stream has emitted so far (open-system mode only).
  std::uint64_t arrivals_generated() const { return arrivals_generated_; }
  /// Battery with its internal loss/throughput counters.
  const energy::Battery& battery() const { return battery_; }
  /// Grid meter: total import, carbon, cost.
  const energy::GridMeter& grid_meter() const { return grid_; }

 private:
  struct TaskState {
    PendingTask pending;
    bool completed = false;
    SimTime completion = 0;
  };

  void admit_released_tasks(SimTime now);
  /// Open-system arrival intake at a slot boundary: advance the
  /// headroom ledger, reconcile it against the live pool, re-offer
  /// parked tasks, pull the stream up to `start`, and decide each
  /// arrival (admit into pending_ / park / book a rejection). Only
  /// called when arrivals.enabled.
  void intake_arrivals(SlotIndex slot, SimTime start);
  /// Emits a task_admit trace event (caller checks trace_events()).
  void trace_task_admit(const storage::BackgroundTask& task, SimTime now,
                        const char* source);
  /// Applies node failures/recoveries due by `now` (configured events
  /// merged with scenario-generated outages); failed nodes spawn one
  /// repair task per placement group they hosted.
  void process_failures(SimTime now, SlotIndex slot);
  /// Fills and returns ctx_ (a per-engine rolling buffer — the
  /// forecast vectors and pending snapshot reuse their allocations
  /// across slots). The reference is valid until the next call.
  const SlotContext& make_context(SlotIndex slot, SimTime start,
                                  SimTime end);
  /// Sanitizes the policy's run set: dedups, forces urgent tasks, and
  /// assigns tasks to active replica nodes. Returns indices into
  /// pending_ of tasks that actually run, and accumulates migration
  /// energy and counters.
  std::vector<std::size_t> assign_tasks(const SlotDecision& decision,
                                        SimTime now, Joules& migration_j);
  void route_requests(SlotIndex slot, SimTime start, SimTime end);

  /// True when discrete trace events (task admit/complete, node
  /// fail/repair) should be emitted — recorder present and tracing.
  bool trace_events() const {
    return recorder_ && recorder_->tracing();
  }

  ExperimentConfig config_;
  std::shared_ptr<obs::Recorder> recorder_;
  storage::Cluster cluster_;
  std::shared_ptr<const workload::Workload> workload_;
  std::shared_ptr<const energy::PowerSource> supply_;
  std::unique_ptr<energy::ForecastProvider> forecast_;
  energy::Battery battery_;
  /// config_.grid plus scenario-generated spike events — what the
  /// meter charges and the planner's carbon forecast reads.
  energy::GridConfig effective_grid_;
  energy::GridMeter grid_;
  std::unique_ptr<SchedulerPolicy> policy_;
  PowerManager power_;
  storage::RequestRouter router_;
  sim::Simulator simulator_;
  ClusterFacts facts_;
  SlotGrid slots_;
  /// Rolling per-slot observation buffer (see make_context).
  SlotContext ctx_;

  // Pending pool and task bookkeeping.
  std::vector<PendingTask> pending_;
  /// Length of the deadline-sorted prefix of pending_. The slot loop
  /// keeps the whole pool sorted, so newcomers are admitted with a
  /// tail-sort + inplace_merge instead of a full re-sort; federation
  /// injections append past the prefix, and mid-pool extraction
  /// resets it (next slot falls back to a full sort).
  std::size_t pending_sorted_ = 0;
  std::size_t next_task_index_ = 0;     ///< into workload_.tasks
  std::size_t next_request_index_ = 0;  ///< into workload_.requests

  // Per-slot foreground utilization (node-equivalents), precomputed.
  std::vector<double> fg_util_;
  // Per-slot green supply energy, precomputed once (the perfect
  // forecaster and the balance loop both read it; the noisy forecaster
  // still goes through forecast_).
  std::vector<Joules> slot_green_j_;

  // Outcome accumulators.
  std::uint64_t tasks_completed_ = 0;
  std::uint64_t deadline_misses_ = 0;
  double sojourn_hours_sum_ = 0.0;
  std::uint64_t forced_urgent_ = 0;
  std::uint64_t assignment_failures_ = 0;
  std::uint64_t migrations_ = 0;
  std::uint64_t power_ons_ = 0;
  std::uint64_t power_offs_ = 0;
  std::uint64_t nodes_failed_ = 0;
  std::uint64_t tasks_admitted_ = 0;
  bool finalized_ = false;
  SlotIndex next_slot_ = 0;
  /// observe() ran for next_slot_ but act() has not consumed it yet.
  bool observed_ = false;
  RunArtifacts artifacts_;
  /// config_.node_failures merged with scenario-generated outages,
  /// sorted by fail_at; the list process_failures() consumes.
  std::vector<NodeFailureEvent> failure_events_;
  std::size_t next_failure_index_ = 0;
  // Previous-slot snapshots for per-slot deltas in the trace.
  std::uint64_t last_forced_wakeups_ = 0;
  std::uint64_t last_nodes_failed_ = 0;
  std::vector<NodeFailureEvent> pending_recoveries_;
  storage::TaskId next_repair_task_id_ = 2'000'000'000ULL;
  sim::TimeWeighted active_nodes_tw_;

  // Open-system mode (arrivals.enabled); all null/empty otherwise.
  std::unique_ptr<workload::ArrivalStream> arrival_stream_;
  std::unique_ptr<AdmissionController> admission_;
  /// Tasks the controller parked (defer) awaiting a wider ledger view.
  std::vector<storage::BackgroundTask> deferred_arrivals_;
  /// Per-slot offer list (re-offered parked tasks + fresh arrivals);
  /// reused across slots.
  std::vector<storage::BackgroundTask> arrival_buf_;
  SimTime arrivals_covered_ = 0;  ///< stream pulled up to this time
  std::uint64_t arrivals_generated_ = 0;
  std::uint64_t arrivals_new_last_slot_ = 0;
};

/// Convenience wrapper: construct, run, return artifacts.
RunArtifacts run_experiment(const ExperimentConfig& config,
                            std::shared_ptr<obs::Recorder> recorder =
                                nullptr);

}  // namespace gm::core
