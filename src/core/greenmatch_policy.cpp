#include <algorithm>
#include <bit>
#include <chrono>
#include <climits>
#include <cmath>
#include <unordered_map>

#include "core/mincost_flow.hpp"
#include "core/policies.hpp"
#include "core/shard.hpp"
#include "obs/recorder.hpp"
#include "util/assert.hpp"
#include "util/math_utils.hpp"
#include "util/thread_pool.hpp"

namespace gm::core {
namespace {

/// Cost of covering one task slot-unit from the grid inside the
/// horizon, and of deferring it past the horizon (unknown greenness:
/// cheaper than certain brown, dearer than certain green). The |j|
/// earliness tiebreak rides on top, so tiers must dominate it.
constexpr long long kBrownUnitCost = 1'000'000;
constexpr long long kBeyondHorizonCost = 400'000;
/// Tiny per-boundary cost on stored energy: prefers direct green over
/// battery round-trips of equal conversion cost, and earlier
/// discharge over hoarding.
constexpr long long kCarryCost = 1;

/// Marginal energy of one task running for one slot: its dynamic power
/// plus an amortized share of the idle floor of the node hosting it.
Joules unit_energy_for(const ClusterFacts& facts,
                       const std::vector<PendingTask>& pending) {
  double mean_util = 0.30;
  if (!pending.empty()) {
    double sum = 0.0;
    for (const auto& p : pending) sum += p.task.utilization;
    mean_util = sum / static_cast<double>(pending.size());
  }
  const Watts spread = facts.node_peak_w - facts.node_idle_floor_w;
  const double amortized_idle =
      facts.task_slots_per_node > 0
          ? facts.node_idle_floor_w /
                static_cast<double>(facts.task_slots_per_node)
          : 0.0;
  return (spread * mean_util + amortized_idle) * facts.slot_length_s;
}

/// Slot-units a task still needs.
long long units_needed(const PendingTask& p, Seconds slot_len) {
  return std::max<long long>(
      1, static_cast<long long>(std::ceil(p.remaining_s / slot_len)));
}

/// Latest horizon slot (exclusive) a task may still use. One slot of
/// safety margin is reserved so that replica-locality or capacity
/// conflicts in the final slot (which the planner's global capacity
/// view cannot see) do not turn directly into deadline misses.
std::size_t feasible_horizon(const PendingTask& p, SimTime start,
                             Seconds slot_len, std::size_t horizon) {
  if (p.task.deadline <= start) return 1;  // overdue: run immediately
  const auto slots_left = static_cast<std::size_t>(std::ceil(
      static_cast<double>(p.task.deadline - start) / slot_len));
  const std::size_t margin = slots_left > 2 ? slots_left - 1 : slots_left;
  return std::min(horizon, std::max<std::size_t>(1, margin));
}

/// Class-signature components small enough to pack into one 64-bit
/// lookup key (24 + 24 + 16 bits). A pathological task outside these
/// ranges simply becomes its own singleton class — grouping is an
/// optimization, never a requirement.
constexpr long long kMaxPackedCap = 1ll << 24;
constexpr std::size_t kMaxPackedHorizon = 1ull << 16;

unsigned long long pack_signature(long long units, std::size_t jmax,
                                  long long beyond_cap) {
  return (static_cast<unsigned long long>(units) << 40) |
         (static_cast<unsigned long long>(beyond_cap) << 16) |
         static_cast<unsigned long long>(jmax);
}

}  // namespace

GreenMatchPolicy::GreenMatchPolicy(int horizon_slots, bool greedy,
                                   bool replan_every_slot,
                                   bool battery_aware, bool carbon_aware)
    : horizon_(horizon_slots),
      greedy_(greedy),
      replan_every_slot_(replan_every_slot),
      battery_aware_(battery_aware),
      carbon_aware_(carbon_aware) {
  GM_CHECK(horizon_slots >= 1, "horizon must be >= 1");
}

// Out of line for the forward-declared ThreadPool member.
GreenMatchPolicy::~GreenMatchPolicy() = default;

void GreenMatchPolicy::set_solver(MinCostFlow::SolverKind kind) {
  flow_.set_solver(kind);
  // Johnson warm potentials belong to the SSP path; drop any retained
  // ones so a later switch back starts from a clean cold solve.
  have_potentials_ = false;
  // Sub-planners inherit the solver at creation; a later switch must
  // rebuild them (their retained solver state is now the wrong kind).
  shard_planners_.clear();
}

void GreenMatchPolicy::set_shards(int shards) {
  GM_CHECK(shards >= 1, "scheduler.shards must be >= 1");
  shards_ = shards;
  shard_planners_.clear();
  pool_.reset();
}

void GreenMatchPolicy::ensure_shard_planners() {
  if (static_cast<int>(shard_planners_.size()) != shards_) {
    shard_planners_.clear();
    shard_planners_.reserve(static_cast<std::size_t>(shards_));
    for (int s = 0; s < shards_; ++s) {
      auto sub = std::make_unique<GreenMatchPolicy>(
          horizon_, /*greedy=*/false, replan_every_slot_, battery_aware_,
          carbon_aware_);
      sub->aggregate_ = aggregate_;
      sub->shard_id_ = s;
      if (flow_.solver() == MinCostFlow::SolverKind::kCostScaling)
        sub->flow_.set_solver(MinCostFlow::SolverKind::kCostScaling);
      shard_planners_.push_back(std::move(sub));
    }
  }
  if (!pool_)
    pool_ = std::make_unique<ThreadPool>(
        std::min<std::size_t>(static_cast<std::size_t>(shards_),
                              std::max(1u, std::thread::hardware_concurrency())));
}

GreenMatchPolicy::SolverTotals GreenMatchPolicy::solver_totals() const {
  SolverTotals t = solver_totals_;
  for (const auto& sub : shard_planners_) {
    const SolverTotals& s = sub->solver_totals_;
    t.solves += s.solves;
    t.dijkstra_runs += s.dijkstra_runs;
    t.dijkstra_pops += s.dijkstra_pops;
    t.dijkstra_relaxations += s.dijkstra_relaxations;
    t.augmenting_paths += s.augmenting_paths;
    t.arena_bytes_peak = std::max(t.arena_bytes_peak, s.arena_bytes_peak);
    t.cs_phases += s.cs_phases;
    t.cs_pushes += s.cs_pushes;
    t.cs_relabels += s.cs_relabels;
    t.cs_price_refinements += s.cs_price_refinements;
    t.cs_global_updates += s.cs_global_updates;
    t.incremental_accepts += s.incremental_accepts;
    t.incremental_rebuilds += s.incremental_rebuilds;
  }
  return t;
}

std::vector<GreenMatchPolicy::ShardStats> GreenMatchPolicy::shard_stats()
    const {
  std::vector<ShardStats> out;
  out.reserve(shard_planners_.size());
  for (std::size_t s = 0; s < shard_planners_.size(); ++s) {
    const GreenMatchPolicy& sub = *shard_planners_[s];
    ShardStats st;
    st.shard = static_cast<int>(s);
    st.solve_ms = sub.solve_ms_total_;
    st.solves = sub.solver_totals_.solves;
    st.last_tasks = sub.plan_stats_.tasks;
    st.last_classes = sub.plan_stats_.classes;
    out.push_back(st);
  }
  return out;
}

double GreenMatchPolicy::horizon_carbon_mean(const SlotContext& ctx) const {
  if (!carbon_aware_ || ctx.grid_carbon_g_per_kwh.empty()) return 0.0;
  double sum = 0.0;
  for (double g : ctx.grid_carbon_g_per_kwh) sum += g;
  return sum / static_cast<double>(ctx.grid_carbon_g_per_kwh.size());
}

long long GreenMatchPolicy::brown_cost_for_slot(const SlotContext& ctx,
                                                std::size_t j,
                                                double carbon_mean) const {
  if (!carbon_aware_ || ctx.grid_carbon_g_per_kwh.empty())
    return kBrownUnitCost;
  // Scale the brown penalty by this slot's carbon intensity relative
  // to the horizon mean, so clean-grid hours become relatively cheap.
  const double g = j < ctx.grid_carbon_g_per_kwh.size()
                       ? ctx.grid_carbon_g_per_kwh[j]
                       : carbon_mean;
  if (carbon_mean <= 0.0) return kBrownUnitCost;
  return static_cast<long long>(
      std::llround(kBrownUnitCost * clamp(g / carbon_mean, 0.2, 5.0)));
}

Watts GreenMatchPolicy::committed_power_w(const SlotContext& ctx,
                                          std::size_t j) const {
  const Watts spread = facts_.node_peak_w - facts_.node_idle_floor_w;
  const double fg =
      j < ctx.foreground_util_forecast.size()
          ? ctx.foreground_util_forecast[j]
          : (ctx.foreground_util_forecast.empty()
                 ? 0.0
                 : ctx.foreground_util_forecast.back());
  const int fg_nodes = nodes_for_load(fg, 0);
  return fg_nodes * facts_.node_idle_floor_w + spread * fg;
}

std::vector<long long> GreenMatchPolicy::green_units(
    const SlotContext& ctx, Joules unit_energy_j) const {
  const auto horizon = static_cast<std::size_t>(
      std::min<std::size_t>(horizon_, ctx.green_forecast_w.size()));
  std::vector<long long> units(horizon, 0);
  for (std::size_t j = 0; j < horizon; ++j) {
    const Joules surplus_j_energy =
        std::max(0.0, (ctx.green_forecast_w[j] - committed_power_w(ctx, j))) *
        facts_.slot_length_s;
    units[j] = static_cast<long long>(surplus_j_energy / unit_energy_j);
  }
  return units;
}

std::vector<Joules> GreenMatchPolicy::project_battery(
    const SlotContext& ctx, std::size_t horizon) const {
  // Battery trajectory if only the committed (foreground + coverage
  // floor) load ran: foreground has priority on stored energy, so the
  // planner may only count on what this projection leaves behind.
  std::vector<Joules> proj(horizon + 1, 0.0);
  proj[0] = ctx.battery_stored_j;
  const double slot_len = facts_.slot_length_s;
  const double sigma = clamp(ctx.battery_charge_efficiency, 0.05, 1.0);
  for (std::size_t j = 0; j < horizon; ++j) {
    const Joules green_e = ctx.green_forecast_w[j] * slot_len;
    const Joules committed_e = committed_power_w(ctx, j) * slot_len;
    Joules stored = proj[j];
    if (green_e >= committed_e) {
      const Joules drawn = std::min(
          {green_e - committed_e, ctx.battery_max_charge_w * slot_len,
           (ctx.battery_usable_capacity_j - stored) / sigma});
      stored += std::max(0.0, drawn) * sigma;
    } else {
      const Joules need = committed_e - green_e;
      stored -= std::min(
          {need, ctx.battery_max_discharge_w * slot_len, stored});
    }
    proj[j + 1] = stored;
  }
  return proj;
}

bool GreenMatchPolicy::build_warm_potentials(const SlotContext& ctx,
                                             int n_classes, int h,
                                             int slot_base, int g_base,
                                             int beyond, int sink) {
  if (!have_potentials_ || h == 0 || prev_slot_pot_.empty()) return false;
  const SlotIndex delta = ctx.slot - potentials_slot_;
  if (delta < 0) return false;  // time moved backwards: state is stale
  const int prev_h = static_cast<int>(prev_slot_pot_.size());

  // The previous solve's potentials, shifted by the elapsed slots
  // (new slot j was old slot j+delta) and clamped per edge type so
  // the non-negative reduced-cost invariant holds by construction:
  //   source → class (cost 0):   π[src] = π[class] = P
  //   class → slot_j (cost j):   π[slot_j] ≤ P + j
  //   slot_j → G_j (cost 0):     π[G_j] ≤ π[slot_j]
  //   class → beyond (cost B):   π[beyond] ≤ P + B
  //   {G_j, beyond, slot_j+brown_j} → sink: π[sink] ≤ all of them
  // The solver re-validates in O(E) and falls back to the cold start
  // if this construction and the real network ever disagree.
  warm_scratch_.assign(static_cast<std::size_t>(sink) + 1, 0);
  const long long P = prev_class_pot_;
  warm_scratch_[0] = P;
  for (int c = 0; c < n_classes; ++c) warm_scratch_[c + 1] = P;
  long long min_g = LLONG_MAX / 4;
  for (int j = 0; j < h; ++j) {
    const int idx =
        std::min(j + static_cast<int>(delta), prev_h - 1);
    const long long ps =
        std::min(prev_slot_pot_[idx], P + static_cast<long long>(j));
    const long long pg = std::min(prev_g_pot_[idx], ps);
    warm_scratch_[static_cast<std::size_t>(slot_base) + j] = ps;
    warm_scratch_[static_cast<std::size_t>(g_base) + j] = pg;
    min_g = std::min(min_g, pg);
  }
  const long long pb =
      std::min(prev_beyond_pot_, P + kBeyondHorizonCost);
  warm_scratch_[static_cast<std::size_t>(beyond)] = pb;
  warm_scratch_[static_cast<std::size_t>(sink)] =
      std::min({prev_sink_pot_, pb, min_g});
  return true;
}

void GreenMatchPolicy::store_potentials(const SlotContext& ctx, int h,
                                        int slot_base, int g_base,
                                        int beyond, int sink) {
  const auto& pot = flow_.potentials();
  if (static_cast<int>(pot.size()) != sink + 1 || h == 0) {
    have_potentials_ = false;
    return;
  }
  prev_slot_pot_.assign(pot.begin() + slot_base,
                        pot.begin() + slot_base + h);
  prev_g_pot_.assign(pot.begin() + g_base, pot.begin() + g_base + h);
  prev_beyond_pot_ = pot[static_cast<std::size_t>(beyond)];
  prev_sink_pot_ = pot[static_cast<std::size_t>(sink)];
  // One shared class-side potential: the min over source and class
  // nodes is the largest value that keeps every source→class reduced
  // cost non-negative next plan (class membership will have changed).
  long long pc = LLONG_MAX / 4;
  for (int v = 0; v < slot_base; ++v)
    pc = std::min(pc, pot[static_cast<std::size_t>(v)]);
  prev_class_pot_ = pc;
  potentials_slot_ = ctx.slot;
  have_potentials_ = true;
}

// The matching network (battery-aware form). Flow goes class → slot →
// supply, where a *class* is the set of pending tasks sharing one
// planner signature (units needed, feasible horizon, beyond-horizon
// capacity) — such tasks are interchangeable to the matcher, so a
// class node with m members carries their combined capacity and the
// solved flow is dealt back to members afterwards (round-robin in
// deadline order; per-slot class flow ≤ m, so members never repeat a
// slot and loads differ by at most one unit). With aggregation
// disabled every task is its own singleton class, which reproduces
// the historical one-node-per-task network edge for edge.
//
// The battery is a time-expanded chain of boundary nodes so a unit
// consumed in slot j can be green that was produced (and stored) in
// any earlier slot k, paying the storage conversion penalty once:
//
//   S → class_c                (members × units slot-units)
//   class_c → slot_j           (cap m_c, cost j: earliness tiebreak)
//   class_c → beyond           (deadline past horizon: deferral,
//                               cap m_c × per-member beyond slots)
//   slot_j → G_j               (direct green use at j)
//   slot_j → B_j               (battery discharge at j, rate-capped)
//   B_j → B_{j-1}              (carry stored energy back to its origin;
//                               cap = usable capacity, tiny cost)
//   B_{k+1} → G_k              (green of slot k charged in, rate-capped,
//                               cost = conversion-loss penalty)
//   B_0 → sink                 (initial state of charge)
//   G_j → sink                 (green production of slot j)
//   slot_j → sink              (grid, cost kBrownUnitCost)
SlotDecision GreenMatchPolicy::plan_flow(const SlotContext& ctx) {
  GM_OBS_SCOPE("policy.plan_flow");
  const auto t0 = std::chrono::steady_clock::now();
  const auto horizon = static_cast<std::size_t>(
      std::min<std::size_t>(horizon_, ctx.green_forecast_w.size()));
  const auto n_tasks = ctx.pending.size();
  const int h = static_cast<int>(horizon);

  const Joules unit_energy = unit_energy_for(facts_, ctx.pending);
  const auto green = green_units(ctx, unit_energy);
  const double carbon_mean = horizon_carbon_mean(ctx);

  const bool battery = battery_aware_ &&
                       ctx.battery_usable_capacity_j > unit_energy;

  const SimTime horizon_end =
      ctx.start + static_cast<SimTime>(horizon * facts_.slot_length_s);

  // Group the pending pool (deadline-sorted) into classes; first
  // occurrence fixes class order, so singleton classes reproduce the
  // per-task build exactly.
  classes_.clear();
  std::unordered_map<unsigned long long, int> lookup;
  if (aggregate_) lookup.reserve(n_tasks * 2);
  long long total_units = 0;
  for (std::size_t i = 0; i < n_tasks; ++i) {
    const auto& p = ctx.pending[i];
    const long long units = units_needed(p, facts_.slot_length_s);
    total_units += units;
    const std::size_t jmax =
        feasible_horizon(p, ctx.start, facts_.slot_length_s, horizon);
    long long beyond_cap = 0;
    if (p.task.deadline > horizon_end) {
      const auto beyond_slots = static_cast<long long>(
          std::floor(static_cast<double>(p.task.deadline - horizon_end) /
                     facts_.slot_length_s));
      if (beyond_slots > 0) beyond_cap = std::min(units, beyond_slots);
    }
    int cls;
    if (aggregate_ && units < kMaxPackedCap &&
        beyond_cap < kMaxPackedCap && jmax < kMaxPackedHorizon) {
      const auto [it, inserted] = lookup.try_emplace(
          pack_signature(units, jmax, beyond_cap),
          static_cast<int>(classes_.size()));
      if (inserted)
        classes_.push_back(TaskClass{units, jmax, beyond_cap, -1, -1, {}});
      cls = it->second;
    } else {
      cls = static_cast<int>(classes_.size());
      classes_.push_back(TaskClass{units, jmax, beyond_cap, -1, -1, {}});
    }
    classes_[static_cast<std::size_t>(cls)].members.push_back(
        static_cast<std::uint32_t>(i));
  }
  const int n_classes = static_cast<int>(classes_.size());
  const bool cost_scaling =
      flow_.solver() == MinCostFlow::SolverKind::kCostScaling;

  // Node layout. Under the cost-scaling solver the class range is
  // padded to a stable bucket (min 64, then powers of two): the
  // slot/green/battery/sink node indices then survive the slot-to-slot
  // jitter in the number of distinct signatures, which is what lets
  // the solver's incremental patch match arcs by endpoint instead of
  // rebuilding cold every slot. Padded nodes carry no arcs, and the
  // default SSP network is byte-identical to previous releases.
  const int class_space =
      cost_scaling
          ? static_cast<int>(std::bit_ceil(
                std::max<unsigned>(64u, static_cast<unsigned>(n_classes))))
          : n_classes;
  const int source = 0;
  const int slot_base = class_space + 1;
  const int g_base = slot_base + h;
  const int b_base = g_base + h;            // B_0 .. B_h (h+1 nodes)
  const int beyond = b_base + (battery ? h + 1 : 0);
  const int sink = beyond + 1;
  flow_.reset(sink + 1);
  MinCostFlow& flow = flow_;

  const long long cap_per_slot =
      static_cast<long long>(facts_.total_nodes) *
      facts_.task_slots_per_node;

  for (int c = 0; c < n_classes; ++c) {
    auto& tc = classes_[static_cast<std::size_t>(c)];
    const auto m = static_cast<long long>(tc.members.size());
    flow.add_edge(source, c + 1, m * tc.units, 0);
    for (std::size_t j = 0; j < tc.jmax; ++j) {
      const int edge =
          flow.add_edge(c + 1, slot_base + static_cast<int>(j), m,
                        static_cast<long long>(j));
      if (j == 0) tc.slot_edge0 = edge;  // ids contiguous per class
    }
    if (tc.beyond_cap > 0)
      tc.beyond_edge = flow.add_edge(c + 1, beyond, m * tc.beyond_cap,
                                     kBeyondHorizonCost);
  }

  // Supply edges come in threes per slot (direct-green, green-supply,
  // grid); the first id anchors provenance lookups of per-slot green
  // flow (slot_j → G_j edge = supply_edge0 + 3j).
  int supply_edge0 = -1;
  for (int j = 0; j < h; ++j) {
    // Direct green at j, then grid.
    const int e =
        flow.add_edge(slot_base + j, g_base + j, cap_per_slot, 0);
    if (j == 0) supply_edge0 = e;
    flow.add_edge(g_base + j, sink, std::min(green[j], cap_per_slot), 0);
    flow.add_edge(slot_base + j, sink, cap_per_slot,
                  brown_cost_for_slot(ctx, static_cast<std::size_t>(j),
                                      carbon_mean));
  }

  if (battery) {
    const double slot_len = facts_.slot_length_s;
    const auto to_units = [&](Joules e) {
      return static_cast<long long>(e / unit_energy);
    };
    const long long discharge_units =
        to_units(ctx.battery_max_discharge_w * slot_len);
    const long long charge_units =
        to_units(ctx.battery_max_charge_w * slot_len);
    const auto projected = project_battery(ctx, horizon);
    // slack[j]: stored energy at boundary j that the fg-priority
    // program never consumes afterwards — safe for tasks to take.
    std::vector<Joules> slack(projected.size());
    Joules running_min = projected.back();
    for (std::size_t j = projected.size(); j-- > 0;) {
      running_min = std::min(running_min, projected[j]);
      slack[j] = running_min;
    }
    const long long initial_units = to_units(slack[0]);
    const double sigma = clamp(ctx.battery_charge_efficiency, 0.05, 1.0);
    const auto store_penalty = static_cast<long long>(
        std::llround((1.0 / sigma - 1.0) * kBrownUnitCost));

    for (int j = 0; j < h; ++j) {
      if (discharge_units > 0)
        flow.add_edge(slot_base + j, b_base + j,
                      std::min(discharge_units, cap_per_slot), 0);
      if (charge_units > 0)
        flow.add_edge(b_base + j + 1, g_base + j, charge_units,
                      store_penalty);
    }
    // Carry capacity across a boundary: room the fg program leaves for
    // task-purpose charge (headroom) plus stored energy the fg program
    // never touches again (slack).
    for (int j = h; j >= 1; --j) {
      const auto idx = static_cast<std::size_t>(j);
      const Joules headroom = std::max(
          0.0, ctx.battery_usable_capacity_j - projected[idx]);
      flow.add_edge(b_base + j, b_base + j - 1,
                    to_units(headroom + slack[idx]), kCarryCost);
    }
    if (initial_units > 0)
      flow.add_edge(b_base + 0, sink, initial_units, 0);
  }

  flow.add_edge(beyond, sink, total_units, 0);

  // The battery chain's capacities depend on the projected state of
  // charge, which the shifted-potential construction cannot bound, so
  // warm starts are limited to the (default) supply-only network. The
  // cost-scaling solver replaces warm potentials wholesale with
  // incremental re-optimization (it retains prices *and* flow inside
  // the solver), so the Johnson-potential path is skipped entirely.
  MinCostFlow::Result solved;
  bool warm = false;
  if (!battery && !cost_scaling &&
      build_warm_potentials(ctx, n_classes, h, slot_base, g_base,
                            beyond, sink)) {
    const auto accepts_before = flow.warm_accepts();
    solved = flow.solve(source, sink, total_units, warm_scratch_);
    warm = flow.warm_accepts() > accepts_before;
  } else {
    solved = flow.solve(source, sink, total_units);
  }
  if (battery || cost_scaling)
    have_potentials_ = false;
  else
    store_potentials(ctx, h, slot_base, g_base, beyond, sink);

  // Solver telemetry: stamp what the solver cannot know, accumulate
  // lifetime totals for the run report.
  {
    MinCostFlow::SolveStats& st = flow_.mutable_last_stats();
    st.classes = static_cast<std::uint64_t>(n_classes);
    ++solver_totals_.solves;
    solver_totals_.dijkstra_runs += st.dijkstra_runs;
    solver_totals_.dijkstra_pops += st.dijkstra_pops;
    solver_totals_.dijkstra_relaxations += st.dijkstra_relaxations;
    solver_totals_.augmenting_paths += st.augmenting_paths;
    solver_totals_.cs_phases += st.cs_phases;
    solver_totals_.cs_pushes += st.cs_pushes;
    solver_totals_.cs_relabels += st.cs_relabels;
    solver_totals_.cs_price_refinements += st.cs_price_refinements;
    solver_totals_.cs_global_updates += st.cs_global_updates;
    solver_totals_.incremental_accepts += st.incremental_accepts;
    solver_totals_.incremental_rebuilds += st.incremental_rebuilds;
    solver_totals_.arena_bytes_peak =
        std::max(solver_totals_.arena_bytes_peak, st.arena_bytes);
  }

  // Deal each class's slot-0 flow to its first members in deadline
  // order, then emit the run set in pending order.
  SlotDecision decision;
  run_mask_.assign(n_tasks, 0);
  for (const auto& tc : classes_) {
    if (tc.slot_edge0 < 0) continue;
    const long long f0 = flow.flow_on(tc.slot_edge0);
    for (long long t = 0; t < f0; ++t)
      run_mask_[tc.members[static_cast<std::size_t>(t)]] = 1;
  }
  double util = ctx.foreground_util;
  int count = 0;
  for (std::size_t i = 0; i < n_tasks; ++i) {
    if (run_mask_[i]) {
      decision.run_tasks.push_back(ctx.pending[i].task.id);
      util += ctx.pending[i].task.utilization;
      ++count;
    }
  }
  decision.target_active_nodes = nodes_for_load(util, count);
  decision.eco_speed = green.empty() || green[0] <= 0;

  if (!replan_every_slot_) {
    plan_base_ = ctx.slot;
    plan_offsets_.clear();
    // Full-plan demux: deal each slot's class flow round-robin over
    // the members, starting where the previous slot stopped. Per-slot
    // flow ≤ m keeps the dealt members distinct, and consecutive
    // dealing bounds any member's load by ⌈flow/m⌉ ≤ units. Slot 0
    // starts at member 0, matching the run set above.
    for (const auto& tc : classes_) {
      if (tc.slot_edge0 < 0) continue;
      const std::size_t m = tc.members.size();
      std::size_t rotate = 0;
      for (std::size_t j = 0; j < tc.jmax; ++j) {
        const long long f =
            flow.flow_on(tc.slot_edge0 + static_cast<int>(j));
        for (long long t = 0; t < f; ++t) {
          const auto member =
              tc.members[(rotate + static_cast<std::size_t>(t)) % m];
          plan_offsets_[ctx.pending[member].task.id].push_back(
              static_cast<int>(j));
        }
        rotate = (rotate + static_cast<std::size_t>(f)) % m;
      }
    }
    // Tasks with no in-horizon assignment still belong to the plan
    // (deferred beyond the horizon): record them with no offsets.
    for (const auto& p : ctx.pending)
      plan_offsets_.try_emplace(p.task.id);
  }

  plan_stats_ = PlanStats{solved.flow,
                          solved.cost,
                          static_cast<int>(n_tasks),
                          n_classes,
                          sink + 1,
                          warm,
                          flow_.last_stats().incremental_accepts > 0};

  // Supply readback for the parent planner's cross-shard
  // reconciliation pass: per-slot green headroom the solve left on the
  // table (offered minus taken on the G_j → sink edge, which counts
  // battery-charge draw too) and the grid units it fell back to.
  last_plan_slot_ = ctx.slot;
  last_unit_energy_j_ = unit_energy;
  last_green_spare_w_.assign(horizon, 0.0);
  last_brown_units_.assign(horizon, 0);
  for (int j = 0; j < h; ++j) {
    const auto idx = static_cast<std::size_t>(j);
    const long long offered = std::min(green[idx], cap_per_slot);
    const long long used = flow.flow_on(supply_edge0 + 3 * j + 1);
    last_green_spare_w_[idx] =
        static_cast<double>(std::max<long long>(0, offered - used)) *
        unit_energy / facts_.slot_length_s;
    last_brown_units_[idx] = flow.flow_on(supply_edge0 + 3 * j + 2);
  }

  // Decision provenance: one record per pending task, attributing its
  // fate to the solved network. Opt-in (--provenance) because this
  // re-deals every class's flow; the demux math mirrors the
  // plan_offsets_ block above, but records only each member's *first*
  // assignment and its deal rank.
  if (obs::Recorder* rec = obs::current_recorder();
      rec && rec->provenance()) {
    std::vector<int> first_offset;
    std::vector<int> first_rank;
    for (std::size_t ci = 0; ci < classes_.size(); ++ci) {
      const auto& tc = classes_[ci];
      const std::size_t m = tc.members.size();
      first_offset.assign(m, -1);
      first_rank.assign(m, -1);
      if (tc.slot_edge0 >= 0) {
        std::size_t rotate = 0;
        for (std::size_t j = 0; j < tc.jmax; ++j) {
          const long long f =
              flow.flow_on(tc.slot_edge0 + static_cast<int>(j));
          for (long long t = 0; t < f; ++t) {
            const std::size_t mi =
                (rotate + static_cast<std::size_t>(t)) % m;
            if (first_offset[mi] < 0) {
              first_offset[mi] = static_cast<int>(j);
              first_rank[mi] = static_cast<int>(t);
            }
          }
          rotate = (rotate + static_cast<std::size_t>(f)) % m;
        }
      }
      const long long beyond_flow =
          tc.beyond_edge >= 0 ? flow.flow_on(tc.beyond_edge) : 0;
      for (std::size_t mi = 0; mi < m; ++mi) {
        const PendingTask& p = ctx.pending[tc.members[mi]];
        obs::DecisionSample d;
        d.slot = ctx.slot;
        d.t = ctx.start;
        d.policy = name();
        d.shard = shard_id_;  // -1 (flat planner) is not emitted
        d.task = p.task.id;
        d.class_id = static_cast<std::int64_t>(ci) + 1;  // node id
        d.class_size = static_cast<std::int64_t>(m);
        d.warm_solve = warm;
        d.deadline_slack = static_cast<std::int64_t>(
            std::floor(p.slack(ctx.start) / facts_.slot_length_s));
        const int j = first_offset[mi];
        if (j == 0) {
          d.action = "run";
          d.reason = (!green.empty() && green[0] > 0)
                         ? "green-at-offset"
                         : "brown-at-offset";
        } else if (j > 0) {
          d.action = "defer";
          d.reason = "capacity-or-cost";
        } else if (beyond_flow > 0) {
          d.action = "beyond";
          d.reason = "deferred-beyond-horizon";
          d.brown_cost = static_cast<double>(kBeyondHorizonCost);
        } else {
          d.action = "defer";
          d.reason = "no-feasible-slot";
        }
        if (j >= 0) {
          d.chosen_offset = j;
          d.demux_rank = first_rank[mi];
          // Marginal cost of the assigning path vs the grid
          // alternative at the same slot: class→slot_j costs j either
          // way; the green continuation is free, the grid tier pays
          // the (possibly carbon-scaled) brown penalty.
          d.green_cost = static_cast<double>(j);
          d.brown_cost =
              static_cast<double>(j) +
              static_cast<double>(brown_cost_for_slot(
                  ctx, static_cast<std::size_t>(j), carbon_mean));
          if (supply_edge0 >= 0)
            d.slot_green_flow = static_cast<double>(
                flow.flow_on(supply_edge0 + 3 * j));
        }
        rec->record_decision(d);
      }
    }
  }

  const auto t1 = std::chrono::steady_clock::now();
  solve_ms_total_ +=
      std::chrono::duration<double, std::milli>(t1 - t0).count();
  return decision;
}

SlotDecision GreenMatchPolicy::plan_greedy(const SlotContext& ctx) {
  GM_OBS_SCOPE("policy.plan_greedy");
  const auto t0 = std::chrono::steady_clock::now();
  const auto horizon = static_cast<std::size_t>(
      std::min<std::size_t>(horizon_, ctx.green_forecast_w.size()));

  const Joules unit_energy = unit_energy_for(facts_, ctx.pending);
  auto green_left = green_units(ctx, unit_energy);
  // green_left is consumed below; slot 0's original surplus decides
  // eco speed at the end.
  const long long green0 = green_left.empty() ? 0 : green_left[0];
  const long long cap_per_slot =
      static_cast<long long>(facts_.total_nodes) *
      facts_.task_slots_per_node;
  std::vector<long long> cap_left(horizon, cap_per_slot);

  SlotDecision decision;
  double util = ctx.foreground_util;
  int count = 0;

  // Deadline order (pending is pre-sorted). Each task places its
  // required units: green slots first (earliest), then deferral beyond
  // the horizon if the deadline allows, then earliest brown slots.
  // slot_taken_ is the task's chosen-slot bitmap (O(1) membership
  // instead of scanning a chosen list).
  obs::Recorder* rec = obs::current_recorder();
  const bool provenance = rec && rec->provenance();

  for (const auto& p : ctx.pending) {
    long long units = units_needed(p, facts_.slot_length_s);
    const std::size_t jmax =
        feasible_horizon(p, ctx.start, facts_.slot_length_s, horizon);

    slot_taken_.assign(horizon, 0);
    int first_offset = -1;       // provenance: earliest placed slot
    bool first_green = false;    // ... and whether pass 1 placed it
    long long beyond_units = 0;  // provenance: units deferred past h
    // Pass 1: earliest green slots.
    for (std::size_t j = 0; j < jmax && units > 0; ++j) {
      if (green_left[j] > 0 && cap_left[j] > 0) {
        slot_taken_[j] = 1;
        --green_left[j];
        --cap_left[j];
        --units;
        if (first_offset < 0) {
          first_offset = static_cast<int>(j);
          first_green = true;
        }
      }
    }
    // Pass 2: defer beyond horizon when the deadline allows.
    const SimTime horizon_end =
        ctx.start +
        static_cast<SimTime>(horizon * facts_.slot_length_s);
    if (units > 0 && p.task.deadline > horizon_end) {
      const auto beyond_slots = static_cast<long long>(
          std::floor(static_cast<double>(p.task.deadline - horizon_end) /
                     facts_.slot_length_s));
      beyond_units = std::min(units, beyond_slots);
      units -= beyond_units;
    }
    // Pass 3: earliest remaining (brown) slots.
    for (std::size_t j = 0; j < jmax && units > 0; ++j) {
      if (cap_left[j] > 0 && !slot_taken_[j]) {
        slot_taken_[j] = 1;
        --cap_left[j];
        --units;
        if (first_offset < 0) first_offset = static_cast<int>(j);
      }
    }
    if (!slot_taken_.empty() && slot_taken_[0]) {
      decision.run_tasks.push_back(p.task.id);
      util += p.task.utilization;
      ++count;
    }
    if (provenance) {
      obs::DecisionSample d;
      d.slot = ctx.slot;
      d.t = ctx.start;
      d.policy = name();
      d.task = p.task.id;
      d.deadline_slack = static_cast<std::int64_t>(
          std::floor(p.slack(ctx.start) / facts_.slot_length_s));
      if (first_offset == 0) {
        d.action = "run";
        d.reason = first_green ? "green-at-offset" : "brown-at-offset";
      } else if (first_offset > 0) {
        d.action = "defer";
        d.reason = first_green ? "green-at-offset" : "capacity-or-cost";
      } else if (beyond_units > 0) {
        d.action = "beyond";
        d.reason = "deferred-beyond-horizon";
      } else {
        d.action = "defer";
        d.reason = "no-feasible-slot";
      }
      if (first_offset >= 0) d.chosen_offset = first_offset;
      rec->record_decision(d);
    }
  }

  decision.target_active_nodes = nodes_for_load(util, count);
  decision.eco_speed = green_left.empty() || green0 <= 0;
  const auto t1 = std::chrono::steady_clock::now();
  solve_ms_total_ +=
      std::chrono::duration<double, std::milli>(t1 - t0).count();
  return decision;
}

std::optional<SlotDecision> GreenMatchPolicy::cached_decision(
    const SlotContext& ctx) {
  if (replan_every_slot_ || greedy_ || plan_base_ < 0) return std::nullopt;
  const SlotIndex offset = ctx.slot - plan_base_;
  const SlotIndex replan_interval = std::max(1, horizon_ / 2);
  if (offset <= 0 || offset >= replan_interval) return std::nullopt;
  // Any task the plan has not seen invalidates the cache.
  for (const auto& p : ctx.pending)
    if (!plan_offsets_.count(p.task.id)) return std::nullopt;

  SlotDecision decision;
  double util = ctx.foreground_util;
  int count = 0;
  for (const auto& p : ctx.pending) {
    const auto& offsets = plan_offsets_.at(p.task.id);
    if (std::find(offsets.begin(), offsets.end(),
                  static_cast<int>(offset)) != offsets.end()) {
      decision.run_tasks.push_back(p.task.id);
      util += p.task.utilization;
      ++count;
    }
  }
  decision.target_active_nodes = nodes_for_load(util, count);
  decision.eco_speed =
      !ctx.green_forecast_w.empty() &&
      ctx.green_forecast_w[0] <= facts_.node_idle_floor_w * 0.01;
  ++plan_cache_hits_;
  return decision;
}

SlotDecision GreenMatchPolicy::plan_sharded(const SlotContext& ctx) {
  GM_OBS_SCOPE("policy.plan_sharded");
  const auto t0 = std::chrono::steady_clock::now();
  ensure_shard_planners();

  auto problems = shard::partition(ctx, facts_, shards_);
  const auto n = problems.size();
  std::vector<SlotDecision> decisions(n);
  const auto solve_one = [&](std::size_t s) {
    GreenMatchPolicy& sub = *shard_planners_[s];
    sub.initialize(problems[s].facts);
    decisions[s] = sub.decide(problems[s].ctx);
  };
  // The obs Recorder is installed thread-locally and is not
  // thread-safe: when one is active (tracing / provenance runs) the
  // shards solve serially on this thread, so every sample lands in
  // the trace and the recorded stream is deterministic. Otherwise the
  // shards fan out on the pool.
  if (obs::current_recorder() != nullptr) {
    for (std::size_t s = 0; s < n; ++s) solve_one(s);
  } else {
    parallel_for(*pool_, n, solve_one);
  }

  // Cross-shard reconciliation: pool the green headroom the per-shard
  // solves left unclaimed this slot and re-offer it, in shard order,
  // to shards that fell back to grid power; each taker re-solves once
  // against its boosted forecast. Claims are capped by the pool and by
  // the taker's own grid draw, so total green never exceeds supply.
  // Shards that answered from their cached plan (no fresh readback
  // this slot) sit the pass out.
  const double slot_len = facts_.slot_length_s;
  std::vector<double> pool_w;
  for (std::size_t s = 0; s < n; ++s) {
    const GreenMatchPolicy& sub = *shard_planners_[s];
    if (sub.last_plan_slot_ != ctx.slot) continue;
    if (sub.last_green_spare_w_.size() > pool_w.size())
      pool_w.resize(sub.last_green_spare_w_.size(), 0.0);
    for (std::size_t j = 0; j < sub.last_green_spare_w_.size(); ++j)
      pool_w[j] += sub.last_green_spare_w_[j];
  }
  for (std::size_t s = 0; s < n; ++s) {
    GreenMatchPolicy& sub = *shard_planners_[s];
    if (sub.last_plan_slot_ != ctx.slot) continue;
    auto& forecast = problems[s].ctx.green_forecast_w;
    bool boosted = false;
    const std::size_t limit =
        std::min({sub.last_brown_units_.size(), forecast.size(),
                  pool_w.size()});
    for (std::size_t j = 0; j < limit; ++j) {
      if (sub.last_brown_units_[j] <= 0 || pool_w[j] <= 0.0) continue;
      const double want_w =
          static_cast<double>(sub.last_brown_units_[j]) *
          sub.last_unit_energy_j_ / slot_len;
      const double claim_w = std::min(pool_w[j], want_w);
      if (claim_w <= 0.0) continue;
      forecast[j] += claim_w;
      pool_w[j] -= claim_w;
      boosted = true;
    }
    if (boosted) {
      ++reconciliation_solves_;
      decisions[s] = sub.plan_flow(problems[s].ctx);
    }
  }

  // Merge. Shard run sets are disjoint by construction (each task
  // lives in exactly one shard); emit them in the global pending
  // order, recompute the node target on the fleet-level facts, and
  // only eco-speed when every shard wants to.
  SlotDecision decision;
  merge_run_set_.clear();
  for (const auto& d : decisions)
    for (const auto id : d.run_tasks) merge_run_set_.insert(id);
  double util = ctx.foreground_util;
  int count = 0;
  for (const auto& p : ctx.pending) {
    if (merge_run_set_.count(p.task.id)) {
      decision.run_tasks.push_back(p.task.id);
      util += p.task.utilization;
      ++count;
    }
  }
  decision.target_active_nodes = nodes_for_load(util, count);
  decision.eco_speed = true;
  for (const auto& d : decisions)
    decision.eco_speed = decision.eco_speed && d.eco_speed;

  // Fleet-level view of the last plan: field sums over the shards'
  // most recent solves (warm/incremental if any shard was).
  PlanStats merged;
  for (const auto& sub : shard_planners_) {
    const PlanStats& ps = sub->plan_stats_;
    merged.flow += ps.flow;
    merged.cost += ps.cost;
    merged.tasks += ps.tasks;
    merged.classes += ps.classes;
    merged.network_nodes += ps.network_nodes;
    merged.warm_start = merged.warm_start || ps.warm_start;
    merged.incremental = merged.incremental || ps.incremental;
  }
  plan_stats_ = merged;

  // Wall clock of the whole orchestration — what the slot actually
  // waited. Per-shard CPU accumulates in the sub-planners
  // (shard_stats()), so it is deliberately not added here.
  const auto t1 = std::chrono::steady_clock::now();
  solve_ms_total_ +=
      std::chrono::duration<double, std::milli>(t1 - t0).count();
  return decision;
}

SlotDecision GreenMatchPolicy::decide(const SlotContext& ctx) {
  if (shards_ > 1 && !greedy_) return plan_sharded(ctx);
  if (auto cached = cached_decision(ctx)) return *cached;
  return greedy_ ? plan_greedy(ctx) : plan_flow(ctx);
}

}  // namespace gm::core
