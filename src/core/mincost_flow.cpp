#include "core/mincost_flow.hpp"

#include <algorithm>
#include <bit>
#include <climits>
#include <functional>

#include "obs/recorder.hpp"
#include "util/assert.hpp"

namespace gm::core {

MinCostFlow::MinCostFlow(int node_count) { reset(node_count); }

void MinCostFlow::reset(int node_count) {
  GM_CHECK(node_count > 0, "flow network needs at least one node");
  const auto n = static_cast<std::size_t>(node_count);
  if (graph_.size() > n) graph_.resize(n);
  for (auto& adjacency : graph_) adjacency.clear();
  graph_.resize(n);
  edge_refs_.clear();
}

int MinCostFlow::add_edge(NodeIdx from, NodeIdx to, long long capacity,
                          long long cost) {
  GM_CHECK(from >= 0 && from < node_count() && to >= 0 &&
               to < node_count(),
           "flow edge endpoint out of range: " << from << " -> " << to);
  GM_CHECK(capacity >= 0, "negative edge capacity");
  GM_CHECK(cost >= 0, "SSP requires non-negative edge costs, got " << cost);
  const int fwd = static_cast<int>(graph_[from].size());
  const int rev = static_cast<int>(graph_[to].size()) + (from == to ? 1 : 0);
  graph_[from].push_back(Edge{to, capacity, cost, rev});
  graph_[to].push_back(Edge{from, 0, -cost, fwd});
  edge_refs_.emplace_back(from, fwd);
  return static_cast<int>(edge_refs_.size()) - 1;
}

bool MinCostFlow::potentials_valid(
    const std::vector<long long>& pot) const {
  if (pot.size() != graph_.size()) return false;
  const int n = node_count();
  for (int u = 0; u < n; ++u) {
    for (const Edge& e : graph_[u]) {
      if (e.capacity <= 0) continue;
      if (e.cost + pot[u] - pot[e.to] < 0) return false;
    }
  }
  return true;
}

std::uint64_t MinCostFlow::arena_bytes() const {
  std::uint64_t bytes = graph_.capacity() * sizeof(graph_[0]);
  for (const auto& adjacency : graph_)
    bytes += adjacency.capacity() * sizeof(Edge);
  bytes += edge_refs_.capacity() * sizeof(edge_refs_[0]);
  bytes += potential_.capacity() * sizeof(long long);
  bytes += dist_.capacity() * sizeof(long long);
  bytes += prev_node_.capacity() * sizeof(int);
  bytes += prev_edge_.capacity() * sizeof(int);
  bytes += heap_.capacity() * sizeof(heap_[0]);
  bytes += radix_buckets_.capacity() * sizeof(radix_buckets_[0]);
  for (const auto& bucket : radix_buckets_)
    bytes += bucket.capacity() * sizeof(bucket[0]);
  bytes += scaling_.bytes();
  bytes += ext_arcs_.capacity() * sizeof(ext_arcs_[0]);
  return bytes;
}

void MinCostFlow::begin_stats(bool warm) {
  last_stats_ = SolveStats{};
  last_stats_.nodes = node_count();
  last_stats_.arcs = edge_refs_.size();
  last_stats_.warm = warm;
  last_stats_.arena_bytes = arena_bytes();
}

MinCostFlow::Result MinCostFlow::solve(NodeIdx s, NodeIdx t,
                                       long long max_flow) {
  GM_OBS_SCOPE("planner.mincostflow.solve");
  GM_CHECK(s >= 0 && s < node_count() && t >= 0 && t < node_count(),
           "flow terminal out of range");
  GM_CHECK(s != t, "source equals sink");
  if (solver_ == SolverKind::kCostScaling) {
    begin_stats(/*warm=*/false);
    return run_cost_scaling(s, t, max_flow);
  }
  potential_.assign(graph_.size(), 0);  // valid: costs >= 0
  begin_stats(/*warm=*/false);
  return run_ssp(s, t, max_flow);
}

MinCostFlow::Result MinCostFlow::solve(
    NodeIdx s, NodeIdx t, long long max_flow,
    const std::vector<long long>& warm_potentials) {
  GM_OBS_SCOPE("planner.mincostflow.solve");
  GM_CHECK(s >= 0 && s < node_count() && t >= 0 && t < node_count(),
           "flow terminal out of range");
  GM_CHECK(s != t, "source equals sink");
  if (solver_ == SolverKind::kCostScaling) {
    // Johnson potentials are an SSP concept; the cost-scaling path
    // retains its own prices across solves (incremental
    // re-optimization), so the seed is ignored without touching the
    // warm-start counters.
    begin_stats(/*warm=*/false);
    return run_cost_scaling(s, t, max_flow);
  }
  // The seam of the warm start: the invariant every Dijkstra below
  // relies on is checked here, once, over the whole residual network.
  // A stale seed (network changed shape, costs moved) degrades to the
  // always-valid cold start instead of corrupting the solve.
  bool warm = false;
  if (potentials_valid(warm_potentials)) {
    potential_ = warm_potentials;
    ++warm_accepts_;
    warm = true;
  } else {
    potential_.assign(graph_.size(), 0);
    ++warm_rejects_;
  }
  begin_stats(warm);
  return run_ssp(s, t, max_flow);
}

MinCostFlow::Result MinCostFlow::run_ssp(NodeIdx s, NodeIdx t,
                                         long long max_flow) {
  const int n = node_count();
  dist_.resize(static_cast<std::size_t>(n));
  prev_node_.resize(static_cast<std::size_t>(n));
  prev_edge_.resize(static_cast<std::size_t>(n));

  Result result;
  while (result.flow < max_flow) {
    ++last_stats_.dijkstra_runs;
    const bool reached = queue_ == QueueKind::kRadix
                             ? dijkstra_radix(s, t)
                             : dijkstra_binary(s, t);
    if (!reached) break;  // no augmenting path
    ++last_stats_.augmenting_paths;

    // Johnson potential update, clamped at dist[t]. For settled nodes
    // this is the classic exact update; for nodes the early exit left
    // unsettled (label, if any, >= dist[t]) the clamp preserves the
    // non-negative reduced-cost invariant on every residual edge.
    const long long dt = dist_[t];
    for (int v = 0; v < n; ++v)
      potential_[v] += std::min(dist_[v], dt);

    // Bottleneck along the path.
    long long push = max_flow - result.flow;
    for (NodeIdx v = t; v != s; v = prev_node_[v])
      push = std::min(push,
                      graph_[prev_node_[v]][prev_edge_[v]].capacity);
    GM_ASSERT(push > 0);

    for (NodeIdx v = t; v != s; v = prev_node_[v]) {
      Edge& e = graph_[prev_node_[v]][prev_edge_[v]];
      e.capacity -= push;
      graph_[v][e.rev].capacity += push;
      result.cost += push * e.cost;
    }
    result.flow += push;
  }
  return result;
}

bool MinCostFlow::dijkstra_binary(NodeIdx s, NodeIdx t) {
  // Dijkstra on reduced costs. The heap is an explicit binary heap
  // on a member vector (same pop order as std::priority_queue, but
  // the storage survives across augmentations and solves).
  const auto heap_greater = std::greater<>{};
  std::fill(dist_.begin(), dist_.end(), kInfCost);
  dist_[s] = 0;
  heap_.clear();
  heap_.emplace_back(0, s);
  // Telemetry counters live in registers for the duration of the run;
  // folded into last_stats_ once at exit (see SolveStats).
  std::uint64_t pops = 0;
  std::uint64_t relaxations = 0;
  while (!heap_.empty()) {
    std::pop_heap(heap_.begin(), heap_.end(), heap_greater);
    const auto [d, u] = heap_.back();
    heap_.pop_back();
    ++pops;
    if (d > dist_[u]) continue;
    // Early exit once the sink is settled: remaining pops have
    // d >= dist[t], so no relaxation can improve any node on the
    // found path. Nodes left unsettled get their potential clamped
    // to dist[t] by the caller, which keeps reduced costs
    // non-negative.
    if (u == t) break;
    for (int i = 0; i < static_cast<int>(graph_[u].size()); ++i) {
      const Edge& e = graph_[u][i];
      if (e.capacity <= 0) continue;
      ++relaxations;
      const long long nd = d + e.cost + potential_[u] - potential_[e.to];
      GM_ASSERT_MSG(e.cost + potential_[u] - potential_[e.to] >= 0,
                    "negative reduced cost — potentials invalid");
      if (nd < dist_[e.to]) {
        dist_[e.to] = nd;
        prev_node_[e.to] = u;
        prev_edge_[e.to] = i;
        heap_.emplace_back(nd, e.to);
        std::push_heap(heap_.begin(), heap_.end(), heap_greater);
      }
    }
  }
  last_stats_.dijkstra_pops += pops;
  last_stats_.dijkstra_relaxations += relaxations;
  return dist_[t] < kInfCost;
}

bool MinCostFlow::dijkstra_radix(NodeIdx s, NodeIdx t) {
  // Monotone (radix) heap: Dijkstra's pop keys never decrease, so an
  // entry with key k lives in bucket bit_width(k ^ last_popped_key).
  // When the lowest non-empty bucket is redistributed, its minimum
  // becomes the new reference key and lands in bucket 0; entries in
  // higher buckets provably keep their bucket index, so each entry
  // moves O(word size) times total instead of paying O(log n) per
  // heap operation.
  constexpr int kBuckets = 65;  // bit_width of a 64-bit xor is <= 64
  radix_buckets_.resize(kBuckets);
  for (auto& b : radix_buckets_) b.clear();
  std::fill(dist_.begin(), dist_.end(), kInfCost);
  dist_[s] = 0;
  long long last = 0;
  const auto bucket_of = [&](long long key) {
    return std::bit_width(
        static_cast<unsigned long long>(key ^ last));
  };
  radix_buckets_[0].emplace_back(0, s);
  std::size_t live = 1;
  std::uint64_t pops = 0;
  std::uint64_t relaxations = 0;
  while (live > 0) {
    if (radix_buckets_[0].empty()) {
      int b = 1;
      while (radix_buckets_[b].empty()) ++b;
      auto& bucket = radix_buckets_[b];
      long long min_key = bucket.front().first;
      for (const auto& [k, v] : bucket) min_key = std::min(min_key, k);
      last = min_key;
      for (const auto& entry : bucket)
        radix_buckets_[bucket_of(entry.first)].push_back(entry);
      bucket.clear();
    }
    const auto [d, u] = radix_buckets_[0].back();
    radix_buckets_[0].pop_back();
    --live;
    ++pops;
    if (d > dist_[u]) continue;
    if (u == t) break;  // early exit; caller clamps potentials
    for (int i = 0; i < static_cast<int>(graph_[u].size()); ++i) {
      const Edge& e = graph_[u][i];
      if (e.capacity <= 0) continue;
      ++relaxations;
      const long long nd = d + e.cost + potential_[u] - potential_[e.to];
      GM_ASSERT_MSG(e.cost + potential_[u] - potential_[e.to] >= 0,
                    "negative reduced cost — potentials invalid");
      if (nd < dist_[e.to]) {
        dist_[e.to] = nd;
        prev_node_[e.to] = u;
        prev_edge_[e.to] = i;
        radix_buckets_[bucket_of(nd)].emplace_back(nd, e.to);
        ++live;
      }
    }
  }
  for (auto& b : radix_buckets_) b.clear();
  last_stats_.dijkstra_pops += pops;
  last_stats_.dijkstra_relaxations += relaxations;
  return dist_[t] < kInfCost;
}

long long MinCostFlow::flow_on(int edge_index) const {
  GM_CHECK(edge_index >= 0 &&
               edge_index < static_cast<int>(edge_refs_.size()),
           "edge index out of range: " << edge_index);
  const auto [node, idx] = edge_refs_[edge_index];
  const Edge& fwd = graph_[node][idx];
  // Flow pushed equals the reverse edge's residual capacity.
  return graph_[fwd.to][fwd.rev].capacity;
}

}  // namespace gm::core
