#include "core/mincost_flow.hpp"

#include <algorithm>
#include <climits>
#include <queue>

#include "obs/recorder.hpp"
#include "util/assert.hpp"

namespace gm::core {

MinCostFlow::MinCostFlow(int node_count) {
  GM_CHECK(node_count > 0, "flow network needs at least one node");
  graph_.resize(node_count);
}

int MinCostFlow::add_edge(NodeIdx from, NodeIdx to, long long capacity,
                          long long cost) {
  GM_CHECK(from >= 0 && from < node_count() && to >= 0 &&
               to < node_count(),
           "flow edge endpoint out of range: " << from << " -> " << to);
  GM_CHECK(capacity >= 0, "negative edge capacity");
  GM_CHECK(cost >= 0, "SSP requires non-negative edge costs, got " << cost);
  const int fwd = static_cast<int>(graph_[from].size());
  const int rev = static_cast<int>(graph_[to].size()) + (from == to ? 1 : 0);
  graph_[from].push_back(Edge{to, capacity, cost, rev});
  graph_[to].push_back(Edge{from, 0, -cost, fwd});
  edge_refs_.emplace_back(from, fwd);
  return static_cast<int>(edge_refs_.size()) - 1;
}

MinCostFlow::Result MinCostFlow::solve(NodeIdx s, NodeIdx t,
                                       long long max_flow) {
  GM_OBS_SCOPE("planner.mincostflow.solve");
  GM_CHECK(s >= 0 && s < node_count() && t >= 0 && t < node_count(),
           "flow terminal out of range");
  GM_CHECK(s != t, "source equals sink");

  const int n = node_count();
  std::vector<long long> potential(n, 0);  // valid: all costs >= 0
  std::vector<long long> dist(n);
  std::vector<int> prev_node(n), prev_edge(n);

  Result result;
  while (result.flow < max_flow) {
    // Dijkstra on reduced costs.
    std::fill(dist.begin(), dist.end(), kInfCost);
    dist[s] = 0;
    using Entry = std::pair<long long, NodeIdx>;
    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> pq;
    pq.emplace(0, s);
    while (!pq.empty()) {
      const auto [d, u] = pq.top();
      pq.pop();
      if (d > dist[u]) continue;
      for (int i = 0; i < static_cast<int>(graph_[u].size()); ++i) {
        const Edge& e = graph_[u][i];
        if (e.capacity <= 0) continue;
        const long long nd = d + e.cost + potential[u] - potential[e.to];
        GM_ASSERT_MSG(e.cost + potential[u] - potential[e.to] >= 0,
                      "negative reduced cost — potentials invalid");
        if (nd < dist[e.to]) {
          dist[e.to] = nd;
          prev_node[e.to] = u;
          prev_edge[e.to] = i;
          pq.emplace(nd, e.to);
        }
      }
    }
    if (dist[t] >= kInfCost) break;  // no augmenting path

    for (int v = 0; v < n; ++v)
      if (dist[v] < kInfCost) potential[v] += dist[v];

    // Bottleneck along the path.
    long long push = max_flow - result.flow;
    for (NodeIdx v = t; v != s; v = prev_node[v])
      push = std::min(push,
                      graph_[prev_node[v]][prev_edge[v]].capacity);
    GM_ASSERT(push > 0);

    for (NodeIdx v = t; v != s; v = prev_node[v]) {
      Edge& e = graph_[prev_node[v]][prev_edge[v]];
      e.capacity -= push;
      graph_[v][e.rev].capacity += push;
      result.cost += push * e.cost;
    }
    result.flow += push;
  }
  return result;
}

long long MinCostFlow::flow_on(int edge_index) const {
  GM_CHECK(edge_index >= 0 &&
               edge_index < static_cast<int>(edge_refs_.size()),
           "edge index out of range: " << edge_index);
  const auto [node, idx] = edge_refs_[edge_index];
  const Edge& fwd = graph_[node][idx];
  // Flow pushed equals the reverse edge's residual capacity.
  return graph_[fwd.to][fwd.rev].capacity;
}

}  // namespace gm::core
