#include "core/mincost_flow.hpp"

#include <algorithm>
#include <climits>
#include <functional>

#include "obs/recorder.hpp"
#include "util/assert.hpp"

namespace gm::core {

MinCostFlow::MinCostFlow(int node_count) { reset(node_count); }

void MinCostFlow::reset(int node_count) {
  GM_CHECK(node_count > 0, "flow network needs at least one node");
  const auto n = static_cast<std::size_t>(node_count);
  if (graph_.size() > n) graph_.resize(n);
  for (auto& adjacency : graph_) adjacency.clear();
  graph_.resize(n);
  edge_refs_.clear();
}

int MinCostFlow::add_edge(NodeIdx from, NodeIdx to, long long capacity,
                          long long cost) {
  GM_CHECK(from >= 0 && from < node_count() && to >= 0 &&
               to < node_count(),
           "flow edge endpoint out of range: " << from << " -> " << to);
  GM_CHECK(capacity >= 0, "negative edge capacity");
  GM_CHECK(cost >= 0, "SSP requires non-negative edge costs, got " << cost);
  const int fwd = static_cast<int>(graph_[from].size());
  const int rev = static_cast<int>(graph_[to].size()) + (from == to ? 1 : 0);
  graph_[from].push_back(Edge{to, capacity, cost, rev});
  graph_[to].push_back(Edge{from, 0, -cost, fwd});
  edge_refs_.emplace_back(from, fwd);
  return static_cast<int>(edge_refs_.size()) - 1;
}

MinCostFlow::Result MinCostFlow::solve(NodeIdx s, NodeIdx t,
                                       long long max_flow) {
  GM_OBS_SCOPE("planner.mincostflow.solve");
  GM_CHECK(s >= 0 && s < node_count() && t >= 0 && t < node_count(),
           "flow terminal out of range");
  GM_CHECK(s != t, "source equals sink");

  const int n = node_count();
  potential_.assign(static_cast<std::size_t>(n), 0);  // valid: costs >= 0
  dist_.resize(static_cast<std::size_t>(n));
  prev_node_.resize(static_cast<std::size_t>(n));
  prev_edge_.resize(static_cast<std::size_t>(n));
  const auto heap_greater = std::greater<>{};

  Result result;
  while (result.flow < max_flow) {
    // Dijkstra on reduced costs. The heap is an explicit binary heap
    // on a member vector (same pop order as std::priority_queue, but
    // the storage survives across augmentations and solves).
    std::fill(dist_.begin(), dist_.end(), kInfCost);
    dist_[s] = 0;
    heap_.clear();
    heap_.emplace_back(0, s);
    while (!heap_.empty()) {
      std::pop_heap(heap_.begin(), heap_.end(), heap_greater);
      const auto [d, u] = heap_.back();
      heap_.pop_back();
      if (d > dist_[u]) continue;
      // Early exit once the sink is settled: remaining pops have
      // d >= dist[t], so no relaxation can improve any node on the
      // found path. Nodes left unsettled get their potential clamped
      // to dist[t] below, which keeps reduced costs non-negative.
      if (u == t) break;
      for (int i = 0; i < static_cast<int>(graph_[u].size()); ++i) {
        const Edge& e = graph_[u][i];
        if (e.capacity <= 0) continue;
        const long long nd = d + e.cost + potential_[u] - potential_[e.to];
        GM_ASSERT_MSG(e.cost + potential_[u] - potential_[e.to] >= 0,
                      "negative reduced cost — potentials invalid");
        if (nd < dist_[e.to]) {
          dist_[e.to] = nd;
          prev_node_[e.to] = u;
          prev_edge_[e.to] = i;
          heap_.emplace_back(nd, e.to);
          std::push_heap(heap_.begin(), heap_.end(), heap_greater);
        }
      }
    }
    if (dist_[t] >= kInfCost) break;  // no augmenting path

    // Johnson potential update, clamped at dist[t]. For settled nodes
    // this is the classic exact update; for nodes the early exit left
    // unsettled (label, if any, >= dist[t]) the clamp preserves the
    // non-negative reduced-cost invariant on every residual edge.
    const long long dt = dist_[t];
    for (int v = 0; v < n; ++v)
      potential_[v] += std::min(dist_[v], dt);

    // Bottleneck along the path.
    long long push = max_flow - result.flow;
    for (NodeIdx v = t; v != s; v = prev_node_[v])
      push = std::min(push,
                      graph_[prev_node_[v]][prev_edge_[v]].capacity);
    GM_ASSERT(push > 0);

    for (NodeIdx v = t; v != s; v = prev_node_[v]) {
      Edge& e = graph_[prev_node_[v]][prev_edge_[v]];
      e.capacity -= push;
      graph_[v][e.rev].capacity += push;
      result.cost += push * e.cost;
    }
    result.flow += push;
  }
  return result;
}

long long MinCostFlow::flow_on(int edge_index) const {
  GM_CHECK(edge_index >= 0 &&
               edge_index < static_cast<int>(edge_refs_.size()),
           "edge index out of range: " << edge_index);
  const auto [node, idx] = edge_refs_[edge_index];
  const Edge& fwd = graph_[node][idx];
  // Flow pushed equals the reverse edge's residual capacity.
  return graph_[fwd.to][fwd.rev].capacity;
}

}  // namespace gm::core
