#pragma once
// Min-cost max-flow via successive shortest paths with Johnson
// potentials (Dijkstra per augmentation). This is the matching engine
// behind the GreenMatch planner: tasks are matched to (slot, capacity)
// bins at a cost proportional to the expected brown energy of running
// there. Costs must be non-negative; capacities are integers.
//
// The planner rebuilds its network every slot, so the class doubles as
// an arena: reset() clears the network while keeping every previously
// allocated adjacency list and all Dijkstra scratch (distance labels,
// potentials, predecessor arrays, heap storage) for the next build.
// Reusing one instance across solves is allocation-free in steady
// state and measurably faster than constructing a fresh network
// (see BM_MinCostFlowAssignment / BM_GreenMatchPlanDay).
//
// Two extensions for callers that solve a slowly-drifting sequence of
// networks (the planner replans a shifted copy of last slot's
// problem):
//  - warm-started solves: solve() accepts the previous solve's Johnson
//    potentials as a starting point. They are validated in O(E)
//    against the non-negative-reduced-cost invariant and silently
//    dropped (zero re-init) if the new network violates it, so a warm
//    start can never change correctness — only the work per Dijkstra.
//  - a monotone radix-heap priority queue (set_queue) for the
//    small-integer-cost regime: Dijkstra's pop sequence is
//    non-decreasing, so a 65-bucket radix structure replaces the
//    binary heap's O(log n) pushes with O(1) amortized bucket moves.

#include <climits>
#include <cstdint>
#include <utility>
#include <vector>

#include "core/mincost_flow_scaling.hpp"

namespace gm::core {

class MinCostFlow {
 public:
  using NodeIdx = int;
  static constexpr long long kInfCost = LLONG_MAX / 4;

  /// Priority queue driving the per-augmentation Dijkstra.
  enum class QueueKind : std::uint8_t {
    kBinaryHeap = 0,  ///< explicit binary heap, (dist, node) tiebreak
    kRadix,           ///< monotone radix heap (small-integer costs)
  };

  /// Which algorithm solve() runs. Both return an exact minimum-cost
  /// maximum flow (same flow value, same objective); which of several
  /// equal-cost optima is returned may differ, as with QueueKind.
  enum class SolverKind : std::uint8_t {
    kSuccessiveShortestPath = 0,  ///< Dijkstra + Johnson potentials
    kCostScaling,  ///< ε-scaling push-relabel (mincost_flow_scaling)
  };

  explicit MinCostFlow(int node_count);

  /// Clears the network down to `node_count` empty adjacency lists.
  /// Previously allocated edge storage and solver scratch survive, so
  /// a caller that plans every slot pays for allocation only once.
  void reset(int node_count);

  /// Adds a directed edge; returns its index (for flow inspection).
  int add_edge(NodeIdx from, NodeIdx to, long long capacity,
               long long cost);

  struct Result {
    long long flow = 0;
    long long cost = 0;
  };

  /// Work telemetry for one solve(), reset at every solve entry.
  /// `classes` is not the solver's to know — the planner stamps it
  /// after copying (see GreenMatchPolicy); everything else is filled
  /// here. Counting happens in registers inside the Dijkstra loops and
  /// is folded into this struct once per Dijkstra run, so the overhead
  /// on BM_GreenMatchPlanDay stays in the noise.
  struct SolveStats {
    int nodes = 0;                ///< network nodes
    std::uint64_t arcs = 0;       ///< externally added arcs
    std::uint64_t classes = 0;    ///< task classes (planner-stamped)
    std::uint64_t dijkstra_runs = 0;
    std::uint64_t dijkstra_pops = 0;         ///< heap/bucket pops
    std::uint64_t dijkstra_relaxations = 0;  ///< residual arcs scanned
    std::uint64_t augmenting_paths = 0;
    bool warm = false;            ///< warm potentials accepted
    /// Bytes of solver scratch held across solves (the reset() arena):
    /// adjacency storage, potentials, labels, heap and radix buckets,
    /// and the cost-scaling core's retained residual network.
    std::uint64_t arena_bytes = 0;
    // Cost-scaling fields, zero under kSuccessiveShortestPath (see
    // docs/solver.md for the glossary):
    std::uint64_t cs_phases = 0;    ///< ε-phases walked by the ladder
    std::uint64_t cs_pushes = 0;
    std::uint64_t cs_relabels = 0;
    std::uint64_t cs_price_refinements = 0;  ///< phases skipped by B-F
    std::uint64_t cs_global_updates = 0;     ///< Dial re-anchorings
    std::uint64_t cs_arcs_fixed = 0;  ///< arc pairs fixed at exit
    /// 1 if this solve re-refined a patched residual network / 1 if it
    /// (re)built cold. Lifetime sums: incremental_accepts()/rebuilds().
    std::uint64_t incremental_accepts = 0;
    std::uint64_t incremental_rebuilds = 0;
  };

  const SolveStats& last_stats() const { return last_stats_; }
  /// The planner stamps fields the solver cannot know (class count).
  SolveStats& mutable_last_stats() { return last_stats_; }

  /// Sends up to `max_flow` units from s to t at minimum total cost.
  Result solve(NodeIdx s, NodeIdx t, long long max_flow = LLONG_MAX / 4);

  /// Warm-started solve: seeds the Johnson potentials from
  /// `warm_potentials` (one entry per node) instead of zero. The seed
  /// is accepted only if every residual edge keeps a non-negative
  /// reduced cost under it — checked in O(E) up front; a violation (or
  /// a size mismatch) falls back to the zero initialization, which is
  /// always valid for non-negative edge costs. Either way the result
  /// is a true minimum-cost flow; warm_accepts()/warm_rejects() report
  /// which path was taken.
  Result solve(NodeIdx s, NodeIdx t, long long max_flow,
               const std::vector<long long>& warm_potentials);

  /// Johnson potentials after the last solve(); index = node. Feed
  /// them (possibly shifted/clamped by the caller) into the next
  /// solve's warm start.
  const std::vector<long long>& potentials() const { return potential_; }

  /// Selects the Dijkstra priority queue. Both kinds produce a
  /// minimum-cost flow; equal-distance pop *order* differs, so callers
  /// that care about which of several equal-cost optima is returned
  /// must pick one kind and stick with it.
  void set_queue(QueueKind kind) { queue_ = kind; }
  QueueKind queue() const { return queue_; }

  /// Selects the solving algorithm. Switching kinds drops any retained
  /// cost-scaling state, so the next kCostScaling solve builds cold.
  void set_solver(SolverKind kind) {
    if (kind != solver_) scaling_.invalidate();
    solver_ = kind;
  }
  SolverKind solver() const { return solver_; }

  /// Incremental re-optimization (kCostScaling only, default on): a
  /// solve diffs the freshly built network against the residual state
  /// retained from the previous solve and, when the topology diff is
  /// small, patches it in place and re-refines from retained prices
  /// instead of rebuilding — the cost-scaling analogue of the SSP warm
  /// start, but it also reuses the flow, not just the potentials.
  /// reset()/add_edge() stay oblivious: the diff happens inside
  /// solve(), keyed on arc endpoints, so the planner's rebuild-every-
  /// slot pattern works unchanged. Fallback to a cold build is
  /// automatic (shape change, large diff, or pathological patch).
  void set_incremental(bool on) { incremental_ = on; }
  bool incremental() const { return incremental_; }

  /// Warm-start bookkeeping across the lifetime of this instance.
  std::uint64_t warm_accepts() const { return warm_accepts_; }
  std::uint64_t warm_rejects() const { return warm_rejects_; }

  /// Incremental-reoptimization bookkeeping (lifetime sums of the
  /// per-solve SolveStats flags; both zero under SSP).
  std::uint64_t incremental_accepts() const {
    return incremental_accepts_;
  }
  std::uint64_t incremental_rebuilds() const {
    return incremental_rebuilds_;
  }

  /// Test-only: forwards to CostScalingCore::set_test_relabel_limit to
  /// force the patched-solve budget-abort → cold-rebuild path.
  void set_test_relabel_limit(std::uint64_t limit) {
    scaling_.set_test_relabel_limit(limit);
  }

  /// Flow currently on edge `edge_index` (after solve).
  long long flow_on(int edge_index) const;

  int node_count() const { return static_cast<int>(graph_.size()); }

 private:
  struct Edge {
    NodeIdx to;
    long long capacity;  ///< residual capacity
    long long cost;
    int rev;  ///< index of reverse edge in graph_[to]
  };

  Result run_ssp(NodeIdx s, NodeIdx t, long long max_flow);
  /// kCostScaling path, defined in mincost_flow_scaling.cpp.
  Result run_cost_scaling(NodeIdx s, NodeIdx t, long long max_flow);
  bool dijkstra_binary(NodeIdx s, NodeIdx t);
  bool dijkstra_radix(NodeIdx s, NodeIdx t);
  /// Resets last_stats_ and fills the per-solve network/arena fields.
  void begin_stats(bool warm);
  std::uint64_t arena_bytes() const;
  /// True iff every residual (capacity > 0) edge has non-negative
  /// reduced cost under `pot`.
  bool potentials_valid(const std::vector<long long>& pot) const;

  std::vector<std::vector<Edge>> graph_;
  /// (node, edge list index) of each externally added edge.
  std::vector<std::pair<NodeIdx, int>> edge_refs_;

  QueueKind queue_ = QueueKind::kBinaryHeap;
  SolverKind solver_ = SolverKind::kSuccessiveShortestPath;
  bool incremental_ = true;  ///< only consulted under kCostScaling
  std::uint64_t warm_accepts_ = 0;
  std::uint64_t warm_rejects_ = 0;
  std::uint64_t incremental_accepts_ = 0;
  std::uint64_t incremental_rebuilds_ = 0;
  SolveStats last_stats_;

  /// Retained cost-scaling state (survives reset() on purpose — the
  /// incremental diff happens against it) plus the gather scratch.
  CostScalingCore scaling_;
  std::vector<CostScalingCore::ExtArc> ext_arcs_;

  // Solver scratch, reused across solve() calls (see reset()).
  std::vector<long long> potential_;
  std::vector<long long> dist_;
  std::vector<int> prev_node_;
  std::vector<int> prev_edge_;
  std::vector<std::pair<long long, NodeIdx>> heap_;
  /// Radix-heap buckets: entry (key, node), bucket = bit position of
  /// the highest bit where key differs from the last popped key.
  std::vector<std::vector<std::pair<long long, NodeIdx>>> radix_buckets_;
};

}  // namespace gm::core
