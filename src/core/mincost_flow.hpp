#pragma once
// Min-cost max-flow via successive shortest paths with Johnson
// potentials (Dijkstra per augmentation). This is the matching engine
// behind the GreenMatch planner: tasks are matched to (slot, capacity)
// bins at a cost proportional to the expected brown energy of running
// there. Costs must be non-negative; capacities are integers.
//
// The planner rebuilds its network every slot, so the class doubles as
// an arena: reset() clears the network while keeping every previously
// allocated adjacency list and all Dijkstra scratch (distance labels,
// potentials, predecessor arrays, heap storage) for the next build.
// Reusing one instance across solves is allocation-free in steady
// state and measurably faster than constructing a fresh network
// (see BM_MinCostFlowAssignment / BM_GreenMatchPlanDay).

#include <climits>
#include <cstdint>
#include <utility>
#include <vector>

namespace gm::core {

class MinCostFlow {
 public:
  using NodeIdx = int;
  static constexpr long long kInfCost = LLONG_MAX / 4;

  explicit MinCostFlow(int node_count);

  /// Clears the network down to `node_count` empty adjacency lists.
  /// Previously allocated edge storage and solver scratch survive, so
  /// a caller that plans every slot pays for allocation only once.
  void reset(int node_count);

  /// Adds a directed edge; returns its index (for flow inspection).
  int add_edge(NodeIdx from, NodeIdx to, long long capacity,
               long long cost);

  struct Result {
    long long flow = 0;
    long long cost = 0;
  };

  /// Sends up to `max_flow` units from s to t at minimum total cost.
  Result solve(NodeIdx s, NodeIdx t, long long max_flow = LLONG_MAX / 4);

  /// Flow currently on edge `edge_index` (after solve).
  long long flow_on(int edge_index) const;

  int node_count() const { return static_cast<int>(graph_.size()); }

 private:
  struct Edge {
    NodeIdx to;
    long long capacity;  ///< residual capacity
    long long cost;
    int rev;  ///< index of reverse edge in graph_[to]
  };

  std::vector<std::vector<Edge>> graph_;
  /// (node, edge list index) of each externally added edge.
  std::vector<std::pair<NodeIdx, int>> edge_refs_;

  // Solver scratch, reused across solve() calls (see reset()).
  std::vector<long long> potential_;
  std::vector<long long> dist_;
  std::vector<int> prev_node_;
  std::vector<int> prev_edge_;
  std::vector<std::pair<long long, NodeIdx>> heap_;
};

}  // namespace gm::core
