#include "core/mincost_flow_scaling.hpp"

#include <algorithm>
#include <climits>

#include "core/mincost_flow.hpp"
#include "util/assert.hpp"

namespace gm::core {

namespace {

constexpr std::uint64_t pair_key(int from, int to) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(from))
          << 32) |
         static_cast<std::uint32_t>(to);
}

/// Floor division for a possibly negative numerator (positive divisor).
constexpr long long floor_div(long long num, long long den) {
  return num >= 0 ? num / den : -((-num + den - 1) / den);
}

}  // namespace

// ---------------------------------------------------------------------------
// Network construction and patching
// ---------------------------------------------------------------------------

int CostScalingCore::alloc_pair() {
  if (!free_pairs_.empty()) {
    const int a = free_pairs_.back();
    free_pairs_.pop_back();
    return a;
  }
  const int a = static_cast<int>(head_.size());
  head_.insert(head_.end(), 2, -1);
  resid_.insert(resid_.end(), 2, 0);
  cost_.insert(cost_.end(), 2, 0);
  cap_.insert(cap_.end(), 2, 0);
  fixed_.insert(fixed_.end(), 2, 0);
  return a;
}

void CostScalingCore::add_pair(int arc, int u, int v, long long cap,
                               long long scaled_cost) {
  head_[arc] = v;
  head_[arc ^ 1] = u;
  resid_[arc] = cap;
  resid_[arc ^ 1] = 0;
  cost_[arc] = scaled_cost;
  cost_[arc ^ 1] = -scaled_cost;
  cap_[arc] = cap;
  cap_[arc ^ 1] = 0;
  fixed_[arc] = fixed_[arc ^ 1] = 0;
  adj_[u].push_back(arc);
  adj_[v].push_back(arc ^ 1);
}

void CostScalingCore::remove_pair(int arc) {
  // Flow stranded on the removed arc becomes an excess at its tail and
  // a deficit at its head; the next refine() re-routes it (the slack
  // arc guarantees a route exists). Adjacency lists are filtered by
  // the caller once all removals are known.
  const int u = from(arc);
  const int v = head_[arc];
  const long long flow = resid_[arc ^ 1];
  excess_[u] += flow;
  excess_[v] -= flow;
  head_[arc] = head_[arc ^ 1] = -1;
  free_pairs_.push_back(arc);
}

void CostScalingCore::build(int node_count,
                            const std::vector<ExtArc>& arcs, int s,
                            int t, long long max_flow) {
  GM_CHECK(node_count > 0, "cost-scaling network needs nodes");
  GM_CHECK(s >= 0 && s < node_count && t >= 0 && t < node_count &&
               s != t,
           "cost-scaling terminal out of range");
  n_ = node_count;
  s_ = s;
  t_ = t;
  scale_ = n_ + 1;

  long long maxc = 0;
  __int128 out_cap = 0;
  for (const ExtArc& a : arcs) {
    GM_CHECK(a.cost >= 0, "cost-scaling requires non-negative costs");
    if (a.cost > maxc) maxc = a.cost;
    if (a.from == s) out_cap += a.cap;
  }
  c_big_ = static_cast<long long>(n_) * (maxc + 1) + 1;
  // Scaled costs, the ε ladder, and the arc-fixing threshold all stay
  // comfortably inside long long when this holds (see docs/solver.md).
  const __int128 worst = static_cast<__int128>(scale_) * c_big_;
  GM_CHECK(worst < LLONG_MAX / 256,
           "cost-scaling: costs too large for this network size");

  long long eff = max_flow;
  if (out_cap < eff) eff = static_cast<long long>(out_cap);
  if (eff < 0) eff = 0;
  eff_max_ = eff;

  head_.clear();
  resid_.clear();
  cost_.clear();
  cap_.clear();
  fixed_.clear();
  free_pairs_.clear();
  if (static_cast<int>(adj_.size()) > n_)
    adj_.resize(static_cast<std::size_t>(n_));
  for (auto& lst : adj_) lst.clear();
  adj_.resize(static_cast<std::size_t>(n_));

  // The slack arc is always pair (0, 1): it absorbs whatever part of
  // the supply the real network cannot (or should not) carry.
  const int slack = alloc_pair();
  GM_ASSERT(slack == 0);
  add_pair(slack, s_, t_, eff, c_big_ * scale_);

  arc_of_ext_.clear();
  arc_of_ext_.reserve(arcs.size());
  for (const ExtArc& a : arcs) {
    GM_CHECK(a.from >= 0 && a.from < n_ && a.to >= 0 && a.to < n_,
             "cost-scaling arc endpoint out of range");
    GM_CHECK(a.cap >= 0, "cost-scaling: negative arc capacity");
    const int id = alloc_pair();
    add_pair(id, a.from, a.to, a.cap, a.cost * scale_);
    arc_of_ext_.push_back(id);
  }

  price_.assign(static_cast<std::size_t>(n_), 0);
  excess_.assign(static_cast<std::size_t>(n_), 0);
  excess_[s_] += eff;
  excess_[t_] -= eff;
  cur_.assign(static_cast<std::size_t>(n_), 0);
  start_eps_ = c_big_ * scale_;  // the largest scaled cost
  last_was_patch_ = false;
}

bool CostScalingCore::try_patch(int node_count,
                                const std::vector<ExtArc>& arcs, int s,
                                int t, long long max_flow) {
  if (n_ == 0 || node_count != n_ || s != s_ || t != t_) return false;

  long long maxc = 0;
  __int128 out_cap = 0;
  for (const ExtArc& a : arcs) {
    if (a.cost < 0 || a.from < 0 || a.from >= n_ || a.to < 0 ||
        a.to >= n_ || a.cap < 0)
      return false;  // let build() raise the precise GM_CHECK
    if (a.cost > maxc) maxc = a.cost;
    if (a.from == s) out_cap += a.cap;
  }
  // The retained slack cost must still dominate any simple real path,
  // or the lexicographic (max flow, then min cost) objective breaks.
  if (static_cast<__int128>(n_) * maxc >= c_big_) return false;

  // Pass 1 (read-only): match new arcs to live arcs by endpoint key.
  // Duplicate (from, to) pairs match arbitrarily — both sides get
  // their capacity and cost patched, so any pairing is equivalent.
  patch_index_.clear();
  std::size_t live_fwd = 0;
  for (int a = 2; a < static_cast<int>(head_.size()); a += 2) {
    if (!live(a)) continue;
    ++live_fwd;
    patch_index_[pair_key(from(a), head_[a])].push_back(a);
  }
  match_scratch_.assign(arcs.size(), -1);
  std::size_t adds = 0;
  for (std::size_t i = 0; i < arcs.size(); ++i) {
    const auto it = patch_index_.find(pair_key(arcs[i].from, arcs[i].to));
    if (it != patch_index_.end() && !it->second.empty()) {
      match_scratch_[i] = it->second.back();
      it->second.pop_back();
    } else {
      ++adds;
    }
  }
  const std::size_t matches = arcs.size() - adds;
  const std::size_t removes = live_fwd - matches;
  if (adds + removes > std::max<std::size_t>(8, live_fwd / 4))
    return false;

  // ---- Commit: from here on the retained state is being rewritten.
  // Costs moved, so every arc-fixing decision is stale.
  std::fill(fixed_.begin(), fixed_.end(), 0);
  arc_of_ext_.assign(arcs.size(), -1);
  for (std::size_t i = 0; i < arcs.size(); ++i) {
    const int a = match_scratch_[i];
    if (a < 0) continue;
    arc_of_ext_[i] = a;
    const long long scaled = arcs[i].cost * scale_;
    cost_[a] = scaled;
    cost_[a ^ 1] = -scaled;
    long long flow = resid_[a ^ 1];
    if (flow > arcs[i].cap) {
      // Capacity cut below current flow: the overhang becomes an
      // excess at the tail / deficit at the head, re-routed by the
      // next refine().
      const long long cut = flow - arcs[i].cap;
      excess_[from(a)] += cut;
      excess_[head_[a]] -= cut;
      flow = arcs[i].cap;
    }
    cap_[a] = arcs[i].cap;
    resid_[a] = arcs[i].cap - flow;
    resid_[a ^ 1] = flow;
  }

  bool removed = false;
  for (auto& [key, ids] : patch_index_) {
    (void)key;
    for (const int a : ids) {
      remove_pair(a);
      removed = true;
    }
  }
  if (removed)
    for (auto& lst : adj_)
      std::erase_if(lst, [this](int a) { return !live(a); });

  for (std::size_t i = 0; i < arcs.size(); ++i) {
    if (match_scratch_[i] >= 0) continue;
    const int a = alloc_pair();
    add_pair(a, arcs[i].from, arcs[i].to, arcs[i].cap,
             arcs[i].cost * scale_);
    arc_of_ext_[i] = a;
  }

  // Supply change: patch the slack arc like any other capacity edit,
  // then shift the source/sink imbalance to the new supply level.
  long long eff = max_flow;
  if (out_cap < eff) eff = static_cast<long long>(out_cap);
  if (eff < 0) eff = 0;
  long long slack_flow = resid_[1];
  if (slack_flow > eff) {
    const long long cut = slack_flow - eff;
    excess_[s_] += cut;
    excess_[t_] -= cut;
    slack_flow = eff;
  }
  cap_[0] = eff;
  resid_[0] = eff - slack_flow;
  resid_[1] = slack_flow;
  excess_[s_] += eff - eff_max_;
  excess_[t_] -= eff - eff_max_;
  eff_max_ = eff;

  // Re-entry point for the ε ladder. A patch that left every node
  // balanced (cost/capacity edits that stranded no flow) is a pure
  // price problem: the retained flow is ε-optimal for ε = the worst
  // violation, and one refine from there repairs it. A patch that
  // created excesses (capacity cut under flow, arc removals, supply
  // shifts) must restart at the cold ε₀ instead: routing excess across
  // a reduced-cost barrier of height B needs price movement ~B, but a
  // refine(ε) only moves prices O(n·ε) per global update, so a small ε
  // would blow the relabel budget on the slack arc's C_big barrier.
  // The retained prices and flow still make this far cheaper than a
  // cold build — warm flow, cold ladder.
  bool have_excess = false;
  for (int v = 0; v < n_; ++v)
    if (excess_[v] != 0) {
      have_excess = true;
      break;
    }
  start_eps_ = have_excess ? c_big_ * scale_ : compute_restart_eps();
  last_was_patch_ = true;
  return true;
}

long long CostScalingCore::compute_restart_eps() const {
  // The patched flow is, by definition, ε-optimal for ε = the worst
  // reduced-cost violation across residual arcs under the retained
  // prices; the ladder re-enters there instead of at the cold ε₀.
  long long eps = 1;
  for (int a = 0; a < static_cast<int>(head_.size()); ++a) {
    if (!live(a) || resid_[a] <= 0) continue;
    const long long violation = -reduced_cost(a);
    if (violation > eps) eps = violation;
  }
  return eps;
}

// ---------------------------------------------------------------------------
// The ε ladder
// ---------------------------------------------------------------------------

bool CostScalingCore::solve(Result* out, Stats* stats) {
  GM_CHECK(n_ > 0, "cost-scaling solve() without a network");
  const std::uint64_t n = static_cast<std::uint64_t>(n_);
  // Per-phase relabel budget. Theory bounds refine(ε) at 3n relabels
  // per node; the margin absorbs interleaved global updates. Blowing
  // it means the patched state is pathological (or a solver bug): the
  // caller falls back to a cold build.
  std::uint64_t budget = 6 * n * n + 16 * n + 64;
  if (last_was_patch_ && test_relabel_limit_ > 0)
    budget = test_relabel_limit_;

  long long eps = start_eps_;
  while (true) {
    bool balanced = true;
    for (int v = 0; v < n_; ++v)
      if (excess_[v] != 0) {
        balanced = false;
        break;
      }
    bool done_phase = false;
    if (balanced && price_refine(eps)) {
      ++stats->price_refinements;
      done_phase = true;
    }
    if (!done_phase) {
      // Arc fixing is sound only for a phase entered balanced: the
      // fixing theorem bounds *future* price movement by O(n·ε) per
      // remaining phase, which assumes each refine starts from an
      // ε-optimal flow. A phase with pending excesses (the cold
      // source injection, or a patch that cut capacity under flow)
      // can move prices across arbitrary cost barriers while routing
      // them, so fixing there would strand excess on fixed arcs and
      // force the fallback rebuild (refine returns false).
      if (balanced) fix_arcs(eps);
      if (!refine(eps, stats, budget)) {
        invalidate();
        return false;
      }
    }
    ++stats->phases;
    if (eps == 1) break;
    eps = std::max<long long>(1, eps / kAlpha);
  }

  for (int a = 0; a < static_cast<int>(head_.size()); a += 2)
    if (live(a) && fixed_[a]) ++stats->arcs_fixed;

  final_optimality_check();

  out->flow = eff_max_ - resid_[1];
  long long cost = 0;
  for (const int a : arc_of_ext_)
    cost += resid_[a ^ 1] * (cost_[a] / scale_);
  out->cost = cost;
  start_eps_ = 1;  // retained state is optimal until the next patch
  last_was_patch_ = false;
  return true;
}

void CostScalingCore::fix_arcs(long long eps) {
  // Fixing theorem, conservative margin: once |reduced cost| exceeds
  // Θ(n·ε), the arc's flow can no longer change for the rest of the
  // ladder (prices move O(n·ε) per phase and ε only shrinks), so scans
  // skip it. A negative-side fixed arc is necessarily saturated — the
  // refine() entry invariant keeps residual arcs above -ε > -threshold
  // — so skipping it in the saturation pass is sound. Backstopped by
  // final_optimality_check().
  const __int128 threshold =
      static_cast<__int128>(3 * kAlpha) * n_ * eps;
  for (int a = 0; a < static_cast<int>(head_.size()); a += 2) {
    if (!live(a) || fixed_[a]) continue;
    const __int128 cp = reduced_cost(a);
    if (cp > threshold || -cp > threshold)
      fixed_[a] = fixed_[a ^ 1] = 1;
  }
}

bool CostScalingCore::price_refine(long long eps) {
  // Bellman–Ford relaxation d(w) ≤ d(v) + cp(a) + ε over residual
  // arcs. A fixpoint certifies that p + d makes the *current* flow
  // ε-optimal, so the whole refine phase can be skipped — the common
  // case between phases once the flow stops changing, and the fast
  // path for incremental re-solves whose patch only nudged costs.
  dist_.assign(static_cast<std::size_t>(n_), 0);
  const int max_passes = std::min(n_, 64);
  for (int pass = 0; pass < max_passes; ++pass) {
    bool changed = false;
    for (int a = 0; a < static_cast<int>(head_.size()); ++a) {
      if (!live(a) || fixed_[a] || resid_[a] <= 0) continue;
      const long long nd = dist_[from(a)] + reduced_cost(a) + eps;
      if (nd < dist_[head_[a]]) {
        dist_[head_[a]] = nd;
        changed = true;
      }
    }
    if (!changed) {
      for (int v = 0; v < n_; ++v) price_[v] += dist_[v];
      return true;
    }
  }
  return false;
}

bool CostScalingCore::refine(long long eps, Stats* stats,
                             std::uint64_t relabel_budget) {
  // Entry invariant: every residual unfixed arc has cp ≥ -ε (cold:
  // prices 0 and costs ≥ 0; ladder: the previous phase ended ε'-
  // optimal with ε' ≥ ε/α... ≥ this ε; patched: ε = worst violation).
  // Step 1 — saturate negative-reduced-cost arcs so the preflow is
  // trivially 0-optimal where it has residual, creating excesses.
  for (int a = 0; a < static_cast<int>(head_.size()); ++a) {
    if (!live(a) || fixed_[a] || resid_[a] <= 0) continue;
    if (reduced_cost(a) < 0) {
      const long long d = resid_[a];
      resid_[a] = 0;
      resid_[a ^ 1] += d;
      excess_[from(a)] -= d;
      excess_[head_[a]] += d;
    }
  }

  // Step 2 — FIFO push/relabel until no node holds positive excess.
  fifo_.clear();
  std::size_t fifo_head = 0;
  in_fifo_.assign(static_cast<std::size_t>(n_), 0);
  for (int v = 0; v < n_; ++v) {
    cur_[v] = 0;
    if (excess_[v] > 0) {
      in_fifo_[v] = 1;
      fifo_.push_back(v);
    }
  }

  std::uint64_t pushes = 0;
  std::uint64_t relabels = 0;
  std::uint64_t since_global = 0;
  while (fifo_head < fifo_.size()) {
    const int u = fifo_[fifo_head++];
    in_fifo_[u] = 0;
    while (excess_[u] > 0) {
      auto& lst = adj_[u];
      int i = cur_[u];
      for (; i < static_cast<int>(lst.size()); ++i) {
        const int a = lst[i];
        if (resid_[a] <= 0 || fixed_[a]) continue;
        if (reduced_cost(a) < 0) {  // admissible
          const long long d = std::min(excess_[u], resid_[a]);
          const int v = head_[a];
          resid_[a] -= d;
          resid_[a ^ 1] += d;
          excess_[u] -= d;
          excess_[v] += d;
          ++pushes;
          if (excess_[v] > 0 && !in_fifo_[v]) {
            in_fifo_[v] = 1;
            fifo_.push_back(v);
          }
          if (excess_[u] == 0) break;
        }
      }
      cur_[u] = i;
      if (excess_[u] == 0) break;

      if (++relabels > relabel_budget) {
        stats->pushes += pushes;
        stats->relabels += relabels;
        return false;
      }
      long long best = LLONG_MIN;
      for (const int a : lst) {
        if (resid_[a] <= 0 || fixed_[a]) continue;
        const long long cand = price_[head_[a]] - cost_[a];
        if (cand > best) best = cand;
      }
      if (best == LLONG_MIN) {
        // No residual unfixed arc out of an active node: either the
        // fixing threshold was wrong or the network is infeasible.
        // Both are "rebuild cold" situations for a patched solve and
        // a hard error for a cold one (the caller decides).
        stats->pushes += pushes;
        stats->relabels += relabels;
        return false;
      }
      GM_CHECK(best > LLONG_MIN / 2, "cost-scaling price underflow");
      price_[u] = best - eps;
      cur_[u] = 0;
      if (++since_global >= static_cast<std::uint64_t>(n_)) {
        global_update(eps);
        ++stats->global_updates;
        since_global = 0;
      }
    }
  }
  stats->pushes += pushes;
  stats->relabels += relabels;
  return true;
}

void CostScalingCore::global_update(long long eps) {
  // Dial-bucket backward sweep from the deficit nodes with arc length
  // ⌊cp(a)/ε⌋ + 1 ≥ 0, truncated at 3n buckets; prices then drop by
  // d(v)·ε. Truncation preserves the cp ≥ -ε invariant (docs/solver.md
  // has the case analysis), and re-anchoring prices on
  // distance-to-deficit is what breaks long relabel stalls.
  const long long cap = 3LL * n_;
  if (static_cast<long long>(buckets_.size()) < cap + 1)
    buckets_.resize(static_cast<std::size_t>(cap + 1));
  for (auto& b : buckets_) b.clear();
  dist_.assign(static_cast<std::size_t>(n_), cap);
  for (int v = 0; v < n_; ++v)
    if (excess_[v] < 0) {
      dist_[v] = 0;
      buckets_[0].push_back(v);
    }
  for (long long k = 0; k < cap; ++k) {
    for (std::size_t i = 0; i < buckets_[k].size(); ++i) {
      const int v = buckets_[static_cast<std::size_t>(k)][i];
      if (dist_[v] != k) continue;  // stale entry
      for (const int out : adj_[v]) {
        const int a = out ^ 1;  // residual arc u → v
        if (resid_[a] <= 0 || fixed_[a]) continue;
        const int u = head_[out];
        if (dist_[u] <= k) continue;
        long long len = floor_div(reduced_cost(a), eps) + 1;
        if (len < 0) len = 0;  // cp < -ε cannot happen mid-refine
        long long nd = k + len;
        if (nd > cap) nd = cap;
        if (nd < dist_[u]) {
          dist_[u] = nd;
          if (nd < cap)
            buckets_[static_cast<std::size_t>(nd)].push_back(u);
        }
      }
    }
  }
  for (int v = 0; v < n_; ++v) {
    if (dist_[v] > 0) price_[v] -= dist_[v] * eps;
    cur_[v] = 0;
  }
}

void CostScalingCore::final_optimality_check() const {
  // Always-on O(V + E) certificate: balanced nodes plus cp ≥ -1 on
  // every residual arc (scaled costs) is exactly 1/(n+1)-optimality in
  // original costs — optimal, for integer costs. If arc fixing or a
  // patch were ever unsound this fails loudly instead of shipping a
  // silently suboptimal plan.
  for (int v = 0; v < n_; ++v)
    GM_CHECK(excess_[v] == 0,
             "cost-scaling: node " << v << " left unbalanced");
  for (int a = 0; a < static_cast<int>(head_.size()); ++a) {
    if (!live(a) || resid_[a] <= 0) continue;
    GM_CHECK(reduced_cost(a) >= -1,
             "cost-scaling: ε-optimality violated on arc " << a);
  }
}

long long CostScalingCore::flow_on(int ext_index) const {
  GM_CHECK(ext_index >= 0 &&
               ext_index < static_cast<int>(arc_of_ext_.size()),
           "cost-scaling flow_on: arc index out of range");
  return resid_[arc_of_ext_[static_cast<std::size_t>(ext_index)] ^ 1];
}

std::uint64_t CostScalingCore::bytes() const {
  std::uint64_t b = 0;
  b += head_.capacity() * sizeof(int);
  b += resid_.capacity() * sizeof(long long);
  b += cost_.capacity() * sizeof(long long);
  b += cap_.capacity() * sizeof(long long);
  b += fixed_.capacity();
  b += free_pairs_.capacity() * sizeof(int);
  b += arc_of_ext_.capacity() * sizeof(int);
  b += adj_.capacity() * sizeof(adj_[0]);
  for (const auto& lst : adj_) b += lst.capacity() * sizeof(int);
  b += price_.capacity() * sizeof(long long);
  b += excess_.capacity() * sizeof(long long);
  b += cur_.capacity() * sizeof(int);
  b += fifo_.capacity() * sizeof(int);
  b += in_fifo_.capacity();
  b += dist_.capacity() * sizeof(long long);
  b += buckets_.capacity() * sizeof(buckets_[0]);
  for (const auto& bucket : buckets_) b += bucket.capacity() * sizeof(int);
  b += match_scratch_.capacity() * sizeof(int);
  return b;
}

// ---------------------------------------------------------------------------
// MinCostFlow glue: the kCostScaling path of solve()
// ---------------------------------------------------------------------------

MinCostFlow::Result MinCostFlow::run_cost_scaling(NodeIdx s, NodeIdx t,
                                                  long long max_flow) {
  // Gather the externally added arcs in add order. Original capacity
  // is recovered as fwd + rev residual so the gather is correct even
  // on a network that already carries flow.
  ext_arcs_.clear();
  ext_arcs_.reserve(edge_refs_.size());
  for (const auto& [node, idx] : edge_refs_) {
    const Edge& fwd = graph_[node][idx];
    const Edge& rev = graph_[fwd.to][fwd.rev];
    ext_arcs_.push_back(CostScalingCore::ExtArc{
        node, fwd.to, fwd.capacity + rev.capacity, fwd.cost});
  }

  bool patched = incremental_ && scaling_.has_state() &&
                 scaling_.try_patch(node_count(), ext_arcs_, s, t,
                                    max_flow);
  if (!patched) scaling_.build(node_count(), ext_arcs_, s, t, max_flow);

  CostScalingCore::Result res{};
  CostScalingCore::Stats cs{};
  if (!scaling_.solve(&res, &cs)) {
    // The patched state was unusable (relabel budget blown — see
    // docs/solver.md fallback rules): rebuild cold and try once more.
    GM_CHECK(patched, "cost-scaling solve failed on a cold build");
    patched = false;
    scaling_.build(node_count(), ext_arcs_, s, t, max_flow);
    cs = CostScalingCore::Stats{};
    GM_CHECK(scaling_.solve(&res, &cs),
             "cost-scaling solve failed on a cold build");
  }
  if (patched) {
    ++incremental_accepts_;
    last_stats_.incremental_accepts = 1;
  } else {
    ++incremental_rebuilds_;
    last_stats_.incremental_rebuilds = 1;
  }
  last_stats_.cs_phases = cs.phases;
  last_stats_.cs_pushes = cs.pushes;
  last_stats_.cs_relabels = cs.relabels;
  last_stats_.cs_price_refinements = cs.price_refinements;
  last_stats_.cs_global_updates = cs.global_updates;
  last_stats_.cs_arcs_fixed = cs.arcs_fixed;
  last_stats_.arena_bytes = arena_bytes();

  // Write the flows back into the residual representation so
  // flow_on(), the planner demux, and provenance work unchanged.
  for (std::size_t i = 0; i < edge_refs_.size(); ++i) {
    const auto [node, idx] = edge_refs_[i];
    Edge& fwd = graph_[node][idx];
    Edge& rev = graph_[fwd.to][fwd.rev];
    const long long flow = scaling_.flow_on(static_cast<int>(i));
    fwd.capacity = ext_arcs_[i].cap - flow;
    rev.capacity = flow;
  }
  return Result{res.flow, res.cost};
}

}  // namespace gm::core
