#pragma once
// Cost-scaling min-cost flow core (Goldberg–Tarjan ε-scaling
// push-relabel), the engine behind MinCostFlow::SolverKind::kCostScaling.
// See docs/solver.md for the full writeup; the short version:
//
//  - Costs are scaled by (n + 1) so that terminating the ε-ladder at
//    ε = 1 certifies (1/(n+1))-optimality in original costs, which for
//    integer costs is exact optimality.
//  - The max-flow objective is folded into one *slack arc* s→t with
//    capacity equal to the deliverable supply and a cost C_big larger
//    than any simple real path. Supplies +b at s / −b at t then make
//    the min-cost circulation lexicographically (max real flow, then
//    min real cost) — exactly the successive-shortest-path objective —
//    and keep every patched network trivially feasible, because an
//    excess can always drain through the slack arc.
//  - refine(ε) saturates residual arcs with negative reduced cost,
//    then FIFO-discharges active nodes with push/relabel. Between
//    phases a Bellman–Ford *price refinement* pass tries to prove the
//    current flow already ε-optimal (skipping the phase), *arc fixing*
//    drops arcs whose reduced cost is so large their flow can no
//    longer change (only for phases entered with zero excess — the
//    fixing theorem's price-movement bound does not cover routing
//    pending excesses), and a Dial-bucket *global potentials update*
//    re-anchors prices on distance-to-deficit when relabels stall.
//  - Incremental re-optimization: try_patch() diffs a new arc list
//    against the retained residual network by (from, to) endpoint key,
//    patches capacities/costs/additions/removals in place (converting
//    stranded flow into node excesses), adjusts the supply, and lets
//    solve() re-refine from the retained prices. It refuses (returning
//    false, caller rebuilds cold) when the topology diff is too large
//    for the patch to be worth it, or when the shape changed.
//
// This class is deliberately independent of MinCostFlow's
// arena/adjacency representation: it keeps its own forward-star arrays
// tuned for the scan-heavy push-relabel loops, plus the retained state
// (prices, residuals) that incremental re-optimization lives off.

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace gm::core {

class CostScalingCore {
 public:
  /// One externally visible arc, in MinCostFlow::add_edge() order.
  struct ExtArc {
    int from = 0;
    int to = 0;
    long long cap = 0;
    long long cost = 0;  ///< original (unscaled) cost, >= 0
  };

  struct Result {
    long long flow = 0;  ///< real flow delivered s→t (slack excluded)
    long long cost = 0;  ///< original-cost objective (slack excluded)
  };

  /// Work counters for one solve(), accumulated by the caller into
  /// MinCostFlow::SolveStats (the cs_* fields).
  struct Stats {
    std::uint64_t phases = 0;
    std::uint64_t pushes = 0;
    std::uint64_t relabels = 0;
    std::uint64_t price_refinements = 0;  ///< phases proved done by B-F
    std::uint64_t global_updates = 0;
    std::uint64_t arcs_fixed = 0;  ///< arc pairs fixed at solve exit
  };

  /// True once build() has run; try_patch() needs retained state.
  bool has_state() const { return n_ > 0; }
  void invalidate() { n_ = 0; }

  /// Cold (re)build: fresh residual network, zero prices, supply
  /// excess at s / deficit at t. Always succeeds.
  void build(int node_count, const std::vector<ExtArc>& arcs, int s,
             int t, long long max_flow);

  /// Incremental patch of the retained residual network against a new
  /// arc list. Returns false — leaving the retained state *unmodified*
  /// — when no state is retained, the node count or terminals changed,
  /// the arc-endpoint diff is too large (> max(8, arcs/4) adds +
  /// removes), or the new maximum cost invalidates the slack-arc
  /// bound. On success the residual graph, excesses, supply, and the
  /// restart ε are updated in place and solve() re-refines from the
  /// retained prices.
  bool try_patch(int node_count, const std::vector<ExtArc>& arcs, int s,
                 int t, long long max_flow);

  /// Runs the ε-ladder down to ε = 1 and extracts the result. Returns
  /// false if the per-phase relabel budget was exceeded — only
  /// possible after a pathological try_patch(); the caller must then
  /// build() cold and re-solve. State is invalidated on failure.
  bool solve(Result* out, Stats* stats);

  /// Flow on external arc `ext_index` after a successful solve().
  long long flow_on(int ext_index) const;

  /// Bytes of retained solver state (for arena accounting).
  std::uint64_t bytes() const;

  /// Test-only: overrides the per-phase relabel budget for solves that
  /// follow a successful try_patch(), to force the cold-rebuild
  /// fallback path. 0 restores the theoretical budget.
  void set_test_relabel_limit(std::uint64_t limit) {
    test_relabel_limit_ = limit;
  }

 private:
  static constexpr long long kAlpha = 8;  ///< ε-ladder division factor

  long long reduced_cost(int arc) const {
    return cost_[arc] + price_[from(arc)] - price_[head_[arc]];
  }
  int from(int arc) const { return head_[arc ^ 1]; }
  bool live(int arc) const { return head_[arc] >= 0; }

  int alloc_pair();  ///< new or recycled fwd arc id (pair = id, id^1)
  void add_pair(int arc, int u, int v, long long cap,
                long long scaled_cost);
  void remove_pair(int arc);  ///< returns flow to excesses, frees ids
  void set_supply(long long eff);
  long long compute_restart_eps() const;
  void fix_arcs(long long eps);
  bool price_refine(long long eps);
  bool refine(long long eps, Stats* stats, std::uint64_t relabel_budget);
  void global_update(long long eps);
  void final_optimality_check() const;

  int n_ = 0;
  int s_ = -1;
  int t_ = -1;
  long long scale_ = 1;       ///< cost scale factor, n + 1
  long long c_big_ = 0;       ///< slack-arc cost (unscaled)
  long long eff_max_ = 0;     ///< supply routed s→t (slack formulation)
  long long start_eps_ = 1;   ///< ladder entry point for next solve()
  bool last_was_patch_ = false;  ///< next solve() continues a patch
  std::uint64_t test_relabel_limit_ = 0;

  // Forward-star arc arrays; arc a and a^1 form a fwd/rev pair. The
  // slack arc is always pair (0, 1). head_ < 0 marks a freed slot.
  std::vector<int> head_;
  std::vector<long long> resid_;
  std::vector<long long> cost_;  ///< scaled; antisymmetric in a pair
  std::vector<long long> cap_;   ///< fwd: original capacity, rev: 0
  std::vector<unsigned char> fixed_;
  std::vector<int> free_pairs_;           ///< freed fwd arc ids
  std::vector<int> arc_of_ext_;           ///< ext index → fwd arc id
  std::vector<std::vector<int>> adj_;     ///< node → out arc ids

  std::vector<long long> price_;
  std::vector<long long> excess_;
  std::vector<int> cur_;  ///< current-arc scan position per node

  // Scratch (reused across solves; counted by bytes()).
  std::vector<int> fifo_;
  std::vector<unsigned char> in_fifo_;
  std::vector<long long> dist_;                   ///< B-F / Dial labels
  std::vector<std::vector<int>> buckets_;         ///< Dial buckets
  std::unordered_map<std::uint64_t, std::vector<int>> patch_index_;
  std::vector<int> match_scratch_;
};

}  // namespace gm::core
