#include <algorithm>
#include <cmath>

#include "core/policies.hpp"
#include "obs/recorder.hpp"
#include "util/assert.hpp"

namespace gm::core {

OpportunisticPolicy::OpportunisticPolicy(double deferral_fraction,
                                         std::uint64_t seed)
    : deferral_fraction_(deferral_fraction), rng_(seed) {
  GM_CHECK(deferral_fraction >= 0.0 && deferral_fraction <= 1.0,
           "deferral fraction must be in [0, 1]");
}

std::uint8_t OpportunisticPolicy::admit(const storage::BackgroundTask&) {
  return rng_.bernoulli(deferral_fraction_) ? kTagDelayed : 0;
}

SlotDecision OpportunisticPolicy::decide(const SlotContext& ctx) {
  SlotDecision decision;
  const Watts green_w =
      ctx.green_forecast_w.empty() ? 0.0 : ctx.green_forecast_w[0];
  const double util_cap =
      facts_.total_nodes * facts_.max_utilization_per_node;
  const int slot_cap = facts_.total_nodes * facts_.task_slots_per_node;

  // Estimated cluster power for a candidate load (the same linear
  // model the engine integrates, so the comparison is honest).
  const auto power_for = [&](double util, int tasks) {
    const int nodes = nodes_for_load(util, tasks);
    const Watts spread =
        facts_.node_peak_w - facts_.node_idle_floor_w;
    return nodes * facts_.node_idle_floor_w + spread * util;
  };

  double util = ctx.foreground_util;
  int count = 0;

  obs::Recorder* rec = obs::current_recorder();
  const bool provenance = rec && rec->provenance();
  const auto emit = [&](const PendingTask& p, bool ran,
                        const char* reason) {
    obs::DecisionSample d;
    d.slot = ctx.slot;
    d.t = ctx.start;
    d.policy = name();
    d.task = p.task.id;
    d.action = ran ? "run" : "defer";
    d.reason = reason;
    if (ran) d.chosen_offset = 0;
    d.deadline_slack = static_cast<std::int64_t>(std::floor(
        p.slack(ctx.start) / facts_.slot_length_s));
    rec->record_decision(d);
  };

  // Mandatory set: urgent tasks and tasks that lost the delay lottery.
  for (const auto& p : ctx.pending) {
    const bool delayed = p.policy_tag == kTagDelayed;
    const bool must = p.urgent(ctx.start, facts_.slot_length_s);
    if (!delayed || must) {
      if (count >= slot_cap || util + p.task.utilization > util_cap) {
        if (provenance) emit(p, false, "capacity");
        continue;
      }
      decision.run_tasks.push_back(p.task.id);
      util += p.task.utilization;
      ++count;
      if (provenance) emit(p, true, must ? "urgent" : "mandatory");
    }
  }

  // Delayed tasks join only while the green supply covers the
  // resulting cluster power (deadline order = pending order).
  for (const auto& p : ctx.pending) {
    const bool delayed = p.policy_tag == kTagDelayed;
    const bool must = p.urgent(ctx.start, facts_.slot_length_s);
    if (!delayed || must) continue;
    if (count >= slot_cap || util + p.task.utilization > util_cap) {
      if (provenance) emit(p, false, "capacity");
      continue;
    }
    if (power_for(util + p.task.utilization, count + 1) > green_w) {
      if (provenance) emit(p, false, "awaiting-green");
      continue;
    }
    decision.run_tasks.push_back(p.task.id);
    util += p.task.utilization;
    ++count;
    if (provenance) emit(p, true, "run-on-green");
  }

  decision.target_active_nodes = nodes_for_load(util, count);
  // Eco mode when the sun cannot even carry the idle floor: whatever
  // runs now is grid-powered, so run it efficiently.
  decision.eco_speed = green_w < facts_.node_idle_floor_w;
  return decision;
}

}  // namespace gm::core
