#pragma once
// Concrete scheduler policies. See policy.hpp for the interface and
// DESIGN.md §3.4 for the GreenMatch planning algorithm.

#include <cstdint>
#include <optional>
#include <unordered_map>

#include "core/mincost_flow.hpp"
#include "core/policy.hpp"
#include "util/rng.hpp"

namespace gm::core {

/// Energy-oblivious baseline: run every pending task as soon as
/// capacity allows. With a battery attached this is the lineage's
/// "ESD-only" configuration — all renewable-awareness lives in the
/// passive charge-surplus/discharge-deficit battery loop.
class AsapPolicy final : public SchedulerPolicy {
 public:
  const char* name() const override { return "asap"; }
  SlotDecision decide(const SlotContext& ctx) override;
};

/// Static time-window baseline: background tasks run only inside a
/// fixed daily window (default 9h–17h, the naive "solar hours" rule);
/// urgent tasks override the window.
class NightShiftPolicy final : public SchedulerPolicy {
 public:
  NightShiftPolicy(double window_start_h, double window_end_h);
  const char* name() const override { return "night-shift"; }
  SlotDecision decide(const SlotContext& ctx) override;

 private:
  double start_h_;
  double end_h_;
};

/// Opportunistic delay-until-green: a `deferral_fraction` lottery
/// marks tasks as delayed at admission; delayed tasks wait until the
/// current green surplus can power them (or until their slack runs
/// out), the rest behave like ASAP. Reactive: looks only at the
/// current slot's forecast.
class OpportunisticPolicy final : public SchedulerPolicy {
 public:
  OpportunisticPolicy(double deferral_fraction, std::uint64_t seed);
  const char* name() const override { return "opportunistic"; }
  std::uint8_t admit(const storage::BackgroundTask& task) override;
  SlotDecision decide(const SlotContext& ctx) override;

  static constexpr std::uint8_t kTagDelayed = 1;

 private:
  double deferral_fraction_;
  Rng rng_;
};

/// GreenMatch: plans task placement over a forecast horizon by solving
/// a min-cost flow that matches task slot-units to time slots, where
/// green-covered units are free and grid-covered units pay a brown
/// penalty. `greedy` swaps the flow solver for an
/// earliest-greenest-fit heuristic (the ablation variant).
class GreenMatchPolicy final : public SchedulerPolicy {
 public:
  GreenMatchPolicy(int horizon_slots, bool greedy, bool replan_every_slot,
                   bool battery_aware = false, bool carbon_aware = false);
  const char* name() const override {
    return greedy_ ? "greenmatch-greedy" : "greenmatch";
  }
  SlotDecision decide(const SlotContext& ctx) override;

  /// Cumulative planner CPU time (telemetry for the report).
  double solve_ms_total() const { return solve_ms_total_; }
  /// Slots answered from the cached plan (replan_every_slot = false).
  std::uint64_t plan_cache_hits() const { return plan_cache_hits_; }

 private:
  SlotDecision plan_flow(const SlotContext& ctx);
  SlotDecision plan_greedy(const SlotContext& ctx);
  /// Power committed to foreground work + its coverage floor in
  /// horizon slot j.
  Watts committed_power_w(const SlotContext& ctx, std::size_t j) const;
  /// Green slot-units available per horizon slot after foreground and
  /// coverage-floor power are served.
  std::vector<long long> green_units(const SlotContext& ctx,
                                     Joules unit_energy_j) const;
  /// Battery trajectory under the foreground-priority program (no
  /// background tasks), per slot boundary 0..horizon.
  std::vector<Joules> project_battery(const SlotContext& ctx,
                                      std::size_t horizon) const;
  /// Grid-tier cost for slot j (carbon-scaled when carbon-aware).
  long long brown_cost_for_slot(const SlotContext& ctx,
                                std::size_t j) const;

  /// Serves the current slot from the cached multi-slot plan when it
  /// is still valid (no new tasks since planning, within the replan
  /// interval). Returns nullopt when a fresh solve is needed.
  std::optional<SlotDecision> cached_decision(const SlotContext& ctx);

  int horizon_;
  bool greedy_;
  bool replan_every_slot_;
  bool battery_aware_;
  bool carbon_aware_;
  double solve_ms_total_ = 0.0;
  std::uint64_t plan_cache_hits_ = 0;

  /// The matching network, kept across plan calls as an arena: the
  /// planner rebuilds the edges every solve, but reset() preserves the
  /// adjacency-list and Dijkstra scratch allocations, so steady-state
  /// planning is allocation-free (see mincost_flow.hpp).
  MinCostFlow flow_{1};

  // Cached plan state (replan_every_slot_ == false).
  SlotIndex plan_base_ = -1;
  std::unordered_map<storage::TaskId, std::vector<int>> plan_offsets_;
};

}  // namespace gm::core
