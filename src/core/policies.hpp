#pragma once
// Concrete scheduler policies. See policy.hpp for the interface and
// DESIGN.md §3.4 for the GreenMatch planning algorithm.

#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "core/mincost_flow.hpp"
#include "core/policy.hpp"
#include "util/rng.hpp"

namespace gm {
class ThreadPool;
}

namespace gm::core {

/// Energy-oblivious baseline: run every pending task as soon as
/// capacity allows. With a battery attached this is the lineage's
/// "ESD-only" configuration — all renewable-awareness lives in the
/// passive charge-surplus/discharge-deficit battery loop.
class AsapPolicy final : public SchedulerPolicy {
 public:
  const char* name() const override { return "asap"; }
  SlotDecision decide(const SlotContext& ctx) override;
};

/// Static time-window baseline: background tasks run only inside a
/// fixed daily window (default 9h–17h, the naive "solar hours" rule);
/// urgent tasks override the window.
class NightShiftPolicy final : public SchedulerPolicy {
 public:
  NightShiftPolicy(double window_start_h, double window_end_h);
  const char* name() const override { return "night-shift"; }
  SlotDecision decide(const SlotContext& ctx) override;

 private:
  double start_h_;
  double end_h_;
};

/// Opportunistic delay-until-green: a `deferral_fraction` lottery
/// marks tasks as delayed at admission; delayed tasks wait until the
/// current green surplus can power them (or until their slack runs
/// out), the rest behave like ASAP. Reactive: looks only at the
/// current slot's forecast.
class OpportunisticPolicy final : public SchedulerPolicy {
 public:
  OpportunisticPolicy(double deferral_fraction, std::uint64_t seed);
  const char* name() const override { return "opportunistic"; }
  std::uint8_t admit(const storage::BackgroundTask& task) override;
  SlotDecision decide(const SlotContext& ctx) override;

  static constexpr std::uint8_t kTagDelayed = 1;

 private:
  double deferral_fraction_;
  Rng rng_;
};

/// GreenMatch: plans task placement over a forecast horizon by solving
/// a min-cost flow that matches task slot-units to time slots, where
/// green-covered units are free and grid-covered units pay a brown
/// penalty. `greedy` swaps the flow solver for an
/// earliest-greenest-fit heuristic (the ablation variant).
///
/// The flow network is built over *task classes*, not tasks: pending
/// tasks with the same planner-visible signature (units needed,
/// feasible horizon, beyond-horizon capacity) are interchangeable to
/// the matcher, so one class node with multiplied capacities replaces
/// their per-task nodes and the solved class flow is dealt back to
/// members round-robin in deadline order. Network size scales with
/// the number of distinct signatures instead of the pending-pool
/// depth (see plan_flow).
class GreenMatchPolicy final : public SchedulerPolicy {
 public:
  GreenMatchPolicy(int horizon_slots, bool greedy, bool replan_every_slot,
                   bool battery_aware = false, bool carbon_aware = false);
  ~GreenMatchPolicy() override;
  const char* name() const override {
    return greedy_ ? "greenmatch-greedy" : "greenmatch";
  }
  SlotDecision decide(const SlotContext& ctx) override;

  /// Cumulative planner wall time (telemetry for the report). Under
  /// sharding this is the orchestration wall clock of plan_sharded —
  /// what the slot actually waited — not the sum of per-shard CPU
  /// (that lives in shard_stats()).
  double solve_ms_total() const { return solve_ms_total_; }
  /// Slots answered from the cached plan (replan_every_slot = false),
  /// summed over the per-shard sub-planners when sharded.
  std::uint64_t plan_cache_hits() const {
    std::uint64_t hits = plan_cache_hits_;
    for (const auto& s : shard_planners_) hits += s->plan_cache_hits_;
    return hits;
  }

  /// Splits planning into `shards` independent subproblems keyed by
  /// placement group (core/shard.hpp), solved in parallel on an
  /// internal thread pool and merged with a cross-shard green-headroom
  /// reconciliation pass. `1` (the default) is the flat planner,
  /// byte-identically. Greedy mode ignores sharding (the heuristic is
  /// already O(tasks × horizon)).
  void set_shards(int shards);
  int shards() const { return shards_; }
  /// Residual-pass re-solves triggered by the reconciliation ledger.
  std::uint64_t reconciliation_solves() const {
    return reconciliation_solves_;
  }

  /// Per-shard planner telemetry (empty when shards() == 1).
  struct ShardStats {
    int shard = 0;
    double solve_ms = 0.0;      ///< cumulative CPU inside this shard
    std::uint64_t solves = 0;   ///< flow solves this shard ran
    int last_tasks = 0;         ///< pending tasks in the last plan
    int last_classes = 0;       ///< distinct signatures in it
  };
  std::vector<ShardStats> shard_stats() const;

  /// Telemetry for the last plan_flow solve (tests, benches).
  struct PlanStats {
    long long flow = 0;        ///< slot-units placed
    long long cost = 0;        ///< objective value of the matching
    int tasks = 0;             ///< pending tasks seen by the planner
    int classes = 0;           ///< distinct task signatures
    int network_nodes = 0;     ///< nodes in the flow network
    bool warm_start = false;   ///< previous potentials were accepted
    bool incremental = false;  ///< solve patched the retained network
  };
  const PlanStats& last_plan_stats() const { return plan_stats_; }

  /// Ablation / equivalence-test hook: disables task-class grouping so
  /// plan_flow builds the one-node-per-task network (every task its
  /// own singleton class — edge-for-edge the pre-aggregation form).
  /// Deliberately NOT reachable from the config-file key space.
  void set_aggregation(bool on) { aggregate_ = on; }
  bool aggregation() const { return aggregate_; }

  /// Swaps the min-cost flow algorithm under the planner (see
  /// MinCostFlow::SolverKind and docs/solver.md). kCostScaling enables
  /// incremental re-optimization between slots and pads the class node
  /// range so consecutive plans keep a stable node layout; the default
  /// SSP path is byte-identical to previous releases. Test/bench-only:
  /// reachable via PolicyConfig::cost_scaling_planner, not the
  /// config-file key space.
  void set_solver(MinCostFlow::SolverKind kind);
  MinCostFlow::SolverKind solver() const { return flow_.solver(); }

  /// Warm-start acceptance counters of the underlying solver(s) —
  /// summed over the per-shard sub-planners when sharded.
  std::uint64_t warm_accepts() const {
    std::uint64_t n = flow_.warm_accepts();
    for (const auto& s : shard_planners_) n += s->flow_.warm_accepts();
    return n;
  }
  std::uint64_t warm_rejects() const {
    std::uint64_t n = flow_.warm_rejects();
    for (const auto& s : shard_planners_) n += s->flow_.warm_rejects();
    return n;
  }

  /// Incremental re-optimization counters of the underlying solver(s)
  /// (zero under the default SSP solver); summed over shards.
  std::uint64_t incremental_accepts() const {
    std::uint64_t n = flow_.incremental_accepts();
    for (const auto& s : shard_planners_)
      n += s->flow_.incremental_accepts();
    return n;
  }
  std::uint64_t incremental_rebuilds() const {
    std::uint64_t n = flow_.incremental_rebuilds();
    for (const auto& s : shard_planners_)
      n += s->flow_.incremental_rebuilds();
    return n;
  }

  /// Cumulative solver work across every plan_flow solve of this
  /// policy's lifetime — the run-level view of
  /// MinCostFlow::SolveStats (which is per-solve). Fed into the run
  /// report and metrics registry by the engine at finalize.
  struct SolverTotals {
    std::uint64_t solves = 0;
    std::uint64_t dijkstra_runs = 0;
    std::uint64_t dijkstra_pops = 0;
    std::uint64_t dijkstra_relaxations = 0;
    std::uint64_t augmenting_paths = 0;
    std::uint64_t arena_bytes_peak = 0;
    // Cost-scaling work (zero under the default SSP solver):
    std::uint64_t cs_phases = 0;
    std::uint64_t cs_pushes = 0;
    std::uint64_t cs_relabels = 0;
    std::uint64_t cs_price_refinements = 0;
    std::uint64_t cs_global_updates = 0;
    std::uint64_t incremental_accepts = 0;
    std::uint64_t incremental_rebuilds = 0;
  };
  /// Aggregated over the flat planner and every shard sub-planner
  /// (counter sum, arena peak max).
  SolverTotals solver_totals() const;
  /// Per-solve stats of the most recent plan_flow (classes stamped).
  const MinCostFlow::SolveStats& last_solve_stats() const {
    return flow_.last_stats();
  }

 private:
  SlotDecision plan_flow(const SlotContext& ctx);
  SlotDecision plan_greedy(const SlotContext& ctx);
  /// shards_ > 1 flow path: partition → parallel per-shard plan_flow →
  /// green-headroom reconciliation → merge (see docs/scheduling.md).
  SlotDecision plan_sharded(const SlotContext& ctx);
  /// Lazily builds the per-shard sub-planners (each with its own
  /// retained flow network, warm potentials, and incremental
  /// cost-scaling state) and the solve pool.
  void ensure_shard_planners();
  /// Power committed to foreground work + its coverage floor in
  /// horizon slot j.
  Watts committed_power_w(const SlotContext& ctx, std::size_t j) const;
  /// Green slot-units available per horizon slot after foreground and
  /// coverage-floor power are served.
  std::vector<long long> green_units(const SlotContext& ctx,
                                     Joules unit_energy_j) const;
  /// Battery trajectory under the foreground-priority program (no
  /// background tasks), per slot boundary 0..horizon.
  std::vector<Joules> project_battery(const SlotContext& ctx,
                                      std::size_t horizon) const;
  /// Grid-tier cost for slot j (carbon-scaled when carbon-aware).
  /// `carbon_mean` is the horizon mean of ctx.grid_carbon_g_per_kwh,
  /// hoisted out by the caller so a plan is O(h), not O(h²), in it.
  long long brown_cost_for_slot(const SlotContext& ctx, std::size_t j,
                                double carbon_mean) const;
  /// Mean forecast carbon intensity over the horizon (0 when the
  /// policy is not carbon-aware or no forecast is present).
  double horizon_carbon_mean(const SlotContext& ctx) const;
  /// Candidate warm-start potentials for this plan's network, derived
  /// from the previous solve's potentials shifted by the elapsed
  /// slots and clamped edge-type-by-edge-type so every reduced cost
  /// stays non-negative by construction. Returns false when no usable
  /// previous solve exists (first plan, battery mode, time moved
  /// backwards).
  bool build_warm_potentials(const SlotContext& ctx, int n_classes,
                             int h, int slot_base, int g_base,
                             int beyond, int sink);
  /// Records the solved network's potentials for the next plan's warm
  /// start.
  void store_potentials(const SlotContext& ctx, int h, int slot_base,
                        int g_base, int beyond, int sink);

  /// Serves the current slot from the cached multi-slot plan when it
  /// is still valid (no new tasks since planning, within the replan
  /// interval). Returns nullopt when a fresh solve is needed.
  std::optional<SlotDecision> cached_decision(const SlotContext& ctx);

  int horizon_;
  bool greedy_;
  bool replan_every_slot_;
  bool battery_aware_;
  bool carbon_aware_;
  bool aggregate_ = true;
  double solve_ms_total_ = 0.0;
  std::uint64_t plan_cache_hits_ = 0;
  PlanStats plan_stats_;
  SolverTotals solver_totals_;

  // --- sharding (tentpole of PR 9) -----------------------------------
  int shards_ = 1;
  /// This planner's shard id when it is a sub-planner (-1 for the
  /// flat/outer planner); stamped into provenance records.
  int shard_id_ = -1;
  /// One retained planner per shard: each keeps its own flow arena,
  /// warm potentials, incremental cost-scaling residual network, and
  /// plan cache across slots, so sharding composes with every
  /// between-slot reuse path the flat planner has.
  std::vector<std::unique_ptr<GreenMatchPolicy>> shard_planners_;
  std::unique_ptr<ThreadPool> pool_;
  std::uint64_t reconciliation_solves_ = 0;
  std::unordered_set<storage::TaskId> merge_run_set_;  // merge scratch

  // Per-plan supply readback (filled by plan_flow, O(horizon)):
  // unclaimed green headroom and grid draw per horizon slot, consumed
  // by the reconciliation pass of the *parent* planner.
  SlotIndex last_plan_slot_ = -1;
  Joules last_unit_energy_j_ = 0.0;
  std::vector<double> last_green_spare_w_;
  std::vector<long long> last_brown_units_;

  /// The matching network, kept across plan calls as an arena: the
  /// planner rebuilds the edges every solve, but reset() preserves the
  /// adjacency-list and Dijkstra scratch allocations, so steady-state
  /// planning is allocation-free (see mincost_flow.hpp).
  MinCostFlow flow_{1};

  /// One aggregated planner node: every member task contributes
  /// `units` source capacity and one unit of per-slot capacity for
  /// slots [0, jmax). Members are pending-pool indices in deadline
  /// order — the order class flow is dealt back out in.
  struct TaskClass {
    long long units = 0;
    std::size_t jmax = 0;
    long long beyond_cap = 0;
    int slot_edge0 = -1;  ///< edge id of class→slot_0 (ids contiguous)
    int beyond_edge = -1;  ///< edge id of class→beyond (provenance)
    std::vector<std::uint32_t> members;
  };
  std::vector<TaskClass> classes_;     // plan scratch
  std::vector<char> run_mask_;         // plan scratch (per task)
  std::vector<char> slot_taken_;       // greedy scratch (per slot)

  // Previous-solve potentials by node role (non-battery networks),
  // consumed by build_warm_potentials on the next plan.
  bool have_potentials_ = false;
  SlotIndex potentials_slot_ = -1;
  long long prev_class_pot_ = 0;
  long long prev_beyond_pot_ = 0;
  long long prev_sink_pot_ = 0;
  std::vector<long long> prev_slot_pot_;
  std::vector<long long> prev_g_pot_;
  std::vector<long long> warm_scratch_;

  // Cached plan state (replan_every_slot_ == false).
  SlotIndex plan_base_ = -1;
  std::unordered_map<storage::TaskId, std::vector<int>> plan_offsets_;
};

}  // namespace gm::core
