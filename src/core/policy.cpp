#include "core/policy.hpp"

#include <cmath>

#include "core/policies.hpp"
#include "util/assert.hpp"

namespace gm::core {

const char* policy_kind_name(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kAsap: return "asap";
    case PolicyKind::kOpportunistic: return "opportunistic";
    case PolicyKind::kGreenMatch: return "greenmatch";
    case PolicyKind::kGreenMatchGreedy: return "greenmatch-greedy";
    case PolicyKind::kNightShift: return "night-shift";
  }
  return "?";
}

void PolicyConfig::validate() const {
  GM_CHECK(deferral_fraction >= 0.0 && deferral_fraction <= 1.0,
           "deferral fraction must be in [0, 1]");
  GM_CHECK(horizon_slots >= 1, "planning horizon must be >= 1 slot");
  GM_CHECK(window_start_h >= 0.0 && window_end_h <= 24.0 &&
               window_start_h < window_end_h,
           "invalid night-shift window");
  GM_CHECK(shards >= 1, "scheduler.shards must be >= 1");
}

int SchedulerPolicy::nodes_for_load(double total_util,
                                    int running_tasks) const {
  GM_ASSERT(facts_.total_nodes > 0);
  const double cap = facts_.max_utilization_per_node;
  const int by_util =
      static_cast<int>(std::ceil(total_util / std::max(cap, 1e-9)));
  const int by_slots =
      facts_.task_slots_per_node > 0
          ? (running_tasks + facts_.task_slots_per_node - 1) /
                facts_.task_slots_per_node
          : 0;
  int nodes = std::max(by_util, by_slots);
  nodes = std::max(nodes, facts_.min_nodes_for_coverage);
  return std::min(nodes, facts_.total_nodes);
}

std::unique_ptr<SchedulerPolicy> make_policy(const PolicyConfig& config) {
  config.validate();
  switch (config.kind) {
    case PolicyKind::kAsap:
      return std::make_unique<AsapPolicy>();
    case PolicyKind::kOpportunistic:
      return std::make_unique<OpportunisticPolicy>(
          config.deferral_fraction, config.seed);
    case PolicyKind::kGreenMatch: {
      auto policy = std::make_unique<GreenMatchPolicy>(
          config.horizon_slots, /*greedy=*/false,
          config.replan_every_slot, config.battery_aware,
          config.carbon_aware);
      policy->set_aggregation(config.aggregate_planner);
      if (config.cost_scaling_planner)
        policy->set_solver(MinCostFlow::SolverKind::kCostScaling);
      policy->set_shards(config.shards);
      return policy;
    }
    case PolicyKind::kGreenMatchGreedy:
      return std::make_unique<GreenMatchPolicy>(
          config.horizon_slots, /*greedy=*/true,
          config.replan_every_slot, config.battery_aware,
          config.carbon_aware);
    case PolicyKind::kNightShift:
      return std::make_unique<NightShiftPolicy>(config.window_start_h,
                                                config.window_end_h);
  }
  GM_UNREACHABLE("unknown policy kind");
}

}  // namespace gm::core
