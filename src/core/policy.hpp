#pragma once
// Scheduler policy interface. Once per slot the engine presents the
// policy with the state it may legally observe — forecasted renewable
// supply over the horizon, battery state, foreground demand, and the
// pool of pending deferrable tasks — and the policy answers with a
// power-gear target and the set of tasks to run this slot. The engine
// (power manager) enforces feasibility: coverage, capacity, urgency.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "energy/battery.hpp"
#include "storage/types.hpp"
#include "util/time_types.hpp"
#include "util/units.hpp"

namespace gm::core {

/// A released, not-yet-finished background task as the policy sees it.
struct PendingTask {
  storage::BackgroundTask task;
  Seconds remaining_s = 0.0;
  bool running = false;            ///< ran in the previous slot
  storage::NodeId assigned_node = storage::kInvalidNode;
  /// Policy-private tag set at admission (e.g. "delayed" lottery in
  /// the opportunistic policy). Engine preserves it.
  std::uint8_t policy_tag = 0;

  Seconds slack(SimTime now) const {
    return static_cast<Seconds>(task.deadline - now) - remaining_s;
  }
  bool urgent(SimTime now, Seconds slot_len) const {
    return slack(now) < slot_len;
  }
};

/// Static facts the policy may use (set once at run start).
struct ClusterFacts {
  int total_nodes = 0;
  int min_nodes_for_coverage = 0;
  int task_slots_per_node = 0;
  Watts node_idle_floor_w = 0.0;  ///< power of an on, unloaded node
  Watts node_peak_w = 0.0;
  Seconds slot_length_s = 3600.0;
  Joules node_boot_energy_j = 0.0;
  double max_utilization_per_node = 0.95;
};

/// Per-slot observation.
struct SlotContext {
  SlotIndex slot = 0;
  SimTime start = 0;
  SimTime end = 0;
  /// Forecast average green power for this and the following slots
  /// (index 0 = current slot). Length = policy horizon.
  std::vector<Watts> green_forecast_w;
  Joules battery_stored_j = 0.0;
  Joules battery_usable_capacity_j = 0.0;
  Watts battery_max_charge_w = 0.0;
  Watts battery_max_discharge_w = 0.0;
  double battery_charge_efficiency = 1.0;
  /// Grid carbon intensity (gCO2e/kWh) per horizon slot; used by the
  /// carbon-aware matcher.
  std::vector<double> grid_carbon_g_per_kwh;
  /// Foreground demand this slot, in node-utilization units
  /// (node-seconds of work per second of wall time).
  double foreground_util = 0.0;
  /// Forecast of foreground utilization over the horizon (index 0 =
  /// current slot; the engine knows the trace, modeling the
  /// statistical demand estimate the original system would keep).
  std::vector<double> foreground_util_forecast;
  int currently_active_nodes = 0;
  /// Open-system mode only (arrivals.enabled): arrivals decided at
  /// this slot boundary and the tasks parked by the admission
  /// controller awaiting a wider headroom view. Always 0 in
  /// closed-loop runs; admitted arrivals appear in `pending` like any
  /// other task (docs/admission.md).
  std::uint64_t arrivals_new = 0;
  std::uint64_t arrivals_deferred_backlog = 0;
  /// Pending tasks, sorted by deadline (earliest first).
  std::vector<PendingTask> pending;
};

/// Per-slot decision.
struct SlotDecision {
  /// Desired number of active nodes; the engine clamps it into
  /// [feasible minimum, total].
  int target_active_nodes = 0;
  /// Ids of pending tasks to run this slot (engine enforces capacity
  /// and replica locality; urgent tasks are force-added if omitted).
  std::vector<storage::TaskId> run_tasks;
  /// true → run non-urgent tasks at the configured DVFS eco speed
  /// this slot (policies request it when no green surplus is
  /// available; the engine ignores it when DVFS is disabled).
  bool eco_speed = false;
};

class SchedulerPolicy {
 public:
  virtual ~SchedulerPolicy() = default;
  virtual const char* name() const = 0;
  virtual void initialize(const ClusterFacts& facts) { facts_ = facts; }
  virtual SlotDecision decide(const SlotContext& ctx) = 0;

  /// Called when a task first enters the pending pool; lets policies
  /// tag tasks (e.g. the deferral lottery). Default: no tag.
  virtual std::uint8_t admit(const storage::BackgroundTask& task) {
    (void)task;
    return 0;
  }

 protected:
  ClusterFacts facts_;

  /// Nodes needed to host a given total utilization plus task count.
  int nodes_for_load(double total_util, int running_tasks) const;
};

/// Which policy to run, with its knobs (one struct so sweeps are easy).
enum class PolicyKind : std::uint8_t {
  kAsap = 0,        ///< energy-oblivious; with a battery = "ESD-only"
  kOpportunistic,   ///< delay-until-green with a deferral fraction
  kGreenMatch,      ///< horizon matching via min-cost flow
  kGreenMatchGreedy,///< ablation: greedy earliest-greenest-fit
  kNightShift,      ///< static solar-hours window baseline
};

const char* policy_kind_name(PolicyKind kind);

struct PolicyConfig {
  PolicyKind kind = PolicyKind::kGreenMatch;
  /// Opportunistic: fraction of deferrable tasks entered into the
  /// delay lottery (the rest run ASAP).
  double deferral_fraction = 1.0;
  std::uint64_t seed = 2024;
  /// GreenMatch: planning horizon in slots.
  int horizon_slots = 24;
  /// GreenMatch: re-plan every slot (true) or only when the pool or
  /// forecast changed materially (false → cheaper, slightly stale).
  bool replan_every_slot = true;
  /// GreenMatch: weight grid-covered units by the slot's forecast
  /// carbon intensity instead of a flat brown penalty — minimizes
  /// gCO2e rather than grid kWh.
  bool carbon_aware = false;
  /// GreenMatch: model the battery inside the matching network (a
  /// time-expanded storage chain). Ablation shows this changes plans
  /// only marginally — the engine's passive charge-surplus /
  /// discharge-deficit loop already captures the battery's value — so
  /// the cheaper supply-only matcher is the default.
  bool battery_aware = false;
  /// NightShift: daily run window for background tasks.
  double window_start_h = 9.0;
  double window_end_h = 17.0;
  /// GreenMatch: build the flow network over task classes (tasks with
  /// identical planner signatures share one node) instead of one node
  /// per task. The ablation/equivalence-test escape hatch back to the
  /// per-task network; deliberately NOT reachable from the
  /// config-file key space (see test_leak_j_per_slot for the
  /// precedent).
  bool aggregate_planner = true;
  /// GreenMatch: solve the matching with the cost-scaling push-relabel
  /// solver (incremental re-optimization between slots) instead of the
  /// default successive-shortest-path solver. Both return the same
  /// objective (see docs/solver.md and test_planner_equivalence); the
  /// knob exists for benches and equivalence tests and, like
  /// aggregate_planner, is deliberately NOT reachable from the
  /// config-file key space.
  bool cost_scaling_planner = false;
  /// GreenMatch: number of placement-group scheduling shards. `1`
  /// (the default) plans the whole fleet in one flow network; `N > 1`
  /// partitions nodes, pending tasks, and forecast supply into N
  /// subproblems solved in parallel and reconciled (core/shard.hpp,
  /// docs/scheduling.md §Sharding). Config key `scheduler.shards`.
  int shards = 1;

  void validate() const;
};

std::unique_ptr<SchedulerPolicy> make_policy(const PolicyConfig& config);

}  // namespace gm::core
