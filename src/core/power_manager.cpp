#include "core/power_manager.hpp"

#include <algorithm>

#include "obs/recorder.hpp"
#include "util/assert.hpp"

namespace gm::core {

PowerManager::PowerManager(storage::Cluster& cluster, int min_dwell_slots)
    : cluster_(cluster),
      min_dwell_(min_dwell_slots),
      min_feasible_(cluster.min_feasible_count()),
      active_(cluster.node_count(), true),
      last_change_(cluster.node_count(), -1'000'000),
      failed_(cluster.node_count(), false) {
  GM_CHECK(min_dwell_slots >= 0, "negative dwell");
}

void PowerManager::recompute_min_feasible() {
  min_feasible_ = storage::Cluster::active_count(
      cluster_.choose_active_set(0, &failed_));
}

void PowerManager::fail_node(storage::NodeId node, SimTime now) {
  GM_CHECK(node < failed_.size(), "failed node id out of range");
  if (failed_[node]) return;
  failed_[node] = true;
  storage::StorageNode& n = cluster_.node(node);
  if (n.state() != storage::NodeState::kOff) {
    // A crash is not an orderly shutdown: the node drops instantly and
    // pays no transition energy.
    if (n.state() == storage::NodeState::kOn ||
        n.state() == storage::NodeState::kBooting) {
      n.complete_power_off(n.begin_power_off(now));
    }
  }
  active_[node] = false;
  recompute_min_feasible();
}

void PowerManager::recover_node(storage::NodeId node, SimTime,
                                SlotIndex slot) {
  GM_CHECK(node < failed_.size(), "recovered node id out of range");
  if (!failed_[node]) return;
  failed_[node] = false;
  last_change_[node] = slot;  // repaired node is dwell-protected off
  recompute_min_feasible();
}

PowerManager::Transition PowerManager::apply_target(SlotIndex slot,
                                                    int target,
                                                    SimTime now) {
  const int healthy = static_cast<int>(cluster_.node_count()) -
                      static_cast<int>(std::count(failed_.begin(),
                                                  failed_.end(), true));
  target = std::clamp(target, min_feasible_, healthy);
  const storage::ActiveSet desired =
      cluster_.choose_active_set(target, &failed_);

  Transition tr;
  for (storage::NodeId n = 0; n < cluster_.node_count(); ++n) {
    if (desired[n] == active_[n]) continue;
    storage::StorageNode& node = cluster_.node(n);
    if (desired[n]) {
      // Power on: always permitted (availability beats hysteresis).
      const SimTime done = node.begin_power_on(now);
      node.complete_power_on(std::max(done, now));
      active_[n] = true;
      last_change_[n] = slot;
      ++tr.powered_on;
      tr.energy_j += node.config().boot_energy_j();
    } else {
      // Power off: respect the dwell.
      if (slot - last_change_[n] < min_dwell_) continue;
      const SimTime done = node.begin_power_off(now);
      node.complete_power_off(std::max(done, now));
      active_[n] = false;
      last_change_[n] = slot;
      ++tr.powered_off;
      tr.energy_j += node.config().shutdown_energy_j();
      tr.deactivated.push_back(n);
    }
  }
  GM_ASSERT_MSG(cluster_.covered_groups(active_) ==
                    cluster_.coverable_groups(failed_),
                "power manager left coverage infeasible");
  return tr;
}

SimTime PowerManager::force_wake_for_group(storage::GroupId group,
                                           SimTime now, SlotIndex slot) {
  GM_OBS_SCOPE("power.force_wake");
  const auto& replicas = cluster_.placement().replicas(group);
  GM_CHECK(!replicas.empty(), "group without replicas: " << group);
  // Prefer an already-waking replica, else the first (primary).
  for (storage::NodeId n : replicas)
    if (active_[n])
      return now;  // race resolved: someone already woke it
  for (storage::NodeId n : replicas) {
    if (failed_[n]) continue;
    storage::StorageNode& node = cluster_.node(n);
    const SimTime done = node.begin_power_on(now);
    node.complete_power_on(std::max(done, now));
    active_[n] = true;
    last_change_[n] = slot;
    forced_energy_j_ += node.config().boot_energy_j();
    return std::max(done, now);
  }
  return kSimTimeMax;  // every replica failed: group is dark
}

storage::NodeId PowerManager::wake_sleeping_replica(storage::GroupId group,
                                                    SimTime now,
                                                    SlotIndex slot) {
  for (storage::NodeId n : cluster_.placement().replicas(group)) {
    if (active_[n] || failed_[n]) continue;
    storage::StorageNode& node = cluster_.node(n);
    const SimTime done = node.begin_power_on(now);
    node.complete_power_on(std::max(done, now));
    active_[n] = true;
    last_change_[n] = slot;
    forced_energy_j_ += node.config().boot_energy_j();
    return n;
  }
  return storage::kInvalidNode;
}

Joules PowerManager::drain_forced_energy_j() {
  const Joules e = forced_energy_j_;
  forced_energy_j_ = 0.0;
  return e;
}

}  // namespace gm::core
