#pragma once
// Executes per-slot node-activation targets against the cluster while
// enforcing the invariants policies may not break: placement coverage
// (never below the feasible minimum), hysteresis (a node keeps its
// power state for `min_dwell_slots` before it may switch off again),
// and transition-energy accounting.

#include <vector>

#include "storage/cluster.hpp"
#include "util/time_types.hpp"
#include "util/units.hpp"

namespace gm::core {

class PowerManager {
 public:
  PowerManager(storage::Cluster& cluster, int min_dwell_slots);

  struct Transition {
    int powered_on = 0;
    int powered_off = 0;
    Joules energy_j = 0.0;
    /// Nodes that went down (their running tasks must migrate).
    std::vector<storage::NodeId> deactivated;
  };

  /// Moves the cluster toward `target` active nodes at the boundary of
  /// `slot`. Deactivation below coverage feasibility is refused, as is
  /// deactivating a node that changed state less than the dwell ago.
  Transition apply_target(SlotIndex slot, int target, SimTime now);

  /// Forces one replica node of `group` on mid-slot (router fallback).
  /// Returns the time the node is available and accumulates the
  /// transition energy into the next apply_target's accounting. The
  /// awakened node is dwell-protected from `slot` on.
  SimTime force_wake_for_group(storage::GroupId group, SimTime now,
                               SlotIndex slot);

  /// Wakes the first *sleeping* replica of `group` even when other
  /// replicas are already active (urgent-task capacity relief).
  /// Returns the woken node, or kInvalidNode if none was sleeping.
  storage::NodeId wake_sleeping_replica(storage::GroupId group,
                                        SimTime now, SlotIndex slot);

  const storage::ActiveSet& active() const { return active_; }
  int active_count() const {
    return storage::Cluster::active_count(active_);
  }
  int min_feasible() const { return min_feasible_; }
  Joules drain_forced_energy_j();

  // --- failure injection --------------------------------------------
  /// Marks a node as failed: it is powered off immediately and cannot
  /// be activated (by targets, forced wakes or urgent relief) until
  /// recover_node. Coverage guarantees shrink to what the surviving
  /// replicas can provide.
  void fail_node(storage::NodeId node, SimTime now);
  /// Brings a failed node back (off but activatable).
  void recover_node(storage::NodeId node, SimTime now, SlotIndex slot);
  bool is_failed(storage::NodeId node) const { return failed_[node]; }
  const std::vector<bool>& failed() const { return failed_; }

 private:
  void recompute_min_feasible();

  storage::Cluster& cluster_;
  int min_dwell_;
  int min_feasible_;
  storage::ActiveSet active_;
  std::vector<SlotIndex> last_change_;
  std::vector<bool> failed_;
  Joules forced_energy_j_ = 0.0;
};

}  // namespace gm::core
