#include "core/shard.hpp"

#include <algorithm>
#include <cmath>

#include "storage/placement.hpp"
#include "util/assert.hpp"

namespace gm::core::shard {

int shard_of_task(const PendingTask& task, int shard_count) {
  return static_cast<int>(storage::shard_of_group(
      task.task.group, static_cast<std::uint32_t>(shard_count)));
}

std::vector<ShardProblem> partition(const SlotContext& ctx,
                                    const ClusterFacts& facts,
                                    int shard_count) {
  GM_CHECK(shard_count >= 1, "shard_count must be >= 1");
  std::vector<ShardProblem> out(static_cast<std::size_t>(shard_count));
  const int total = facts.total_nodes;
  const int base = total / shard_count;
  const int extra = total % shard_count;

  for (int s = 0; s < shard_count; ++s) {
    ShardProblem& p = out[static_cast<std::size_t>(s)];
    p.shard = s;
    p.node_count = base + (s < extra ? 1 : 0);
    p.node_share =
        total > 0 ? static_cast<double>(p.node_count) / total : 0.0;
    const double share = p.node_share;

    // Facts scaled to the shard. A shard never plans with zero nodes
    // (an empty shard still answers for its filtered tasks, if any).
    p.facts = facts;
    p.facts.total_nodes = std::max(1, p.node_count);
    p.facts.min_nodes_for_coverage = std::min(
        p.facts.total_nodes,
        static_cast<int>(std::ceil(facts.min_nodes_for_coverage * share)));

    // Context: scalars copy over, shared supply scales by node share
    // (the per-shard proportional allocation half of reconciliation),
    // and the pending pool keeps only this shard's groups.
    SlotContext& c = p.ctx;
    c.slot = ctx.slot;
    c.start = ctx.start;
    c.end = ctx.end;
    c.grid_carbon_g_per_kwh = ctx.grid_carbon_g_per_kwh;
    c.battery_charge_efficiency = ctx.battery_charge_efficiency;
    c.green_forecast_w.resize(ctx.green_forecast_w.size());
    for (std::size_t j = 0; j < ctx.green_forecast_w.size(); ++j)
      c.green_forecast_w[j] = ctx.green_forecast_w[j] * share;
    c.foreground_util_forecast.resize(
        ctx.foreground_util_forecast.size());
    for (std::size_t j = 0; j < ctx.foreground_util_forecast.size(); ++j)
      c.foreground_util_forecast[j] =
          ctx.foreground_util_forecast[j] * share;
    c.foreground_util = ctx.foreground_util * share;
    c.battery_stored_j = ctx.battery_stored_j * share;
    c.battery_usable_capacity_j = ctx.battery_usable_capacity_j * share;
    c.battery_max_charge_w = ctx.battery_max_charge_w * share;
    c.battery_max_discharge_w = ctx.battery_max_discharge_w * share;
    c.currently_active_nodes = std::min(
        p.facts.total_nodes,
        static_cast<int>(std::lround(ctx.currently_active_nodes * share)));
  }

  if (shard_count == 1) {
    out[0].ctx.pending = ctx.pending;
    return out;
  }
  for (const auto& task : ctx.pending)
    out[static_cast<std::size_t>(shard_of_task(task, shard_count))]
        .ctx.pending.push_back(task);
  return out;
}

}  // namespace gm::core::shard
