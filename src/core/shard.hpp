#pragma once
// Scheduling shards: the fleet split into independent per-placement-
// group subproblems, each small enough for its own flow network (the
// EOS GeoTreeEngine pattern — see docs/scheduling.md §Sharding).
//
// partition() takes the slot observation the engine hands the policy
// and produces one read-only snapshot per shard: nodes are divided
// evenly and deterministically, pending tasks follow their placement
// group through storage::shard_of_group, and the shared supply —
// green forecast, foreground demand, battery energy and rates — is
// allocated proportionally to each shard's node share. The snapshots
// are plain SlotContext/ClusterFacts values, so a shard subproblem is
// solved by an unmodified GreenMatchPolicy instance; the cross-shard
// reconciliation pass that re-offers unclaimed green headroom lives in
// GreenMatchPolicy::plan_sharded.

#include <vector>

#include "core/policy.hpp"
#include "storage/types.hpp"

namespace gm::core::shard {

/// One shard's view of the slot: the scaled facts/context pair an
/// unmodified planner can solve, plus the bookkeeping the merge needs.
struct ShardProblem {
  int shard = 0;
  int node_count = 0;     ///< nodes allocated to this shard
  double node_share = 0;  ///< node_count / fleet total
  ClusterFacts facts;     ///< fleet facts scaled to the shard
  SlotContext ctx;        ///< supply scaled, pending filtered
};

/// Shard owning a pending task: its placement group's shard.
int shard_of_task(const PendingTask& task, int shard_count);

/// Splits the slot observation into `shard_count` independent
/// subproblems. Deterministic: node counts use an even split (the
/// first `total % shard_count` shards take one extra node), task
/// membership is the pure group hash, and all supply scaling is by
/// node share. Pending order (deadline-sorted) is preserved within
/// each shard. `shard_count == 1` returns a single unscaled problem.
std::vector<ShardProblem> partition(const SlotContext& ctx,
                                    const ClusterFacts& facts,
                                    int shard_count);

}  // namespace gm::core::shard
