#include "core/sweep.hpp"

#include <cctype>
#include <memory>
#include <ostream>
#include <sstream>
#include <utility>

#include "core/config_io.hpp"
#include "core/engine.hpp"
#include "obs/recorder.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace gm::core {

std::string per_value_path(const std::string& base, std::size_t index,
                           const std::string& value) {
  if (base.empty()) return base;
  std::string tag = std::to_string(index) + "-";
  for (char c : value)
    tag += (std::isalnum(static_cast<unsigned char>(c)) || c == '-' ||
            c == '.')
               ? c
               : '_';
  const auto dot = base.rfind('.');
  const auto slash = base.rfind('/');
  if (dot == std::string::npos ||
      (slash != std::string::npos && dot < slash))
    return base + "." + tag;
  return base.substr(0, dot) + "." + tag + base.substr(dot);
}

std::vector<SweepPoint> run_sweep(const SweepSpec& spec) {
  // Validate every point's config up front, serially: a bad sweep
  // value fails the whole sweep before any engine runs.
  std::vector<ExperimentConfig> configs;
  configs.reserve(spec.values.size());
  for (const auto& value : spec.values) {
    ExperimentConfig config = spec.base;
    KeyValueConfig point;
    point.set(spec.key, value);
    apply_config(config, point);
    configs.push_back(std::move(config));
  }

  std::vector<SweepPoint> points(spec.values.size());
  ThreadPool pool(spec.jobs);
  parallel_for(pool, points.size(), [&](std::size_t i) {
    SweepPoint& point = points[i];
    point.value = spec.values[i];

    // Each point owns its recorder: Recorder is single-run state (see
    // obs/recorder.hpp) and the engine installs it thread-locally.
    std::shared_ptr<obs::Recorder> recorder;
    obs::RecorderConfig obs_config;
    obs_config.trace_path =
        per_value_path(spec.trace_base, i, point.value);
    obs_config.metrics_path =
        per_value_path(spec.metrics_base, i, point.value);
    obs_config.chrome_trace_path =
        per_value_path(spec.chrome_base, i, point.value);
    obs_config.profile = spec.profile;
    obs_config.provenance = spec.provenance;
    if (obs_config.any_enabled())
      recorder = std::make_shared<obs::Recorder>(obs_config);

    // Construct the engine explicitly (rather than run_experiment) so
    // the post_run hook can read its audit surface after the run.
    SimulationEngine engine(configs[i], recorder);
    const RunArtifacts artifacts = engine.run();
    point.result = artifacts.result;
    if (spec.post_run) spec.post_run(i, point.value, engine, artifacts);
    if (recorder) {
      recorder->finish();
      if (spec.profile) {
        std::ostringstream text;
        recorder->profiler().print_table(text);
        point.profile_text = text.str();
      }
    }
  });
  return points;
}

void print_sweep_report(std::ostream& out, const SweepSpec& spec,
                        const std::vector<SweepPoint>& points) {
  TextTable table({spec.key, "brown kWh", "green util", "curtailed kWh",
                   "misses", "mean nodes"});
  for (const auto& point : points) {
    const auto& r = point.result;
    table.add_row({point.value, TextTable::num(r.brown_kwh()),
                   TextTable::percent(r.energy.green_utilization()),
                   TextTable::num(r.curtailed_kwh()),
                   std::to_string(r.qos.deadline_misses),
                   TextTable::num(r.scheduler.mean_active_nodes, 1)});
    out << "csv:" << point.value << ',' << r.brown_kwh() << ','
        << r.energy.green_utilization() << '\n';
    if (!point.profile_text.empty())
      out << "\nphases for " << spec.key << '=' << point.value << ":\n"
          << point.profile_text;
  }
  table.print(out);
}

}  // namespace gm::core
