#pragma once
// Parallel one-dimensional parameter sweeps: the engine-facing core of
// the greenmatch_sweep CLI, factored out so tests can assert that a
// `--jobs=8` sweep renders byte-identically to `--jobs=1`. One
// simulation runs per value of `key`; points execute on a
// gm::ThreadPool — one engine, and one obs::Recorder, per point — and
// results are collected by index, so output order never depends on
// scheduling.

#include <cstddef>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "metrics/report.hpp"

namespace gm::core {

class SimulationEngine;
struct RunArtifacts;

struct SweepSpec {
  std::string key;                  ///< config key being swept
  std::vector<std::string> values;  ///< one simulation per value
  ExperimentConfig base;            ///< file + CLI overrides applied
  /// Per-point observability bases (see per_value_path); empty
  /// disables the corresponding artifact.
  std::string trace_base;
  std::string metrics_base;
  std::string chrome_base;  ///< Chrome trace JSON per point
  bool profile = false;
  bool provenance = false;  ///< per-task decision records per point
  /// Worker threads; 0 = hardware concurrency, 1 = serial.
  std::size_t jobs = 0;
  /// Optional end-of-run hook, called once per point — on the worker
  /// thread, before the point's artifacts are discarded — with the
  /// finished engine still alive. This is how layers above gm_core
  /// (gm::audit behind `greenmatch_sweep --audit`) inspect full run
  /// state without the sweep core depending on them. The callback must
  /// be safe to invoke from several workers concurrently.
  std::function<void(std::size_t index, const std::string& value,
                     const SimulationEngine& engine,
                     const RunArtifacts& artifacts)>
      post_run;
};

struct SweepPoint {
  std::string value;
  metrics::RunResult result;
  std::string profile_text;  ///< rendered phase table (profile only)
};

/// run.jsonl + (2, "asap") -> run.2-asap.jsonl. The point index is
/// part of the derived name because sanitizing the value alone
/// collides: "1/2" and "1_2" both map to "1_2", and duplicate sweep
/// values map to themselves — either way one point's artifacts would
/// silently overwrite another's.
std::string per_value_path(const std::string& base, std::size_t index,
                           const std::string& value);

/// Runs the sweep (in parallel for jobs != 1) and returns one point
/// per value, in value order. Configuration errors (unknown key, bad
/// value) are raised before any simulation starts, so they do not
/// depend on scheduling order.
std::vector<SweepPoint> run_sweep(const SweepSpec& spec);

/// Prints the csv: lines, the per-point phase tables (when profiling)
/// and the summary table, exactly as the serial CLI always has.
void print_sweep_report(std::ostream& out, const SweepSpec& spec,
                        const std::vector<SweepPoint>& points);

}  // namespace gm::core
