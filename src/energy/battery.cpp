#include "energy/battery.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace gm::energy {

const char* battery_technology_name(BatteryTechnology tech) {
  switch (tech) {
    case BatteryTechnology::kLeadAcid: return "lead-acid";
    case BatteryTechnology::kLithiumIon: return "lithium-ion";
    case BatteryTechnology::kCustom: return "custom";
  }
  return "?";
}

Watts BatteryConfig::max_charge_w() const {
  return capacity_j * charge_rate_c_per_hour / kSecondsPerHour;
}

Watts BatteryConfig::max_discharge_w() const {
  return max_charge_w() * discharge_to_charge_ratio;
}

double BatteryConfig::volume_l() const {
  return j_to_wh(capacity_j) / energy_density_wh_per_l;
}

double BatteryConfig::price_usd() const {
  return j_to_kwh(capacity_j) * price_per_kwh_usd;
}

BatteryConfig BatteryConfig::lead_acid(Joules capacity_j) {
  BatteryConfig c;
  c.technology = BatteryTechnology::kLeadAcid;
  c.capacity_j = capacity_j;
  c.depth_of_discharge = 0.8;
  c.charge_efficiency = 0.75;
  c.discharge_efficiency = 1.0;
  c.charge_rate_c_per_hour = 0.125;
  c.discharge_to_charge_ratio = 10.0;
  c.self_discharge_per_day = 0.003;
  c.price_per_kwh_usd = 200.0;
  c.energy_density_wh_per_l = 78.0;
  c.cycle_life_cycles = 1500.0;
  c.validate();
  return c;
}

BatteryConfig BatteryConfig::lithium_ion(Joules capacity_j) {
  BatteryConfig c;
  c.technology = BatteryTechnology::kLithiumIon;
  c.capacity_j = capacity_j;
  c.depth_of_discharge = 0.8;
  c.charge_efficiency = 0.85;
  c.discharge_efficiency = 1.0;
  c.charge_rate_c_per_hour = 0.25;
  c.discharge_to_charge_ratio = 5.0;
  c.self_discharge_per_day = 0.001;
  c.price_per_kwh_usd = 525.0;
  c.energy_density_wh_per_l = 150.0;
  c.cycle_life_cycles = 4000.0;
  c.validate();
  return c;
}

BatteryConfig BatteryConfig::ideal(Joules capacity_j) {
  BatteryConfig c;
  c.technology = BatteryTechnology::kCustom;
  c.capacity_j = capacity_j;
  c.depth_of_discharge = 1.0;
  c.charge_efficiency = 1.0;
  c.discharge_efficiency = 1.0;
  c.charge_rate_c_per_hour = 1e9;  // effectively unlimited
  c.discharge_to_charge_ratio = 1.0;
  c.self_discharge_per_day = 0.0;
  c.validate();
  return c;
}

void BatteryConfig::validate() const {
  GM_CHECK(capacity_j >= 0.0, "battery capacity must be non-negative");
  GM_CHECK(depth_of_discharge > 0.0 && depth_of_discharge <= 1.0,
           "DoD must be in (0, 1]: " << depth_of_discharge);
  GM_CHECK(charge_efficiency > 0.0 && charge_efficiency <= 1.0,
           "charge efficiency must be in (0, 1]");
  GM_CHECK(discharge_efficiency > 0.0 && discharge_efficiency <= 1.0,
           "discharge efficiency must be in (0, 1]");
  GM_CHECK(charge_rate_c_per_hour > 0.0, "charge rate must be positive");
  GM_CHECK(discharge_to_charge_ratio > 0.0,
           "discharge/charge ratio must be positive");
  GM_CHECK(self_discharge_per_day >= 0.0 && self_discharge_per_day < 1.0,
           "self-discharge must be in [0, 1)");
  GM_CHECK(initial_soc_fraction >= 0.0 && initial_soc_fraction <= 1.0,
           "initial SoC must be in [0, 1]");
  GM_CHECK(cycle_life_cycles >= 0.0, "negative cycle life");
  GM_CHECK(end_of_life_capacity_fraction > 0.0 &&
               end_of_life_capacity_fraction <= 1.0,
           "end-of-life fraction must be in (0, 1]");
}

Battery::Battery(const BatteryConfig& config) : config_(config) {
  config_.validate();
  initial_stored_j_ = usable_capacity_j() * config_.initial_soc_fraction;
  stored_j_ = initial_stored_j_;
}

Joules Battery::charge_capacity_j(Seconds dt) const {
  GM_ASSERT(dt >= 0.0);
  // Acceptance is limited on the input side by the rate cap, and on
  // the storage side by degradation-adjusted headroom after
  // conversion.
  const Joules rate_cap = config_.max_charge_w() * dt;
  const Joules headroom_cap =
      std::max(0.0, effective_usable_capacity_j() - stored_j_) /
      config_.charge_efficiency;
  return std::max(0.0, std::min(rate_cap, headroom_cap));
}

Joules Battery::charge(Joules offered_j, Seconds dt) {
  GM_CHECK(offered_j >= 0.0, "cannot charge negative energy");
  const Joules drawn = std::min(offered_j, charge_capacity_j(dt));
  const Joules stored_gain = drawn * config_.charge_efficiency;
  // The capacity clamp can discard stored energy: by rounding (the
  // headroom cap divides by σ, this path multiplies), and wholesale
  // when health fade has pulled the effective capacity below the
  // current SoC. Those joules must stay on the books — as clamp loss —
  // or total_in − total_out stops matching Δstored + losses.
  const Joules unclamped = stored_j_ + stored_gain;
  const Joules clamped =
      std::min(unclamped, effective_usable_capacity_j());
  clamp_loss_j_ += unclamped - clamped;
  stored_j_ = clamped;
  total_in_j_ += drawn;
  conversion_loss_j_ += drawn - stored_gain;
  return drawn;
}

Joules Battery::discharge_capacity_j(Seconds dt) const {
  GM_ASSERT(dt >= 0.0);
  const Joules rate_cap = config_.max_discharge_w() * dt;
  const Joules stored_cap = stored_j_ * config_.discharge_efficiency;
  return std::max(0.0, std::min(rate_cap, stored_cap));
}

Joules Battery::discharge(Joules requested_j, Seconds dt) {
  GM_CHECK(requested_j >= 0.0, "cannot discharge negative energy");
  const Joules delivered = std::min(requested_j, discharge_capacity_j(dt));
  const Joules stored_drop = delivered / config_.discharge_efficiency;
  stored_j_ = std::max(0.0, stored_j_ - stored_drop);
  total_out_j_ += delivered;
  conversion_loss_j_ += stored_drop - delivered;
  return delivered;
}

void Battery::apply_self_discharge(Seconds dt) {
  GM_CHECK(dt >= 0.0, "negative self-discharge interval");
  if (config_.self_discharge_per_day <= 0.0 || stored_j_ <= 0.0) return;
  const double keep = std::pow(1.0 - config_.self_discharge_per_day,
                               dt / kSecondsPerDay);
  const Joules lost = stored_j_ * (1.0 - keep);
  stored_j_ -= lost;
  self_loss_j_ += lost;
}

double Battery::equivalent_cycles() const {
  const Joules cap = usable_capacity_j();
  return cap > 0.0 ? total_out_j_ / cap : 0.0;
}

double Battery::health_fraction() const {
  if (config_.cycle_life_cycles <= 0.0) return 1.0;
  const double fade_per_cycle =
      (1.0 - config_.end_of_life_capacity_fraction) /
      config_.cycle_life_cycles;
  return std::max(config_.end_of_life_capacity_fraction,
                  1.0 - fade_per_cycle * equivalent_cycles());
}

Joules Battery::effective_usable_capacity_j() const {
  return usable_capacity_j() * health_fraction();
}

}  // namespace gm::energy
