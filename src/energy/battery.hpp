#pragma once
// Energy Storage Device (battery) model with the loss mechanisms the
// scheduling trade-off depends on: round-trip efficiency, charge and
// discharge rate limits, depth-of-discharge reserve, self-discharge,
// and cycle-throughput accounting for lifetime estimates. Lead-acid
// and lithium-ion presets follow the datacenter-storage literature
// (Wang et al., SIGMETRICS'12; Chen et al. 2009; Divya & Østergaard
// 2009).

#include <cstdint>
#include <string>

#include "util/units.hpp"

namespace gm::energy {

enum class BatteryTechnology : std::uint8_t { kLeadAcid, kLithiumIon,
                                              kCustom };

const char* battery_technology_name(BatteryTechnology tech);

struct BatteryConfig {
  BatteryTechnology technology = BatteryTechnology::kLithiumIon;
  Joules capacity_j = 0.0;          ///< nameplate capacity C
  double depth_of_discharge = 0.8;  ///< usable fraction η of C
  double charge_efficiency = 0.85;  ///< σ: stored = accepted × σ
  double discharge_efficiency = 1.0;
  /// Max charge power as a fraction of C per hour (e.g. 0.25 means the
  /// battery accepts at most 0.25·C joules in one hour of charging).
  double charge_rate_c_per_hour = 0.25;
  /// Discharge rate limit = charge rate × this ratio.
  double discharge_to_charge_ratio = 5.0;
  double self_discharge_per_day = 0.001;  ///< fraction of stored energy
  double price_per_kwh_usd = 525.0;
  double energy_density_wh_per_l = 150.0;
  /// State of charge at simulation start, as a fraction of the usable
  /// capacity (0 = empty; sweeps set 0.5 to suppress the cold-start
  /// first-night artifact symmetrically across policies).
  double initial_soc_fraction = 0.0;
  /// Cycle life: equivalent full cycles after which the cell has faded
  /// to `end_of_life_capacity_fraction` of nameplate. 0 disables
  /// degradation modeling.
  double cycle_life_cycles = 0.0;
  double end_of_life_capacity_fraction = 0.8;

  Watts max_charge_w() const;
  Watts max_discharge_w() const;
  Joules usable_capacity_j() const { return capacity_j * depth_of_discharge; }
  double volume_l() const;
  double price_usd() const;

  /// Presets parameterized by nameplate capacity.
  static BatteryConfig lead_acid(Joules capacity_j);
  static BatteryConfig lithium_ion(Joules capacity_j);
  /// Lossless, rate-unlimited battery for ideal-case experiments.
  static BatteryConfig ideal(Joules capacity_j);

  void validate() const;
};

/// Stateful battery. "Stored" is energy above the DoD reserve floor, so
/// stored ∈ [0, usable_capacity]. Charging and discharging within one
/// accounting step are mutually exclusive (enforced by the caller — the
/// per-slot energy balance never needs both).
class Battery {
 public:
  explicit Battery(const BatteryConfig& config);

  const BatteryConfig& config() const { return config_; }
  Joules stored_j() const { return stored_j_; }
  Joules usable_capacity_j() const { return config_.usable_capacity_j(); }
  /// Room for additional *stored* energy (degradation-adjusted).
  Joules headroom_j() const {
    const Joules room = effective_usable_capacity_j() - stored_j_;
    return room > 0.0 ? room : 0.0;
  }

  /// Offers `offered_j` of source energy over a window of `dt` seconds.
  /// Returns the energy actually drawn from the source (<= offered),
  /// limited by the charge-rate cap and remaining headroom. Only
  /// `drawn × charge_efficiency` ends up stored; the rest is recorded
  /// as conversion loss.
  Joules charge(Joules offered_j, Seconds dt);

  /// Requests `requested_j` of energy over `dt` seconds. Returns the
  /// energy delivered to the load (<= requested), limited by the
  /// discharge-rate cap and the stored amount. Delivering e removes
  /// e / discharge_efficiency from storage.
  Joules discharge(Joules requested_j, Seconds dt);

  /// Applies self-discharge over an elapsed interval.
  void apply_self_discharge(Seconds dt);

  /// What charge() would accept right now, without mutating.
  Joules charge_capacity_j(Seconds dt) const;
  /// What discharge() could deliver right now, without mutating.
  Joules discharge_capacity_j(Seconds dt) const;

  // --- lifetime/loss telemetry -------------------------------------
  Joules initial_stored_j() const { return initial_stored_j_; }
  Joules total_charged_in_j() const { return total_in_j_; }
  Joules total_discharged_out_j() const { return total_out_j_; }
  Joules conversion_loss_j() const { return conversion_loss_j_; }
  Joules self_discharge_loss_j() const { return self_loss_j_; }
  /// Stored energy discarded by the capacity clamp in charge():
  /// rounding past the effective capacity, and — when health fade has
  /// dropped the effective capacity below the current SoC — the excess
  /// stored energy written off. Without this term the conservation
  /// identity `total_in − total_out = Δstored + conversion_loss +
  /// self_loss` silently leaks.
  Joules clamp_loss_j() const { return clamp_loss_j_; }
  /// Equivalent full cycles = discharged energy / usable capacity.
  double equivalent_cycles() const;

  /// Degradation: remaining capacity as a fraction of nameplate,
  /// linear in cycle throughput down to the end-of-life fraction.
  /// 1.0 when degradation modeling is disabled.
  double health_fraction() const;
  /// Usable capacity after degradation (this is what charging
  /// headroom is computed against when degradation is enabled).
  Joules effective_usable_capacity_j() const;

 private:
  BatteryConfig config_;
  Joules stored_j_ = 0.0;
  Joules initial_stored_j_ = 0.0;
  Joules total_in_j_ = 0.0;
  Joules total_out_j_ = 0.0;
  Joules conversion_loss_j_ = 0.0;
  Joules self_loss_j_ = 0.0;
  Joules clamp_loss_j_ = 0.0;
};

}  // namespace gm::energy
