#include "energy/forecast.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"
#include "util/math_utils.hpp"
#include "util/rng.hpp"

namespace gm::energy {

PerfectForecast::PerfectForecast(std::shared_ptr<const PowerSource> source)
    : source_(std::move(source)) {
  GM_CHECK(source_ != nullptr, "forecast needs a source");
}

Watts PerfectForecast::forecast_mean_w(SimTime issued_at, SimTime t0,
                                       SimTime t1) const {
  GM_CHECK(t1 > t0, "forecast window must be non-empty");
  GM_CHECK(issued_at <= t0, "forecast issued after window start");
  return source_->energy_j(t0, t1) / static_cast<double>(t1 - t0);
}

void NoisyForecastConfig::validate() const {
  GM_CHECK(error_at_1h >= 0.0, "negative forecast error");
  GM_CHECK(error_cap > 0.0, "forecast error cap must be positive");
  GM_CHECK(bias_at_1h > -1.0, "forecast bias must exceed -100%");
  GM_CHECK(ar1_rho >= 0.0 && ar1_rho < 1.0,
           "forecast AR(1) rho must be in [0, 1)");
}

NoisyForecast::NoisyForecast(std::shared_ptr<const PowerSource> source,
                             const NoisyForecastConfig& config,
                             SimTime lead_resolution_s)
    : source_(std::move(source)),
      config_(config),
      lead_resolution_s_(lead_resolution_s) {
  GM_CHECK(source_ != nullptr, "forecast needs a source");
  GM_CHECK(lead_resolution_s_ > 0, "lead resolution must be positive");
  config_.validate();
}

namespace {

/// Standard-normal draw from a stateless key (polar Box-Muller).
double unit_normal(std::uint64_t key) {
  Rng rng(key);
  double u, v, s;
  do {
    u = rng.uniform(-1.0, 1.0);
    v = rng.uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  return u * std::sqrt(-2.0 * std::log(s) / s);
}

}  // namespace

Watts NoisyForecast::forecast_mean_w(SimTime issued_at, SimTime t0,
                                     SimTime t1) const {
  GM_CHECK(t1 > t0, "forecast window must be non-empty");
  GM_CHECK(issued_at <= t0, "forecast issued after window start");
  const Watts truth =
      source_->energy_j(t0, t1) / static_cast<double>(t1 - t0);

  const double lead_hours =
      std::max(0.0, static_cast<double>(t0 - issued_at) / 3600.0);
  const double sigma = std::min(
      config_.error_cap, config_.error_at_1h * std::sqrt(
                             std::max(lead_hours, 1e-9)));
  const double bias = std::clamp(
      config_.bias_at_1h * std::sqrt(lead_hours), -config_.error_cap,
      config_.error_cap);
  if ((sigma <= 0.0 && bias == 0.0) || truth <= 0.0) return truth;

  // Deterministic noise keyed at lead-resolution granularity: the
  // innovation for chain step j of the forecast issued in slot
  // `issue_slot` is keyed by (seed, window slot, lead in slots), so a
  // repeated query of the same window from the same issue slot repeats
  // exactly, while the next issue slot — even sub-hourly — revises the
  // draw. With ar1_rho > 0 consecutive windows of one issue share an
  // AR(1) chain and err together.
  double z = 0.0;
  if (sigma > 0.0) {
    const std::int64_t issue_slot = issued_at / lead_resolution_s_;
    const std::int64_t target_slot = t0 / lead_resolution_s_;
    const std::int64_t lead_slots =
        std::max<std::int64_t>(0, target_slot - issue_slot);
    const auto innovation = [&](std::int64_t j) {
      std::uint64_t key = mix_hash(
          config_.seed, static_cast<std::uint64_t>(issue_slot + j));
      key = mix_hash(key, static_cast<std::uint64_t>(j));
      return unit_normal(key);
    };
    z = innovation(0);
    const double rho = config_.ar1_rho;
    const double mix = std::sqrt(1.0 - rho * rho);
    for (std::int64_t j = 1; j <= lead_slots; ++j)
      z = rho * z + mix * innovation(j);
  }
  // Multiplicative lognormal error with unit mean, shifted by the
  // configured bias.
  const double factor =
      std::exp(sigma * z - 0.5 * sigma * sigma) * (1.0 + bias);
  return std::max(0.0, truth * factor);
}

}  // namespace gm::energy
