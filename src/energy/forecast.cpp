#include "energy/forecast.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"
#include "util/math_utils.hpp"
#include "util/rng.hpp"

namespace gm::energy {

PerfectForecast::PerfectForecast(std::shared_ptr<const PowerSource> source)
    : source_(std::move(source)) {
  GM_CHECK(source_ != nullptr, "forecast needs a source");
}

Watts PerfectForecast::forecast_mean_w(SimTime issued_at, SimTime t0,
                                       SimTime t1) const {
  GM_CHECK(t1 > t0, "forecast window must be non-empty");
  GM_CHECK(issued_at <= t0, "forecast issued after window start");
  return source_->energy_j(t0, t1) / static_cast<double>(t1 - t0);
}

NoisyForecast::NoisyForecast(std::shared_ptr<const PowerSource> source,
                             const NoisyForecastConfig& config)
    : source_(std::move(source)), config_(config) {
  GM_CHECK(source_ != nullptr, "forecast needs a source");
  GM_CHECK(config_.error_at_1h >= 0.0, "negative forecast error");
}

Watts NoisyForecast::forecast_mean_w(SimTime issued_at, SimTime t0,
                                     SimTime t1) const {
  GM_CHECK(t1 > t0, "forecast window must be non-empty");
  GM_CHECK(issued_at <= t0, "forecast issued after window start");
  const Watts truth =
      source_->energy_j(t0, t1) / static_cast<double>(t1 - t0);

  const double lead_hours =
      std::max(0.0, static_cast<double>(t0 - issued_at) / 3600.0);
  const double sigma = std::min(
      config_.error_cap, config_.error_at_1h * std::sqrt(
                             std::max(lead_hours, 1e-9)));
  if (sigma <= 0.0 || truth <= 0.0) return truth;

  // Deterministic noise keyed by (seed, window start, lead bucket):
  // re-forecasting the same window from the same time repeats exactly.
  const auto lead_bucket = static_cast<std::uint64_t>(lead_hours);
  std::uint64_t key =
      mix_hash(config_.seed, static_cast<std::uint64_t>(t0));
  key = mix_hash(key, lead_bucket);
  Rng rng(key);
  // Multiplicative lognormal error with unit mean.
  double u, v, s;
  do {
    u = rng.uniform(-1.0, 1.0);
    v = rng.uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double z = u * std::sqrt(-2.0 * std::log(s) / s);
  const double factor = std::exp(sigma * z - 0.5 * sigma * sigma);
  return truth * factor;
}

}  // namespace gm::energy
