#pragma once
// Renewable production forecasting as seen by the scheduler. The
// perfect provider reads the deterministic source directly (the
// lineage's "no prediction error" assumption); the noisy provider adds
// a multiplicative error that grows with lead time, deterministic per
// (seed, slot) so repeated queries agree.

#include <cstdint>
#include <memory>

#include "energy/supply.hpp"
#include "util/time_types.hpp"

namespace gm::energy {

class ForecastProvider {
 public:
  virtual ~ForecastProvider() = default;

  /// Expected average power over slot-aligned window [t0, t1), as
  /// forecast from `issued_at` (<= t0).
  virtual Watts forecast_mean_w(SimTime issued_at, SimTime t0,
                                SimTime t1) const = 0;

  /// Forecast energy over the window.
  Joules forecast_energy_j(SimTime issued_at, SimTime t0, SimTime t1) const {
    return forecast_mean_w(issued_at, t0, t1) *
           static_cast<double>(t1 - t0);
  }
};

class PerfectForecast final : public ForecastProvider {
 public:
  explicit PerfectForecast(std::shared_ptr<const PowerSource> source);
  Watts forecast_mean_w(SimTime issued_at, SimTime t0,
                        SimTime t1) const override;

 private:
  std::shared_ptr<const PowerSource> source_;
};

struct NoisyForecastConfig {
  std::uint64_t seed = 99;
  /// Relative error std-dev at one hour of lead time.
  double error_at_1h = 0.05;
  /// Error grows with sqrt(lead hours) up to this cap.
  double error_cap = 0.5;
};

class NoisyForecast final : public ForecastProvider {
 public:
  NoisyForecast(std::shared_ptr<const PowerSource> source,
                const NoisyForecastConfig& config);
  Watts forecast_mean_w(SimTime issued_at, SimTime t0,
                        SimTime t1) const override;

 private:
  std::shared_ptr<const PowerSource> source_;
  NoisyForecastConfig config_;
};

}  // namespace gm::energy
