#pragma once
// Renewable production forecasting as seen by the scheduler. The
// perfect provider reads the deterministic source directly (the
// lineage's "no prediction error" assumption); the noisy provider adds
// a structured error — per-horizon bias plus AR(1)-correlated
// multiplicative noise that grows with lead time — deterministic per
// (seed, window, issue slot) so repeated queries agree while
// re-forecasts of the same window revise as the issue time advances.
// Policies plan on these forecasts; the engine always settles energy
// on the underlying source's actuals.

#include <cstdint>
#include <memory>

#include "energy/supply.hpp"
#include "util/time_types.hpp"

namespace gm::energy {

class ForecastProvider {
 public:
  virtual ~ForecastProvider() = default;

  /// Expected average power over slot-aligned window [t0, t1), as
  /// forecast from `issued_at` (<= t0).
  virtual Watts forecast_mean_w(SimTime issued_at, SimTime t0,
                                SimTime t1) const = 0;

  /// Forecast energy over the window.
  Joules forecast_energy_j(SimTime issued_at, SimTime t0, SimTime t1) const {
    return forecast_mean_w(issued_at, t0, t1) *
           static_cast<double>(t1 - t0);
  }
};

class PerfectForecast final : public ForecastProvider {
 public:
  explicit PerfectForecast(std::shared_ptr<const PowerSource> source);
  Watts forecast_mean_w(SimTime issued_at, SimTime t0,
                        SimTime t1) const override;

 private:
  std::shared_ptr<const PowerSource> source_;
};

struct NoisyForecastConfig {
  std::uint64_t seed = 99;
  /// Relative error std-dev at one hour of lead time.
  double error_at_1h = 0.05;
  /// Error grows with sqrt(lead hours) up to this cap.
  double error_cap = 0.5;
  /// Relative bias at one hour of lead time (positive = systematic
  /// over-forecast). Grows with sqrt(lead hours) like the noise, and
  /// is clamped to +-error_cap. 0 disables the bias.
  double bias_at_1h = 0.0;
  /// AR(1) correlation between the noise of consecutive forecast
  /// slots within one forecast issue, so adjacent windows err
  /// together (a whole cloudy afternoon is mispredicted, not one
  /// isolated hour). 0 = independent slots (legacy behavior).
  double ar1_rho = 0.0;

  void validate() const;
};

class NoisyForecast final : public ForecastProvider {
 public:
  /// `lead_resolution_s` is the granularity at which the noise stream
  /// is keyed — the engine passes its slot length, so re-forecasts of
  /// a window revise once per slot even for sub-hourly slots (keying
  /// on whole lead-hours made all issues inside an hour identical).
  NoisyForecast(std::shared_ptr<const PowerSource> source,
                const NoisyForecastConfig& config,
                SimTime lead_resolution_s = 3600);
  Watts forecast_mean_w(SimTime issued_at, SimTime t0,
                        SimTime t1) const override;

 private:
  std::shared_ptr<const PowerSource> source_;
  NoisyForecastConfig config_;
  SimTime lead_resolution_s_;
};

}  // namespace gm::energy
