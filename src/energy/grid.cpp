#include "energy/grid.hpp"

#include "util/assert.hpp"

namespace gm::energy {

GridConfig GridConfig::flat(double g_per_kwh) {
  GridConfig c;
  c.profile = "flat";
  c.carbon_g_per_kwh =
      PiecewiseLinear({0.0, 24.0}, {g_per_kwh, g_per_kwh});
  return c;
}

GridConfig GridConfig::wind_heavy() {
  GridConfig c;
  c.profile = "wind-heavy";
  // Night wind surplus, evening fossil peakers.
  c.carbon_g_per_kwh = PiecewiseLinear(
      {0.0, 4.0, 8.0, 12.0, 16.0, 19.0, 22.0, 24.0},
      {140.0, 120.0, 220.0, 300.0, 350.0, 480.0, 260.0, 140.0});
  return c;
}

GridConfig GridConfig::solar_heavy() {
  GridConfig c;
  c.profile = "solar-heavy";
  // Utility solar floods the midday grid; nights run on fossil.
  c.carbon_g_per_kwh = PiecewiseLinear(
      {0.0, 6.0, 9.0, 12.0, 15.0, 18.0, 21.0, 24.0},
      {450.0, 430.0, 260.0, 160.0, 210.0, 380.0, 470.0, 450.0});
  return c;
}

namespace {

double event_multiplier(const std::vector<GridEvent>& events, SimTime t,
                        double GridEvent::* field) {
  double m = 1.0;
  for (const GridEvent& e : events)
    if (t >= e.start && t < e.end) m *= e.*field;
  return m;
}

}  // namespace

double GridConfig::carbon_g_per_kwh_at(SimTime t) const {
  return carbon_g_per_kwh(calendar_of(t).hour) *
         event_multiplier(events, t, &GridEvent::carbon_multiplier);
}

double GridConfig::price_usd_per_kwh_at(SimTime t) const {
  return price_usd_per_kwh(calendar_of(t).hour) *
         event_multiplier(events, t, &GridEvent::price_multiplier);
}

void GridMeter::draw(SimTime t, Joules e) {
  GM_CHECK(e >= 0.0, "grid draw must be non-negative: " << e);
  const double kwh = j_to_kwh(e);
  total_j_ += e;
  carbon_g_ += kwh * config_.carbon_g_per_kwh_at(t);
  cost_usd_ += kwh * config_.price_usd_per_kwh_at(t);
}

}  // namespace gm::energy
