#pragma once
// Grid ("brown") energy meter with optional time-of-day carbon
// intensity and price profiles, so reports can state both kWh and the
// carbon/cost consequences of a policy.

#include <string>

#include "util/math_utils.hpp"
#include "util/time_types.hpp"
#include "util/units.hpp"

namespace gm::energy {

struct GridConfig {
  /// Carbon intensity by hour of day, gCO2e per kWh. Default: flat
  /// European-average-ish 300 g/kWh.
  PiecewiseLinear carbon_g_per_kwh{std::vector<double>{0.0, 24.0},
                                   std::vector<double>{300.0, 300.0}};
  /// Price by hour of day, USD per kWh. Default flat 0.12 $/kWh.
  PiecewiseLinear price_usd_per_kwh{std::vector<double>{0.0, 24.0},
                                    std::vector<double>{0.12, 0.12}};
  /// Preset name, carried so config_echo / run manifests can state
  /// which grid.profile reproduces a carbon-aware run.
  std::string profile = "flat";

  /// Presets for the carbon-aware experiments.
  static GridConfig flat(double g_per_kwh = 300.0);
  /// Wind-heavy grid: cleanest at night, dirtiest in the evening peak.
  static GridConfig wind_heavy();
  /// Solar-heavy grid: cleanest around noon, dirtiest at night.
  static GridConfig solar_heavy();
};

class GridMeter {
 public:
  GridMeter() = default;
  explicit GridMeter(GridConfig config) : config_(std::move(config)) {}

  /// Records a draw of `e` joules during the hour-of-day containing t.
  void draw(SimTime t, Joules e);

  Joules total_j() const { return total_j_; }
  double total_kwh() const { return j_to_kwh(total_j_); }
  double total_carbon_g() const { return carbon_g_; }
  double total_cost_usd() const { return cost_usd_; }

 private:
  GridConfig config_;
  Joules total_j_ = 0.0;
  double carbon_g_ = 0.0;
  double cost_usd_ = 0.0;
};

}  // namespace gm::energy
