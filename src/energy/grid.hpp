#pragma once
// Grid ("brown") energy meter with optional time-of-day carbon
// intensity and price profiles, so reports can state both kWh and the
// carbon/cost consequences of a policy. Windowed GridEvents (carbon
// price spikes, dirty-peaker interventions) multiply the base profile
// for their duration — the scenario engine generates them, the meter
// and the carbon-aware planner both observe them.

#include <string>
#include <vector>

#include "util/math_utils.hpp"
#include "util/time_types.hpp"
#include "util/units.hpp"

namespace gm::energy {

/// A windowed grid intervention: while `t` is in [start, end), the
/// hour-of-day carbon/price profile is multiplied by these factors.
/// Overlapping events compound.
struct GridEvent {
  SimTime start = 0;
  SimTime end = 0;
  double carbon_multiplier = 1.0;
  double price_multiplier = 1.0;
};

struct GridConfig {
  /// Carbon intensity by hour of day, gCO2e per kWh. Default: flat
  /// European-average-ish 300 g/kWh.
  PiecewiseLinear carbon_g_per_kwh{std::vector<double>{0.0, 24.0},
                                   std::vector<double>{300.0, 300.0}};
  /// Price by hour of day, USD per kWh. Default flat 0.12 $/kWh.
  PiecewiseLinear price_usd_per_kwh{std::vector<double>{0.0, 24.0},
                                    std::vector<double>{0.12, 0.12}};
  /// Preset name, carried so config_echo / run manifests can state
  /// which grid.profile reproduces a carbon-aware run.
  std::string profile = "flat";
  /// Windowed carbon/price spike events layered on the profile
  /// (scenario-generated; no kv form — the scenario.* generator keys
  /// reproduce them deterministically).
  std::vector<GridEvent> events;

  /// Profile value at absolute sim time `t`: hour-of-day lookup times
  /// the multipliers of every event window covering `t`.
  double carbon_g_per_kwh_at(SimTime t) const;
  double price_usd_per_kwh_at(SimTime t) const;

  /// Presets for the carbon-aware experiments.
  static GridConfig flat(double g_per_kwh = 300.0);
  /// Wind-heavy grid: cleanest at night, dirtiest in the evening peak.
  static GridConfig wind_heavy();
  /// Solar-heavy grid: cleanest around noon, dirtiest at night.
  static GridConfig solar_heavy();
};

class GridMeter {
 public:
  GridMeter() = default;
  explicit GridMeter(GridConfig config) : config_(std::move(config)) {}

  /// Records a draw of `e` joules at time t (hour-of-day profile plus
  /// any active spike events).
  void draw(SimTime t, Joules e);

  Joules total_j() const { return total_j_; }
  double total_kwh() const { return j_to_kwh(total_j_); }
  double total_carbon_g() const { return carbon_g_; }
  double total_cost_usd() const { return cost_usd_; }

 private:
  GridConfig config_;
  Joules total_j_ = 0.0;
  double carbon_g_ = 0.0;
  double cost_usd_ = 0.0;
};

}  // namespace gm::energy
