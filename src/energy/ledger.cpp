#include "energy/ledger.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace gm::energy {

double LedgerTotals::green_utilization() const {
  if (green_supply_j <= 0.0) return 0.0;
  return (green_direct_j + battery_charge_drawn_j) / green_supply_j;
}

double LedgerTotals::green_coverage_of_demand() const {
  if (demand_j <= 0.0) return 0.0;
  return (demand_j - brown_j) / demand_j;
}

void EnergyLedger::append(const SlotRecord& r, double tolerance) {
  GM_CHECK(r.end > r.start, "ledger slot has empty interval");

  const auto check_balance = [&](double lhs, double rhs, const char* what) {
    const double scale =
        std::max({1.0, std::fabs(lhs), std::fabs(rhs)});
    GM_CHECK(std::fabs(lhs - rhs) <= tolerance * scale,
             "ledger conservation violated (" << what << ") in slot "
                 << r.slot << ": " << lhs << " vs " << rhs);
  };
  check_balance(r.green_supply_j,
                r.green_direct_j + r.battery_charge_drawn_j + r.curtailed_j,
                "supply split");
  check_balance(r.demand_j,
                r.green_direct_j + r.battery_discharged_j + r.brown_j,
                "demand coverage");

  const auto nonneg = [&](double v, const char* what) {
    GM_CHECK(v >= -1e-9, "negative ledger term (" << what << ") in slot "
                             << r.slot << ": " << v);
  };
  nonneg(r.green_supply_j, "green_supply");
  nonneg(r.green_direct_j, "green_direct");
  nonneg(r.battery_charge_drawn_j, "battery_charge_drawn");
  nonneg(r.battery_discharged_j, "battery_discharged");
  nonneg(r.brown_j, "brown");
  nonneg(r.curtailed_j, "curtailed");
  nonneg(r.demand_j, "demand");

  slots_.push_back(r);
  totals_.green_supply_j += r.green_supply_j;
  totals_.green_direct_j += r.green_direct_j;
  totals_.battery_charge_drawn_j += r.battery_charge_drawn_j;
  totals_.battery_discharged_j += r.battery_discharged_j;
  totals_.brown_j += r.brown_j;
  totals_.curtailed_j += r.curtailed_j;
  totals_.demand_j += r.demand_j;
  totals_.overhead_transition_j += r.overhead_transition_j;
  totals_.overhead_migration_j += r.overhead_migration_j;
}

}  // namespace gm::energy
