#pragma once
// Per-slot energy accounting. Every simulation slot appends one record;
// the ledger enforces the conservation identities that tie supply,
// battery, grid and demand together, and aggregates run totals.
//
// Identities checked (all joules, per slot):
//   green_supply  = green_direct + battery_charge_drawn + curtailed
//   demand        = green_direct + battery_discharged + brown
//
// Battery internal losses (conversion, self-discharge) live inside the
// Battery object and are reported separately; `battery_charge_drawn`
// is energy taken *from the source side*, of which only σ reaches
// storage.

#include <vector>

#include "util/time_types.hpp"
#include "util/units.hpp"

namespace gm::energy {

struct SlotRecord {
  SlotIndex slot = 0;
  SimTime start = 0;
  SimTime end = 0;

  Joules green_supply_j = 0.0;      ///< renewable production this slot
  Joules green_direct_j = 0.0;      ///< renewable consumed immediately
  Joules battery_charge_drawn_j = 0.0;  ///< source-side energy into ESD
  Joules battery_discharged_j = 0.0;    ///< energy delivered by ESD
  Joules brown_j = 0.0;             ///< grid draw
  Joules curtailed_j = 0.0;         ///< renewable lost (no taker)
  Joules demand_j = 0.0;            ///< total load including overheads

  /// Demand decomposition (informational; sums to <= demand_j, the
  /// remainder being baseline server/disk power).
  Joules overhead_transition_j = 0.0;  ///< spin-up / power-cycle energy
  Joules overhead_migration_j = 0.0;   ///< data/VM movement energy

  Joules battery_stored_end_j = 0.0;   ///< state of charge at slot end
};

struct LedgerTotals {
  Joules green_supply_j = 0.0;
  Joules green_direct_j = 0.0;
  Joules battery_charge_drawn_j = 0.0;
  Joules battery_discharged_j = 0.0;
  Joules brown_j = 0.0;
  Joules curtailed_j = 0.0;
  Joules demand_j = 0.0;
  Joules overhead_transition_j = 0.0;
  Joules overhead_migration_j = 0.0;

  /// Fraction of renewable production that served load (directly or
  /// via the battery, counting what was drawn into it).
  double green_utilization() const;
  /// Fraction of demand covered without the grid.
  double green_coverage_of_demand() const;
};

class EnergyLedger {
 public:
  /// Appends a slot record; throws if the conservation identities are
  /// violated beyond `tolerance` (relative).
  void append(const SlotRecord& record, double tolerance = 1e-6);

  const std::vector<SlotRecord>& slots() const { return slots_; }
  LedgerTotals totals() const { return totals_; }
  std::size_t size() const { return slots_.size(); }

 private:
  std::vector<SlotRecord> slots_;
  LedgerTotals totals_;
};

}  // namespace gm::energy
