#include "energy/solar.hpp"

#include <cmath>

#include "util/assert.hpp"
#include "util/distributions.hpp"
#include "util/math_utils.hpp"
#include "util/time_types.hpp"

namespace gm::energy {
namespace {

constexpr double kPi = 3.14159265358979323846;
constexpr double kSolarConstantWm2 = 1361.0;

double deg_to_rad(double deg) { return deg * kPi / 180.0; }

}  // namespace

SolarIrradianceModel::SolarIrradianceModel(const SolarConfig& config)
    : config_(config) {
  GM_CHECK(config_.horizon_days > 0, "solar horizon must be positive");
  GM_CHECK(config_.latitude_deg > -90.0 && config_.latitude_deg < 90.0,
           "latitude out of range: " << config_.latitude_deg);
  GM_CHECK(config_.weather_persistence >= 0.0 &&
               config_.weather_persistence <= 1.0,
           "weather persistence must be a probability");
  GM_CHECK(config_.utc_offset_h >= -12.0 && config_.utc_offset_h <= 14.0,
           "utc offset out of range: " << config_.utc_offset_h);

  Rng rng(config_.seed);

  // Daily weather Markov chain: stay with p = persistence, otherwise
  // move to one of the other two states uniformly.
  daily_weather_.resize(config_.horizon_days);
  Weather w = Weather::kSunny;
  for (int d = 0; d < config_.horizon_days; ++d) {
    daily_weather_[d] = w;
    if (!rng.bernoulli(config_.weather_persistence)) {
      const int self = static_cast<int>(w);
      const int offset = 1 + static_cast<int>(rng.uniform_u64(2));
      w = static_cast<Weather>((self + offset) % 3);
    }
  }

  // Hourly clearness: state mean + Gaussian noise, clamped to [0, 1].
  hourly_clearness_.resize(static_cast<std::size_t>(config_.horizon_days) *
                           24);
  for (int d = 0; d < config_.horizon_days; ++d) {
    double state_mean = 0.0;
    switch (daily_weather_[d]) {
      case Weather::kSunny: state_mean = config_.clearness_sunny; break;
      case Weather::kPartlyCloudy:
        state_mean = config_.clearness_partly;
        break;
      case Weather::kCloudy: state_mean = config_.clearness_cloudy; break;
    }
    for (int h = 0; h < 24; ++h) {
      const double noisy =
          sample_normal(rng, state_mean, config_.clearness_noise);
      hourly_clearness_[static_cast<std::size_t>(d) * 24 + h] =
          clamp(noisy, 0.0, 1.0);
    }
  }
}

SimTime SolarIrradianceModel::local_time(SimTime t) const {
  auto local = t + static_cast<SimTime>(config_.utc_offset_h * 3600.0);
  while (local < 0) local += 365LL * 86400;
  return local;
}

double SolarIrradianceModel::solar_elevation_rad(SimTime t) const {
  const CalendarTime cal =
      calendar_of(local_time(t), config_.start_day_of_year);
  // Declination (Cooper's equation).
  const double decl =
      deg_to_rad(23.45) *
      std::sin(2.0 * kPi * (284.0 + cal.day_of_year) / 365.0);
  // Hour angle: solar noon at 12:00 local.
  const double hour_angle = deg_to_rad(15.0) * (cal.hour - 12.0);
  const double lat = deg_to_rad(config_.latitude_deg);
  const double sin_elev = std::sin(lat) * std::sin(decl) +
                          std::cos(lat) * std::cos(decl) *
                              std::cos(hour_angle);
  return std::asin(clamp(sin_elev, -1.0, 1.0));
}

double SolarIrradianceModel::clear_sky_wm2(SimTime t) const {
  const double elev = solar_elevation_rad(t);
  if (elev <= 0.0) return 0.0;
  const double sin_elev = std::sin(elev);
  // Beam attenuation through air mass ~ 1/sin(elev) (Kasten-style
  // simplification, adequate for hourly energy accounting).
  const double transmit =
      std::pow(config_.clear_sky_transmittance, 1.0 / sin_elev);
  return kSolarConstantWm2 * transmit * sin_elev;
}

double SolarIrradianceModel::clearness_at(SimTime t) const {
  t = local_time(t);
  if (t < 0) return 0.0;
  auto idx = static_cast<std::size_t>(t / 3600);
  if (idx >= hourly_clearness_.size()) {
    // Beyond the sampled horizon: repeat the last day's pattern so long
    // sweeps degrade gracefully instead of crashing.
    idx = hourly_clearness_.size() - 24 + idx % 24;
  }
  return hourly_clearness_[idx];
}

Watts SolarIrradianceModel::power_w(SimTime t) const {
  return clear_sky_wm2(t) * clearness_at(t);
}

Weather SolarIrradianceModel::weather_on_day(int day) const {
  GM_CHECK(day >= 0, "negative day index");
  const auto idx = static_cast<std::size_t>(day);
  return idx < daily_weather_.size() ? daily_weather_[idx]
                                     : daily_weather_.back();
}

PvArray::PvArray(std::shared_ptr<const SolarIrradianceModel> irradiance,
                 const PvArrayConfig& config)
    : irradiance_(std::move(irradiance)), config_(config) {
  GM_CHECK(irradiance_ != nullptr, "PvArray needs an irradiance model");
  GM_CHECK(config_.panel_area_m2 > 0.0 && config_.panel_count >= 0,
           "invalid PV geometry");
  GM_CHECK(config_.cell_efficiency > 0.0 && config_.cell_efficiency < 1.0,
           "cell efficiency must be in (0, 1)");
  GM_CHECK(config_.performance_ratio > 0.0 &&
               config_.performance_ratio <= 1.0,
           "performance ratio must be in (0, 1]");
}

Watts PvArray::power_w(SimTime t) const {
  return irradiance_->power_w(t) * total_area_m2() *
         config_.cell_efficiency * config_.performance_ratio;
}

Watts PvArray::rated_peak_w() const {
  return 1000.0 * total_area_m2() * config_.cell_efficiency *
         config_.performance_ratio;
}

std::shared_ptr<PvArray> make_pv_array(const SolarConfig& solar,
                                       double total_area_m2) {
  GM_CHECK(total_area_m2 >= 0.0, "negative panel area");
  auto irr = std::make_shared<SolarIrradianceModel>(solar);
  PvArrayConfig pv;
  pv.panel_count = 1;
  pv.panel_area_m2 = total_area_m2 > 0.0 ? total_area_m2 : 1e-9;
  if (total_area_m2 == 0.0) pv.panel_count = 0;
  return std::make_shared<PvArray>(std::move(irr), pv);
}

}  // namespace gm::energy
