#pragma once
// Solar production model: astronomical clear-sky irradiance modulated
// by a Markov-chain weather process with within-state noise. All
// stochasticity is sampled at construction (one clearness factor per
// hour of the horizon), so the model is a deterministic PowerSource.

#include <cstdint>
#include <vector>

#include "energy/supply.hpp"
#include "util/rng.hpp"

namespace gm::energy {

/// Three-state weather chain; transition probabilities are per day.
enum class Weather : std::uint8_t { kSunny = 0, kPartlyCloudy, kCloudy };

struct SolarConfig {
  double latitude_deg = 47.2;  ///< Nantes, to match the lineage's farm
  /// Timezone offset of the site: local solar time = simulation time +
  /// offset. Federated multi-site setups stagger this to model
  /// follow-the-sun geography.
  double utc_offset_h = 0.0;
  int start_day_of_year = 172;  ///< June 21 (summer solstice)
  int horizon_days = 14;
  std::uint64_t seed = 42;

  /// Atmospheric clear-sky transmittance at zenith.
  double clear_sky_transmittance = 0.72;
  /// Mean clearness per weather state.
  double clearness_sunny = 0.95;
  double clearness_partly = 0.60;
  double clearness_cloudy = 0.25;
  /// Std-dev of hourly clearness noise within a state.
  double clearness_noise = 0.08;
  /// Per-day probability of keeping the current weather state.
  double weather_persistence = 0.6;
};

/// Irradiance on the horizontal plane (W/m²) as a function of sim time.
class SolarIrradianceModel final : public PowerSource {
 public:
  explicit SolarIrradianceModel(const SolarConfig& config);

  /// power_w here returns irradiance in W/m² (a PvArray turns it into
  /// electrical watts); exposed as a PowerSource so tests can integrate.
  Watts power_w(SimTime t) const override;

  /// Deterministic clear-sky irradiance, no weather attenuation.
  double clear_sky_wm2(SimTime t) const;

  /// Solar elevation angle in radians at time t (negative at night).
  double solar_elevation_rad(SimTime t) const;

  Weather weather_on_day(int day) const;
  const SolarConfig& config() const { return config_; }

 private:
  SimTime local_time(SimTime t) const;
  double clearness_at(SimTime t) const;

  SolarConfig config_;
  std::vector<Weather> daily_weather_;
  std::vector<double> hourly_clearness_;
};

/// Photovoltaic array converting irradiance to electrical power.
struct PvArrayConfig {
  double panel_area_m2 = 1.38;     ///< one ~240 Wp panel
  int panel_count = 8;             ///< mini-farm default
  double cell_efficiency = 0.174;  ///< irradiance → DC
  double performance_ratio = 0.85; ///< inverter, wiring, soiling
};

class PvArray final : public PowerSource {
 public:
  PvArray(std::shared_ptr<const SolarIrradianceModel> irradiance,
          const PvArrayConfig& config);

  Watts power_w(SimTime t) const override;

  double total_area_m2() const {
    return config_.panel_area_m2 * config_.panel_count;
  }
  /// Peak electrical watts at 1000 W/m² reference irradiance.
  Watts rated_peak_w() const;
  const PvArrayConfig& config() const { return config_; }

 private:
  std::shared_ptr<const SolarIrradianceModel> irradiance_;
  PvArrayConfig config_;
};

/// Convenience: array sized to a given total area on a fresh irradiance
/// model (the common construction in sweeps).
std::shared_ptr<PvArray> make_pv_array(const SolarConfig& solar,
                                       double total_area_m2);

}  // namespace gm::energy
