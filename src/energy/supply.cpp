#include "energy/supply.hpp"

#include "util/assert.hpp"
#include "util/csv.hpp"

namespace gm::energy {

Joules PowerSource::energy_j(SimTime t0, SimTime t1,
                             SimTime resolution) const {
  GM_CHECK(t1 >= t0, "energy interval must be ordered");
  GM_CHECK(resolution > 0, "integration resolution must be positive");
  Joules total = 0.0;
  SimTime t = t0;
  Watts prev = power_w(t);
  while (t < t1) {
    const SimTime next = std::min(t + resolution, t1);
    const Watts cur = power_w(next);
    total += 0.5 * (prev + cur) * static_cast<double>(next - t);
    prev = cur;
    t = next;
  }
  return total;
}

TraceSource::TraceSource(std::vector<Watts> samples_w,
                         SimTime sample_period_s)
    : samples_(std::move(samples_w)), period_(sample_period_s) {
  GM_CHECK(period_ > 0, "trace sample period must be positive");
  for (Watts w : samples_)
    GM_CHECK(w >= 0.0, "trace contains negative power: " << w);
}

Watts TraceSource::power_w(SimTime t) const {
  if (t < 0 || samples_.empty()) return 0.0;
  const auto idx = static_cast<std::size_t>(t / period_);
  if (idx >= samples_.size()) return 0.0;
  const double frac =
      static_cast<double>(t - static_cast<SimTime>(idx) * period_) /
      static_cast<double>(period_);
  const Watts a = samples_[idx];
  const Watts b = idx + 1 < samples_.size() ? samples_[idx + 1] : 0.0;
  return a + (b - a) * frac;
}

TraceSource TraceSource::from_csv(const std::string& path,
                                  SimTime sample_period_s) {
  const auto rows = read_csv_file(path);
  std::vector<Watts> samples;
  samples.reserve(rows.size());
  for (const auto& row : rows) {
    GM_CHECK(!row.empty(), "empty CSV row in power trace " << path);
    // One column: power. Two+: last column is power.
    samples.push_back(csv_to_double(row.back()));
  }
  return TraceSource(std::move(samples), sample_period_s);
}

ScaledSource::ScaledSource(std::shared_ptr<const PowerSource> base,
                           double factor)
    : base_(std::move(base)), factor_(factor) {
  GM_CHECK(base_ != nullptr, "scaled source needs a base");
  GM_CHECK(factor_ >= 0.0, "scale factor must be non-negative");
}

void CompositeSource::add(std::shared_ptr<const PowerSource> source) {
  GM_CHECK(source != nullptr, "composite source element is null");
  sources_.push_back(std::move(source));
}

Watts CompositeSource::power_w(SimTime t) const {
  Watts total = 0.0;
  for (const auto& s : sources_) total += s->power_w(t);
  return total;
}

}  // namespace gm::energy
