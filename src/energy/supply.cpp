#include "energy/supply.hpp"

#include <algorithm>

#include "util/assert.hpp"
#include "util/csv.hpp"

namespace gm::energy {

Joules PowerSource::energy_j(SimTime t0, SimTime t1,
                             SimTime resolution) const {
  GM_CHECK(t1 >= t0, "energy interval must be ordered");
  GM_CHECK(resolution > 0, "integration resolution must be positive");
  Joules total = 0.0;
  SimTime t = t0;
  Watts prev = power_w(t);
  while (t < t1) {
    const SimTime next = std::min(t + resolution, t1);
    const Watts cur = power_w(next);
    total += 0.5 * (prev + cur) * static_cast<double>(next - t);
    prev = cur;
    t = next;
  }
  return total;
}

TraceSource::TraceSource(std::vector<Watts> samples_w,
                         SimTime sample_period_s)
    : samples_(std::move(samples_w)), period_(sample_period_s) {
  GM_CHECK(period_ > 0, "trace sample period must be positive");
  for (Watts w : samples_)
    GM_CHECK(w >= 0.0, "trace contains negative power: " << w);
}

Watts TraceSource::power_w(SimTime t) const {
  if (t < 0 || samples_.empty()) return 0.0;
  const auto idx = static_cast<std::size_t>(t / period_);
  if (idx >= samples_.size()) return 0.0;
  const double frac =
      static_cast<double>(t - static_cast<SimTime>(idx) * period_) /
      static_cast<double>(period_);
  const Watts a = samples_[idx];
  const Watts b = idx + 1 < samples_.size() ? samples_[idx + 1] : 0.0;
  return a + (b - a) * frac;
}

TraceSource TraceSource::from_csv(const std::string& path,
                                  SimTime sample_period_s) {
  const auto rows = read_csv_file(path);
  std::vector<Watts> samples;
  samples.reserve(rows.size());
  for (const auto& row : rows) {
    GM_CHECK(!row.empty(), "empty CSV row in power trace " << path);
    // One column: power. Two+: last column is power.
    samples.push_back(csv_to_double(row.back()));
  }
  return TraceSource(std::move(samples), sample_period_s);
}

ScaledSource::ScaledSource(std::shared_ptr<const PowerSource> base,
                           double factor)
    : base_(std::move(base)), factor_(factor) {
  GM_CHECK(base_ != nullptr, "scaled source needs a base");
  GM_CHECK(factor_ >= 0.0, "scale factor must be non-negative");
}

ModulatedSource::ModulatedSource(std::shared_ptr<const PowerSource> base,
                                 std::vector<ModulationWindow> windows)
    : base_(std::move(base)), windows_(std::move(windows)) {
  GM_CHECK(base_ != nullptr, "modulated source needs a base");
  for (const auto& w : windows_) {
    GM_CHECK(w.end > w.start, "modulation window must be non-empty");
    GM_CHECK(w.factor >= 0.0,
             "modulation factor must be non-negative: " << w.factor);
  }
}

double ModulatedSource::factor_at(SimTime t) const {
  double f = 1.0;
  for (const auto& w : windows_)
    if (t >= w.start && t < w.end) f *= w.factor;
  return f;
}

Watts ModulatedSource::power_w(SimTime t) const {
  return factor_at(t) * base_->power_w(t);
}

Joules ModulatedSource::energy_j(SimTime t0, SimTime t1,
                                 SimTime resolution) const {
  GM_CHECK(t1 >= t0, "energy interval must be ordered");
  // Split [t0, t1) at every window boundary inside it; the factor is
  // constant within each segment.
  std::vector<SimTime> cuts{t0, t1};
  for (const auto& w : windows_) {
    if (w.start > t0 && w.start < t1) cuts.push_back(w.start);
    if (w.end > t0 && w.end < t1) cuts.push_back(w.end);
  }
  std::sort(cuts.begin(), cuts.end());
  Joules total = 0.0;
  for (std::size_t i = 0; i + 1 < cuts.size(); ++i) {
    if (cuts[i + 1] == cuts[i]) continue;
    total += factor_at(cuts[i]) *
             base_->energy_j(cuts[i], cuts[i + 1], resolution);
  }
  return total;
}

void CompositeSource::add(std::shared_ptr<const PowerSource> source) {
  GM_CHECK(source != nullptr, "composite source element is null");
  sources_.push_back(std::move(source));
}

Watts CompositeSource::power_w(SimTime t) const {
  Watts total = 0.0;
  for (const auto& s : sources_) total += s->power_w(t);
  return total;
}

}  // namespace gm::energy
