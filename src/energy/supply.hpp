#pragma once
// Power-source abstraction. A PowerSource is a *deterministic* function
// from simulation time to instantaneous power: models precompute any
// stochastic weather at construction, so the same object answers both
// "what is produced now" and "what will be produced at t" (the perfect
// forecaster simply reads the source at a future time).

#include <memory>
#include <vector>

#include "util/time_types.hpp"
#include "util/units.hpp"

namespace gm::energy {

class PowerSource {
 public:
  virtual ~PowerSource() = default;

  /// Instantaneous power produced at time t. Must be >= 0.
  virtual Watts power_w(SimTime t) const = 0;

  /// Energy produced over [t0, t1). The default integrates power_w at
  /// `resolution` steps (trapezoid); models with closed forms override.
  virtual Joules energy_j(SimTime t0, SimTime t1,
                          SimTime resolution = 60) const;
};

/// Always-zero source (grid-only scenarios).
class NullSource final : public PowerSource {
 public:
  Watts power_w(SimTime) const override { return 0.0; }
};

/// Constant-output source (tests and idealized scenarios).
class ConstantSource final : public PowerSource {
 public:
  explicit ConstantSource(Watts p) : p_(p) {}
  Watts power_w(SimTime) const override { return p_; }

 private:
  Watts p_;
};

/// Plays back a trace of power samples on a fixed grid with linear
/// interpolation between samples and zero outside the trace. Sample i
/// is the power at time i * sample_period.
class TraceSource final : public PowerSource {
 public:
  TraceSource(std::vector<Watts> samples_w, SimTime sample_period_s);

  Watts power_w(SimTime t) const override;
  SimTime duration() const {
    return static_cast<SimTime>(samples_.size()) * period_;
  }

  /// Loads a single-column (or `time,power` two-column) CSV of watts.
  static TraceSource from_csv(const std::string& path,
                              SimTime sample_period_s);

 private:
  std::vector<Watts> samples_;
  SimTime period_;
};

/// Scales another source by a constant factor (e.g. panel-count sweep
/// over one normalized solar profile).
class ScaledSource final : public PowerSource {
 public:
  ScaledSource(std::shared_ptr<const PowerSource> base, double factor);
  Watts power_w(SimTime t) const override {
    return factor_ * base_->power_w(t);
  }
  Joules energy_j(SimTime t0, SimTime t1,
                  SimTime resolution = 60) const override {
    return factor_ * base_->energy_j(t0, t1, resolution);
  }

 private:
  std::shared_ptr<const PowerSource> base_;
  double factor_;
};

/// A time window during which a modulated source's output is scaled
/// by `factor` (demand-response curtailment orders, inverter derates).
/// Overlapping windows compound multiplicatively.
struct ModulationWindow {
  SimTime start = 0;
  SimTime end = 0;
  double factor = 1.0;
};

/// Scales another source by windowed factors: full output outside any
/// window, `factor`-scaled inside. energy_j splits the interval at
/// window boundaries, so window edges are exact rather than smoothed
/// by the default trapezoid integration.
class ModulatedSource final : public PowerSource {
 public:
  ModulatedSource(std::shared_ptr<const PowerSource> base,
                  std::vector<ModulationWindow> windows);
  Watts power_w(SimTime t) const override;
  Joules energy_j(SimTime t0, SimTime t1,
                  SimTime resolution = 60) const override;

 private:
  double factor_at(SimTime t) const;

  std::shared_ptr<const PowerSource> base_;
  std::vector<ModulationWindow> windows_;
};

/// Sum of several sources (solar farm + wind turbine).
class CompositeSource final : public PowerSource {
 public:
  void add(std::shared_ptr<const PowerSource> source);
  Watts power_w(SimTime t) const override;

 private:
  std::vector<std::shared_ptr<const PowerSource>> sources_;
};

}  // namespace gm::energy
