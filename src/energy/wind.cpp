#include "energy/wind.hpp"

#include <cmath>

#include "util/assert.hpp"
#include "util/distributions.hpp"
#include "util/math_utils.hpp"
#include "util/rng.hpp"

namespace gm::energy {
namespace {

/// Standard normal CDF via erf.
double normal_cdf(double z) {
  return 0.5 * (1.0 + std::erf(z / std::sqrt(2.0)));
}

}  // namespace

WindModel::WindModel(const WindConfig& config) : config_(config) {
  GM_CHECK(config_.horizon_days > 0, "wind horizon must be positive");
  GM_CHECK(config_.weibull_shape_k > 0.0 && config_.weibull_scale_ms > 0.0,
           "weibull parameters must be positive");
  GM_CHECK(config_.autocorrelation >= 0.0 && config_.autocorrelation < 1.0,
           "AR(1) coefficient must be in [0, 1)");
  GM_CHECK(config_.cut_in_ms < config_.rated_ms &&
               config_.rated_ms < config_.cut_out_ms,
           "turbine curve thresholds must be ordered");

  Rng rng(config_.seed);
  const std::size_t hours =
      static_cast<std::size_t>(config_.horizon_days) * 24;
  hourly_speed_ms_.resize(hours);

  // AR(1) Gaussian process z_t with unit marginal variance; map each
  // z_t through the Gaussian copula to the Weibull marginal.
  const double rho = config_.autocorrelation;
  const double innovation_sd = std::sqrt(1.0 - rho * rho);
  double z = sample_normal(rng);
  for (std::size_t h = 0; h < hours; ++h) {
    const double u = clamp(normal_cdf(z), 1e-12, 1.0 - 1e-12);
    hourly_speed_ms_[h] =
        config_.weibull_scale_ms *
        std::pow(-std::log(1.0 - u), 1.0 / config_.weibull_shape_k);
    z = rho * z + innovation_sd * sample_normal(rng);
  }
}

double WindModel::wind_speed_ms(SimTime t) const {
  if (t < 0 || hourly_speed_ms_.empty()) return 0.0;
  auto idx = static_cast<std::size_t>(t / 3600);
  if (idx >= hourly_speed_ms_.size())
    idx = hourly_speed_ms_.size() - 24 + idx % 24;  // repeat last day
  const std::size_t next = std::min(idx + 1, hourly_speed_ms_.size() - 1);
  const double frac = static_cast<double>(t % 3600) / 3600.0;
  return lerp(hourly_speed_ms_[idx], hourly_speed_ms_[next], frac);
}

Watts WindModel::turbine_power_w(double speed_ms) const {
  if (speed_ms < config_.cut_in_ms || speed_ms >= config_.cut_out_ms)
    return 0.0;
  if (speed_ms >= config_.rated_ms) return config_.rated_power_w;
  // Cubic ramp between cut-in and rated speed.
  const double num = std::pow(speed_ms, 3) - std::pow(config_.cut_in_ms, 3);
  const double den =
      std::pow(config_.rated_ms, 3) - std::pow(config_.cut_in_ms, 3);
  return config_.rated_power_w * num / den;
}

Watts WindModel::power_w(SimTime t) const {
  return turbine_power_w(wind_speed_ms(t));
}

}  // namespace gm::energy
