#pragma once
// Wind production model (the paper's stated future-work direction):
// hourly wind speeds with a Weibull marginal distribution and AR(1)
// temporal correlation (Gaussian copula), pushed through a standard
// turbine power curve. Deterministic after construction, like solar.

#include <cstdint>
#include <vector>

#include "energy/supply.hpp"

namespace gm::energy {

struct WindConfig {
  int horizon_days = 14;
  std::uint64_t seed = 43;

  double weibull_shape_k = 2.0;     ///< Rayleigh-like
  double weibull_scale_ms = 7.0;    ///< mean speed ≈ 6.2 m/s
  double autocorrelation = 0.85;    ///< hour-to-hour AR(1) coefficient

  // Turbine power curve.
  Watts rated_power_w = 10000.0;    ///< small on-site turbine
  double cut_in_ms = 3.0;
  double rated_ms = 12.0;
  double cut_out_ms = 25.0;
};

class WindModel final : public PowerSource {
 public:
  explicit WindModel(const WindConfig& config);

  Watts power_w(SimTime t) const override;

  /// Hourly wind speed in m/s (linear interpolation between samples).
  double wind_speed_ms(SimTime t) const;

  /// The turbine curve alone (exposed for tests): W for a given speed.
  Watts turbine_power_w(double speed_ms) const;

  const WindConfig& config() const { return config_; }

 private:
  WindConfig config_;
  std::vector<double> hourly_speed_ms_;
};

}  // namespace gm::energy
