#include "federation/federation.hpp"

#include <algorithm>

#include "util/assert.hpp"
#include "util/rng.hpp"

namespace gm::federation {

void FederationConfig::validate() const {
  GM_CHECK(sites.size() >= 1, "federation needs at least one site");
  GM_CHECK(min_slack_to_move_s >= 0.0, "negative move slack");
  GM_CHECK(min_surplus_gap_w >= 0.0, "negative surplus gap");
  GM_CHECK(wan_transfer_energy_j >= 0.0, "negative WAN energy");
  const SimTime slot = sites.front().experiment.slot_length_s;
  const int days = sites.front().experiment.workload.duration_days;
  const int drain = sites.front().experiment.max_drain_slots;
  for (const auto& site : sites) {
    site.experiment.validate();
    GM_CHECK(site.experiment.slot_length_s == slot,
             "sites must share the slot length");
    GM_CHECK(site.experiment.workload.duration_days == days &&
                 site.experiment.max_drain_slots == drain,
             "sites must share the simulation horizon");
  }
}

double FederationResult::total_brown_kwh() const {
  double total = 0.0;
  for (const auto& s : sites) total += s.result.brown_kwh();
  return total;
}

double FederationResult::total_green_supply_kwh() const {
  double total = 0.0;
  for (const auto& s : sites) total += s.result.green_supply_kwh();
  return total;
}

double FederationResult::total_demand_kwh() const {
  double total = 0.0;
  for (const auto& s : sites) total += s.result.demand_kwh();
  return total;
}

double FederationResult::total_curtailed_kwh() const {
  double total = 0.0;
  for (const auto& s : sites) total += s.result.curtailed_kwh();
  return total;
}

std::uint64_t FederationResult::total_deadline_misses() const {
  std::uint64_t total = 0;
  for (const auto& s : sites) total += s.result.qos.deadline_misses;
  return total;
}

FederationEngine::FederationEngine(const FederationConfig& config,
                                   std::shared_ptr<obs::Recorder> recorder)
    : config_(config), recorder_(std::move(recorder)) {
  config_.validate();
  engines_.reserve(config_.sites.size());
  for (const auto& site : config_.sites)
    engines_.push_back(
        std::make_unique<core::SimulationEngine>(site.experiment));
}

Watts FederationEngine::surplus_score(std::size_t site,
                                      SlotIndex slot) const {
  const auto& engine = *engines_[site];
  const auto& experiment = config_.sites[site].experiment;
  const double fg = engine.slot_fg_util(slot);
  const Watts committed =
      fg * experiment.cluster.node.peak_w() +
      experiment.cluster.node.idle_floor_w();  // one-node floor proxy
  return engine.slot_green_w(slot) - committed;
}

Joules FederationEngine::upcoming_surplus_j(std::size_t site,
                                            SlotIndex slot,
                                            int window) const {
  const auto& engine = *engines_[site];
  const auto& experiment = config_.sites[site].experiment;
  const double slot_len =
      static_cast<double>(experiment.slot_length_s);
  Joules total = 0.0;
  for (int j = 0; j < window; ++j) {
    const SlotIndex s = slot + j;
    const Watts committed =
        engine.slot_fg_util(s) * experiment.cluster.node.peak_w() +
        engine.coverage_floor() *
            experiment.cluster.node.idle_floor_w();
    total += std::max(0.0, engine.slot_green_w(s) - committed) *
             slot_len;
  }
  return total;
}

Joules FederationEngine::pending_work_energy_j(std::size_t site) const {
  const auto& node = config_.sites[site].experiment.cluster.node;
  // Marginal power of a typical running task (same shape as the
  // GreenMatch planner's unit-energy estimate).
  const Watts per_task =
      0.3 * (node.peak_w() - node.idle_floor_w()) +
      (node.task_slots > 0
           ? node.idle_floor_w() / static_cast<double>(node.task_slots)
           : 0.0);
  return engines_[site]->pending_work_s() * per_task;
}

void FederationEngine::broker_slot(SlotIndex slot, SimTime now) {
  if (engines_.size() < 2) return;

  // Rank sites by surplus outlook for this slot.
  std::size_t best = 0, worst = 0;
  for (std::size_t i = 1; i < engines_.size(); ++i) {
    if (surplus_score(i, slot) > surplus_score(best, slot)) best = i;
    if (surplus_score(i, slot) < surplus_score(worst, slot)) worst = i;
  }
  if (best == worst) return;
  const Watts gap =
      surplus_score(best, slot) - surplus_score(worst, slot);
  if (gap < config_.min_surplus_gap_w) return;
  if (engines_[worst]->pending_count() == 0) return;

  // Move only when the donor genuinely cannot cover its own pending
  // work with local green over the look-ahead — otherwise the local
  // scheduler will place the work into its own noon and a transfer
  // only adds churn — and when the recipient has surplus to spare
  // beyond its own backlog.
  const Joules donor_surplus =
      upcoming_surplus_j(worst, slot, config_.donor_lookahead_slots);
  if (donor_surplus >= pending_work_energy_j(worst)) return;
  const Joules recipient_spare =
      upcoming_surplus_j(best, slot, config_.donor_lookahead_slots) -
      pending_work_energy_j(best);
  if (recipient_spare <= 0.0) return;

  const auto moved = engines_[worst]->extract_transferable_tasks(
      now, config_.min_slack_to_move_s, config_.max_moves_per_slot);
  const auto dest_groups = static_cast<std::uint32_t>(
      config_.sites[best].experiment.cluster.placement.group_count);
  for (const auto& p : moved) {
    storage::BackgroundTask task = p.task;
    // Re-home into the destination's group universe (the destination
    // holds a geo-replica of the data); fresh id avoids collisions.
    task.group = static_cast<storage::GroupId>(
        mix_hash(task.id, 0xfed) % dest_groups);
    task.id = next_moved_task_id_++;
    if (recorder_)
      recorder_->event("transfer", static_cast<double>(now))
          .set("task", static_cast<std::uint64_t>(task.id))
          .set("from", config_.sites[worst].name)
          .set("to", config_.sites[best].name)
          .set("remaining_s", p.remaining_s);
    engines_[best]->inject_task(task, p.remaining_s);
    ++tasks_moved_;
  }
}

FederationResult FederationEngine::run() {
  const SlotIndex slots = engines_.front()->total_slots();
  for (const auto& engine : engines_)
    GM_CHECK(engine->total_slots() == slots,
             "sites disagree on the horizon");

  const SimTime slot_len = config_.sites.front().experiment.slot_length_s;
  for (SlotIndex slot = 0; slot < slots; ++slot) {
    if (config_.enable_task_routing)
      broker_slot(slot, slot * slot_len);
    for (const auto& engine : engines_) engine->run_slot(slot);
  }

  FederationResult result;
  result.tasks_moved = tasks_moved_;
  result.wan_energy_j =
      static_cast<double>(tasks_moved_) * config_.wan_transfer_energy_j;
  for (std::size_t i = 0; i < engines_.size(); ++i)
    result.sites.push_back(SiteResult{
        config_.sites[i].name, engines_[i]->finalize().result});
  if (recorder_) {
    auto& m = recorder_->metrics();
    m.counter_set("federation.tasks_moved", tasks_moved_);
    m.gauge_set("federation.wan_kwh", j_to_kwh(result.wan_energy_j));
    m.gauge_set("federation.total_brown_kwh", result.total_brown_kwh());
  }
  return result;
}

FederationResult run_federation(const FederationConfig& config) {
  FederationEngine engine(config);
  return engine.run();
}

FederationConfig make_follow_the_sun(const core::ExperimentConfig& base,
                                     int sites) {
  GM_CHECK(sites >= 1, "need at least one site");
  FederationConfig config;
  for (int i = 0; i < sites; ++i) {
    SiteConfig site;
    site.name = "site-" + std::to_string(i);
    site.experiment = base;
    site.experiment.solar.utc_offset_h =
        i * (24.0 / sites) <= 14.0 ? i * (24.0 / sites)
                                   : i * (24.0 / sites) - 24.0;
    site.experiment.solar.seed = base.solar.seed + i * 101;
    site.experiment.workload.seed = base.workload.seed + i * 777;
    config.sites.push_back(std::move(site));
  }
  return config;
}

}  // namespace gm::federation
