#pragma once
// Multi-site federation: the follow-the-sun extension the lineage's
// introduction motivates. Several sites — each a full SimulationEngine
// with its own cluster, workload, solar phase (utc offset) and battery
// — run in lockstep on a common clock. At each slot boundary a broker
// moves transferable deferrable tasks from the site with the worst
// green outlook to the site with the best, paying a WAN transfer
// energy per moved task.
//
// Foreground I/O never moves (it is bound to its data); only
// background tasks with enough slack migrate, and they are re-homed
// into the destination's placement-group universe (modeling that the
// destination holds a geo-replica of the data the task touches).

#include <memory>
#include <string>
#include <vector>

#include "core/engine.hpp"

namespace gm::federation {

struct SiteConfig {
  std::string name;
  core::ExperimentConfig experiment;
};

struct FederationConfig {
  std::vector<SiteConfig> sites;
  /// Enables the follow-the-sun broker (off = isolated sites).
  bool enable_task_routing = true;
  /// A task only moves if its slack exceeds this (it must survive the
  /// transfer and still be schedulable flexibly at the destination).
  Seconds min_slack_to_move_s = 6 * 3600.0;
  /// Broker acts only when the best site's green surplus exceeds the
  /// worst's by at least this much.
  Watts min_surplus_gap_w = 2000.0;
  /// Look-ahead window (slots) used to decide whether the donor can
  /// cover its own pending work with local green energy.
  int donor_lookahead_slots = 24;
  std::size_t max_moves_per_slot = 16;
  /// Energy to ship one task's state/data cross-site (both NICs + WAN
  /// amortization). Charged to the federation, outside site ledgers.
  Joules wan_transfer_energy_j = 30e3;

  void validate() const;
};

struct SiteResult {
  std::string name;
  metrics::RunResult result;
};

struct FederationResult {
  std::vector<SiteResult> sites;
  std::uint64_t tasks_moved = 0;
  Joules wan_energy_j = 0.0;

  double total_brown_kwh() const;
  double total_green_supply_kwh() const;
  double total_demand_kwh() const;
  double total_curtailed_kwh() const;
  std::uint64_t total_deadline_misses() const;
  /// Brown + WAN (everything the grid ultimately supplies).
  double total_grid_kwh() const {
    return total_brown_kwh() + j_to_kwh(wan_energy_j);
  }
};

class FederationEngine {
 public:
  /// `recorder` is the optional observability handle (shared across
  /// the federation, not the per-site engines): the broker emits one
  /// `transfer` trace event per moved task and federation-level
  /// counters into the registry. Sites keep null recorders so slot
  /// records stay unambiguous; pass site-specific recorders through
  /// per-site SimulationEngine construction for that.
  explicit FederationEngine(const FederationConfig& config,
                            std::shared_ptr<obs::Recorder> recorder =
                                nullptr);

  FederationResult run();

  std::size_t site_count() const { return engines_.size(); }

 private:
  /// Green surplus score of a site for slot `slot` (signal the broker
  /// ranks by): forecast green power minus the foreground-committed
  /// power estimate.
  Watts surplus_score(std::size_t site, SlotIndex slot) const;
  /// Green surplus energy a site expects over [slot, slot+window).
  Joules upcoming_surplus_j(std::size_t site, SlotIndex slot,
                            int window) const;
  /// Energy the site's pending deferrable work will consume.
  Joules pending_work_energy_j(std::size_t site) const;
  void broker_slot(SlotIndex slot, SimTime now);

  FederationConfig config_;
  std::shared_ptr<obs::Recorder> recorder_;
  std::vector<std::unique_ptr<core::SimulationEngine>> engines_;
  std::uint64_t tasks_moved_ = 0;
  storage::TaskId next_moved_task_id_ = 3'000'000'000ULL;
};

/// Convenience wrapper.
FederationResult run_federation(const FederationConfig& config);

/// Builds an N-site follow-the-sun configuration from a base
/// experiment: site i gets utc offset i·(24/N) h, a distinct workload
/// and weather seed, and the base's panels/battery.
FederationConfig make_follow_the_sun(const core::ExperimentConfig& base,
                                     int sites);

}  // namespace gm::federation
