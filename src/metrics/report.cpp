#include "metrics/report.hpp"

#include <iomanip>
#include <ostream>
#include <sstream>

namespace gm::metrics {

// The admission stanza appears only for open-system runs: closed-loop
// summaries (which the golden corpus pins byte-for-byte) are
// unchanged. Counts only — never wall-clock latencies.
std::string RunResult::admission_line() const {
  if (qos.admission_decisions == 0 && qos.arrivals_generated == 0) {
    return "";
  }
  std::ostringstream os;
  os << "  admission:           " << qos.arrivals_generated
     << " arrivals, " << qos.arrivals_admitted << " admitted ("
     << qos.arrivals_overflow_admits << " overflow), "
     << qos.arrivals_rejected << " rejected, "
     << qos.admission_deferrals << " deferrals\n";
  return os.str();
}

void RunResult::print_summary(std::ostream& out) const {
  const auto kwh = [](Joules j) { return j_to_kwh(j); };
  out << std::fixed << std::setprecision(2);
  out << "policy: " << scheduler.policy_name << '\n'
      << "  duration:            " << s_to_days(static_cast<double>(duration))
      << " days\n"
      << "  demand:              " << kwh(energy.demand_j) << " kWh\n"
      << "  green supply:        " << kwh(energy.green_supply_j) << " kWh\n"
      << "  green used directly: " << kwh(energy.green_direct_j) << " kWh\n"
      << "  battery in/out:      " << kwh(energy.battery_charge_drawn_j)
      << " / " << kwh(energy.battery_discharged_j) << " kWh\n"
      << "  brown energy:        " << kwh(energy.brown_j) << " kWh\n"
      << "  curtailed green:     " << kwh(energy.curtailed_j) << " kWh\n"
      << "  green utilization:   " << energy.green_utilization() * 100.0
      << " %\n"
      << "  battery losses:      "
      << kwh(battery.conversion_loss_j + battery.self_discharge_loss_j)
      << " kWh (" << battery.equivalent_cycles << " cycles)\n"
      << "  transition overhead: " << kwh(energy.overhead_transition_j)
      << " kWh, migration overhead: " << kwh(energy.overhead_migration_j)
      << " kWh\n"
      << "  tasks:               " << qos.tasks_completed << "/"
      << qos.tasks_total << " completed, "
      << qos.deadline_misses << " deadline misses ("
      << qos.deadline_miss_rate() * 100.0 << " %)\n"
      << admission_line()
      << "  read latency:        p50 " << qos.read_latency_p50_s * 1000.0
      << " ms, p95 " << qos.read_latency_p95_s * 1000.0 << " ms, p99 "
      << qos.read_latency_p99_s * 1000.0 << " ms\n"
      << "  mean active nodes:   " << scheduler.mean_active_nodes << '\n'
      << "  power cycles:        " << scheduler.node_power_ons << " on / "
      << scheduler.node_power_offs << " off, migrations "
      << scheduler.task_migrations << '\n'
      << "  grid carbon:         " << grid_carbon_g / 1000.0 << " kgCO2e, "
      << "cost $" << grid_cost_usd << '\n';
}

}  // namespace gm::metrics
