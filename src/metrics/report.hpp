#pragma once
// Run-level results: everything a bench or example needs to print a
// paper-style row. Produced by the simulation engine, aggregated from
// the energy ledger, battery telemetry, QoS trackers and scheduler
// action counters.

#include <cstdint>
#include <iosfwd>
#include <string>

#include "energy/ledger.hpp"
#include "util/units.hpp"

namespace gm::metrics {

struct QosReport {
  std::uint64_t foreground_requests = 0;
  std::uint64_t unavailable_reads = 0;
  double read_latency_p50_s = 0.0;
  double read_latency_p95_s = 0.0;
  double read_latency_p99_s = 0.0;
  std::uint64_t offloaded_writes = 0;

  std::uint64_t tasks_total = 0;
  std::uint64_t tasks_completed = 0;
  std::uint64_t deadline_misses = 0;
  /// Tasks still pending when the run horizon ended (each is also
  /// counted as a deadline miss). tasks_total = tasks_completed +
  /// tasks_unfinished is an audited invariant.
  std::uint64_t tasks_unfinished = 0;
  double deadline_miss_rate() const {
    return tasks_total ? static_cast<double>(deadline_misses) /
                             static_cast<double>(tasks_total)
                       : 0.0;
  }
  /// Mean completion delay relative to release (hours).
  double mean_task_sojourn_h = 0.0;

  // Open-system admission accounting (all zero in closed-loop runs).
  // arrivals_generated = arrivals_admitted + arrivals_rejected is an
  // audited invariant: every arrival the stream emits is either
  // admitted into the pending pool or explicitly booked as rejected
  // (tasks still deferred at the run horizon are booked rejected at
  // finalize). See docs/admission.md.
  std::uint64_t arrivals_generated = 0;
  std::uint64_t arrivals_admitted = 0;
  std::uint64_t arrivals_rejected = 0;
  /// Subset of arrivals_admitted taken via the grid-overflow policy.
  std::uint64_t arrivals_overflow_admits = 0;
  /// Total admission decisions, including defer re-offers.
  std::uint64_t admission_decisions = 0;
  std::uint64_t admission_deferrals = 0;  ///< defer decisions
};

struct BatteryReport {
  Joules capacity_j = 0.0;
  Joules charged_in_j = 0.0;
  Joules discharged_out_j = 0.0;
  Joules conversion_loss_j = 0.0;
  Joules self_discharge_loss_j = 0.0;
  /// Stored energy written off by the capacity clamp (health fade /
  /// rounding) — see Battery::clamp_loss_j().
  Joules clamp_loss_j = 0.0;
  Joules initial_stored_j = 0.0;
  Joules final_stored_j = 0.0;
  double equivalent_cycles = 0.0;
  double health_fraction = 1.0;  ///< remaining capacity / nameplate
  double volume_l = 0.0;
  double price_usd = 0.0;
};

struct SchedulerReport {
  std::string policy_name;
  std::uint64_t node_power_ons = 0;
  std::uint64_t node_power_offs = 0;
  std::uint64_t task_migrations = 0;
  std::uint64_t forced_wakeups = 0;
  std::uint64_t forced_urgent_runs = 0;
  std::uint64_t assignment_failures = 0;
  std::uint64_t nodes_failed = 0;  ///< injected hardware failures
  double mean_active_nodes = 0.0;
  double plan_solve_ms_total = 0.0;  ///< planner CPU time (telemetry)

  // Flow-planner solver telemetry (zero for non-GreenMatch policies).
  // NOT printed by print_summary — the golden corpus pins its output;
  // these surface via the metrics registry, bench counters, and the
  // greenmatch_sim planner stanza (printed only when observability is
  // on). See docs/observability.md §solver telemetry.
  std::uint64_t plan_cache_hits = 0;
  std::uint64_t warm_accepts = 0;
  std::uint64_t warm_rejects = 0;
  std::uint64_t solver_solves = 0;
  std::uint64_t solver_dijkstra_runs = 0;
  std::uint64_t solver_dijkstra_pops = 0;
  std::uint64_t solver_relaxations = 0;
  std::uint64_t solver_augmenting_paths = 0;
  std::uint64_t solver_arena_bytes_peak = 0;
  // Cost-scaling solver telemetry (zero under the default SSP solver;
  // docs/solver.md has the field glossary).
  std::uint64_t solver_cs_phases = 0;
  std::uint64_t solver_cs_pushes = 0;
  std::uint64_t solver_cs_relabels = 0;
  std::uint64_t solver_cs_price_refinements = 0;
  std::uint64_t solver_cs_global_updates = 0;
  std::uint64_t solver_incremental_accepts = 0;
  std::uint64_t solver_incremental_rebuilds = 0;
  // Sharded-planner telemetry (zero when scheduler.shards = 1).
  std::uint64_t planner_shards = 0;
  std::uint64_t reconciliation_solves = 0;
  // Admission fast-path telemetry (zero in closed-loop runs). Wall
  // clock, so NOT printed by print_summary and not audited — surfaces
  // via the metrics registry, bench counters and the greenmatch_sim
  // admission stanza (docs/admission.md).
  double admission_decision_wall_ms = 0.0;
  double admission_decision_p50_us = 0.0;
  double admission_decision_p99_us = 0.0;
};

struct RunResult {
  energy::LedgerTotals energy;
  QosReport qos;
  BatteryReport battery;
  SchedulerReport scheduler;
  double grid_carbon_g = 0.0;
  double grid_cost_usd = 0.0;
  SimTime duration = 0;

  double brown_kwh() const { return j_to_kwh(energy.brown_j); }
  double green_supply_kwh() const {
    return j_to_kwh(energy.green_supply_j);
  }
  double curtailed_kwh() const { return j_to_kwh(energy.curtailed_j); }
  double demand_kwh() const { return j_to_kwh(energy.demand_j); }
  /// Total losses attributable to storage + scheduling overheads.
  double losses_kwh() const {
    return j_to_kwh(battery.conversion_loss_j +
                    battery.self_discharge_loss_j +
                    battery.clamp_loss_j +
                    energy.overhead_transition_j +
                    energy.overhead_migration_j);
  }

  /// Human-readable multi-line summary.
  void print_summary(std::ostream& out) const;

 private:
  /// "  admission: ..." line, or "" for closed-loop runs.
  std::string admission_line() const;
};

}  // namespace gm::metrics
