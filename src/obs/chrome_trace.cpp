#include "obs/chrome_trace.hpp"

#include <fstream>

#include "obs/trace.hpp"
#include "util/assert.hpp"

namespace gm::obs {

namespace {

/// JSON number formatting without locale surprises; trace timestamps
/// are microseconds so three decimals keep nanosecond resolution.
std::string num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

}  // namespace

void ChromeTraceWriter::add_span(const char* name, double start_us,
                                 double dur_us) {
  if (spans_.size() >= kMaxEvents) {
    ++dropped_;
    return;
  }
  spans_.push_back(Span{name, start_us, dur_us});
}

void ChromeTraceWriter::add_counter(const std::string& name,
                                    double sim_time_us, double value) {
  if (counters_.size() >= kMaxEvents) {
    ++dropped_;
    return;
  }
  counters_.push_back(Counter{name, sim_time_us, value});
}

void ChromeTraceWriter::write(const std::string& path) const {
  std::ofstream out(path);
  if (!out)
    throw RuntimeError("cannot open chrome trace file for writing: " +
                       path);
  out << "{\"traceEvents\":[\n";
  bool first = true;
  const auto sep = [&]() -> std::ostream& {
    if (!first) out << ",\n";
    first = false;
    return out;
  };
  // Track names: process metadata events label the two pids in the UI.
  sep() << R"({"ph":"M","pid":1,"tid":1,"name":"process_name",)"
           R"("args":{"name":"greenmatch wall-clock"}})";
  sep() << R"({"ph":"M","pid":2,"tid":1,"name":"process_name",)"
           R"("args":{"name":"greenmatch sim-time"}})";
  for (const auto& s : spans_)
    sep() << R"({"ph":"X","pid":1,"tid":1,"name":")"
          << json_escape(s.name) << R"(","ts":)" << num(s.start_us)
          << R"(,"dur":)" << num(s.dur_us) << "}";
  for (const auto& c : counters_)
    sep() << R"({"ph":"C","pid":2,"tid":1,"name":")"
          << json_escape(c.name) << R"(","ts":)" << num(c.t_us)
          << R"(,"args":{"value":)" << num(c.value) << "}}";
  out << "\n]}\n";
}

}  // namespace gm::obs
