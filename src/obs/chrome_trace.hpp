#pragma once
// Chrome trace-event exporter: writes the JSON array format that
// chrome://tracing and https://ui.perfetto.dev load directly, so a
// simulated run can be inspected on a real timeline instead of in
// aggregate tables. Two tracks share one file:
//
//   pid 1 "greenmatch wall-clock" — "ph":"X" complete events, one per
//     GM_OBS_SCOPE activation, timestamped in microseconds since the
//     recorder's construction (its epoch). Nested scopes nest visually
//     because Perfetto stacks spans by begin/duration on one tid.
//   pid 2 "greenmatch sim-time"  — "ph":"C" counter events keyed on
//     simulated seconds (scaled to µs), one sample per slot for the
//     energy-balance series (green/brown/curtailed kW, battery SoC,
//     pending depth, active nodes).
//
// Unlike the flat JSONL trace (obs/trace.hpp) this format is nested
// JSON, so it gets its own tiny writer rather than reusing JsonObject.
// Events are buffered (bounded; see kMaxEvents) and written on
// finish(), because the trailing `]}` makes streaming append-only
// output awkward and runs are short.
//
// The format reference is the "Trace Event Format" document from the
// Chromium project; only the subset above is emitted. Load steps are
// documented in docs/observability.md ("Perfetto workflow").

#include <cstdint>
#include <string>
#include <vector>

namespace gm::obs {

class ChromeTraceWriter {
 public:
  /// Buffer cap: spans past this are counted but dropped, so a
  /// pathological run cannot balloon memory. 1<<20 spans ≈ 100 MB of
  /// output, far beyond any useful interactive trace.
  static constexpr std::size_t kMaxEvents = 1 << 20;

  /// A complete ("ph":"X") span on the wall-clock track.
  void add_span(const char* name, double start_us, double dur_us);

  /// A counter ("ph":"C") sample on the sim-time track. Series with
  /// the same `name` become one stacked chart in the UI.
  void add_counter(const std::string& name, double sim_time_us,
                   double value);

  std::size_t events() const { return spans_.size() + counters_.size(); }
  std::uint64_t dropped() const { return dropped_; }

  /// Writes `{"traceEvents":[...]}` to `path`. Throws gm::RuntimeError
  /// if the file cannot be opened.
  void write(const std::string& path) const;

 private:
  struct Span {
    const char* name;  ///< GM_OBS_SCOPE literals; never freed
    double start_us;
    double dur_us;
  };
  struct Counter {
    std::string name;
    double t_us;
    double value;
  };
  std::vector<Span> spans_;
  std::vector<Counter> counters_;
  std::uint64_t dropped_ = 0;
};

}  // namespace gm::obs
