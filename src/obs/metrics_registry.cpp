#include "obs/metrics_registry.hpp"

#include <limits>
#include <ostream>

namespace gm::obs {

namespace {

/// Prometheus metric names allow [a-zA-Z0-9_:]; dotted registry names
/// map onto that with '_' and get a library prefix.
std::string prom_name(const std::string& name) {
  std::string out = "gm_";
  out.reserve(name.size() + 3);
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out.push_back(ok ? c : '_');
  }
  return out;
}

/// Mean of a histogram bin, used to approximate the _sum series (the
/// histogram itself only stores counts).
double bin_mid(const sim::Histogram& h, std::size_t i) {
  const double width =
      (h.bin_hi() - h.bin_lo()) / static_cast<double>(h.bin_count());
  return h.bin_lo() + (static_cast<double>(i) + 0.5) * width;
}

}  // namespace

void MetricsRegistry::counter_add(const std::string& name,
                                  std::uint64_t delta) {
  counters_[name] += delta;
}

void MetricsRegistry::counter_set(const std::string& name,
                                  std::uint64_t value) {
  counters_[name] = value;
}

void MetricsRegistry::gauge_set(const std::string& name, double value) {
  gauges_[name] = value;
}

void MetricsRegistry::observe(const std::string& name, double value) {
  accumulators_[name].add(value);
}

sim::Histogram& MetricsRegistry::histogram(const std::string& name,
                                           double lo, double hi,
                                           std::size_t bins) {
  auto it = histograms_.find(name);
  if (it == histograms_.end())
    it = histograms_
             .emplace(std::piecewise_construct,
                      std::forward_as_tuple(name),
                      std::forward_as_tuple(lo, hi, bins))
             .first;
  return it->second;
}

std::uint64_t MetricsRegistry::counter(const std::string& name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

double MetricsRegistry::gauge(const std::string& name) const {
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second;
}

const sim::Accumulator* MetricsRegistry::accumulator(
    const std::string& name) const {
  const auto it = accumulators_.find(name);
  return it == accumulators_.end() ? nullptr : &it->second;
}

const sim::Histogram* MetricsRegistry::find_histogram(
    const std::string& name) const {
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

void MetricsRegistry::write_csv(std::ostream& out) const {
  const auto prev = out.precision(
      std::numeric_limits<double>::max_digits10);
  out << "metric,kind,field,value\n";
  for (const auto& [name, v] : counters_)
    out << name << ",counter,value," << v << '\n';
  for (const auto& [name, v] : gauges_)
    out << name << ",gauge,value," << v << '\n';
  for (const auto& [name, a] : accumulators_) {
    out << name << ",summary,count," << a.count() << '\n';
    out << name << ",summary,sum," << a.sum() << '\n';
    out << name << ",summary,mean," << a.mean() << '\n';
    out << name << ",summary,min," << a.min() << '\n';
    out << name << ",summary,max," << a.max() << '\n';
  }
  for (const auto& [name, h] : histograms_) {
    out << name << ",histogram,count," << h.count() << '\n';
    out << name << ",histogram,underflow," << h.underflow() << '\n';
    for (std::size_t i = 0; i < h.bin_count(); ++i)
      out << name << ",histogram,bin" << i << ',' << h.bin(i) << '\n';
    out << name << ",histogram,overflow," << h.overflow() << '\n';
  }
  out.precision(prev);
}

void MetricsRegistry::write_prometheus(std::ostream& out) const {
  const auto prev = out.precision(
      std::numeric_limits<double>::max_digits10);
  for (const auto& [name, v] : counters_) {
    const std::string p = prom_name(name);
    out << "# TYPE " << p << " counter\n" << p << ' ' << v << '\n';
  }
  for (const auto& [name, v] : gauges_) {
    const std::string p = prom_name(name);
    out << "# TYPE " << p << " gauge\n" << p << ' ' << v << '\n';
  }
  for (const auto& [name, a] : accumulators_) {
    const std::string p = prom_name(name);
    out << "# TYPE " << p << " summary\n";
    out << p << "_count " << a.count() << '\n';
    out << p << "_sum " << a.sum() << '\n';
    out << p << "_min " << a.min() << '\n';
    out << p << "_max " << a.max() << '\n';
    out << p << "_mean " << a.mean() << '\n';
  }
  for (const auto& [name, h] : histograms_) {
    const std::string p = prom_name(name);
    out << "# TYPE " << p << " histogram\n";
    std::uint64_t cumulative = h.underflow();
    double approx_sum = h.bin_lo() * static_cast<double>(h.underflow());
    const double width = (h.bin_hi() - h.bin_lo()) /
                         static_cast<double>(h.bin_count());
    for (std::size_t i = 0; i < h.bin_count(); ++i) {
      cumulative += h.bin(i);
      approx_sum += bin_mid(h, i) * static_cast<double>(h.bin(i));
      out << p << "_bucket{le=\""
          << h.bin_lo() + static_cast<double>(i + 1) * width << "\"} "
          << cumulative << '\n';
    }
    approx_sum += h.bin_hi() * static_cast<double>(h.overflow());
    out << p << "_bucket{le=\"+Inf\"} " << h.count() << '\n';
    out << p << "_count " << h.count() << '\n';
    out << p << "_sum " << approx_sum << '\n';
  }
  out.precision(prev);
}

}  // namespace gm::obs
