#pragma once
// Named-metric registry: monotonic counters, gauges, accumulators
// (count/mean/min/max summaries) and fixed-bin histograms, looked up
// by dotted name ("engine.tasks_completed"). Reuses the sim::
// statistics types so a registry histogram behaves exactly like the
// router's latency histogram.
//
// Two exporters cover the consumers we have today: CSV (one metric per
// row, for spreadsheets and plots) and Prometheus text exposition
// (written to a file; a node-exporter-style scrape of simulation runs).
// The exporter is chosen by file extension in obs::Recorder: ".csv"
// gets CSV, everything else the Prometheus format.

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>

#include "sim/stats.hpp"

namespace gm::obs {

class MetricsRegistry {
 public:
  // --- writes --------------------------------------------------------
  void counter_add(const std::string& name, std::uint64_t delta = 1);
  void counter_set(const std::string& name, std::uint64_t value);
  void gauge_set(const std::string& name, double value);
  /// Adds a sample to the named accumulator (created on first use).
  void observe(const std::string& name, double value);
  /// Returns the named histogram, creating it with the given bin
  /// layout on first use (later calls ignore the layout arguments).
  sim::Histogram& histogram(const std::string& name, double lo,
                            double hi, std::size_t bins);

  // --- reads ---------------------------------------------------------
  std::uint64_t counter(const std::string& name) const;
  double gauge(const std::string& name) const;
  const sim::Accumulator* accumulator(const std::string& name) const;
  const sim::Histogram* find_histogram(const std::string& name) const;
  bool empty() const {
    return counters_.empty() && gauges_.empty() &&
           accumulators_.empty() && histograms_.empty();
  }

  // --- exporters -----------------------------------------------------
  /// CSV: header `metric,kind,field,value`, one row per exported
  /// scalar (a histogram exports one row per bucket).
  void write_csv(std::ostream& out) const;
  /// Prometheus text exposition: names are sanitized (dots and dashes
  /// become underscores) and prefixed `gm_`; accumulators export
  /// _count/_sum/_min/_max/_mean series, histograms cumulative
  /// `_bucket{le=...}` series plus _count and _sum.
  void write_prometheus(std::ostream& out) const;

 private:
  // std::map keeps export order deterministic across runs.
  std::map<std::string, std::uint64_t> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, sim::Accumulator> accumulators_;
  std::map<std::string, sim::Histogram> histograms_;
};

}  // namespace gm::obs
