#include "obs/profile.hpp"

#include <algorithm>
#include <ostream>

#include "util/table.hpp"

namespace gm::obs {

void PhaseProfiler::record(std::string_view phase, double duration_ns) {
  // Heterogeneous find: the common (phase already seen) case touches
  // no std::string at all; only first sight pays the copy.
  auto it = phases_.find(phase);
  if (it == phases_.end())
    it = phases_.emplace(std::string(phase), PhaseStats{}).first;
  PhaseStats& s = it->second;
  ++s.calls;
  s.total_ns += duration_ns;
  s.max_ns = std::max(s.max_ns, duration_ns);
}

std::vector<std::pair<std::string, PhaseStats>>
PhaseProfiler::sorted_by_total() const {
  std::vector<std::pair<std::string, PhaseStats>> out(phases_.begin(),
                                                      phases_.end());
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a.second.total_ns != b.second.total_ns)
      return a.second.total_ns > b.second.total_ns;
    return a.first < b.first;
  });
  return out;
}

void PhaseProfiler::print_table(std::ostream& out) const {
  TextTable table({"phase", "calls", "total ms", "mean us", "max us"});
  for (const auto& [name, s] : sorted_by_total())
    table.add_row({name, std::to_string(s.calls),
                   TextTable::num(s.total_ms(), 3),
                   TextTable::num(s.mean_us(), 1),
                   TextTable::num(s.max_ns / 1e3, 1)});
  table.print(out);
}

}  // namespace gm::obs
