#include "obs/profile.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>

#include "util/table.hpp"

namespace gm::obs {

std::size_t LogHistogram::bucket_of(std::uint64_t v) {
  // Bucket index = exponent * 4 + top-2 mantissa bits. Values below
  // 2^kMantissaBits lack that many mantissa bits and map directly.
  if (v < (1ULL << kMantissaBits)) return static_cast<std::size_t>(v);
  int exp = 63;
  while (!(v >> exp)) --exp;  // position of the leading one bit
  const std::uint64_t mantissa =
      (v >> (exp - kMantissaBits)) & ((1ULL << kMantissaBits) - 1);
  return static_cast<std::size_t>(exp << kMantissaBits) +
         static_cast<std::size_t>(mantissa);
}

std::uint64_t LogHistogram::bucket_lo(std::size_t i) {
  const std::size_t exp = i >> kMantissaBits;
  const std::uint64_t mantissa = i & ((1ULL << kMantissaBits) - 1);
  if (exp < kMantissaBits) return i;  // the direct-mapped low range
  return (1ULL << exp) +
         (mantissa << (exp - kMantissaBits));
}

void LogHistogram::add(double value) {
  const std::uint64_t v =
      value <= 0.0 ? 0 : static_cast<std::uint64_t>(value);
  ++counts_[bucket_of(v)];
  ++total_;
}

double LogHistogram::quantile(double q) const {
  if (total_ == 0) return 0.0;
  q = std::min(1.0, std::max(0.0, q));
  // Rank of the q-th sample (1-based, ceil), then walk buckets.
  const std::uint64_t rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::ceil(q * static_cast<double>(total_))));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    if (counts_[i] == 0) continue;
    if (seen + counts_[i] >= rank) {
      // Interpolate position-in-bucket linearly over [lo, hi).
      const double lo = static_cast<double>(bucket_lo(i));
      const double hi = static_cast<double>(
          i + 1 < kBuckets ? bucket_lo(i + 1) : bucket_lo(i) * 2);
      const double frac = static_cast<double>(rank - seen) /
                          static_cast<double>(counts_[i]);
      return lo + (hi - lo) * frac;
    }
    seen += counts_[i];
  }
  return static_cast<double>(bucket_lo(kBuckets - 1));
}

void PhaseProfiler::record(std::string_view phase, double duration_ns) {
  // Heterogeneous find: the common (phase already seen) case touches
  // no std::string at all; only first sight pays the copy.
  auto it = phases_.find(phase);
  if (it == phases_.end())
    it = phases_.emplace(std::string(phase), PhaseStats{}).first;
  PhaseStats& s = it->second;
  ++s.calls;
  s.total_ns += duration_ns;
  s.max_ns = std::max(s.max_ns, duration_ns);
  s.latency_ns.add(duration_ns);
}

std::vector<std::pair<std::string, PhaseStats>>
PhaseProfiler::sorted_by_total() const {
  std::vector<std::pair<std::string, PhaseStats>> out(phases_.begin(),
                                                      phases_.end());
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a.second.total_ns != b.second.total_ns)
      return a.second.total_ns > b.second.total_ns;
    return a.first < b.first;
  });
  return out;
}

void PhaseProfiler::print_table(std::ostream& out) const {
  TextTable table({"phase", "calls", "total ms", "mean us", "p50 us",
                   "p95 us", "p99 us", "max us"});
  for (const auto& [name, s] : sorted_by_total())
    table.add_row({name, std::to_string(s.calls),
                   TextTable::num(s.total_ms(), 3),
                   TextTable::num(s.mean_us(), 1),
                   TextTable::num(s.p50_us(), 1),
                   TextTable::num(s.p95_us(), 1),
                   TextTable::num(s.p99_us(), 1),
                   TextTable::num(s.max_ns / 1e3, 1)});
  table.print(out);
}

}  // namespace gm::obs
