#pragma once
// Per-phase wall-clock profiling. Hot paths mark themselves with
// GM_OBS_SCOPE("policy.decide") (see obs/recorder.hpp for the macro);
// each scope's duration is aggregated here into call count / total /
// max per phase name plus a log-bucketed latency histogram, and the
// run ends with one profile table carrying p50/p95/p99 columns.
//
// Phase names are expected to be string literals; each name is stored
// by value only once, on first sight. Lookups are heterogeneous
// (transparent comparator, string_view key), so the steady-state
// record() hit never constructs a std::string.

#include <algorithm>
#include <array>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace gm::obs {

/// Log-bucketed latency histogram: bucket = (exponent, 2 mantissa
/// bits), i.e. four sub-buckets per power of two, so any quantile is
/// resolved to within ~12% of the true value across the full uint64
/// range with one fixed 256-entry array and no per-sample allocation.
/// Values are non-negative (nanoseconds in the profiler's use);
/// negatives clamp to zero.
class LogHistogram {
 public:
  void add(double value);
  std::uint64_t count() const { return total_; }
  /// Quantile estimate, q in [0, 1]; 0 when empty. Interpolates
  /// linearly inside the landing bucket.
  double quantile(double q) const;

 private:
  static constexpr int kMantissaBits = 2;
  static constexpr std::size_t kBuckets = 64 << kMantissaBits;
  static std::size_t bucket_of(std::uint64_t v);
  /// [lo, hi) value range covered by bucket i.
  static std::uint64_t bucket_lo(std::size_t i);

  std::array<std::uint64_t, kBuckets> counts_{};
  std::uint64_t total_ = 0;
};

struct PhaseStats {
  std::uint64_t calls = 0;
  double total_ns = 0.0;
  double max_ns = 0.0;
  LogHistogram latency_ns;  ///< per-call durations, for percentiles

  double total_ms() const { return total_ns / 1e6; }
  double mean_us() const {
    return calls ? total_ns / 1e3 / static_cast<double>(calls) : 0.0;
  }
  // The log-bucket estimate can overshoot the true extremum by up to
  // one bucket width; clamping to the tracked max keeps p99 <= max in
  // every report.
  double p50_us() const { return quantile_us(0.50); }
  double p95_us() const { return quantile_us(0.95); }
  double p99_us() const { return quantile_us(0.99); }

 private:
  double quantile_us(double q) const {
    return std::min(latency_ns.quantile(q), max_ns) / 1e3;
  }
};

class PhaseProfiler {
 public:
  void record(std::string_view phase, double duration_ns);

  const std::map<std::string, PhaseStats, std::less<>>& phases() const {
    return phases_;
  }
  bool empty() const { return phases_.empty(); }

  /// Phases sorted by total time, descending (ties by name).
  std::vector<std::pair<std::string, PhaseStats>> sorted_by_total()
      const;

  /// Aligned table: phase | calls | total ms | mean us | p50 | p95 |
  /// p99 | max us.
  void print_table(std::ostream& out) const;

 private:
  std::map<std::string, PhaseStats, std::less<>> phases_;
};

}  // namespace gm::obs
