#pragma once
// Per-phase wall-clock profiling. Hot paths mark themselves with
// GM_OBS_SCOPE("policy.decide") (see obs/recorder.hpp for the macro);
// each scope's duration is aggregated here into call count / total /
// max per phase name, and the run ends with one profile table.
//
// Phase names are expected to be string literals; each name is stored
// by value only once, on first sight. Lookups are heterogeneous
// (transparent comparator, string_view key), so the steady-state
// record() hit never constructs a std::string.

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace gm::obs {

struct PhaseStats {
  std::uint64_t calls = 0;
  double total_ns = 0.0;
  double max_ns = 0.0;

  double total_ms() const { return total_ns / 1e6; }
  double mean_us() const {
    return calls ? total_ns / 1e3 / static_cast<double>(calls) : 0.0;
  }
};

class PhaseProfiler {
 public:
  void record(std::string_view phase, double duration_ns);

  const std::map<std::string, PhaseStats, std::less<>>& phases() const {
    return phases_;
  }
  bool empty() const { return phases_.empty(); }

  /// Phases sorted by total time, descending (ties by name).
  std::vector<std::pair<std::string, PhaseStats>> sorted_by_total()
      const;

  /// Aligned table: phase | calls | total ms | mean us | max us.
  void print_table(std::ostream& out) const;

 private:
  std::map<std::string, PhaseStats, std::less<>> phases_;
};

}  // namespace gm::obs
