#include "obs/recorder.hpp"

#include <ctime>
#include <fstream>

#include "util/assert.hpp"
#include "util/log.hpp"
#include "util/units.hpp"

namespace gm::obs {

namespace {

/// `run.jsonl` → `run.manifest.json`; paths without an extension get
/// `.manifest.json` appended.
std::string derive_manifest_path(const RecorderConfig& config) {
  const std::string& base = !config.trace_path.empty()
                                ? config.trace_path
                                : config.metrics_path;
  if (base.empty()) return {};
  const auto slash = base.find_last_of('/');
  const auto dot = base.find_last_of('.');
  const std::string stem =
      (dot != std::string::npos &&
       (slash == std::string::npos || dot > slash))
          ? base.substr(0, dot)
          : base;
  return stem + ".manifest.json";
}

std::string utc_timestamp() {
  const std::time_t now = std::time(nullptr);
  std::tm tm{};
  gmtime_r(&now, &tm);
  char buf[32];
  std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &tm);
  return buf;
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

}  // namespace

Recorder::Recorder(RecorderConfig config)
    : config_(std::move(config)),
      epoch_(std::chrono::steady_clock::now()) {
  if (config_.manifest_path.empty())
    config_.manifest_path = derive_manifest_path(config_);
  if (!config_.trace_path.empty())
    trace_ = std::make_unique<TraceWriter>(config_.trace_path);
  if (!config_.chrome_trace_path.empty())
    chrome_ = std::make_unique<ChromeTraceWriter>();
}

Recorder::~Recorder() {
  try {
    finish();
  } catch (const std::exception& e) {
    GM_LOG_ERROR("obs::Recorder::finish failed: " << e.what());
  }
}

Recorder::EventBuilder::EventBuilder(Recorder* recorder,
                                     const char* kind, double t)
    : recorder_(recorder) {
  if (recorder_) record_.set("kind", kind).set("t", t);
}

Recorder::EventBuilder::~EventBuilder() {
  if (recorder_ && recorder_->trace_) recorder_->trace_->emit(record_);
}

Recorder::EventBuilder Recorder::event(const char* kind, double t) {
  metrics_.counter_add(std::string("events.") + kind);
  return EventBuilder(trace_ ? this : nullptr, kind, t);
}

void Recorder::record_slot(const SlotSample& s) {
  metrics_.counter_add("slots_total");
  metrics_.observe("slot.demand_kwh", j_to_kwh(s.demand_j));
  metrics_.observe("slot.green_supply_kwh", j_to_kwh(s.green_supply_j));
  metrics_.observe("slot.brown_kwh", j_to_kwh(s.brown_j));
  metrics_.observe("slot.curtailed_kwh", j_to_kwh(s.curtailed_j));
  metrics_.observe("slot.pending_depth",
                   static_cast<double>(s.pending_depth));
  metrics_.observe("slot.active_nodes",
                   static_cast<double>(s.active_nodes));
  metrics_.observe("slot.tasks_running",
                   static_cast<double>(s.tasks_running));
  metrics_.gauge_set("slot.battery_soc_kwh", j_to_kwh(s.battery_soc_j));
  if (chrome_) {
    // Sim-time counter track: x axis is simulated seconds rendered as
    // trace microseconds, so a week-long run spans 604.8 "seconds" of
    // timeline — compact enough to scrub in one Perfetto view.
    const double t_us = s.start_s;  // 1 sim s -> 1 trace us
    chrome_->add_counter("green_supply_kwh", t_us,
                         j_to_kwh(s.green_supply_j));
    chrome_->add_counter("brown_kwh", t_us, j_to_kwh(s.brown_j));
    chrome_->add_counter("curtailed_kwh", t_us, j_to_kwh(s.curtailed_j));
    chrome_->add_counter("battery_soc_kwh", t_us,
                         j_to_kwh(s.battery_soc_j));
    chrome_->add_counter("pending_depth", t_us,
                         static_cast<double>(s.pending_depth));
    chrome_->add_counter("active_nodes", t_us,
                         static_cast<double>(s.active_nodes));
  }
  if (!trace_) return;

  JsonObject record;
  record.set("kind", "slot")
      .set("slot", s.slot)
      .set("start_s", s.start_s)
      .set("end_s", s.end_s)
      .set("green_supply_j", s.green_supply_j)
      .set("green_direct_j", s.green_direct_j)
      .set("battery_in_j", s.battery_in_j)
      .set("battery_out_j", s.battery_out_j)
      .set("brown_j", s.brown_j)
      .set("curtailed_j", s.curtailed_j)
      .set("demand_j", s.demand_j)
      .set("battery_soc_j", s.battery_soc_j)
      .set("active_nodes", s.active_nodes)
      .set("pending_depth", s.pending_depth)
      .set("tasks_running", s.tasks_running)
      .set("target_active_nodes", s.target_active_nodes)
      .set("run_set_size", s.run_set_size)
      .set("eco_speed", s.eco_speed)
      .set("forced_wakeups", s.forced_wakeups)
      .set("node_failures", s.node_failures);
  trace_->emit(record);
}

void Recorder::record_decision(const DecisionSample& s) {
  metrics_.counter_add("decisions." + s.action);
  if (!trace_) return;
  JsonObject record;
  record.set("kind", "decision")
      .set("slot", s.slot)
      .set("t", s.t)
      .set("policy", s.policy)
      .set("task", s.task)
      .set("action", s.action)
      .set("reason", s.reason)
      .set("deadline_slack", s.deadline_slack);
  if (s.shard >= 0) record.set("shard", s.shard);
  if (s.chosen_offset >= 0) record.set("chosen_offset", s.chosen_offset);
  if (s.class_id >= 0) {
    record.set("class_id", s.class_id)
        .set("class_size", s.class_size)
        .set("demux_rank", s.demux_rank);
  }
  if (s.green_cost >= 0.0) record.set("green_cost", s.green_cost);
  if (s.brown_cost >= 0.0) record.set("brown_cost", s.brown_cost);
  if (s.slot_green_flow >= 0.0)
    record.set("slot_green_flow", s.slot_green_flow);
  record.set("warm_solve", s.warm_solve);
  trace_->emit(record);
}

void Recorder::observe_plan_latency(double ms) {
  metrics_.observe("slot.plan_ms", ms);
  plan_latency_us_.add(ms * 1e3);
}

void Recorder::record_scope(const char* name,
                            std::chrono::steady_clock::time_point start,
                            std::chrono::steady_clock::time_point end) {
  chrome_->add_span(name, wall_us(start),
                    wall_us(end) - wall_us(start));
}

void Recorder::record_audit(const AuditSample& s) {
  metrics_.counter_add("audit.checks");
  if (!s.passed) metrics_.counter_add("audit.failures");
  if (!trace_) return;
  JsonObject record;
  record.set("kind", "audit")
      .set("check", s.check)
      .set("passed", s.passed)
      .set("lhs", s.lhs)
      .set("rhs", s.rhs)
      .set("tolerance", s.tolerance)
      .set("detail", s.detail);
  trace_->emit(record);
}

void Recorder::write_manifest(const ManifestInfo& info) {
  if (config_.manifest_path.empty()) return;
  std::ofstream out(config_.manifest_path);
  if (!out)
    throw RuntimeError("cannot open manifest file for writing: " +
                       config_.manifest_path);
  out << "{\n";
  out << "  \"kind\": \"gm-run-manifest\",\n";
  out << "  \"written_at\": \"" << utc_timestamp() << "\",\n";
  out << "  \"policy\": \"" << json_escape(info.policy_name) << "\",\n";
  out << "  \"seeds\": {\"workload\": " << info.workload_seed
      << ", \"solar\": " << info.solar_seed
      << ", \"policy\": " << info.policy_seed << "},\n";
  out << "  \"slot_grid\": {\"slot_length_s\": " << info.slot_length_s
      << ", \"total_slots\": " << info.total_slots << "},\n";
  out << "  \"build\": {\"compiler\": \"" << json_escape(__VERSION__)
      << "\", \"cplusplus\": " << __cplusplus << ", \"optimized\": "
#ifdef NDEBUG
      << "true"
#else
      << "false"
#endif
      << "},\n";
  out << "  \"artifacts\": {\"trace\": \""
      << json_escape(config_.trace_path) << "\", \"metrics\": \""
      << json_escape(config_.metrics_path) << "\", \"chrome_trace\": \""
      << json_escape(config_.chrome_trace_path) << "\"},\n";
  out << "  \"config\": {";
  bool first = true;
  for (const auto& [key, value] : info.config_echo) {
    if (!first) out << ',';
    out << "\n    \"" << json_escape(key) << "\": \""
        << json_escape(value) << "\"";
    first = false;
  }
  out << "\n  }\n}\n";
}

void Recorder::finish() {
  if (finished_) return;
  finished_ = true;

  for (const auto& [name, stats] : profiler_.phases()) {
    metrics_.observe("phase_ms." + name, stats.total_ms());
    metrics_.gauge_set("phase_p50_us." + name, stats.p50_us());
    metrics_.gauge_set("phase_p95_us." + name, stats.p95_us());
    metrics_.gauge_set("phase_p99_us." + name, stats.p99_us());
  }
  if (plan_latency_us_.count() > 0) {
    metrics_.gauge_set("plan.slot_ms_p50",
                       plan_latency_us_.quantile(0.50) / 1e3);
    metrics_.gauge_set("plan.slot_ms_p95",
                       plan_latency_us_.quantile(0.95) / 1e3);
    metrics_.gauge_set("plan.slot_ms_p99",
                       plan_latency_us_.quantile(0.99) / 1e3);
  }
  if (trace_) {
    for (const auto& [name, stats] : profiler_.sorted_by_total()) {
      JsonObject record;
      record.set("kind", "phase")
          .set("phase", name)
          .set("calls", stats.calls)
          .set("total_ms", stats.total_ms())
          .set("mean_us", stats.mean_us())
          .set("p50_us", stats.p50_us())
          .set("p95_us", stats.p95_us())
          .set("p99_us", stats.p99_us())
          .set("max_us", stats.max_ns / 1e3);
      trace_->emit(record);
    }
    JsonObject end;
    end.set("kind", "run_end")
        .set("trace_records", trace_->records_written() + 1)
        .set("slots", metrics_.counter("slots_total"));
    trace_->emit(end);
    trace_->flush();
  }

  if (chrome_) {
    if (chrome_->dropped() > 0)
      GM_LOG_WARN("chrome trace buffer full: "
                  << chrome_->dropped() << " events dropped");
    chrome_->write(config_.chrome_trace_path);
  }

  if (!config_.metrics_path.empty()) {
    std::ofstream out(config_.metrics_path);
    if (!out)
      throw RuntimeError("cannot open metrics file for writing: " +
                         config_.metrics_path);
    if (ends_with(config_.metrics_path, ".csv"))
      metrics_.write_csv(out);
    else
      metrics_.write_prometheus(out);
  }
}

}  // namespace gm::obs
