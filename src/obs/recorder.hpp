#pragma once
// obs::Recorder — the one observability handle a simulation run holds.
// Bundles the three concerns behind a single object so call sites stay
// one-liner cheap:
//
//   - structured JSONL tracing (obs/trace.hpp): per-slot records plus
//     discrete events (task admit/complete/miss, node fail/repair,
//     federation transfers);
//   - the metrics registry (obs/metrics_registry.hpp), exported at
//     finish() to CSV or Prometheus text depending on file extension;
//   - phase profiling (obs/profile.hpp) via GM_OBS_SCOPE, activated by
//     installing the recorder into a thread-local slot for the
//     duration of a slot step (ScopedRecorder).
//
// A null recorder (engines default to none) costs one pointer test on
// the slot path and one thread-local read per GM_OBS_SCOPE — measured
// well under the 2% overhead budget (docs/observability.md).
//
// Alongside every trace/metrics file the recorder writes a *run
// manifest*: the full config echo, RNG seeds, slot grid, build flags
// and wall-clock, so any bench row is reproducible from its artifacts.
//
// Thread-safety contract: a Recorder is single-run, single-thread
// state — none of its methods are synchronized. The supported
// concurrency model (used by greenmatch_sweep --jobs and the bench
// run_sweep helper) is one Recorder per sweep point, with the engine
// installing it into the *thread-local* slot below for the duration
// of each slot step; recorders on different worker threads never
// touch each other. Sharing one Recorder across concurrently running
// engines is a data race.

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics_registry.hpp"
#include "obs/profile.hpp"
#include "obs/trace.hpp"

namespace gm::obs {

struct RecorderConfig {
  /// JSONL trace output; empty disables tracing.
  std::string trace_path;
  /// Metrics export written at finish(); ".csv" selects the CSV
  /// exporter, anything else Prometheus text. Empty disables.
  std::string metrics_path;
  /// Run manifest; empty derives `<trace-or-metrics stem>.manifest.json`.
  std::string manifest_path;
  /// Enables GM_OBS_SCOPE phase timing.
  bool profile = false;

  bool any_enabled() const {
    return !trace_path.empty() || !metrics_path.empty() ||
           !manifest_path.empty() || profile;
  }
};

/// One per-slot telemetry sample, filled by the engine after the
/// slot's energy balance settles. All energies in joules.
struct SlotSample {
  std::int64_t slot = 0;
  double start_s = 0.0;
  double end_s = 0.0;
  double green_supply_j = 0.0;
  double green_direct_j = 0.0;
  double battery_in_j = 0.0;   ///< source-side energy drawn into ESD
  double battery_out_j = 0.0;  ///< energy delivered by ESD
  double brown_j = 0.0;
  double curtailed_j = 0.0;
  double demand_j = 0.0;
  double battery_soc_j = 0.0;  ///< state of charge at slot end
  int active_nodes = 0;
  std::int64_t pending_depth = 0;  ///< pool size after the slot
  std::int64_t tasks_running = 0;  ///< tasks that executed this slot
  // Policy decision summary.
  int target_active_nodes = 0;
  std::int64_t run_set_size = 0;   ///< tasks the policy asked to run
  bool eco_speed = false;
  // Per-slot deltas of event counters.
  std::int64_t forced_wakeups = 0;
  std::int64_t node_failures = 0;
};

/// One gm::audit check outcome, in the flat shape the trace/metrics
/// layer understands (the audit subsystem sits above obs and converts
/// its findings into these before emission).
struct AuditSample {
  std::string check;    ///< identity name, e.g. "battery.identity"
  bool passed = true;
  double lhs = 0.0;     ///< the two sides that were compared
  double rhs = 0.0;
  double tolerance = 0.0;
  std::string detail;   ///< human-readable context (slot, term, ...)
};

/// What the manifest records about a run besides the config echo.
struct ManifestInfo {
  std::vector<std::pair<std::string, std::string>> config_echo;
  std::string policy_name;
  std::uint64_t workload_seed = 0;
  std::uint64_t solar_seed = 0;
  std::uint64_t policy_seed = 0;
  double slot_length_s = 0.0;
  std::int64_t total_slots = 0;
};

class Recorder {
 public:
  explicit Recorder(RecorderConfig config);
  ~Recorder();
  Recorder(const Recorder&) = delete;
  Recorder& operator=(const Recorder&) = delete;

  bool tracing() const { return trace_ != nullptr; }
  bool profiling() const { return config_.profile; }

  /// Fluent one-line event: emits on destruction of the builder.
  ///   recorder.event("task_admit", now).set("task", id);
  /// Counts every event kind into the registry even when the JSONL
  /// trace is disabled.
  class EventBuilder {
   public:
    EventBuilder(Recorder* recorder, const char* kind, double t);
    ~EventBuilder();
    EventBuilder(EventBuilder&& other) noexcept
        : recorder_(other.recorder_), record_(std::move(other.record_)) {
      other.recorder_ = nullptr;
    }
    EventBuilder(const EventBuilder&) = delete;
    EventBuilder& operator=(const EventBuilder&) = delete;
    EventBuilder& operator=(EventBuilder&&) = delete;

    template <typename V>
    EventBuilder& set(const std::string& key, V value) {
      if (recorder_) record_.set(key, value);
      return *this;
    }

   private:
    Recorder* recorder_;  ///< null when tracing is off
    JsonObject record_;
  };

  EventBuilder event(const char* kind, double t);

  /// Appends the per-slot record to the trace and feeds the registry's
  /// slot-level series.
  void record_slot(const SlotSample& sample);

  /// Appends one `kind=audit` record to the trace (when tracing) and
  /// counts it into the registry (`audit.checks` / `audit.failures`),
  /// so a traced `--audit` run carries its own conservation verdicts.
  void record_audit(const AuditSample& sample);

  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }
  PhaseProfiler& profiler() { return profiler_; }
  const PhaseProfiler& profiler() const { return profiler_; }

  /// Writes the manifest file (call once, at engine construction, so
  /// even an aborted run leaves its reproduction recipe on disk).
  void write_manifest(const ManifestInfo& info);

  /// Flushes everything: phase aggregates and a run_end marker into
  /// the trace, the metrics export to its file. Idempotent; also runs
  /// from the destructor.
  void finish();

  const RecorderConfig& config() const { return config_; }
  std::uint64_t trace_records() const {
    return trace_ ? trace_->records_written() : 0;
  }

 private:
  RecorderConfig config_;
  std::unique_ptr<TraceWriter> trace_;
  MetricsRegistry metrics_;
  PhaseProfiler profiler_;
  bool finished_ = false;
};

// --- thread-local installation for GM_OBS_SCOPE ------------------------
// The engine installs its recorder around each slot step; phase timers
// anywhere below (policy, planner, router) find it without plumbing.
// Because the slot is thread-local, parallel sweep points (each engine
// on its own pool worker, each with its own recorder) profile
// independently without synchronization.

namespace detail {
inline thread_local Recorder* tl_recorder = nullptr;
}

inline Recorder* current_recorder() { return detail::tl_recorder; }

class ScopedRecorder {
 public:
  explicit ScopedRecorder(Recorder* recorder)
      : prev_(detail::tl_recorder) {
    detail::tl_recorder = recorder;
  }
  ~ScopedRecorder() { detail::tl_recorder = prev_; }
  ScopedRecorder(const ScopedRecorder&) = delete;
  ScopedRecorder& operator=(const ScopedRecorder&) = delete;

 private:
  Recorder* prev_;
};

/// RAII phase timer behind GM_OBS_SCOPE. Inert (two loads, one
/// branch) unless a profiling recorder is installed on this thread.
class PhaseTimer {
 public:
  explicit PhaseTimer(const char* name) {
    Recorder* r = current_recorder();
    if (r && r->profiling()) {
      recorder_ = r;
      name_ = name;
      start_ = std::chrono::steady_clock::now();
    }
  }
  ~PhaseTimer() {
    if (recorder_)
      recorder_->profiler().record(
          name_, static_cast<double>(
                     std::chrono::duration_cast<std::chrono::nanoseconds>(
                         std::chrono::steady_clock::now() - start_)
                         .count()));
  }
  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;

 private:
  Recorder* recorder_ = nullptr;
  const char* name_ = nullptr;
  std::chrono::steady_clock::time_point start_{};
};

}  // namespace gm::obs

#define GM_OBS_CONCAT_INNER(a, b) a##b
#define GM_OBS_CONCAT(a, b) GM_OBS_CONCAT_INNER(a, b)
/// Times the enclosing scope under `name` when a profiling recorder is
/// installed on this thread; otherwise costs one thread-local read.
#define GM_OBS_SCOPE(name) \
  ::gm::obs::PhaseTimer GM_OBS_CONCAT(gm_obs_scope_, __LINE__)(name)
