#pragma once
// obs::Recorder — the one observability handle a simulation run holds.
// Bundles the three concerns behind a single object so call sites stay
// one-liner cheap:
//
//   - structured JSONL tracing (obs/trace.hpp): per-slot records plus
//     discrete events (task admit/complete/miss, node fail/repair,
//     federation transfers);
//   - the metrics registry (obs/metrics_registry.hpp), exported at
//     finish() to CSV or Prometheus text depending on file extension;
//   - phase profiling (obs/profile.hpp) via GM_OBS_SCOPE, activated by
//     installing the recorder into a thread-local slot for the
//     duration of a slot step (ScopedRecorder).
//
// A null recorder (engines default to none) costs one pointer test on
// the slot path and one thread-local read per GM_OBS_SCOPE — measured
// well under the 2% overhead budget (docs/observability.md).
//
// Alongside every trace/metrics file the recorder writes a *run
// manifest*: the full config echo, RNG seeds, slot grid, build flags
// and wall-clock, so any bench row is reproducible from its artifacts.
//
// Thread-safety contract: a Recorder is single-run, single-thread
// state — none of its methods are synchronized. The supported
// concurrency model (used by greenmatch_sweep --jobs and the bench
// run_sweep helper) is one Recorder per sweep point, with the engine
// installing it into the *thread-local* slot below for the duration
// of each slot step; recorders on different worker threads never
// touch each other. Sharing one Recorder across concurrently running
// engines is a data race.

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "obs/chrome_trace.hpp"
#include "obs/metrics_registry.hpp"
#include "obs/profile.hpp"
#include "obs/trace.hpp"

namespace gm::obs {

struct RecorderConfig {
  /// JSONL trace output; empty disables tracing.
  std::string trace_path;
  /// Metrics export written at finish(); ".csv" selects the CSV
  /// exporter, anything else Prometheus text. Empty disables.
  std::string metrics_path;
  /// Run manifest; empty derives `<trace-or-metrics stem>.manifest.json`.
  std::string manifest_path;
  /// Chrome trace-event JSON (Perfetto-loadable) written at finish();
  /// empty disables. Implies deep scope tracing: every GM_OBS_SCOPE
  /// activation becomes a timeline span, not just a profile aggregate.
  std::string chrome_trace_path;
  /// Enables GM_OBS_SCOPE phase timing.
  bool profile = false;
  /// Enables per-task decision provenance records (kind=decision in
  /// the JSONL trace plus decisions.* counters). Opt-in because a
  /// massive-fleet week emits one record per task-slot decision.
  bool provenance = false;

  bool any_enabled() const {
    return !trace_path.empty() || !metrics_path.empty() ||
           !manifest_path.empty() || !chrome_trace_path.empty() ||
           profile || provenance;
  }
};

/// One per-slot telemetry sample, filled by the engine after the
/// slot's energy balance settles. All energies in joules.
struct SlotSample {
  std::int64_t slot = 0;
  double start_s = 0.0;
  double end_s = 0.0;
  double green_supply_j = 0.0;
  double green_direct_j = 0.0;
  double battery_in_j = 0.0;   ///< source-side energy drawn into ESD
  double battery_out_j = 0.0;  ///< energy delivered by ESD
  double brown_j = 0.0;
  double curtailed_j = 0.0;
  double demand_j = 0.0;
  double battery_soc_j = 0.0;  ///< state of charge at slot end
  int active_nodes = 0;
  std::int64_t pending_depth = 0;  ///< pool size after the slot
  std::int64_t tasks_running = 0;  ///< tasks that executed this slot
  // Policy decision summary.
  int target_active_nodes = 0;
  std::int64_t run_set_size = 0;   ///< tasks the policy asked to run
  bool eco_speed = false;
  // Per-slot deltas of event counters.
  std::int64_t forced_wakeups = 0;
  std::int64_t node_failures = 0;
};

/// One per-task scheduling decision, emitted at plan time by the
/// policies when provenance is enabled. Answers "why did task X
/// run/wait at slot S" — see tools/gm_explain and
/// docs/observability.md for the consumer side. Fields that a given
/// policy cannot attribute (e.g. class ids outside the flow planner)
/// stay at their defaults and are omitted from the trace record.
struct DecisionSample {
  std::int64_t slot = 0;       ///< slot at which the plan was made
  double t = 0.0;              ///< sim time of the decision (s)
  std::string policy;          ///< planner that decided
  std::int64_t shard = -1;     ///< planning shard (-1: unsharded)
  std::uint64_t task = 0;      ///< task id
  /// One of: "run", "defer", "beyond", "drop".
  std::string action;
  /// Short machine-greppable cause, e.g. "green-at-offset",
  /// "capacity-or-cost", "deferred-beyond-horizon", "mandatory",
  /// "awaiting-green", "no-feasible-slot".
  std::string reason;
  std::int64_t chosen_offset = -1;  ///< slot offset assigned (-1: none)
  std::int64_t deadline_slack = 0;  ///< slots of slack at decision time
  // Flow-planner attribution (left default by greedy policies).
  std::int64_t class_id = -1;   ///< class node id in the flow network
  std::int64_t class_size = 0;  ///< member tasks aggregated in it
  std::int64_t demux_rank = -1; ///< task's rank in the class demux
  double green_cost = -1.0;     ///< marginal cost via the green arc
  double brown_cost = -1.0;     ///< marginal cost via the brown arc
  double slot_green_flow = -1.0;  ///< green units routed to the slot
  bool warm_solve = false;      ///< potentials warm-started this plan
};

/// One gm::audit check outcome, in the flat shape the trace/metrics
/// layer understands (the audit subsystem sits above obs and converts
/// its findings into these before emission).
struct AuditSample {
  std::string check;    ///< identity name, e.g. "battery.identity"
  bool passed = true;
  double lhs = 0.0;     ///< the two sides that were compared
  double rhs = 0.0;
  double tolerance = 0.0;
  std::string detail;   ///< human-readable context (slot, term, ...)
};

/// What the manifest records about a run besides the config echo.
struct ManifestInfo {
  std::vector<std::pair<std::string, std::string>> config_echo;
  std::string policy_name;
  std::uint64_t workload_seed = 0;
  std::uint64_t solar_seed = 0;
  std::uint64_t policy_seed = 0;
  double slot_length_s = 0.0;
  std::int64_t total_slots = 0;
};

class Recorder {
 public:
  explicit Recorder(RecorderConfig config);
  ~Recorder();
  Recorder(const Recorder&) = delete;
  Recorder& operator=(const Recorder&) = delete;

  bool tracing() const { return trace_ != nullptr; }
  bool profiling() const { return config_.profile; }
  bool provenance() const { return config_.provenance; }
  /// Deep scope tracing: every GM_OBS_SCOPE becomes a Chrome trace
  /// span (in addition to the profile aggregate when profiling).
  bool deep_tracing() const { return chrome_ != nullptr; }

  /// Fluent one-line event: emits on destruction of the builder.
  ///   recorder.event("task_admit", now).set("task", id);
  /// Counts every event kind into the registry even when the JSONL
  /// trace is disabled.
  class EventBuilder {
   public:
    EventBuilder(Recorder* recorder, const char* kind, double t);
    ~EventBuilder();
    EventBuilder(EventBuilder&& other) noexcept
        : recorder_(other.recorder_), record_(std::move(other.record_)) {
      other.recorder_ = nullptr;
    }
    EventBuilder(const EventBuilder&) = delete;
    EventBuilder& operator=(const EventBuilder&) = delete;
    EventBuilder& operator=(EventBuilder&&) = delete;

    template <typename V>
    EventBuilder& set(const std::string& key, V value) {
      if (recorder_) record_.set(key, value);
      return *this;
    }

   private:
    Recorder* recorder_;  ///< null when tracing is off
    JsonObject record_;
  };

  EventBuilder event(const char* kind, double t);

  /// Appends the per-slot record to the trace and feeds the registry's
  /// slot-level series.
  void record_slot(const SlotSample& sample);

  /// Appends one `kind=decision` record to the trace (when tracing)
  /// and bumps `decisions.<action>` counters. Call only when
  /// provenance() — the policies gate on it so a disabled run does no
  /// string work at all.
  void record_decision(const DecisionSample& sample);

  /// Per-slot plan latency (wall ms): feeds the `slot.plan_ms`
  /// accumulator and the log histogram behind the exported
  /// plan.slot_ms_p50/_p95/_p99 gauges.
  void observe_plan_latency(double ms);

  /// Appends one `kind=audit` record to the trace (when tracing) and
  /// counts it into the registry (`audit.checks` / `audit.failures`),
  /// so a traced `--audit` run carries its own conservation verdicts.
  void record_audit(const AuditSample& sample);

  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }
  PhaseProfiler& profiler() { return profiler_; }
  const PhaseProfiler& profiler() const { return profiler_; }
  /// Null unless chrome_trace_path was configured.
  ChromeTraceWriter* chrome() { return chrome_.get(); }

  /// Called by ~PhaseTimer when deep_tracing(): records one timeline
  /// span on the wall-clock track, timestamped against the recorder's
  /// construction epoch.
  void record_scope(const char* name,
                    std::chrono::steady_clock::time_point start,
                    std::chrono::steady_clock::time_point end);

  /// Microseconds elapsed since the recorder was constructed; the
  /// timestamp base of all Chrome-trace wall-clock spans.
  double wall_us(std::chrono::steady_clock::time_point t) const {
    return static_cast<double>(
               std::chrono::duration_cast<std::chrono::nanoseconds>(
                   t - epoch_)
                   .count()) /
           1e3;
  }

  /// Writes the manifest file (call once, at engine construction, so
  /// even an aborted run leaves its reproduction recipe on disk).
  void write_manifest(const ManifestInfo& info);

  /// Flushes everything: phase aggregates and a run_end marker into
  /// the trace, the metrics export to its file. Idempotent; also runs
  /// from the destructor.
  void finish();

  const RecorderConfig& config() const { return config_; }
  std::uint64_t trace_records() const {
    return trace_ ? trace_->records_written() : 0;
  }

 private:
  RecorderConfig config_;
  std::unique_ptr<TraceWriter> trace_;
  std::unique_ptr<ChromeTraceWriter> chrome_;
  MetricsRegistry metrics_;
  PhaseProfiler profiler_;
  LogHistogram plan_latency_us_;
  std::chrono::steady_clock::time_point epoch_;
  bool finished_ = false;
};

// --- thread-local installation for GM_OBS_SCOPE ------------------------
// The engine installs its recorder around each slot step; phase timers
// anywhere below (policy, planner, router) find it without plumbing.
// Because the slot is thread-local, parallel sweep points (each engine
// on its own pool worker, each with its own recorder) profile
// independently without synchronization.

namespace detail {
inline thread_local Recorder* tl_recorder = nullptr;
}

inline Recorder* current_recorder() { return detail::tl_recorder; }

class ScopedRecorder {
 public:
  explicit ScopedRecorder(Recorder* recorder)
      : prev_(detail::tl_recorder) {
    detail::tl_recorder = recorder;
  }
  ~ScopedRecorder() { detail::tl_recorder = prev_; }
  ScopedRecorder(const ScopedRecorder&) = delete;
  ScopedRecorder& operator=(const ScopedRecorder&) = delete;

 private:
  Recorder* prev_;
};

/// RAII phase timer behind GM_OBS_SCOPE. Inert (two loads, one
/// branch) unless a recorder with profiling or deep (Chrome trace)
/// scope tracing is installed on this thread.
class PhaseTimer {
 public:
  explicit PhaseTimer(const char* name) {
    Recorder* r = current_recorder();
    if (r && (r->profiling() || r->deep_tracing())) {
      recorder_ = r;
      name_ = name;
      start_ = std::chrono::steady_clock::now();
    }
  }
  ~PhaseTimer() {
    if (!recorder_) return;
    const auto end = std::chrono::steady_clock::now();
    if (recorder_->profiling())
      recorder_->profiler().record(
          name_,
          static_cast<double>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(
                  end - start_)
                  .count()));
    if (recorder_->deep_tracing())
      recorder_->record_scope(name_, start_, end);
  }
  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;

 private:
  Recorder* recorder_ = nullptr;
  const char* name_ = nullptr;
  std::chrono::steady_clock::time_point start_{};
};

}  // namespace gm::obs

#define GM_OBS_CONCAT_INNER(a, b) a##b
#define GM_OBS_CONCAT(a, b) GM_OBS_CONCAT_INNER(a, b)
/// Times the enclosing scope under `name` when a profiling recorder is
/// installed on this thread; otherwise costs one thread-local read.
#define GM_OBS_SCOPE(name) \
  ::gm::obs::PhaseTimer GM_OBS_CONCAT(gm_obs_scope_, __LINE__)(name)
