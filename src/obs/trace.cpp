#include "obs/trace.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <limits>
#include <sstream>

#include "util/assert.hpp"

namespace gm::obs {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned char>(c));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

void JsonObject::key(const std::string& k) {
  if (!body_.empty()) body_.push_back(',');
  body_.push_back('"');
  body_ += json_escape(k);
  body_ += "\":";
}

JsonObject& JsonObject::set(const std::string& k, const std::string& v) {
  key(k);
  body_.push_back('"');
  body_ += json_escape(v);
  body_.push_back('"');
  return *this;
}

JsonObject& JsonObject::set(const std::string& k, double v) {
  key(k);
  // JSON has no NaN/Infinity literal; emit null so strict loaders
  // (json.load, DuckDB) accept the line and record_num falls back.
  // Benchmark aggregates hit this: the cv of an all-zero counter is
  // 0/0.
  if (!std::isfinite(v)) {
    body_ += "null";
    return *this;
  }
  std::ostringstream os;
  os.precision(std::numeric_limits<double>::max_digits10);
  os << v;
  body_ += os.str();
  return *this;
}

JsonObject& JsonObject::set(const std::string& k, std::uint64_t v) {
  key(k);
  body_ += std::to_string(v);
  return *this;
}

JsonObject& JsonObject::set(const std::string& k, std::int64_t v) {
  key(k);
  body_ += std::to_string(v);
  return *this;
}

JsonObject& JsonObject::set(const std::string& k, bool v) {
  key(k);
  body_ += v ? "true" : "false";
  return *this;
}

std::string JsonObject::str() const { return "{" + body_ + "}"; }

TraceWriter::TraceWriter(const std::string& path)
    : path_(path), out_(path) {
  if (!out_)
    throw RuntimeError("cannot open trace file for writing: " + path);
}

void TraceWriter::emit(const JsonObject& record) {
  out_ << record.str() << '\n';
  ++records_;
}

namespace {

[[noreturn]] void malformed(const std::string& line, const char* why) {
  throw RuntimeError(std::string("malformed trace line (") + why +
                     "): " + line);
}

void skip_ws(const std::string& s, std::size_t& i) {
  while (i < s.size() &&
         std::isspace(static_cast<unsigned char>(s[i])))
    ++i;
}

/// Parses a JSON string starting at the opening quote; returns the
/// unescaped value and leaves `i` past the closing quote.
std::string parse_string(const std::string& s, std::size_t& i) {
  ++i;  // opening quote
  std::string out;
  while (i < s.size() && s[i] != '"') {
    char c = s[i++];
    if (c == '\\') {
      if (i >= s.size()) break;
      const char e = s[i++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (i + 4 > s.size()) malformed(s, "truncated \\u escape");
          const unsigned code = static_cast<unsigned>(
              std::stoul(s.substr(i, 4), nullptr, 16));
          i += 4;
          // Flat traces only escape control characters, so a single
          // byte is always enough here.
          out.push_back(static_cast<char>(code & 0xFF));
          break;
        }
        default: out.push_back(e);
      }
    } else {
      out.push_back(c);
    }
  }
  if (i >= s.size()) malformed(s, "unterminated string");
  ++i;  // closing quote
  return out;
}

}  // namespace

FlatRecord parse_flat_json(const std::string& line) {
  FlatRecord out;
  std::size_t i = 0;
  skip_ws(line, i);
  if (i >= line.size() || line[i] != '{') malformed(line, "no '{'");
  ++i;
  skip_ws(line, i);
  if (i < line.size() && line[i] == '}') return out;  // empty object
  while (true) {
    skip_ws(line, i);
    if (i >= line.size() || line[i] != '"')
      malformed(line, "expected key");
    const std::string k = parse_string(line, i);
    skip_ws(line, i);
    if (i >= line.size() || line[i] != ':')
      malformed(line, "expected ':'");
    ++i;
    skip_ws(line, i);
    if (i >= line.size()) malformed(line, "missing value");
    if (line[i] == '"') {
      out[k] = parse_string(line, i);
    } else if (line[i] == '{' || line[i] == '[') {
      malformed(line, "nested values are not part of the flat schema");
    } else {
      // Number / true / false / null: take the literal token.
      const std::size_t start = i;
      while (i < line.size() && line[i] != ',' && line[i] != '}' &&
             !std::isspace(static_cast<unsigned char>(line[i])))
        ++i;
      out[k] = line.substr(start, i - start);
    }
    skip_ws(line, i);
    if (i >= line.size()) malformed(line, "unterminated object");
    if (line[i] == '}') break;
    if (line[i] != ',') malformed(line, "expected ',' or '}'");
    ++i;
  }
  return out;
}

double record_num(const FlatRecord& r, const std::string& key,
                  double fallback) {
  const auto it = r.find(key);
  if (it == r.end()) return fallback;
  try {
    return std::stod(it->second);
  } catch (const std::exception&) {
    return fallback;
  }
}

std::string record_str(const FlatRecord& r, const std::string& key,
                       const std::string& fallback) {
  const auto it = r.find(key);
  return it == r.end() ? fallback : it->second;
}

}  // namespace gm::obs
