#pragma once
// Structured run tracing: one JSON object per line (JSONL), one line
// per emitted record. Records are *flat* — string/number/bool values
// only, no nesting — which keeps both the emitter and the bundled
// parser trivial while remaining consumable by jq/pandas/DuckDB.
//
// Every record carries a "kind" field. The simulation emits:
//   kind=slot       one per simulated slot (energy balance, pool depth,
//                   decision summary)
//   kind=task_admit / task_complete / task_miss
//   kind=node_fail / node_repair
//   kind=transfer   federation broker moved a task between sites
//   kind=phase      per-phase profile aggregate (at finish)
//   kind=run_end    final totals marker
// The schema of each kind is documented in docs/observability.md.

#include <cstdint>
#include <fstream>
#include <map>
#include <string>

namespace gm::obs {

/// Builder for one flat JSON object, rendered as a single line.
/// Key order is preserved (insertion order) for readable traces.
class JsonObject {
 public:
  JsonObject& set(const std::string& key, const std::string& value);
  JsonObject& set(const std::string& key, const char* value) {
    return set(key, std::string(value));
  }
  JsonObject& set(const std::string& key, double value);
  JsonObject& set(const std::string& key, std::uint64_t value);
  JsonObject& set(const std::string& key, std::int64_t value);
  JsonObject& set(const std::string& key, int value) {
    return set(key, static_cast<std::int64_t>(value));
  }
  JsonObject& set(const std::string& key, bool value);

  /// Renders `{"k":v,...}` (no trailing newline).
  std::string str() const;
  bool empty() const { return body_.empty(); }

 private:
  void key(const std::string& k);
  std::string body_;  ///< comma-joined `"k":v` pairs
};

/// Escapes a string for inclusion in JSON (quotes not included).
std::string json_escape(const std::string& s);

/// Streaming JSONL writer. Lines are written eagerly; the destructor
/// flushes. Throws gm::RuntimeError if the file cannot be opened.
class TraceWriter {
 public:
  explicit TraceWriter(const std::string& path);

  void emit(const JsonObject& record);
  std::uint64_t records_written() const { return records_; }
  const std::string& path() const { return path_; }
  void flush() { out_.flush(); }

 private:
  std::string path_;
  std::ofstream out_;
  std::uint64_t records_ = 0;
};

// --- reading -----------------------------------------------------------
// Parsed view of one flat record: key → raw value. String values are
// unescaped; numbers and booleans keep their literal spelling, so
// consumers convert with the helpers below.
using FlatRecord = std::map<std::string, std::string>;

/// Parses one flat JSON line (as produced by JsonObject). Throws
/// gm::RuntimeError on malformed input or nested structures.
FlatRecord parse_flat_json(const std::string& line);

/// Field accessors with defaults (missing key → default).
double record_num(const FlatRecord& r, const std::string& key,
                  double fallback = 0.0);
std::string record_str(const FlatRecord& r, const std::string& key,
                       const std::string& fallback = "");

}  // namespace gm::obs
