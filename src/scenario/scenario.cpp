#include "scenario/scenario.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"
#include "util/rng.hpp"

namespace gm::scenario {

namespace {

constexpr double kSecondsPerHour = 3600.0;
constexpr double kSecondsPerDay = 24.0 * 3600.0;

/// Exponential variate with the given mean. Guards uniform() == 0.
double exponential(Rng& rng, double mean) {
  double u = rng.uniform();
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

/// Weibull(shape k, scale lambda) variate via inverse transform.
double weibull(Rng& rng, double shape, double scale) {
  double u = rng.uniform();
  if (u <= 0.0) u = 0x1.0p-53;
  return scale * std::pow(-std::log(u), 1.0 / shape);
}

/// Weibull scale lambda such that the mean is `mean` for shape k:
/// E[X] = lambda * Gamma(1 + 1/k).
double weibull_scale_for_mean(double mean, double shape) {
  return mean / std::tgamma(1.0 + 1.0 / shape);
}

}  // namespace

void FailureProcessConfig::validate() const {
  if (process == FailureProcess::kNone) return;
  GM_CHECK(mtbf_hours > 0.0,
           "scenario failure mtbf_hours must be positive: " << mtbf_hours);
  GM_CHECK(mttr_hours > 0.0,
           "scenario failure mttr_hours must be positive: " << mttr_hours);
  GM_CHECK(weibull_shape > 0.0, "scenario failure weibull_shape must be "
                                "positive: "
                                    << weibull_shape);
}

std::vector<NodeOutage> generate_node_outages(
    const FailureProcessConfig& config, int node_count, SimTime horizon_s) {
  config.validate();
  std::vector<NodeOutage> outages;
  if (config.process == FailureProcess::kNone || node_count <= 0 ||
      horizon_s <= 0)
    return outages;

  const double mtbf_s = config.mtbf_hours * kSecondsPerHour;
  const double mttr_s = config.mttr_hours * kSecondsPerHour;
  const double scale_s =
      config.process == FailureProcess::kWeibull
          ? weibull_scale_for_mean(mtbf_s, config.weibull_shape)
          : mtbf_s;

  const Rng root(config.seed);
  for (int node = 0; node < node_count; ++node) {
    // Independent substream per node: adding nodes to the fleet never
    // reshuffles the outage history of existing ones.
    Rng rng = root.fork(static_cast<std::uint64_t>(node));
    double t = 0.0;
    while (true) {
      const double gap =
          config.process == FailureProcess::kWeibull
              ? weibull(rng, config.weibull_shape, scale_s)
              : exponential(rng, mtbf_s);
      t += gap;
      if (t >= static_cast<double>(horizon_s)) break;
      const double repair = exponential(rng, mttr_s);
      NodeOutage o;
      o.fail_at = static_cast<SimTime>(t);
      o.recover_at = static_cast<SimTime>(t + std::max(repair, 1.0));
      o.node = static_cast<std::uint32_t>(node);
      outages.push_back(o);
      // The node is down until recover_at; the next inter-failure gap
      // starts from there (a failed node cannot fail again).
      t = static_cast<double>(o.recover_at);
    }
  }
  std::sort(outages.begin(), outages.end(),
            [](const NodeOutage& a, const NodeOutage& b) {
              if (a.fail_at != b.fail_at) return a.fail_at < b.fail_at;
              return a.node < b.node;
            });
  return outages;
}

void GridSpikeConfig::validate() const {
  GM_CHECK(rate_per_day >= 0.0,
           "scenario spike rate_per_day must be >= 0: " << rate_per_day);
  if (rate_per_day == 0.0) return;
  GM_CHECK(duration_h > 0.0,
           "scenario spike duration_h must be positive: " << duration_h);
  GM_CHECK(carbon_multiplier >= 0.0, "scenario spike carbon_multiplier must "
                                     "be >= 0: "
                                         << carbon_multiplier);
  GM_CHECK(price_multiplier >= 0.0, "scenario spike price_multiplier must "
                                    "be >= 0: "
                                        << price_multiplier);
}

std::vector<energy::GridEvent> generate_grid_spikes(
    const GridSpikeConfig& config, SimTime horizon_s) {
  config.validate();
  std::vector<energy::GridEvent> events;
  if (config.rate_per_day <= 0.0 || horizon_s <= 0) return events;

  const double mean_gap_s = kSecondsPerDay / config.rate_per_day;
  const double mean_duration_s = config.duration_h * kSecondsPerHour;
  Rng rng(config.seed);
  double t = exponential(rng, mean_gap_s);
  while (t < static_cast<double>(horizon_s)) {
    const double duration = std::max(exponential(rng, mean_duration_s), 1.0);
    energy::GridEvent e;
    e.start = static_cast<SimTime>(t);
    e.end = static_cast<SimTime>(t + duration);
    e.carbon_multiplier = config.carbon_multiplier;
    e.price_multiplier = config.price_multiplier;
    events.push_back(e);
    t = static_cast<double>(e.end) + exponential(rng, mean_gap_s);
  }
  return events;
}

void CurtailmentConfig::validate() const {
  GM_CHECK(rate_per_day >= 0.0,
           "scenario curtailment rate_per_day must be >= 0: " << rate_per_day);
  if (rate_per_day == 0.0) return;
  GM_CHECK(duration_h > 0.0,
           "scenario curtailment duration_h must be positive: " << duration_h);
  GM_CHECK(supply_fraction >= 0.0 && supply_fraction <= 1.0,
           "scenario curtailment supply_fraction must be in [0, 1]: "
               << supply_fraction);
}

std::vector<energy::ModulationWindow> generate_curtailment_windows(
    const CurtailmentConfig& config, SimTime horizon_s) {
  config.validate();
  std::vector<energy::ModulationWindow> windows;
  if (config.rate_per_day <= 0.0 || horizon_s <= 0) return windows;

  const double mean_gap_s = kSecondsPerDay / config.rate_per_day;
  const double mean_duration_s = config.duration_h * kSecondsPerHour;
  Rng rng(config.seed);
  double t = exponential(rng, mean_gap_s);
  while (t < static_cast<double>(horizon_s)) {
    const double duration = std::max(exponential(rng, mean_duration_s), 1.0);
    energy::ModulationWindow w;
    w.start = static_cast<SimTime>(t);
    w.end = static_cast<SimTime>(t + duration);
    w.factor = config.supply_fraction;
    windows.push_back(w);
    t = static_cast<double>(w.end) + exponential(rng, mean_gap_s);
  }
  return windows;
}

void ScenarioConfig::validate() const {
  failures.validate();
  grid_spikes.validate();
  curtailment.validate();
}

const char* failure_process_name(FailureProcess process) {
  switch (process) {
    case FailureProcess::kNone:
      return "none";
    case FailureProcess::kPoisson:
      return "poisson";
    case FailureProcess::kWeibull:
      return "weibull";
  }
  return "none";
}

}  // namespace gm::scenario
