#pragma once
// gm::scenario — stochastic adversarial-week generation (ROADMAP item
// 4). A ScenarioConfig describes *processes* (seeded Poisson/Weibull
// node-failure streams, grid carbon-price spikes, demand-response
// curtailment windows); materialization turns them into the concrete,
// deterministic event lists the engine consumes: NodeOutages that
// drive the repair-storm path, energy::GridEvents layered on the grid
// profile, and energy::ModulationWindows wrapped around the renewable
// supply. Everything is a pure function of (config, fleet size,
// horizon), so a run manifest carrying the scenario.* keys reproduces
// the exact same week.
//
// The library sits below gm::core: core's ExperimentConfig embeds a
// ScenarioConfig and the engine materializes it at construction (see
// docs/scenarios.md).

#include <cstdint>
#include <vector>

#include "energy/grid.hpp"
#include "energy/supply.hpp"
#include "util/time_types.hpp"

namespace gm::scenario {

/// Inter-failure time distribution of the per-node failure stream.
enum class FailureProcess : std::uint8_t {
  kNone = 0,  ///< no stochastic failures
  kPoisson,   ///< exponential inter-failure times (memoryless)
  kWeibull,   ///< Weibull(k, lambda); k < 1 clusters failures into
              ///< bursts (repair storms), k > 1 wears out gradually
};

struct FailureProcessConfig {
  FailureProcess process = FailureProcess::kNone;
  /// Mean time between failures per node, in hours. The Weibull scale
  /// is derived so the mean inter-failure time matches this too.
  double mtbf_hours = 24.0 * 365.0;
  /// Weibull shape k (ignored for Poisson; 1.0 degenerates to it).
  double weibull_shape = 1.0;
  /// Mean time to repair, in hours: a failed node recovers this long
  /// (exponentially jittered) after it fails.
  double mttr_hours = 12.0;
  std::uint64_t seed = 7;

  void validate() const;
};

/// One materialized node outage (core converts these into its
/// NodeFailureEvents; scenario cannot name that type without a cycle).
struct NodeOutage {
  SimTime fail_at = 0;
  SimTime recover_at = 0;  ///< 0 = never recovers
  std::uint32_t node = 0;
};

/// Materializes the failure stream for every node over [0, horizon_s),
/// sorted by fail_at. Each node draws from an independent substream
/// (seed forked by node id), so fleet-size changes do not reshuffle
/// the outages of existing nodes. Overlapping outages of one node are
/// merged (a node cannot fail while already down).
std::vector<NodeOutage> generate_node_outages(
    const FailureProcessConfig& config, int node_count,
    SimTime horizon_s);

/// Poisson-arriving grid carbon/price spike events.
struct GridSpikeConfig {
  double rate_per_day = 0.0;  ///< 0 disables spike generation
  double duration_h = 4.0;    ///< mean spike duration (exponential)
  double carbon_multiplier = 3.0;
  double price_multiplier = 3.0;
  std::uint64_t seed = 11;

  void validate() const;
};

std::vector<energy::GridEvent> generate_grid_spikes(
    const GridSpikeConfig& config, SimTime horizon_s);

/// Poisson-arriving demand-response curtailment windows: for each
/// window the site's renewable feed is derated to `supply_fraction`
/// of nominal (grid operator curtails the infeed).
struct CurtailmentConfig {
  double rate_per_day = 0.0;  ///< 0 disables curtailment generation
  double duration_h = 3.0;    ///< mean window length (exponential)
  double supply_fraction = 0.2;
  std::uint64_t seed = 13;

  void validate() const;
};

std::vector<energy::ModulationWindow> generate_curtailment_windows(
    const CurtailmentConfig& config, SimTime horizon_s);

/// The scenario block of an experiment: all three processes.
struct ScenarioConfig {
  FailureProcessConfig failures;
  GridSpikeConfig grid_spikes;
  CurtailmentConfig curtailment;

  /// True when any process would generate events.
  bool any() const {
    return failures.process != FailureProcess::kNone ||
           grid_spikes.rate_per_day > 0.0 ||
           curtailment.rate_per_day > 0.0;
  }
  void validate() const;
};

const char* failure_process_name(FailureProcess process);

}  // namespace gm::scenario
