#include "sim/simulator.hpp"

namespace gm::sim {

void Simulator::push(SimTime at, EventCallback cb,
                     std::shared_ptr<EventHandle::State> state,
                     bool periodic) {
  queue_.push(Item{at, next_seq_++, std::move(cb), std::move(state),
                   periodic});
}

EventHandle Simulator::schedule_at(SimTime at, EventCallback cb) {
  GM_CHECK(at >= now_,
           "cannot schedule in the past: at=" << at << " now=" << now_);
  GM_ASSERT(cb != nullptr);
  EventHandle handle;
  handle.state_ = std::make_shared<EventHandle::State>();
  push(at, std::move(cb), handle.state_, /*periodic=*/false);
  return handle;
}

EventHandle Simulator::schedule_periodic(SimTime first, SimTime period,
                                         EventCallback cb) {
  GM_CHECK(period > 0, "periodic event needs positive period: " << period);
  GM_CHECK(first >= now_, "periodic start in the past: " << first);
  GM_ASSERT(cb != nullptr);
  EventHandle handle;
  handle.state_ = std::make_shared<EventHandle::State>();

  const std::size_t index = periodic_tasks_.size();
  periodic_tasks_.push_back(
      PeriodicTask{period, std::move(cb), handle.state_});
  push(first, [this, index] { fire_periodic(index); }, handle.state_,
       /*periodic=*/true);
  return handle;
}

void Simulator::fire_periodic(std::size_t index) {
  PeriodicTask& task = periodic_tasks_[index];
  // The tombstone check in run_until already skipped cancelled chains,
  // but the callback may cancel the chain; re-check before rescheduling.
  task.cb();
  if (!task.state->done) {
    push(now_ + task.period, [this, index] { fire_periodic(index); },
         task.state, /*periodic=*/true);
  }
}

void Simulator::run_until(SimTime until) {
  while (!queue_.empty()) {
    if (queue_.top().time > until) break;
    // priority_queue::top() is const; moving out is safe because the
    // element is popped immediately after.
    Item item = std::move(const_cast<Item&>(queue_.top()));
    queue_.pop();
    if (item.state->done) continue;  // cancelled tombstone
    GM_ASSERT_MSG(item.time >= now_, "event queue time went backwards");
    now_ = item.time;
    if (!item.periodic) item.state->done = true;
    ++executed_;
    item.cb();
  }
  if (now_ < until) now_ = until;
}

void Simulator::run() {
  while (!queue_.empty()) {
    Item item = std::move(const_cast<Item&>(queue_.top()));
    queue_.pop();
    if (item.state->done) continue;
    GM_ASSERT_MSG(item.time >= now_, "event queue time went backwards");
    now_ = item.time;
    if (!item.periodic) item.state->done = true;
    ++executed_;
    item.cb();
  }
}

}  // namespace gm::sim
