#pragma once
// Discrete-event simulation kernel.
//
// Events are callbacks scheduled at absolute timestamps. Ordering is
// (time, sequence-number), so events at the same timestamp fire in
// scheduling order — a property the slot-boundary logic relies on
// (supply update before scheduler decision before demand integration).
// Cancellation uses tombstones: a cancelled event's slot stays in the
// heap and is skipped on pop, keeping cancel O(1).

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "util/assert.hpp"
#include "util/time_types.hpp"

namespace gm::sim {

using EventCallback = std::function<void()>;

/// Handle to a scheduled event; allows cancellation. Handles are cheap
/// to copy (shared ownership of a small control block). For periodic
/// events the handle controls the whole chain.
class EventHandle {
 public:
  EventHandle() = default;

  /// True if the event (or periodic chain) has neither fired to
  /// completion nor been cancelled.
  bool pending() const { return state_ && !state_->done; }

  /// Cancel if still pending. Safe to call repeatedly and on
  /// default-constructed handles; safe from inside the callback.
  void cancel() {
    if (state_) state_->done = true;
  }

 private:
  friend class Simulator;
  struct State {
    bool done = false;
  };
  std::shared_ptr<State> state_;
};

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime now() const { return now_; }

  /// Schedule `cb` at absolute time `at` (>= now()).
  EventHandle schedule_at(SimTime at, EventCallback cb);

  /// Schedule `cb` after a non-negative delay.
  EventHandle schedule_after(SimTime delay, EventCallback cb) {
    GM_CHECK(delay >= 0, "negative event delay: " << delay);
    return schedule_at(now_ + delay, std::move(cb));
  }

  /// Schedule `cb` every `period` seconds starting at absolute time
  /// `first`. Cancelling the returned handle stops the chain (also
  /// from within the callback itself).
  EventHandle schedule_periodic(SimTime first, SimTime period,
                                EventCallback cb);

  /// Run until the event queue drains or the clock would pass `until`.
  /// Events exactly at `until` do fire; the clock ends at `until`
  /// (even if the queue drained earlier).
  void run_until(SimTime until);

  /// Run until the queue is empty.
  void run();

  /// Number of events executed so far (telemetry / tests).
  std::uint64_t events_executed() const { return executed_; }

  /// Heap occupancy, including not-yet-collected cancelled tombstones.
  std::size_t queue_size() const { return queue_.size(); }

 private:
  struct Item {
    SimTime time;
    std::uint64_t seq;
    EventCallback cb;
    std::shared_ptr<EventHandle::State> state;
    bool periodic = false;
  };
  struct Later {
    bool operator()(const Item& a, const Item& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };
  struct PeriodicTask {
    SimTime period = 0;
    EventCallback cb;
    std::shared_ptr<EventHandle::State> state;
  };

  void push(SimTime at, EventCallback cb,
            std::shared_ptr<EventHandle::State> state, bool periodic);
  void fire_periodic(std::size_t index);

  std::priority_queue<Item, std::vector<Item>, Later> queue_;
  std::vector<PeriodicTask> periodic_tasks_;
  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
};

}  // namespace gm::sim
