#include "sim/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace gm::sim {

void Accumulator::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double Accumulator::variance() const {
  return n_ >= 2 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double Accumulator::stddev() const { return std::sqrt(variance()); }

void Accumulator::merge(const Accumulator& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  mean_ = (na * mean_ + nb * other.mean_) / n;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void TimeWeighted::set(SimTime t, double value) {
  if (!started_) {
    start_time_ = last_time_;
    started_ = true;
  }
  GM_CHECK(t >= last_time_, "TimeWeighted time went backwards: " << t
                                << " < " << last_time_);
  integral_ += value_ * static_cast<double>(t - last_time_);
  last_time_ = t;
  value_ = value;
}

double TimeWeighted::time_average() const {
  const SimTime dt = elapsed();
  return dt > 0 ? integral_ / static_cast<double>(dt) : 0.0;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)) {
  GM_CHECK(hi > lo, "histogram range empty: [" << lo << ", " << hi << ")");
  GM_CHECK(bins > 0, "histogram needs at least one bin");
  counts_.resize(bins, 0);
}

void Histogram::add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
  } else if (x >= hi_) {
    ++overflow_;
  } else {
    auto idx = static_cast<std::size_t>((x - lo_) / width_);
    if (idx >= counts_.size()) idx = counts_.size() - 1;  // fp edge
    ++counts_[idx];
  }
}

double Histogram::quantile(double q) const {
  GM_CHECK(q >= 0.0 && q <= 1.0, "quantile q out of range: " << q);
  GM_CHECK(total_ > 0, "quantile of empty histogram");
  const double target = q * static_cast<double>(total_);
  double cum = static_cast<double>(underflow_);
  if (target <= cum) return lo_;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double next = cum + static_cast<double>(counts_[i]);
    if (target <= next && counts_[i] > 0) {
      const double frac = (target - cum) / static_cast<double>(counts_[i]);
      return lo_ + (static_cast<double>(i) + frac) * width_;
    }
    cum = next;
  }
  return hi_;  // in the overflow bin: report the range upper bound
}

}  // namespace gm::sim
