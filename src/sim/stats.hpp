#pragma once
// Online statistics used throughout the simulator:
//  - Accumulator: count/mean/variance/min/max via Welford's algorithm;
//  - TimeWeighted: integrates a piecewise-constant signal over
//    simulation time (powered-on servers, battery level, ...);
//  - Histogram: fixed-width bins with overflow, quantile estimates
//    (latency percentiles);
//  - Counter: named monotonic counters.

#include <cstdint>
#include <string>
#include <vector>

#include "util/time_types.hpp"

namespace gm::sim {

/// Welford online mean/variance with min/max tracking.
class Accumulator {
 public:
  void add(double x);

  std::uint64_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for n < 2.
  double variance() const;
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return sum_; }

  /// Merge another accumulator (parallel sweeps combine shards).
  void merge(const Accumulator& other);

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Integral of a piecewise-constant signal over simulation time.
/// Typical use: track powered-on node count; `integral()` then gives
/// node-seconds, and `time_average()` the mean powered-on count.
class TimeWeighted {
 public:
  explicit TimeWeighted(SimTime start = 0, double initial = 0.0)
      : last_time_(start), value_(initial) {}

  /// Record that the signal changed to `value` at time `t` (>= last).
  void set(SimTime t, double value);

  /// Advance time without changing the value (finalize at run end).
  void advance_to(SimTime t) { set(t, value_); }

  double value() const { return value_; }
  double integral() const { return integral_; }
  SimTime elapsed() const { return last_time_ - start_time_; }
  /// integral / elapsed; 0 if no time has passed.
  double time_average() const;

 private:
  SimTime start_time_ = 0;
  SimTime last_time_ = 0;
  double value_ = 0.0;
  double integral_ = 0.0;
  bool started_ = false;
};

/// Fixed-width-bin histogram over [lo, hi) with underflow/overflow
/// bins. Quantiles interpolate within bins, which is accurate enough
/// for latency percentiles at the bin resolutions used here.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  std::uint64_t count() const { return total_; }
  std::uint64_t underflow() const { return underflow_; }
  std::uint64_t overflow() const { return overflow_; }
  double quantile(double q) const;  ///< q in [0, 1]
  double bin_lo() const { return lo_; }
  double bin_hi() const { return hi_; }
  std::size_t bin_count() const { return counts_.size(); }
  std::uint64_t bin(std::size_t i) const { return counts_.at(i); }

 private:
  double lo_, hi_, width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0, overflow_ = 0, total_ = 0;
};

}  // namespace gm::sim
