#include "storage/cluster.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace gm::storage {

void ClusterConfig::validate() const {
  GM_CHECK(racks >= 1 && nodes_per_rack >= 1,
           "cluster needs at least one rack and node");
  node.validate();
  placement.validate();
}

namespace {

std::vector<NodeDescriptor> make_descriptors(const ClusterConfig& config) {
  std::vector<NodeDescriptor> descriptors;
  descriptors.reserve(config.total_nodes());
  NodeId id = 0;
  for (int r = 0; r < config.racks; ++r)
    for (int n = 0; n < config.nodes_per_rack; ++n)
      descriptors.push_back({id++, static_cast<RackId>(r)});
  return descriptors;
}

}  // namespace

Cluster::Cluster(const ClusterConfig& config)
    : config_(config),
      placement_(config.placement, make_descriptors(config)) {
  config_.validate();
  nodes_.reserve(config_.total_nodes());
  for (const auto& d : placement_.nodes())
    nodes_.emplace_back(d.id, d.rack, config_.node);
  GM_CHECK(max_storage_utilization() <= 1.0,
           "cluster overfull: a node holds "
               << max_storage_utilization() * 100.0
               << "% of its disk capacity — reduce group sizes or add "
                  "nodes/disks");
}

StorageNode& Cluster::node(NodeId id) {
  GM_CHECK(id < nodes_.size(), "node id out of range: " << id);
  return nodes_[id];
}

const StorageNode& Cluster::node(NodeId id) const {
  GM_CHECK(id < nodes_.size(), "node id out of range: " << id);
  return nodes_[id];
}

std::uint32_t Cluster::covered_groups(const ActiveSet& active) const {
  GM_CHECK(active.size() == nodes_.size(),
           "active set size mismatch: " << active.size());
  std::uint32_t covered = 0;
  for (GroupId g = 0; g < placement_.group_count(); ++g) {
    for (NodeId n : placement_.replicas(g)) {
      if (active[n]) {
        ++covered;
        break;
      }
    }
  }
  return covered;
}

ActiveSet Cluster::choose_active_set(
    int target, const std::vector<bool>* excluded) const {
  GM_CHECK(target >= 0, "negative activation target");
  GM_CHECK(!excluded || excluded->size() == nodes_.size(),
           "exclusion mask size mismatch");
  ActiveSet active(nodes_.size(), true);
  int count = static_cast<int>(nodes_.size());

  // Per-group active replica counts let each deactivation check run in
  // O(groups on node) instead of recomputing global coverage.
  std::vector<int> group_active(placement_.group_count(), 0);
  for (GroupId g = 0; g < placement_.group_count(); ++g)
    group_active[g] = static_cast<int>(placement_.replicas(g).size());

  // Excluded nodes go first, unconditionally.
  if (excluded) {
    for (NodeId id = 0; id < nodes_.size(); ++id) {
      if (!(*excluded)[id] || !active[id]) continue;
      active[id] = false;
      --count;
      for (GroupId g : placement_.groups_on(id)) --group_active[g];
    }
  }

  for (std::size_t i = nodes_.size(); i-- > 0 && count > target;) {
    const NodeId id = nodes_[i].id();
    if (!active[id]) continue;
    const auto& groups = placement_.groups_on(id);
    const bool removable =
        std::all_of(groups.begin(), groups.end(),
                    [&](GroupId g) { return group_active[g] >= 2; });
    if (!removable) continue;
    active[id] = false;
    --count;
    for (GroupId g : groups) --group_active[g];
  }
  const std::uint32_t coverable =
      excluded ? coverable_groups(*excluded) : placement_.group_count();
  GM_ASSERT_MSG(covered_groups(active) == coverable,
                "greedy deactivation broke coverage");
  return active;
}

std::uint32_t Cluster::coverable_groups(
    const std::vector<bool>& excluded) const {
  GM_CHECK(excluded.size() == nodes_.size(),
           "exclusion mask size mismatch");
  std::uint32_t coverable = 0;
  for (GroupId g = 0; g < placement_.group_count(); ++g)
    for (NodeId n : placement_.replicas(g))
      if (!excluded[n]) {
        ++coverable;
        break;
      }
  return coverable;
}

int Cluster::min_feasible_count() const {
  return active_count(choose_active_set(0));
}

double Cluster::node_storage_utilization(NodeId id) const {
  const StorageNode& n = node(id);
  const double capacity =
      n.config().disk.capacity_bytes * n.disks().size();
  return capacity > 0.0 ? placement_.node_bytes(id) / capacity : 0.0;
}

double Cluster::max_storage_utilization() const {
  double worst = 0.0;
  for (NodeId id = 0; id < nodes_.size(); ++id)
    worst = std::max(worst, node_storage_utilization(id));
  return worst;
}

int Cluster::active_count(const ActiveSet& active) {
  return static_cast<int>(std::count(active.begin(), active.end(), true));
}

}  // namespace gm::storage
