#pragma once
// Cluster: the node/rack topology plus the placement map, with the
// coverage logic a renewable-aware power manager needs — which nodes
// can be deactivated while every placement group keeps at least one
// replica on an active node.

#include <cstdint>
#include <vector>

#include "storage/node.hpp"
#include "storage/placement.hpp"
#include "storage/types.hpp"

namespace gm::storage {

struct ClusterConfig {
  int racks = 4;
  int nodes_per_rack = 16;
  NodeConfig node;
  PlacementConfig placement;

  int total_nodes() const { return racks * nodes_per_rack; }
  void validate() const;
};

/// Which nodes a power decision keeps active. Index = NodeId.
using ActiveSet = std::vector<bool>;

class Cluster {
 public:
  explicit Cluster(const ClusterConfig& config);

  const ClusterConfig& config() const { return config_; }
  std::size_t node_count() const { return nodes_.size(); }
  StorageNode& node(NodeId id);
  const StorageNode& node(NodeId id) const;
  std::vector<StorageNode>& nodes() { return nodes_; }
  const std::vector<StorageNode>& nodes() const { return nodes_; }

  const PlacementMap& placement() const { return placement_; }

  /// Number of placement groups with >= 1 replica in `active`.
  std::uint32_t covered_groups(const ActiveSet& active) const;
  bool is_feasible(const ActiveSet& active) const {
    return covered_groups(active) == placement_.group_count();
  }

  /// Smallest feasible active-node count reachable by the greedy
  /// deactivation order (upper bound on the optimum set cover).
  int min_feasible_count() const;

  /// Deterministically chooses a feasible active set with at most
  /// `target` nodes beyond feasibility needs: starts from all-active
  /// and greedily deactivates (highest NodeId first) while feasible,
  /// stopping once the active count reaches `target`. The result is
  /// always feasible; it may exceed `target` when coverage demands it.
  ///
  /// `excluded` (optional, indexed by NodeId) marks nodes that must
  /// stay inactive — failed hardware. Groups whose replicas are all
  /// excluded are unavoidably dark and do not constrain the choice;
  /// every other group keeps an active replica.
  ActiveSet choose_active_set(int target,
                              const std::vector<bool>* excluded =
                                  nullptr) const;

  /// Coverage achievable at best given the exclusions (groups with at
  /// least one non-excluded replica).
  std::uint32_t coverable_groups(const std::vector<bool>& excluded) const;

  /// Count of true entries.
  static int active_count(const ActiveSet& active);

  /// Storage-capacity utilization of a node: stored bytes / capacity.
  double node_storage_utilization(NodeId id) const;
  /// The most-filled node's utilization (validated <= 1 on build).
  double max_storage_utilization() const;

 private:
  ClusterConfig config_;
  std::vector<StorageNode> nodes_;
  PlacementMap placement_;
};

}  // namespace gm::storage
