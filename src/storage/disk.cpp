#include "storage/disk.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace gm::storage {

const char* disk_state_name(DiskState state) {
  switch (state) {
    case DiskState::kActive: return "active";
    case DiskState::kIdle: return "idle";
    case DiskState::kStandby: return "standby";
    case DiskState::kSpinningUp: return "spinning-up";
  }
  return "?";
}

void DiskConfig::validate() const {
  GM_CHECK(active_power_w >= idle_power_w &&
               idle_power_w >= standby_power_w && standby_power_w >= 0.0,
           "disk power states must be ordered active >= idle >= standby");
  GM_CHECK(spinup_time_s > 0.0, "spin-up time must be positive");
  GM_CHECK(bandwidth_bytes_per_s > 0.0, "disk bandwidth must be positive");
  GM_CHECK(capacity_bytes > 0.0, "disk capacity must be positive");
  GM_CHECK(avg_seek_s >= 0.0, "seek time must be non-negative");
  GM_CHECK(max_spinup_cycles_per_day > 0.0,
           "cycle budget must be positive");
}

SimTime Disk::begin_spinup(SimTime t) {
  if (spinning()) return t;
  if (state_ == DiskState::kSpinningUp) return spinup_done_;
  GM_ASSERT(state_ == DiskState::kStandby);
  state_ = DiskState::kSpinningUp;
  spinup_done_ = t + static_cast<SimTime>(config_.spinup_time_s);
  ++spinup_count_;
  return spinup_done_;
}

void Disk::complete_spinup(SimTime t) {
  GM_ASSERT_MSG(state_ == DiskState::kSpinningUp,
                "complete_spinup in state " << disk_state_name(state_));
  GM_ASSERT_MSG(t >= spinup_done_, "spin-up completed early");
  state_ = DiskState::kIdle;
}

void Disk::spin_down(SimTime) {
  GM_CHECK(spinning(), "spin_down from state " << disk_state_name(state_));
  state_ = DiskState::kStandby;
}

Seconds Disk::service_time_s(std::uint64_t bytes) const {
  GM_CHECK(spinning(), "I/O on non-spinning disk (state "
                           << disk_state_name(state_) << ")");
  return config_.avg_seek_s +
         static_cast<double>(bytes) / config_.bandwidth_bytes_per_s;
}

Watts Disk::power_w() const {
  switch (state_) {
    case DiskState::kActive: return config_.active_power_w;
    case DiskState::kIdle: return config_.idle_power_w;
    case DiskState::kStandby: return config_.standby_power_w;
    case DiskState::kSpinningUp: return config_.spinup_power_w;
  }
  GM_UNREACHABLE("invalid disk state");
}

bool Disk::cycle_budget_allows(double elapsed_days) const {
  const double budget =
      config_.max_spinup_cycles_per_day * std::max(elapsed_days, 1.0);
  return static_cast<double>(spinup_count_ + 1) <= budget;
}

}  // namespace gm::storage
