#pragma once
// Hard-disk model: power states with spin-up/down transitions (the
// MAID-style lever a renewable-aware storage scheduler pulls), a
// seek+transfer service-time model, and per-disk telemetry.
//
// The disk is a passive state machine driven by its owning node: state
// changes take effect over a transition latency, and the transition
// energy is reported to the caller for ledger accounting.

#include <cstdint>

#include "storage/types.hpp"
#include "util/time_types.hpp"
#include "util/units.hpp"

namespace gm::storage {

enum class DiskState : std::uint8_t {
  kActive = 0,   ///< servicing I/O
  kIdle,         ///< spinning, no I/O
  kStandby,      ///< spun down
  kSpinningUp,   ///< transition standby → idle
};

const char* disk_state_name(DiskState state);

struct DiskConfig {
  Watts active_power_w = 11.0;
  Watts idle_power_w = 7.0;
  Watts standby_power_w = 0.9;
  Watts spinup_power_w = 24.0;     ///< draw during spin-up
  Seconds spinup_time_s = 10.0;
  Seconds spindown_time_s = 3.0;   ///< modeled as instant, energy-free
  /// Serviceability model.
  Seconds avg_seek_s = 0.008;
  double bandwidth_bytes_per_s = 150e6;
  double capacity_bytes = 4e12;  ///< 4 TB
  /// Reliability guard: start/stop cycles per day beyond which the
  /// power manager must refuse further spin-downs.
  double max_spinup_cycles_per_day = 10.0;

  void validate() const;
  /// Energy consumed by one complete spin-up transition.
  Joules spinup_energy_j() const { return spinup_power_w * spinup_time_s; }
};

class Disk {
 public:
  Disk(DiskId id, const DiskConfig& config)
      : id_(id), config_(config) {
    config_.validate();
  }

  DiskId id() const { return id_; }
  const DiskConfig& config() const { return config_; }
  DiskState state() const { return state_; }
  bool spinning() const {
    return state_ == DiskState::kActive || state_ == DiskState::kIdle;
  }

  /// Begin spin-up at time t; returns the completion time. No-op (and
  /// returns t) if already spinning or spinning up.
  SimTime begin_spinup(SimTime t);
  /// Called by the node when the spin-up completes.
  void complete_spinup(SimTime t);
  /// Spin the disk down (instantaneous). Only legal from idle/active.
  void spin_down(SimTime t);

  /// Service time for a request of `bytes` (disk must be spinning).
  Seconds service_time_s(std::uint64_t bytes) const;

  /// Instantaneous power for the current state.
  Watts power_w() const;

  std::uint64_t spinup_count() const { return spinup_count_; }
  /// True if another spin-down→up cycle would still respect the
  /// reliability budget given total elapsed days.
  bool cycle_budget_allows(double elapsed_days) const;

 private:
  DiskId id_;
  DiskConfig config_;
  DiskState state_ = DiskState::kIdle;
  SimTime spinup_done_ = 0;
  std::uint64_t spinup_count_ = 0;
};

}  // namespace gm::storage
