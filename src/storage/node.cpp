#include "storage/node.hpp"

#include <algorithm>

#include "util/assert.hpp"
#include "util/math_utils.hpp"

namespace gm::storage {

const char* node_state_name(NodeState state) {
  switch (state) {
    case NodeState::kOn: return "on";
    case NodeState::kOff: return "off";
    case NodeState::kBooting: return "booting";
    case NodeState::kShuttingDown: return "shutting-down";
  }
  return "?";
}

void NodeConfig::validate() const {
  GM_CHECK(cpu_peak_w >= cpu_idle_w && cpu_idle_w > 0.0,
           "node power model requires peak >= idle > 0");
  GM_CHECK(disks_per_node >= 0, "negative disk count");
  GM_CHECK(boot_time_s >= 0.0 && shutdown_time_s >= 0.0,
           "transition times must be non-negative");
  GM_CHECK(task_slots >= 0, "negative task slots");
  disk.validate();
}

StorageNode::StorageNode(NodeId id, RackId rack, const NodeConfig& config)
    : id_(id), rack_(rack), config_(config) {
  config_.validate();
  disks_.reserve(config_.disks_per_node);
  for (int d = 0; d < config_.disks_per_node; ++d)
    disks_.emplace_back(static_cast<DiskId>(d), config_.disk);
}

SimTime StorageNode::begin_power_on(SimTime t) {
  switch (state_) {
    case NodeState::kOn: return t;
    case NodeState::kBooting: return transition_done_;
    case NodeState::kShuttingDown:
      GM_CHECK(false, "power-on while shutting down (node " << id_ << ")");
      return 0;  // unreachable
    case NodeState::kOff: break;
  }
  state_ = NodeState::kBooting;
  transition_done_ = t + static_cast<SimTime>(config_.boot_time_s);
  ++power_cycles_;
  return transition_done_;
}

void StorageNode::complete_power_on(SimTime t) {
  GM_ASSERT_MSG(state_ == NodeState::kBooting,
                "complete_power_on in state " << node_state_name(state_));
  GM_ASSERT(t >= transition_done_);
  state_ = NodeState::kOn;
  // Disks come up idle with the node (their spin-up is folded into the
  // node boot time and energy).
  for (auto& d : disks_)
    if (!d.spinning() && d.state() != DiskState::kSpinningUp) {
      d.begin_spinup(t - static_cast<SimTime>(config_.disk.spinup_time_s));
      d.complete_spinup(t);
    }
}

SimTime StorageNode::begin_power_off(SimTime t) {
  switch (state_) {
    case NodeState::kOff: return t;
    case NodeState::kShuttingDown: return transition_done_;
    case NodeState::kBooting:
      GM_CHECK(false, "power-off while booting (node " << id_ << ")");
      return 0;  // unreachable
    case NodeState::kOn: break;
  }
  for (auto& d : disks_)
    if (d.spinning()) d.spin_down(t);
  state_ = NodeState::kShuttingDown;
  transition_done_ = t + static_cast<SimTime>(config_.shutdown_time_s);
  return transition_done_;
}

void StorageNode::complete_power_off(SimTime t) {
  GM_ASSERT_MSG(state_ == NodeState::kShuttingDown,
                "complete_power_off in state " << node_state_name(state_));
  GM_ASSERT(t >= transition_done_);
  state_ = NodeState::kOff;
}

Watts StorageNode::power_w(double cpu_utilization) const {
  GM_CHECK(cpu_utilization >= 0.0 && cpu_utilization <= 1.0 + 1e-9,
           "utilization out of range: " << cpu_utilization);
  switch (state_) {
    case NodeState::kOff: return 0.0;
    case NodeState::kBooting:
    case NodeState::kShuttingDown: return config_.boot_power_w;
    case NodeState::kOn: break;
  }
  const double u = clamp(cpu_utilization, 0.0, 1.0);
  Watts total = config_.cpu_idle_w +
                (config_.cpu_peak_w - config_.cpu_idle_w) * u;
  for (const auto& d : disks_) total += d.power_w();
  return total;
}

double StorageNode::task_utilization(int running_tasks,
                                     double per_task_util) const {
  GM_CHECK(running_tasks >= 0, "negative task count");
  return clamp(running_tasks * per_task_util, 0.0, 1.0);
}

}  // namespace gm::storage
