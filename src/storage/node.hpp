#pragma once
// Storage node: a server with a CPU power model (idle ≈ half of peak,
// the structural fact green scheduling exploits) and an enclosure of
// disks. Nodes transition between power states with a latency and an
// energy cost that the ledger charges as transition overhead.

#include <cstdint>
#include <vector>

#include "storage/disk.hpp"
#include "storage/types.hpp"
#include "util/units.hpp"

namespace gm::storage {

enum class NodeState : std::uint8_t {
  kOn = 0,
  kOff,
  kBooting,
  kShuttingDown,
};

const char* node_state_name(NodeState state);

struct NodeConfig {
  Watts cpu_idle_w = 95.0;   ///< chassis + CPU at zero utilization
  Watts cpu_peak_w = 190.0;  ///< at full utilization
  int disks_per_node = 4;
  DiskConfig disk;

  Seconds boot_time_s = 120.0;
  Seconds shutdown_time_s = 30.0;
  Watts boot_power_w = 150.0;       ///< draw while booting/shutting down

  /// Concurrent background tasks a node can host.
  int task_slots = 4;

  void validate() const;
  /// Energy of a full off→on→off cycle's transitions.
  Joules boot_energy_j() const { return boot_power_w * boot_time_s; }
  Joules shutdown_energy_j() const {
    return boot_power_w * shutdown_time_s;
  }
  /// Power of a node that is on with all disks idle and zero load.
  Watts idle_floor_w() const {
    return cpu_idle_w + disks_per_node * disk.idle_power_w;
  }
  /// Power at full utilization with all disks active.
  Watts peak_w() const {
    return cpu_peak_w + disks_per_node * disk.active_power_w;
  }
};

class StorageNode {
 public:
  StorageNode(NodeId id, RackId rack, const NodeConfig& config);

  NodeId id() const { return id_; }
  RackId rack() const { return rack_; }
  const NodeConfig& config() const { return config_; }
  NodeState state() const { return state_; }
  bool available() const { return state_ == NodeState::kOn; }

  std::vector<Disk>& disks() { return disks_; }
  const std::vector<Disk>& disks() const { return disks_; }

  /// Begin power-on at time t. Returns completion time; no-op when
  /// already on (returns t) or booting (returns pending completion).
  SimTime begin_power_on(SimTime t);
  void complete_power_on(SimTime t);

  /// Begin shutdown; returns completion time. All disks spin down.
  SimTime begin_power_off(SimTime t);
  void complete_power_off(SimTime t);

  /// Instantaneous power at a given CPU utilization in [0, 1]. The
  /// standard linear model: idle + (peak - idle) × u, plus disks.
  Watts power_w(double cpu_utilization) const;

  /// Utilization added by `running_tasks` background tasks (clamped).
  double task_utilization(int running_tasks, double per_task_util) const;

  std::uint64_t power_cycle_count() const { return power_cycles_; }

 private:
  NodeId id_;
  RackId rack_;
  NodeConfig config_;
  NodeState state_ = NodeState::kOn;
  SimTime transition_done_ = 0;
  std::uint64_t power_cycles_ = 0;
  std::vector<Disk> disks_;
};

}  // namespace gm::storage
