#include "storage/placement.hpp"

#include <algorithm>
#include <unordered_map>

#include <cmath>

#include "util/assert.hpp"
#include "util/distributions.hpp"
#include "util/rng.hpp"

namespace gm::storage {

void PlacementConfig::validate() const {
  GM_CHECK(group_count > 0, "placement needs at least one group");
  GM_CHECK(replication >= 1, "replication must be >= 1");
  GM_CHECK(mean_group_bytes > 0.0, "group data size must be positive");
  GM_CHECK(group_bytes_sigma >= 0.0, "negative data-size sigma");
}

PlacementMap::PlacementMap(const PlacementConfig& config,
                           std::vector<NodeDescriptor> nodes)
    : config_(config), nodes_(std::move(nodes)) {
  config_.validate();
  GM_CHECK(!nodes_.empty(), "placement over an empty cluster");

  // Count racks to decide whether rack-disjoint placement is possible.
  std::unordered_map<RackId, int> rack_sizes;
  for (const auto& n : nodes_) ++rack_sizes[n.rack];
  const bool rack_disjoint =
      rack_sizes.size() >= static_cast<std::size_t>(config_.replication);

  group_replicas_.resize(config_.group_count);
  node_groups_.resize(nodes_.size());

  // Per-group data volumes (lognormal around the configured mean).
  group_bytes_.resize(config_.group_count);
  Rng data_rng(config_.seed ^ 0xda7aULL);
  const double log_mu =
      std::log(config_.mean_group_bytes) -
      0.5 * config_.group_bytes_sigma * config_.group_bytes_sigma;
  for (auto& bytes : group_bytes_)
    bytes = sample_lognormal(data_rng, log_mu, config_.group_bytes_sigma);

  NodeId max_id = 0;
  for (const auto& n : nodes_) max_id = std::max(max_id, n.id);
  id_to_index_.assign(max_id + 1, SIZE_MAX);
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    GM_CHECK(id_to_index_[nodes_[i].id] == SIZE_MAX,
             "duplicate node id in placement: " << nodes_[i].id);
    id_to_index_[nodes_[i].id] = i;
  }

  struct Scored {
    std::uint64_t score;
    NodeId node;
    RackId rack;
  };
  std::vector<Scored> scored;
  scored.reserve(nodes_.size());

  for (GroupId g = 0; g < config_.group_count; ++g) {
    scored.clear();
    for (const auto& n : nodes_) {
      const std::uint64_t score =
          mix_hash(mix_hash(config_.seed, g), n.id);
      scored.push_back({score, n.id, n.rack});
    }
    std::sort(scored.begin(), scored.end(),
              [](const Scored& a, const Scored& b) {
                if (a.score != b.score) return a.score > b.score;
                return a.node < b.node;
              });

    auto& replicas = group_replicas_[g];
    std::vector<RackId> used_racks;
    for (const auto& s : scored) {
      if (replicas.size() == static_cast<std::size_t>(config_.replication))
        break;
      if (rack_disjoint &&
          std::find(used_racks.begin(), used_racks.end(), s.rack) !=
              used_racks.end())
        continue;
      replicas.push_back(s.node);
      used_racks.push_back(s.rack);
    }
    // If rack-disjoint filling fell short (tiny clusters), relax it.
    for (const auto& s : scored) {
      if (replicas.size() == static_cast<std::size_t>(config_.replication))
        break;
      if (std::find(replicas.begin(), replicas.end(), s.node) ==
          replicas.end())
        replicas.push_back(s.node);
    }
    GM_CHECK(!replicas.empty(), "group " << g << " has no replicas");
    for (NodeId n : replicas) node_groups_[id_to_index_[n]].push_back(g);
  }
}

std::uint32_t shard_of_group(GroupId group, std::uint32_t shard_count) {
  if (shard_count <= 1) return 0;
  // Fixed seed (not the placement seed): shard membership is a
  // scheduling concern and must not move when placement is reseeded.
  return static_cast<std::uint32_t>(mix_hash(0x5aa5c0de0005ULL, group) %
                                    shard_count);
}

GroupId PlacementMap::group_of(ObjectId object) const {
  return static_cast<GroupId>(mix_hash(config_.seed ^ 0xabcdef12345ULL,
                                       object) %
                              config_.group_count);
}

const std::vector<NodeId>& PlacementMap::replicas(GroupId group) const {
  GM_CHECK(group < group_replicas_.size(),
           "group out of range: " << group);
  return group_replicas_[group];
}

std::size_t PlacementMap::index_of(NodeId node) const {
  GM_CHECK(node < id_to_index_.size() && id_to_index_[node] != SIZE_MAX,
           "unknown node in placement: " << node);
  return id_to_index_[node];
}

const std::vector<GroupId>& PlacementMap::groups_on(NodeId node) const {
  return node_groups_[index_of(node)];
}

double PlacementMap::group_bytes(GroupId group) const {
  GM_CHECK(group < group_bytes_.size(), "group out of range: " << group);
  return group_bytes_[group];
}

double PlacementMap::node_bytes(NodeId node) const {
  double total = 0.0;
  for (GroupId g : node_groups_[index_of(node)]) total += group_bytes_[g];
  return total;
}

double PlacementMap::total_physical_bytes() const {
  double total = 0.0;
  for (GroupId g = 0; g < config_.group_count; ++g)
    total += group_bytes_[g] *
             static_cast<double>(group_replicas_[g].size());
  return total;
}

}  // namespace gm::storage
