#pragma once
// Replica placement. Objects hash into a fixed number of placement
// groups; each group maps to `replication` nodes in distinct racks via
// rendezvous (highest-random-weight) hashing. Rendezvous hashing gives
// deterministic, uniformly balanced placement with minimal movement
// when the node set changes — the properties the coverage logic and
// the rebalance workload rely on.

#include <cstdint>
#include <vector>

#include "storage/types.hpp"

namespace gm::storage {

struct PlacementConfig {
  std::uint32_t group_count = 512;
  int replication = 2;
  std::uint64_t seed = 7;
  /// Data volume per placement group: lognormal with this mean (bytes)
  /// and log-space sigma. Drives scrub/repair work and capacity checks.
  double mean_group_bytes = 200e9;
  double group_bytes_sigma = 0.6;

  void validate() const;
};

/// Immutable description of the node universe for placement purposes.
struct NodeDescriptor {
  NodeId id;
  RackId rack;
};

/// Deterministic placement-group → scheduling-shard map used by the
/// sharded planner (core/shard.hpp). Pure hash of the group id: stable
/// across runs, processes, and node-set changes, so a group's shard
/// never churns — the property the CI shard-determinism gate and the
/// sharded-vs-flat equivalence tests rely on. `shard_count <= 1` maps
/// everything to shard 0.
std::uint32_t shard_of_group(GroupId group, std::uint32_t shard_count);

class PlacementMap {
 public:
  PlacementMap(const PlacementConfig& config,
               std::vector<NodeDescriptor> nodes);

  const PlacementConfig& config() const { return config_; }
  std::uint32_t group_count() const { return config_.group_count; }
  GroupId group_of(ObjectId object) const;

  /// Replica nodes of a group, in descending placement preference.
  const std::vector<NodeId>& replicas(GroupId group) const;

  /// All groups having a replica on `node`.
  const std::vector<GroupId>& groups_on(NodeId node) const;

  /// Data volume of a group (one replica's worth).
  double group_bytes(GroupId group) const;
  /// Bytes stored on a node (sum over its replicas).
  double node_bytes(NodeId node) const;
  /// Total logical data × replication (physical bytes in the cluster).
  double total_physical_bytes() const;

  std::size_t node_count() const { return nodes_.size(); }
  const std::vector<NodeDescriptor>& nodes() const { return nodes_; }

 private:
  std::size_t index_of(NodeId node) const;

  PlacementConfig config_;
  std::vector<NodeDescriptor> nodes_;
  std::vector<std::vector<NodeId>> group_replicas_;
  std::vector<std::vector<GroupId>> node_groups_;
  std::vector<double> group_bytes_;
  std::vector<std::size_t> id_to_index_;  ///< dense NodeId → index
};

}  // namespace gm::storage
