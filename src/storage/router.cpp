#include "storage/router.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace gm::storage {

RequestRouter::RequestRouter(Cluster& cluster, const RouterConfig& config)
    : cluster_(cluster),
      config_(config),
      latency_(0.0, config.latency_hist_max_s,
               static_cast<std::size_t>(config.latency_hist_max_s * 1000.0)) {
  disk_clocks_.resize(cluster_.node_count());
  for (std::size_t n = 0; n < cluster_.node_count(); ++n)
    disk_clocks_[n].resize(cluster_.node(static_cast<NodeId>(n))
                               .disks()
                               .size());
}

void RequestRouter::consider_node(
    NodeId n, std::optional<std::pair<NodeId, DiskId>>& best,
    SimTime& best_busy) const {
  const StorageNode& node = cluster_.node(n);
  if (!node.available()) return;
  for (DiskId d = 0; d < node.disks().size(); ++d) {
    if (!node.disks()[d].spinning()) continue;
    const SimTime busy = disk_clocks_[n][d].busy_until;
    if (busy < best_busy) {
      best_busy = busy;
      best = std::make_pair(n, d);
    }
  }
}

std::optional<std::pair<NodeId, DiskId>> RequestRouter::pick_disk(
    GroupId group) const {
  std::optional<std::pair<NodeId, DiskId>> best;
  SimTime best_busy = kSimTimeMax;
  for (NodeId n : cluster_.placement().replicas(group))
    consider_node(n, best, best_busy);
  return best;
}

std::optional<std::pair<NodeId, DiskId>> RequestRouter::pick_any_disk()
    const {
  std::optional<std::pair<NodeId, DiskId>> best;
  SimTime best_busy = kSimTimeMax;
  for (NodeId n = 0; n < cluster_.node_count(); ++n)
    consider_node(n, best, best_busy);
  return best;
}

std::optional<RequestOutcome> RequestRouter::route(const IoRequest& request,
                                                   SimTime now,
                                                   const NodeWaker& waker) {
  ++stats_.requests;
  if (request.is_write)
    ++stats_.writes;
  else
    ++stats_.reads;

  const GroupId group = cluster_.placement().group_of(request.object);
  RequestOutcome outcome;
  SimTime start = now;

  auto target = pick_disk(group);
  if (!target) {
    // No active replica right now.
    if (request.is_write && config_.allow_write_offload) {
      // Log the write on the least-busy spinning disk of *any* active
      // node (same selection rule as pick_disk, fleet-wide — a fixed
      // scan order would hot-spot node 0): cheap append, replayed by a
      // reconciliation task later.
      if (const auto log_target = pick_any_disk()) {
        const auto [n, d] = *log_target;
        const StorageNode& node = cluster_.node(n);
        auto& clock = disk_clocks_[n][d];
        const SimTime begin = std::max(now, clock.busy_until);
        const Seconds service =
            node.disks()[d].service_time_s(request.size_bytes);
        clock.busy_until = begin + static_cast<SimTime>(service + 0.5);
        stats_.busy_disk_seconds += service;
        ++stats_.offloaded_writes;

        BackgroundTask replay;
        replay.id = next_offload_task_id_++;
        replay.type = TaskType::kRepair;
        replay.release = now;
        replay.deadline = now + static_cast<SimTime>(hours_to_s(12));
        replay.work_s = config_.offload_replay_work_s;
        replay.utilization = 0.05;
        replay.group = group;
        pending_offload_tasks_.push_back(replay);

        outcome.completion = begin + static_cast<SimTime>(service + 0.5);
        outcome.latency_s =
            static_cast<Seconds>(begin - request.arrival) + service;
        outcome.served_by = n;
        outcome.offloaded = true;
        latency_.add(outcome.latency_s);
        return outcome;
      }
      // No active node anywhere: fall through to forced wake-up.
    }
    if (!waker) {
      if (!request.is_write) ++unavailable_reads_;
      return std::nullopt;
    }
    start = waker(group, now);
    if (start >= kSimTimeMax) {
      // The waker could not produce a replica (all failed): the data
      // is unavailable.
      if (!request.is_write) ++unavailable_reads_;
      return std::nullopt;
    }
    outcome.forced_wakeup = true;
    ++stats_.forced_wakeups;
    target = pick_disk(group);
    if (!target) {
      // Waker promised future availability; model the wait by serving
      // at `start` on the first replica, charging the service time to
      // that replica's first disk clock so the occupancy is not
      // phantom-free for subsequent requests.
      const NodeId n = cluster_.placement().replicas(group).front();
      const StorageNode& node = cluster_.node(n);
      GM_CHECK(!node.disks().empty(), "replica node has no disks");
      const Seconds service =
          node.config().disk.avg_seek_s +
          static_cast<double>(request.size_bytes) /
              node.config().disk.bandwidth_bytes_per_s;
      auto& clock = disk_clocks_[n][0];
      const SimTime begin = std::max(start, clock.busy_until);
      clock.busy_until = begin + static_cast<SimTime>(service + 0.5);
      outcome.completion = begin + static_cast<SimTime>(service + 0.5);
      outcome.latency_s =
          static_cast<Seconds>(begin - request.arrival) + service;
      outcome.served_by = n;
      stats_.busy_disk_seconds += service;
      latency_.add(outcome.latency_s);
      return outcome;
    }
  }

  const auto [n, d] = *target;
  StorageNode& node = cluster_.node(n);
  auto& clock = disk_clocks_[n][d];
  const SimTime begin = std::max(start, clock.busy_until);
  const Seconds service = node.disks()[d].service_time_s(request.size_bytes);
  clock.busy_until = begin + static_cast<SimTime>(service + 0.5);
  stats_.busy_disk_seconds += service;

  // Completion uses the same rounded occupancy as busy_until so a disk
  // is never "busy" past the reported completion of its last request.
  outcome.completion = begin + static_cast<SimTime>(service + 0.5);
  outcome.latency_s =
      static_cast<Seconds>(begin - request.arrival) + service;
  outcome.served_by = n;
  latency_.add(outcome.latency_s);
  return outcome;
}

std::vector<BackgroundTask> RequestRouter::drain_offload_tasks() {
  std::vector<BackgroundTask> out;
  out.swap(pending_offload_tasks_);
  return out;
}

}  // namespace gm::storage
