#pragma once
// Event-level I/O request routing. A request targets an object; the
// router finds an active replica node, picks the least-loaded spinning
// disk there, and models FIFO queueing + seek/transfer service time.
//
// When no replica is active (a transient the power manager normally
// prevents, but which failure injection and aggressive policies can
// produce), the router either waits for a pending activation or asks
// the engine — through the NodeWaker callback — to force one,
// accounting the extra latency and the forced wake-up.
//
// Writes additionally support *write offloading*: when the home
// replicas are asleep, the write is durably logged on any active node
// and a reconciliation task is emitted for later replay, trading
// deferred background work for foreground latency.

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "sim/stats.hpp"
#include "storage/cluster.hpp"
#include "storage/types.hpp"

namespace gm::storage {

/// Engine hook: ensure some replica of `group` is coming up; returns
/// the time at which one will be available.
using NodeWaker = std::function<SimTime(GroupId group, SimTime now)>;

struct RouterConfig {
  bool allow_write_offload = true;
  /// Work replaying one offloaded write later (node-seconds).
  Seconds offload_replay_work_s = 0.05;
  /// Latency histogram range (seconds). Bin width is 1 ms; requests
  /// slower than the max (forced wake-ups) land in the overflow bin
  /// and report the bound.
  double latency_hist_max_s = 30.0;
};

struct RequestOutcome {
  SimTime completion = 0;
  Seconds latency_s = 0.0;
  NodeId served_by = kInvalidNode;
  bool offloaded = false;
  bool forced_wakeup = false;
};

struct RouterStats {
  std::uint64_t requests = 0;
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t offloaded_writes = 0;
  std::uint64_t forced_wakeups = 0;
  Seconds busy_disk_seconds = 0.0;  ///< total service time delivered
};

class RequestRouter {
 public:
  RequestRouter(Cluster& cluster, const RouterConfig& config);

  /// Routes one request at time `now` (= request.arrival unless the
  /// caller delayed it). `waker` may be null: then requests with no
  /// active replica fail over to offload (writes) or wait forever is
  /// not modeled — reads are counted as unavailable.
  std::optional<RequestOutcome> route(const IoRequest& request, SimTime now,
                                      const NodeWaker& waker);

  const RouterStats& stats() const { return stats_; }
  const sim::Histogram& latency_histogram() const { return latency_; }
  std::uint64_t unavailable_reads() const { return unavailable_reads_; }

  /// Offload reconciliation work emitted so far (drained by the
  /// engine into background tasks).
  std::vector<BackgroundTask> drain_offload_tasks();

 private:
  struct DiskClock {
    SimTime busy_until = 0;
  };

  /// Least-loaded spinning disk among `group`'s replicas; nullopt if
  /// none is available.
  std::optional<std::pair<NodeId, DiskId>> pick_disk(GroupId group) const;

  /// Least-loaded spinning disk across the whole fleet (offload
  /// targets are not restricted to the group's replicas).
  std::optional<std::pair<NodeId, DiskId>> pick_any_disk() const;

  /// Shared least-busy scan step: folds node `n`'s spinning disks into
  /// the running (best, best_busy) pair.
  void consider_node(NodeId n,
                     std::optional<std::pair<NodeId, DiskId>>& best,
                     SimTime& best_busy) const;

  Cluster& cluster_;
  RouterConfig config_;
  RouterStats stats_;
  sim::Histogram latency_;
  std::vector<std::vector<DiskClock>> disk_clocks_;  // [node][disk]
  std::vector<BackgroundTask> pending_offload_tasks_;
  std::uint64_t unavailable_reads_ = 0;
  TaskId next_offload_task_id_ = 1'000'000'000ULL;
};

}  // namespace gm::storage
