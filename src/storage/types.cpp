#include "storage/types.hpp"

namespace gm::storage {

const char* task_type_name(TaskType type) {
  switch (type) {
    case TaskType::kScrub: return "scrub";
    case TaskType::kRepair: return "repair";
    case TaskType::kRebalance: return "rebalance";
    case TaskType::kBackup: return "backup";
    case TaskType::kCompaction: return "compaction";
  }
  return "?";
}

}  // namespace gm::storage
