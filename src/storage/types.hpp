#pragma once
// Identifier types and request/task records shared across the storage
// and scheduling layers.

#include <cstdint>
#include <string>

#include "util/time_types.hpp"
#include "util/units.hpp"

namespace gm::storage {

using NodeId = std::uint32_t;
using DiskId = std::uint32_t;   ///< disk index within its node
using RackId = std::uint32_t;
using ObjectId = std::uint64_t;
using GroupId = std::uint32_t;  ///< placement group
using RequestId = std::uint64_t;
using TaskId = std::uint64_t;

inline constexpr NodeId kInvalidNode = UINT32_MAX;

/// Foreground I/O request (latency-sensitive; never deferred).
struct IoRequest {
  RequestId id = 0;
  SimTime arrival = 0;
  ObjectId object = 0;
  std::uint64_t size_bytes = 0;
  bool is_write = false;
};

/// Deferrable background maintenance work. A task occupies one task
/// slot on one active node while running; it is interruptible at slot
/// boundaries and must accumulate `work_s` seconds of execution before
/// its deadline.
enum class TaskType : std::uint8_t {
  kScrub = 0,
  kRepair,
  kRebalance,
  kBackup,
  kCompaction,
};

const char* task_type_name(TaskType type);

struct BackgroundTask {
  TaskId id = 0;
  TaskType type = TaskType::kScrub;
  SimTime release = 0;    ///< earliest start
  SimTime deadline = 0;   ///< absolute completion deadline
  Seconds work_s = 0.0;   ///< required execution time (one node)
  /// Extra CPU+disk utilization the task adds to its node while
  /// running, in node-utilization units (0..1].
  double utilization = 0.25;
  /// Placement group whose data the task touches (locality: the task
  /// must run on a node holding a replica of this group).
  GroupId group = 0;

  Seconds slack(SimTime now, Seconds remaining_work) const {
    return static_cast<Seconds>(deadline - now) - remaining_work;
  }
};

}  // namespace gm::storage
