#pragma once
// Assertion and error-reporting machinery.
//
// GM_ASSERT   — internal invariant; aborts in all build types. Use for
//               conditions that indicate a bug in this library.
// GM_CHECK    — recoverable precondition on user input; throws
//               gm::InvalidArgument with a formatted message.
// GM_UNREACHABLE — marks code paths that must never execute.

#include <sstream>
#include <stdexcept>
#include <string>

namespace gm {

/// Thrown when a caller violates a documented precondition
/// (bad configuration value, malformed trace file, ...).
class InvalidArgument : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// Thrown when a runtime operation cannot proceed (missing file,
/// malformed input encountered mid-stream, ...).
class RuntimeError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

namespace detail {
[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line, const std::string& msg) {
  std::ostringstream os;
  os << "GM_ASSERT failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw std::logic_error(os.str());
}
}  // namespace detail

}  // namespace gm

#define GM_ASSERT(expr)                                              \
  do {                                                               \
    if (!(expr))                                                     \
      ::gm::detail::assert_fail(#expr, __FILE__, __LINE__, "");      \
  } while (0)

#define GM_ASSERT_MSG(expr, msg)                                     \
  do {                                                               \
    if (!(expr)) {                                                   \
      std::ostringstream gm_assert_os_;                              \
      gm_assert_os_ << msg;                                          \
      ::gm::detail::assert_fail(#expr, __FILE__, __LINE__,           \
                                gm_assert_os_.str());                \
    }                                                                \
  } while (0)

#define GM_CHECK(expr, msg)                                          \
  do {                                                               \
    if (!(expr)) {                                                   \
      std::ostringstream gm_check_os_;                               \
      gm_check_os_ << "precondition violated: " << msg << " ("       \
                   << #expr << ")";                                  \
      throw ::gm::InvalidArgument(gm_check_os_.str());               \
    }                                                                \
  } while (0)

#define GM_UNREACHABLE(msg)                                          \
  ::gm::detail::assert_fail("unreachable", __FILE__, __LINE__, msg)
