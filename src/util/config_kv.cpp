#include "util/config_kv.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "util/assert.hpp"
#include "util/csv.hpp"

namespace gm {

namespace {

std::string trim(const std::string& s) {
  const auto begin = s.find_first_not_of(" \t\r");
  if (begin == std::string::npos) return "";
  const auto end = s.find_last_not_of(" \t\r");
  return s.substr(begin, end - begin + 1);
}

}  // namespace

KeyValueConfig KeyValueConfig::parse(const std::string& text) {
  KeyValueConfig config;
  std::istringstream in(text);
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    line = trim(line);
    if (line.empty()) continue;
    const auto eq = line.find('=');
    GM_CHECK(eq != std::string::npos,
             "config line " << line_no << " has no '=': '" << line << "'");
    const std::string key = trim(line.substr(0, eq));
    const std::string value = trim(line.substr(eq + 1));
    GM_CHECK(!key.empty(), "config line " << line_no << " has empty key");
    GM_CHECK(config.values_.find(key) == config.values_.end(),
             "duplicate config key '" << key << "' at line " << line_no);
    config.values_[key] = value;
  }
  return config;
}

KeyValueConfig KeyValueConfig::load_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw RuntimeError("cannot open config file: " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return parse(ss.str());
}

bool KeyValueConfig::has(const std::string& key) const {
  return values_.find(key) != values_.end();
}

std::optional<std::string> KeyValueConfig::get_string(
    const std::string& key) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return std::nullopt;
  consumed_[key] = true;
  return it->second;
}

std::optional<double> KeyValueConfig::get_double(
    const std::string& key) const {
  const auto raw = get_string(key);
  if (!raw) return std::nullopt;
  try {
    return csv_to_double(*raw);
  } catch (const InvalidArgument&) {
    throw InvalidArgument("config key '" + key +
                          "' is not a number: '" + *raw + "'");
  }
}

std::optional<std::int64_t> KeyValueConfig::get_int(
    const std::string& key) const {
  const auto raw = get_string(key);
  if (!raw) return std::nullopt;
  try {
    return csv_to_int(*raw);
  } catch (const InvalidArgument&) {
    throw InvalidArgument("config key '" + key +
                          "' is not an integer: '" + *raw + "'");
  }
}

std::optional<bool> KeyValueConfig::get_bool(
    const std::string& key) const {
  const auto raw = get_string(key);
  if (!raw) return std::nullopt;
  std::string v = *raw;
  std::transform(v.begin(), v.end(), v.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  throw InvalidArgument("config key '" + key +
                        "' is not a boolean: '" + *raw + "'");
}

std::string KeyValueConfig::get_string_or(
    const std::string& key, const std::string& fallback) const {
  return get_string(key).value_or(fallback);
}

double KeyValueConfig::get_double_or(const std::string& key,
                                     double fallback) const {
  return get_double(key).value_or(fallback);
}

std::int64_t KeyValueConfig::get_int_or(const std::string& key,
                                        std::int64_t fallback) const {
  return get_int(key).value_or(fallback);
}

bool KeyValueConfig::get_bool_or(const std::string& key,
                                 bool fallback) const {
  return get_bool(key).value_or(fallback);
}

void KeyValueConfig::set(const std::string& key,
                         const std::string& value) {
  GM_CHECK(!key.empty(), "cannot set empty config key");
  values_[key] = value;
  consumed_.erase(key);
}

std::vector<std::string> KeyValueConfig::unconsumed_keys() const {
  std::vector<std::string> out;
  for (const auto& [key, value] : values_)
    if (!consumed_.count(key)) out.push_back(key);
  return out;
}

}  // namespace gm
