#pragma once
// Minimal key=value configuration format for experiment files:
//
//   # comment
//   cluster.racks = 4
//   policy.kind   = greenmatch
//
// Keys are dotted lowercase identifiers; values are strings parsed on
// demand. Lookup is tracked so a caller can reject files containing
// keys nothing consumed (typo protection).

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace gm {

class KeyValueConfig {
 public:
  KeyValueConfig() = default;

  /// Parses config text; throws InvalidArgument on malformed lines or
  /// duplicate keys.
  static KeyValueConfig parse(const std::string& text);
  /// Reads and parses a file; throws RuntimeError if unreadable.
  static KeyValueConfig load_file(const std::string& path);

  bool has(const std::string& key) const;

  /// Typed getters; throw InvalidArgument when present but malformed.
  /// All mark the key as consumed.
  std::optional<std::string> get_string(const std::string& key) const;
  std::optional<double> get_double(const std::string& key) const;
  std::optional<std::int64_t> get_int(const std::string& key) const;
  std::optional<bool> get_bool(const std::string& key) const;

  /// Convenience with default.
  std::string get_string_or(const std::string& key,
                            const std::string& fallback) const;
  double get_double_or(const std::string& key, double fallback) const;
  std::int64_t get_int_or(const std::string& key,
                          std::int64_t fallback) const;
  bool get_bool_or(const std::string& key, bool fallback) const;

  /// Set/override programmatically (CLI flags layer on top of files).
  void set(const std::string& key, const std::string& value);

  /// Keys present in the file that no getter consumed.
  std::vector<std::string> unconsumed_keys() const;
  std::size_t size() const { return values_.size(); }

 private:
  std::map<std::string, std::string> values_;
  mutable std::map<std::string, bool> consumed_;
};

}  // namespace gm
