#include "util/csv.hpp"

#include <charconv>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>

#include "util/assert.hpp"

namespace gm {
namespace {

bool needs_quoting(const std::string& v) {
  return v.find_first_of(",\"\n\r") != std::string::npos;
}

std::string quote(const std::string& v) {
  std::string out;
  out.reserve(v.size() + 2);
  out.push_back('"');
  for (char c : v) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

}  // namespace

CsvWriter& CsvWriter::field(const std::string& v) {
  if (!at_row_start_) out_ << ',';
  out_ << (needs_quoting(v) ? quote(v) : v);
  at_row_start_ = false;
  return *this;
}

CsvWriter& CsvWriter::field(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  if (!at_row_start_) out_ << ',';
  out_ << buf;
  at_row_start_ = false;
  return *this;
}

CsvWriter& CsvWriter::field(std::int64_t v) {
  if (!at_row_start_) out_ << ',';
  out_ << v;
  at_row_start_ = false;
  return *this;
}

CsvWriter& CsvWriter::field(std::uint64_t v) {
  if (!at_row_start_) out_ << ',';
  out_ << v;
  at_row_start_ = false;
  return *this;
}

void CsvWriter::end_row() {
  out_ << '\n';
  at_row_start_ = true;
}

void CsvWriter::row(const std::vector<std::string>& fields) {
  for (const auto& f : fields) field(f);
  end_row();
}

std::vector<std::vector<std::string>> parse_csv(const std::string& text) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> row;
  std::string cur;
  bool in_quotes = false;
  bool row_has_content = false;

  const auto flush_field = [&] {
    row.push_back(cur);
    cur.clear();
  };
  const auto flush_row = [&] {
    flush_field();
    rows.push_back(std::move(row));
    row.clear();
    row_has_content = false;
  };

  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          cur.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cur.push_back(c);
      }
      continue;
    }
    switch (c) {
      case '"':
        in_quotes = true;
        row_has_content = true;
        break;
      case ',':
        flush_field();
        row_has_content = true;
        break;
      case '\r':
        break;  // tolerate CRLF
      case '\n':
        if (row_has_content || !cur.empty() || !row.empty()) flush_row();
        break;
      default:
        cur.push_back(c);
        row_has_content = true;
    }
  }
  GM_CHECK(!in_quotes, "CSV text ends inside a quoted field");
  if (row_has_content || !cur.empty() || !row.empty()) flush_row();
  return rows;
}

std::vector<std::vector<std::string>> read_csv_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw RuntimeError("cannot open CSV file: " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return parse_csv(ss.str());
}

double csv_to_double(const std::string& field) {
  try {
    std::size_t pos = 0;
    const double v = std::stod(field, &pos);
    GM_CHECK(pos == field.size(), "trailing garbage in numeric CSV field '"
                                      << field << "'");
    return v;
  } catch (const std::invalid_argument&) {
    throw InvalidArgument("non-numeric CSV field: '" + field + "'");
  }
}

std::int64_t csv_to_int(const std::string& field) {
  std::int64_t v = 0;
  const char* begin = field.data();
  const char* end = begin + field.size();
  const auto [ptr, ec] = std::from_chars(begin, end, v);
  GM_CHECK(ec == std::errc() && ptr == end,
           "non-integer CSV field: '" << field << "'");
  return v;
}

}  // namespace gm
