#pragma once
// Minimal CSV reading/writing for trace files and bench output.
// Handles quoting of fields containing commas/quotes/newlines; numeric
// columns are written with full round-trip precision.

#include <iosfwd>
#include <string>
#include <vector>

namespace gm {

/// Streaming CSV writer. Rows are buffered per line and flushed to the
/// underlying stream; the stream must outlive the writer.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& out) : out_(out) {}

  CsvWriter& field(const std::string& v);
  CsvWriter& field(const char* v) { return field(std::string(v)); }
  CsvWriter& field(double v);
  CsvWriter& field(std::int64_t v);
  CsvWriter& field(std::uint64_t v);
  CsvWriter& field(int v) { return field(static_cast<std::int64_t>(v)); }

  /// Terminates the current row.
  void end_row();

  /// Convenience: write a full row of strings.
  void row(const std::vector<std::string>& fields);

 private:
  std::ostream& out_;
  bool at_row_start_ = true;
};

/// In-memory parse of CSV text into rows of string fields.
std::vector<std::vector<std::string>> parse_csv(const std::string& text);

/// Reads and parses a CSV file. Throws gm::RuntimeError if unreadable.
std::vector<std::vector<std::string>> read_csv_file(const std::string& path);

/// Strict numeric conversions for parsed fields (throw on garbage).
double csv_to_double(const std::string& field);
std::int64_t csv_to_int(const std::string& field);

}  // namespace gm
