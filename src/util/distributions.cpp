#include "util/distributions.hpp"

#include <cmath>
#include <map>
#include <mutex>
#include <utility>

#include "util/assert.hpp"

namespace gm {

double sample_exponential(Rng& rng, double lambda) {
  GM_CHECK(lambda > 0.0, "exponential rate must be positive: " << lambda);
  // 1 - uniform() is in (0, 1], so the log is finite.
  return -std::log(1.0 - rng.uniform()) / lambda;
}

double sample_normal(Rng& rng, double mean, double stddev) {
  GM_CHECK(stddev >= 0.0, "stddev must be non-negative: " << stddev);
  double u, v, s;
  do {
    u = rng.uniform(-1.0, 1.0);
    v = rng.uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  return mean + stddev * u * factor;
}

double sample_lognormal(Rng& rng, double mu, double sigma) {
  return std::exp(sample_normal(rng, mu, sigma));
}

double sample_weibull(Rng& rng, double shape_k, double scale_lambda) {
  GM_CHECK(shape_k > 0.0 && scale_lambda > 0.0,
           "weibull parameters must be positive: k=" << shape_k
                                                     << " λ=" << scale_lambda);
  const double u = 1.0 - rng.uniform();  // in (0, 1]
  return scale_lambda * std::pow(-std::log(u), 1.0 / shape_k);
}

std::int64_t sample_poisson(Rng& rng, double mean) {
  GM_CHECK(mean >= 0.0, "poisson mean must be non-negative: " << mean);
  if (mean == 0.0) return 0;
  if (mean < 30.0) {
    // Inversion by sequential search.
    const double l = std::exp(-mean);
    double p = 1.0;
    std::int64_t k = 0;
    do {
      ++k;
      p *= rng.uniform();
    } while (p > l);
    return k - 1;
  }
  // Normal approximation with continuity correction is accurate enough
  // for the workload-generation use cases (mean >= 30) and keeps the
  // sampler branch-free; clamp at zero.
  const double x = sample_normal(rng, mean, std::sqrt(mean));
  return x < 0.5 ? 0 : static_cast<std::int64_t>(std::llround(x));
}

namespace {

std::shared_ptr<const detail::ZipfTable> build_zipf_table(std::size_t n,
                                                          double s) {
  auto table = std::make_shared<detail::ZipfTable>();
  auto& cdf = table->cdf;
  cdf.resize(n);
  double sum = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    sum += 1.0 / std::pow(static_cast<double>(k + 1), s);
    cdf[k] = sum;
  }
  for (auto& c : cdf) c /= sum;
  cdf.back() = 1.0;  // guard against accumulated rounding

  // bucket[i] = first rank whose CDF value exceeds i/B (clamped to
  // n-1). Monotone, so one forward scan fills it.
  constexpr std::size_t kB = detail::kZipfBuckets;
  table->bucket.resize(kB + 1);
  std::size_t k = 0;
  for (std::size_t i = 0; i <= kB; ++i) {
    const double threshold =
        static_cast<double>(i) / static_cast<double>(kB);
    while (k < n && cdf[k] <= threshold) ++k;
    table->bucket[i] =
        static_cast<std::uint32_t>(std::min(k, n - 1));
  }
  return table;
}

/// Process-wide (n, s) → table memo. Building the CDF is by far the
/// dominant cost of workload generation for large catalogs; sweeps
/// and bench loops construct the same sampler over and over, so the
/// first build is shared. The tables are immutable once published.
std::shared_ptr<const detail::ZipfTable> shared_zipf_table(std::size_t n,
                                                           double s) {
  static std::mutex mutex;
  static std::map<std::pair<std::size_t, double>,
                  std::shared_ptr<const detail::ZipfTable>>
      cache;
  std::lock_guard lock(mutex);
  auto& slot = cache[{n, s}];
  if (!slot) slot = build_zipf_table(n, s);
  return slot;
}

}  // namespace

ZipfSampler::ZipfSampler(std::size_t n, double exponent_s) : s_(exponent_s) {
  GM_CHECK(n > 0, "zipf requires at least one rank");
  GM_CHECK(exponent_s >= 0.0, "zipf exponent must be non-negative");
  table_ = shared_zipf_table(n, exponent_s);
}

std::size_t ZipfSampler::operator()(Rng& rng) const {
  const double u = rng.uniform();
  const std::vector<double>& cdf = table_->cdf;
  // Narrow the window with the bucket index, then find the first
  // index whose CDF value exceeds u — identical to a full-range
  // binary search, because cdf[bucket[i+1]] > (i+1)/B > u and every
  // rank before bucket[i] has cdf <= i/B <= u.
  constexpr std::size_t kB = detail::kZipfBuckets;
  const auto i = std::min(
      static_cast<std::size_t>(u * static_cast<double>(kB)), kB - 1);
  std::size_t lo = table_->bucket[i];
  std::size_t hi = table_->bucket[i + 1];
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (cdf[mid] <= u)
      lo = mid + 1;
    else
      hi = mid;
  }
  return lo;
}

double ZipfSampler::pmf(std::size_t k) const {
  const auto& cdf = table_->cdf;
  GM_CHECK(k < cdf.size(), "zipf pmf rank out of range: " << k);
  return k == 0 ? cdf[0] : cdf[k] - cdf[k - 1];
}

std::vector<double> sample_nhpp(Rng& rng, double t0, double t1,
                                double rate_max,
                                const std::function<double(double)>& rate) {
  GM_CHECK(t1 >= t0, "NHPP interval must be ordered");
  GM_CHECK(rate_max > 0.0, "NHPP rate bound must be positive");
  std::vector<double> arrivals;
  double t = t0;
  while (true) {
    t += sample_exponential(rng, rate_max);
    if (t >= t1) break;
    const double r = rate(t);
    GM_ASSERT_MSG(r <= rate_max * (1.0 + 1e-9),
                  "NHPP rate exceeds declared bound at t=" << t);
    if (rng.uniform() * rate_max < r) arrivals.push_back(t);
  }
  return arrivals;
}

}  // namespace gm
