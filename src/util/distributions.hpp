#pragma once
// Sampling helpers for the distributions the workload and energy models
// need: exponential, normal, lognormal, Weibull, Poisson, Zipf, and a
// non-homogeneous Poisson process sampler (thinning).

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "util/rng.hpp"

namespace gm {

/// Exponential with rate `lambda` (mean 1/lambda).
double sample_exponential(Rng& rng, double lambda);

/// Standard normal via polar Box–Muller (no cached second value, so
/// sampling stays stateless with respect to the caller).
double sample_normal(Rng& rng, double mean = 0.0, double stddev = 1.0);

/// Lognormal parameterized by the *underlying* normal's mu/sigma.
double sample_lognormal(Rng& rng, double mu, double sigma);

/// Weibull with shape k and scale lambda.
double sample_weibull(Rng& rng, double shape_k, double scale_lambda);

/// Poisson count with the given mean (inversion for small means,
/// PTRS-style transformed rejection for large).
std::int64_t sample_poisson(Rng& rng, double mean);

namespace detail {
/// Precomputed Zipf tables: the CDF plus a first-level bucket index.
/// `bucket[i]` is the first rank whose CDF value exceeds i/B, so a
/// draw u only binary-searches the narrow window
/// [bucket[floor(u·B)], bucket[floor(u·B)+1]] instead of the whole
/// table — the same result, but ~5 cache-local probes instead of ~21
/// scattered across a multi-megabyte CDF.
struct ZipfTable {
  std::vector<double> cdf;
  std::vector<std::uint32_t> bucket;  ///< size kZipfBuckets + 1
};
inline constexpr std::size_t kZipfBuckets = 1u << 16;
}  // namespace detail

/// Zipf(s) sampler over ranks {0, ..., n-1}: P(k) ∝ 1/(k+1)^s.
/// Precomputes the CDF once; sampling is O(log n).
///
/// The tables are a pure function of (n, s) and cost n `pow` calls to
/// build (~35 ms for the canonical 2M-object catalog), so samplers
/// share them through a process-wide memo: constructing the same
/// (n, s) twice — every sweep point and bench iteration does —
/// reuses the first build instead of repeating it. The cache is
/// mutex-guarded (sweeps generate workloads on pool workers) and the
/// shared values are bit-identical to a private build by definition.
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double exponent_s);

  std::size_t operator()(Rng& rng) const;
  std::size_t size() const { return table_->cdf.size(); }
  double exponent() const { return s_; }
  /// Probability mass of rank k.
  double pmf(std::size_t k) const;

 private:
  std::shared_ptr<const detail::ZipfTable> table_;
  double s_;
};

/// Draws arrival times of a non-homogeneous Poisson process on
/// [t0, t1) with instantaneous rate `rate(t)` (events per second),
/// bounded above by `rate_max`, using Lewis–Shedler thinning.
std::vector<double> sample_nhpp(Rng& rng, double t0, double t1,
                                double rate_max,
                                const std::function<double(double)>& rate);

}  // namespace gm
