#pragma once
// Sampling helpers for the distributions the workload and energy models
// need: exponential, normal, lognormal, Weibull, Poisson, Zipf, and a
// non-homogeneous Poisson process sampler (thinning).

#include <cstdint>
#include <functional>
#include <vector>

#include "util/rng.hpp"

namespace gm {

/// Exponential with rate `lambda` (mean 1/lambda).
double sample_exponential(Rng& rng, double lambda);

/// Standard normal via polar Box–Muller (no cached second value, so
/// sampling stays stateless with respect to the caller).
double sample_normal(Rng& rng, double mean = 0.0, double stddev = 1.0);

/// Lognormal parameterized by the *underlying* normal's mu/sigma.
double sample_lognormal(Rng& rng, double mu, double sigma);

/// Weibull with shape k and scale lambda.
double sample_weibull(Rng& rng, double shape_k, double scale_lambda);

/// Poisson count with the given mean (inversion for small means,
/// PTRS-style transformed rejection for large).
std::int64_t sample_poisson(Rng& rng, double mean);

/// Zipf(s) sampler over ranks {0, ..., n-1}: P(k) ∝ 1/(k+1)^s.
/// Precomputes the CDF once; sampling is O(log n).
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double exponent_s);

  std::size_t operator()(Rng& rng) const;
  std::size_t size() const { return cdf_.size(); }
  double exponent() const { return s_; }
  /// Probability mass of rank k.
  double pmf(std::size_t k) const;

 private:
  std::vector<double> cdf_;
  double s_;
};

/// Draws arrival times of a non-homogeneous Poisson process on
/// [t0, t1) with instantaneous rate `rate(t)` (events per second),
/// bounded above by `rate_max`, using Lewis–Shedler thinning.
std::vector<double> sample_nhpp(Rng& rng, double t0, double t1,
                                double rate_max,
                                const std::function<double(double)>& rate);

}  // namespace gm
