#include "util/log.hpp"

#include <iostream>

namespace gm {

const char* log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::set_sink(std::ostream* sink) {
  const std::lock_guard<std::mutex> lock(mutex_);
  sink_ = sink;
}

void Logger::write(LogLevel level, const std::string& message) {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::ostream& out = sink_ ? *sink_ : std::cerr;
  out << '[' << log_level_name(level) << "] " << message << '\n';
}

}  // namespace gm
