#pragma once
// Lightweight leveled logger. Simulation code logs through this rather
// than writing to std::cerr directly so tests can silence or capture
// output and bench binaries stay clean.

#include <atomic>
#include <mutex>
#include <sstream>
#include <string>

namespace gm {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

const char* log_level_name(LogLevel level);

/// Global logger configuration (process-wide). Thread-safe: the level
/// is atomic (the hot `enabled` check stays lock-free) and sink writes
/// are serialized under a mutex so concurrent runs never interleave
/// mid-line.
class Logger {
 public:
  static Logger& instance();

  void set_level(LogLevel level) {
    level_.store(level, std::memory_order_relaxed);
  }
  LogLevel level() const {
    return level_.load(std::memory_order_relaxed);
  }
  bool enabled(LogLevel level) const { return level >= this->level(); }

  /// Redirect output (nullptr restores stderr).
  void set_sink(std::ostream* sink);

  void write(LogLevel level, const std::string& message);

 private:
  Logger() = default;
  std::atomic<LogLevel> level_{LogLevel::kWarn};
  std::mutex mutex_;  ///< guards sink_ and output interleaving
  std::ostream* sink_ = nullptr;
};

/// RAII: sets log level for a scope (used by tests).
class ScopedLogLevel {
 public:
  explicit ScopedLogLevel(LogLevel level)
      : prev_(Logger::instance().level()) {
    Logger::instance().set_level(level);
  }
  ~ScopedLogLevel() { Logger::instance().set_level(prev_); }
  ScopedLogLevel(const ScopedLogLevel&) = delete;
  ScopedLogLevel& operator=(const ScopedLogLevel&) = delete;

 private:
  LogLevel prev_;
};

}  // namespace gm

#define GM_LOG(level, expr)                                         \
  do {                                                              \
    if (::gm::Logger::instance().enabled(level)) {                  \
      std::ostringstream gm_log_os_;                                \
      gm_log_os_ << expr;                                           \
      ::gm::Logger::instance().write(level, gm_log_os_.str());      \
    }                                                               \
  } while (0)

#define GM_LOG_DEBUG(expr) GM_LOG(::gm::LogLevel::kDebug, expr)
#define GM_LOG_INFO(expr) GM_LOG(::gm::LogLevel::kInfo, expr)
#define GM_LOG_WARN(expr) GM_LOG(::gm::LogLevel::kWarn, expr)
#define GM_LOG_ERROR(expr) GM_LOG(::gm::LogLevel::kError, expr)
