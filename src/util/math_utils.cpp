#include "util/math_utils.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/assert.hpp"

namespace gm {

bool approx_equal(double a, double b, double rel_tol) {
  const double scale = std::max({1.0, std::fabs(a), std::fabs(b)});
  return std::fabs(a - b) <= rel_tol * scale;
}

double percentile(std::vector<double> values, double p) {
  GM_CHECK(!values.empty(), "percentile of empty sample");
  GM_CHECK(p >= 0.0 && p <= 100.0, "percentile p out of range: " << p);
  std::sort(values.begin(), values.end());
  if (values.size() == 1) return values[0];
  const double idx = p / 100.0 * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  return lerp(values[lo], values[hi], idx - static_cast<double>(lo));
}

double mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  return std::accumulate(values.begin(), values.end(), 0.0) /
         static_cast<double>(values.size());
}

PiecewiseLinear::PiecewiseLinear(std::vector<double> xs,
                                 std::vector<double> ys)
    : xs_(std::move(xs)), ys_(std::move(ys)) {
  GM_CHECK(xs_.size() == ys_.size(), "piecewise sizes differ");
  GM_CHECK(!xs_.empty(), "piecewise needs at least one point");
  for (std::size_t i = 1; i < xs_.size(); ++i)
    GM_CHECK(xs_[i] > xs_[i - 1], "piecewise xs must be strictly increasing");
}

double PiecewiseLinear::operator()(double x) const {
  GM_ASSERT(!xs_.empty());
  if (x <= xs_.front()) return ys_.front();
  if (x >= xs_.back()) return ys_.back();
  const auto it = std::upper_bound(xs_.begin(), xs_.end(), x);
  const auto i = static_cast<std::size_t>(it - xs_.begin());
  const double t = (x - xs_[i - 1]) / (xs_[i] - xs_[i - 1]);
  return lerp(ys_[i - 1], ys_[i], t);
}

double PiecewiseLinear::max_value() const {
  GM_ASSERT(!ys_.empty());
  return *std::max_element(ys_.begin(), ys_.end());
}

}  // namespace gm
