#pragma once
// Small numeric helpers shared across modules.

#include <cstddef>
#include <vector>

namespace gm {

/// Linear interpolation between a and b at parameter t in [0, 1].
constexpr double lerp(double a, double b, double t) {
  return a + (b - a) * t;
}

/// Clamp v into [lo, hi].
constexpr double clamp(double v, double lo, double hi) {
  return v < lo ? lo : (v > hi ? hi : v);
}

/// True if |a - b| <= tol * max(1, |a|, |b|).
bool approx_equal(double a, double b, double rel_tol = 1e-9);

/// Exact percentile (linear interpolation between order statistics) of
/// an unsorted sample; p in [0, 100]. Copies and sorts; for hot paths
/// use sim::Histogram quantiles instead.
double percentile(std::vector<double> values, double p);

/// Arithmetic mean; 0 for empty input.
double mean(const std::vector<double>& values);

/// Piecewise-linear function over sorted breakpoints, with constant
/// extrapolation outside the domain. Used by turbine power curves and
/// diurnal rate profiles.
class PiecewiseLinear {
 public:
  PiecewiseLinear() = default;
  /// xs must be strictly increasing and the same length as ys.
  PiecewiseLinear(std::vector<double> xs, std::vector<double> ys);

  double operator()(double x) const;
  bool empty() const { return xs_.empty(); }
  std::size_t size() const { return xs_.size(); }

  /// Maximum of the stored y values (rate bound for NHPP thinning).
  double max_value() const;

 private:
  std::vector<double> xs_;
  std::vector<double> ys_;
};

}  // namespace gm
