#include "util/rng.hpp"

#include "util/assert.hpp"

namespace gm {

std::uint64_t Rng::uniform_u64(std::uint64_t n) {
  GM_ASSERT_MSG(n > 0, "uniform_u64 requires n > 0");
  // Lemire's nearly-divisionless bounded sampling.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  auto l = static_cast<std::uint64_t>(m);
  if (l < n) {
    const std::uint64_t t = (0 - n) % n;
    while (l < t) {
      x = next();
      m = static_cast<__uint128_t>(x) * n;
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  GM_ASSERT_MSG(lo <= hi, "uniform_int requires lo <= hi");
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(uniform_u64(span));
}

}  // namespace gm
