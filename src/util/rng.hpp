#pragma once
// Deterministic random number generation.
//
// Every stochastic component in the library draws from an explicitly
// seeded Rng so that simulations are exactly reproducible and parallel
// sweeps can give each run an independent, stable stream. The core
// generator is xoshiro256** (Blackman & Vigna), seeded via SplitMix64.

#include <array>
#include <cstdint>
#include <limits>

namespace gm {

/// SplitMix64 step — used for seeding and for cheap stateless hashing.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Stateless 64-bit mix of two values; used by rendezvous hashing.
constexpr std::uint64_t mix_hash(std::uint64_t a, std::uint64_t b) {
  std::uint64_t s = a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2));
  return splitmix64(s);
}

/// xoshiro256** pseudo-random generator. Satisfies the essentials of
/// UniformRandomBitGenerator so it can feed <random> distributions,
/// though the library's own distribution helpers are preferred.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& w : s_) w = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() { return next(); }

  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). Requires n > 0. Uses Lemire's method.
  std::uint64_t uniform_u64(std::uint64_t n);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  bool bernoulli(double p) { return uniform() < p; }

  /// Spawn an independent child stream; stable given (parent seed, key).
  Rng fork(std::uint64_t key) const {
    std::uint64_t s = s_[0] ^ mix_hash(s_[3], key);
    return Rng(splitmix64(s));
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::array<std::uint64_t, 4> s_{};
};

}  // namespace gm
