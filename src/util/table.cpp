#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "util/assert.hpp"

namespace gm {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  GM_CHECK(!headers_.empty(), "table needs at least one column");
}

void TextTable::add_row(std::vector<std::string> cells) {
  GM_CHECK(cells.size() == headers_.size(),
           "row has " << cells.size() << " cells, table has "
                      << headers_.size() << " columns");
  rows_.push_back(std::move(cells));
}

std::string TextTable::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string TextTable::integer(std::int64_t v) {
  return std::to_string(v);
}

std::string TextTable::percent(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f%%", precision, fraction * 100.0);
  return buf;
}

void TextTable::print(std::ostream& out) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  const auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << "  " << row[c]
          << std::string(widths[c] - row[c].size(), ' ');
    }
    out << '\n';
  };

  print_row(headers_);
  std::size_t total = 0;
  for (auto w : widths) total += w + 2;
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

void TextTable::print_markdown(std::ostream& out) const {
  const auto emit = [&](const std::vector<std::string>& row) {
    out << '|';
    for (const auto& cell : row) out << ' ' << cell << " |";
    out << '\n';
  };
  emit(headers_);
  out << '|';
  for (std::size_t c = 0; c < headers_.size(); ++c) out << "---|";
  out << '\n';
  for (const auto& row : rows_) emit(row);
}

}  // namespace gm
