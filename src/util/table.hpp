#pragma once
// Aligned ASCII table rendering for bench/example output. Every bench
// binary prints its figure/table data through this so the rows a paper
// exhibit needs are directly readable (and grep-able) from stdout.

#include <iosfwd>
#include <string>
#include <vector>

namespace gm {

class TextTable {
 public:
  /// Column headers define the column count; all rows must match it.
  explicit TextTable(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  /// Convenience cell formatters.
  static std::string num(double v, int precision = 2);
  static std::string integer(std::int64_t v);
  static std::string percent(double fraction, int precision = 1);

  /// Renders with a header rule, space-padded columns.
  void print(std::ostream& out) const;

  /// Renders as a markdown table (for EXPERIMENTS.md snippets).
  void print_markdown(std::ostream& out) const;

  std::size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace gm
