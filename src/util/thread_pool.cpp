#include "util/thread_pool.hpp"

#include <atomic>
#include <exception>

#include "util/assert.hpp"

namespace gm {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  GM_ASSERT(task != nullptr);
  {
    std::lock_guard lock(mutex_);
    GM_ASSERT_MSG(!stop_, "submit after shutdown");
    queue_.push(std::move(task));
    ++in_flight_;
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  cv_idle_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_task_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ and drained
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
    {
      std::lock_guard lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  const std::size_t threads = pool.thread_count();
  const std::size_t chunks = std::min(n, threads * 4);
  const std::size_t chunk = (n + chunks - 1) / chunks;

  std::exception_ptr first_error;
  std::mutex error_mutex;

  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t begin = c * chunk;
    const std::size_t end = std::min(n, begin + chunk);
    if (begin >= end) break;
    pool.submit([&, begin, end] {
      try {
        for (std::size_t i = begin; i < end; ++i) body(i);
      } catch (...) {
        std::lock_guard lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    });
  }
  pool.wait_idle();
  if (first_error) std::rethrow_exception(first_error);
}

void parallel_for(std::size_t n,
                  const std::function<void(std::size_t)>& body) {
  ThreadPool pool;
  parallel_for(pool, n, body);
}

}  // namespace gm
