#include "util/thread_pool.hpp"

#include <algorithm>
#include <utility>

#include "util/assert.hpp"

namespace gm {

namespace {
// Set for the lifetime of each worker thread so on_worker_thread()
// (and through it parallel_for's nested-call fallback and the Batch
// construction check) can identify calls made from inside the pool.
thread_local const ThreadPool* tl_worker_pool = nullptr;
}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  GM_ASSERT(task != nullptr);
  {
    std::lock_guard lock(mutex_);
    GM_ASSERT_MSG(!stop_, "submit after shutdown");
    queue_.push(std::move(task));
  }
  cv_task_.notify_one();
}

bool ThreadPool::on_worker_thread() const {
  return tl_worker_pool == this;
}

void ThreadPool::worker_loop() {
  tl_worker_pool = this;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_task_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ and drained
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();  // Batch-wrapped tasks never throw
  }
}

ThreadPool::Batch::Batch(ThreadPool& pool) : pool_(pool) {
  GM_ASSERT_MSG(!pool.on_worker_thread(),
                "Batch created on a worker of its own pool; waiting "
                "there can deadlock a saturated pool — use nested "
                "parallel_for (which runs inline) instead");
}

ThreadPool::Batch::~Batch() {
  std::unique_lock lock(mutex_);
  cv_done_.wait(lock, [this] { return outstanding_ == 0; });
}

void ThreadPool::Batch::submit(std::function<void()> task) {
  GM_ASSERT(task != nullptr);
  {
    std::lock_guard lock(mutex_);
    ++outstanding_;
  }
  pool_.submit([this, task = std::move(task)] {
    std::exception_ptr error;
    try {
      task();
    } catch (...) {
      error = std::current_exception();
    }
    // Notify under the lock: the waiter can only return from wait()
    // after this thread releases mutex_, so the Batch cannot be
    // destroyed while we still touch its members.
    std::lock_guard lock(mutex_);
    if (error && !first_error_) first_error_ = std::move(error);
    if (--outstanding_ == 0) cv_done_.notify_all();
  });
}

void ThreadPool::Batch::wait() {
  std::unique_lock lock(mutex_);
  cv_done_.wait(lock, [this] { return outstanding_ == 0; });
  if (first_error_) {
    auto error = std::exchange(first_error_, nullptr);
    lock.unlock();
    std::rethrow_exception(error);
  }
}

void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  if (pool.on_worker_thread()) {
    // Nested call from inside the pool: run inline rather than wait
    // on workers that may all be blocked in outer parallel_fors.
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }
  const std::size_t threads = pool.thread_count();
  const std::size_t chunks = std::min(n, threads * 4);
  const std::size_t chunk = (n + chunks - 1) / chunks;

  ThreadPool::Batch batch(pool);
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t begin = c * chunk;
    const std::size_t end = std::min(n, begin + chunk);
    if (begin >= end) break;
    batch.submit([&, begin, end] {
      for (std::size_t i = begin; i < end; ++i) body(i);
    });
  }
  batch.wait();
}

void parallel_for(std::size_t n,
                  const std::function<void(std::size_t)>& body) {
  ThreadPool pool;
  parallel_for(pool, n, body);
}

}  // namespace gm
