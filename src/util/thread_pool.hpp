#pragma once
// Fixed-size thread pool with a parallel_for helper. Parameter sweeps
// in the bench harness run one independent simulation per index, so a
// simple static block partition is the right decomposition (runs have
// similar cost); work stealing would be overkill.

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace gm {

class ThreadPool {
 public:
  /// `threads == 0` means hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const { return workers_.size(); }

  /// Enqueue a task; returns immediately.
  void submit(std::function<void()> task);

  /// Block until all submitted tasks have completed.
  void wait_idle();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
};

/// Runs body(i) for i in [0, n) across the pool's threads in chunks.
/// Exceptions from the body propagate (first one wins) after all
/// chunks finish.
void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& body);

/// Single-shot convenience: creates a transient pool sized to the
/// machine and runs the loop. Used by bench sweeps.
void parallel_for(std::size_t n,
                  const std::function<void(std::size_t)>& body);

}  // namespace gm
