#pragma once
// Fixed-size thread pool with a parallel_for helper. Parameter sweeps
// in the experiment harness (greenmatch_sweep --jobs, the bench
// binaries) run one independent simulation per index, so a simple
// static block partition is the right decomposition (runs have similar
// cost); work stealing would be overkill.
//
// Completion is tracked per *batch*, not pool-wide: each Batch owns
// its own outstanding-task counter, so two overlapping batches on a
// shared pool wait only for their own work. (A pool-wide wait-for-idle
// made each batch wait for the other's stragglers, and hung forever
// if another client's tasks were long-running or blocked.)

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace gm {

class ThreadPool {
 public:
  /// `threads == 0` means hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const { return workers_.size(); }

  /// Enqueue a task; returns immediately. The task must not throw —
  /// submit through a Batch (or parallel_for) for exception capture.
  void submit(std::function<void()> task);

  /// True when the calling thread is one of this pool's workers.
  /// parallel_for uses this to degrade nested calls to inline serial
  /// execution instead of deadlocking on a saturated pool.
  bool on_worker_thread() const;

  /// Per-batch completion token. Tracks only the tasks submitted
  /// through it, captures the first exception any of them throws, and
  /// rethrows it from wait(). Independent of every other batch on the
  /// same pool. Must not be constructed on one of the pool's own
  /// worker threads (asserts): waiting there can leave no thread free
  /// to run the batch.
  class Batch {
   public:
    explicit Batch(ThreadPool& pool);
    /// Drains any tasks still outstanding (their exceptions are
    /// dropped — call wait() to observe them).
    ~Batch();
    Batch(const Batch&) = delete;
    Batch& operator=(const Batch&) = delete;

    void submit(std::function<void()> task);

    /// Blocks until every task submitted through this batch has
    /// finished, then rethrows the first captured exception, if any.
    void wait();

   private:
    ThreadPool& pool_;
    std::mutex mutex_;
    std::condition_variable cv_done_;
    std::size_t outstanding_ = 0;
    std::exception_ptr first_error_;
  };

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_task_;
  bool stop_ = false;
};

/// Runs body(i) for i in [0, n) across the pool's threads in chunks.
/// Exceptions from the body propagate (first one wins) after all
/// chunks finish. Called from one of the pool's own workers (nested
/// parallelism), it runs the whole range inline on the calling thread
/// instead — slower, never deadlocks.
void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& body);

/// Single-shot convenience: creates a transient pool sized to the
/// machine and runs the loop.
void parallel_for(std::size_t n,
                  const std::function<void(std::size_t)>& body);

}  // namespace gm
