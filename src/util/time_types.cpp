#include "util/time_types.hpp"

#include <cstdio>

#include "util/assert.hpp"

namespace gm {

CalendarTime calendar_of(SimTime t, int start_day_of_year) {
  GM_CHECK(t >= 0, "calendar_of requires non-negative time, got " << t);
  GM_CHECK(start_day_of_year >= 1 && start_day_of_year <= 365,
           "start_day_of_year out of range: " << start_day_of_year);
  CalendarTime c{};
  c.day = static_cast<int>(t / 86400);
  c.day_of_year = (start_day_of_year - 1 + c.day) % 365 + 1;
  c.day_of_week = c.day % 7;
  c.hour = static_cast<double>(t % 86400) / 3600.0;
  return c;
}

std::string format_sim_time(SimTime t) {
  const std::int64_t day = t / 86400;
  const std::int64_t rem = t % 86400;
  const int h = static_cast<int>(rem / 3600);
  const int m = static_cast<int>((rem % 3600) / 60);
  const int s = static_cast<int>(rem % 60);
  char buf[48];
  std::snprintf(buf, sizeof buf, "d%lld %02d:%02d:%02d",
                static_cast<long long>(day), h, m, s);
  return buf;
}

std::string format_hour_of_week(SimTime t) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "h%.1f",
                static_cast<double>(t) / 3600.0);
  return buf;
}

}  // namespace gm
