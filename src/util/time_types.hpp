#pragma once
// Simulation time: integer seconds since the start of the simulated
// epoch. Slot arithmetic and calendar decomposition (hour-of-day,
// day-of-week) used by diurnal workload and solar models.

#include <cstdint>
#include <string>

namespace gm {

/// Simulation timestamp in whole seconds since simulation start.
using SimTime = std::int64_t;

/// Index of a scheduling slot (slot = fixed number of seconds).
using SlotIndex = std::int64_t;

inline constexpr SimTime kSimTimeMax = INT64_MAX / 4;

/// Fixed-width scheduling slot grid over simulation time.
class SlotGrid {
 public:
  explicit SlotGrid(SimTime slot_length_s = 3600) noexcept
      : slot_length_s_(slot_length_s) {}

  SimTime slot_length() const noexcept { return slot_length_s_; }
  SlotIndex slot_of(SimTime t) const noexcept { return t / slot_length_s_; }
  SimTime start_of(SlotIndex s) const noexcept { return s * slot_length_s_; }
  SimTime end_of(SlotIndex s) const noexcept {
    return (s + 1) * slot_length_s_;
  }
  /// First slot boundary at or after `t`.
  SimTime next_boundary(SimTime t) const noexcept {
    const SlotIndex s = slot_of(t);
    const SimTime b = start_of(s);
    return b == t ? t : start_of(s + 1);
  }

 private:
  SimTime slot_length_s_;
};

/// Calendar decomposition of a simulation timestamp. The simulated
/// epoch starts at midnight on `start_day_of_year` (1-based) of a
/// non-leap year; day zero is a Monday by convention.
struct CalendarTime {
  int day;          ///< whole days since simulation start
  int day_of_year;  ///< 1..365, wraps
  int day_of_week;  ///< 0 = Monday .. 6 = Sunday
  double hour;      ///< fractional hour of day, [0, 24)
};

CalendarTime calendar_of(SimTime t, int start_day_of_year = 172);

/// "d3 14:05:09"-style rendering for logs and tables.
std::string format_sim_time(SimTime t);

/// "h14.5"-style compact hour label.
std::string format_hour_of_week(SimTime t);

}  // namespace gm
