#pragma once
// Physical unit conventions used across the library.
//
// All internal energy quantities are joules, all power quantities are
// watts and all durations are seconds. Human-facing configuration and
// report values use kWh/W/hours; these helpers convert at the border.
// Using plain doubles with named converters (instead of a wrapper type)
// keeps hot simulation loops trivially optimizable; the naming
// convention `*_j`, `*_w`, `*_s` marks the unit of every variable.

namespace gm {

using Joules = double;
using Watts = double;
using Seconds = double;

inline constexpr double kSecondsPerHour = 3600.0;
inline constexpr double kSecondsPerDay = 86400.0;
inline constexpr double kHoursPerDay = 24.0;

/// Joules in one watt-hour.
inline constexpr double kJoulesPerWh = 3600.0;
/// Joules in one kilowatt-hour.
inline constexpr double kJoulesPerKwh = 3.6e6;

constexpr Joules wh_to_j(double wh) { return wh * kJoulesPerWh; }
constexpr Joules kwh_to_j(double kwh) { return kwh * kJoulesPerKwh; }
constexpr double j_to_wh(Joules j) { return j / kJoulesPerWh; }
constexpr double j_to_kwh(Joules j) { return j / kJoulesPerKwh; }

constexpr Seconds hours_to_s(double h) { return h * kSecondsPerHour; }
constexpr Seconds days_to_s(double d) { return d * kSecondsPerDay; }
constexpr double s_to_hours(Seconds s) { return s / kSecondsPerHour; }
constexpr double s_to_days(Seconds s) { return s / kSecondsPerDay; }

/// Energy delivered by a constant power over a duration.
constexpr Joules energy_j(Watts p, Seconds dt) { return p * dt; }

/// Average power of an energy amount over a duration (dt > 0).
constexpr Watts power_w(Joules e, Seconds dt) { return e / dt; }

}  // namespace gm
