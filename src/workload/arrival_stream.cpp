#include "workload/arrival_stream.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"
#include "util/distributions.hpp"
#include "workload/spec.hpp"

namespace gm::workload {

namespace {
// RNG lineage keys, disjoint from the workload generator's
// 0x41/0x42/0x43 forks so enabling arrivals never perturbs the
// closed-loop request/task streams.
constexpr std::uint64_t kThinningFork = 0x51;
constexpr std::uint64_t kDetailFork = 0x52;

// Arrival mix: deferrable background types only (repairs stay the
// exclusive province of the failure pipeline and its reserved id
// range).
constexpr storage::TaskType kArrivalTypes[] = {
    storage::TaskType::kScrub, storage::TaskType::kRebalance,
    storage::TaskType::kBackup, storage::TaskType::kCompaction};
}  // namespace

void ArrivalSpec::validate() const {
  if (!enabled) return;
  GM_CHECK(rate_per_h > 0.0, "arrivals.rate_per_h must be > 0");
  GM_CHECK(mean_work_s > 0.0, "arrivals.mean_work_s must be > 0");
  GM_CHECK(work_sigma >= 0.0, "arrivals.work_sigma must be >= 0");
  GM_CHECK(deadline_slack_s >= 0.0,
           "arrivals.deadline_slack_s must be >= 0");
  GM_CHECK(utilization > 0.0 && utilization <= 1.0,
           "arrivals.utilization must be in (0, 1]");
}

ArrivalStream::ArrivalStream(const ArrivalSpec& spec,
                             std::uint32_t group_count)
    : spec_(spec),
      group_count_(group_count),
      thinning_rng_(Rng(spec.seed).fork(kThinningFork)),
      detail_rng_(Rng(spec.seed).fork(kDetailFork)),
      diurnal_(ForegroundSpec{}.diurnal),
      weekend_factor_(ForegroundSpec{}.weekend_factor) {
  spec_.validate();
  GM_CHECK(group_count_ > 0, "ArrivalStream needs >= 1 placement group");
  base_rate_per_s_ = spec_.rate_per_h / 3600.0;
  rate_max_ = spec_.diurnal
                  ? base_rate_per_s_ * diurnal_.max_value() *
                        std::max(1.0, weekend_factor_)
                  : base_rate_per_s_;
}

double ArrivalStream::rate_at(double t) const {
  if (!spec_.diurnal) return base_rate_per_s_;
  const CalendarTime cal = calendar_of(static_cast<SimTime>(t));
  const bool weekend = cal.day_of_week >= 5;
  return base_rate_per_s_ * diurnal_(cal.hour) *
         (weekend ? weekend_factor_ : 1.0);
}

void ArrivalStream::pull(SimTime t0, SimTime t1,
                         std::vector<storage::BackgroundTask>& out) {
  GM_CHECK(t1 >= t0, "ArrivalStream::pull needs t1 >= t0");
  GM_CHECK(t0 >= window_end_,
           "ArrivalStream::pull windows must be consecutive");
  window_end_ = t1;
  const double end = static_cast<double>(t1);
  while (true) {
    if (!has_candidate_) {
      // Exactly the sample_nhpp jump; keeping the candidate across
      // windows is what makes slicing invariant (a candidate at or
      // past t1 is *not* thinned yet — the batch sampler only draws
      // the acceptance uniform for candidates inside the horizon).
      t_ += sample_exponential(thinning_rng_, rate_max_);
      has_candidate_ = true;
    }
    if (t_ >= end) return;
    has_candidate_ = false;
    const double r = rate_at(t_);
    GM_ASSERT_MSG(r <= rate_max_ * (1.0 + 1e-9),
                  "arrival rate exceeds thinning majorant");
    if (thinning_rng_.uniform() * rate_max_ < r) {
      out.push_back(make_task(t_));
    }
  }
}

storage::BackgroundTask ArrivalStream::make_task(double t) {
  storage::BackgroundTask task;
  task.id = next_id_++;
  task.type = kArrivalTypes[detail_rng_.uniform_u64(
      sizeof(kArrivalTypes) / sizeof(kArrivalTypes[0]))];
  task.release = static_cast<SimTime>(t);
  // Same mean-preserving lognormal convention as the batch generator.
  const double log_mu = std::log(spec_.mean_work_s) -
                        0.5 * spec_.work_sigma * spec_.work_sigma;
  task.work_s = std::max(
      60.0, sample_lognormal(detail_rng_, log_mu, spec_.work_sigma));
  task.deadline =
      task.release +
      static_cast<SimTime>(task.work_s + spec_.deadline_slack_s);
  task.utilization = spec_.utilization;
  task.group =
      static_cast<std::uint32_t>(detail_rng_.uniform_u64(group_count_));
  ++generated_;
  return task;
}

}  // namespace gm::workload
