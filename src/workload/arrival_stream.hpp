#pragma once
// Streaming open-system arrivals. ArrivalStream is a lazily-evaluated
// non-homogeneous Poisson process built on the same Lewis–Shedler
// thinning scheme as sample_nhpp, but incremental: the engine pulls
// the arrivals of one slot at a time and the stream carries the
// in-flight exponential jump across window boundaries. That makes a
// sequence of consecutive pull() windows emit *bit-identical* arrival
// times to a single batch thinning pass over the whole horizon — the
// property the open-system golden relies on (docs/admission.md).
//
// Configured through the `arrivals.*` config keys; disabled by
// default, in which case the engine stays a closed-loop batch
// simulator and behaves byte-identically to previous releases.

#include <cstdint>
#include <vector>

#include "storage/types.hpp"
#include "util/math_utils.hpp"
#include "util/rng.hpp"
#include "util/time_types.hpp"
#include "util/units.hpp"

namespace gm::workload {

/// Open-system arrival process parameters (`arrivals.*` keys).
struct ArrivalSpec {
  /// Master switch: false keeps the engine in closed-loop batch mode.
  bool enabled = false;
  /// Mean arrival rate in tasks per hour (peak-shaped when diurnal).
  double rate_per_h = 60.0;
  /// Seed of the stream's own RNG lineage (independent of the
  /// workload generator seed so closed-loop replays are unaffected).
  std::uint64_t seed = 7001;
  /// Lognormal service-time parameters, same convention as
  /// TaskClassSpec: mean_work_s is the distribution mean.
  Seconds mean_work_s = 2.0 * 3600.0;
  double work_sigma = 0.6;
  /// Deadline = release + work + slack.
  Seconds deadline_slack_s = 12.0 * 3600.0;
  /// Per-task CPU utilization while running.
  double utilization = 0.25;
  /// Modulate the rate with the canonical foreground diurnal shape
  /// (weekend dip included); false = homogeneous Poisson.
  bool diurnal = true;

  void validate() const;
};

/// Incremental NHPP task source. Construction fixes the whole stream;
/// pull() windows must be consecutive and non-overlapping starting at
/// t = 0 (the engine's slot loop satisfies this by construction).
class ArrivalStream {
 public:
  /// Arrival task ids start here — disjoint from workload task ids
  /// (small integers) and repair task ids (2'000'000'000+).
  static constexpr storage::TaskId kFirstTaskId = 3'000'000'000ULL;

  ArrivalStream(const ArrivalSpec& spec, std::uint32_t group_count);

  /// Append every arrival with release time in [t0, t1) to `out`.
  /// Deterministic in (spec, group_count) alone; invariant under how
  /// the horizon is sliced into windows.
  void pull(SimTime t0, SimTime t1,
            std::vector<storage::BackgroundTask>& out);

  /// Instantaneous arrival rate (tasks/second) at simulation time t.
  double rate_at(double t) const;
  /// Thinning majorant: rate_at(t) <= rate_max() for all t.
  double rate_max() const { return rate_max_; }
  /// Total arrivals emitted so far.
  std::uint64_t generated() const { return generated_; }

 private:
  storage::BackgroundTask make_task(double t);

  ArrivalSpec spec_;
  std::uint32_t group_count_;
  Rng thinning_rng_;
  Rng detail_rng_;
  PiecewiseLinear diurnal_;
  double weekend_factor_ = 1.0;
  double base_rate_per_s_ = 0.0;
  double rate_max_ = 0.0;
  double t_ = 0.0;              ///< current thinning position
  bool has_candidate_ = false;  ///< t_ holds an undecided candidate
  SimTime window_end_ = 0;      ///< end of the last pulled window
  storage::TaskId next_id_ = kFirstTaskId;
  std::uint64_t generated_ = 0;
};

}  // namespace gm::workload
