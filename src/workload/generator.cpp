#include "workload/generator.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"
#include "util/distributions.hpp"
#include "util/rng.hpp"
#include "util/time_types.hpp"

namespace gm::workload {

std::uint64_t Workload::total_bytes() const {
  std::uint64_t total = 0;
  for (const auto& r : requests) total += r.size_bytes;
  return total;
}

Seconds Workload::total_task_work_s() const {
  Seconds total = 0.0;
  for (const auto& t : tasks) total += t.work_s;
  return total;
}

namespace {

void generate_foreground(const WorkloadSpec& spec, Rng& rng,
                         Workload& out) {
  const auto& fg = spec.foreground;
  if (fg.base_rate_per_s <= 0.0) return;

  const double horizon_s = days_to_s(spec.duration_days);
  const auto rate = [&](double t) {
    const auto cal = calendar_of(static_cast<SimTime>(t));
    const bool weekend = cal.day_of_week >= 5;
    return fg.base_rate_per_s * fg.diurnal(cal.hour) *
           (weekend ? fg.weekend_factor : 1.0);
  };
  const double rate_max =
      fg.base_rate_per_s * fg.diurnal.max_value() *
      std::max(1.0, fg.weekend_factor);

  Rng arrivals_rng = rng.fork(0x41);
  const auto arrivals =
      sample_nhpp(arrivals_rng, 0.0, horizon_s, rate_max, rate);

  ZipfSampler zipf(
      static_cast<std::size_t>(std::min<std::uint64_t>(
          fg.object_count, 4'000'000ULL)),
      fg.zipf_exponent);
  Rng detail_rng = rng.fork(0x42);

  out.requests.reserve(arrivals.size());
  storage::RequestId id = 1;
  for (double t : arrivals) {
    storage::IoRequest req;
    req.id = id++;
    req.arrival = static_cast<SimTime>(t);
    // Popularity rank → object id through a stable permutation hash so
    // hot objects are spread over the id space.
    const std::size_t rank = zipf(detail_rng);
    req.object = mix_hash(spec.seed, rank) % fg.object_count;
    const double bytes =
        sample_lognormal(detail_rng, fg.size_log_mu, fg.size_log_sigma);
    req.size_bytes =
        static_cast<std::uint64_t>(std::max(512.0, std::min(bytes, 1e10)));
    req.is_write = !detail_rng.bernoulli(fg.read_fraction);
    out.requests.push_back(req);
  }
}

void generate_tasks(const WorkloadSpec& spec, std::uint32_t group_count,
                    Rng& rng, Workload& out) {
  Rng task_rng = rng.fork(0x43);
  storage::TaskId id = 1;
  for (const auto& cls : spec.task_classes) {
    for (int day = 0; day < spec.duration_days; ++day) {
      const std::int64_t count =
          sample_poisson(task_rng, cls.mean_per_day * spec.task_scale);
      for (std::int64_t i = 0; i < count; ++i) {
        storage::BackgroundTask task;
        task.id = id++;
        task.type = cls.type;
        const double release_h =
            cls.windowed
                ? task_rng.uniform(cls.window_start_h, cls.window_end_h)
                : task_rng.uniform(0.0, 24.0);
        task.release = static_cast<SimTime>(days_to_s(day) +
                                            hours_to_s(release_h));
        const double log_mu =
            std::log(cls.mean_work_s) - 0.5 * cls.work_sigma * cls.work_sigma;
        task.work_s = std::max(
            60.0, sample_lognormal(task_rng, log_mu, cls.work_sigma));
        task.deadline = task.release +
                        static_cast<SimTime>(task.work_s +
                                             cls.deadline_slack_s);
        task.utilization = cls.utilization;
        task.group = static_cast<storage::GroupId>(
            task_rng.uniform_u64(group_count));
        out.tasks.push_back(task);
      }
    }
  }
}

}  // namespace

Workload generate_workload(const WorkloadSpec& spec,
                           std::uint32_t group_count) {
  spec.validate();
  GM_CHECK(group_count > 0, "workload needs a non-empty group universe");

  Workload out;
  out.duration = static_cast<SimTime>(days_to_s(spec.duration_days));

  Rng rng(spec.seed);
  generate_foreground(spec, rng, out);
  generate_tasks(spec, group_count, rng, out);

  std::sort(out.requests.begin(), out.requests.end(),
            [](const auto& a, const auto& b) {
              if (a.arrival != b.arrival) return a.arrival < b.arrival;
              return a.id < b.id;
            });
  std::sort(out.tasks.begin(), out.tasks.end(),
            [](const auto& a, const auto& b) {
              if (a.release != b.release) return a.release < b.release;
              return a.id < b.id;
            });
  return out;
}

}  // namespace gm::workload
