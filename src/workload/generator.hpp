#pragma once
// Synthetic workload generation from a WorkloadSpec. Deterministic per
// seed. Foreground requests follow a non-homogeneous Poisson process
// shaped by the diurnal/weekend profile; background tasks arrive per
// class with Poisson daily counts, lognormal work and configurable
// release windows.

#include <vector>

#include "storage/types.hpp"
#include "workload/spec.hpp"

namespace gm::workload {

struct Workload {
  std::vector<storage::IoRequest> requests;   ///< sorted by arrival
  std::vector<storage::BackgroundTask> tasks; ///< sorted by release
  SimTime duration = 0;

  /// Total foreground bytes and background work (telemetry).
  std::uint64_t total_bytes() const;
  Seconds total_task_work_s() const;
};

/// Generates the full workload for `spec`. GroupIds are drawn uniformly
/// over [0, group_count) — the generator doesn't need the placement
/// map itself, only its group universe.
Workload generate_workload(const WorkloadSpec& spec,
                           std::uint32_t group_count);

}  // namespace gm::workload
