#include "workload/spec.hpp"

#include <bit>

#include "util/assert.hpp"
#include "util/rng.hpp"

namespace gm::workload {

namespace {

TaskClassSpec scrub_class() {
  TaskClassSpec t;
  t.type = storage::TaskType::kScrub;
  t.mean_per_day = 96.0;
  t.mean_work_s = 5 * 3600.0;
  t.work_sigma = 0.4;
  t.deadline_slack_s = 12 * 3600.0;
  t.utilization = 0.45;
  return t;
}

TaskClassSpec repair_class() {
  TaskClassSpec t;
  t.type = storage::TaskType::kRepair;
  t.mean_per_day = 24.0;
  t.mean_work_s = 2 * 3600.0;
  t.work_sigma = 0.6;
  t.deadline_slack_s = 6 * 3600.0;  // repairs are more urgent
  t.utilization = 0.35;
  return t;
}

TaskClassSpec backup_class() {
  TaskClassSpec t;
  t.type = storage::TaskType::kBackup;
  t.mean_per_day = 40.0;
  t.mean_work_s = 4 * 3600.0;
  t.work_sigma = 0.5;
  t.deadline_slack_s = 18 * 3600.0;
  t.utilization = 0.30;
  t.windowed = true;  // backups are released in the evening
  t.window_start_h = 18.0;
  t.window_end_h = 23.0;
  return t;
}

TaskClassSpec rebalance_class() {
  TaskClassSpec t;
  t.type = storage::TaskType::kRebalance;
  t.mean_per_day = 12.0;
  t.mean_work_s = 8 * 3600.0;
  t.work_sigma = 0.4;
  t.deadline_slack_s = 24 * 3600.0;
  t.utilization = 0.40;
  return t;
}

TaskClassSpec compaction_class() {
  TaskClassSpec t;
  t.type = storage::TaskType::kCompaction;
  t.mean_per_day = 32.0;
  t.mean_work_s = 3 * 3600.0;
  t.work_sigma = 0.5;
  t.deadline_slack_s = 12 * 3600.0;
  t.utilization = 0.20;
  return t;
}

}  // namespace

WorkloadSpec WorkloadSpec::canonical(int duration_days,
                                     std::uint64_t seed) {
  WorkloadSpec spec;
  spec.duration_days = duration_days;
  spec.seed = seed;
  spec.task_classes = {scrub_class(), repair_class(), backup_class(),
                       rebalance_class(), compaction_class()};
  spec.validate();
  return spec;
}

WorkloadSpec WorkloadSpec::read_heavy(int duration_days,
                                      std::uint64_t seed) {
  WorkloadSpec spec = canonical(duration_days, seed);
  spec.foreground.base_rate_per_s = 10.0;
  spec.foreground.read_fraction = 0.92;
  // Halve the background volume: foreground dominates.
  for (auto& t : spec.task_classes) t.mean_per_day *= 0.5;
  spec.validate();
  return spec;
}

WorkloadSpec WorkloadSpec::backup_heavy(int duration_days,
                                        std::uint64_t seed) {
  WorkloadSpec spec = canonical(duration_days, seed);
  spec.foreground.base_rate_per_s = 2.0;
  for (auto& t : spec.task_classes) {
    if (t.type == storage::TaskType::kBackup ||
        t.type == storage::TaskType::kRebalance)
      t.mean_per_day *= 2.5;
  }
  spec.validate();
  return spec;
}

void WorkloadSpec::validate() const {
  GM_CHECK(duration_days > 0, "workload duration must be positive");
  GM_CHECK(task_scale > 0.0, "task scale must be positive");
  GM_CHECK(foreground.base_rate_per_s >= 0.0, "negative arrival rate");
  GM_CHECK(foreground.read_fraction >= 0.0 &&
               foreground.read_fraction <= 1.0,
           "read fraction must be a probability");
  GM_CHECK(foreground.object_count > 0, "need at least one object");
  GM_CHECK(foreground.weekend_factor >= 0.0, "negative weekend factor");
  for (const auto& t : task_classes) {
    GM_CHECK(t.mean_per_day >= 0.0, "negative task rate");
    GM_CHECK(t.mean_work_s > 0.0, "task work must be positive");
    GM_CHECK(t.deadline_slack_s >= 0.0, "negative deadline slack");
    GM_CHECK(t.utilization > 0.0 && t.utilization <= 1.0,
             "task utilization must be in (0, 1]");
    if (t.windowed)
      GM_CHECK(t.window_start_h >= 0.0 && t.window_end_h <= 24.0 &&
                   t.window_start_h < t.window_end_h,
               "invalid task release window");
  }
}

std::uint64_t WorkloadSpec::fingerprint() const {
  std::uint64_t h = seed;
  const auto mix_u = [&](std::uint64_t v) { h = mix_hash(h, v); };
  const auto mix_d = [&](double v) {
    mix_u(std::bit_cast<std::uint64_t>(v));
  };
  mix_u(static_cast<std::uint64_t>(duration_days));
  mix_d(task_scale);
  mix_d(foreground.base_rate_per_s);
  mix_d(foreground.read_fraction);
  mix_d(foreground.weekend_factor);
  mix_d(foreground.size_log_mu);
  mix_d(foreground.size_log_sigma);
  mix_u(foreground.object_count);
  mix_d(foreground.zipf_exponent);
  for (const auto& t : task_classes) {
    mix_u(static_cast<std::uint64_t>(t.type));
    mix_d(t.mean_per_day);
    mix_d(t.mean_work_s);
    mix_d(t.work_sigma);
    mix_d(t.deadline_slack_s);
    mix_d(t.utilization);
    mix_u(t.windowed ? 1 : 0);
    mix_d(t.window_start_h);
    mix_d(t.window_end_h);
  }
  return h;
}

}  // namespace gm::workload
