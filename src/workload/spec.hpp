#pragma once
// Workload specification: the knobs that describe a storage cluster's
// demand. The synthetic generator substitutes for the private traces
// the original evaluation used; the spec is designed so the shapes
// that matter to a renewable-aware scheduler — diurnal foreground
// intensity, a deferrable background share with deadline slack, and
// skewed object popularity — are all first-class parameters.

#include <cstdint>
#include <vector>

#include "storage/types.hpp"
#include "util/math_utils.hpp"
#include "util/units.hpp"

namespace gm::workload {

/// Per-task-type generation parameters.
struct TaskClassSpec {
  storage::TaskType type = storage::TaskType::kScrub;
  double mean_per_day = 40.0;      ///< Poisson mean of daily task count
  Seconds mean_work_s = 6 * 3600;  ///< lognormal-distributed work
  double work_sigma = 0.5;         ///< lognormal sigma (log-space)
  Seconds deadline_slack_s = 12 * 3600;  ///< deadline = release + work + slack
  double utilization = 0.25;       ///< node utilization while running
  /// Release-hour preference: tasks arrive uniformly unless this names
  /// a daily window [window_start_h, window_end_h).
  bool windowed = false;
  double window_start_h = 0.0;
  double window_end_h = 24.0;
};

struct ForegroundSpec {
  double base_rate_per_s = 4.0;   ///< mean request arrival rate
  double read_fraction = 0.7;
  /// Diurnal modulation of arrival rate by hour of day (multiplier).
  PiecewiseLinear diurnal{
      std::vector<double>{0, 4, 8, 12, 16, 20, 24},
      std::vector<double>{0.35, 0.25, 0.9, 1.4, 1.5, 1.0, 0.35}};
  double weekend_factor = 0.6;    ///< Saturday/Sunday multiplier
  /// Object size: lognormal over bytes.
  double size_log_mu = 13.5;      ///< exp(13.5) ≈ 730 KB median
  double size_log_sigma = 1.2;
  std::uint64_t object_count = 2'000'000;
  double zipf_exponent = 0.9;
};

struct WorkloadSpec {
  int duration_days = 7;
  std::uint64_t seed = 1234;
  /// Multiplier applied to every task class's mean_per_day at
  /// generation time. The deep-queue knob for scale experiments:
  /// raising it floods the planner's pending pool without touching
  /// the per-class mix ratios.
  double task_scale = 1.0;
  ForegroundSpec foreground;
  std::vector<TaskClassSpec> task_classes;

  /// Canonical evaluation mix: scrub + repair + backup + rebalance +
  /// compaction sized so background work ≈ 60% of disk-seconds.
  static WorkloadSpec canonical(int duration_days = 7,
                                std::uint64_t seed = 1234);
  /// Mix variants used by the policy-comparison table.
  static WorkloadSpec read_heavy(int duration_days = 7,
                                 std::uint64_t seed = 1234);
  static WorkloadSpec backup_heavy(int duration_days = 7,
                                   std::uint64_t seed = 1234);

  void validate() const;

  /// Stable 64-bit digest of every generation-relevant field; two
  /// specs with equal fingerprints generate identical workloads (used
  /// as a cache key by sweep harnesses).
  std::uint64_t fingerprint() const;
};

}  // namespace gm::workload
