#include "workload/trace.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "util/assert.hpp"
#include "util/csv.hpp"

namespace gm::workload {

namespace {

storage::TaskType task_type_from_int(std::int64_t v) {
  GM_CHECK(v >= 0 && v <= static_cast<int>(storage::TaskType::kCompaction),
           "bad task type in trace: " << v);
  return static_cast<storage::TaskType>(v);
}

}  // namespace

// Columns: kind,id,t0,a,b,c,d,e
//   R: id, arrival, object, size_bytes, is_write, 0
//   T: id, release, type, deadline, work_s, utilization, group
void write_trace(std::ostream& out, const Workload& workload) {
  CsvWriter csv(out);
  csv.field("kind").field("id").field("t0").field("a").field("b")
      .field("c").field("d").field("e");
  csv.end_row();
  for (const auto& r : workload.requests) {
    csv.field("R")
        .field(static_cast<std::uint64_t>(r.id))
        .field(r.arrival)
        .field(static_cast<std::uint64_t>(r.object))
        .field(static_cast<std::uint64_t>(r.size_bytes))
        .field(static_cast<std::int64_t>(r.is_write ? 1 : 0))
        .field(static_cast<std::int64_t>(0))
        .field(static_cast<std::int64_t>(0));
    csv.end_row();
  }
  for (const auto& t : workload.tasks) {
    csv.field("T")
        .field(static_cast<std::uint64_t>(t.id))
        .field(t.release)
        .field(static_cast<std::int64_t>(t.type))
        .field(t.deadline)
        .field(t.work_s)
        .field(t.utilization)
        .field(static_cast<std::int64_t>(t.group));
    csv.end_row();
  }
}

void write_trace_file(const std::string& path, const Workload& workload) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw RuntimeError("cannot write trace file: " + path);
  write_trace(out, workload);
}

Workload read_trace(const std::string& text) {
  const auto rows = parse_csv(text);
  GM_CHECK(!rows.empty(), "empty workload trace");
  Workload out;
  std::size_t row_index = 0;
  if (!rows[0].empty() && rows[0][0] == "kind") row_index = 1;  // header

  for (; row_index < rows.size(); ++row_index) {
    const auto& row = rows[row_index];
    GM_CHECK(row.size() == 8, "trace row has " << row.size()
                                               << " fields, expected 8");
    const std::string& kind = row[0];
    if (kind == "R") {
      storage::IoRequest r;
      r.id = static_cast<storage::RequestId>(csv_to_int(row[1]));
      r.arrival = csv_to_int(row[2]);
      r.object = static_cast<storage::ObjectId>(csv_to_int(row[3]));
      r.size_bytes = static_cast<std::uint64_t>(csv_to_int(row[4]));
      r.is_write = csv_to_int(row[5]) != 0;
      out.requests.push_back(r);
    } else if (kind == "T") {
      storage::BackgroundTask t;
      t.id = static_cast<storage::TaskId>(csv_to_int(row[1]));
      t.release = csv_to_int(row[2]);
      t.type = task_type_from_int(csv_to_int(row[3]));
      t.deadline = csv_to_int(row[4]);
      t.work_s = csv_to_double(row[5]);
      t.utilization = csv_to_double(row[6]);
      t.group = static_cast<storage::GroupId>(csv_to_int(row[7]));
      out.tasks.push_back(t);
    } else {
      GM_CHECK(false, "unknown trace row kind: '" << kind << "'");
    }
  }

  SimTime max_t = 0;
  for (const auto& r : out.requests) max_t = std::max(max_t, r.arrival);
  for (const auto& t : out.tasks) max_t = std::max(max_t, t.deadline);
  out.duration = max_t;
  return out;
}

Workload read_trace_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw RuntimeError("cannot open trace file: " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return read_trace(ss.str());
}

}  // namespace gm::workload
