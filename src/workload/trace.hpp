#pragma once
// Workload trace serialization: CSV round-trip so generated workloads
// can be archived, inspected or replayed exactly (and so external
// traces can be imported in the same format).
//
// Request rows:  R,id,arrival,object,size_bytes,is_write
// Task rows:     T,id,type,release,deadline,work_s,utilization,group

#include <iosfwd>
#include <string>

#include "workload/generator.hpp"

namespace gm::workload {

void write_trace(std::ostream& out, const Workload& workload);
void write_trace_file(const std::string& path, const Workload& workload);

Workload read_trace(const std::string& text);
Workload read_trace_file(const std::string& path);

}  // namespace gm::workload
