// Open-system admission fast path: the streaming arrival source (one
// continuous thinning process, invariant under window slicing), the
// cached green-headroom ledger (admit/defer/reject, O(horizon) scans,
// battery reserve credit, forecast patches), and the engine wiring
// (arrival accounting identity, zero solver work on the arrival path,
// manifest replayability). docs/admission.md states the contracts.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <sstream>
#include <vector>

#include "audit/audit.hpp"
#include "core/admission.hpp"
#include "core/config_io.hpp"
#include "core/engine.hpp"
#include "util/config_kv.hpp"
#include "util/distributions.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"
#include "workload/arrival_stream.hpp"

namespace gm::core {
namespace {

using storage::BackgroundTask;
using workload::ArrivalSpec;
using workload::ArrivalStream;

ArrivalSpec test_spec() {
  ArrivalSpec spec;
  spec.enabled = true;
  spec.rate_per_h = 120.0;
  spec.seed = 99;
  return spec;
}

std::vector<BackgroundTask> pull_all(ArrivalStream& stream,
                                     const std::vector<SimTime>& cuts) {
  std::vector<BackgroundTask> out;
  SimTime t = 0;
  for (SimTime cut : cuts) {
    stream.pull(t, cut, out);
    t = cut;
  }
  return out;
}

void expect_same_tasks(const std::vector<BackgroundTask>& a,
                       const std::vector<BackgroundTask>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id);
    EXPECT_EQ(a[i].release, b[i].release);
    EXPECT_EQ(a[i].deadline, b[i].deadline);
    EXPECT_EQ(a[i].group, b[i].group);
    EXPECT_EQ(a[i].type, b[i].type);
    EXPECT_DOUBLE_EQ(a[i].work_s, b[i].work_s);
  }
}

TEST(ArrivalStream, SlicingInvariance) {
  const SimTime horizon = 2 * 86400;
  ArrivalStream whole(test_spec(), 64);
  std::vector<BackgroundTask> batch;
  whole.pull(0, horizon, batch);
  ASSERT_GT(batch.size(), 1000u);

  // Hourly slots — the engine's actual access pattern.
  ArrivalStream hourly(test_spec(), 64);
  std::vector<SimTime> cuts;
  for (SimTime t = 3600; t <= horizon; t += 3600) cuts.push_back(t);
  expect_same_tasks(batch, pull_all(hourly, cuts));

  // Ragged windows, including empty ones.
  ArrivalStream ragged(test_spec(), 64);
  expect_same_tasks(
      batch, pull_all(ragged, {1, 1, 7200, 7201, 50000, 86400, horizon}));
}

TEST(ArrivalStream, MatchesBatchNhppThinning) {
  // The stream *is* sample_nhpp run incrementally: identical jumps and
  // acceptance draws against the same forked RNG reproduce the exact
  // arrival instants of one batch call over the full horizon.
  const ArrivalSpec spec = test_spec();
  const SimTime horizon = 86400;
  ArrivalStream stream(spec, 64);
  std::vector<BackgroundTask> tasks;
  stream.pull(0, horizon, tasks);

  Rng batch_rng = Rng(spec.seed).fork(0x51);
  const auto times = sample_nhpp(
      batch_rng, 0.0, static_cast<double>(horizon), stream.rate_max(),
      [&](double t) { return stream.rate_at(t); });
  ASSERT_EQ(tasks.size(), times.size());
  for (std::size_t i = 0; i < tasks.size(); ++i)
    EXPECT_EQ(tasks[i].release, static_cast<SimTime>(times[i]));
}

TEST(ArrivalStream, SeedDeterminismAndDivergence) {
  ArrivalStream a(test_spec(), 64), b(test_spec(), 64);
  std::vector<BackgroundTask> ta, tb;
  a.pull(0, 86400, ta);
  b.pull(0, 86400, tb);
  expect_same_tasks(ta, tb);

  ArrivalSpec other = test_spec();
  other.seed = 100;
  ArrivalStream c(other, 64);
  std::vector<BackgroundTask> tc;
  c.pull(0, 86400, tc);
  bool differs = tc.size() != ta.size();
  for (std::size_t i = 0; !differs && i < ta.size(); ++i)
    differs = ta[i].release != tc[i].release;
  EXPECT_TRUE(differs);
}

TEST(ArrivalStream, HomogeneousRateMatchesMean) {
  ArrivalSpec spec = test_spec();
  spec.diurnal = false;
  spec.rate_per_h = 60.0;
  ArrivalStream stream(spec, 8);
  std::vector<BackgroundTask> tasks;
  stream.pull(0, 7 * 86400, tasks);
  const double expected = 60.0 * 24 * 7;
  EXPECT_NEAR(static_cast<double>(tasks.size()), expected,
              4.0 * std::sqrt(expected));
  for (const auto& t : tasks) {
    EXPECT_GE(t.id, ArrivalStream::kFirstTaskId);
    EXPECT_GE(t.work_s, 60.0);
    EXPECT_LT(t.group, 8u);
    EXPECT_GT(t.deadline, t.release);
  }
}

// --- controller unit tests -------------------------------------------

AdmissionController::Facts test_facts() {
  AdmissionController::Facts f;
  f.slot_length_s = 3600.0;
  f.node_peak_w = 300.0;
  f.node_idle_floor_w = 100.0;
  f.battery_usable_j = 0.0;
  return f;
}

BackgroundTask arrival(Seconds work_s, SimTime release,
                       Seconds slack_s) {
  BackgroundTask t;
  t.id = ArrivalStream::kFirstTaskId;
  t.release = release;
  t.work_s = work_s;
  t.deadline = release + static_cast<SimTime>(work_s + slack_s);
  t.utilization = 0.5;
  return t;
}

TEST(AdmissionController, AdmitDeferRejectVocabulary) {
  AdmissionConfig cfg;
  cfg.horizon_slots = 4;
  cfg.overflow = AdmissionOverflow::kReject;
  // 400 kJ of surplus in slots 0 and 1, nothing after; no baseline.
  AdmissionController ctrl(
      cfg, test_facts(),
      [](SlotIndex s) { return s < 2 ? 4.0e5 : 0.0; },
      [](SlotIndex) { return 0.0; });
  ctrl.begin_slot(0, 0.0);

  // 0.5 util * 200 W spread * 3600 s = 360 kJ: fits slot 0's surplus.
  const auto admit = ctrl.decide(arrival(3600.0, 0, 3600.0), 0);
  EXPECT_EQ(admit.action, AdmissionAction::kAdmit);
  EXPECT_FALSE(admit.overflow);
  EXPECT_EQ(admit.chosen_offset, 0);
  EXPECT_STREQ(admit.reason, "green-headroom");

  // 2 h of work needs 720 kJ; only 440 kJ remain and the deadline
  // (slot 3) is fully visible -> reject under the reject policy.
  const auto reject = ctrl.decide(arrival(2 * 3600.0, 0, 3600.0), 0);
  EXPECT_EQ(reject.action, AdmissionAction::kReject);
  EXPECT_STREQ(reject.reason, "no-headroom");

  // Same shortfall but a deadline past the ledger horizon -> defer
  // (wider future supply may still cover it).
  const auto defer =
      ctrl.decide(arrival(2 * 3600.0, 0, 40 * 3600.0), 0);
  EXPECT_EQ(defer.action, AdmissionAction::kDefer);
  EXPECT_STREQ(defer.reason, "beyond-horizon");

  EXPECT_EQ(ctrl.stats().decisions, 3u);
  EXPECT_EQ(ctrl.stats().admitted, 1u);
  EXPECT_EQ(ctrl.stats().rejected, 1u);
  EXPECT_EQ(ctrl.stats().deferred, 1u);
  EXPECT_EQ(ctrl.latency_us().count(), 3u);
}

TEST(AdmissionController, GridOverflowAdmits) {
  AdmissionConfig cfg;
  cfg.horizon_slots = 4;
  cfg.overflow = AdmissionOverflow::kGrid;
  AdmissionController ctrl(
      cfg, test_facts(), [](SlotIndex) { return 0.0; },
      [](SlotIndex) { return 0.0; });
  ctrl.begin_slot(0, 0.0);
  const auto d = ctrl.decide(arrival(3600.0, 0, 0.0), 0);
  EXPECT_EQ(d.action, AdmissionAction::kAdmit);
  EXPECT_TRUE(d.overflow);
  EXPECT_STREQ(d.reason, "grid-overflow");
  EXPECT_EQ(ctrl.stats().overflow_admits, 1u);
}

TEST(AdmissionController, HeadroomIsConsumedAndLedgerAdvances) {
  AdmissionConfig cfg;
  cfg.horizon_slots = 3;
  cfg.overflow = AdmissionOverflow::kReject;
  AdmissionController ctrl(
      cfg, test_facts(), [](SlotIndex s) { return s == 5 ? 8.0e5 : 4.0e5; },
      [](SlotIndex) { return 1.0e5; });
  ctrl.begin_slot(0, 0.0);
  EXPECT_DOUBLE_EQ(ctrl.headroom_j(0), 3.0e5);
  EXPECT_DOUBLE_EQ(ctrl.headroom_j(3), 0.0);  // outside the ledger

  // 360 kJ spans slot 0 (300 kJ) and part of slot 1.
  const auto d = ctrl.decide(arrival(3600.0, 0, 2 * 3600.0), 0);
  EXPECT_EQ(d.action, AdmissionAction::kAdmit);
  EXPECT_DOUBLE_EQ(ctrl.headroom_j(0), 0.0);
  EXPECT_NEAR(ctrl.headroom_j(1), 3.0e5 - 6.0e4, 1.0);

  // Advancing to slot 4 exposes slot 5's larger supply and drops the
  // consumed history.
  ctrl.begin_slot(4, 0.0);
  EXPECT_EQ(ctrl.base_slot(), 4);
  EXPECT_DOUBLE_EQ(ctrl.headroom_j(4), 3.0e5);
  EXPECT_DOUBLE_EQ(ctrl.headroom_j(5), 7.0e5);

  // A forecast revision patches one slot in O(1).
  ctrl.revise_supply(5, 1.0e5);
  EXPECT_DOUBLE_EQ(ctrl.headroom_j(5), 0.0);
}

TEST(AdmissionController, BatteryReserveCredit) {
  AdmissionConfig cfg;
  cfg.horizon_slots = 2;
  cfg.battery_reserve_soc = 0.5;
  cfg.overflow = AdmissionOverflow::kReject;
  auto facts = test_facts();
  facts.battery_usable_j = 1.0e6;
  AdmissionController ctrl(
      cfg, facts, [](SlotIndex) { return 0.0; },
      [](SlotIndex) { return 0.0; });
  // Stored 0.9 MJ, reserve 0.5 MJ -> 0.4 MJ of credit.
  ctrl.begin_slot(0, 9.0e5);
  EXPECT_DOUBLE_EQ(ctrl.battery_credit_j(), 4.0e5);

  // 360 kJ has no slot headroom but fits the credit.
  const auto d = ctrl.decide(arrival(3600.0, 0, 0.0), 0);
  EXPECT_EQ(d.action, AdmissionAction::kAdmit);
  EXPECT_NEAR(ctrl.battery_credit_j(), 4.0e4, 1.0);

  // The next identical task exceeds the remaining credit -> reject.
  EXPECT_EQ(ctrl.decide(arrival(3600.0, 0, 0.0), 0).action,
            AdmissionAction::kReject);

  // Below-reserve charge never funds admission.
  ctrl.begin_slot(1, 4.0e5);
  EXPECT_DOUBLE_EQ(ctrl.battery_credit_j(), 0.0);
}

TEST(AdmissionController, RebuildCommitmentsReservesForPendingWork) {
  AdmissionConfig cfg;
  cfg.horizon_slots = 2;
  cfg.overflow = AdmissionOverflow::kReject;
  AdmissionController ctrl(
      cfg, test_facts(), [](SlotIndex) { return 5.0e5; },
      [](SlotIndex) { return 0.0; });
  ctrl.begin_slot(0, 0.0);

  // A pending task with 3600 s remaining across both visible slots
  // reserves 180 kJ in each.
  PendingTask p;
  p.task = arrival(3600.0, 0, 3600.0);
  p.remaining_s = 3600.0;
  ctrl.rebuild_commitments({p}, 0);
  EXPECT_NEAR(ctrl.headroom_j(0), 5.0e5 - 1.8e5, 1.0);
  EXPECT_NEAR(ctrl.headroom_j(1), 5.0e5 - 1.8e5, 1.0);

  // Rebuild is idempotent — reconciling twice must not double-book.
  ctrl.rebuild_commitments({p}, 0);
  EXPECT_NEAR(ctrl.headroom_j(0), 5.0e5 - 1.8e5, 1.0);
}

// --- engine-level tests ----------------------------------------------

ExperimentConfig open_config(double rate_per_h = 60.0) {
  ExperimentConfig config;
  config.cluster.racks = 2;
  config.cluster.nodes_per_rack = 8;
  config.cluster.placement.group_count = 64;
  config.workload = workload::WorkloadSpec::canonical(2, 777);
  config.solar.horizon_days = 8;
  config.battery = energy::BatteryConfig::lithium_ion(kwh_to_j(20));
  config.battery.initial_soc_fraction = 0.5;
  config.arrivals.enabled = true;
  config.arrivals.rate_per_h = rate_per_h;
  config.arrivals.seed = 4242;
  return config;
}

TEST(OpenSystemEngine, ArrivalAccountingIdentityAndAudit) {
  // Scarce supply + reject overflow: the stream offers far more work
  // than the green headroom can fund, so rejections must be booked.
  ExperimentConfig config = open_config(200.0);
  config.panel_area_m2 = 20.0;
  config.admission.overflow = AdmissionOverflow::kReject;
  config.admission.battery_reserve_soc = 0.9;
  SimulationEngine engine(config);
  const auto artifacts = engine.run();
  const auto& q = artifacts.result.qos;

  EXPECT_GT(q.arrivals_generated, 1000u);
  EXPECT_EQ(q.arrivals_generated, engine.arrivals_generated());
  EXPECT_EQ(q.arrivals_generated,
            q.arrivals_admitted + q.arrivals_rejected);
  EXPECT_GT(q.arrivals_rejected, 0u);  // tight reserve forces rejects
  // Admitted arrivals are the only background tasks in open mode, so
  // task accounting covers exactly them.
  EXPECT_EQ(q.tasks_total, q.arrivals_admitted);
  EXPECT_EQ(q.tasks_total, q.tasks_completed + q.tasks_unfinished);

  const auto report = audit::audit_run(engine, artifacts);
  std::ostringstream table;
  report.print(table);
  EXPECT_TRUE(report.passed()) << table.str();
}

TEST(OpenSystemEngine, DeferredArrivalsAreReofferedAndSettled) {
  ExperimentConfig config = open_config();
  // No green supply or battery credit, and slack far past the ledger
  // horizon: every first offer lacks headroom with the deadline still
  // out of sight, so it parks, is re-offered each slot, and settles
  // (grid-overflow admit) once the deadline scrolls into view.
  config.panel_area_m2 = 0.0;
  config.battery = energy::BatteryConfig::lithium_ion(0.0);
  config.arrivals.deadline_slack_s = 30.0 * 3600.0;
  config.admission.horizon_slots = 12;
  SimulationEngine engine(config);
  const auto artifacts = engine.run();
  const auto& q = artifacts.result.qos;
  EXPECT_GT(q.admission_deferrals, 0u);
  EXPECT_GT(q.admission_decisions, q.arrivals_generated);
  EXPECT_EQ(q.arrivals_generated,
            q.arrivals_admitted + q.arrivals_rejected);
}

TEST(OpenSystemEngine, ZeroSolverInvocationsOnArrivalPath) {
  // With a non-planning policy there is no solver at all: thousands
  // of admission decisions happen with SolveStats at exactly zero.
  ExperimentConfig config = open_config(200.0);
  config.policy.kind = PolicyKind::kAsap;
  SimulationEngine engine(config);
  const auto artifacts = engine.run();
  EXPECT_GT(artifacts.result.qos.admission_decisions, 2000u);
  EXPECT_EQ(artifacts.result.scheduler.solver_solves, 0u);

  // With GreenMatch the solver runs once per slot replan — the count
  // must not scale with the arrival rate (40x the arrivals, same
  // number of solves), proving arrivals never trigger a solve.
  auto solves_at = [](double rate) {
    ExperimentConfig c = open_config(rate);
    c.policy.kind = PolicyKind::kGreenMatch;
    SimulationEngine e(c);
    return e.run().result.scheduler.solver_solves;
  };
  const auto low = solves_at(5.0);
  const auto high = solves_at(200.0);
  EXPECT_GT(low, 0u);
  EXPECT_EQ(low, high);
}

TEST(OpenSystemEngine, DecisionLatencyTelemetryIsRecorded) {
  ExperimentConfig config = open_config(200.0);
  SimulationEngine engine(config);
  const auto artifacts = engine.run();
  ASSERT_NE(engine.admission(), nullptr);
  const auto& s = artifacts.result.scheduler;
  EXPECT_EQ(engine.admission()->latency_us().count(),
            artifacts.result.qos.admission_decisions);
  EXPECT_GT(s.admission_decision_p99_us, 0.0);
  EXPECT_GE(s.admission_decision_p99_us, s.admission_decision_p50_us);
  // The fast-path contract: p99 well under 50 us per decision.
  EXPECT_LT(s.admission_decision_p99_us, 50.0);
}

TEST(OpenSystemEngine, RunsAreDeterministicAndSeedSensitive) {
  const auto run_once = [](std::uint64_t seed) {
    ExperimentConfig config = open_config();
    config.arrivals.seed = seed;
    return run_experiment(config).result;
  };
  const auto a = run_once(4242);
  const auto b = run_once(4242);
  EXPECT_EQ(a.qos.arrivals_generated, b.qos.arrivals_generated);
  EXPECT_EQ(a.qos.arrivals_admitted, b.qos.arrivals_admitted);
  EXPECT_EQ(a.qos.arrivals_rejected, b.qos.arrivals_rejected);
  EXPECT_DOUBLE_EQ(a.energy.brown_j, b.energy.brown_j);

  const auto c = run_once(1);
  EXPECT_NE(a.qos.arrivals_generated, c.qos.arrivals_generated);
}

TEST(OpenSystemEngine, ManifestEchoReplaysIdentically) {
  // The echoed key space carries the whole open-system setup: applying
  // the echo onto canonical defaults reproduces the run exactly, which
  // is what makes arrival streams manifest-replayable.
  ExperimentConfig config = ExperimentConfig::canonical();
  config.workload = workload::WorkloadSpec::canonical(2, 1234);
  config.arrivals.enabled = true;
  config.arrivals.rate_per_h = 90.0;
  config.arrivals.seed = 555;
  config.admission.overflow = AdmissionOverflow::kReject;

  KeyValueConfig kv;
  for (const auto& [key, value] : config_echo(config))
    kv.set(key, value);
  ExperimentConfig replay = ExperimentConfig::canonical();
  apply_config(replay, kv);

  const auto a = run_experiment(config).result;
  const auto b = run_experiment(replay).result;
  EXPECT_EQ(a.qos.arrivals_generated, b.qos.arrivals_generated);
  EXPECT_EQ(a.qos.arrivals_admitted, b.qos.arrivals_admitted);
  EXPECT_EQ(a.qos.tasks_completed, b.qos.tasks_completed);
  EXPECT_DOUBLE_EQ(a.energy.brown_j, b.energy.brown_j);
  EXPECT_DOUBLE_EQ(a.energy.demand_j, b.energy.demand_j);
}

TEST(OpenSystemEngine, ClosedLoopStaysUntouched) {
  ExperimentConfig config = open_config();
  config.arrivals.enabled = false;
  SimulationEngine engine(config);
  const auto artifacts = engine.run();
  EXPECT_EQ(engine.admission(), nullptr);
  const auto& q = artifacts.result.qos;
  EXPECT_EQ(q.arrivals_generated, 0u);
  EXPECT_EQ(q.admission_decisions, 0u);
  EXPECT_GT(q.tasks_total, 0u);  // the pregenerated pool is back
}

}  // namespace
}  // namespace gm::core
