// Tests for gm::audit: the end-of-run conservation auditor, the
// injected-leak acceptance scenario (a leak small enough to pass the
// ledger's relative tolerance must still be caught, both by the audit
// and by the golden-output rendering), and the config round-trip
// fixed-point check.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "audit/audit.hpp"
#include "core/config_io.hpp"
#include "core/engine.hpp"
#include "obs/trace.hpp"
#include "util/csv.hpp"

namespace gm {
namespace {

core::ExperimentConfig short_config() {
  auto config = core::ExperimentConfig::canonical();
  config.workload.duration_days = 1;
  config.battery = energy::BatteryConfig::lithium_ion(kwh_to_j(40.0));
  config.battery.initial_soc_fraction = 0.5;
  return config;
}

struct Finished {
  core::RunArtifacts artifacts;
  audit::AuditReport report;
};

Finished run_and_audit(const core::ExperimentConfig& config) {
  core::SimulationEngine engine(config);
  Finished f{engine.run(), {}};
  f.report = audit::audit_run(engine, f.artifacts);
  return f;
}

bool check_passed(const audit::AuditReport& report,
                  const std::string& name) {
  for (const auto& c : report.checks)
    if (c.name == name) return c.passed;
  ADD_FAILURE() << "check not found: " << name;
  return false;
}

TEST(Audit, CleanRunPassesEveryCheck) {
  const Finished f = run_and_audit(short_config());
  EXPECT_TRUE(f.report.passed());
  EXPECT_EQ(f.report.failures(), 0u);
  // The suite is substantial, not a stub.
  EXPECT_GE(f.report.checks.size(), 15u);
}

TEST(Audit, CleanRunPassesAcrossPoliciesAndVariants) {
  for (const char* policy : {"asap", "opportunistic", "greenmatch"}) {
    auto config = short_config();
    KeyValueConfig kv;
    kv.set("policy.kind", policy);
    core::apply_config(config, kv);
    const Finished f = run_and_audit(config);
    EXPECT_TRUE(f.report.passed()) << policy;
  }
  // Wind + MAID + event fidelity exercise every demand channel.
  auto config = short_config();
  KeyValueConfig kv;
  kv.set("wind.enabled", "true");
  kv.set("sim.maid", "true");
  kv.set("sim.fidelity", "event");
  core::apply_config(config, kv);
  EXPECT_TRUE(run_and_audit(config).report.passed());
}

// The acceptance scenario: a 1e-3 J/slot leak is ~1e-10 of a slot's
// energy — far inside the EnergyLedger's relative tolerance, so the
// run completes without the ledger throwing. The audit's absolute
// per-slot re-check must flag it anyway.
TEST(Audit, InjectedLeakPassesLedgerButFailsAudit) {
  auto config = short_config();
  config.test_leak_j_per_slot = 1e-3;
  Finished f{};
  ASSERT_NO_THROW(f = run_and_audit(config));  // ledger blind to it
  EXPECT_FALSE(f.report.passed());
  EXPECT_FALSE(check_passed(f.report, "slot.supply_split"));
  // The leak is booked as phantom curtailment, so the demand side and
  // the battery books stay consistent — the audit localizes the break.
  EXPECT_TRUE(check_passed(f.report, "slot.demand_coverage"));
  EXPECT_TRUE(check_passed(f.report, "battery.identity"));
}

TEST(Audit, LeakBelowTolerancePasses) {
  auto config = short_config();
  config.test_leak_j_per_slot = 1e-9;  // inside slot_abs_tol_j
  EXPECT_TRUE(run_and_audit(config).report.passed());
}

// The same leak must also surface in the golden-output rendering: the
// slot CSV is written at full round-trip precision, so curtailment
// shifted by 1e-3 J (~3e-10 kWh) renders differently.
TEST(Audit, InjectedLeakChangesGoldenCsvRendering) {
  const auto render_curtailed = [](const core::ExperimentConfig& c) {
    core::SimulationEngine engine(c);
    const auto artifacts = engine.run();
    std::ostringstream out;
    CsvWriter csv(out);
    for (const auto& s : artifacts.ledger.slots())
      csv.field(j_to_kwh(s.curtailed_j));
    csv.end_row();
    return out.str();
  };
  auto clean = short_config();
  auto leaky = short_config();
  leaky.test_leak_j_per_slot = 1e-3;
  EXPECT_NE(render_curtailed(clean), render_curtailed(leaky));
  // Control: the rendering itself is deterministic.
  EXPECT_EQ(render_curtailed(clean), render_curtailed(clean));
}

TEST(Audit, ReportPrintsVerdictPerCheck) {
  const Finished f = run_and_audit(short_config());
  std::ostringstream out;
  f.report.print(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("[PASS] battery.identity"), std::string::npos);
  EXPECT_NE(text.find("[PASS] slot.supply_split"), std::string::npos);
  EXPECT_NE(text.find("0 failures"), std::string::npos);
}

TEST(Audit, WriteJsonlEmitsOneParseableRecordPerCheck) {
  const Finished f = run_and_audit(short_config());
  const std::string path =
      ::testing::TempDir() + "/gm_audit_records.jsonl";
  std::remove(path.c_str());
  f.report.write_jsonl(path, "unit-test");
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  std::size_t checks = 0, runs = 0;
  while (std::getline(in, line)) {
    const auto record = obs::parse_flat_json(line);
    EXPECT_EQ(obs::record_str(record, "label"), "unit-test");
    const std::string kind = obs::record_str(record, "kind");
    if (kind == "audit_check") ++checks;
    if (kind == "audit_run") ++runs;
  }
  EXPECT_EQ(checks, f.report.checks.size());
  EXPECT_EQ(runs, 1u);
  std::remove(path.c_str());
}

TEST(Audit, EmitFeedsRecorderMetrics) {
  auto config = short_config();
  obs::RecorderConfig rc;  // no files: metrics registry only
  rc.profile = true;
  auto recorder = std::make_shared<obs::Recorder>(rc);
  core::SimulationEngine engine(config, recorder);
  const auto artifacts = engine.run();
  const auto report = audit::audit_run(engine, artifacts);
  report.emit(*recorder);
  EXPECT_EQ(recorder->metrics().counter("audit.checks"),
            static_cast<std::uint64_t>(report.checks.size()));
  EXPECT_EQ(recorder->metrics().counter("audit.failures"), 0u);
}

// ------------------------------------------------- config round-trip

TEST(AuditRoundTrip, CanonicalConfigIsAFixedPoint) {
  const auto result =
      audit::config_roundtrip(core::ExperimentConfig::canonical());
  EXPECT_TRUE(result.fixed_point)
      << (result.mismatches.empty() ? "" : result.mismatches.front());
}

TEST(AuditRoundTrip, AllBatteryTechnologiesAndGridProfiles) {
  for (const char* technology : {"la", "li", "ideal"}) {
    for (const char* profile : {"flat", "wind-heavy", "solar-heavy"}) {
      auto config = core::ExperimentConfig::canonical();
      KeyValueConfig kv;
      kv.set("battery.technology", technology);
      kv.set("battery.kwh", "25");
      kv.set("battery.initial_soc", "0.5");
      kv.set("grid.profile", profile);
      core::apply_config(config, kv);
      const auto result = audit::config_roundtrip(config);
      EXPECT_TRUE(result.fixed_point)
          << technology << "/" << profile << ": "
          << (result.mismatches.empty() ? "" : result.mismatches.front());
    }
  }
}

TEST(AuditRoundTrip, ReportsTheOffendingKey) {
  // A programmatically-built config whose grid profile name lies about
  // its curves cannot round-trip; the mismatch names the key.
  auto config = core::ExperimentConfig::canonical();
  config.grid = energy::GridConfig::wind_heavy();
  config.grid.profile = "flat";  // deliberately inconsistent
  const auto result = audit::config_roundtrip(config);
  // The echo says "flat", reapplying installs flat curves — which is
  // self-consistent at the echo level, so this IS a fixed point; the
  // lie is invisible to the key space. Document that boundary here.
  EXPECT_TRUE(result.fixed_point);
}

}  // namespace
}  // namespace gm
