// Tests for the machine-readable bench report path (bench/json_report):
// record round-trip, JSONL append semantics, --json= arg stripping,
// and gm_bench_merge-style collation into a merged array that loads
// back losslessly.

#include "json_report.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "util/assert.hpp"

namespace gm::bench {
namespace {

/// Unique temp path per test; removed on destruction.
class TempFile {
 public:
  explicit TempFile(const std::string& tag) {
    path_ = testing::TempDir() + "gm_bench_report_" + tag + ".json";
    std::remove(path_.c_str());
  }
  ~TempFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

BenchRecord sample_record() {
  BenchRecord r;
  r.bench = "fig4_panel_sizing";
  r.metric = "wall_ms";
  r.value = 1234.5;
  r.unit = "ms";
  r.wall_ms = 1234.5;
  r.git_sha = "abc1234";
  return r;
}

TEST(BenchRecord, RoundTripsThroughRenderAndParse) {
  const BenchRecord in = sample_record();
  const BenchRecord out = parse_bench_record(render_record(in));
  EXPECT_EQ(out.bench, in.bench);
  EXPECT_EQ(out.metric, in.metric);
  EXPECT_DOUBLE_EQ(out.value, in.value);
  EXPECT_EQ(out.unit, in.unit);
  EXPECT_DOUBLE_EQ(out.wall_ms, in.wall_ms);
  EXPECT_EQ(out.git_sha, in.git_sha);
}

// google-benchmark `_cv` aggregate rows are dimensionless ratios; the
// reporter records them with an empty unit (never scaled into "ns" —
// the PR3 baseline carried cv ratios as multi-million-ns values). An
// empty unit and a sub-1 value must survive the JSONL round trip.
TEST(BenchRecord, CvAggregateRowRoundTripsUnitless) {
  BenchRecord in = sample_record();
  in.bench = "BM_GreenMatchPlanDay_cv";
  in.metric = "real_time";
  in.value = 0.0137;
  in.unit = "";
  const BenchRecord out = parse_bench_record(render_record(in));
  EXPECT_EQ(out.bench, in.bench);
  EXPECT_EQ(out.unit, "");
  EXPECT_DOUBLE_EQ(out.value, 0.0137);
}

TEST(BenchRecord, EscapesSpecialCharactersInStrings) {
  BenchRecord in = sample_record();
  in.bench = "quote\" backslash\\ newline\n";
  const std::string line = render_record(in);
  EXPECT_EQ(line.find('\n'), std::string::npos)
      << "record must stay a single line";
  EXPECT_EQ(parse_bench_record(line).bench, in.bench);
}

TEST(BenchRecord, ParseToleratesMissingAndUnknownKeys) {
  const BenchRecord r = parse_bench_record(
      R"({"bench":"x","extra":42})");
  EXPECT_EQ(r.bench, "x");
  EXPECT_EQ(r.metric, "");
  EXPECT_DOUBLE_EQ(r.value, 0.0);
  EXPECT_EQ(r.git_sha, "");
}

TEST(BenchRecord, ParseRejectsMalformedLine) {
  EXPECT_THROW(parse_bench_record("not json"), RuntimeError);
}

TEST(BenchReportWriter, AppendsAcrossWriterInstances) {
  TempFile file("append");
  {
    BenchReportWriter w(file.path());
    w.append(sample_record());
    EXPECT_EQ(w.records_written(), 1u);
  }
  {
    // A second binary targeting the same file must not truncate it.
    BenchReportWriter w(file.path());
    BenchRecord second = sample_record();
    second.bench = "fig5_battery_sizing";
    w.append(second);
  }
  const auto records = read_report(file.path());
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].bench, "fig4_panel_sizing");
  EXPECT_EQ(records[1].bench, "fig5_battery_sizing");
}

TEST(BenchReportWriter, ThrowsWhenPathUnwritable) {
  EXPECT_THROW(BenchReportWriter("/nonexistent-dir/report.jsonl"),
               RuntimeError);
}

TEST(ReadReport, ThrowsOnMissingFile) {
  EXPECT_THROW(read_report("/nonexistent-dir/nothing.jsonl"),
               RuntimeError);
}

TEST(WriterFromArgs, StripsJsonFlagAndKeepsOtherArgs) {
  TempFile file("args");
  const std::string json_arg = "--json=" + file.path();
  std::string a0 = "bench", a1 = "--foo", a3 = "bar";
  char* argv[] = {a0.data(), a1.data(),
                  const_cast<char*>(json_arg.c_str()), a3.data(),
                  nullptr};
  int argc = 4;
  auto writer = writer_from_args(argc, argv);
  ASSERT_NE(writer, nullptr);
  EXPECT_EQ(writer->path(), file.path());
  ASSERT_EQ(argc, 3);
  EXPECT_STREQ(argv[0], "bench");
  EXPECT_STREQ(argv[1], "--foo");
  EXPECT_STREQ(argv[2], "bar");
  EXPECT_EQ(argv[3], nullptr);
}

TEST(WriterFromArgs, ReturnsNullWithoutFlag) {
  std::string a0 = "bench";
  char* argv[] = {a0.data(), nullptr};
  int argc = 1;
  EXPECT_EQ(writer_from_args(argc, argv), nullptr);
  EXPECT_EQ(argc, 1);
}

TEST(ExhibitReporter, NoJsonFlagMeansNoOutput) {
  std::string a0 = "bench";
  char* argv[] = {a0.data(), nullptr};
  int argc = 1;
  ExhibitReporter reporter("exhibit", argc, argv);
  EXPECT_FALSE(reporter.enabled());
  reporter.metric("ignored", 1.0);  // must be a no-op, not a crash
}

TEST(ExhibitReporter, WritesMetricsAndWallTimeOnDestruction) {
  TempFile file("exhibit");
  const std::string json_arg = "--json=" + file.path();
  std::string a0 = "bench";
  char* argv[] = {a0.data(), const_cast<char*>(json_arg.c_str()),
                  nullptr};
  int argc = 2;
  {
    ExhibitReporter reporter("tab2_policy_comparison", argc, argv);
    EXPECT_TRUE(reporter.enabled());
    EXPECT_EQ(argc, 1);
    reporter.metric("green_utilization", 62.26, "%");
  }
  const auto records = read_report(file.path());
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].metric, "green_utilization");
  EXPECT_DOUBLE_EQ(records[0].value, 62.26);
  EXPECT_EQ(records[0].unit, "%");
  EXPECT_EQ(records[1].metric, "wall_ms");
  EXPECT_EQ(records[1].unit, "ms");
  EXPECT_GE(records[1].value, 0.0);
  for (const auto& r : records) {
    EXPECT_EQ(r.bench, "tab2_policy_comparison");
    EXPECT_EQ(r.git_sha, current_git_sha());
  }
}

TEST(Merge, CollatesFilesInInputOrderAndRoundTrips) {
  TempFile a("merge_a"), b("merge_b"), merged("merge_out");
  {
    BenchReportWriter wa(a.path());
    BenchRecord r = sample_record();
    wa.append(r);
    r.metric = "green_utilization";
    r.unit = "%";
    wa.append(r);
    BenchReportWriter wb(b.path());
    r = sample_record();
    r.bench = "BM_GreenMatchPlanDay";
    r.metric = "real_time";
    wb.append(r);
  }
  const auto records = merge_reports({a.path(), b.path()});
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].metric, "wall_ms");
  EXPECT_EQ(records[1].metric, "green_utilization");
  EXPECT_EQ(records[2].bench, "BM_GreenMatchPlanDay");

  write_merged_json(records, merged.path());
  // The merged array must itself load back (so a checked-in baseline
  // can be re-merged with fresh records) and survive a second merge
  // unchanged.
  const auto reloaded = read_report(merged.path());
  ASSERT_EQ(reloaded.size(), records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(reloaded[i].bench, records[i].bench);
    EXPECT_EQ(reloaded[i].metric, records[i].metric);
    EXPECT_DOUBLE_EQ(reloaded[i].value, records[i].value);
  }
  std::ifstream in(merged.path());
  std::string first_line;
  std::getline(in, first_line);
  EXPECT_EQ(first_line, "[") << "merged output is a JSON array";
}

TEST(Merge, EmptyInputsProduceEmptyArray) {
  TempFile empty("merge_empty"), merged("merge_empty_out");
  std::ofstream(empty.path()) << "";
  write_merged_json(merge_reports({empty.path()}), merged.path());
  EXPECT_TRUE(read_report(merged.path()).empty());
}

}  // namespace
}  // namespace gm::bench
