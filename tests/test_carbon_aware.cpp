// Carbon-aware scheduling tests: grid profiles, matcher behaviour and
// the engine-level carbon outcome.

#include <gtest/gtest.h>

#include "core/engine.hpp"
#include "core/policies.hpp"
#include "energy/grid.hpp"
#include "util/units.hpp"

namespace gm::core {
namespace {

TEST(GridProfiles, ShapesAreAsDocumented) {
  const auto wind = energy::GridConfig::wind_heavy();
  EXPECT_LT(wind.carbon_g_per_kwh(4.0), wind.carbon_g_per_kwh(19.0));
  EXPECT_LT(wind.carbon_g_per_kwh(2.0), wind.carbon_g_per_kwh(12.0));

  const auto solar = energy::GridConfig::solar_heavy();
  EXPECT_LT(solar.carbon_g_per_kwh(12.0), solar.carbon_g_per_kwh(0.0));
  EXPECT_LT(solar.carbon_g_per_kwh(12.0), solar.carbon_g_per_kwh(21.0));

  const auto flat = energy::GridConfig::flat(250.0);
  EXPECT_DOUBLE_EQ(flat.carbon_g_per_kwh(3.0), 250.0);
  EXPECT_DOUBLE_EQ(flat.carbon_g_per_kwh(15.0), 250.0);
}

ClusterFacts test_facts() {
  ClusterFacts f;
  f.total_nodes = 16;
  f.min_nodes_for_coverage = 6;
  f.task_slots_per_node = 4;
  f.node_idle_floor_w = 120.0;
  f.node_peak_w = 240.0;
  f.slot_length_s = 3600.0;
  f.max_utilization_per_node = 0.95;
  return f;
}

SlotContext dark_ctx(int horizon) {
  SlotContext ctx;
  ctx.start = 0;
  ctx.end = 3600;
  ctx.green_forecast_w.assign(horizon, 0.0);
  ctx.foreground_util_forecast.assign(horizon, 0.0);
  return ctx;
}

TEST(CarbonAware, DefersBrownRunIntoCleanHour) {
  // No green anywhere; slot 0 is dirty, slot 1 clean; the task must
  // finish within 2 slots. Carbon-aware waits for the clean hour; the
  // plain matcher runs immediately (earliness tiebreak).
  PendingTask task;
  task.task.id = 1;
  task.task.release = 0;
  task.task.deadline = 2 * 3600;
  task.task.work_s = 3600.0;
  task.remaining_s = 3600.0;

  SlotContext ctx = dark_ctx(8);
  ctx.grid_carbon_g_per_kwh = {500.0, 100.0, 500.0, 500.0,
                               500.0, 500.0, 500.0, 500.0};
  ctx.pending.push_back(task);

  GreenMatchPolicy plain(8, false, true, false, false);
  plain.initialize(test_facts());
  EXPECT_EQ(plain.decide(ctx).run_tasks.size(), 1u);

  GreenMatchPolicy carbon(8, false, true, false, true);
  carbon.initialize(test_facts());
  EXPECT_TRUE(carbon.decide(ctx).run_tasks.empty());
}

TEST(CarbonAware, NoCarbonDataFallsBackToFlatCost) {
  PendingTask task;
  task.task.id = 1;
  task.task.deadline = 2 * 3600;
  task.task.work_s = 3600.0;
  task.remaining_s = 3600.0;

  SlotContext ctx = dark_ctx(8);  // no carbon vector
  ctx.pending.push_back(task);
  GreenMatchPolicy carbon(8, false, true, false, true);
  carbon.initialize(test_facts());
  // Without data it behaves like the plain matcher: runs now.
  EXPECT_EQ(carbon.decide(ctx).run_tasks.size(), 1u);
}

TEST(CarbonAware, GreenStillBeatsCleanBrown) {
  // Green now, cleaner-brown later: green is free, so run now.
  PendingTask task;
  task.task.id = 1;
  task.task.deadline = 12 * 3600;
  task.task.work_s = 3600.0;
  task.remaining_s = 3600.0;

  SlotContext ctx = dark_ctx(8);
  ctx.green_forecast_w[0] = 30'000.0;
  ctx.grid_carbon_g_per_kwh = {500.0, 100.0, 100.0, 100.0,
                               100.0, 100.0, 100.0, 100.0};
  ctx.pending.push_back(task);
  GreenMatchPolicy carbon(8, false, true, false, true);
  carbon.initialize(test_facts());
  EXPECT_EQ(carbon.decide(ctx).run_tasks.size(), 1u);
}

TEST(CarbonAware, EngineRunLowersCarbonOnVaryingGrid) {
  auto base = [] {
    ExperimentConfig config;
    config.cluster.racks = 2;
    config.cluster.nodes_per_rack = 8;
    config.cluster.placement.group_count = 128;
    config.cluster.placement.replication = 3;
    config.workload = workload::WorkloadSpec::canonical(3, 31);
    config.workload.foreground.base_rate_per_s = 0.5;
    config.solar.horizon_days = 8;
    config.panel_area_m2 = 40.0;
    config.battery = energy::BatteryConfig::lithium_ion(kwh_to_j(5));
    config.grid = energy::GridConfig::wind_heavy();
    config.policy.kind = PolicyKind::kGreenMatch;
    config.policy.horizon_slots = 12;
    return config;
  };
  auto plain_config = base();
  auto carbon_config = base();
  carbon_config.policy.carbon_aware = true;
  const auto plain = run_experiment(plain_config).result;
  const auto carbon = run_experiment(carbon_config).result;
  EXPECT_LT(carbon.grid_carbon_g, plain.grid_carbon_g * 1.001);
  // The carbon win must come from *when* it draws, i.e. a lower
  // effective intensity, not just from using less energy.
  const double plain_eff = plain.grid_carbon_g / plain.brown_kwh();
  const double carbon_eff = carbon.grid_carbon_g / carbon.brown_kwh();
  EXPECT_LT(carbon_eff, plain_eff);
}

TEST(CarbonAware, FlatGridIsANoop) {
  auto config = ExperimentConfig::canonical();
  config.cluster.racks = 2;
  config.cluster.nodes_per_rack = 8;
  config.cluster.placement.group_count = 128;
  config.workload = workload::WorkloadSpec::canonical(2, 5);
  config.workload.foreground.base_rate_per_s = 0.5;
  config.solar.horizon_days = 6;
  config.grid = energy::GridConfig::flat(300.0);
  config.policy.kind = PolicyKind::kGreenMatch;
  config.policy.horizon_slots = 12;

  auto carbon_config = config;
  carbon_config.policy.carbon_aware = true;
  const auto plain = run_experiment(config).result;
  const auto carbon = run_experiment(carbon_config).result;
  EXPECT_DOUBLE_EQ(plain.energy.brown_j, carbon.energy.brown_j);
  EXPECT_DOUBLE_EQ(plain.grid_carbon_g, carbon.grid_carbon_g);
}

}  // namespace
}  // namespace gm::core
