// Tests for the key=value config format and its mapping onto
// ExperimentConfig.

#include <gtest/gtest.h>

#include "core/config_io.hpp"
#include "util/assert.hpp"
#include "util/config_kv.hpp"

namespace gm {
namespace {

TEST(KeyValueConfig, ParsesBasicFile) {
  const auto kv = KeyValueConfig::parse(
      "# comment\n"
      "a.b = 3\n"
      "   c   =   hello world  # trailing comment\n"
      "\n"
      "flag = true\n"
      "rate = 2.5\n");
  EXPECT_EQ(kv.size(), 4u);
  EXPECT_EQ(kv.get_int("a.b"), 3);
  EXPECT_EQ(kv.get_string("c"), "hello world");
  EXPECT_EQ(kv.get_bool("flag"), true);
  EXPECT_DOUBLE_EQ(*kv.get_double("rate"), 2.5);
  EXPECT_TRUE(kv.unconsumed_keys().empty());
}

TEST(KeyValueConfig, MissingKeysReturnNullopt) {
  const auto kv = KeyValueConfig::parse("x = 1\n");
  EXPECT_FALSE(kv.get_string("y").has_value());
  EXPECT_EQ(kv.get_int_or("y", 7), 7);
  EXPECT_EQ(kv.get_string_or("y", "d"), "d");
  EXPECT_DOUBLE_EQ(kv.get_double_or("y", 1.5), 1.5);
  EXPECT_TRUE(kv.get_bool_or("y", true));
}

TEST(KeyValueConfig, RejectsMalformed) {
  EXPECT_THROW(KeyValueConfig::parse("no equals sign\n"),
               InvalidArgument);
  EXPECT_THROW(KeyValueConfig::parse("= value\n"), InvalidArgument);
  EXPECT_THROW(KeyValueConfig::parse("a=1\na=2\n"), InvalidArgument);
}

TEST(KeyValueConfig, TypedGettersRejectGarbage) {
  const auto kv = KeyValueConfig::parse("n = abc\nb = maybe\n");
  EXPECT_THROW(kv.get_int("n"), InvalidArgument);
  EXPECT_THROW(kv.get_double("n"), InvalidArgument);
  EXPECT_THROW(kv.get_bool("b"), InvalidArgument);
}

TEST(KeyValueConfig, BoolSpellings) {
  const auto kv = KeyValueConfig::parse(
      "a=true\nb=FALSE\nc=1\nd=0\ne=Yes\nf=off\n");
  EXPECT_TRUE(*kv.get_bool("a"));
  EXPECT_FALSE(*kv.get_bool("b"));
  EXPECT_TRUE(*kv.get_bool("c"));
  EXPECT_FALSE(*kv.get_bool("d"));
  EXPECT_TRUE(*kv.get_bool("e"));
  EXPECT_FALSE(*kv.get_bool("f"));
}

TEST(KeyValueConfig, TracksUnconsumed) {
  const auto kv = KeyValueConfig::parse("used = 1\nunused = 2\n");
  kv.get_int("used");
  const auto leftover = kv.unconsumed_keys();
  ASSERT_EQ(leftover.size(), 1u);
  EXPECT_EQ(leftover[0], "unused");
}

TEST(KeyValueConfig, SetOverrides) {
  KeyValueConfig kv;
  kv.set("k", "5");
  EXPECT_EQ(kv.get_int("k"), 5);
  kv.set("k", "9");
  EXPECT_EQ(kv.get_int("k"), 9);
}

TEST(KeyValueConfig, MissingFileThrows) {
  EXPECT_THROW(KeyValueConfig::load_file("/no/such/file.conf"),
               RuntimeError);
}

// ------------------------------------------------------- config_io

TEST(ConfigIo, AppliesAllSections) {
  auto config = core::ExperimentConfig::canonical();
  const auto kv = KeyValueConfig::parse(
      "cluster.racks = 2\n"
      "cluster.nodes_per_rack = 8\n"
      "cluster.replication = 2\n"
      "workload.preset = read-heavy\n"
      "workload.days = 3\n"
      "workload.seed = 77\n"
      "solar.panel_area_m2 = 80\n"
      "battery.technology = la\n"
      "battery.kwh = 25\n"
      "battery.initial_soc = 0.5\n"
      "policy.kind = opportunistic\n"
      "policy.deferral = 0.4\n"
      "sim.fidelity = event\n"
      "sim.dwell_slots = 3\n");
  core::apply_config(config, kv);

  EXPECT_EQ(config.cluster.racks, 2);
  EXPECT_EQ(config.cluster.nodes_per_rack, 8);
  EXPECT_EQ(config.cluster.placement.replication, 2);
  EXPECT_EQ(config.workload.duration_days, 3);
  EXPECT_EQ(config.workload.seed, 77u);
  EXPECT_DOUBLE_EQ(config.workload.foreground.read_fraction, 0.92);
  EXPECT_DOUBLE_EQ(config.panel_area_m2, 80.0);
  EXPECT_EQ(config.battery.technology,
            energy::BatteryTechnology::kLeadAcid);
  EXPECT_DOUBLE_EQ(j_to_kwh(config.battery.capacity_j), 25.0);
  EXPECT_DOUBLE_EQ(config.battery.initial_soc_fraction, 0.5);
  EXPECT_EQ(config.policy.kind, core::PolicyKind::kOpportunistic);
  EXPECT_DOUBLE_EQ(config.policy.deferral_fraction, 0.4);
  EXPECT_EQ(config.fidelity, core::Fidelity::kEventLevel);
  EXPECT_EQ(config.min_dwell_slots, 3);
}

// workload.task_scale is the deep-queue knob for the massive-fleet
// bench tier: it must survive an apply -> echo -> apply round trip so
// scale manifests replay exactly.
TEST(ConfigIo, TaskScaleAppliesAndEchoes) {
  auto config = core::ExperimentConfig::canonical();
  core::apply_config(
      config, KeyValueConfig::parse("workload.task_scale = 2.5\n"));
  EXPECT_DOUBLE_EQ(config.workload.task_scale, 2.5);

  std::string echo_text;
  for (const auto& [k, v] : core::config_echo(config))
    echo_text += k + " = " + v + "\n";
  auto replay = core::ExperimentConfig::canonical();
  core::apply_config(replay, KeyValueConfig::parse(echo_text));
  EXPECT_DOUBLE_EQ(replay.workload.task_scale, 2.5);
  EXPECT_EQ(replay.workload.fingerprint(),
            config.workload.fingerprint());
}

TEST(ConfigIo, RejectsUnknownKeys) {
  auto config = core::ExperimentConfig::canonical();
  const auto kv = KeyValueConfig::parse("polcy.kind = asap\n");  // typo
  EXPECT_THROW(core::apply_config(config, kv), InvalidArgument);
}

TEST(ConfigIo, RejectsBadEnumValues) {
  auto config = core::ExperimentConfig::canonical();
  EXPECT_THROW(core::apply_config(
                   config, KeyValueConfig::parse("policy.kind = x\n")),
               InvalidArgument);
  config = core::ExperimentConfig::canonical();
  EXPECT_THROW(
      core::apply_config(
          config, KeyValueConfig::parse("sim.fidelity = medium\n")),
      InvalidArgument);
  config = core::ExperimentConfig::canonical();
  EXPECT_THROW(
      core::apply_config(
          config, KeyValueConfig::parse("battery.technology = nimh\n")),
      InvalidArgument);
  config = core::ExperimentConfig::canonical();
  EXPECT_THROW(
      core::apply_config(
          config, KeyValueConfig::parse("workload.preset = huge\n")),
      InvalidArgument);
}

TEST(ConfigIo, PolicyKindNames) {
  EXPECT_EQ(core::parse_policy_kind("asap"), core::PolicyKind::kAsap);
  EXPECT_EQ(core::parse_policy_kind("esd-only"),
            core::PolicyKind::kAsap);
  EXPECT_EQ(core::parse_policy_kind("greenmatch"),
            core::PolicyKind::kGreenMatch);
  EXPECT_EQ(core::parse_policy_kind("greenmatch-greedy"),
            core::PolicyKind::kGreenMatchGreedy);
  EXPECT_EQ(core::parse_policy_kind("night-shift"),
            core::PolicyKind::kNightShift);
  EXPECT_THROW(core::parse_policy_kind("magic"), InvalidArgument);
}

TEST(ConfigIo, ValidatesResultingConfig) {
  auto config = core::ExperimentConfig::canonical();
  // 30-day run exceeds the default 14-day solar horizon.
  const auto kv = KeyValueConfig::parse("workload.days = 30\n");
  EXPECT_THROW(core::apply_config(config, kv), InvalidArgument);
}

TEST(ConfigIo, HelpMentionsEveryKeyFamily) {
  const std::string help = core::config_keys_help();
  for (const char* family :
       {"cluster.", "workload.", "solar.", "wind.", "battery.",
        "policy.", "sim.", "forecast.", "grid.", "arrivals.",
        "admission."})
    EXPECT_NE(help.find(family), std::string::npos) << family;
}

// ----------------------------------------- echo / re-apply regressions

namespace {
std::string echoed(const core::ExperimentConfig& config,
                   const std::string& key) {
  for (const auto& [k, v] : core::config_echo(config))
    if (k == key) return v;
  ADD_FAILURE() << "config_echo has no key " << key;
  return {};
}
}  // namespace

// Regression: apply_config used to default battery.technology to "li"
// whenever the current technology wasn't lead-acid, so re-applying an
// unrelated key to an ideal-battery config silently swapped the
// battery for a lithium-ion one.
TEST(ConfigIo, ReapplyPreservesIdealBatteryTechnology) {
  auto config = core::ExperimentConfig::canonical();
  core::apply_config(config,
                     KeyValueConfig::parse("battery.technology = ideal\n"
                                           "battery.kwh = 20\n"));
  ASSERT_EQ(config.battery.technology,
            energy::BatteryTechnology::kCustom);
  ASSERT_DOUBLE_EQ(config.battery.charge_efficiency, 1.0);

  // Touch an unrelated key; the battery must survive untouched.
  core::apply_config(config, KeyValueConfig::parse("workload.days = 3\n"));
  EXPECT_EQ(config.battery.technology,
            energy::BatteryTechnology::kCustom);
  EXPECT_DOUBLE_EQ(config.battery.charge_efficiency, 1.0);
  EXPECT_DOUBLE_EQ(config.battery.depth_of_discharge, 1.0);
  EXPECT_DOUBLE_EQ(j_to_kwh(config.battery.capacity_j), 20.0);
}

// Regression: re-applying also used to reset initial_soc to the fresh
// preset's zero rather than keeping the configured value.
TEST(ConfigIo, ReapplyPreservesInitialSoc) {
  auto config = core::ExperimentConfig::canonical();
  core::apply_config(config,
                     KeyValueConfig::parse("battery.kwh = 40\n"
                                           "battery.initial_soc = 0.5\n"));
  ASSERT_DOUBLE_EQ(config.battery.initial_soc_fraction, 0.5);
  core::apply_config(config, KeyValueConfig::parse("workload.days = 2\n"));
  EXPECT_DOUBLE_EQ(config.battery.initial_soc_fraction, 0.5);
}

// Regression: config_echo omitted grid.profile, so a manifest replay of
// a carbon-aware run silently fell back to the flat grid.
TEST(ConfigIo, EchoIncludesGridProfile) {
  auto config = core::ExperimentConfig::canonical();
  EXPECT_EQ(echoed(config, "grid.profile"), "flat");
  core::apply_config(
      config, KeyValueConfig::parse("grid.profile = wind-heavy\n"));
  EXPECT_EQ(echoed(config, "grid.profile"), "wind-heavy");
  // Presets assigned through the C++ API carry their name too.
  config.grid = energy::GridConfig::solar_heavy();
  EXPECT_EQ(echoed(config, "grid.profile"), "solar-heavy");
}

TEST(ConfigIo, EchoBatteryTechnologyNamesEveryPreset) {
  auto config = core::ExperimentConfig::canonical();
  config.battery = energy::BatteryConfig::lead_acid(kwh_to_j(10));
  EXPECT_EQ(echoed(config, "battery.technology"), "la");
  config.battery = energy::BatteryConfig::lithium_ion(kwh_to_j(10));
  EXPECT_EQ(echoed(config, "battery.technology"), "li");
  config.battery = energy::BatteryConfig::ideal(kwh_to_j(10));
  EXPECT_EQ(echoed(config, "battery.technology"), "ideal");
}

// Regression: apply_config read forecast.error_at_1h but not
// forecast.error_cap or forecast.seed (or the newer bias/AR(1) knobs),
// so a manifest replay of a noisy-forecast run silently reverted those
// to defaults.
TEST(ConfigIo, ForecastNoiseKeysApplyAndEcho) {
  auto config = core::ExperimentConfig::canonical();
  core::apply_config(config, KeyValueConfig::parse(
      "forecast.noisy = true\n"
      "forecast.error_at_1h = 0.12\n"
      "forecast.error_cap = 0.4\n"
      "forecast.bias_at_1h = 0.08\n"
      "forecast.ar1_rho = 0.7\n"
      "forecast.seed = 4242\n"));
  EXPECT_TRUE(config.noisy_forecast);
  EXPECT_DOUBLE_EQ(config.forecast_noise.error_at_1h, 0.12);
  EXPECT_DOUBLE_EQ(config.forecast_noise.error_cap, 0.4);
  EXPECT_DOUBLE_EQ(config.forecast_noise.bias_at_1h, 0.08);
  EXPECT_DOUBLE_EQ(config.forecast_noise.ar1_rho, 0.7);
  EXPECT_EQ(config.forecast_noise.seed, 4242u);
  EXPECT_DOUBLE_EQ(std::stod(echoed(config, "forecast.error_cap")), 0.4);
  EXPECT_EQ(echoed(config, "forecast.seed"), "4242");
  EXPECT_DOUBLE_EQ(std::stod(echoed(config, "forecast.ar1_rho")), 0.7);
}

// Regression: node-failure injections had no kv form at all, so no
// failure experiment could be reproduced from its manifest.
TEST(ConfigIo, FailureKeysApplyAndEcho) {
  auto config = core::ExperimentConfig::canonical();
  core::apply_config(config, KeyValueConfig::parse(
      "failures.events = 3@7200@10800;5@9000@0\n"
      "failures.repair_rate_bytes_per_s = 1.5e8\n"
      "failures.repair_deadline_s = 43200\n"));
  ASSERT_EQ(config.node_failures.size(), 2u);
  EXPECT_EQ(config.node_failures[0].node, 3u);
  EXPECT_EQ(config.node_failures[0].fail_at, 7200);
  EXPECT_EQ(config.node_failures[0].recover_at, 10800);
  EXPECT_EQ(config.node_failures[1].node, 5u);
  EXPECT_EQ(config.node_failures[1].recover_at, 0);  // permanent
  EXPECT_DOUBLE_EQ(config.repair_rate_bytes_per_s, 1.5e8);
  EXPECT_DOUBLE_EQ(config.repair_deadline_s, 43200.0);
  EXPECT_EQ(echoed(config, "failures.events"), "3@7200@10800;5@9000@0");

  // Echo -> apply -> echo is a fixed point (audit's round-trip check
  // relies on this for every key, including the event list).
  auto replay = core::ExperimentConfig::canonical();
  KeyValueConfig kv;
  for (const auto& [k, v] : core::config_echo(config)) kv.set(k, v);
  core::apply_config(replay, kv);
  EXPECT_EQ(core::config_echo(replay), core::config_echo(config));
}

TEST(ConfigIo, FailureEventsRejectMalformedEntries) {
  auto config = core::ExperimentConfig::canonical();
  EXPECT_THROW(
      core::apply_config(
          config, KeyValueConfig::parse("failures.events = 3@7200\n")),
      InvalidArgument);
  EXPECT_THROW(
      core::apply_config(
          config,
          KeyValueConfig::parse("failures.events = x@1@2\n")),
      InvalidArgument);
}

TEST(ConfigIo, ScenarioKeysApplyAndEcho) {
  auto config = core::ExperimentConfig::canonical();
  core::apply_config(config, KeyValueConfig::parse(
      "scenario.failure_process = weibull\n"
      "scenario.mtbf_hours = 120\n"
      "scenario.weibull_shape = 0.6\n"
      "scenario.mttr_hours = 8\n"
      "scenario.failure_seed = 42\n"
      "scenario.spike_rate_per_day = 2\n"
      "scenario.spike_carbon_x = 4\n"
      "scenario.curtail_rate_per_day = 1.5\n"
      "scenario.curtail_supply_fraction = 0.1\n"));
  EXPECT_EQ(config.scenario.failures.process,
            scenario::FailureProcess::kWeibull);
  EXPECT_DOUBLE_EQ(config.scenario.failures.mtbf_hours, 120.0);
  EXPECT_DOUBLE_EQ(config.scenario.failures.weibull_shape, 0.6);
  EXPECT_EQ(config.scenario.failures.seed, 42u);
  EXPECT_DOUBLE_EQ(config.scenario.grid_spikes.rate_per_day, 2.0);
  EXPECT_DOUBLE_EQ(config.scenario.grid_spikes.carbon_multiplier, 4.0);
  EXPECT_DOUBLE_EQ(config.scenario.curtailment.supply_fraction, 0.1);
  EXPECT_EQ(echoed(config, "scenario.failure_process"), "weibull");
  EXPECT_EQ(echoed(config, "scenario.spike_carbon_x"), "4");
  EXPECT_TRUE(config.scenario.any());
}

TEST(ConfigIo, ArrivalAndAdmissionKeysApplyAndEcho) {
  auto config = core::ExperimentConfig::canonical();
  core::apply_config(config, KeyValueConfig::parse(
      "arrivals.enabled = true\n"
      "arrivals.rate_per_h = 150\n"
      "arrivals.seed = 8181\n"
      "arrivals.mean_work_s = 5400\n"
      "arrivals.work_sigma = 0.45\n"
      "arrivals.deadline_slack_s = 21600\n"
      "arrivals.utilization = 0.35\n"
      "arrivals.diurnal = false\n"
      "admission.horizon = 18\n"
      "admission.battery_reserve_soc = 0.4\n"
      "admission.overflow = reject\n"));
  EXPECT_TRUE(config.arrivals.enabled);
  EXPECT_DOUBLE_EQ(config.arrivals.rate_per_h, 150.0);
  EXPECT_EQ(config.arrivals.seed, 8181u);
  EXPECT_DOUBLE_EQ(config.arrivals.mean_work_s, 5400.0);
  EXPECT_DOUBLE_EQ(config.arrivals.work_sigma, 0.45);
  EXPECT_DOUBLE_EQ(config.arrivals.deadline_slack_s, 21600.0);
  EXPECT_DOUBLE_EQ(config.arrivals.utilization, 0.35);
  EXPECT_FALSE(config.arrivals.diurnal);
  EXPECT_EQ(config.admission.horizon_slots, 18);
  EXPECT_DOUBLE_EQ(config.admission.battery_reserve_soc, 0.4);
  EXPECT_EQ(config.admission.overflow, core::AdmissionOverflow::kReject);

  EXPECT_EQ(echoed(config, "arrivals.enabled"), "true");
  EXPECT_EQ(echoed(config, "arrivals.seed"), "8181");
  EXPECT_DOUBLE_EQ(std::stod(echoed(config, "arrivals.rate_per_h")), 150.0);
  EXPECT_EQ(echoed(config, "admission.horizon"), "18");
  EXPECT_EQ(echoed(config, "admission.overflow"), "reject");

  // Echo -> apply -> echo fixed point over the new key families (the
  // audit round-trip and manifest replay both lean on this).
  auto replay = core::ExperimentConfig::canonical();
  KeyValueConfig kv;
  for (const auto& [k, v] : core::config_echo(config)) kv.set(k, v);
  core::apply_config(replay, kv);
  EXPECT_EQ(core::config_echo(replay), core::config_echo(config));
}

TEST(ConfigIo, ArrivalKeysAbsentFromClosedLoopEcho) {
  // Closed-loop echoes must not grow new keys: old manifests, the
  // golden corpus, and byte-stable summaries depend on it.
  const auto config = core::ExperimentConfig::canonical();
  EXPECT_FALSE(config.arrivals.enabled);
  for (const auto& [k, v] : core::config_echo(config)) {
    EXPECT_NE(k.rfind("arrivals.", 0), 0u) << k;
    EXPECT_NE(k.rfind("admission.", 0), 0u) << k;
  }
  // The disabled state still round-trips: echo -> apply -> echo is a
  // fixed point on both sides of the gate.
  auto replay = core::ExperimentConfig::canonical();
  KeyValueConfig kv;
  for (const auto& [k, v] : core::config_echo(config)) kv.set(k, v);
  core::apply_config(replay, kv);
  EXPECT_EQ(core::config_echo(replay), core::config_echo(config));
  EXPECT_FALSE(replay.arrivals.enabled);
}

TEST(ConfigIo, AdmissionRejectsBadValues) {
  auto config = core::ExperimentConfig::canonical();
  EXPECT_THROW(
      core::apply_config(
          config,
          KeyValueConfig::parse("admission.overflow = shrug\n")),
      InvalidArgument);
  EXPECT_THROW(core::apply_config(
                   config, KeyValueConfig::parse(
                               "arrivals.enabled = true\n"
                               "arrivals.rate_per_h = -5\n")),
               InvalidArgument);
  EXPECT_THROW(core::apply_config(
                   config, KeyValueConfig::parse(
                               "admission.battery_reserve_soc = 1.5\n")),
               InvalidArgument);
}

TEST(ConfigIo, ScenarioRejectsBadValues) {
  auto config = core::ExperimentConfig::canonical();
  EXPECT_THROW(core::apply_config(
                   config, KeyValueConfig::parse(
                               "scenario.failure_process = lightning\n")),
               InvalidArgument);
  EXPECT_THROW(
      core::apply_config(
          config, KeyValueConfig::parse(
                      "scenario.failure_process = poisson\n"
                      "scenario.mtbf_hours = -1\n")),
      InvalidArgument);
  EXPECT_THROW(
      core::apply_config(
          config, KeyValueConfig::parse(
                      "scenario.curtail_rate_per_day = 1\n"
                      "scenario.curtail_supply_fraction = 1.5\n")),
      InvalidArgument);
}

}  // namespace
}  // namespace gm
