// Min-cost max-flow solver tests: hand-checked instances, property
// checks (flow conservation, capacity limits) and optimality against
// brute force on random small bipartite assignment instances.

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <numeric>
#include <vector>

#include "core/mincost_flow.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace gm::core {
namespace {

TEST(MinCostFlow, SingleEdge) {
  MinCostFlow f(2);
  const int e = f.add_edge(0, 1, 5, 3);
  const auto r = f.solve(0, 1);
  EXPECT_EQ(r.flow, 5);
  EXPECT_EQ(r.cost, 15);
  EXPECT_EQ(f.flow_on(e), 5);
}

TEST(MinCostFlow, PrefersCheaperPath) {
  // Two parallel 2-hop paths, cheap one has capacity 1.
  MinCostFlow f(4);
  const int cheap_a = f.add_edge(0, 1, 1, 0);
  const int cheap_b = f.add_edge(1, 3, 1, 0);
  const int dear_a = f.add_edge(0, 2, 10, 5);
  const int dear_b = f.add_edge(2, 3, 10, 5);
  const auto r = f.solve(0, 3, 3);
  EXPECT_EQ(r.flow, 3);
  EXPECT_EQ(r.cost, 0 + 2 * 10);
  EXPECT_EQ(f.flow_on(cheap_a), 1);
  EXPECT_EQ(f.flow_on(cheap_b), 1);
  EXPECT_EQ(f.flow_on(dear_a), 2);
  EXPECT_EQ(f.flow_on(dear_b), 2);
}

TEST(MinCostFlow, RespectsMaxFlowBound) {
  MinCostFlow f(2);
  f.add_edge(0, 1, 100, 1);
  const auto r = f.solve(0, 1, 7);
  EXPECT_EQ(r.flow, 7);
  EXPECT_EQ(r.cost, 7);
}

TEST(MinCostFlow, DisconnectedYieldsZero) {
  MinCostFlow f(3);
  f.add_edge(0, 1, 10, 1);
  const auto r = f.solve(0, 2);
  EXPECT_EQ(r.flow, 0);
  EXPECT_EQ(r.cost, 0);
}

TEST(MinCostFlow, ClassicAugmentingRequiresReroute) {
  // The textbook case where a later augmentation must push flow back
  // over an earlier choice via the residual edge.
  MinCostFlow f(4);
  f.add_edge(0, 1, 1, 1);
  f.add_edge(0, 2, 1, 4);
  f.add_edge(1, 2, 1, 1);
  f.add_edge(1, 3, 1, 5);
  f.add_edge(2, 3, 1, 1);
  const auto r = f.solve(0, 3);
  EXPECT_EQ(r.flow, 2);
  // Optimal: 0→1→2→3 (cost 3) + 0→2? cap used... optimum is 9:
  // path A 0→1→3 (6) and path B 0→2→3 (5) = 11 vs
  // 0→1→2→3 (3) + 0→2→3 blocked (cap 2→3 =1) → must use 0→1→3:
  // flows: 0→1→2→3 and 0→1 can't (cap 1). Enumerate: the two units
  // must leave via 0→1 and 0→2 and arrive via 1→3 and 2→3:
  //   unit1: 0→1→3 = 6, unit2: 0→2→3 = 5  → 11
  //   unit1: 0→1→2→3 = 3, unit2: 0→2→?   2→3 taken → infeasible
  // so optimum = 11.
  EXPECT_EQ(r.cost, 11);
}

TEST(MinCostFlow, FlowConservationAtInternalNodes) {
  MinCostFlow f(6);
  std::vector<int> edges;
  Rng rng(5);
  // Random graph source=0 sink=5.
  struct E { int a, b; long long cap; };
  std::vector<E> topo;
  for (int a = 0; a < 5; ++a)
    for (int b = 1; b < 6; ++b)
      if (a != b) {
        const long long cap = static_cast<long long>(rng.uniform_u64(4));
        topo.push_back({a, b, cap});
        edges.push_back(f.add_edge(a, b, cap,
                                   static_cast<long long>(
                                       rng.uniform_u64(10))));
      }
  f.solve(0, 5);
  std::vector<long long> net(6, 0);
  for (std::size_t i = 0; i < edges.size(); ++i) {
    const long long flow = f.flow_on(edges[i]);
    EXPECT_GE(flow, 0);
    EXPECT_LE(flow, topo[i].cap);
    net[topo[i].a] -= flow;
    net[topo[i].b] += flow;
  }
  for (int v = 1; v < 5; ++v) EXPECT_EQ(net[v], 0) << "node " << v;
  EXPECT_EQ(net[0], -net[5]);
}

TEST(MinCostFlow, InputValidation) {
  MinCostFlow f(3);
  EXPECT_THROW(f.add_edge(-1, 0, 1, 1), InvalidArgument);
  EXPECT_THROW(f.add_edge(0, 3, 1, 1), InvalidArgument);
  EXPECT_THROW(f.add_edge(0, 1, -1, 1), InvalidArgument);
  EXPECT_THROW(f.add_edge(0, 1, 1, -1), InvalidArgument);
  EXPECT_THROW(f.solve(0, 0), InvalidArgument);
  EXPECT_THROW(f.flow_on(99), InvalidArgument);
  EXPECT_THROW(MinCostFlow(0), InvalidArgument);
}

// Brute-force optimal assignment: n tasks × m slots, each task uses
// exactly one slot, slot capacities 1, minimize total cost. Compare
// against the flow solver on random instances.
long long brute_force_assignment(const std::vector<std::vector<long long>>&
                                     cost) {
  const int n = static_cast<int>(cost.size());
  const int m = static_cast<int>(cost[0].size());
  std::vector<int> slots(m);
  std::iota(slots.begin(), slots.end(), 0);
  long long best = LLONG_MAX;
  // Permute slot choices for tasks (n <= m <= 7 keeps this tractable).
  std::vector<int> choice(n);
  const std::function<void(int, long long, int)> rec =
      [&](int task, long long acc, int used_mask) {
        if (acc >= best) return;
        if (task == n) {
          best = acc;
          return;
        }
        for (int s = 0; s < m; ++s) {
          if (used_mask & (1 << s)) continue;
          rec(task + 1, acc + cost[task][s], used_mask | (1 << s));
        }
      };
  rec(0, 0, 0);
  return best;
}

class RandomAssignment : public ::testing::TestWithParam<int> {};

TEST_P(RandomAssignment, MatchesBruteForce) {
  Rng rng(GetParam());
  const int n = 3 + static_cast<int>(rng.uniform_u64(3));  // tasks
  const int m = n + static_cast<int>(rng.uniform_u64(2));  // slots
  std::vector<std::vector<long long>> cost(
      n, std::vector<long long>(m));
  for (auto& row : cost)
    for (auto& c : row) c = static_cast<long long>(rng.uniform_u64(50));

  // Flow encoding: 0 = source, 1..n tasks, n+1..n+m slots, sink last.
  MinCostFlow f(n + m + 2);
  const int sink = n + m + 1;
  for (int i = 0; i < n; ++i) f.add_edge(0, 1 + i, 1, 0);
  for (int i = 0; i < n; ++i)
    for (int s = 0; s < m; ++s)
      f.add_edge(1 + i, 1 + n + s, 1, cost[i][s]);
  for (int s = 0; s < m; ++s) f.add_edge(1 + n + s, sink, 1, 0);

  const auto r = f.solve(0, sink);
  EXPECT_EQ(r.flow, n);
  EXPECT_EQ(r.cost, brute_force_assignment(cost));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomAssignment,
                         ::testing::Range(1, 21));

}  // namespace
}  // namespace gm::core
