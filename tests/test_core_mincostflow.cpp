// Min-cost max-flow solver tests: hand-checked instances, property
// checks (flow conservation, capacity limits) and optimality against
// brute force on random small bipartite assignment instances.

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <numeric>
#include <vector>

#include "core/mincost_flow.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace gm::core {
namespace {

TEST(MinCostFlow, SingleEdge) {
  MinCostFlow f(2);
  const int e = f.add_edge(0, 1, 5, 3);
  const auto r = f.solve(0, 1);
  EXPECT_EQ(r.flow, 5);
  EXPECT_EQ(r.cost, 15);
  EXPECT_EQ(f.flow_on(e), 5);
}

TEST(MinCostFlow, PrefersCheaperPath) {
  // Two parallel 2-hop paths, cheap one has capacity 1.
  MinCostFlow f(4);
  const int cheap_a = f.add_edge(0, 1, 1, 0);
  const int cheap_b = f.add_edge(1, 3, 1, 0);
  const int dear_a = f.add_edge(0, 2, 10, 5);
  const int dear_b = f.add_edge(2, 3, 10, 5);
  const auto r = f.solve(0, 3, 3);
  EXPECT_EQ(r.flow, 3);
  EXPECT_EQ(r.cost, 0 + 2 * 10);
  EXPECT_EQ(f.flow_on(cheap_a), 1);
  EXPECT_EQ(f.flow_on(cheap_b), 1);
  EXPECT_EQ(f.flow_on(dear_a), 2);
  EXPECT_EQ(f.flow_on(dear_b), 2);
}

TEST(MinCostFlow, RespectsMaxFlowBound) {
  MinCostFlow f(2);
  f.add_edge(0, 1, 100, 1);
  const auto r = f.solve(0, 1, 7);
  EXPECT_EQ(r.flow, 7);
  EXPECT_EQ(r.cost, 7);
}

TEST(MinCostFlow, DisconnectedYieldsZero) {
  MinCostFlow f(3);
  f.add_edge(0, 1, 10, 1);
  const auto r = f.solve(0, 2);
  EXPECT_EQ(r.flow, 0);
  EXPECT_EQ(r.cost, 0);
}

TEST(MinCostFlow, ClassicAugmentingRequiresReroute) {
  // The textbook case where a later augmentation must push flow back
  // over an earlier choice via the residual edge.
  MinCostFlow f(4);
  f.add_edge(0, 1, 1, 1);
  f.add_edge(0, 2, 1, 4);
  f.add_edge(1, 2, 1, 1);
  f.add_edge(1, 3, 1, 5);
  f.add_edge(2, 3, 1, 1);
  const auto r = f.solve(0, 3);
  EXPECT_EQ(r.flow, 2);
  // Optimal: 0→1→2→3 (cost 3) + 0→2? cap used... optimum is 9:
  // path A 0→1→3 (6) and path B 0→2→3 (5) = 11 vs
  // 0→1→2→3 (3) + 0→2→3 blocked (cap 2→3 =1) → must use 0→1→3:
  // flows: 0→1→2→3 and 0→1 can't (cap 1). Enumerate: the two units
  // must leave via 0→1 and 0→2 and arrive via 1→3 and 2→3:
  //   unit1: 0→1→3 = 6, unit2: 0→2→3 = 5  → 11
  //   unit1: 0→1→2→3 = 3, unit2: 0→2→?   2→3 taken → infeasible
  // so optimum = 11.
  EXPECT_EQ(r.cost, 11);
}

TEST(MinCostFlow, FlowConservationAtInternalNodes) {
  MinCostFlow f(6);
  std::vector<int> edges;
  Rng rng(5);
  // Random graph source=0 sink=5.
  struct E { int a, b; long long cap; };
  std::vector<E> topo;
  for (int a = 0; a < 5; ++a)
    for (int b = 1; b < 6; ++b)
      if (a != b) {
        const long long cap = static_cast<long long>(rng.uniform_u64(4));
        topo.push_back({a, b, cap});
        edges.push_back(f.add_edge(a, b, cap,
                                   static_cast<long long>(
                                       rng.uniform_u64(10))));
      }
  f.solve(0, 5);
  std::vector<long long> net(6, 0);
  for (std::size_t i = 0; i < edges.size(); ++i) {
    const long long flow = f.flow_on(edges[i]);
    EXPECT_GE(flow, 0);
    EXPECT_LE(flow, topo[i].cap);
    net[topo[i].a] -= flow;
    net[topo[i].b] += flow;
  }
  for (int v = 1; v < 5; ++v) EXPECT_EQ(net[v], 0) << "node " << v;
  EXPECT_EQ(net[0], -net[5]);
}

TEST(MinCostFlow, InputValidation) {
  MinCostFlow f(3);
  EXPECT_THROW(f.add_edge(-1, 0, 1, 1), InvalidArgument);
  EXPECT_THROW(f.add_edge(0, 3, 1, 1), InvalidArgument);
  EXPECT_THROW(f.add_edge(0, 1, -1, 1), InvalidArgument);
  EXPECT_THROW(f.add_edge(0, 1, 1, -1), InvalidArgument);
  EXPECT_THROW(f.solve(0, 0), InvalidArgument);
  EXPECT_THROW(f.flow_on(99), InvalidArgument);
  EXPECT_THROW(MinCostFlow(0), InvalidArgument);
}

// Brute-force optimal assignment: n tasks × m slots, each task uses
// exactly one slot, slot capacities 1, minimize total cost. Compare
// against the flow solver on random instances.
long long brute_force_assignment(const std::vector<std::vector<long long>>&
                                     cost) {
  const int n = static_cast<int>(cost.size());
  const int m = static_cast<int>(cost[0].size());
  std::vector<int> slots(m);
  std::iota(slots.begin(), slots.end(), 0);
  long long best = LLONG_MAX;
  // Permute slot choices for tasks (n <= m <= 7 keeps this tractable).
  std::vector<int> choice(n);
  const std::function<void(int, long long, int)> rec =
      [&](int task, long long acc, int used_mask) {
        if (acc >= best) return;
        if (task == n) {
          best = acc;
          return;
        }
        for (int s = 0; s < m; ++s) {
          if (used_mask & (1 << s)) continue;
          rec(task + 1, acc + cost[task][s], used_mask | (1 << s));
        }
      };
  rec(0, 0, 0);
  return best;
}

class RandomAssignment : public ::testing::TestWithParam<int> {};

TEST_P(RandomAssignment, MatchesBruteForce) {
  Rng rng(GetParam());
  const int n = 3 + static_cast<int>(rng.uniform_u64(3));  // tasks
  const int m = n + static_cast<int>(rng.uniform_u64(2));  // slots
  std::vector<std::vector<long long>> cost(
      n, std::vector<long long>(m));
  for (auto& row : cost)
    for (auto& c : row) c = static_cast<long long>(rng.uniform_u64(50));

  // Flow encoding: 0 = source, 1..n tasks, n+1..n+m slots, sink last.
  MinCostFlow f(n + m + 2);
  const int sink = n + m + 1;
  for (int i = 0; i < n; ++i) f.add_edge(0, 1 + i, 1, 0);
  for (int i = 0; i < n; ++i)
    for (int s = 0; s < m; ++s)
      f.add_edge(1 + i, 1 + n + s, 1, cost[i][s]);
  for (int s = 0; s < m; ++s) f.add_edge(1 + n + s, sink, 1, 0);

  const auto r = f.solve(0, sink);
  EXPECT_EQ(r.flow, n);
  EXPECT_EQ(r.cost, brute_force_assignment(cost));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomAssignment,
                         ::testing::Range(1, 21));

// ---- warm starts and the radix queue --------------------------------

/// A reusable random layered instance roughly shaped like the planner
/// network: source → mid layer → late layer → sink, mixed capacities.
struct RandomNetwork {
  struct E {
    int a, b;
    long long cap, cost;
  };
  std::vector<E> edges;
  int nodes = 0;

  explicit RandomNetwork(std::uint64_t seed) {
    Rng rng(seed);
    const int mids = 3 + static_cast<int>(rng.uniform_u64(4));
    const int lates = 3 + static_cast<int>(rng.uniform_u64(4));
    nodes = 2 + mids + lates;
    const int sink = nodes - 1;
    for (int m = 0; m < mids; ++m) {
      edges.push_back({0, 1 + m,
                       1 + static_cast<long long>(rng.uniform_u64(4)),
                       static_cast<long long>(rng.uniform_u64(8))});
      for (int l = 0; l < lates; ++l)
        if (rng.uniform_u64(3) != 0)
          edges.push_back({1 + m, 1 + mids + l,
                           1 + static_cast<long long>(rng.uniform_u64(3)),
                           static_cast<long long>(rng.uniform_u64(20))});
    }
    for (int l = 0; l < lates; ++l)
      edges.push_back({1 + mids + l, sink,
                       1 + static_cast<long long>(rng.uniform_u64(4)),
                       static_cast<long long>(rng.uniform_u64(1000))});
  }

  std::vector<int> build(MinCostFlow& f) const {
    f.reset(nodes);
    std::vector<int> ids;
    for (const auto& e : edges)
      ids.push_back(f.add_edge(e.a, e.b, e.cap, e.cost));
    return ids;
  }
};

/// Shortest original-cost distances from the source — the canonical
/// feasible potential for a *fresh* network (triangle inequality ⇒
/// non-negative reduced costs on every edge). Note the solver's final
/// potentials are feasible only for the *residual* network it solved:
/// a saturated forward edge regains capacity on a rebuild and may go
/// reduced-negative, which is exactly what the O(E) validation at the
/// warm-start seam catches (see InvalidSeedFallsBack). Callers like
/// the planner therefore clamp before re-seeding.
std::vector<long long> bellman_potentials(const RandomNetwork& net) {
  std::vector<long long> dist(static_cast<std::size_t>(net.nodes),
                              LLONG_MAX / 8);
  dist[0] = 0;
  for (int pass = 0; pass < net.nodes; ++pass)
    for (const auto& e : net.edges)
      if (dist[e.a] < LLONG_MAX / 8)
        dist[e.b] = std::min(dist[e.b], dist[e.a] + e.cost);
  return dist;  // unreachable nodes keep a large, overflow-safe value
}

/// Every residual edge must keep a non-negative reduced cost under the
/// solver's final potentials — the invariant warm starts rely on.
void expect_reduced_costs_nonnegative(const RandomNetwork& net,
                                      const MinCostFlow& f,
                                      const std::vector<int>& ids) {
  const auto& pot = f.potentials();
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const auto& e = net.edges[i];
    const long long flow = f.flow_on(ids[i]);
    if (e.cap - flow > 0)  // forward residual
      EXPECT_GE(e.cost + pot[e.a] - pot[e.b], 0)
          << "edge " << e.a << "->" << e.b;
    if (flow > 0)  // reverse residual
      EXPECT_GE(-e.cost + pot[e.b] - pot[e.a], 0)
          << "edge " << e.b << "->" << e.a << " (residual)";
  }
}

class WarmStart : public ::testing::TestWithParam<int> {};

TEST_P(WarmStart, SameCostAsColdAndInvariantHolds) {
  const RandomNetwork net(static_cast<std::uint64_t>(GetParam()));
  MinCostFlow f(1);
  auto ids = net.build(f);
  const auto cold = f.solve(0, net.nodes - 1);
  expect_reduced_costs_nonnegative(net, f, ids);

  const auto warm_seed = bellman_potentials(net);
  ids = net.build(f);  // identical network, fresh flow
  const auto before = f.warm_accepts();
  const auto warm = f.solve(0, net.nodes - 1, LLONG_MAX / 4, warm_seed);
  EXPECT_EQ(f.warm_accepts(), before + 1);
  EXPECT_EQ(warm.flow, cold.flow);
  EXPECT_EQ(warm.cost, cold.cost);
  expect_reduced_costs_nonnegative(net, f, ids);
}

TEST_P(WarmStart, InvalidSeedFallsBackToCold) {
  const RandomNetwork net(static_cast<std::uint64_t>(GetParam()));
  MinCostFlow f(1);
  net.build(f);
  const auto cold = f.solve(0, net.nodes - 1);

  // A seed that makes some reduced cost negative: a huge potential on
  // the sink forces every edge into it negative.
  std::vector<long long> bad(static_cast<std::size_t>(net.nodes), 0);
  bad[static_cast<std::size_t>(net.nodes) - 1] = 1'000'000'000;
  net.build(f);
  const auto rejects = f.warm_rejects();
  const auto r = f.solve(0, net.nodes - 1, LLONG_MAX / 4, bad);
  EXPECT_EQ(f.warm_rejects(), rejects + 1);
  EXPECT_EQ(r.flow, cold.flow);
  EXPECT_EQ(r.cost, cold.cost);
}

TEST_P(WarmStart, SizeMismatchFallsBackToCold) {
  const RandomNetwork net(static_cast<std::uint64_t>(GetParam()));
  MinCostFlow f(1);
  net.build(f);
  const auto cold = f.solve(0, net.nodes - 1);
  net.build(f);
  const auto rejects = f.warm_rejects();
  const auto r = f.solve(0, net.nodes - 1, LLONG_MAX / 4,
                         std::vector<long long>(3, 0));
  EXPECT_EQ(f.warm_rejects(), rejects + 1);
  EXPECT_EQ(r.flow, cold.flow);
  EXPECT_EQ(r.cost, cold.cost);
}

TEST_P(WarmStart, RadixQueueMatchesBinaryHeap) {
  const RandomNetwork net(static_cast<std::uint64_t>(GetParam()));
  MinCostFlow f(1);
  net.build(f);
  const auto binary = f.solve(0, net.nodes - 1);

  f.set_queue(MinCostFlow::QueueKind::kRadix);
  auto ids = net.build(f);
  const auto radix = f.solve(0, net.nodes - 1);
  EXPECT_EQ(radix.flow, binary.flow);
  EXPECT_EQ(radix.cost, binary.cost);
  expect_reduced_costs_nonnegative(net, f, ids);

  // Warm-started radix solve still agrees.
  const auto warm_seed = bellman_potentials(net);
  net.build(f);
  const auto before = f.warm_accepts();
  const auto warm = f.solve(0, net.nodes - 1, LLONG_MAX / 4, warm_seed);
  EXPECT_EQ(f.warm_accepts(), before + 1);
  EXPECT_EQ(warm.flow, binary.flow);
  EXPECT_EQ(warm.cost, binary.cost);
}

INSTANTIATE_TEST_SUITE_P(Seeds, WarmStart, ::testing::Range(1, 26));

TEST(MinCostFlow, SolveStatsCountWork) {
  MinCostFlow f(4);
  f.add_edge(0, 1, 1, 0);
  f.add_edge(1, 3, 1, 0);
  f.add_edge(0, 2, 10, 5);
  f.add_edge(2, 3, 10, 5);
  const auto r = f.solve(0, 3, 3);
  EXPECT_EQ(r.flow, 3);
  const auto& st = f.last_stats();
  EXPECT_EQ(st.nodes, 4);
  EXPECT_EQ(st.arcs, 4u);
  EXPECT_FALSE(st.warm);
  // Every augmenting path is found by one Dijkstra; the final run
  // discovers there is no more flow to send.
  EXPECT_GT(st.augmenting_paths, 0u);
  EXPECT_GE(st.dijkstra_runs, st.augmenting_paths);
  EXPECT_GT(st.dijkstra_pops, 0u);
  EXPECT_GT(st.dijkstra_relaxations, 0u);
  EXPECT_GT(st.arena_bytes, 0u);
  // `classes` belongs to the planner, never the solver.
  EXPECT_EQ(st.classes, 0u);
}

TEST(MinCostFlow, SolveStatsResetPerSolveAndMarkWarm) {
  MinCostFlow f(2);
  f.add_edge(0, 1, 5, 3);
  f.solve(0, 1);
  const auto cold_runs = f.last_stats().dijkstra_runs;
  EXPECT_GT(cold_runs, 0u);
  EXPECT_FALSE(f.last_stats().warm);

  // Re-solving the identical network with the final potentials as the
  // warm seed must be accepted and tagged as warm, with the counters
  // describing only the new solve.
  const auto seed = f.potentials();
  f.reset(2);
  f.add_edge(0, 1, 5, 3);
  const auto warm = f.solve(0, 1, LLONG_MAX / 4, seed);
  EXPECT_EQ(warm.flow, 5);
  EXPECT_TRUE(f.last_stats().warm);
  EXPECT_LE(f.last_stats().dijkstra_runs, cold_runs);
  EXPECT_EQ(f.last_stats().arcs, 1u);
}

TEST(MinCostFlowRadix, MatchesBruteForceAssignment) {
  for (int seed = 1; seed <= 20; ++seed) {
    Rng rng(static_cast<std::uint64_t>(seed));
    const int n = 3 + static_cast<int>(rng.uniform_u64(3));
    const int m = n + static_cast<int>(rng.uniform_u64(2));
    std::vector<std::vector<long long>> cost(
        n, std::vector<long long>(m));
    for (auto& row : cost)
      for (auto& c : row)
        c = static_cast<long long>(rng.uniform_u64(50));

    MinCostFlow f(n + m + 2);
    f.set_queue(MinCostFlow::QueueKind::kRadix);
    const int sink = n + m + 1;
    for (int i = 0; i < n; ++i) f.add_edge(0, 1 + i, 1, 0);
    for (int i = 0; i < n; ++i)
      for (int s = 0; s < m; ++s)
        f.add_edge(1 + i, 1 + n + s, 1, cost[i][s]);
    for (int s = 0; s < m; ++s) f.add_edge(1 + n + s, sink, 1, 0);

    const auto r = f.solve(0, sink);
    EXPECT_EQ(r.flow, n) << "seed " << seed;
    EXPECT_EQ(r.cost, brute_force_assignment(cost)) << "seed " << seed;
  }
}

// ---- the cost-scaling solver ----------------------------------------
//
// SolverKind::kCostScaling must return the exact SSP objective (same
// flow value, same cost) on every network — the hand instances above
// re-run under it, plus random-network agreement and the incremental
// re-optimization seams (patch accept/reject, stranded-flow excess
// conversion, forced budget-abort fallback). docs/solver.md describes
// the algorithm and the patch contract these tests pin down.

MinCostFlow make_cs(int nodes) {
  MinCostFlow f(nodes);
  f.set_solver(MinCostFlow::SolverKind::kCostScaling);
  return f;
}

TEST(CostScaling, SingleEdge) {
  auto f = make_cs(2);
  const int e = f.add_edge(0, 1, 5, 3);
  const auto r = f.solve(0, 1);
  EXPECT_EQ(r.flow, 5);
  EXPECT_EQ(r.cost, 15);
  EXPECT_EQ(f.flow_on(e), 5);
  EXPECT_EQ(f.last_stats().incremental_rebuilds, 1u);
  EXPECT_EQ(f.last_stats().incremental_accepts, 0u);
}

TEST(CostScaling, PrefersCheaperPath) {
  // Unique optimum, so the per-edge flows are pinned, not just the
  // objective.
  auto f = make_cs(4);
  const int cheap_a = f.add_edge(0, 1, 1, 0);
  const int cheap_b = f.add_edge(1, 3, 1, 0);
  const int dear_a = f.add_edge(0, 2, 10, 5);
  const int dear_b = f.add_edge(2, 3, 10, 5);
  const auto r = f.solve(0, 3, 3);
  EXPECT_EQ(r.flow, 3);
  EXPECT_EQ(r.cost, 0 + 2 * 10);
  EXPECT_EQ(f.flow_on(cheap_a), 1);
  EXPECT_EQ(f.flow_on(cheap_b), 1);
  EXPECT_EQ(f.flow_on(dear_a), 2);
  EXPECT_EQ(f.flow_on(dear_b), 2);
}

TEST(CostScaling, RespectsMaxFlowBound) {
  auto f = make_cs(2);
  f.add_edge(0, 1, 100, 1);
  const auto r = f.solve(0, 1, 7);
  EXPECT_EQ(r.flow, 7);
  EXPECT_EQ(r.cost, 7);
}

TEST(CostScaling, DisconnectedYieldsZero) {
  auto f = make_cs(3);
  f.add_edge(0, 1, 10, 1);
  const auto r = f.solve(0, 2);
  EXPECT_EQ(r.flow, 0);
  EXPECT_EQ(r.cost, 0);
}

TEST(CostScaling, ClassicAugmentingRequiresReroute) {
  auto f = make_cs(4);
  f.add_edge(0, 1, 1, 1);
  f.add_edge(0, 2, 1, 4);
  f.add_edge(1, 2, 1, 1);
  f.add_edge(1, 3, 1, 5);
  f.add_edge(2, 3, 1, 1);
  const auto r = f.solve(0, 3);
  EXPECT_EQ(r.flow, 2);
  EXPECT_EQ(r.cost, 11);  // see the SSP twin for the enumeration
}

TEST(CostScaling, MatchesBruteForceAssignment) {
  for (int seed = 1; seed <= 20; ++seed) {
    Rng rng(static_cast<std::uint64_t>(seed));
    const int n = 3 + static_cast<int>(rng.uniform_u64(3));
    const int m = n + static_cast<int>(rng.uniform_u64(2));
    std::vector<std::vector<long long>> cost(
        n, std::vector<long long>(m));
    for (auto& row : cost)
      for (auto& c : row)
        c = static_cast<long long>(rng.uniform_u64(50));

    auto f = make_cs(n + m + 2);
    const int sink = n + m + 1;
    for (int i = 0; i < n; ++i) f.add_edge(0, 1 + i, 1, 0);
    for (int i = 0; i < n; ++i)
      for (int s = 0; s < m; ++s)
        f.add_edge(1 + i, 1 + n + s, 1, cost[i][s]);
    for (int s = 0; s < m; ++s) f.add_edge(1 + n + s, sink, 1, 0);

    const auto r = f.solve(0, sink);
    EXPECT_EQ(r.flow, n) << "seed " << seed;
    EXPECT_EQ(r.cost, brute_force_assignment(cost)) << "seed " << seed;
  }
}

/// Per-edge writeback sanity for a solved cost-scaling network:
/// capacities respected, conservation at every internal node.
void expect_cs_flows_consistent(const RandomNetwork& net,
                                const MinCostFlow& f,
                                const std::vector<int>& ids) {
  std::vector<long long> net_flow(static_cast<std::size_t>(net.nodes),
                                  0);
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const long long flow = f.flow_on(ids[i]);
    EXPECT_GE(flow, 0);
    EXPECT_LE(flow, net.edges[i].cap);
    net_flow[static_cast<std::size_t>(net.edges[i].a)] -= flow;
    net_flow[static_cast<std::size_t>(net.edges[i].b)] += flow;
  }
  for (int v = 1; v < net.nodes - 1; ++v)
    EXPECT_EQ(net_flow[static_cast<std::size_t>(v)], 0)
        << "node " << v;
  EXPECT_EQ(net_flow[0],
            -net_flow[static_cast<std::size_t>(net.nodes) - 1]);
}

class CostScalingRandom : public ::testing::TestWithParam<int> {};

TEST_P(CostScalingRandom, MatchesSspObjective) {
  const RandomNetwork net(static_cast<std::uint64_t>(GetParam()));
  MinCostFlow ssp(1);
  net.build(ssp);
  const auto cold = ssp.solve(0, net.nodes - 1);

  auto cs = make_cs(1);
  const auto ids = net.build(cs);
  const auto r = cs.solve(0, net.nodes - 1);
  EXPECT_EQ(r.flow, cold.flow);
  EXPECT_EQ(r.cost, cold.cost);
  expect_cs_flows_consistent(net, cs, ids);

  // A binding max-flow bound exercises the slack arc's partial-supply
  // path (the bound becomes the supply, the slack carries the rest).
  if (cold.flow > 1) {
    const long long bound = cold.flow - 1;
    MinCostFlow ssp2(1);
    net.build(ssp2);
    const auto want = ssp2.solve(0, net.nodes - 1, bound);
    auto cs2 = make_cs(1);
    net.build(cs2);
    const auto got = cs2.solve(0, net.nodes - 1, bound);
    EXPECT_EQ(got.flow, want.flow);
    EXPECT_EQ(got.cost, want.cost);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CostScalingRandom,
                         ::testing::Range(1, 26));

TEST(CostScaling, SolveStatsCountScalingWork) {
  auto f = make_cs(4);
  f.add_edge(0, 1, 1, 0);
  f.add_edge(1, 3, 1, 0);
  f.add_edge(0, 2, 10, 5);
  f.add_edge(2, 3, 10, 5);
  const auto r = f.solve(0, 3, 3);
  EXPECT_EQ(r.flow, 3);
  const auto& st = f.last_stats();
  EXPECT_EQ(st.nodes, 4);
  EXPECT_EQ(st.arcs, 4u);
  EXPECT_GT(st.cs_phases, 0u);
  EXPECT_GT(st.cs_pushes, 0u);
  EXPECT_EQ(st.incremental_rebuilds, 1u);
  EXPECT_GT(st.arena_bytes, 0u);
  // The Dijkstra counters belong to the SSP path and stay zero here,
  // as do the warm-start fields.
  EXPECT_EQ(st.dijkstra_runs, 0u);
  EXPECT_EQ(st.augmenting_paths, 0u);
  EXPECT_FALSE(st.warm);
}

TEST(CostScaling, WarmSeedIsIgnoredWithoutTouchingCounters) {
  // The warm-started solve() overload is an SSP feature; under
  // kCostScaling the seed is dropped silently — no accept, no reject.
  const RandomNetwork net(9);
  MinCostFlow ssp(1);
  net.build(ssp);
  const auto cold = ssp.solve(0, net.nodes - 1);

  auto cs = make_cs(1);
  net.build(cs);
  const std::vector<long long> seed(
      static_cast<std::size_t>(net.nodes), 0);
  const auto r =
      cs.solve(0, net.nodes - 1, LLONG_MAX / 4, seed);
  EXPECT_EQ(r.flow, cold.flow);
  EXPECT_EQ(r.cost, cold.cost);
  EXPECT_EQ(cs.warm_accepts(), 0u);
  EXPECT_EQ(cs.warm_rejects(), 0u);
  EXPECT_FALSE(cs.last_stats().warm);
}

// ---- incremental re-optimization ------------------------------------

TEST(CostScalingIncremental, IdenticalResolveIsPatched) {
  const RandomNetwork net(3);
  auto f = make_cs(1);
  net.build(f);
  const auto first = f.solve(0, net.nodes - 1);
  EXPECT_EQ(f.incremental_rebuilds(), 1u);
  EXPECT_EQ(f.incremental_accepts(), 0u);

  net.build(f);  // reset() + add_edge; the diff happens inside solve()
  const auto second = f.solve(0, net.nodes - 1);
  EXPECT_EQ(f.incremental_accepts(), 1u);
  EXPECT_EQ(f.incremental_rebuilds(), 1u);
  EXPECT_EQ(f.last_stats().incremental_accepts, 1u);
  EXPECT_EQ(f.last_stats().incremental_rebuilds, 0u);
  EXPECT_EQ(second.flow, first.flow);
  EXPECT_EQ(second.cost, first.cost);
}

TEST(CostScalingIncremental, NodeCountChangeForcesRebuild) {
  auto f = make_cs(2);
  f.add_edge(0, 1, 5, 3);
  f.solve(0, 1);
  f.reset(3);
  f.add_edge(0, 1, 5, 3);
  f.add_edge(1, 2, 5, 2);
  const auto r = f.solve(0, 2);
  EXPECT_EQ(r.flow, 5);
  EXPECT_EQ(r.cost, 25);
  EXPECT_EQ(f.incremental_rebuilds(), 2u);
  EXPECT_EQ(f.incremental_accepts(), 0u);
}

TEST(CostScalingIncremental, LargeDiffForcesRebuild) {
  // 12 disjoint two-hop paths, then 10 brand-new arc pairs: the diff
  // (10 adds) exceeds max(8, live/4) = max(8, 6) and must be rejected
  // in favour of a cold rebuild — with the same objective.
  const auto build = [](MinCostFlow& f, bool extra) {
    f.reset(14);
    for (int i = 1; i <= 12; ++i) {
      f.add_edge(0, i, 1, i);
      f.add_edge(i, 13, 1, 0);
    }
    if (extra)
      for (int i = 1; i <= 10; ++i) f.add_edge(i, i + 1, 0, 1);
  };
  auto f = make_cs(1);
  build(f, false);
  const auto first = f.solve(0, 13);
  EXPECT_EQ(first.flow, 12);
  build(f, true);
  const auto second = f.solve(0, 13);
  EXPECT_EQ(second.flow, first.flow);
  EXPECT_EQ(second.cost, first.cost);  // the new arcs have zero cap
  EXPECT_EQ(f.incremental_rebuilds(), 2u);
  EXPECT_EQ(f.incremental_accepts(), 0u);
}

TEST(CostScalingIncremental, MaxFlowBoundChangeIsPatched) {
  // Supply shrink strands flow on the slack arc (excess conversion);
  // supply growth re-runs the ladder from the retained prices. Both
  // are endpoint-preserving patches.
  auto f = make_cs(2);
  f.add_edge(0, 1, 100, 1);
  auto r = f.solve(0, 1, 7);
  EXPECT_EQ(r.flow, 7);
  f.reset(2);
  f.add_edge(0, 1, 100, 1);
  r = f.solve(0, 1, 3);
  EXPECT_EQ(r.flow, 3);
  EXPECT_EQ(r.cost, 3);
  f.reset(2);
  f.add_edge(0, 1, 100, 1);
  r = f.solve(0, 1, 50);
  EXPECT_EQ(r.flow, 50);
  EXPECT_EQ(r.cost, 50);
  EXPECT_EQ(f.incremental_accepts(), 2u);
  EXPECT_EQ(f.incremental_rebuilds(), 1u);
}

TEST(CostScalingIncremental, CapacityCutBelowFlowIsPatched) {
  // Cutting a flow-carrying arc below its flow converts the overhang
  // into an excess/deficit pair that the next refine re-routes (here:
  // back to the source and out via the slack arc).
  auto f = make_cs(3);
  f.add_edge(0, 1, 5, 1);
  f.add_edge(1, 2, 5, 1);
  auto r = f.solve(0, 2);
  EXPECT_EQ(r.flow, 5);
  f.reset(3);
  f.add_edge(0, 1, 5, 1);
  f.add_edge(1, 2, 2, 1);
  r = f.solve(0, 2);
  EXPECT_EQ(r.flow, 2);
  EXPECT_EQ(r.cost, 4);
  EXPECT_EQ(f.incremental_accepts(), 1u);
}

TEST(CostScalingIncremental, SupplyEdgeFlipsToZeroIsPatched) {
  // The planner's "green supply vanished this slot" shape: a parallel
  // cheap/dear arc pair where the cheap one's capacity drops to zero
  // between solves. Endpoints are stable, so the patch must match.
  const auto build = [](MinCostFlow& f, long long green_cap) {
    f.reset(3);
    f.add_edge(0, 1, green_cap, 0);  // green
    f.add_edge(0, 1, 10, 5);         // brown
    f.add_edge(1, 2, 8, 0);
  };
  auto cs = make_cs(1);
  MinCostFlow ssp(1);
  for (const long long green_cap : {4LL, 0LL}) {
    build(cs, green_cap);
    const auto got = cs.solve(0, 2);
    build(ssp, green_cap);
    const auto want = ssp.solve(0, 2);
    EXPECT_EQ(got.flow, want.flow) << "green cap " << green_cap;
    EXPECT_EQ(got.cost, want.cost) << "green cap " << green_cap;
  }
  EXPECT_EQ(cs.incremental_accepts(), 1u);
  EXPECT_EQ(cs.incremental_rebuilds(), 1u);
}

TEST(CostScalingIncremental, BudgetAbortFallsBackToColdRebuild) {
  // A patched solve that blows its relabel budget must invalidate the
  // retained state and re-solve from a cold build — same objective,
  // counted as a rebuild. The test hook pins the budget to 1 relabel
  // for patched solves only; the capacity cut below strands 4 units
  // four hops from their deficit, which no single relabel can route.
  const auto build = [](MinCostFlow& f, long long mid_cap) {
    f.reset(6);
    for (int i = 0; i < 5; ++i)
      f.add_edge(i, i + 1, i == 3 ? mid_cap : 5, 1);
    f.add_edge(0, 5, 5, 50);
  };
  auto f = make_cs(1);
  build(f, 5);
  const auto first = f.solve(0, 5);
  EXPECT_EQ(first.flow, 10);
  EXPECT_EQ(first.cost, 5 * 5 + 5 * 50);

  f.set_test_relabel_limit(1);
  build(f, 1);
  const auto second = f.solve(0, 5);
  EXPECT_EQ(second.flow, 6);
  EXPECT_EQ(second.cost, 1 * 5 + 5 * 50);
  EXPECT_EQ(f.incremental_accepts(), 0u);
  EXPECT_EQ(f.incremental_rebuilds(), 2u);
  EXPECT_EQ(f.last_stats().incremental_rebuilds, 1u);

  // With the hook released the same patch succeeds incrementally.
  f.set_test_relabel_limit(0);
  build(f, 2);
  const auto third = f.solve(0, 5);
  EXPECT_EQ(third.flow, 7);
  EXPECT_EQ(third.cost, 2 * 5 + 5 * 50);
  EXPECT_EQ(f.incremental_accepts(), 1u);
  EXPECT_EQ(f.incremental_rebuilds(), 2u);
}

TEST(CostScalingIncremental, DisabledIncrementalAlwaysRebuilds) {
  const RandomNetwork net(5);
  auto f = make_cs(1);
  f.set_incremental(false);
  net.build(f);
  const auto first = f.solve(0, net.nodes - 1);
  net.build(f);
  const auto second = f.solve(0, net.nodes - 1);
  EXPECT_EQ(second.flow, first.flow);
  EXPECT_EQ(second.cost, first.cost);
  EXPECT_EQ(f.incremental_rebuilds(), 2u);
  EXPECT_EQ(f.incremental_accepts(), 0u);

  f.set_incremental(true);
  net.build(f);
  f.solve(0, net.nodes - 1);
  EXPECT_EQ(f.incremental_accepts(), 1u);
}

TEST(CostScalingIncremental, SolverSwitchDropsRetainedState) {
  const RandomNetwork net(4);
  auto f = make_cs(1);
  net.build(f);
  f.solve(0, net.nodes - 1);
  EXPECT_EQ(f.incremental_rebuilds(), 1u);
  // A round trip through SSP invalidates the residual state: the next
  // cost-scaling solve has nothing to diff against and builds cold.
  f.set_solver(MinCostFlow::SolverKind::kSuccessiveShortestPath);
  f.set_solver(MinCostFlow::SolverKind::kCostScaling);
  net.build(f);
  f.solve(0, net.nodes - 1);
  EXPECT_EQ(f.incremental_rebuilds(), 2u);
  EXPECT_EQ(f.incremental_accepts(), 0u);
}

class CostScalingDrift : public ::testing::TestWithParam<int> {};

// A drifting network sequence — cost bumps, capacity edits (including
// to zero), arc removals and insertions — re-solved incrementally must
// match a cold SSP solve of every instance, with most steps accepted
// as patches (each step's diff is at most a few arcs).
TEST_P(CostScalingDrift, SequenceMatchesColdSsp) {
  RandomNetwork net(static_cast<std::uint64_t>(GetParam()));
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 977 + 5);
  auto cs = make_cs(1);
  for (int step = 0; step < 10; ++step) {
    const auto ids = net.build(cs);
    const auto got = cs.solve(0, net.nodes - 1);
    MinCostFlow ssp(1);
    net.build(ssp);
    const auto want = ssp.solve(0, net.nodes - 1);
    ASSERT_EQ(got.flow, want.flow)
        << "seed " << GetParam() << " step " << step;
    ASSERT_EQ(got.cost, want.cost)
        << "seed " << GetParam() << " step " << step;
    expect_cs_flows_consistent(net, cs, ids);

    // Drift: a couple of in-place edits, the occasional arc churn.
    for (int k = 0; k < 2; ++k) {
      auto& e = net.edges[rng.uniform_u64(net.edges.size())];
      switch (rng.uniform_u64(3)) {
        case 0:
          e.cost = static_cast<long long>(rng.uniform_u64(1000));
          break;
        case 1:
          e.cap = static_cast<long long>(rng.uniform_u64(5));
          break;
        default:
          e.cap += 1 + static_cast<long long>(rng.uniform_u64(3));
          break;
      }
    }
    if (rng.uniform_u64(4) == 0 && net.edges.size() > 4)
      net.edges.erase(
          net.edges.begin() +
          static_cast<std::ptrdiff_t>(
              rng.uniform_u64(net.edges.size())));
    if (rng.uniform_u64(4) == 0) {
      const int a =
          static_cast<int>(rng.uniform_u64(
              static_cast<std::uint64_t>(net.nodes) - 1));
      int b = 1 + static_cast<int>(rng.uniform_u64(
                      static_cast<std::uint64_t>(net.nodes) - 1));
      if (b == a) b = net.nodes - 1;
      net.edges.push_back(
          {a, b, 1 + static_cast<long long>(rng.uniform_u64(4)),
           static_cast<long long>(rng.uniform_u64(50))});
    }
  }
  EXPECT_EQ(cs.incremental_accepts() + cs.incremental_rebuilds(), 10u);
  EXPECT_GE(cs.incremental_accepts(), 5u) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, CostScalingDrift,
                         ::testing::Range(1, 16));

}  // namespace
}  // namespace gm::core
