// Min-cost max-flow solver tests: hand-checked instances, property
// checks (flow conservation, capacity limits) and optimality against
// brute force on random small bipartite assignment instances.

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <numeric>
#include <vector>

#include "core/mincost_flow.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace gm::core {
namespace {

TEST(MinCostFlow, SingleEdge) {
  MinCostFlow f(2);
  const int e = f.add_edge(0, 1, 5, 3);
  const auto r = f.solve(0, 1);
  EXPECT_EQ(r.flow, 5);
  EXPECT_EQ(r.cost, 15);
  EXPECT_EQ(f.flow_on(e), 5);
}

TEST(MinCostFlow, PrefersCheaperPath) {
  // Two parallel 2-hop paths, cheap one has capacity 1.
  MinCostFlow f(4);
  const int cheap_a = f.add_edge(0, 1, 1, 0);
  const int cheap_b = f.add_edge(1, 3, 1, 0);
  const int dear_a = f.add_edge(0, 2, 10, 5);
  const int dear_b = f.add_edge(2, 3, 10, 5);
  const auto r = f.solve(0, 3, 3);
  EXPECT_EQ(r.flow, 3);
  EXPECT_EQ(r.cost, 0 + 2 * 10);
  EXPECT_EQ(f.flow_on(cheap_a), 1);
  EXPECT_EQ(f.flow_on(cheap_b), 1);
  EXPECT_EQ(f.flow_on(dear_a), 2);
  EXPECT_EQ(f.flow_on(dear_b), 2);
}

TEST(MinCostFlow, RespectsMaxFlowBound) {
  MinCostFlow f(2);
  f.add_edge(0, 1, 100, 1);
  const auto r = f.solve(0, 1, 7);
  EXPECT_EQ(r.flow, 7);
  EXPECT_EQ(r.cost, 7);
}

TEST(MinCostFlow, DisconnectedYieldsZero) {
  MinCostFlow f(3);
  f.add_edge(0, 1, 10, 1);
  const auto r = f.solve(0, 2);
  EXPECT_EQ(r.flow, 0);
  EXPECT_EQ(r.cost, 0);
}

TEST(MinCostFlow, ClassicAugmentingRequiresReroute) {
  // The textbook case where a later augmentation must push flow back
  // over an earlier choice via the residual edge.
  MinCostFlow f(4);
  f.add_edge(0, 1, 1, 1);
  f.add_edge(0, 2, 1, 4);
  f.add_edge(1, 2, 1, 1);
  f.add_edge(1, 3, 1, 5);
  f.add_edge(2, 3, 1, 1);
  const auto r = f.solve(0, 3);
  EXPECT_EQ(r.flow, 2);
  // Optimal: 0→1→2→3 (cost 3) + 0→2? cap used... optimum is 9:
  // path A 0→1→3 (6) and path B 0→2→3 (5) = 11 vs
  // 0→1→2→3 (3) + 0→2→3 blocked (cap 2→3 =1) → must use 0→1→3:
  // flows: 0→1→2→3 and 0→1 can't (cap 1). Enumerate: the two units
  // must leave via 0→1 and 0→2 and arrive via 1→3 and 2→3:
  //   unit1: 0→1→3 = 6, unit2: 0→2→3 = 5  → 11
  //   unit1: 0→1→2→3 = 3, unit2: 0→2→?   2→3 taken → infeasible
  // so optimum = 11.
  EXPECT_EQ(r.cost, 11);
}

TEST(MinCostFlow, FlowConservationAtInternalNodes) {
  MinCostFlow f(6);
  std::vector<int> edges;
  Rng rng(5);
  // Random graph source=0 sink=5.
  struct E { int a, b; long long cap; };
  std::vector<E> topo;
  for (int a = 0; a < 5; ++a)
    for (int b = 1; b < 6; ++b)
      if (a != b) {
        const long long cap = static_cast<long long>(rng.uniform_u64(4));
        topo.push_back({a, b, cap});
        edges.push_back(f.add_edge(a, b, cap,
                                   static_cast<long long>(
                                       rng.uniform_u64(10))));
      }
  f.solve(0, 5);
  std::vector<long long> net(6, 0);
  for (std::size_t i = 0; i < edges.size(); ++i) {
    const long long flow = f.flow_on(edges[i]);
    EXPECT_GE(flow, 0);
    EXPECT_LE(flow, topo[i].cap);
    net[topo[i].a] -= flow;
    net[topo[i].b] += flow;
  }
  for (int v = 1; v < 5; ++v) EXPECT_EQ(net[v], 0) << "node " << v;
  EXPECT_EQ(net[0], -net[5]);
}

TEST(MinCostFlow, InputValidation) {
  MinCostFlow f(3);
  EXPECT_THROW(f.add_edge(-1, 0, 1, 1), InvalidArgument);
  EXPECT_THROW(f.add_edge(0, 3, 1, 1), InvalidArgument);
  EXPECT_THROW(f.add_edge(0, 1, -1, 1), InvalidArgument);
  EXPECT_THROW(f.add_edge(0, 1, 1, -1), InvalidArgument);
  EXPECT_THROW(f.solve(0, 0), InvalidArgument);
  EXPECT_THROW(f.flow_on(99), InvalidArgument);
  EXPECT_THROW(MinCostFlow(0), InvalidArgument);
}

// Brute-force optimal assignment: n tasks × m slots, each task uses
// exactly one slot, slot capacities 1, minimize total cost. Compare
// against the flow solver on random instances.
long long brute_force_assignment(const std::vector<std::vector<long long>>&
                                     cost) {
  const int n = static_cast<int>(cost.size());
  const int m = static_cast<int>(cost[0].size());
  std::vector<int> slots(m);
  std::iota(slots.begin(), slots.end(), 0);
  long long best = LLONG_MAX;
  // Permute slot choices for tasks (n <= m <= 7 keeps this tractable).
  std::vector<int> choice(n);
  const std::function<void(int, long long, int)> rec =
      [&](int task, long long acc, int used_mask) {
        if (acc >= best) return;
        if (task == n) {
          best = acc;
          return;
        }
        for (int s = 0; s < m; ++s) {
          if (used_mask & (1 << s)) continue;
          rec(task + 1, acc + cost[task][s], used_mask | (1 << s));
        }
      };
  rec(0, 0, 0);
  return best;
}

class RandomAssignment : public ::testing::TestWithParam<int> {};

TEST_P(RandomAssignment, MatchesBruteForce) {
  Rng rng(GetParam());
  const int n = 3 + static_cast<int>(rng.uniform_u64(3));  // tasks
  const int m = n + static_cast<int>(rng.uniform_u64(2));  // slots
  std::vector<std::vector<long long>> cost(
      n, std::vector<long long>(m));
  for (auto& row : cost)
    for (auto& c : row) c = static_cast<long long>(rng.uniform_u64(50));

  // Flow encoding: 0 = source, 1..n tasks, n+1..n+m slots, sink last.
  MinCostFlow f(n + m + 2);
  const int sink = n + m + 1;
  for (int i = 0; i < n; ++i) f.add_edge(0, 1 + i, 1, 0);
  for (int i = 0; i < n; ++i)
    for (int s = 0; s < m; ++s)
      f.add_edge(1 + i, 1 + n + s, 1, cost[i][s]);
  for (int s = 0; s < m; ++s) f.add_edge(1 + n + s, sink, 1, 0);

  const auto r = f.solve(0, sink);
  EXPECT_EQ(r.flow, n);
  EXPECT_EQ(r.cost, brute_force_assignment(cost));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomAssignment,
                         ::testing::Range(1, 21));

// ---- warm starts and the radix queue --------------------------------

/// A reusable random layered instance roughly shaped like the planner
/// network: source → mid layer → late layer → sink, mixed capacities.
struct RandomNetwork {
  struct E {
    int a, b;
    long long cap, cost;
  };
  std::vector<E> edges;
  int nodes = 0;

  explicit RandomNetwork(std::uint64_t seed) {
    Rng rng(seed);
    const int mids = 3 + static_cast<int>(rng.uniform_u64(4));
    const int lates = 3 + static_cast<int>(rng.uniform_u64(4));
    nodes = 2 + mids + lates;
    const int sink = nodes - 1;
    for (int m = 0; m < mids; ++m) {
      edges.push_back({0, 1 + m,
                       1 + static_cast<long long>(rng.uniform_u64(4)),
                       static_cast<long long>(rng.uniform_u64(8))});
      for (int l = 0; l < lates; ++l)
        if (rng.uniform_u64(3) != 0)
          edges.push_back({1 + m, 1 + mids + l,
                           1 + static_cast<long long>(rng.uniform_u64(3)),
                           static_cast<long long>(rng.uniform_u64(20))});
    }
    for (int l = 0; l < lates; ++l)
      edges.push_back({1 + mids + l, sink,
                       1 + static_cast<long long>(rng.uniform_u64(4)),
                       static_cast<long long>(rng.uniform_u64(1000))});
  }

  std::vector<int> build(MinCostFlow& f) const {
    f.reset(nodes);
    std::vector<int> ids;
    for (const auto& e : edges)
      ids.push_back(f.add_edge(e.a, e.b, e.cap, e.cost));
    return ids;
  }
};

/// Shortest original-cost distances from the source — the canonical
/// feasible potential for a *fresh* network (triangle inequality ⇒
/// non-negative reduced costs on every edge). Note the solver's final
/// potentials are feasible only for the *residual* network it solved:
/// a saturated forward edge regains capacity on a rebuild and may go
/// reduced-negative, which is exactly what the O(E) validation at the
/// warm-start seam catches (see InvalidSeedFallsBack). Callers like
/// the planner therefore clamp before re-seeding.
std::vector<long long> bellman_potentials(const RandomNetwork& net) {
  std::vector<long long> dist(static_cast<std::size_t>(net.nodes),
                              LLONG_MAX / 8);
  dist[0] = 0;
  for (int pass = 0; pass < net.nodes; ++pass)
    for (const auto& e : net.edges)
      if (dist[e.a] < LLONG_MAX / 8)
        dist[e.b] = std::min(dist[e.b], dist[e.a] + e.cost);
  return dist;  // unreachable nodes keep a large, overflow-safe value
}

/// Every residual edge must keep a non-negative reduced cost under the
/// solver's final potentials — the invariant warm starts rely on.
void expect_reduced_costs_nonnegative(const RandomNetwork& net,
                                      const MinCostFlow& f,
                                      const std::vector<int>& ids) {
  const auto& pot = f.potentials();
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const auto& e = net.edges[i];
    const long long flow = f.flow_on(ids[i]);
    if (e.cap - flow > 0)  // forward residual
      EXPECT_GE(e.cost + pot[e.a] - pot[e.b], 0)
          << "edge " << e.a << "->" << e.b;
    if (flow > 0)  // reverse residual
      EXPECT_GE(-e.cost + pot[e.b] - pot[e.a], 0)
          << "edge " << e.b << "->" << e.a << " (residual)";
  }
}

class WarmStart : public ::testing::TestWithParam<int> {};

TEST_P(WarmStart, SameCostAsColdAndInvariantHolds) {
  const RandomNetwork net(static_cast<std::uint64_t>(GetParam()));
  MinCostFlow f(1);
  auto ids = net.build(f);
  const auto cold = f.solve(0, net.nodes - 1);
  expect_reduced_costs_nonnegative(net, f, ids);

  const auto warm_seed = bellman_potentials(net);
  ids = net.build(f);  // identical network, fresh flow
  const auto before = f.warm_accepts();
  const auto warm = f.solve(0, net.nodes - 1, LLONG_MAX / 4, warm_seed);
  EXPECT_EQ(f.warm_accepts(), before + 1);
  EXPECT_EQ(warm.flow, cold.flow);
  EXPECT_EQ(warm.cost, cold.cost);
  expect_reduced_costs_nonnegative(net, f, ids);
}

TEST_P(WarmStart, InvalidSeedFallsBackToCold) {
  const RandomNetwork net(static_cast<std::uint64_t>(GetParam()));
  MinCostFlow f(1);
  net.build(f);
  const auto cold = f.solve(0, net.nodes - 1);

  // A seed that makes some reduced cost negative: a huge potential on
  // the sink forces every edge into it negative.
  std::vector<long long> bad(static_cast<std::size_t>(net.nodes), 0);
  bad[static_cast<std::size_t>(net.nodes) - 1] = 1'000'000'000;
  net.build(f);
  const auto rejects = f.warm_rejects();
  const auto r = f.solve(0, net.nodes - 1, LLONG_MAX / 4, bad);
  EXPECT_EQ(f.warm_rejects(), rejects + 1);
  EXPECT_EQ(r.flow, cold.flow);
  EXPECT_EQ(r.cost, cold.cost);
}

TEST_P(WarmStart, SizeMismatchFallsBackToCold) {
  const RandomNetwork net(static_cast<std::uint64_t>(GetParam()));
  MinCostFlow f(1);
  net.build(f);
  const auto cold = f.solve(0, net.nodes - 1);
  net.build(f);
  const auto rejects = f.warm_rejects();
  const auto r = f.solve(0, net.nodes - 1, LLONG_MAX / 4,
                         std::vector<long long>(3, 0));
  EXPECT_EQ(f.warm_rejects(), rejects + 1);
  EXPECT_EQ(r.flow, cold.flow);
  EXPECT_EQ(r.cost, cold.cost);
}

TEST_P(WarmStart, RadixQueueMatchesBinaryHeap) {
  const RandomNetwork net(static_cast<std::uint64_t>(GetParam()));
  MinCostFlow f(1);
  net.build(f);
  const auto binary = f.solve(0, net.nodes - 1);

  f.set_queue(MinCostFlow::QueueKind::kRadix);
  auto ids = net.build(f);
  const auto radix = f.solve(0, net.nodes - 1);
  EXPECT_EQ(radix.flow, binary.flow);
  EXPECT_EQ(radix.cost, binary.cost);
  expect_reduced_costs_nonnegative(net, f, ids);

  // Warm-started radix solve still agrees.
  const auto warm_seed = bellman_potentials(net);
  net.build(f);
  const auto before = f.warm_accepts();
  const auto warm = f.solve(0, net.nodes - 1, LLONG_MAX / 4, warm_seed);
  EXPECT_EQ(f.warm_accepts(), before + 1);
  EXPECT_EQ(warm.flow, binary.flow);
  EXPECT_EQ(warm.cost, binary.cost);
}

INSTANTIATE_TEST_SUITE_P(Seeds, WarmStart, ::testing::Range(1, 26));

TEST(MinCostFlow, SolveStatsCountWork) {
  MinCostFlow f(4);
  f.add_edge(0, 1, 1, 0);
  f.add_edge(1, 3, 1, 0);
  f.add_edge(0, 2, 10, 5);
  f.add_edge(2, 3, 10, 5);
  const auto r = f.solve(0, 3, 3);
  EXPECT_EQ(r.flow, 3);
  const auto& st = f.last_stats();
  EXPECT_EQ(st.nodes, 4);
  EXPECT_EQ(st.arcs, 4u);
  EXPECT_FALSE(st.warm);
  // Every augmenting path is found by one Dijkstra; the final run
  // discovers there is no more flow to send.
  EXPECT_GT(st.augmenting_paths, 0u);
  EXPECT_GE(st.dijkstra_runs, st.augmenting_paths);
  EXPECT_GT(st.dijkstra_pops, 0u);
  EXPECT_GT(st.dijkstra_relaxations, 0u);
  EXPECT_GT(st.arena_bytes, 0u);
  // `classes` belongs to the planner, never the solver.
  EXPECT_EQ(st.classes, 0u);
}

TEST(MinCostFlow, SolveStatsResetPerSolveAndMarkWarm) {
  MinCostFlow f(2);
  f.add_edge(0, 1, 5, 3);
  f.solve(0, 1);
  const auto cold_runs = f.last_stats().dijkstra_runs;
  EXPECT_GT(cold_runs, 0u);
  EXPECT_FALSE(f.last_stats().warm);

  // Re-solving the identical network with the final potentials as the
  // warm seed must be accepted and tagged as warm, with the counters
  // describing only the new solve.
  const auto seed = f.potentials();
  f.reset(2);
  f.add_edge(0, 1, 5, 3);
  const auto warm = f.solve(0, 1, LLONG_MAX / 4, seed);
  EXPECT_EQ(warm.flow, 5);
  EXPECT_TRUE(f.last_stats().warm);
  EXPECT_LE(f.last_stats().dijkstra_runs, cold_runs);
  EXPECT_EQ(f.last_stats().arcs, 1u);
}

TEST(MinCostFlowRadix, MatchesBruteForceAssignment) {
  for (int seed = 1; seed <= 20; ++seed) {
    Rng rng(static_cast<std::uint64_t>(seed));
    const int n = 3 + static_cast<int>(rng.uniform_u64(3));
    const int m = n + static_cast<int>(rng.uniform_u64(2));
    std::vector<std::vector<long long>> cost(
        n, std::vector<long long>(m));
    for (auto& row : cost)
      for (auto& c : row)
        c = static_cast<long long>(rng.uniform_u64(50));

    MinCostFlow f(n + m + 2);
    f.set_queue(MinCostFlow::QueueKind::kRadix);
    const int sink = n + m + 1;
    for (int i = 0; i < n; ++i) f.add_edge(0, 1 + i, 1, 0);
    for (int i = 0; i < n; ++i)
      for (int s = 0; s < m; ++s)
        f.add_edge(1 + i, 1 + n + s, 1, cost[i][s]);
    for (int s = 0; s < m; ++s) f.add_edge(1 + n + s, sink, 1, 0);

    const auto r = f.solve(0, sink);
    EXPECT_EQ(r.flow, n) << "seed " << seed;
    EXPECT_EQ(r.cost, brute_force_assignment(cost)) << "seed " << seed;
  }
}

}  // namespace
}  // namespace gm::core
