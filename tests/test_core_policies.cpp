// Scheduler policy unit tests: each policy is driven with synthetic
// SlotContexts so its decision logic is checked in isolation from the
// engine.

#include <gtest/gtest.h>

#include <algorithm>

#include "core/policies.hpp"
#include "util/assert.hpp"
#include "util/units.hpp"

namespace gm::core {
namespace {

ClusterFacts test_facts() {
  ClusterFacts f;
  f.total_nodes = 16;
  f.min_nodes_for_coverage = 6;
  f.task_slots_per_node = 4;
  f.node_idle_floor_w = 120.0;
  f.node_peak_w = 240.0;
  f.slot_length_s = 3600.0;
  f.node_boot_energy_j = 18000.0;
  f.max_utilization_per_node = 0.95;
  return f;
}

PendingTask make_task(storage::TaskId id, SimTime release,
                      SimTime deadline, Seconds work,
                      double util = 0.3, std::uint8_t tag = 0) {
  PendingTask p;
  p.task.id = id;
  p.task.release = release;
  p.task.deadline = deadline;
  p.task.work_s = work;
  p.task.utilization = util;
  p.task.group = static_cast<storage::GroupId>(id % 64);
  p.remaining_s = work;
  p.policy_tag = tag;
  return p;
}

SlotContext base_ctx(SimTime start = 0, int horizon = 8) {
  SlotContext ctx;
  ctx.slot = start / 3600;
  ctx.start = start;
  ctx.end = start + 3600;
  ctx.green_forecast_w.assign(horizon, 0.0);
  ctx.foreground_util_forecast.assign(horizon, 0.0);
  ctx.foreground_util = 0.0;
  ctx.currently_active_nodes = 6;
  return ctx;
}

TEST(PolicyFactory, CreatesEveryKind) {
  for (PolicyKind kind :
       {PolicyKind::kAsap, PolicyKind::kOpportunistic,
        PolicyKind::kGreenMatch, PolicyKind::kGreenMatchGreedy,
        PolicyKind::kNightShift}) {
    PolicyConfig config;
    config.kind = kind;
    const auto policy = make_policy(config);
    ASSERT_NE(policy, nullptr);
    EXPECT_STREQ(policy->name(), policy_kind_name(kind));
  }
}

TEST(PolicyConfig, Validation) {
  PolicyConfig c;
  c.deferral_fraction = 1.5;
  EXPECT_THROW(c.validate(), InvalidArgument);
  c = PolicyConfig{};
  c.horizon_slots = 0;
  EXPECT_THROW(c.validate(), InvalidArgument);
  c = PolicyConfig{};
  c.window_start_h = 20.0;
  c.window_end_h = 10.0;
  EXPECT_THROW(c.validate(), InvalidArgument);
}

TEST(AsapPolicy, RunsEverythingPending) {
  AsapPolicy policy;
  policy.initialize(test_facts());
  SlotContext ctx = base_ctx();
  for (int i = 0; i < 5; ++i)
    ctx.pending.push_back(
        make_task(i, 0, 12 * 3600, 2 * 3600.0));
  const auto d = policy.decide(ctx);
  EXPECT_EQ(d.run_tasks.size(), 5u);
  EXPECT_GE(d.target_active_nodes, 6);  // coverage floor
}

TEST(AsapPolicy, CapsAtClusterCapacity) {
  AsapPolicy policy;
  policy.initialize(test_facts());
  SlotContext ctx = base_ctx();
  // 200 tasks exceed 16 nodes × 4 slots = 64.
  for (int i = 0; i < 200; ++i)
    ctx.pending.push_back(make_task(i, 0, 48 * 3600, 3600.0, 0.1));
  const auto d = policy.decide(ctx);
  EXPECT_LE(d.run_tasks.size(), 64u);
  EXPECT_LE(d.target_active_nodes, 16);
}

TEST(NightShift, RunsOnlyInWindow) {
  NightShiftPolicy policy(9.0, 17.0);
  policy.initialize(test_facts());

  SlotContext night = base_ctx(2 * 3600);  // 02:00
  night.pending.push_back(make_task(1, 0, 48 * 3600, 3600.0));
  EXPECT_TRUE(policy.decide(night).run_tasks.empty());

  SlotContext day = base_ctx(12 * 3600);  // 12:00
  day.pending.push_back(make_task(1, 0, 48 * 3600, 3600.0));
  EXPECT_EQ(policy.decide(day).run_tasks.size(), 1u);
}

TEST(NightShift, UrgentOverridesWindow) {
  NightShiftPolicy policy(9.0, 17.0);
  policy.initialize(test_facts());
  SlotContext night = base_ctx(2 * 3600);
  // Deadline in one hour with one hour of work: zero slack.
  night.pending.push_back(
      make_task(1, 0, night.start + 3600, 3600.0));
  EXPECT_EQ(policy.decide(night).run_tasks.size(), 1u);
}

TEST(Opportunistic, ZeroDeferralActsLikeAsap) {
  OpportunisticPolicy policy(0.0, 1);
  policy.initialize(test_facts());
  SlotContext ctx = base_ctx();
  for (int i = 0; i < 4; ++i) {
    auto t = make_task(i, 0, 24 * 3600, 3600.0);
    t.policy_tag = policy.admit(t.task);  // fraction 0 → never delayed
    ctx.pending.push_back(t);
  }
  EXPECT_EQ(policy.decide(ctx).run_tasks.size(), 4u);
}

TEST(Opportunistic, DelayedTasksWaitForGreen) {
  OpportunisticPolicy policy(1.0, 1);
  policy.initialize(test_facts());
  SlotContext dark = base_ctx();
  dark.green_forecast_w.assign(8, 0.0);
  for (int i = 0; i < 4; ++i)
    dark.pending.push_back(make_task(i, 0, 24 * 3600, 3600.0, 0.3,
                                     OpportunisticPolicy::kTagDelayed));
  EXPECT_TRUE(policy.decide(dark).run_tasks.empty());

  SlotContext sunny = dark;
  sunny.green_forecast_w.assign(8, 50'000.0);  // plenty of green
  EXPECT_EQ(policy.decide(sunny).run_tasks.size(), 4u);
}

TEST(Opportunistic, GreenBudgetLimitsAdmission) {
  OpportunisticPolicy policy(1.0, 1);
  policy.initialize(test_facts());
  SlotContext ctx = base_ctx();
  // Enough green for the idle floor of 6 nodes plus a little dynamic
  // power: only some tasks should join.
  ctx.green_forecast_w.assign(8, 6 * 120.0 + 100.0);
  for (int i = 0; i < 10; ++i)
    ctx.pending.push_back(make_task(i, 0, 24 * 3600, 3600.0, 0.3,
                                    OpportunisticPolicy::kTagDelayed));
  const auto d = policy.decide(ctx);
  EXPECT_LT(d.run_tasks.size(), 10u);
}

TEST(Opportunistic, UrgentDelayedTaskRunsAnyway) {
  OpportunisticPolicy policy(1.0, 1);
  policy.initialize(test_facts());
  SlotContext dark = base_ctx(10 * 3600);
  dark.pending.push_back(make_task(1, 0, 11 * 3600, 3600.0, 0.3,
                                   OpportunisticPolicy::kTagDelayed));
  EXPECT_EQ(policy.decide(dark).run_tasks.size(), 1u);
}

TEST(Opportunistic, AdmitLotteryMatchesFraction) {
  OpportunisticPolicy policy(0.3, 42);
  policy.initialize(test_facts());
  int delayed = 0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    storage::BackgroundTask t;
    t.id = i;
    delayed += policy.admit(t) == OpportunisticPolicy::kTagDelayed;
  }
  EXPECT_NEAR(static_cast<double>(delayed) / n, 0.3, 0.03);
}

// ------------------------------------------------------- GreenMatch

class GreenMatchBothVariants : public ::testing::TestWithParam<bool> {
 protected:
  GreenMatchPolicy make() const {
    return GreenMatchPolicy(8, GetParam(), true);
  }
};

TEST_P(GreenMatchBothVariants, DefersToGreenerSlot) {
  GreenMatchPolicy policy = make();
  policy.initialize(test_facts());
  SlotContext ctx = base_ctx();
  // Dark now, sunny in 3 slots; task has lots of slack and 1 h work.
  ctx.green_forecast_w = {0.0, 0.0, 0.0, 30'000.0, 30'000.0,
                          0.0, 0.0, 0.0};
  ctx.pending.push_back(make_task(1, 0, 24 * 3600, 3600.0));
  const auto d = policy.decide(ctx);
  EXPECT_TRUE(d.run_tasks.empty());  // waits for the sun
}

TEST_P(GreenMatchBothVariants, RunsNowWhenGreenNow) {
  GreenMatchPolicy policy = make();
  policy.initialize(test_facts());
  SlotContext ctx = base_ctx();
  ctx.green_forecast_w.assign(8, 30'000.0);
  ctx.pending.push_back(make_task(1, 0, 24 * 3600, 3600.0));
  const auto d = policy.decide(ctx);
  EXPECT_EQ(d.run_tasks.size(), 1u);
}

TEST_P(GreenMatchBothVariants, DeadlineForcesBrownRun) {
  GreenMatchPolicy policy = make();
  policy.initialize(test_facts());
  SlotContext ctx = base_ctx();
  ctx.green_forecast_w.assign(8, 0.0);  // never green
  // 2 h of work, deadline in 2 h: must start now despite darkness.
  ctx.pending.push_back(make_task(1, 0, 2 * 3600, 2 * 3600.0));
  const auto d = policy.decide(ctx);
  EXPECT_EQ(d.run_tasks.size(), 1u);
}

TEST_P(GreenMatchBothVariants, SpreadsWorkAcrossGreenCapacity) {
  GreenMatchPolicy policy = make();
  policy.initialize(test_facts());
  SlotContext ctx = base_ctx();
  // Moderate green now: room for only a few concurrent tasks.
  ctx.green_forecast_w.assign(8, 2'000.0);
  for (int i = 0; i < 30; ++i)
    ctx.pending.push_back(make_task(i, 0, 24 * 3600, 3600.0));
  const auto d = policy.decide(ctx);
  EXPECT_LT(d.run_tasks.size(), 30u);
}

TEST_P(GreenMatchBothVariants, OverdueTaskRunsImmediately) {
  GreenMatchPolicy policy = make();
  policy.initialize(test_facts());
  SlotContext ctx = base_ctx(10 * 3600);
  ctx.green_forecast_w.assign(8, 0.0);
  auto t = make_task(1, 0, 9 * 3600, 3600.0);  // already overdue
  ctx.pending.push_back(t);
  EXPECT_EQ(policy.decide(ctx).run_tasks.size(), 1u);
}

INSTANTIATE_TEST_SUITE_P(FlowAndGreedy, GreenMatchBothVariants,
                         ::testing::Values(false, true),
                         [](const auto& info) {
                           return info.param ? "greedy" : "flow";
                         });

TEST(GreenMatch, FlowBeatsOrMatchesGreedyOnBrownCost) {
  // On a scattered forecast the optimal matcher should never choose a
  // worse green placement than the heuristic. We proxy "brown cost"
  // by how many of the chosen-now tasks exceed the current green
  // budget when the current slot is dark but later slots are green.
  GreenMatchPolicy flow(8, false, true), greedy(8, true, true);
  flow.initialize(test_facts());
  greedy.initialize(test_facts());
  SlotContext ctx = base_ctx();
  ctx.green_forecast_w = {500.0, 4'000.0, 500.0, 8'000.0,
                          500.0, 0.0,     0.0,   0.0};
  for (int i = 0; i < 12; ++i)
    ctx.pending.push_back(make_task(i, 0, 8 * 3600, 2 * 3600.0));
  const auto df = flow.decide(ctx);
  const auto dg = greedy.decide(ctx);
  EXPECT_LE(df.run_tasks.size(), dg.run_tasks.size() + 2);
  EXPECT_GT(flow.solve_ms_total(), 0.0);
}

TEST(SchedulerPolicy, NodesForLoadHonorsAllFloors) {
  AsapPolicy policy;
  policy.initialize(test_facts());
  SlotContext ctx = base_ctx();
  ctx.foreground_util = 14.0;  // needs ceil(14/0.95) = 15 nodes
  const auto d = policy.decide(ctx);
  EXPECT_GE(d.target_active_nodes, 15);
  EXPECT_LE(d.target_active_nodes, 16);
}

}  // namespace
}  // namespace gm::core
