// Power manager and full-engine integration/property tests.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/engine.hpp"
#include "core/power_manager.hpp"
#include "util/assert.hpp"
#include "util/units.hpp"

namespace gm::core {
namespace {

storage::ClusterConfig tiny_cluster() {
  storage::ClusterConfig c;
  c.racks = 2;
  c.nodes_per_rack = 8;
  c.placement.group_count = 128;
  c.placement.replication = 3;
  return c;
}

// ------------------------------------------------------ PowerManager

TEST(PowerManager, ReachesTargetRespectingFloor) {
  storage::Cluster cluster(tiny_cluster());
  PowerManager pm(cluster, 0);
  EXPECT_EQ(pm.active_count(), 16);

  const auto tr = pm.apply_target(0, 0, 0);
  EXPECT_EQ(pm.active_count(), pm.min_feasible());
  EXPECT_EQ(tr.powered_off,
            16 - pm.min_feasible());
  EXPECT_GT(tr.energy_j, 0.0);
  EXPECT_TRUE(cluster.is_feasible(pm.active()));
}

TEST(PowerManager, PowerBackOnCountsAndCharges) {
  storage::Cluster cluster(tiny_cluster());
  PowerManager pm(cluster, 0);
  pm.apply_target(0, 0, 0);
  const auto tr = pm.apply_target(1, 16, 3600);
  EXPECT_EQ(pm.active_count(), 16);
  EXPECT_EQ(tr.powered_on, 16 - pm.min_feasible());
  for (const auto& node : cluster.nodes())
    EXPECT_TRUE(node.available());
}

TEST(PowerManager, HysteresisDelaysPowerOff) {
  storage::Cluster cluster(tiny_cluster());
  PowerManager pm(cluster, 3);
  // Power some nodes on at slot 0 (all already on → mark dwell).
  pm.apply_target(0, 16, 0);
  // Try to power off immediately: nodes only changed state at slot
  // -inf, so first deactivation is allowed...
  const auto tr1 = pm.apply_target(1, 0, 3600);
  EXPECT_GT(tr1.powered_off, 0);
  // ...but powering back on at slot 2 then off at slot 3 is blocked.
  pm.apply_target(2, 16, 7200);
  const auto tr2 = pm.apply_target(3, 0, 10800);
  EXPECT_EQ(tr2.powered_off, 0);  // dwell = 3 slots not yet elapsed
  const auto tr3 = pm.apply_target(5, 0, 18000);
  EXPECT_GT(tr3.powered_off, 0);  // dwell satisfied
}

TEST(PowerManager, DeactivatedListMatchesCount) {
  storage::Cluster cluster(tiny_cluster());
  PowerManager pm(cluster, 0);
  const auto tr = pm.apply_target(0, 0, 0);
  EXPECT_EQ(static_cast<int>(tr.deactivated.size()), tr.powered_off);
}

TEST(PowerManager, ForceWakeForGroupActivatesReplica) {
  storage::Cluster cluster(tiny_cluster());
  PowerManager pm(cluster, 0);
  pm.apply_target(0, 0, 0);
  // Find a group whose replicas are all inactive — there is none
  // (coverage!), so force_wake returns immediately.
  const SimTime t = pm.force_wake_for_group(0, 100, 0);
  EXPECT_EQ(t, 100);
  EXPECT_DOUBLE_EQ(pm.drain_forced_energy_j(), 0.0);
}

TEST(PowerManager, WakeSleepingReplicaChargesEnergy) {
  storage::Cluster cluster(tiny_cluster());
  PowerManager pm(cluster, 0);
  pm.apply_target(0, 0, 0);
  // Find a group with at least one sleeping replica.
  storage::GroupId target = UINT32_MAX;
  for (storage::GroupId g = 0; g < 128; ++g) {
    for (storage::NodeId n : cluster.placement().replicas(g))
      if (!pm.active()[n]) {
        target = g;
        break;
      }
    if (target != UINT32_MAX) break;
  }
  ASSERT_NE(target, UINT32_MAX);
  const int before = pm.active_count();
  const auto woken = pm.wake_sleeping_replica(target, 0, 0);
  EXPECT_NE(woken, storage::kInvalidNode);
  EXPECT_EQ(pm.active_count(), before + 1);
  EXPECT_GT(pm.drain_forced_energy_j(), 0.0);
  EXPECT_DOUBLE_EQ(pm.drain_forced_energy_j(), 0.0);  // drained
}

// ------------------------------------------------------------ Engine

ExperimentConfig fast_config(PolicyKind kind, double battery_kwh = 10.0,
                             double panel_m2 = 60.0) {
  ExperimentConfig config;
  config.cluster = tiny_cluster();
  config.workload = workload::WorkloadSpec::canonical(3, 99);
  config.workload.foreground.base_rate_per_s = 0.5;
  for (auto& c : config.workload.task_classes) c.mean_per_day *= 0.4;
  config.solar.horizon_days = 8;
  config.panel_area_m2 = panel_m2;
  config.battery = energy::BatteryConfig::lithium_ion(
      kwh_to_j(battery_kwh));
  config.policy.kind = kind;
  config.policy.horizon_slots = 12;
  config.fidelity = Fidelity::kSlotLevel;
  return config;
}

class EngineAllPolicies : public ::testing::TestWithParam<PolicyKind> {};

TEST_P(EngineAllPolicies, ConservationAndCompletion) {
  const auto artifacts = run_experiment(fast_config(GetParam()));
  const auto& r = artifacts.result;

  // Every admitted task completes (generous deadlines + drain).
  EXPECT_EQ(r.qos.tasks_completed, r.qos.tasks_total);
  EXPECT_GT(r.qos.tasks_total, 0u);

  // Ledger conservation already asserted per-slot; check the global
  // identities once more from the totals.
  const auto& e = r.energy;
  EXPECT_NEAR(e.green_supply_j,
              e.green_direct_j + e.battery_charge_drawn_j + e.curtailed_j,
              1e-6 * std::max(1.0, e.green_supply_j));
  EXPECT_NEAR(e.demand_j,
              e.green_direct_j + e.battery_discharged_j + e.brown_j,
              1e-6 * std::max(1.0, e.demand_j));
  EXPECT_GT(e.demand_j, 0.0);
  EXPECT_GE(r.scheduler.mean_active_nodes, 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    Policies, EngineAllPolicies,
    ::testing::Values(PolicyKind::kAsap, PolicyKind::kOpportunistic,
                      PolicyKind::kGreenMatch,
                      PolicyKind::kGreenMatchGreedy,
                      PolicyKind::kNightShift),
    [](const auto& info) {
      return std::string(policy_kind_name(info.param)) == "night-shift"
                 ? "nightshift"
                 : std::string(policy_kind_name(info.param)) ==
                           "greenmatch-greedy"
                       ? "greenmatchgreedy"
                       : policy_kind_name(info.param);
    });

TEST(Engine, DeterministicAcrossRuns) {
  const auto a = run_experiment(fast_config(PolicyKind::kGreenMatch));
  const auto b = run_experiment(fast_config(PolicyKind::kGreenMatch));
  EXPECT_DOUBLE_EQ(a.result.energy.brown_j, b.result.energy.brown_j);
  EXPECT_DOUBLE_EQ(a.result.energy.demand_j, b.result.energy.demand_j);
  EXPECT_EQ(a.result.scheduler.task_migrations,
            b.result.scheduler.task_migrations);
  EXPECT_EQ(a.ledger.size(), b.ledger.size());
}

TEST(Engine, NoSolarMeansAllBrown) {
  auto config = fast_config(PolicyKind::kAsap, 10.0, 0.0);
  const auto artifacts = run_experiment(config);
  const auto& e = artifacts.result.energy;
  EXPECT_DOUBLE_EQ(e.green_supply_j, 0.0);
  EXPECT_NEAR(e.brown_j, e.demand_j, 1e-6 * e.demand_j);
  EXPECT_DOUBLE_EQ(e.curtailed_j, 0.0);
}

TEST(Engine, AbundantSolarPlusBatteryNearlyEliminatesBrown) {
  auto config = fast_config(PolicyKind::kAsap, 400.0, 2000.0);
  config.battery = energy::BatteryConfig::ideal(kwh_to_j(400.0));
  const auto artifacts = run_experiment(config);
  const auto& e = artifacts.result.energy;
  // First night may still draw brown (battery starts empty); after
  // that the system should be self-sufficient.
  EXPECT_LT(e.brown_j, 0.15 * e.demand_j);
}

TEST(Engine, BiggerBatteryNeverHurtsBrown) {
  double prev = 1e300;
  for (double kwh : {0.0, 10.0, 40.0, 160.0}) {
    const auto artifacts =
        run_experiment(fast_config(PolicyKind::kAsap, kwh));
    const double brown = artifacts.result.energy.brown_j;
    EXPECT_LE(brown, prev * 1.0001) << "battery " << kwh << " kWh";
    prev = brown;
  }
}

TEST(Engine, MorePanelsNeverHurtBrown) {
  double prev = 1e300;
  for (double m2 : {0.0, 40.0, 120.0, 360.0}) {
    const auto artifacts =
        run_experiment(fast_config(PolicyKind::kAsap, 20.0, m2));
    const double brown = artifacts.result.energy.brown_j;
    EXPECT_LE(brown, prev * 1.0001) << "panels " << m2 << " m²";
    prev = brown;
  }
}

TEST(Engine, GreenMatchDoesNotLoseToAsapOnBrown) {
  const auto gm =
      run_experiment(fast_config(PolicyKind::kGreenMatch));
  const auto asap = run_experiment(fast_config(PolicyKind::kAsap));
  // The matcher may pay small transition/migration overheads but must
  // not burn meaningfully more grid energy than the oblivious
  // baseline on the canonical setup.
  EXPECT_LE(gm.result.energy.brown_j,
            asap.result.energy.brown_j * 1.05);
}

TEST(Engine, EventLevelAgreesWithSlotLevelOnEnergy) {
  auto slot_config = fast_config(PolicyKind::kGreenMatch);
  auto event_config = slot_config;
  event_config.fidelity = Fidelity::kEventLevel;
  const auto s = run_experiment(slot_config);
  const auto e = run_experiment(event_config);
  // Same demand model; event mode can add forced wake-ups only.
  EXPECT_NEAR(s.result.energy.demand_j, e.result.energy.demand_j,
              0.02 * s.result.energy.demand_j);
  // Event mode produces QoS data.
  EXPECT_GT(e.result.qos.foreground_requests, 0u);
  EXPECT_GT(e.result.qos.read_latency_p95_s, 0.0);
  EXPECT_EQ(s.result.qos.foreground_requests, 0u);
}

TEST(Engine, LedgerSlotSeriesIsContiguous) {
  const auto artifacts =
      run_experiment(fast_config(PolicyKind::kOpportunistic));
  const auto& slots = artifacts.ledger.slots();
  ASSERT_FALSE(slots.empty());
  for (std::size_t i = 0; i < slots.size(); ++i) {
    EXPECT_EQ(slots[i].slot, static_cast<SlotIndex>(i));
    EXPECT_EQ(slots[i].end - slots[i].start, 3600);
    if (i > 0) EXPECT_EQ(slots[i].start, slots[i - 1].end);
  }
  EXPECT_EQ(artifacts.active_nodes_per_slot.size(), slots.size());
}

TEST(Engine, BatteryStateWithinBoundsEverySlot) {
  const auto artifacts = run_experiment(
      fast_config(PolicyKind::kGreenMatch, 25.0, 200.0));
  const Joules usable = kwh_to_j(25.0) * 0.8;
  for (const auto& s : artifacts.ledger.slots()) {
    EXPECT_GE(s.battery_stored_end_j, -1e-6);
    EXPECT_LE(s.battery_stored_end_j, usable + 1e-6);
  }
}

TEST(Engine, NightShiftWindowShapesTaskUtil) {
  auto config = fast_config(PolicyKind::kNightShift);
  config.policy.window_start_h = 9.0;
  config.policy.window_end_h = 17.0;
  const auto artifacts = run_experiment(config);
  double in_window = 0.0, out_window = 0.0;
  for (std::size_t i = 0; i < artifacts.task_util_per_slot.size(); ++i) {
    const double hour = static_cast<double>((i * 3600) % 86400) / 3600.0;
    if (hour >= 9.0 && hour < 17.0)
      in_window += artifacts.task_util_per_slot[i];
    else
      out_window += artifacts.task_util_per_slot[i];
  }
  EXPECT_GT(in_window, out_window);
}

TEST(Engine, WorkloadAccessorsExposeTrace) {
  SimulationEngine engine(fast_config(PolicyKind::kAsap));
  EXPECT_FALSE(engine.workload().tasks.empty());
  EXPECT_EQ(engine.cluster().node_count(), 16u);
  const auto artifacts = engine.run();
  EXPECT_EQ(artifacts.result.qos.tasks_total,
            engine.workload().tasks.size());
}

TEST(Engine, ValidationCatchesShortSolarHorizon) {
  auto config = fast_config(PolicyKind::kAsap);
  config.solar.horizon_days = 1;  // run is 3 days + drain
  EXPECT_THROW(SimulationEngine{config}, InvalidArgument);
}

}  // namespace
}  // namespace gm::core
