// Data-capacity model and plan-cache tests.

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>

#include "core/engine.hpp"
#include "storage/cluster.hpp"
#include "util/assert.hpp"
#include "util/units.hpp"

namespace gm {
namespace {

storage::ClusterConfig tiny_cluster() {
  storage::ClusterConfig c;
  c.racks = 2;
  c.nodes_per_rack = 8;
  c.placement.group_count = 128;
  c.placement.replication = 3;
  return c;
}

TEST(DataModel, GroupBytesLognormalAroundMean) {
  storage::PlacementConfig config;
  config.group_count = 2000;
  config.mean_group_bytes = 100e9;
  config.group_bytes_sigma = 0.5;
  std::vector<storage::NodeDescriptor> nodes;
  for (storage::NodeId i = 0; i < 16; ++i) nodes.push_back({i, i % 4});
  storage::PlacementMap map(config, nodes);

  double sum = 0.0;
  for (storage::GroupId g = 0; g < config.group_count; ++g) {
    EXPECT_GT(map.group_bytes(g), 0.0);
    sum += map.group_bytes(g);
  }
  EXPECT_NEAR(sum / config.group_count, 100e9, 10e9);
}

TEST(DataModel, NodeBytesSumGroups) {
  storage::Cluster cluster(tiny_cluster());
  const auto& placement = cluster.placement();
  for (storage::NodeId n = 0; n < cluster.node_count(); ++n) {
    double expected = 0.0;
    for (storage::GroupId g : placement.groups_on(n))
      expected += placement.group_bytes(g);
    EXPECT_DOUBLE_EQ(placement.node_bytes(n), expected);
  }
}

TEST(DataModel, TotalPhysicalBytesCountsReplicas) {
  storage::Cluster cluster(tiny_cluster());
  const auto& placement = cluster.placement();
  double logical = 0.0;
  for (storage::GroupId g = 0; g < 128; ++g)
    logical += placement.group_bytes(g);
  EXPECT_NEAR(placement.total_physical_bytes(), logical * 3.0,
              logical * 3.0 * 1e-12);
}

TEST(DataModel, StorageUtilizationWithinBounds) {
  storage::Cluster cluster(tiny_cluster());
  for (storage::NodeId n = 0; n < cluster.node_count(); ++n) {
    const double u = cluster.node_storage_utilization(n);
    EXPECT_GT(u, 0.0);
    EXPECT_LE(u, 1.0);
  }
  EXPECT_LE(cluster.max_storage_utilization(), 1.0);
}

TEST(DataModel, OverfullClusterRejected) {
  storage::ClusterConfig config = tiny_cluster();
  config.placement.mean_group_bytes = 4e12;  // 128×3 replicas × 4 TB
  EXPECT_THROW(storage::Cluster{config}, InvalidArgument);
}

TEST(DataModel, RepairWorkProportionalToData) {
  core::ExperimentConfig config;
  config.cluster = tiny_cluster();
  config.workload = workload::WorkloadSpec::canonical(2, 3);
  config.workload.foreground.base_rate_per_s = 0.2;
  for (auto& c : config.workload.task_classes) c.mean_per_day *= 0.2;
  config.solar.horizon_days = 6;
  config.panel_area_m2 = 40.0;
  config.repair_rate_bytes_per_s = 200e6;
  config.node_failures.push_back(
      core::NodeFailureEvent{.fail_at = 3600, .recover_at = 0, .node = 1});

  core::SimulationEngine engine(config);
  const auto& placement = engine.cluster().placement();
  // Expected total repair work for node 1's groups.
  double expected_s = 0.0;
  for (storage::GroupId g : placement.groups_on(1))
    expected_s +=
        std::max(60.0, placement.group_bytes(g) / 200e6);
  const auto artifacts = engine.run();
  EXPECT_EQ(artifacts.result.scheduler.nodes_failed, 1u);
  // The repair tasks completed (tasks_total includes them).
  EXPECT_EQ(artifacts.result.qos.tasks_completed,
            artifacts.result.qos.tasks_total);
  EXPECT_GT(expected_s, placement.groups_on(1).size() * 60.0 - 1.0);
}

TEST(SolarTrace, EnginePlaysBackCsv) {
  // Write a 9-day hourly trace: 5 kW from 08:00 to 16:00, else zero.
  const std::string path = "/tmp/gm_solar_trace_test.csv";
  {
    std::ofstream out(path);
    for (int h = 0; h < 9 * 24; ++h)
      out << ((h % 24 >= 8 && h % 24 < 16) ? 5000.0 : 0.0) << "\n";
  }
  core::ExperimentConfig config;
  config.cluster = tiny_cluster();
  config.workload = workload::WorkloadSpec::canonical(2, 3);
  config.workload.foreground.base_rate_per_s = 0.2;
  for (auto& c : config.workload.task_classes) c.mean_per_day *= 0.2;
  config.solar.horizon_days = 6;
  config.solar_trace_csv = path;
  config.panel_area_m2 = 0.0;  // trace replaces the model

  core::SimulationEngine engine(config);
  // Supply follows the trace: zero at 04:00, ~5 kW at noon.
  EXPECT_DOUBLE_EQ(engine.supply().power_w(4 * 3600), 0.0);
  EXPECT_NEAR(engine.supply().power_w(12 * 3600), 5000.0, 1.0);
  const auto artifacts = engine.run();
  EXPECT_GT(artifacts.result.energy.green_supply_j, 0.0);
}

TEST(SolarTrace, MissingFileThrows) {
  core::ExperimentConfig config;
  config.cluster = tiny_cluster();
  config.workload = workload::WorkloadSpec::canonical(2, 3);
  config.solar.horizon_days = 6;
  config.solar_trace_csv = "/no/such/trace.csv";
  EXPECT_THROW(core::SimulationEngine{config}, RuntimeError);
}

// --------------------------------------------------- plan cache

TEST(PlanCache, CachedModeMatchesReplanOnBrownAndMisses) {
  auto base = [] {
    core::ExperimentConfig config;
    config.cluster = tiny_cluster();
    config.workload = workload::WorkloadSpec::canonical(3, 17);
    config.workload.foreground.base_rate_per_s = 0.3;
    for (auto& c : config.workload.task_classes) c.mean_per_day *= 0.4;
    config.solar.horizon_days = 8;
    config.panel_area_m2 = 60.0;
    config.battery = energy::BatteryConfig::lithium_ion(kwh_to_j(10));
    config.policy.kind = core::PolicyKind::kGreenMatch;
    config.policy.horizon_slots = 12;
    return config;
  };
  auto replan_config = base();
  auto cached_config = base();
  cached_config.policy.replan_every_slot = false;
  const auto replan = core::run_experiment(replan_config).result;
  const auto cached = core::run_experiment(cached_config).result;

  EXPECT_EQ(cached.qos.deadline_misses, 0u);
  EXPECT_EQ(cached.qos.tasks_completed, cached.qos.tasks_total);
  // Staleness may cost a little brown but not much.
  EXPECT_LE(cached.energy.brown_j, replan.energy.brown_j * 1.10);
  // And it must save planner time.
  EXPECT_LT(cached.scheduler.plan_solve_ms_total,
            replan.scheduler.plan_solve_ms_total);
}

}  // namespace
}  // namespace gm
