// DVFS tests: eco-frequency execution semantics and the energy effect.

#include <gtest/gtest.h>

#include "core/engine.hpp"
#include "util/units.hpp"

namespace gm::core {
namespace {

ExperimentConfig dvfs_config(double eco_speed) {
  ExperimentConfig config;
  config.cluster.racks = 2;
  config.cluster.nodes_per_rack = 8;
  config.cluster.placement.group_count = 128;
  config.cluster.placement.replication = 3;
  config.workload = workload::WorkloadSpec::canonical(3, 11);
  config.workload.foreground.base_rate_per_s = 0.5;
  // Keep the 16-node cluster unsaturated: eco mode stretches task
  // occupancy by 1/f, and the no-misses guarantee (urgent → full
  // speed) holds only while capacity remains for the urgent tasks.
  for (auto& c : config.workload.task_classes) c.mean_per_day *= 0.35;
  config.solar.horizon_days = 8;
  config.panel_area_m2 = 40.0;  // scarce solar: much night running
  config.battery = energy::BatteryConfig::lithium_ion(kwh_to_j(5));
  config.policy.kind = PolicyKind::kGreenMatch;
  config.policy.horizon_slots = 12;
  config.dvfs_eco_speed = eco_speed;
  return config;
}

TEST(Dvfs, EcoSpeedReducesBrownEnergy) {
  const auto full = run_experiment(dvfs_config(1.0)).result;
  const auto eco = run_experiment(dvfs_config(0.7)).result;
  // Energy per unit of night-time work drops with f²; the brown bill
  // must drop measurably.
  EXPECT_LT(eco.energy.brown_j, full.energy.brown_j * 0.995);
  // All work still completes.
  EXPECT_EQ(eco.qos.tasks_completed, eco.qos.tasks_total);
}

TEST(Dvfs, EcoSpeedStretchesSojourn) {
  const auto full = run_experiment(dvfs_config(1.0)).result;
  const auto eco = run_experiment(dvfs_config(0.6)).result;
  EXPECT_GE(eco.qos.mean_task_sojourn_h,
            full.qos.mean_task_sojourn_h * 0.999);
}

TEST(Dvfs, NoDeadlineMissesFromEcoMode) {
  // Urgent tasks are forced to full speed, so eco mode alone must not
  // create misses.
  for (double speed : {0.5, 0.7, 0.9}) {
    const auto r = run_experiment(dvfs_config(speed)).result;
    EXPECT_EQ(r.qos.deadline_misses, 0u) << "eco speed " << speed;
  }
}

TEST(Dvfs, ValidationRejectsBadSpeed) {
  auto config = dvfs_config(1.0);
  config.dvfs_eco_speed = 0.0;
  EXPECT_THROW(config.validate(), InvalidArgument);
  config.dvfs_eco_speed = 1.5;
  EXPECT_THROW(config.validate(), InvalidArgument);
  config.dvfs_eco_speed = 0.7;
  config.dvfs_alpha = 0.5;
  EXPECT_THROW(config.validate(), InvalidArgument);
}

TEST(Dvfs, AlphaOneMeansNoEfficiencyGain) {
  // With alpha = 1, power scales like work rate: energy per work unit
  // is constant and eco mode only shifts timing. Brown should stay
  // roughly equal (small timing differences allowed).
  auto linear_full = dvfs_config(1.0);
  linear_full.dvfs_alpha = 1.0;
  auto linear_eco = dvfs_config(0.7);
  linear_eco.dvfs_alpha = 1.0;
  const auto full = run_experiment(linear_full).result;
  const auto eco = run_experiment(linear_eco).result;
  EXPECT_NEAR(eco.energy.brown_j, full.energy.brown_j,
              0.05 * full.energy.brown_j);
}

}  // namespace
}  // namespace gm::core
