// Battery/ESD model tests: bounds, efficiency accounting identities,
// rate limits, DoD, self-discharge, presets — parameterized across
// technologies and capacities.

#include <gtest/gtest.h>

#include <cmath>

#include "energy/battery.hpp"
#include "util/assert.hpp"
#include "util/units.hpp"

namespace gm::energy {
namespace {

BatteryConfig small_li() { return BatteryConfig::lithium_ion(kwh_to_j(10)); }

TEST(BatteryConfig, PresetsMatchLiterature) {
  const auto la = BatteryConfig::lead_acid(kwh_to_j(90));
  EXPECT_DOUBLE_EQ(la.depth_of_discharge, 0.8);
  EXPECT_DOUBLE_EQ(la.charge_efficiency, 0.75);
  EXPECT_DOUBLE_EQ(la.charge_rate_c_per_hour, 0.125);
  EXPECT_DOUBLE_EQ(la.discharge_to_charge_ratio, 10.0);
  EXPECT_NEAR(la.price_usd(), 90 * 200.0, 1e-6);
  EXPECT_NEAR(la.volume_l(), 90'000.0 / 78.0, 1e-6);

  const auto li = BatteryConfig::lithium_ion(kwh_to_j(90));
  EXPECT_DOUBLE_EQ(li.charge_efficiency, 0.85);
  EXPECT_DOUBLE_EQ(li.charge_rate_c_per_hour, 0.25);
  EXPECT_NEAR(li.price_usd(), 90 * 525.0, 1e-6);
  EXPECT_NEAR(li.volume_l(), 90'000.0 / 150.0, 1e-6);
  EXPECT_LT(li.volume_l(), la.volume_l());  // LI is denser
}

TEST(BatteryConfig, RateCaps) {
  const auto li = BatteryConfig::lithium_ion(kwh_to_j(10));
  // 0.25 C/h on 10 kWh = 2.5 kW charge cap, 12.5 kW discharge cap.
  EXPECT_NEAR(li.max_charge_w(), 2500.0, 1e-9);
  EXPECT_NEAR(li.max_discharge_w(), 12500.0, 1e-9);
}

TEST(BatteryConfig, ValidationRejectsNonsense) {
  BatteryConfig c = small_li();
  c.depth_of_discharge = 0.0;
  EXPECT_THROW(c.validate(), InvalidArgument);
  c = small_li();
  c.charge_efficiency = 1.5;
  EXPECT_THROW(c.validate(), InvalidArgument);
  c = small_li();
  c.self_discharge_per_day = 1.0;
  EXPECT_THROW(c.validate(), InvalidArgument);
  c = small_li();
  c.capacity_j = -1.0;
  EXPECT_THROW(c.validate(), InvalidArgument);
}

TEST(Battery, StartsEmpty) {
  Battery b(small_li());
  EXPECT_DOUBLE_EQ(b.stored_j(), 0.0);
  EXPECT_DOUBLE_EQ(b.usable_capacity_j(), kwh_to_j(10) * 0.8);
  EXPECT_DOUBLE_EQ(b.headroom_j(), b.usable_capacity_j());
}

TEST(Battery, ChargeappliesEfficiency) {
  Battery b(small_li());
  const Joules drawn = b.charge(kwh_to_j(1), 3600.0);
  EXPECT_NEAR(drawn, kwh_to_j(1), 1e-6);  // under the rate cap
  EXPECT_NEAR(b.stored_j(), kwh_to_j(1) * 0.85, 1e-6);
  EXPECT_NEAR(b.conversion_loss_j(), kwh_to_j(1) * 0.15, 1e-6);
}

TEST(Battery, ChargeRateLimited) {
  Battery b(small_li());  // cap 2.5 kW
  const Joules drawn = b.charge(kwh_to_j(100), 3600.0);
  EXPECT_NEAR(drawn, 2500.0 * 3600.0, 1e-6);
}

TEST(Battery, ChargeHeadroomLimitedByDod) {
  Battery b(small_li());
  // Saturate: repeatedly offer large energy.
  for (int i = 0; i < 100; ++i) b.charge(kwh_to_j(100), 3600.0);
  EXPECT_NEAR(b.stored_j(), b.usable_capacity_j(), 1.0);
  EXPECT_DOUBLE_EQ(b.charge(kwh_to_j(1), 3600.0), 0.0);
}

TEST(Battery, DischargeDeliversWhatIsStored) {
  Battery b(small_li());
  b.charge(kwh_to_j(2), 3600.0);
  const Joules stored = b.stored_j();
  const Joules out = b.discharge(kwh_to_j(100), 3600.0);
  EXPECT_NEAR(out, stored, 1e-6);  // discharge efficiency 1.0
  EXPECT_NEAR(b.stored_j(), 0.0, 1e-6);
}

TEST(Battery, DischargeRateLimited) {
  BatteryConfig c = small_li();
  c.discharge_to_charge_ratio = 1.0;  // discharge cap = 2.5 kW
  Battery b(c);
  for (int i = 0; i < 10; ++i) b.charge(kwh_to_j(10), 3600.0);
  const Joules out = b.discharge(kwh_to_j(100), 3600.0);
  EXPECT_NEAR(out, 2500.0 * 3600.0, 1e-6);
}

TEST(Battery, DischargeEfficiencyAccounting) {
  BatteryConfig c = small_li();
  c.discharge_efficiency = 0.9;
  Battery b(c);
  b.charge(kwh_to_j(1), 3600.0);
  const Joules stored_before = b.stored_j();
  const Joules loss_before = b.conversion_loss_j();
  const Joules out = b.discharge(wh_to_j(100), 3600.0);
  EXPECT_NEAR(out, wh_to_j(100), 1e-6);
  EXPECT_NEAR(b.stored_j(), stored_before - wh_to_j(100) / 0.9, 1e-6);
  EXPECT_NEAR(b.conversion_loss_j() - loss_before,
              wh_to_j(100) * (1.0 / 0.9 - 1.0), 1e-6);
}

TEST(Battery, SelfDischargeDecaysStored) {
  Battery b(small_li());  // 0.1 %/day
  b.charge(kwh_to_j(2), 3600.0);
  const Joules before = b.stored_j();
  b.apply_self_discharge(kSecondsPerDay);
  EXPECT_NEAR(b.stored_j(), before * 0.999, 1.0);
  EXPECT_NEAR(b.self_discharge_loss_j(), before * 0.001, 1.0);
}

TEST(Battery, SelfDischargeCompoundsOverTime) {
  BatteryConfig c = small_li();
  c.self_discharge_per_day = 0.1;
  Battery b(c);
  b.charge(kwh_to_j(2), 3600.0);
  const Joules before = b.stored_j();
  for (int d = 0; d < 10; ++d) b.apply_self_discharge(kSecondsPerDay);
  EXPECT_NEAR(b.stored_j(), before * std::pow(0.9, 10), 10.0);
}

TEST(Battery, NegativeOperationsRejected) {
  Battery b(small_li());
  EXPECT_THROW(b.charge(-1.0, 10.0), InvalidArgument);
  EXPECT_THROW(b.discharge(-1.0, 10.0), InvalidArgument);
  EXPECT_THROW(b.apply_self_discharge(-1.0), InvalidArgument);
}

TEST(Battery, CapacityQueriesMatchOperations) {
  Battery b(small_li());
  const Joules can_charge = b.charge_capacity_j(3600.0);
  EXPECT_DOUBLE_EQ(b.charge(1e12, 3600.0), can_charge);
  const Joules can_out = b.discharge_capacity_j(3600.0);
  EXPECT_DOUBLE_EQ(b.discharge(1e12, 3600.0), can_out);
}

TEST(Battery, EquivalentCyclesCountDischarge) {
  Battery b(small_li());
  const Joules usable = b.usable_capacity_j();
  for (int i = 0; i < 20; ++i) {
    while (b.headroom_j() > 1.0) b.charge(kwh_to_j(10), 3600.0);
    while (b.stored_j() > 1.0) b.discharge(kwh_to_j(10), 3600.0);
  }
  EXPECT_NEAR(b.equivalent_cycles(), 20.0, 0.05);
  EXPECT_NEAR(b.total_discharged_out_j(), 20.0 * usable, usable * 0.01);
}

TEST(Battery, IdealPresetIsLossless) {
  Battery b(BatteryConfig::ideal(kwh_to_j(5)));
  const Joules in = b.charge(kwh_to_j(5), 3600.0);
  EXPECT_NEAR(in, kwh_to_j(5), 1e-6);
  EXPECT_NEAR(b.stored_j(), kwh_to_j(5), 1e-6);
  const Joules out = b.discharge(kwh_to_j(5), 3600.0);
  EXPECT_NEAR(out, kwh_to_j(5), 1e-6);
  EXPECT_DOUBLE_EQ(b.conversion_loss_j(), 0.0);
}

TEST(Battery, ZeroCapacityAcceptsNothing) {
  Battery b(BatteryConfig::lithium_ion(0.0));
  EXPECT_DOUBLE_EQ(b.charge(kwh_to_j(1), 3600.0), 0.0);
  EXPECT_DOUBLE_EQ(b.discharge(kwh_to_j(1), 3600.0), 0.0);
}

TEST(Battery, DegradationFadesCapacity) {
  BatteryConfig c = small_li();
  c.cycle_life_cycles = 100.0;  // aggressive, for test speed
  Battery b(c);
  EXPECT_DOUBLE_EQ(b.health_fraction(), 1.0);
  for (int i = 0; i < 50; ++i) {
    while (b.headroom_j() > 1.0) b.charge(kwh_to_j(10), 3600.0);
    while (b.stored_j() > 1.0) b.discharge(kwh_to_j(10), 3600.0);
  }
  // ~50 cycles of a 100-cycle life → ~10% fade (linear to 20% at EOL).
  EXPECT_LT(b.health_fraction(), 0.95);
  EXPECT_GT(b.health_fraction(), 0.85);
  EXPECT_LT(b.effective_usable_capacity_j(), b.usable_capacity_j());
  // Charging now tops out at the faded capacity.
  while (b.headroom_j() > 1.0) b.charge(kwh_to_j(10), 3600.0);
  EXPECT_NEAR(b.stored_j(), b.effective_usable_capacity_j(), 1.0);
}

TEST(Battery, DegradationFloorsAtEndOfLife) {
  BatteryConfig c = small_li();
  c.cycle_life_cycles = 2.0;
  Battery b(c);
  for (int i = 0; i < 30; ++i) {
    while (b.headroom_j() > 1.0) b.charge(kwh_to_j(10), 3600.0);
    while (b.stored_j() > 1.0) b.discharge(kwh_to_j(10), 3600.0);
  }
  EXPECT_DOUBLE_EQ(b.health_fraction(), 0.8);
}

TEST(Battery, DegradationDisabledByDefaultForCustom) {
  Battery b(BatteryConfig::ideal(kwh_to_j(5)));
  EXPECT_DOUBLE_EQ(b.health_fraction(), 1.0);
}

// --- property sweep: conservation identity across technologies/sizes

struct BatteryCase {
  BatteryTechnology tech;
  double capacity_kwh;
};

class BatteryConservation
    : public ::testing::TestWithParam<BatteryCase> {};

TEST_P(BatteryConservation, EnergyIsConserved) {
  const auto param = GetParam();
  const BatteryConfig config =
      param.tech == BatteryTechnology::kLeadAcid
          ? BatteryConfig::lead_acid(kwh_to_j(param.capacity_kwh))
          : BatteryConfig::lithium_ion(kwh_to_j(param.capacity_kwh));
  Battery b(config);

  // Random-ish charge/discharge pattern (deterministic).
  double phase = 0.3;
  for (int step = 0; step < 500; ++step) {
    phase = phase * 3.9 * (1.0 - phase);  // logistic chaos in (0,1)
    const Joules amount = kwh_to_j(5.0 * phase);
    if (step % 3 == 0)
      b.discharge(amount, 900.0);
    else
      b.charge(amount, 900.0);
    if (step % 10 == 0) b.apply_self_discharge(3600.0);

    // Invariants at every step.
    EXPECT_GE(b.stored_j(), -1e-6);
    EXPECT_LE(b.stored_j(), b.usable_capacity_j() + 1e-6);
    // in = stored + out/σd_out_adjustment + conversion + self losses
    const Joules accounted =
        b.stored_j() + b.total_discharged_out_j() +
        b.conversion_loss_j() + b.self_discharge_loss_j();
    EXPECT_NEAR(b.total_charged_in_j(), accounted,
                1e-6 * std::max(1.0, b.total_charged_in_j()));
  }
}

// The closed identity audited by gm::audit at end of run, here driven
// directly with fade and the capacity-clamp writeoff in play:
//   total_in − total_out = Δstored + conversion + self + clamp
// to 1e-9 relative at every step.
TEST_P(BatteryConservation, ClosedIdentityHoldsUnderFadeAndClamp) {
  const auto param = GetParam();
  BatteryConfig config =
      param.tech == BatteryTechnology::kLeadAcid
          ? BatteryConfig::lead_acid(kwh_to_j(param.capacity_kwh))
          : BatteryConfig::lithium_ion(kwh_to_j(param.capacity_kwh));
  config.initial_soc_fraction = 0.6;
  config.cycle_life_cycles = 20.0;  // brutal fade: clamp writeoffs fire
  Battery b(config);

  double phase = 0.7;
  for (int step = 0; step < 800; ++step) {
    phase = phase * 3.97 * (1.0 - phase);  // logistic chaos in (0,1)
    const Joules amount = kwh_to_j(8.0 * phase);
    if (step % 4 == 0)
      b.discharge(amount, 1800.0);
    else
      b.charge(amount, 1800.0);
    if (step % 7 == 0) b.apply_self_discharge(1800.0);

    const Joules lhs =
        b.total_charged_in_j() - b.total_discharged_out_j();
    const Joules rhs = (b.stored_j() - b.initial_stored_j()) +
                       b.conversion_loss_j() +
                       b.self_discharge_loss_j() + b.clamp_loss_j();
    EXPECT_NEAR(lhs, rhs, 1e-9 * std::max(1.0, std::abs(lhs)))
        << "step " << step;
    EXPECT_GE(b.clamp_loss_j(), 0.0);
  }
  // Fade actually engaged, so the clamp term was exercised, not idle.
  EXPECT_LT(b.health_fraction(), 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    TechAndSize, BatteryConservation,
    ::testing::Values(BatteryCase{BatteryTechnology::kLeadAcid, 1.0},
                      BatteryCase{BatteryTechnology::kLeadAcid, 40.0},
                      BatteryCase{BatteryTechnology::kLeadAcid, 150.0},
                      BatteryCase{BatteryTechnology::kLithiumIon, 1.0},
                      BatteryCase{BatteryTechnology::kLithiumIon, 40.0},
                      BatteryCase{BatteryTechnology::kLithiumIon, 150.0}));

// Directed regression for the fade-writeoff path fixed in this change:
// charge() used to clamp stored energy to the (faded) capacity and
// silently drop the difference. It must be booked as clamp loss and
// the identity must still close.
TEST(Battery, FadeWriteoffIsBookedAsClampLoss) {
  BatteryConfig c = BatteryConfig::lithium_ion(kwh_to_j(10.0));
  c.initial_soc_fraction = 1.0;
  c.cycle_life_cycles = 0.1;  // one small discharge strands the SoC
  Battery b(c);

  b.discharge(kwh_to_j(0.5), 3600.0);
  // Fade outran the discharge: stored now exceeds effective capacity.
  ASSERT_GT(b.stored_j(), b.effective_usable_capacity_j());

  b.charge(kwh_to_j(1.0), 3600.0);  // no headroom: pure writeoff
  EXPECT_DOUBLE_EQ(b.stored_j(), b.effective_usable_capacity_j());
  EXPECT_GT(b.clamp_loss_j(), 0.0);
  const Joules lhs = b.total_charged_in_j() - b.total_discharged_out_j();
  const Joules rhs = (b.stored_j() - b.initial_stored_j()) +
                     b.conversion_loss_j() + b.self_discharge_loss_j() +
                     b.clamp_loss_j();
  EXPECT_NEAR(lhs, rhs, 1e-9 * std::max(1.0, std::abs(lhs)));
}

}  // namespace
}  // namespace gm::energy
