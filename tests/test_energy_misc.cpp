// Grid meter, forecast providers and energy-ledger tests.

#include <gtest/gtest.h>

#include <cmath>

#include "energy/forecast.hpp"
#include "energy/grid.hpp"
#include "energy/ledger.hpp"
#include "energy/solar.hpp"
#include "util/assert.hpp"
#include "util/units.hpp"

namespace gm::energy {
namespace {

TEST(GridMeter, AccumulatesEnergyCarbonCost) {
  GridMeter meter;  // flat 300 g/kWh, 0.12 $/kWh
  meter.draw(0, kwh_to_j(10));
  meter.draw(3600, kwh_to_j(5));
  EXPECT_NEAR(meter.total_kwh(), 15.0, 1e-9);
  EXPECT_NEAR(meter.total_carbon_g(), 15.0 * 300.0, 1e-6);
  EXPECT_NEAR(meter.total_cost_usd(), 15.0 * 0.12, 1e-9);
}

TEST(GridMeter, TimeOfDayProfiles) {
  GridConfig config;
  config.carbon_g_per_kwh = PiecewiseLinear({0.0, 12.0, 24.0},
                                            {100.0, 500.0, 100.0});
  GridMeter meter(config);
  meter.draw(0, kwh_to_j(1));            // midnight: 100 g
  meter.draw(12 * 3600, kwh_to_j(1));    // noon: 500 g
  EXPECT_NEAR(meter.total_carbon_g(), 600.0, 1e-6);
}

TEST(GridMeter, RejectsNegativeDraw) {
  GridMeter meter;
  EXPECT_THROW(meter.draw(0, -1.0), InvalidArgument);
}

TEST(PerfectForecast, EqualsTruth) {
  auto src = std::make_shared<ConstantSource>(250.0);
  PerfectForecast forecast(src);
  EXPECT_NEAR(forecast.forecast_mean_w(0, 3600, 7200), 250.0, 1e-9);
  EXPECT_NEAR(forecast.forecast_energy_j(0, 0, 3600), 250.0 * 3600.0,
              1e-6);
}

TEST(PerfectForecast, MatchesSolarIntegral) {
  SolarConfig config;
  config.horizon_days = 3;
  auto model = std::make_shared<SolarIrradianceModel>(config);
  PerfectForecast forecast(model);
  const SimTime a = 10 * 3600, b = 11 * 3600;
  EXPECT_NEAR(forecast.forecast_mean_w(0, a, b),
              model->energy_j(a, b) / 3600.0, 1e-9);
}

TEST(PerfectForecast, ValidatesWindow) {
  PerfectForecast f(std::make_shared<NullSource>());
  EXPECT_THROW(f.forecast_mean_w(0, 100, 100), InvalidArgument);
  EXPECT_THROW(f.forecast_mean_w(200, 100, 300), InvalidArgument);
}

TEST(NoisyForecast, DeterministicPerQuery) {
  auto src = std::make_shared<ConstantSource>(1000.0);
  NoisyForecastConfig config;
  NoisyForecast forecast(src, config);
  const Watts a = forecast.forecast_mean_w(0, 7200, 10800);
  const Watts b = forecast.forecast_mean_w(0, 7200, 10800);
  EXPECT_DOUBLE_EQ(a, b);
}

TEST(NoisyForecast, ErrorGrowsWithLeadTime) {
  auto src = std::make_shared<ConstantSource>(1000.0);
  NoisyForecastConfig config;
  config.error_at_1h = 0.10;
  NoisyForecast forecast(src, config);

  // Empirical spread of relative error at 1 h vs 24 h lead.
  const auto spread = [&](SimTime lead) {
    double sq = 0.0;
    const int n = 300;
    for (int i = 0; i < n; ++i) {
      const SimTime t0 = lead + i * 3600;
      const double rel =
          forecast.forecast_mean_w(t0 - lead, t0, t0 + 3600) / 1000.0 -
          1.0;
      sq += rel * rel;
    }
    return std::sqrt(sq / n);
  };
  EXPECT_LT(spread(3600), spread(24 * 3600));
}

TEST(NoisyForecast, UnbiasedOnAverage) {
  auto src = std::make_shared<ConstantSource>(1000.0);
  NoisyForecastConfig config;
  config.error_at_1h = 0.15;
  NoisyForecast forecast(src, config);
  double sum = 0.0;
  const int n = 2000;
  for (int i = 0; i < n; ++i)
    sum += forecast.forecast_mean_w(0, 3600 + i * 3600,
                                    7200 + i * 3600);
  EXPECT_NEAR(sum / n, 1000.0, 25.0);
}

TEST(NoisyForecast, ZeroTruthStaysZero) {
  auto src = std::make_shared<NullSource>();
  NoisyForecast forecast(src, NoisyForecastConfig{});
  EXPECT_DOUBLE_EQ(forecast.forecast_mean_w(0, 3600, 7200), 0.0);
}

// -------------------------------------------------------------- Ledger

SlotRecord balanced_record() {
  SlotRecord r;
  r.slot = 0;
  r.start = 0;
  r.end = 3600;
  r.green_supply_j = 100.0;
  r.green_direct_j = 60.0;
  r.battery_charge_drawn_j = 30.0;
  r.curtailed_j = 10.0;
  r.battery_discharged_j = 20.0;
  r.brown_j = 40.0;
  r.demand_j = 120.0;  // 60 + 20 + 40
  return r;
}

TEST(Ledger, AcceptsBalancedRecord) {
  EnergyLedger ledger;
  ledger.append(balanced_record());
  EXPECT_EQ(ledger.size(), 1u);
  EXPECT_DOUBLE_EQ(ledger.totals().brown_j, 40.0);
}

TEST(Ledger, RejectsSupplyImbalance) {
  EnergyLedger ledger;
  SlotRecord r = balanced_record();
  r.curtailed_j = 99.0;
  EXPECT_THROW(ledger.append(r), InvalidArgument);
}

TEST(Ledger, RejectsDemandImbalance) {
  EnergyLedger ledger;
  SlotRecord r = balanced_record();
  r.brown_j = 0.0;
  EXPECT_THROW(ledger.append(r), InvalidArgument);
}

TEST(Ledger, RejectsNegativeTerms) {
  EnergyLedger ledger;
  SlotRecord r = balanced_record();
  r.brown_j = -40.0;
  r.demand_j = 40.0;
  EXPECT_THROW(ledger.append(r), InvalidArgument);
}

TEST(Ledger, RejectsEmptyInterval) {
  EnergyLedger ledger;
  SlotRecord r = balanced_record();
  r.end = r.start;
  EXPECT_THROW(ledger.append(r), InvalidArgument);
}

TEST(Ledger, TotalsAggregate) {
  EnergyLedger ledger;
  for (int i = 0; i < 5; ++i) {
    SlotRecord r = balanced_record();
    r.slot = i;
    r.start = i * 3600;
    r.end = r.start + 3600;
    ledger.append(r);
  }
  const auto totals = ledger.totals();
  EXPECT_DOUBLE_EQ(totals.green_supply_j, 500.0);
  EXPECT_DOUBLE_EQ(totals.demand_j, 600.0);
  EXPECT_DOUBLE_EQ(totals.brown_j, 200.0);
  EXPECT_NEAR(totals.green_utilization(), (300.0 + 150.0) / 500.0,
              1e-12);
  EXPECT_NEAR(totals.green_coverage_of_demand(),
              (600.0 - 200.0) / 600.0, 1e-12);
}

TEST(LedgerTotals, HandlesZeroDenominators) {
  LedgerTotals t;
  EXPECT_DOUBLE_EQ(t.green_utilization(), 0.0);
  EXPECT_DOUBLE_EQ(t.green_coverage_of_demand(), 0.0);
}

}  // namespace
}  // namespace gm::energy
