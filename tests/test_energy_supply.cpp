// Solar, wind, trace and composite supply model tests.

#include <gtest/gtest.h>

#include <cmath>

#include "energy/solar.hpp"
#include "energy/supply.hpp"
#include "energy/wind.hpp"
#include "util/assert.hpp"
#include "util/units.hpp"

namespace gm::energy {
namespace {

SolarConfig sunny_config() {
  SolarConfig c;
  c.horizon_days = 7;
  c.weather_persistence = 1.0;  // stays sunny
  c.clearness_noise = 0.0;
  c.clearness_sunny = 1.0;
  return c;
}

TEST(Solar, ZeroAtNight) {
  SolarIrradianceModel model(sunny_config());
  for (int d = 0; d < 7; ++d) {
    EXPECT_DOUBLE_EQ(model.power_w(d * 86400 + 0), 0.0);      // midnight
    EXPECT_DOUBLE_EQ(model.power_w(d * 86400 + 2 * 3600), 0.0);
    EXPECT_DOUBLE_EQ(model.power_w(d * 86400 + 23 * 3600), 0.0);
  }
}

TEST(Solar, PeaksAtNoon) {
  SolarIrradianceModel model(sunny_config());
  const double noon = model.power_w(12 * 3600);
  EXPECT_GT(noon, model.power_w(9 * 3600));
  EXPECT_GT(noon, model.power_w(15 * 3600));
  EXPECT_GT(noon, 600.0);   // June at 47°N, clear sky
  EXPECT_LT(noon, 1100.0);  // below solar constant after atmosphere
}

TEST(Solar, ElevationSymmetricAroundNoon) {
  SolarIrradianceModel model(sunny_config());
  const double e10 = model.solar_elevation_rad(10 * 3600);
  const double e14 = model.solar_elevation_rad(14 * 3600);
  EXPECT_NEAR(e10, e14, 1e-9);
  EXPECT_LT(model.solar_elevation_rad(0), 0.0);  // sun below horizon
}

TEST(Solar, CloudyDaysProduceLess) {
  SolarConfig c = sunny_config();
  c.clearness_sunny = 0.95;
  c.clearness_cloudy = 0.25;
  c.weather_persistence = 1.0;
  SolarIrradianceModel sunny(c);

  // Force a cloudy chain by flipping state means.
  SolarConfig cloudy_cfg = c;
  cloudy_cfg.clearness_sunny = 0.25;
  SolarIrradianceModel cloudy(cloudy_cfg);

  const SimTime noon = 12 * 3600;
  EXPECT_LT(cloudy.power_w(noon), sunny.power_w(noon) * 0.5);
}

TEST(Solar, DeterministicPerSeed) {
  SolarConfig c;
  c.seed = 77;
  SolarIrradianceModel a(c), b(c);
  for (SimTime t = 0; t < 3 * 86400; t += 1800)
    EXPECT_DOUBLE_EQ(a.power_w(t), b.power_w(t));
  c.seed = 78;
  SolarIrradianceModel other(c);
  bool differs = false;
  for (SimTime t = 0; t < 3 * 86400 && !differs; t += 1800)
    differs = a.power_w(t) != other.power_w(t);
  EXPECT_TRUE(differs);
}

TEST(Solar, ExtendsBeyondHorizonGracefully) {
  SolarConfig c = sunny_config();
  c.horizon_days = 2;
  SolarIrradianceModel model(c);
  // Querying day 5 must not crash and must still be diurnal.
  EXPECT_DOUBLE_EQ(model.power_w(5 * 86400), 0.0);
  EXPECT_GT(model.power_w(5 * 86400 + 12 * 3600), 0.0);
}

TEST(Solar, DailyEnergyPlausible) {
  SolarIrradianceModel model(sunny_config());
  const Joules day = model.energy_j(0, 86400, 300);
  // Clear June day at 47°N: ~7-9 kWh/m² is the physical ballpark.
  EXPECT_GT(j_to_kwh(day), 5.0);
  EXPECT_LT(j_to_kwh(day), 10.0);
}

TEST(Solar, ValidationErrors) {
  SolarConfig c;
  c.horizon_days = 0;
  EXPECT_THROW(SolarIrradianceModel{c}, InvalidArgument);
  c = SolarConfig{};
  c.latitude_deg = 95.0;
  EXPECT_THROW(SolarIrradianceModel{c}, InvalidArgument);
  c = SolarConfig{};
  c.weather_persistence = 1.5;
  EXPECT_THROW(SolarIrradianceModel{c}, InvalidArgument);
}

TEST(PvArray, ScalesWithAreaAndEfficiency) {
  auto irr = std::make_shared<SolarIrradianceModel>(sunny_config());
  PvArrayConfig small;
  small.panel_count = 4;
  PvArrayConfig big = small;
  big.panel_count = 8;
  PvArray a(irr, small), b(irr, big);
  const SimTime noon = 12 * 3600;
  EXPECT_NEAR(b.power_w(noon), 2.0 * a.power_w(noon), 1e-9);
  EXPECT_NEAR(b.total_area_m2(), 2.0 * a.total_area_m2(), 1e-12);
}

TEST(PvArray, RatedPeakMatchesReferenceIrradiance) {
  auto irr = std::make_shared<SolarIrradianceModel>(sunny_config());
  PvArrayConfig c;  // 8 × 1.38 m² × 17.4% × 0.85 ≈ 1.63 kW
  PvArray pv(irr, c);
  EXPECT_NEAR(pv.rated_peak_w(),
              1000.0 * 8 * 1.38 * 0.174 * 0.85, 1e-6);
}

TEST(PvArray, MakeHelperMatchesArea) {
  auto pv = make_pv_array(sunny_config(), 120.0);
  EXPECT_NEAR(pv->total_area_m2(), 120.0, 1e-9);
  auto none = make_pv_array(sunny_config(), 0.0);
  EXPECT_DOUBLE_EQ(none->power_w(12 * 3600), 0.0);
}

// ---------------------------------------------------------------- Wind

TEST(Wind, TurbineCurveShape) {
  WindConfig c;
  WindModel model(c);
  EXPECT_DOUBLE_EQ(model.turbine_power_w(0.0), 0.0);
  EXPECT_DOUBLE_EQ(model.turbine_power_w(2.9), 0.0);    // below cut-in
  EXPECT_GT(model.turbine_power_w(6.0), 0.0);
  EXPECT_LT(model.turbine_power_w(6.0), c.rated_power_w);
  EXPECT_DOUBLE_EQ(model.turbine_power_w(12.0), c.rated_power_w);
  EXPECT_DOUBLE_EQ(model.turbine_power_w(20.0), c.rated_power_w);
  EXPECT_DOUBLE_EQ(model.turbine_power_w(25.0), 0.0);   // cut-out
  EXPECT_DOUBLE_EQ(model.turbine_power_w(30.0), 0.0);
}

TEST(Wind, CurveMonotoneBetweenCutInAndRated) {
  WindModel model{WindConfig{}};
  double prev = 0.0;
  for (double v = 3.0; v <= 12.0; v += 0.5) {
    const double p = model.turbine_power_w(v);
    EXPECT_GE(p, prev);
    prev = p;
  }
}

TEST(Wind, SpeedsHavePlausibleMean) {
  WindConfig c;
  c.horizon_days = 60;
  WindModel model(c);
  double sum = 0.0;
  int n = 0;
  for (SimTime t = 0; t < 60 * 86400; t += 3600, ++n)
    sum += model.wind_speed_ms(t);
  // Weibull k=2 λ=7 → mean = 7·Γ(1.5) ≈ 6.2 m/s.
  EXPECT_NEAR(sum / n, 6.2, 1.0);
}

TEST(Wind, DeterministicPerSeed) {
  WindConfig c;
  WindModel a(c), b(c);
  for (SimTime t = 0; t < 2 * 86400; t += 900)
    EXPECT_DOUBLE_EQ(a.power_w(t), b.power_w(t));
}

TEST(Wind, ProducesAtNightUnlikeSolar) {
  // The structural difference the future-work experiment relies on:
  // wind output is not diurnal.
  WindConfig c;
  c.horizon_days = 30;
  WindModel model(c);
  Joules night = 0.0;
  for (int d = 0; d < 30; ++d)
    night += model.energy_j(d * 86400, d * 86400 + 6 * 3600, 900);
  EXPECT_GT(night, 0.0);
}

TEST(Wind, ValidationErrors) {
  WindConfig c;
  c.autocorrelation = 1.0;
  EXPECT_THROW(WindModel{c}, InvalidArgument);
  c = WindConfig{};
  c.cut_in_ms = 15.0;  // above rated
  EXPECT_THROW(WindModel{c}, InvalidArgument);
}

// ----------------------------------------------------- Generic sources

TEST(TraceSource, InterpolatesBetweenSamples) {
  TraceSource trace({0.0, 100.0, 50.0}, 3600);
  EXPECT_DOUBLE_EQ(trace.power_w(0), 0.0);
  EXPECT_DOUBLE_EQ(trace.power_w(1800), 50.0);
  EXPECT_DOUBLE_EQ(trace.power_w(3600), 100.0);
  EXPECT_DOUBLE_EQ(trace.power_w(5400), 75.0);
  // Past the end: ramps to zero then stays zero.
  EXPECT_DOUBLE_EQ(trace.power_w(3 * 3600), 0.0);
  EXPECT_DOUBLE_EQ(trace.power_w(-5), 0.0);
}

TEST(TraceSource, RejectsNegativePower) {
  EXPECT_THROW(TraceSource({1.0, -2.0}, 60), InvalidArgument);
  EXPECT_THROW(TraceSource({1.0}, 0), InvalidArgument);
}

TEST(Sources, ConstantAndNull) {
  ConstantSource c(42.0);
  NullSource n;
  EXPECT_DOUBLE_EQ(c.power_w(12345), 42.0);
  EXPECT_DOUBLE_EQ(n.power_w(12345), 0.0);
  EXPECT_NEAR(c.energy_j(0, 3600), 42.0 * 3600, 1e-9);
}

TEST(Sources, ScaledMultiplies) {
  auto base = std::make_shared<ConstantSource>(10.0);
  ScaledSource scaled(base, 2.5);
  EXPECT_DOUBLE_EQ(scaled.power_w(0), 25.0);
  EXPECT_NEAR(scaled.energy_j(0, 100), 2500.0, 1e-9);
}

TEST(Sources, CompositeSums) {
  CompositeSource comp;
  comp.add(std::make_shared<ConstantSource>(10.0));
  comp.add(std::make_shared<ConstantSource>(5.0));
  EXPECT_DOUBLE_EQ(comp.power_w(0), 15.0);
}

TEST(Sources, TrapezoidIntegrationAccuracy) {
  // Integrate a linear ramp exactly.
  TraceSource ramp({0.0, 3600.0}, 3600);
  EXPECT_NEAR(ramp.energy_j(0, 3600, 60), 0.5 * 3600.0 * 3600.0, 1.0);
}

}  // namespace
}  // namespace gm::energy
