// Randomized engine property sweep: derive a pseudo-random (but
// deterministic) configuration from each seed, run it, and check the
// invariants that must hold for *every* configuration — energy
// conservation, battery bounds, task accounting, coverage economics.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/engine.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace gm::core {
namespace {

ExperimentConfig random_config(std::uint64_t seed) {
  Rng rng(seed);
  ExperimentConfig config;
  config.cluster.racks = 2;
  config.cluster.nodes_per_rack = 6 + static_cast<int>(rng.uniform_u64(6));
  config.cluster.placement.group_count =
      64 << rng.uniform_u64(2);  // 64 or 128
  config.cluster.placement.replication =
      2 + static_cast<int>(rng.uniform_u64(2));
  config.workload =
      workload::WorkloadSpec::canonical(2 + static_cast<int>(
                                            rng.uniform_u64(2)),
                                        seed * 31 + 7);
  config.workload.foreground.base_rate_per_s = rng.uniform(0.1, 1.0);
  for (auto& c : config.workload.task_classes)
    c.mean_per_day *= rng.uniform(0.2, 0.6);
  config.solar.horizon_days = 8;
  config.solar.seed = seed * 17 + 3;
  config.panel_area_m2 = rng.uniform(0.0, 150.0);
  config.battery =
      rng.bernoulli(0.5)
          ? energy::BatteryConfig::lithium_ion(kwh_to_j(rng.uniform(0, 30)))
          : energy::BatteryConfig::lead_acid(kwh_to_j(rng.uniform(0, 30)));
  config.battery.initial_soc_fraction = rng.uniform(0.0, 1.0);
  const PolicyKind kinds[] = {
      PolicyKind::kAsap, PolicyKind::kOpportunistic,
      PolicyKind::kGreenMatch, PolicyKind::kGreenMatchGreedy,
      PolicyKind::kNightShift};
  config.policy.kind = kinds[rng.uniform_u64(5)];
  config.policy.deferral_fraction = rng.uniform(0.0, 1.0);
  config.policy.horizon_slots = 6 + static_cast<int>(rng.uniform_u64(18));
  config.policy.replan_every_slot = rng.bernoulli(0.7);
  config.policy.carbon_aware = rng.bernoulli(0.3);
  config.policy.battery_aware = rng.bernoulli(0.3);
  config.min_dwell_slots = static_cast<int>(rng.uniform_u64(4));
  config.dvfs_eco_speed = rng.bernoulli(0.5) ? 1.0 : rng.uniform(0.5, 1.0);
  config.noisy_forecast = rng.bernoulli(0.3);
  config.use_wind = rng.bernoulli(0.25);
  config.wind.horizon_days = 8;
  config.wind.seed = seed * 13 + 1;
  if (rng.bernoulli(0.3)) {
    config.node_failures.push_back(NodeFailureEvent{
        .fail_at = static_cast<SimTime>(rng.uniform_u64(36)) * 3600,
        .recover_at = 0,
        .node = static_cast<storage::NodeId>(
            rng.uniform_u64(config.cluster.total_nodes()))});
  }
  return config;
}

class EngineProperties : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EngineProperties, InvariantsHoldForRandomConfigs) {
  const ExperimentConfig config = random_config(GetParam());
  SimulationEngine engine(config);
  const auto artifacts = engine.run();
  const auto& r = artifacts.result;
  const auto& e = r.energy;

  // --- global conservation (the per-slot identity is asserted inside
  // the ledger; re-derive it from the totals).
  EXPECT_NEAR(e.green_supply_j,
              e.green_direct_j + e.battery_charge_drawn_j + e.curtailed_j,
              1e-6 * std::max(1.0, e.green_supply_j));
  EXPECT_NEAR(e.demand_j,
              e.green_direct_j + e.battery_discharged_j + e.brown_j,
              1e-6 * std::max(1.0, e.demand_j));

  // --- battery never exceeds its usable capacity in any slot.
  const Joules usable = config.battery.usable_capacity_j();
  for (const auto& slot : artifacts.ledger.slots()) {
    EXPECT_GE(slot.battery_stored_end_j, -1e-6);
    EXPECT_LE(slot.battery_stored_end_j, usable + 1e-6);
  }

  // --- battery internal accounting closes.
  EXPECT_NEAR(r.battery.charged_in_j +
                  config.battery.initial_soc_fraction * usable,
              r.battery.discharged_out_j + r.battery.final_stored_j +
                  r.battery.conversion_loss_j +
                  r.battery.self_discharge_loss_j,
              1e-6 * std::max(1.0, r.battery.charged_in_j) + 1.0);

  // --- task accounting: completions never exceed admissions, and
  // anything uncompleted is reflected in the miss count.
  EXPECT_LE(r.qos.tasks_completed, r.qos.tasks_total);
  EXPECT_GE(r.qos.deadline_misses,
            r.qos.tasks_total - r.qos.tasks_completed);

  // --- the fleet never dips below the coverage economics: mean active
  // nodes is at least the (possibly failure-reduced) floor minus one
  // failed node, and never above the total.
  EXPECT_LE(r.scheduler.mean_active_nodes,
            static_cast<double>(config.cluster.total_nodes()));
  EXPECT_GT(r.scheduler.mean_active_nodes, 0.0);

  // --- fixed horizon: every run covers workload + drain exactly.
  const auto expected_slots = static_cast<std::size_t>(
      config.workload.duration_days * 24 + config.max_drain_slots);
  EXPECT_EQ(artifacts.ledger.size(), expected_slots);

  // --- grid totals consistent with brown energy.
  if (e.brown_j == 0.0) {
    EXPECT_DOUBLE_EQ(r.grid_carbon_g, 0.0);
  } else {
    EXPECT_GT(r.grid_carbon_g, 0.0);
  }

  // --- determinism: a second run of the same config is identical.
  const auto again = run_experiment(config);
  EXPECT_DOUBLE_EQ(again.result.energy.brown_j, e.brown_j);
  EXPECT_EQ(again.result.qos.tasks_completed, r.qos.tasks_completed);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineProperties,
                         ::testing::Range<std::uint64_t>(1, 13));

}  // namespace
}  // namespace gm::core
