// Failure-injection tests: node crashes, repair-task generation,
// coverage degradation and recovery, at both fidelities.

#include <gtest/gtest.h>

#include <algorithm>

#include "core/engine.hpp"
#include "core/power_manager.hpp"
#include "util/assert.hpp"
#include "util/units.hpp"

namespace gm::core {
namespace {

storage::ClusterConfig tiny_cluster() {
  storage::ClusterConfig c;
  c.racks = 2;
  c.nodes_per_rack = 8;
  c.placement.group_count = 128;
  c.placement.replication = 3;
  return c;
}

ExperimentConfig failure_config() {
  ExperimentConfig config;
  config.cluster = tiny_cluster();
  config.workload = workload::WorkloadSpec::canonical(3, 7);
  config.workload.foreground.base_rate_per_s = 0.5;
  for (auto& c : config.workload.task_classes) c.mean_per_day *= 0.4;
  config.solar.horizon_days = 8;
  config.panel_area_m2 = 60.0;
  config.battery = energy::BatteryConfig::lithium_ion(kwh_to_j(10));
  config.policy.kind = PolicyKind::kGreenMatch;
  config.policy.horizon_slots = 12;
  return config;
}

// ------------------------------------------------ PowerManager level

TEST(Failures, FailNodeDropsItAndShrinksGuarantee) {
  storage::Cluster cluster(tiny_cluster());
  PowerManager pm(cluster, 0);
  pm.fail_node(3, 100);
  EXPECT_TRUE(pm.is_failed(3));
  EXPECT_FALSE(pm.active()[3]);
  EXPECT_EQ(cluster.node(3).state(), storage::NodeState::kOff);

  // apply_target never re-activates a failed node.
  pm.apply_target(1, 16, 3600);
  EXPECT_FALSE(pm.active()[3]);
  EXPECT_EQ(pm.active_count(), 15);
}

TEST(Failures, RecoveryMakesNodeActivatableAgain) {
  storage::Cluster cluster(tiny_cluster());
  PowerManager pm(cluster, 0);
  pm.fail_node(5, 0);
  pm.recover_node(5, 7200, 2);
  EXPECT_FALSE(pm.is_failed(5));
  pm.apply_target(3, 16, 10800);
  EXPECT_TRUE(pm.active()[5]);
}

TEST(Failures, FailureIsIdempotent) {
  storage::Cluster cluster(tiny_cluster());
  PowerManager pm(cluster, 0);
  pm.fail_node(2, 0);
  pm.fail_node(2, 100);  // no-op
  EXPECT_EQ(pm.active_count(), 15);
  pm.recover_node(2, 200, 0);
  pm.recover_node(2, 300, 0);  // no-op
}

TEST(Failures, ForcedWakeSkipsFailedReplicas) {
  storage::Cluster cluster(tiny_cluster());
  PowerManager pm(cluster, 0);
  // Fail every replica of group 0: force_wake reports darkness.
  for (storage::NodeId n : cluster.placement().replicas(0))
    pm.fail_node(n, 0);
  EXPECT_EQ(pm.force_wake_for_group(0, 100, 0), kSimTimeMax);
  EXPECT_EQ(pm.wake_sleeping_replica(0, 100, 0), storage::kInvalidNode);
}

TEST(Failures, MinFeasibleTracksFailures) {
  storage::Cluster cluster(tiny_cluster());
  PowerManager pm(cluster, 0);
  const int before = pm.min_feasible();
  pm.fail_node(0, 0);
  pm.fail_node(1, 0);
  // Losing nodes cannot lower the (coverable) floor by more than the
  // failed count and usually raises it.
  EXPECT_GE(pm.min_feasible(), before - 2);
  pm.recover_node(0, 100, 0);
  pm.recover_node(1, 100, 0);
  EXPECT_EQ(pm.min_feasible(), before);
}

TEST(Cluster, ChooseActiveSetHonorsExclusions) {
  storage::Cluster cluster(tiny_cluster());
  std::vector<bool> excluded(cluster.node_count(), false);
  excluded[4] = excluded[9] = true;
  for (int target : {0, 8, 16}) {
    const auto active = cluster.choose_active_set(target, &excluded);
    EXPECT_FALSE(active[4]);
    EXPECT_FALSE(active[9]);
    EXPECT_EQ(cluster.covered_groups(active),
              cluster.coverable_groups(excluded));
  }
}

// ----------------------------------------------------- Engine level

TEST(Failures, EngineInjectsRepairTasksAndSurvives) {
  auto config = failure_config();
  const storage::NodeId victim = 2;
  config.node_failures.push_back(
      NodeFailureEvent{.fail_at = 12 * 3600,
                       .recover_at = 36 * 3600,
                       .node = victim});
  SimulationEngine engine(config);
  const std::size_t groups_on_victim =
      engine.cluster().placement().groups_on(victim).size();
  const auto artifacts = engine.run();
  const auto& r = artifacts.result;

  EXPECT_EQ(r.scheduler.nodes_failed, 1u);
  // Workload tasks + one repair per hosted group all admitted.
  EXPECT_EQ(r.qos.tasks_total,
            engine.workload().tasks.size() + groups_on_victim);
  EXPECT_EQ(r.qos.tasks_completed, r.qos.tasks_total);
  // Energy conservation still holds (ledger asserts internally).
  EXPECT_GT(r.energy.demand_j, 0.0);
}

TEST(Failures, PermanentFailureAlsoDrains) {
  auto config = failure_config();
  config.node_failures.push_back(
      NodeFailureEvent{.fail_at = 6 * 3600, .recover_at = 0, .node = 7});
  const auto artifacts = run_experiment(config);
  EXPECT_EQ(artifacts.result.scheduler.nodes_failed, 1u);
  EXPECT_EQ(artifacts.result.qos.tasks_completed,
            artifacts.result.qos.tasks_total);
}

TEST(Failures, MultipleFailuresEventLevelKeepsServing) {
  auto config = failure_config();
  config.fidelity = Fidelity::kEventLevel;
  config.node_failures.push_back(
      NodeFailureEvent{.fail_at = 10 * 3600, .recover_at = 0, .node = 1});
  config.node_failures.push_back(NodeFailureEvent{
      .fail_at = 20 * 3600, .recover_at = 50 * 3600, .node = 12});
  const auto artifacts = run_experiment(config);
  const auto& r = artifacts.result;
  EXPECT_EQ(r.scheduler.nodes_failed, 2u);
  EXPECT_GT(r.qos.foreground_requests, 0u);
  // With replication 3 and only 2 concurrent failures no group is
  // fully dark, so reads stay available.
  EXPECT_EQ(r.qos.unavailable_reads, 0u);
}

TEST(Failures, ValidationRejectsBadEvents) {
  auto config = failure_config();
  config.node_failures.push_back(
      NodeFailureEvent{.fail_at = -5, .recover_at = 0, .node = 0});
  EXPECT_THROW(config.validate(), InvalidArgument);
  config.node_failures.clear();
  config.node_failures.push_back(
      NodeFailureEvent{.fail_at = 100, .recover_at = 50, .node = 0});
  EXPECT_THROW(config.validate(), InvalidArgument);
}

TEST(Failures, UnknownNodeRejectedAtRuntime) {
  auto config = failure_config();
  config.node_failures.push_back(
      NodeFailureEvent{.fail_at = 0, .recover_at = 0, .node = 999});
  EXPECT_THROW(run_experiment(config), InvalidArgument);
}

}  // namespace
}  // namespace gm::core
