// Federation (follow-the-sun) tests: lockstep execution, task routing
// semantics, conservation per site, and the solar phase offsets that
// make geographic scheduling meaningful.

#include <gtest/gtest.h>

#include <cmath>

#include "energy/solar.hpp"
#include "federation/federation.hpp"
#include "util/assert.hpp"
#include "util/units.hpp"

namespace gm::federation {
namespace {

core::ExperimentConfig small_site() {
  core::ExperimentConfig config;
  config.cluster.racks = 2;
  config.cluster.nodes_per_rack = 8;
  config.cluster.placement.group_count = 128;
  config.cluster.placement.replication = 3;
  config.workload = workload::WorkloadSpec::canonical(3, 55);
  config.workload.foreground.base_rate_per_s = 0.5;
  for (auto& c : config.workload.task_classes) c.mean_per_day *= 0.4;
  config.solar.horizon_days = 8;
  config.panel_area_m2 = 60.0;
  config.battery = energy::BatteryConfig::lithium_ion(kwh_to_j(5));
  config.policy.kind = core::PolicyKind::kGreenMatch;
  config.policy.horizon_slots = 12;
  return config;
}

TEST(SolarOffset, ShiftsNoonAsConfigured) {
  energy::SolarConfig base;
  base.horizon_days = 3;
  base.weather_persistence = 1.0;
  base.clearness_noise = 0.0;
  energy::SolarIrradianceModel at_zero(base);

  energy::SolarConfig shifted = base;
  shifted.utc_offset_h = 8.0;
  energy::SolarIrradianceModel at_eight(shifted);

  // Local noon of the +8 site occurs at simulation hour 4.
  EXPECT_GT(at_eight.power_w(4 * 3600), at_zero.power_w(4 * 3600));
  EXPECT_NEAR(at_eight.power_w(4 * 3600), at_zero.power_w(12 * 3600),
              at_zero.power_w(12 * 3600) * 0.02);
  // And the +8 site is dark at simulation noon + 8h... (20:00 local = 4:00)
  EXPECT_DOUBLE_EQ(at_eight.power_w(20 * 3600), 0.0);
}

TEST(SolarOffset, NegativeOffsetValidRange) {
  energy::SolarConfig c;
  c.utc_offset_h = -8.0;
  EXPECT_NO_THROW(energy::SolarIrradianceModel{c});
  c.utc_offset_h = 20.0;
  EXPECT_THROW(energy::SolarIrradianceModel{c}, InvalidArgument);
}

TEST(Federation, ValidationCatchesMismatchedHorizons) {
  FederationConfig config;
  config.sites.push_back({"a", small_site()});
  config.sites.push_back({"b", small_site()});
  config.sites[1].experiment.workload.duration_days = 5;
  EXPECT_THROW(config.validate(), InvalidArgument);
  EXPECT_THROW(FederationConfig{}.validate(), InvalidArgument);
}

TEST(Federation, SingleSiteMatchesStandaloneRun) {
  FederationConfig config;
  config.sites.push_back({"solo", small_site()});
  const auto fed = run_federation(config);
  const auto solo = core::run_experiment(small_site());
  ASSERT_EQ(fed.sites.size(), 1u);
  EXPECT_DOUBLE_EQ(fed.sites[0].result.energy.brown_j,
                   solo.result.energy.brown_j);
  EXPECT_EQ(fed.tasks_moved, 0u);
}

TEST(Federation, MakeFollowTheSunStaggersOffsets) {
  const auto config = make_follow_the_sun(small_site(), 3);
  ASSERT_EQ(config.sites.size(), 3u);
  EXPECT_DOUBLE_EQ(config.sites[0].experiment.solar.utc_offset_h, 0.0);
  EXPECT_DOUBLE_EQ(config.sites[1].experiment.solar.utc_offset_h, 8.0);
  EXPECT_DOUBLE_EQ(config.sites[2].experiment.solar.utc_offset_h, -8.0);
  // Distinct seeds per site.
  EXPECT_NE(config.sites[0].experiment.workload.seed,
            config.sites[1].experiment.workload.seed);
}

TEST(Federation, RoutingMovesTasksAndConserves) {
  // Asymmetric supply guarantees the gate opens: the dark site can
  // never cover its backlog locally.
  FederationConfig config;
  auto dark = small_site();
  dark.panel_area_m2 = 0.0;
  auto sunny = small_site();
  sunny.panel_area_m2 = 240.0;
  sunny.workload.seed += 9;
  config.sites.push_back({"dark", dark});
  config.sites.push_back({"sunny", sunny});
  config.enable_task_routing = true;
  config.min_surplus_gap_w = 500.0;
  const auto fed = run_federation(config);

  EXPECT_GT(fed.tasks_moved, 0u);
  EXPECT_NEAR(j_to_kwh(fed.wan_energy_j),
              j_to_kwh(static_cast<double>(fed.tasks_moved) * 30e3),
              1e-9);

  // Every task completes somewhere: total completed across sites
  // equals total admitted across sites.
  std::uint64_t total = 0, completed = 0;
  for (const auto& s : fed.sites) {
    total += s.result.qos.tasks_total;
    completed += s.result.qos.tasks_completed;
    // Per-site conservation identities still hold.
    const auto& e = s.result.energy;
    EXPECT_NEAR(e.demand_j,
                e.green_direct_j + e.battery_discharged_j + e.brown_j,
                1e-6 * std::max(1.0, e.demand_j));
  }
  EXPECT_EQ(completed, total);
}

TEST(Federation, RoutingHelpsWhenDonorHasNoSolar) {
  // The regime follow-the-sun exists for: one site with no local
  // renewables, one with plenty. Routing must strictly reduce total
  // grid energy (WAN cost included).
  FederationConfig with;
  auto dark = small_site();
  dark.panel_area_m2 = 0.0;
  auto sunny = small_site();
  sunny.panel_area_m2 = 240.0;
  sunny.workload.seed += 9;
  sunny.solar.seed += 9;
  with.sites.push_back({"dark", dark});
  with.sites.push_back({"sunny", sunny});
  with.enable_task_routing = true;
  with.min_surplus_gap_w = 500.0;
  auto without = with;
  without.enable_task_routing = false;

  const auto on = run_federation(with);
  const auto off = run_federation(without);
  EXPECT_GT(on.tasks_moved, 0u);
  EXPECT_EQ(off.tasks_moved, 0u);
  EXPECT_LT(on.total_grid_kwh(), off.total_grid_kwh());
}

TEST(Federation, GatedRoutingDoesNoHarmWhenSymmetric) {
  // Symmetric staggered sites: every site reaches its own noon within
  // the deadline windows, so local deferral suffices. The donor-
  // deficiency gate must keep the broker from adding churn that costs
  // more than it saves.
  auto with = make_follow_the_sun(small_site(), 3);
  with.enable_task_routing = true;
  auto without = with;
  without.enable_task_routing = false;

  const auto on = run_federation(with);
  const auto off = run_federation(without);
  EXPECT_LE(on.total_grid_kwh(), off.total_grid_kwh() * 1.03);
}

TEST(Federation, StepwiseEngineAgreesWithRun) {
  // The stepwise API used by the federation must reproduce run().
  const auto config = small_site();
  core::SimulationEngine stepwise(config);
  const SlotIndex slots = stepwise.total_slots();
  for (SlotIndex s = 0; s < slots; ++s) stepwise.run_slot(s);
  const auto a = stepwise.finalize();
  const auto b = core::run_experiment(config);
  EXPECT_DOUBLE_EQ(a.result.energy.brown_j, b.result.energy.brown_j);
  EXPECT_EQ(a.result.qos.tasks_completed, b.result.qos.tasks_completed);
}

TEST(Federation, StepwiseApiGuards) {
  core::SimulationEngine engine(small_site());
  engine.run_slot(0);
  EXPECT_THROW(engine.run_slot(2), InvalidArgument);  // gap
  EXPECT_THROW(engine.run_slot(0), InvalidArgument);  // repeat
}

TEST(Federation, ExtractRespectsSlackAndRunning) {
  core::SimulationEngine engine(small_site());
  engine.run_slot(0);
  engine.run_slot(1);
  const SimTime now = 2 * 3600;
  const auto moved =
      engine.extract_transferable_tasks(now, 1e12, 100);
  EXPECT_TRUE(moved.empty());  // nothing has infinite slack
  const auto some = engine.extract_transferable_tasks(now, 0.0, 2);
  EXPECT_LE(some.size(), 2u);
  for (const auto& p : some) {
    EXPECT_FALSE(p.running);
    EXPECT_GE(p.slack(now), 0.0);
  }
}

TEST(Federation, InjectValidatesGroup) {
  core::SimulationEngine engine(small_site());
  storage::BackgroundTask task;
  task.id = 1;
  task.group = 9999;  // out of range for 128 groups
  task.deadline = 24 * 3600;
  task.work_s = 600.0;
  EXPECT_THROW(engine.inject_task(task, 600.0), InvalidArgument);
  task.group = 5;
  EXPECT_NO_THROW(engine.inject_task(task, 600.0));
  EXPECT_EQ(engine.pending_count(), 1u);
}

}  // namespace
}  // namespace gm::federation
