// Forecast-error model tests: unit-mean noise, cap enforcement,
// per-horizon bias, AR(1) correlation across a forecast horizon, and
// the sub-hourly revision regression (noise used to be keyed on whole
// lead-hours, so all forecast issues inside one hour were identical).

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "energy/forecast.hpp"
#include "energy/supply.hpp"
#include "util/assert.hpp"

namespace gm::energy {
namespace {

constexpr Watts kTruth = 1000.0;

std::shared_ptr<ConstantSource> truth_source() {
  return std::make_shared<ConstantSource>(kTruth);
}

/// Relative log-error of the forecast for hour-slot `slot` as issued
/// at `issued_at`.
double log_error(const NoisyForecast& f, SimTime issued_at,
                 std::int64_t slot) {
  const SimTime t0 = slot * 3600;
  return std::log(f.forecast_mean_w(issued_at, t0, t0 + 3600) / kTruth);
}

TEST(ForecastModel, UnitMeanWithAr1Noise) {
  NoisyForecastConfig config;
  config.error_at_1h = 0.15;
  config.ar1_rho = 0.8;
  NoisyForecast forecast(truth_source(), config);
  double sum = 0.0;
  const int n = 2000;
  for (int i = 0; i < n; ++i)
    sum += forecast.forecast_mean_w(static_cast<SimTime>(i) * 3600,
                                    static_cast<SimTime>(i + 1) * 3600,
                                    static_cast<SimTime>(i + 2) * 3600);
  // The lognormal correction keeps E[forecast] = truth regardless of
  // the correlation structure.
  EXPECT_NEAR(sum / n, kTruth, 25.0);
}

TEST(ForecastModel, ErrorCapBoundsLongLeads) {
  NoisyForecastConfig config;
  config.error_at_1h = 0.2;
  config.error_cap = 0.3;
  NoisyForecast forecast(truth_source(), config);
  // At 100 h of lead the uncapped sigma would be 2.0; the cap keeps the
  // empirical log-error spread near 0.3.
  double sq = 0.0;
  const int n = 500;
  for (int i = 0; i < n; ++i) {
    const double e = log_error(forecast, i * 3600, i + 100);
    sq += e * e;
  }
  const double spread = std::sqrt(sq / n);
  EXPECT_LT(spread, 0.45);
  EXPECT_GT(spread, 0.2);
}

TEST(ForecastModel, BiasShiftsForecastDeterministically) {
  NoisyForecastConfig config;
  config.error_at_1h = 0.0;  // isolate the bias term
  config.bias_at_1h = 0.1;
  NoisyForecast forecast(truth_source(), config);
  // sigma = 0: forecast = truth * (1 + bias_at_1h * sqrt(lead_h)).
  EXPECT_NEAR(forecast.forecast_mean_w(0, 3600, 7200),
              kTruth * 1.1, 1e-9);
  EXPECT_NEAR(forecast.forecast_mean_w(0, 4 * 3600, 5 * 3600),
              kTruth * 1.2, 1e-9);
}

TEST(ForecastModel, BiasClampedToErrorCap) {
  NoisyForecastConfig config;
  config.error_at_1h = 0.0;
  config.bias_at_1h = 0.2;
  config.error_cap = 0.5;
  NoisyForecast forecast(truth_source(), config);
  // At 100 h lead the raw bias would be 2.0; the cap clamps it to 0.5.
  EXPECT_NEAR(forecast.forecast_mean_w(0, 100 * 3600, 101 * 3600),
              kTruth * 1.5, 1e-9);
}

TEST(ForecastModel, Ar1CorrelatesConsecutiveHorizonSlots) {
  const auto lag1_corr = [](double rho) {
    NoisyForecastConfig config;
    config.error_at_1h = 0.2;
    config.error_cap = 10.0;  // keep sigma unclamped across the leads
    config.ar1_rho = rho;
    NoisyForecast forecast(truth_source(), config);
    std::vector<double> a, b;
    for (int issue = 0; issue < 400; ++issue) {
      // Two consecutive windows of the same forecast issue.
      a.push_back(log_error(forecast, issue * 3600, issue + 6));
      b.push_back(log_error(forecast, issue * 3600, issue + 7));
    }
    double ma = 0.0, mb = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
      ma += a[i];
      mb += b[i];
    }
    ma /= a.size();
    mb /= b.size();
    double cov = 0.0, va = 0.0, vb = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
      cov += (a[i] - ma) * (b[i] - mb);
      va += (a[i] - ma) * (a[i] - ma);
      vb += (b[i] - mb) * (b[i] - mb);
    }
    return cov / std::sqrt(va * vb);
  };
  // Independent slots decorrelate; rho = 0.9 errs together.
  EXPECT_LT(std::abs(lag1_corr(0.0)), 0.25);
  EXPECT_GT(lag1_corr(0.9), 0.6);
}

// Regression: the noise key used to truncate the lead to whole hours,
// so with sub-hourly slots every forecast issued inside the same hour
// returned the same value — forecasts never revised between slots.
// Keying at the engine's slot resolution restores revisions while
// keeping (seed, window, issue slot) determinism.
TEST(ForecastModel, SubHourlyIssuesReviseTheForecast) {
  NoisyForecastConfig config;
  config.error_at_1h = 0.2;
  NoisyForecast forecast(truth_source(), config,
                         /*lead_resolution_s=*/900);
  const SimTime window = 2 * 3600;  // forecast target
  const Watts at_0 = forecast.forecast_mean_w(0, window, window + 900);
  const Watts at_15 =
      forecast.forecast_mean_w(900, window, window + 900);
  const Watts at_30 =
      forecast.forecast_mean_w(1800, window, window + 900);
  EXPECT_NE(at_0, at_15);
  EXPECT_NE(at_15, at_30);
  // Same issue slot, repeated query: bit-identical.
  EXPECT_DOUBLE_EQ(
      at_15, forecast.forecast_mean_w(900, window, window + 900));
}

TEST(ForecastModel, DeterministicAcrossInstances) {
  NoisyForecastConfig config;
  config.error_at_1h = 0.1;
  config.ar1_rho = 0.5;
  config.bias_at_1h = 0.05;
  NoisyForecast a(truth_source(), config);
  NoisyForecast b(truth_source(), config);
  for (int i = 0; i < 24; ++i)
    EXPECT_DOUBLE_EQ(log_error(a, 0, i + 1), log_error(b, 0, i + 1));
  config.seed = 123;  // different seed, different stream
  NoisyForecast c(truth_source(), config);
  EXPECT_NE(log_error(a, 0, 6), log_error(c, 0, 6));
}

TEST(ForecastModel, ValidatesConfig) {
  NoisyForecastConfig config;
  config.ar1_rho = 1.0;
  EXPECT_THROW(config.validate(), InvalidArgument);
  config.ar1_rho = 0.0;
  config.error_cap = 0.0;
  EXPECT_THROW(config.validate(), InvalidArgument);
  config.error_cap = 0.5;
  config.bias_at_1h = -1.0;
  EXPECT_THROW(config.validate(), InvalidArgument);
  config.bias_at_1h = 0.0;
  config.error_at_1h = -0.1;
  EXPECT_THROW(config.validate(), InvalidArgument);
}

}  // namespace
}  // namespace gm::energy
