// MAID per-disk power-management tests.

#include <gtest/gtest.h>

#include "core/engine.hpp"
#include "util/units.hpp"

namespace gm::core {
namespace {

ExperimentConfig maid_config(bool maid) {
  ExperimentConfig config;
  config.cluster.racks = 2;
  config.cluster.nodes_per_rack = 8;
  config.cluster.placement.group_count = 128;
  config.cluster.placement.replication = 3;
  config.workload = workload::WorkloadSpec::canonical(3, 23);
  config.workload.foreground.base_rate_per_s = 0.3;
  for (auto& c : config.workload.task_classes) c.mean_per_day *= 0.35;
  config.solar.horizon_days = 8;
  config.panel_area_m2 = 60.0;
  config.battery = energy::BatteryConfig::lithium_ion(kwh_to_j(10));
  config.policy.kind = PolicyKind::kGreenMatch;
  config.policy.horizon_slots = 12;
  config.maid_enabled = maid;
  return config;
}

TEST(Maid, ReducesDemandAndBrownWithoutMisses) {
  const auto off = run_experiment(maid_config(false)).result;
  const auto on = run_experiment(maid_config(true)).result;
  EXPECT_LT(on.energy.demand_j, off.energy.demand_j);
  EXPECT_LT(on.energy.brown_j, off.energy.brown_j);
  EXPECT_EQ(on.qos.tasks_completed, on.qos.tasks_total);
  // MAID must not add misses beyond whatever the baseline already has
  // (this seed saturates the tiny cluster once regardless of MAID).
  EXPECT_EQ(on.qos.deadline_misses, off.qos.deadline_misses);
}

TEST(Maid, ConservationStillHolds) {
  const auto artifacts = run_experiment(maid_config(true));
  const auto& e = artifacts.result.energy;
  EXPECT_NEAR(e.green_supply_j,
              e.green_direct_j + e.battery_charge_drawn_j + e.curtailed_j,
              1e-6 * std::max(1.0, e.green_supply_j));
  EXPECT_NEAR(e.demand_j,
              e.green_direct_j + e.battery_discharged_j + e.brown_j,
              1e-6 * std::max(1.0, e.demand_j));
}

TEST(Maid, EventModeStillServesAllRequests) {
  auto config = maid_config(true);
  config.fidelity = Fidelity::kEventLevel;
  const auto r = run_experiment(config).result;
  EXPECT_GT(r.qos.foreground_requests, 0u);
  EXPECT_EQ(r.qos.unavailable_reads, 0u);
  EXPECT_GT(r.qos.read_latency_p95_s, 0.0);
}

TEST(Maid, MinDisksRespected) {
  auto config = maid_config(true);
  config.maid_min_spinning_disks = 0;
  EXPECT_THROW(config.validate(), InvalidArgument);
  config.maid_min_spinning_disks = 2;
  // With 2 disks kept, demand sits between maid-off and maid-min-1.
  const auto keep2 = run_experiment(config).result;
  const auto keep1 = run_experiment(maid_config(true)).result;
  const auto off = run_experiment(maid_config(false)).result;
  EXPECT_LT(keep2.energy.demand_j, off.energy.demand_j);
  EXPECT_GE(keep2.energy.demand_j, keep1.energy.demand_j * 0.999);
}

TEST(Maid, DeterministicWithMaid) {
  const auto a = run_experiment(maid_config(true)).result;
  const auto b = run_experiment(maid_config(true)).result;
  EXPECT_DOUBLE_EQ(a.energy.brown_j, b.energy.brown_j);
}

}  // namespace
}  // namespace gm::core
