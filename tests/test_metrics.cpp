// Metrics/report computation tests.

#include <gtest/gtest.h>

#include <sstream>

#include "metrics/report.hpp"

namespace gm::metrics {
namespace {

TEST(Qos, MissRateHandlesZeroTasks) {
  QosReport qos;
  EXPECT_DOUBLE_EQ(qos.deadline_miss_rate(), 0.0);
  qos.tasks_total = 200;
  qos.deadline_misses = 5;
  EXPECT_DOUBLE_EQ(qos.deadline_miss_rate(), 0.025);
}

TEST(RunResult, UnitConversions) {
  RunResult r;
  r.energy.brown_j = kwh_to_j(12.5);
  r.energy.green_supply_j = kwh_to_j(100.0);
  r.energy.curtailed_j = kwh_to_j(7.0);
  r.energy.demand_j = kwh_to_j(80.0);
  EXPECT_DOUBLE_EQ(r.brown_kwh(), 12.5);
  EXPECT_DOUBLE_EQ(r.green_supply_kwh(), 100.0);
  EXPECT_DOUBLE_EQ(r.curtailed_kwh(), 7.0);
  EXPECT_DOUBLE_EQ(r.demand_kwh(), 80.0);
}

TEST(RunResult, LossesAggregateAllChannels) {
  RunResult r;
  r.battery.conversion_loss_j = kwh_to_j(1.0);
  r.battery.self_discharge_loss_j = kwh_to_j(2.0);
  r.energy.overhead_transition_j = kwh_to_j(3.0);
  r.energy.overhead_migration_j = kwh_to_j(4.0);
  EXPECT_DOUBLE_EQ(r.losses_kwh(), 10.0);
}

TEST(RunResult, SummaryMentionsKeyNumbers) {
  RunResult r;
  r.scheduler.policy_name = "test-policy";
  r.duration = 2 * 86400;
  r.energy.demand_j = kwh_to_j(100.0);
  r.energy.green_supply_j = kwh_to_j(60.0);
  r.energy.green_direct_j = kwh_to_j(50.0);
  r.energy.battery_charge_drawn_j = kwh_to_j(10.0);
  r.energy.battery_discharged_j = kwh_to_j(8.0);
  r.energy.brown_j = kwh_to_j(42.0);
  r.qos.tasks_total = 10;
  r.qos.tasks_completed = 9;
  r.qos.deadline_misses = 1;

  std::ostringstream os;
  r.print_summary(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("test-policy"), std::string::npos);
  EXPECT_NE(s.find("42.00"), std::string::npos);
  EXPECT_NE(s.find("9/10"), std::string::npos);
  EXPECT_NE(s.find("2.00 days"), std::string::npos);
}

}  // namespace
}  // namespace gm::metrics
