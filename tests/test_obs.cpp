// gm::obs — metrics registry semantics, JSONL trace round-trip,
// manifest contents, and the guarantee that attaching a recorder never
// perturbs the simulation itself.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

#include "core/config_io.hpp"
#include "core/engine.hpp"
#include "obs/metrics_registry.hpp"
#include "obs/profile.hpp"
#include "obs/recorder.hpp"
#include "obs/trace.hpp"
#include "util/units.hpp"

namespace gm::obs {
namespace {

// --- registry ----------------------------------------------------------

TEST(MetricsRegistry, CountersAccumulateAndSet) {
  MetricsRegistry m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.counter("missing"), 0u);
  m.counter_add("a");
  m.counter_add("a", 4);
  EXPECT_EQ(m.counter("a"), 5u);
  m.counter_set("a", 2);
  EXPECT_EQ(m.counter("a"), 2u);
  EXPECT_FALSE(m.empty());
}

TEST(MetricsRegistry, GaugesOverwrite) {
  MetricsRegistry m;
  m.gauge_set("g", 1.5);
  m.gauge_set("g", -3.0);
  EXPECT_DOUBLE_EQ(m.gauge("g"), -3.0);
  EXPECT_DOUBLE_EQ(m.gauge("missing"), 0.0);
}

TEST(MetricsRegistry, ObserveFeedsAccumulator) {
  MetricsRegistry m;
  m.observe("x", 1.0);
  m.observe("x", 3.0);
  const sim::Accumulator* acc = m.accumulator("x");
  ASSERT_NE(acc, nullptr);
  EXPECT_EQ(acc->count(), 2u);
  EXPECT_DOUBLE_EQ(acc->mean(), 2.0);
  EXPECT_DOUBLE_EQ(acc->min(), 1.0);
  EXPECT_DOUBLE_EQ(acc->max(), 3.0);
  EXPECT_EQ(m.accumulator("missing"), nullptr);
}

TEST(MetricsRegistry, HistogramKeepsFirstLayout) {
  MetricsRegistry m;
  sim::Histogram& h = m.histogram("lat", 0.0, 10.0, 10);
  h.add(3.5);
  // Later lookups ignore the layout arguments.
  sim::Histogram& again = m.histogram("lat", 0.0, 100.0, 3);
  EXPECT_EQ(&h, &again);
  EXPECT_EQ(again.bin_count(), 10u);
  EXPECT_EQ(again.count(), 1u);
  ASSERT_NE(m.find_histogram("lat"), nullptr);
  EXPECT_EQ(m.find_histogram("nope"), nullptr);
}

TEST(MetricsRegistry, CsvExportShape) {
  MetricsRegistry m;
  m.counter_add("runs", 3);
  m.gauge_set("soc", 0.5);
  m.observe("lat", 2.0);
  std::ostringstream out;
  m.write_csv(out);
  const std::string csv = out.str();
  EXPECT_NE(csv.find("metric,kind,field,value"), std::string::npos);
  EXPECT_NE(csv.find("runs,counter"), std::string::npos);
  EXPECT_NE(csv.find("soc,gauge"), std::string::npos);
  EXPECT_NE(csv.find("lat,summary"), std::string::npos);
}

TEST(MetricsRegistry, PrometheusNamesSanitized) {
  MetricsRegistry m;
  m.counter_add("events.task-admit", 7);
  m.observe("slot.brown_kwh", 1.0);
  m.histogram("lat", 0.0, 4.0, 2).add(1.0);
  std::ostringstream out;
  m.write_prometheus(out);
  const std::string prom = out.str();
  EXPECT_NE(prom.find("gm_events_task_admit 7"), std::string::npos);
  EXPECT_NE(prom.find("gm_slot_brown_kwh_count"), std::string::npos);
  EXPECT_NE(prom.find("le=\"+Inf\""), std::string::npos);
  // Raw dotted/dashed names never leak into the exposition.
  EXPECT_EQ(prom.find("task-admit"), std::string::npos);
  EXPECT_EQ(prom.find("slot.brown"), std::string::npos);
}

TEST(MetricsRegistry, PrometheusEmptyHistogram) {
  // A registered-but-never-fed histogram must still export a complete,
  // scrape-valid series: every bucket at 0, _count 0, _sum 0.
  MetricsRegistry m;
  m.histogram("idle", 0.0, 10.0, 5);
  std::ostringstream out;
  m.write_prometheus(out);
  const std::string prom = out.str();
  EXPECT_NE(prom.find("# TYPE gm_idle histogram"), std::string::npos);
  EXPECT_NE(prom.find("gm_idle_bucket{le=\"2\"} 0"), std::string::npos);
  EXPECT_NE(prom.find("gm_idle_bucket{le=\"+Inf\"} 0"),
            std::string::npos);
  EXPECT_NE(prom.find("gm_idle_count 0"), std::string::npos);
  EXPECT_NE(prom.find("gm_idle_sum 0"), std::string::npos);
}

TEST(MetricsRegistry, PrometheusSingleBinHistogram) {
  // Degenerate layout: one bin spanning [lo, hi). The le boundary of
  // that bin must equal hi, and the cumulative +Inf series must agree
  // with it for in-range samples.
  MetricsRegistry m;
  sim::Histogram& h = m.histogram("one", 0.0, 10.0, 1);
  h.add(2.0);
  h.add(7.0);
  std::ostringstream out;
  m.write_prometheus(out);
  const std::string prom = out.str();
  EXPECT_NE(prom.find("gm_one_bucket{le=\"10\"} 2"), std::string::npos);
  EXPECT_NE(prom.find("gm_one_bucket{le=\"+Inf\"} 2"),
            std::string::npos);
  EXPECT_NE(prom.find("gm_one_count 2"), std::string::npos);
  // _sum is the bin-midpoint approximation: both samples count as 5.
  EXPECT_NE(prom.find("gm_one_sum 10"), std::string::npos);
}

TEST(MetricsRegistry, PrometheusSumApproximatesWithBinMidpoints) {
  // The histogram stores only counts, so _sum is reconstructed as
  // Σ bin_mid·count, with underflow valued at lo and overflow at hi.
  MetricsRegistry m;
  sim::Histogram& h = m.histogram("lat", 10.0, 30.0, 2);
  h.add(0.0);    // underflow -> valued at lo = 10
  h.add(15.0);   // bin [10,20) -> mid 15
  h.add(25.0);   // bin [20,30) -> mid 25
  h.add(100.0);  // overflow -> valued at hi = 30
  std::ostringstream out;
  m.write_prometheus(out);
  const std::string prom = out.str();
  // Cumulative buckets include the underflow; +Inf includes everything.
  EXPECT_NE(prom.find("gm_lat_bucket{le=\"20\"} 2"), std::string::npos);
  EXPECT_NE(prom.find("gm_lat_bucket{le=\"30\"} 3"), std::string::npos);
  EXPECT_NE(prom.find("gm_lat_bucket{le=\"+Inf\"} 4"),
            std::string::npos);
  EXPECT_NE(prom.find("gm_lat_count 4"), std::string::npos);
  EXPECT_NE(prom.find("gm_lat_sum 80"), std::string::npos);
}

// --- log-bucketed latency histogram -------------------------------------

TEST(LogHistogram, EmptyReportsZero) {
  const LogHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 0.0);
}

TEST(LogHistogram, SingleValueLandsInItsBucket) {
  LogHistogram h;
  h.add(1000.0);
  EXPECT_EQ(h.count(), 1u);
  // 1000 falls in the [896, 1024) log bucket (exp 9, mantissa 3); any
  // quantile must resolve inside it.
  for (double q : {0.0, 0.5, 0.95, 1.0}) {
    EXPECT_GE(h.quantile(q), 896.0) << q;
    EXPECT_LE(h.quantile(q), 1024.0) << q;
  }
}

TEST(LogHistogram, QuantilesTrackAUniformRampWithinBucketError) {
  LogHistogram h;
  for (int v = 1; v <= 1000; ++v) h.add(static_cast<double>(v));
  EXPECT_EQ(h.count(), 1000u);
  // Buckets are powers of two split in four: worst-case quantile error
  // is one quarter-octave (~12.5%), plus interpolation slack.
  EXPECT_NEAR(h.quantile(0.50), 500.0, 500.0 * 0.15);
  EXPECT_NEAR(h.quantile(0.95), 950.0, 950.0 * 0.15);
  EXPECT_NEAR(h.quantile(0.99), 990.0, 990.0 * 0.15);
  EXPECT_LE(h.quantile(0.50), h.quantile(0.95));
  EXPECT_LE(h.quantile(0.95), h.quantile(0.99));
}

TEST(LogHistogram, NegativeValuesClampToZero) {
  LogHistogram h;
  h.add(-5.0);
  h.add(-1e18);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_GE(h.quantile(1.0), 0.0);
  EXPECT_LE(h.quantile(1.0), 1.0);
}

// --- flat JSON ---------------------------------------------------------

TEST(FlatJson, RoundTripsEscapedStrings) {
  JsonObject o;
  o.set("kind", std::string("we\"ird\\\n")).set("n", 2.5).set("b", true);
  const FlatRecord r = parse_flat_json(o.str());
  EXPECT_EQ(record_str(r, "kind"), "we\"ird\\\n");
  EXPECT_DOUBLE_EQ(record_num(r, "n"), 2.5);
  EXPECT_EQ(record_str(r, "b"), "true");
  EXPECT_EQ(record_str(r, "missing", "dflt"), "dflt");
}

TEST(FlatJson, RejectsNestingAndGarbage) {
  EXPECT_THROW(parse_flat_json(R"({"a":{"b":1}})"), RuntimeError);
  EXPECT_THROW(parse_flat_json("not json"), RuntimeError);
  EXPECT_THROW(parse_flat_json(R"({"a":[1]})"), RuntimeError);
}

// --- end-to-end against the engine -------------------------------------

core::ExperimentConfig short_config() {
  core::ExperimentConfig config;
  config.cluster.racks = 2;
  config.cluster.nodes_per_rack = 6;
  config.cluster.placement.group_count = 64;
  config.workload = workload::WorkloadSpec::canonical(2, 99);
  config.solar.horizon_days = 4;
  config.panel_area_m2 = 60.0;
  config.battery = energy::BatteryConfig::lithium_ion(kwh_to_j(10));
  config.policy.kind = core::PolicyKind::kGreenMatch;
  return config;
}

std::vector<FlatRecord> read_trace(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.is_open()) << path;
  std::vector<FlatRecord> records;
  std::string line;
  while (std::getline(in, line))
    if (!line.empty()) records.push_back(parse_flat_json(line));
  return records;
}

TEST(ObsEndToEnd, TraceRoundTripAndEnergyBalance) {
  const std::string trace_path =
      testing::TempDir() + "gm_obs_roundtrip.jsonl";
  RecorderConfig rc;
  rc.trace_path = trace_path;
  auto recorder = std::make_shared<Recorder>(rc);
  const auto artifacts =
      core::run_experiment(short_config(), recorder);
  recorder->finish();

  const auto records = read_trace(trace_path);
  ASSERT_FALSE(records.empty());

  // One slot record per ledger slot, in order; balances must match the
  // ledger identities exactly (same doubles, just serialized).
  std::int64_t slots = 0;
  double brown_j = 0.0;
  for (const auto& r : records) {
    if (record_str(r, "kind") != "slot") continue;
    EXPECT_EQ(static_cast<std::int64_t>(record_num(r, "slot")), slots);
    ++slots;
    brown_j += record_num(r, "brown_j");
    const double supply_residual =
        record_num(r, "green_supply_j") -
        (record_num(r, "green_direct_j") +
         record_num(r, "battery_in_j") + record_num(r, "curtailed_j"));
    const double demand_residual =
        record_num(r, "demand_j") -
        (record_num(r, "green_direct_j") +
         record_num(r, "battery_out_j") + record_num(r, "brown_j"));
    EXPECT_NEAR(supply_residual, 0.0, 1e-6);
    EXPECT_NEAR(demand_residual, 0.0, 1e-6);
  }
  EXPECT_EQ(slots,
            static_cast<std::int64_t>(artifacts.ledger.slots().size()));
  EXPECT_NEAR(j_to_kwh(brown_j), artifacts.result.brown_kwh(), 1e-9);

  // Event bookkeeping: every admitted task leaves an admit record, and
  // the registry agrees with the trace.
  std::uint64_t admits = 0;
  for (const auto& r : records)
    if (record_str(r, "kind") == "task_admit") ++admits;
  EXPECT_EQ(admits, artifacts.result.qos.tasks_total);
  EXPECT_EQ(recorder->metrics().counter("events.task_admit"), admits);

  // finish() appended the run_end marker with the slot total.
  const auto& last = records.back();
  EXPECT_EQ(record_str(last, "kind"), "run_end");
  EXPECT_EQ(static_cast<std::int64_t>(record_num(last, "slots")), slots);

  std::remove(trace_path.c_str());
}

TEST(ObsEndToEnd, ManifestEchoesSeedsAndConfig) {
  const std::string trace_path =
      testing::TempDir() + "gm_obs_manifest.jsonl";
  const std::string manifest_path =
      testing::TempDir() + "gm_obs_manifest.manifest.json";
  auto config = short_config();
  config.workload.seed = 424242;
  RecorderConfig rc;
  rc.trace_path = trace_path;
  {
    auto recorder = std::make_shared<Recorder>(rc);
    // The manifest is written at engine construction, before any slot
    // runs — an aborted run still leaves its reproduction recipe.
    core::SimulationEngine engine(config, recorder);
  }

  std::ifstream in(manifest_path);
  ASSERT_TRUE(in.is_open()) << manifest_path;
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string manifest = buffer.str();
  EXPECT_NE(manifest.find("\"workload\": 424242"), std::string::npos);
  EXPECT_NE(manifest.find("\"policy\": \"greenmatch\""),
            std::string::npos);
  // Every config_echo pair appears (spot-check plus full sweep).
  for (const auto& [key, value] : core::config_echo(config))
    EXPECT_NE(manifest.find('"' + key + "\": \"" + value + '"'),
              std::string::npos)
        << key << '=' << value;

  std::remove(trace_path.c_str());
  std::remove(manifest_path.c_str());
}

TEST(ObsEndToEnd, ProvenanceExplainsEveryPendingTask) {
  const std::string trace_path =
      testing::TempDir() + "gm_obs_provenance.jsonl";
  RecorderConfig rc;
  rc.trace_path = trace_path;
  rc.provenance = true;
  auto recorder = std::make_shared<Recorder>(rc);
  const auto artifacts =
      core::run_experiment(short_config(), recorder);
  recorder->finish();

  std::uint64_t decisions = 0;
  std::uint64_t with_offset = 0;
  for (const auto& r : read_trace(trace_path)) {
    if (record_str(r, "kind") != "decision") continue;
    ++decisions;
    // Schema: every decision carries the identifying triple plus an
    // action/reason pair from the documented vocabulary.
    EXPECT_TRUE(r.count("slot") && r.count("task") && r.count("policy"))
        << "decision record missing identity fields";
    const std::string action = record_str(r, "action");
    EXPECT_TRUE(action == "run" || action == "defer" ||
                action == "beyond" || action == "drop")
        << action;
    EXPECT_FALSE(record_str(r, "reason").empty());
    if (r.count("chosen_offset")) {
      ++with_offset;
      EXPECT_GE(record_num(r, "chosen_offset"), 0.0);
      // Planned assignments expose the class aggregation they rode in
      // on and the marginal green-vs-brown path costs.
      EXPECT_GE(record_num(r, "class_size"), 1.0);
      EXPECT_GE(record_num(r, "demux_rank"), 0.0);
      EXPECT_GE(record_num(r, "brown_cost", -1.0),
                record_num(r, "green_cost", -1.0));
    }
  }
  EXPECT_GT(decisions, 0u);
  EXPECT_GT(with_offset, 0u);
  // Per-action counters land in the registry alongside the trace.
  std::uint64_t counted = 0;
  for (const char* a : {"run", "defer", "beyond", "drop"})
    counted += recorder->metrics().counter(std::string("decisions.") + a);
  EXPECT_EQ(counted, decisions);
  EXPECT_GT(artifacts.result.qos.tasks_completed, 0u);

  std::remove(trace_path.c_str());
}

TEST(ObsEndToEnd, ChromeTraceIsWellFormed) {
  const std::string trace_path =
      testing::TempDir() + "gm_obs_chrome.jsonl";
  const std::string chrome_path =
      testing::TempDir() + "gm_obs_chrome.trace.json";
  RecorderConfig rc;
  rc.trace_path = trace_path;
  rc.chrome_trace_path = chrome_path;
  auto recorder = std::make_shared<Recorder>(rc);
  core::run_experiment(short_config(), recorder);
  recorder->finish();

  std::ifstream in(chrome_path);
  ASSERT_TRUE(in.is_open()) << chrome_path;
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string json = buffer.str();
  // Trace-event envelope with the two pid lanes and both event types
  // (spans from GM_OBS_SCOPE, counters from slot records). Deep
  // validation lives in tools/check_chrome_trace.py; this guards the
  // envelope so the CI checker can always at least load the file.
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(json.find("greenmatch wall-clock"), std::string::npos);
  EXPECT_NE(json.find("greenmatch sim-time"), std::string::npos);
  EXPECT_NE(json.find("green_supply_kwh"), std::string::npos);
  EXPECT_EQ(json.substr(json.size() - 4), "\n]}\n");
  EXPECT_EQ(recorder->chrome()->dropped(), 0u);

  std::remove(trace_path.c_str());
  std::remove(chrome_path.c_str());
}

TEST(ObsEndToEnd, RecorderDoesNotPerturbTheRun) {
  const auto config = short_config();
  const auto plain = core::run_experiment(config).result;

  // Every observability feature at once — trace, profile, metrics,
  // decision provenance, deep Chrome tracing — must still be read-only
  // with respect to the simulation.
  const std::string trace_path =
      testing::TempDir() + "gm_obs_perturb.jsonl";
  const std::string chrome_path =
      testing::TempDir() + "gm_obs_perturb.trace.json";
  const std::string metrics_path =
      testing::TempDir() + "gm_obs_perturb.metrics.csv";
  RecorderConfig rc;
  rc.trace_path = trace_path;
  rc.profile = true;
  rc.provenance = true;
  rc.chrome_trace_path = chrome_path;
  rc.metrics_path = metrics_path;
  auto recorder = std::make_shared<Recorder>(rc);
  const auto traced = core::run_experiment(config, recorder).result;
  recorder->finish();

  // Bit-identical outcomes: observability must be read-only.
  EXPECT_EQ(plain.energy.brown_j, traced.energy.brown_j);
  EXPECT_EQ(plain.energy.green_supply_j, traced.energy.green_supply_j);
  EXPECT_EQ(plain.energy.curtailed_j, traced.energy.curtailed_j);
  EXPECT_EQ(plain.energy.demand_j, traced.energy.demand_j);
  EXPECT_EQ(plain.qos.tasks_completed, traced.qos.tasks_completed);
  EXPECT_EQ(plain.qos.deadline_misses, traced.qos.deadline_misses);
  EXPECT_EQ(plain.qos.read_latency_p95_s, traced.qos.read_latency_p95_s);
  EXPECT_EQ(plain.scheduler.node_power_ons,
            traced.scheduler.node_power_ons);
  EXPECT_EQ(plain.scheduler.task_migrations,
            traced.scheduler.task_migrations);
  EXPECT_EQ(plain.battery.equivalent_cycles,
            traced.battery.equivalent_cycles);

  std::remove(trace_path.c_str());
  std::remove(chrome_path.c_str());
  std::remove(metrics_path.c_str());
}

TEST(ObsEndToEnd, DisabledScopesAreInertOutsideARun) {
  // No recorder installed on this thread: the macro must be a no-op.
  EXPECT_EQ(current_recorder(), nullptr);
  GM_OBS_SCOPE("test.noop");
  EXPECT_EQ(current_recorder(), nullptr);
}

}  // namespace
}  // namespace gm::obs
