// Tests for the parallel sweep driver (core/sweep.hpp): per-point
// artifact path derivation and — the harness's central guarantee —
// that a --jobs=8 sweep renders byte-identically to --jobs=1.

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <string>

#include "core/sweep.hpp"

namespace gm::core {
namespace {

// ------------------------------------------------------ per_value_path

TEST(PerValuePath, SplicesIndexAndValueBeforeExtension) {
  EXPECT_EQ(per_value_path("run.jsonl", 0, "asap"), "run.0-asap.jsonl");
  EXPECT_EQ(per_value_path("out/run.jsonl", 3, "40"),
            "out/run.3-40.jsonl");
}

TEST(PerValuePath, NoExtensionAppends) {
  EXPECT_EQ(per_value_path("runfile", 1, "a"), "runfile.1-a");
  // The dot in the directory is not an extension.
  EXPECT_EQ(per_value_path("dir.d/run", 2, "b"), "dir.d/run.2-b");
}

TEST(PerValuePath, SanitizesPathHostileCharacters) {
  EXPECT_EQ(per_value_path("run.jsonl", 0, "1/2"), "run.0-1_2.jsonl");
}

TEST(PerValuePath, DistinctPointsNeverCollide) {
  // "1/2" and "1_2" sanitize identically; the index disambiguates.
  EXPECT_NE(per_value_path("run.jsonl", 0, "1/2"),
            per_value_path("run.jsonl", 1, "1_2"));
  // So do duplicate sweep values.
  EXPECT_NE(per_value_path("run.jsonl", 0, "40"),
            per_value_path("run.jsonl", 1, "40"));
}

TEST(PerValuePath, EmptyBaseStaysEmpty) {
  EXPECT_EQ(per_value_path("", 0, "x"), "");
}

// ------------------------------------------------------- run_sweep

SweepSpec quick_spec(std::size_t jobs) {
  SweepSpec spec;
  spec.key = "battery.kwh";
  spec.values = {"0", "5", "10", "15", "20", "25", "30", "40"};
  spec.base = ExperimentConfig::canonical();
  spec.base.workload.duration_days = 1;  // keep the test fast
  spec.jobs = jobs;
  return spec;
}

std::string render(const SweepSpec& spec) {
  std::ostringstream out;
  print_sweep_report(out, spec, run_sweep(spec));
  return out.str();
}

TEST(ParallelSweep, PointsComeBackInValueOrder) {
  auto spec = quick_spec(4);
  const auto points = run_sweep(spec);
  ASSERT_EQ(points.size(), spec.values.size());
  for (std::size_t i = 0; i < points.size(); ++i)
    EXPECT_EQ(points[i].value, spec.values[i]);
}

TEST(ParallelSweep, EightJobsRenderByteIdenticalToSerial) {
  const std::string serial = render(quick_spec(1));
  const std::string parallel = render(quick_spec(8));
  EXPECT_FALSE(serial.empty());
  EXPECT_EQ(serial, parallel);
}

TEST(ParallelSweep, BadSweepValueFailsBeforeAnyRun) {
  auto spec = quick_spec(4);
  spec.values[3] = "not-a-number";
  EXPECT_THROW(run_sweep(spec), std::exception);
}

TEST(ParallelSweep, UnknownKeyFails) {
  auto spec = quick_spec(2);
  spec.key = "no.such.key";
  EXPECT_THROW(run_sweep(spec), std::exception);
}

}  // namespace
}  // namespace gm::core
