// Randomized equivalence suite for the task-class-aggregated
// GreenMatch planner. The aggregated network must be *decision
// equivalent* to the historical one-node-per-task network: identical
// matching objective (flow and cost) on every instance, and — because
// a pending pool whose signatures are all distinct degenerates to the
// per-task network edge for edge — identical decisions there. Warm
// starts must never change the objective either: a warm-started
// replan sequence is compared against cold single-shot solves.
//
// Since PR 8 the whole suite also runs under the cost-scaling solver
// (PolicyConfig::cost_scaling_planner / set_solver): both solvers must
// report the same objective on every instance, and the incremental
// replan path (patch + re-refine) is held to cold solves the same way
// warm starts are — see docs/solver.md.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <tuple>
#include <vector>

#include "core/policies.hpp"
#include "core/shard.hpp"
#include "storage/placement.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace gm::core {
namespace {

constexpr Seconds kSlot = 3600.0;

ClusterFacts test_facts(int total_nodes) {
  ClusterFacts f;
  f.total_nodes = total_nodes;
  f.min_nodes_for_coverage = std::max(2, total_nodes / 4);
  f.task_slots_per_node = 4;
  f.node_idle_floor_w = 120.0;
  f.node_peak_w = 240.0;
  f.slot_length_s = kSlot;
  f.node_boot_energy_j = 18000.0;
  f.max_utilization_per_node = 0.95;
  return f;
}

PendingTask make_task(storage::TaskId id, SimTime deadline,
                      Seconds remaining, double util) {
  PendingTask p;
  p.task.id = id;
  p.task.release = 0;
  p.task.deadline = deadline;
  p.task.work_s = remaining;
  p.task.utilization = util;
  p.task.group = static_cast<storage::GroupId>(id % 16);
  p.remaining_s = remaining;
  return p;
}

/// A random planning instance. `duplicates` skews deadlines/work onto
/// a small set of values so multi-member classes dominate.
SlotContext random_ctx(Rng& rng, int horizon, bool duplicates,
                       bool battery) {
  SlotContext ctx;
  ctx.slot = static_cast<SlotIndex>(rng.uniform_u64(200));
  ctx.start = static_cast<SimTime>(ctx.slot) * kSlot;
  ctx.end = ctx.start + kSlot;
  ctx.green_forecast_w.resize(static_cast<std::size_t>(horizon));
  ctx.foreground_util_forecast.resize(static_cast<std::size_t>(horizon));
  for (int j = 0; j < horizon; ++j) {
    ctx.green_forecast_w[static_cast<std::size_t>(j)] =
        static_cast<Watts>(rng.uniform_u64(4000));
    ctx.foreground_util_forecast[static_cast<std::size_t>(j)] =
        static_cast<double>(rng.uniform_u64(100)) / 50.0;
  }
  ctx.foreground_util = ctx.foreground_util_forecast[0];
  if (rng.uniform_u64(2) == 0) {
    ctx.grid_carbon_g_per_kwh.resize(static_cast<std::size_t>(horizon));
    for (auto& g : ctx.grid_carbon_g_per_kwh)
      g = 100.0 + static_cast<double>(rng.uniform_u64(600));
  }
  if (battery) {
    ctx.battery_usable_capacity_j = 400.0e6;
    ctx.battery_stored_j =
        static_cast<double>(rng.uniform_u64(400)) * 1.0e6;
    ctx.battery_max_charge_w = 20000.0;
    ctx.battery_max_discharge_w = 20000.0;
    ctx.battery_charge_efficiency = 0.9;
  }
  ctx.currently_active_nodes = 4;

  const auto n_tasks = rng.uniform_u64(60);
  for (std::uint64_t i = 0; i < n_tasks; ++i) {
    SimTime deadline;
    Seconds remaining;
    if (duplicates && i > 0 && rng.uniform_u64(3) != 0) {
      // Clone a previous task's planner signature; id and utilization
      // still differ, which the flow network cannot see.
      const auto& prev =
          ctx.pending[rng.uniform_u64(ctx.pending.size())];
      deadline = prev.task.deadline;
      remaining = prev.remaining_s;
    } else {
      deadline = ctx.start +
                 static_cast<SimTime>(rng.uniform_u64(
                     static_cast<std::uint64_t>(3 * horizon) * 3600));
      remaining = 0.25 * kSlot +
                  static_cast<double>(rng.uniform_u64(8 * 3600));
    }
    const double util =
        0.05 + static_cast<double>(rng.uniform_u64(90)) / 100.0;
    ctx.pending.push_back(make_task(static_cast<storage::TaskId>(i),
                                    deadline, remaining, util));
  }
  std::sort(ctx.pending.begin(), ctx.pending.end(),
            [](const PendingTask& a, const PendingTask& b) {
              return a.task.deadline != b.task.deadline
                         ? a.task.deadline < b.task.deadline
                         : a.task.id < b.task.id;
            });
  return ctx;
}

/// One single-shot plan with aggregation on or off; returns the
/// decision, with the solve telemetry in `stats`.
SlotDecision plan_once(const SlotContext& ctx, const ClusterFacts& facts,
                       bool aggregate, bool battery, bool carbon,
                       MinCostFlow::SolverKind solver,
                       GreenMatchPolicy::PlanStats* stats) {
  GreenMatchPolicy policy(24, /*greedy=*/false,
                          /*replan_every_slot=*/true, battery, carbon);
  policy.set_aggregation(aggregate);
  policy.set_solver(solver);
  policy.initialize(facts);
  const auto decision = policy.decide(ctx);
  *stats = policy.last_plan_stats();
  return decision;
}

constexpr auto kSsp = MinCostFlow::SolverKind::kSuccessiveShortestPath;
constexpr auto kCostScaling = MinCostFlow::SolverKind::kCostScaling;

void expect_valid_run_set(const SlotContext& ctx,
                          const SlotDecision& decision) {
  std::set<storage::TaskId> pending_ids;
  for (const auto& p : ctx.pending) pending_ids.insert(p.task.id);
  std::set<storage::TaskId> seen;
  for (const auto id : decision.run_tasks) {
    EXPECT_TRUE(pending_ids.count(id)) << "ran a non-pending task";
    EXPECT_TRUE(seen.insert(id).second) << "task ran twice";
  }
}

/// Params: (battery network, cost-scaling solver).
class PlannerEquivalence
    : public ::testing::TestWithParam<std::tuple<bool, bool>> {};

// ≥200 random pending sets (125 seeds × duplicate-heavy and
// spread-out variants): the aggregated and per-task networks must
// place the same number of slot-units at the same objective value —
// under both solvers, which must also agree with *each other* on
// every instance (the PR 8 cross-solver equivalence gate).
TEST_P(PlannerEquivalence, SameObjectiveAsPerTaskNetwork) {
  const auto [battery, cost_scaling] = GetParam();
  const auto solver = cost_scaling ? kCostScaling : kSsp;
  for (std::uint64_t seed = 1; seed <= 125; ++seed) {
    for (const bool duplicates : {false, true}) {
      Rng rng(seed * 7919 + (duplicates ? 1 : 0));
      const int horizon = 4 + static_cast<int>(rng.uniform_u64(21));
      const auto facts =
          test_facts(8 + static_cast<int>(rng.uniform_u64(24)));
      const bool carbon = rng.uniform_u64(2) == 0;
      const auto ctx = random_ctx(rng, horizon, duplicates, battery);

      GreenMatchPolicy::PlanStats agg_stats, ref_stats;
      const auto agg = plan_once(ctx, facts, /*aggregate=*/true,
                                 battery, carbon, solver, &agg_stats);
      const auto ref = plan_once(ctx, facts, /*aggregate=*/false,
                                 battery, carbon, solver, &ref_stats);

      ASSERT_EQ(agg_stats.flow, ref_stats.flow)
          << "seed " << seed << " duplicates " << duplicates;
      ASSERT_EQ(agg_stats.cost, ref_stats.cost)
          << "seed " << seed << " duplicates " << duplicates;
      EXPECT_EQ(agg_stats.tasks, ref_stats.tasks);
      EXPECT_EQ(ref_stats.classes, ref_stats.tasks)
          << "reference must be one class per task";
      EXPECT_LE(agg_stats.classes, agg_stats.tasks);
      EXPECT_LE(agg_stats.network_nodes, ref_stats.network_nodes);
      expect_valid_run_set(ctx, agg);
      expect_valid_run_set(ctx, ref);
      EXPECT_EQ(agg.eco_speed, ref.eco_speed);

      // Cross-solver: the cost-scaling objective must equal the SSP
      // objective on the same instance (decisions may pick a
      // different equal-cost optimum, the objective may not move).
      if (cost_scaling) {
        GreenMatchPolicy::PlanStats ssp_stats;
        plan_once(ctx, facts, /*aggregate=*/true, battery, carbon,
                  kSsp, &ssp_stats);
        ASSERT_EQ(agg_stats.flow, ssp_stats.flow)
            << "seed " << seed << " duplicates " << duplicates;
        ASSERT_EQ(agg_stats.cost, ssp_stats.cost)
            << "seed " << seed << " duplicates " << duplicates;
      }

      // All-distinct signatures degenerate to the per-task network
      // edge for edge: the decisions must be identical, not merely
      // cost-tied (both solvers are deterministic, so this holds for
      // either — each compared against itself on the twin network).
      if (agg_stats.classes == agg_stats.tasks) {
        EXPECT_EQ(agg.run_tasks, ref.run_tasks)
            << "seed " << seed << " duplicates " << duplicates;
        EXPECT_EQ(agg.target_active_nodes, ref.target_active_nodes);
      }
    }
  }
}

// Duplicate-heavy pools must actually collapse (otherwise this suite
// exercises nothing).
TEST_P(PlannerEquivalence, DuplicateSignaturesCollapse) {
  const auto [battery, cost_scaling] = GetParam();
  int collapsed = 0, instances = 0;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    Rng rng(seed);
    const auto facts = test_facts(16);
    const auto ctx = random_ctx(rng, 12, /*duplicates=*/true, battery);
    if (ctx.pending.size() < 10) continue;
    GreenMatchPolicy::PlanStats stats;
    plan_once(ctx, facts, /*aggregate=*/true, battery, false,
              cost_scaling ? kCostScaling : kSsp, &stats);
    ++instances;
    if (stats.classes < stats.tasks) ++collapsed;
  }
  ASSERT_GT(instances, 5);
  EXPECT_EQ(collapsed, instances);
}

INSTANTIATE_TEST_SUITE_P(SupplyOnlyAndBatteryBothSolvers,
                         PlannerEquivalence,
                         ::testing::Combine(::testing::Bool(),
                                            ::testing::Bool()));

// A warm-started replanning sequence must reach the same objective as
// a cold solve of every slot's instance: potentials only steer the
// search, never the optimum.
TEST(PlannerWarmStart, SequenceMatchesColdSolves) {
  const auto facts = test_facts(16);
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    Rng rng(seed * 101);
    GreenMatchPolicy warm_policy(24, false, true, false, false);
    warm_policy.initialize(facts);
    SlotContext ctx = random_ctx(rng, 24, /*duplicates=*/true,
                                 /*battery=*/false);
    for (int step = 0; step < 6; ++step) {
      const auto warm_decision = warm_policy.decide(ctx);
      const auto warm_stats = warm_policy.last_plan_stats();

      GreenMatchPolicy::PlanStats cold_stats;
      plan_once(ctx, facts, true, false, false, kSsp, &cold_stats);
      ASSERT_EQ(warm_stats.flow, cold_stats.flow)
          << "seed " << seed << " step " << step;
      ASSERT_EQ(warm_stats.cost, cold_stats.cost)
          << "seed " << seed << " step " << step;
      expect_valid_run_set(ctx, warm_decision);
      if (step > 0) EXPECT_TRUE(warm_stats.warm_start);

      // Advance one slot: shift forecasts, drift work, drop/add tasks.
      ctx.slot += 1;
      ctx.start += kSlot;
      ctx.end += kSlot;
      std::rotate(ctx.green_forecast_w.begin(),
                  ctx.green_forecast_w.begin() + 1,
                  ctx.green_forecast_w.end());
      for (auto& p : ctx.pending)
        p.remaining_s = std::max(0.25 * kSlot, p.remaining_s - 600.0);
      if (!ctx.pending.empty() && rng.uniform_u64(2) == 0)
        ctx.pending.erase(ctx.pending.begin());
    }
    EXPECT_GT(warm_policy.warm_accepts(), 0u) << "seed " << seed;
  }
}

// ---- incremental replanning (cost-scaling) --------------------------

/// Advance a context by one slot the way the warm-start test does:
/// shift forecasts, drift remaining work, occasionally drop a task.
void advance_one_slot(SlotContext& ctx, Rng& rng) {
  ctx.slot += 1;
  ctx.start += kSlot;
  ctx.end += kSlot;
  std::rotate(ctx.green_forecast_w.begin(),
              ctx.green_forecast_w.begin() + 1,
              ctx.green_forecast_w.end());
  for (auto& p : ctx.pending)
    p.remaining_s = std::max(0.25 * kSlot, p.remaining_s - 600.0);
  if (!ctx.pending.empty() && rng.uniform_u64(2) == 0)
    ctx.pending.erase(ctx.pending.begin());
}

/// One incremental decide() must match cold single-shot solves under
/// both solvers; returns the incremental policy's decision.
void expect_matches_cold(GreenMatchPolicy& policy,
                         const SlotContext& ctx,
                         const ClusterFacts& facts, bool battery,
                         const char* where) {
  const auto decision = policy.decide(ctx);
  const auto inc_stats = policy.last_plan_stats();
  GreenMatchPolicy::PlanStats ssp_stats, cs_stats;
  plan_once(ctx, facts, true, battery, false, kSsp, &ssp_stats);
  plan_once(ctx, facts, true, battery, false, kCostScaling, &cs_stats);
  ASSERT_EQ(inc_stats.flow, ssp_stats.flow) << where;
  ASSERT_EQ(inc_stats.cost, ssp_stats.cost) << where;
  ASSERT_EQ(cs_stats.flow, ssp_stats.flow) << where;
  ASSERT_EQ(cs_stats.cost, ssp_stats.cost) << where;
  expect_valid_run_set(ctx, decision);
}

// The cost-scaling analogue of PlannerWarmStart: a replanning
// sequence whose solves patch the previous slot's residual network
// must reach the same objective as cold solves of every instance —
// and the patches must actually be accepted, or the suite would only
// be exercising the rebuild path.
TEST(PlannerIncremental, SequenceMatchesColdSolves) {
  const auto facts = test_facts(16);
  std::uint64_t total_accepts = 0;
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    Rng rng(seed * 131);
    GreenMatchPolicy policy(24, false, true, false, false);
    policy.set_solver(kCostScaling);
    policy.initialize(facts);
    SlotContext ctx = random_ctx(rng, 24, /*duplicates=*/true,
                                 /*battery=*/false);
    for (int step = 0; step < 6; ++step) {
      SCOPED_TRACE(::testing::Message()
                   << "seed " << seed << " step " << step);
      expect_matches_cold(policy, ctx, facts, /*battery=*/false,
                          "sequence");
      if (HasFatalFailure()) return;
      advance_one_slot(ctx, rng);
    }
    total_accepts += policy.incremental_accepts();
    EXPECT_EQ(policy.incremental_accepts() +
                  policy.incremental_rebuilds(),
              6u)
        << "seed " << seed;
  }
  // Across 15×6 slots the drift is mild; most replans must patch.
  EXPECT_GT(total_accepts, 30u);
}

// A whole task class vanishing between slots (every member finished
// or was cancelled) removes its class node's arcs and shifts the
// indices of the classes behind it — a legal patch when small, a
// cold rebuild otherwise; either way the objective must match cold.
TEST(PlannerIncremental, ClassDisappearsBetweenSlots) {
  const auto facts = test_facts(16);
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    Rng rng(seed * 313);
    SlotContext ctx = random_ctx(rng, 12, /*duplicates=*/true,
                                 /*battery=*/false);
    if (ctx.pending.size() < 8) continue;
    GreenMatchPolicy policy(24, false, true, false, false);
    policy.set_solver(kCostScaling);
    policy.initialize(facts);
    expect_matches_cold(policy, ctx, facts, false, "before removal");
    if (HasFatalFailure()) return;

    // Erase every task sharing the last task's planner signature —
    // with a duplicate-heavy pool that is usually a whole class.
    const SimTime gone_deadline = ctx.pending.back().task.deadline;
    const Seconds gone_remaining = ctx.pending.back().remaining_s;
    std::erase_if(ctx.pending, [&](const PendingTask& p) {
      return p.task.deadline == gone_deadline &&
             p.remaining_s == gone_remaining;
    });
    expect_matches_cold(policy, ctx, facts, false, "after removal");
    if (HasFatalFailure()) return;
  }
}

// All green supply vanishing between slots zeroes the supply arcs'
// capacities without touching their endpoints — the canonical
// match-only patch; it must be accepted, not rebuilt.
TEST(PlannerIncremental, SupplyEdgeFlipsToZeroIsPatched) {
  const auto facts = test_facts(16);
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    Rng rng(seed * 517);
    SlotContext ctx = random_ctx(rng, 12, /*duplicates=*/true,
                                 /*battery=*/false);
    if (ctx.pending.empty()) continue;
    GreenMatchPolicy policy(24, false, true, false, false);
    policy.set_solver(kCostScaling);
    policy.initialize(facts);
    expect_matches_cold(policy, ctx, facts, false, "with supply");
    if (HasFatalFailure()) return;

    std::fill(ctx.green_forecast_w.begin(),
              ctx.green_forecast_w.end(), 0.0);
    expect_matches_cold(policy, ctx, facts, false, "without supply");
    if (HasFatalFailure()) return;
    EXPECT_GE(policy.incremental_accepts(), 1u) << "seed " << seed;
  }
}

// Battery arcs retargeting between slots: charge/discharge rates
// toggling to zero and back, and the state of charge moving, all
// reshape the storage chain's capacities in place.
TEST(PlannerIncremental, BatteryEdgeRetargetBetweenSlots) {
  const auto facts = test_facts(16);
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    Rng rng(seed * 733);
    SlotContext ctx = random_ctx(rng, 12, /*duplicates=*/true,
                                 /*battery=*/true);
    if (ctx.pending.empty()) continue;
    GreenMatchPolicy policy(24, false, true, /*battery=*/true, false);
    policy.set_solver(kCostScaling);
    policy.initialize(facts);
    expect_matches_cold(policy, ctx, facts, true, "baseline");
    if (HasFatalFailure()) return;

    const Watts charge = ctx.battery_max_charge_w;
    ctx.battery_max_charge_w = 0.0;  // charging disabled this slot
    ctx.battery_stored_j *= 0.5;
    expect_matches_cold(policy, ctx, facts, true, "charge disabled");
    if (HasFatalFailure()) return;

    ctx.battery_max_charge_w = charge;
    ctx.battery_max_discharge_w = 0.0;  // now the other direction
    expect_matches_cold(policy, ctx, facts, true, "discharge disabled");
    if (HasFatalFailure()) return;
    EXPECT_EQ(policy.incremental_accepts() +
                  policy.incremental_rebuilds(),
              3u)
        << "seed " << seed;
  }
}

// ---- sharded planning (PR 9) ----------------------------------------

/// Flat reference plan of `ctx` (aggregated, SSP, supply-only knobs as
/// given) for the sharding comparisons below.
SlotDecision plan_flat(const SlotContext& ctx, const ClusterFacts& facts,
                       GreenMatchPolicy::PlanStats* stats) {
  return plan_once(ctx, facts, /*aggregate=*/true, /*battery=*/false,
                   /*carbon=*/false, kSsp, stats);
}

// scheduler.shards = 1 must be the flat planner *byte for byte*: the
// dispatch takes the untouched plan_flow path, so every decision and
// every stat of a replanning sequence matches a never-sharded twin.
TEST(PlannerSharding, SingleShardMatchesFlatExactly) {
  const auto facts = test_facts(16);
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    Rng rng(seed * 977);
    GreenMatchPolicy flat(24, false, true, false, false);
    GreenMatchPolicy sharded(24, false, true, false, false);
    sharded.set_shards(1);
    flat.initialize(facts);
    sharded.initialize(facts);
    SlotContext ctx = random_ctx(rng, 24, /*duplicates=*/true,
                                 /*battery=*/false);
    for (int step = 0; step < 5; ++step) {
      const auto a = flat.decide(ctx);
      const auto b = sharded.decide(ctx);
      ASSERT_EQ(a.run_tasks, b.run_tasks) << "seed " << seed;
      ASSERT_EQ(a.target_active_nodes, b.target_active_nodes);
      ASSERT_EQ(a.eco_speed, b.eco_speed);
      const auto& sa = flat.last_plan_stats();
      const auto& sb = sharded.last_plan_stats();
      ASSERT_EQ(sa.flow, sb.flow);
      ASSERT_EQ(sa.cost, sb.cost);
      ASSERT_EQ(sa.classes, sb.classes);
      ASSERT_EQ(sa.network_nodes, sb.network_nodes);
      advance_one_slot(ctx, rng);
    }
    EXPECT_EQ(sharded.reconciliation_solves(), 0u);
    EXPECT_TRUE(sharded.shard_stats().empty());
  }
}

// partition() is a deterministic disjoint cover: every pending task
// lands in exactly the shard its placement group hashes to (order
// preserved), node counts sum to the fleet, and the scaled supply sums
// back to the original.
TEST(PlannerSharding, PartitionIsDeterministicDisjointCover) {
  const auto facts = test_facts(19);  // deliberately not divisible
  for (const int shards : {2, 3, 8}) {
    Rng rng(41u * static_cast<std::uint64_t>(shards));
    const auto ctx = random_ctx(rng, 12, /*duplicates=*/false,
                                /*battery=*/true);
    const auto problems = shard::partition(ctx, facts, shards);
    ASSERT_EQ(problems.size(), static_cast<std::size_t>(shards));

    int node_sum = 0;
    std::size_t task_sum = 0;
    double green0_sum = 0.0;
    for (const auto& p : problems) {
      node_sum += p.node_count;
      task_sum += p.ctx.pending.size();
      green0_sum += p.ctx.green_forecast_w.empty()
                        ? 0.0
                        : p.ctx.green_forecast_w[0];
      // Membership is the pure group hash, order preserved.
      SimTime prev_deadline = -1;
      for (const auto& t : p.ctx.pending) {
        EXPECT_EQ(storage::shard_of_group(
                      t.task.group,
                      static_cast<std::uint32_t>(shards)),
                  static_cast<std::uint32_t>(p.shard));
        EXPECT_GE(t.task.deadline, prev_deadline);
        prev_deadline = t.task.deadline;
      }
    }
    EXPECT_EQ(node_sum, facts.total_nodes);
    EXPECT_EQ(task_sum, ctx.pending.size());
    if (!ctx.green_forecast_w.empty())
      EXPECT_NEAR(green0_sum, ctx.green_forecast_w[0],
                  1e-6 * (1.0 + ctx.green_forecast_w[0]));

    // Deterministic: a second partition is identical.
    const auto again = shard::partition(ctx, facts, shards);
    for (int s = 0; s < shards; ++s) {
      ASSERT_EQ(problems[static_cast<std::size_t>(s)].ctx.pending.size(),
                again[static_cast<std::size_t>(s)].ctx.pending.size());
      ASSERT_EQ(problems[static_cast<std::size_t>(s)].node_count,
                again[static_cast<std::size_t>(s)].node_count);
    }
  }
}

// In decomposable regimes — per-task placement independent because
// supply is never contended (no green anywhere, or green far beyond
// any shard's demand) and capacity is non-binding — the sharded
// objective must equal the flat objective exactly, for any shard
// count: splitting an additively separable problem changes nothing.
TEST(PlannerSharding, DecomposableRegimesMatchFlatObjective) {
  const auto facts = test_facts(64);
  for (const bool abundant : {false, true}) {
    for (std::uint64_t seed = 1; seed <= 15; ++seed) {
      Rng rng(seed * 1481 + (abundant ? 7 : 0));
      SlotContext ctx = random_ctx(rng, 16, /*duplicates=*/true,
                                   /*battery=*/false);
      ctx.grid_carbon_g_per_kwh.clear();
      ctx.foreground_util = 0.0;
      std::fill(ctx.foreground_util_forecast.begin(),
                ctx.foreground_util_forecast.end(), 0.0);
      std::fill(ctx.green_forecast_w.begin(), ctx.green_forecast_w.end(),
                abundant ? 50.0e6 : 0.0);
      if (ctx.pending.empty()) continue;

      GreenMatchPolicy::PlanStats flat_stats;
      const auto flat = plan_flat(ctx, facts, &flat_stats);

      for (const int shards : {2, 4, 8}) {
        GreenMatchPolicy policy(24, false, true, false, false);
        policy.set_shards(shards);
        policy.initialize(facts);
        const auto decision = policy.decide(ctx);
        const auto& merged = policy.last_plan_stats();
        ASSERT_EQ(merged.flow, flat_stats.flow)
            << "seed " << seed << " shards " << shards << " abundant "
            << abundant;
        ASSERT_EQ(merged.cost, flat_stats.cost)
            << "seed " << seed << " shards " << shards << " abundant "
            << abundant;
        EXPECT_EQ(merged.tasks, flat_stats.tasks);
        EXPECT_EQ(decision.eco_speed, flat.eco_speed);
        expect_valid_run_set(ctx, decision);
        EXPECT_EQ(policy.shard_stats().size(),
                  static_cast<std::size_t>(shards));
      }
    }
  }
}

// The reconciliation pass must actually move green across shards: all
// demand hashed into one shard, fleet green sized so the loaded
// shard's proportional share covers well under half of it but the
// whole fleet covers it entirely. Without reconciliation ≥ 1 unit
// goes to the grid (cost ≥ kBrownUnitCost); with it, everything runs
// green and the objective is pure earliness offsets.
TEST(PlannerSharding, ReconciliationReclaimsCrossShardGreen) {
  ClusterFacts facts = test_facts(16);
  facts.min_nodes_for_coverage = 0;  // no committed idle floor
  constexpr int kShards = 4;

  // A group that hashes to shard 0 of 4.
  storage::GroupId group = 0;
  while (storage::shard_of_group(group, kShards) != 0) ++group;

  SlotContext ctx;
  ctx.slot = 3;
  ctx.start = 3 * static_cast<SimTime>(kSlot);
  ctx.end = ctx.start + static_cast<SimTime>(kSlot);
  ctx.green_forecast_w.assign(24, 2400.0);
  ctx.foreground_util_forecast.assign(24, 0.0);
  ctx.foreground_util = 0.0;
  ctx.currently_active_nodes = 16;
  // 8 tasks × 2 slot-units at util 0.5 (unit power 90 W) due in two
  // slots: 720 W of green needed per slot, against a 600 W per-shard
  // proportional share — but 2400 W fleet-wide. Only a cross-shard
  // claim can cover the last ~2 units of each slot.
  for (storage::TaskId id = 0; id < 8; ++id) {
    auto p = make_task(id, ctx.start + 2 * static_cast<SimTime>(kSlot),
                       2.0 * kSlot, 0.5);
    p.task.group = group;
    ctx.pending.push_back(p);
  }

  GreenMatchPolicy policy(24, false, true, false, false);
  policy.set_shards(kShards);
  policy.initialize(facts);
  const auto decision = policy.decide(ctx);
  expect_valid_run_set(ctx, decision);
  EXPECT_GE(policy.reconciliation_solves(), 1u);
  const auto& merged = policy.last_plan_stats();
  EXPECT_EQ(merged.flow, 16);
  // Any grid (1'000'000) or beyond-horizon (400'000) unit would clear
  // this bar; a fully green plan pays only earliness offsets.
  EXPECT_LT(merged.cost, 400'000)
      << "a grid/beyond unit survived reconciliation";
}

// General (contended) instances: sharding is approximate there, but a
// replanning sequence must stay well-formed under both solvers — valid
// disjoint run sets, all tasks accounted to exactly one shard, and
// live per-shard telemetry.
TEST(PlannerSharding, ContendedSequenceStaysValid) {
  const auto facts = test_facts(24);
  for (const bool cost_scaling : {false, true}) {
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
      Rng rng(seed * 2203 + (cost_scaling ? 1 : 0));
      GreenMatchPolicy policy(24, false, true, false, false);
      if (cost_scaling) policy.set_solver(kCostScaling);
      policy.set_shards(4);
      policy.initialize(facts);
      SlotContext ctx = random_ctx(rng, 24, /*duplicates=*/true,
                                   /*battery=*/false);
      for (int step = 0; step < 4; ++step) {
        const auto decision = policy.decide(ctx);
        expect_valid_run_set(ctx, decision);
        advance_one_slot(ctx, rng);
      }
      const auto stats = policy.shard_stats();
      ASSERT_EQ(stats.size(), 4u);
      std::uint64_t solves = 0;
      for (const auto& st : stats) solves += st.solves;
      EXPECT_GT(solves, 0u) << "no shard ever solved";
    }
  }
}

}  // namespace
}  // namespace gm::core
