// Reproduction-shape regression tests: the qualitative claims the
// evaluation (EXPERIMENTS.md) reports, pinned as tests on the
// canonical setup so a future change that silently breaks the paper's
// story fails CI. These are the slowest tests in the suite (~15 s):
// each case is a full one-week, 64-node run.

#include <gtest/gtest.h>

#include "core/engine.hpp"
#include "util/units.hpp"

namespace gm::core {
namespace {

metrics::RunResult run_canonical(PolicyKind kind, double battery_kwh,
                                 double deferral = 1.0,
                                 double panel_m2 = 120.0) {
  static std::shared_ptr<const workload::Workload> trace;
  auto config = ExperimentConfig::canonical();
  if (!trace)
    trace = std::make_shared<const workload::Workload>(
        workload::generate_workload(
            config.workload, config.cluster.placement.group_count));
  config.preset_workload = trace;
  config.panel_area_m2 = panel_m2;
  config.battery = energy::BatteryConfig::lithium_ion(
      kwh_to_j(battery_kwh));
  config.policy.kind = kind;
  config.policy.deferral_fraction = deferral;
  return run_experiment(config).result;
}

TEST(ReproductionShapes, SupplyIsInsufficientByDesign) {
  // The R-Fig-2 premise: weekly solar covers well under 100% of demand
  // at the canonical 120 m².
  const auto r = run_canonical(PolicyKind::kAsap, 0.0);
  EXPECT_LT(r.energy.green_supply_j, 0.85 * r.energy.demand_j);
  EXPECT_GT(r.energy.green_supply_j, 0.40 * r.energy.demand_j);
}

TEST(ReproductionShapes, GreenMatchBeatsBaselineAtSmallBattery) {
  // R-Fig-6 left edge: with little storage, matching work to the sun
  // beats passively storing it.
  const auto gm = run_canonical(PolicyKind::kGreenMatch, 0.0);
  const auto asap = run_canonical(PolicyKind::kAsap, 0.0);
  EXPECT_LT(gm.energy.brown_j, asap.energy.brown_j * 0.95);
}

TEST(ReproductionShapes, StorageCatchesUpAtLargeBattery) {
  // R-Fig-6 right edge: with a big battery the ESD-only baseline
  // overtakes *full* deferral (churn + consolidation effects) — the
  // lineage's own inversion.
  const auto asap = run_canonical(PolicyKind::kAsap, 110.0);
  const auto opp = run_canonical(PolicyKind::kOpportunistic, 110.0, 1.0);
  EXPECT_LT(asap.energy.brown_j, opp.energy.brown_j);
}

TEST(ReproductionShapes, DeferralCutsCurtailment) {
  // R-Fig-7: without storage, deferring policies waste much less
  // green energy than the baseline.
  const auto gm = run_canonical(PolicyKind::kGreenMatch, 0.0);
  const auto asap = run_canonical(PolicyKind::kAsap, 0.0);
  EXPECT_LT(gm.energy.curtailed_j, asap.energy.curtailed_j * 0.85);
}

TEST(ReproductionShapes, DeferralExtendsBatteryLife) {
  // R-Tab-3: deferral routes green around the battery → fewer cycles.
  const auto gm = run_canonical(PolicyKind::kGreenMatch, 40.0);
  const auto asap = run_canonical(PolicyKind::kAsap, 40.0);
  EXPECT_LT(gm.battery.equivalent_cycles,
            asap.battery.equivalent_cycles);
}

}  // namespace
}  // namespace gm::core
