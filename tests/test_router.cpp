// Router accounting regression tests (the ISSUE 9 bugfix sweep):
//  - write offload picks the least-busy disk fleet-wide instead of
//    hot-spotting the lowest node id,
//  - the reported completion time equals the rounded disk occupancy
//    (busy_until) on every serve path, and
//  - the forced-wakeup fallback charges the replica's disk clock so
//    its capacity is not phantom-free for subsequent requests.

#include <gtest/gtest.h>

#include <cstdint>
#include <map>

#include "storage/cluster.hpp"
#include "storage/router.hpp"

namespace gm::storage {
namespace {

ClusterConfig small_cluster(int replication = 3) {
  ClusterConfig c;
  c.racks = 2;
  c.nodes_per_rack = 4;
  c.placement.group_count = 64;
  c.placement.replication = replication;
  return c;
}

/// One node, one disk: every request shares a single FIFO queue, which
/// makes occupancy/completion arithmetic exactly predictable.
ClusterConfig single_disk_cluster() {
  ClusterConfig c;
  c.racks = 1;
  c.nodes_per_rack = 1;
  c.node.disks_per_node = 1;
  c.placement.group_count = 8;
  c.placement.replication = 1;
  return c;
}

IoRequest make_request(RequestId id, SimTime at, ObjectId object,
                       std::uint64_t bytes, bool is_write = false) {
  IoRequest r;
  r.id = id;
  r.arrival = at;
  r.object = object;
  r.size_bytes = bytes;
  r.is_write = is_write;
  return r;
}

TEST(RouterBugfix, OffloadSpreadsAcrossActiveNodes) {
  Cluster cl(small_cluster());
  const ObjectId object = 11;
  const GroupId g = cl.placement().group_of(object);
  for (NodeId n : cl.placement().replicas(g))
    cl.node(n).complete_power_off(cl.node(n).begin_power_off(0));

  RequestRouter router(cl, RouterConfig{});
  // ~1.4 s of service per write keeps earlier targets busy, so the
  // least-busy rule must rotate through the fleet.
  const std::uint64_t bytes = std::uint64_t{200} << 20;
  const int kWrites = 40;
  std::map<NodeId, int> served;
  SimTime first_completion = 0;
  for (int i = 0; i < kWrites; ++i) {
    const auto out = router.route(
        make_request(i, 0, object, bytes, /*is_write=*/true), 0, nullptr);
    ASSERT_TRUE(out.has_value());
    EXPECT_TRUE(out->offloaded);
    if (i == 0) first_completion = out->completion;
    ++served[out->served_by];
  }
  // 5 active nodes remain (8 minus 3 replicas); least-busy selection
  // spreads the log appends across all of them instead of hammering
  // the lowest id.
  EXPECT_GE(served.size(), 4u);
  for (const auto& [node, count] : served)
    EXPECT_LE(count, kWrites / 2) << "hot-spotted node " << node;

  // Offload completion uses the same rounded occupancy as busy_until
  // (all disks share one config, so the service time is uniform).
  const Seconds service = cl.node(0).disks()[0].service_time_s(bytes);
  EXPECT_EQ(first_completion, static_cast<SimTime>(service + 0.5));
}

TEST(RouterBugfix, CompletionMatchesDiskOccupancy) {
  Cluster cl(single_disk_cluster());
  RequestRouter router(cl, RouterConfig{});
  // Pick a size whose service time rounds up, so truncated completion
  // would disagree with the rounded busy_until.
  const std::uint64_t bytes = std::uint64_t{400} << 20;
  const Seconds service = cl.node(0).disks()[0].service_time_s(bytes);
  const SimTime rounded = static_cast<SimTime>(service + 0.5);
  ASSERT_NE(rounded, static_cast<SimTime>(service));

  SimTime prev_completion = 0;
  for (int i = 0; i < 8; ++i) {
    const auto out =
        router.route(make_request(i, 0, 3, bytes), 0, nullptr);
    ASSERT_TRUE(out.has_value());
    // Single disk: request i begins exactly when i-1's occupancy ends,
    // and the reported completion equals that occupancy boundary.
    EXPECT_EQ(out->completion, prev_completion + rounded)
        << "request " << i;
    EXPECT_NEAR(out->latency_s,
                static_cast<double>(prev_completion) + service, 1e-9);
    prev_completion = out->completion;
  }
}

TEST(RouterBugfix, ForcedWakeupChargesDiskClock) {
  Cluster cl(single_disk_cluster());
  cl.node(0).complete_power_off(cl.node(0).begin_power_off(0));
  RequestRouter router(cl, RouterConfig{});
  // The waker promises availability at now+120 but never flips the
  // node on, so both requests serve via the fallback path.
  const NodeWaker waker = [](GroupId, SimTime now) -> SimTime {
    return now + 120;
  };
  const std::uint64_t bytes = std::uint64_t{400} << 20;
  const auto& disk = cl.node(0).config().disk;
  const Seconds service = disk.avg_seek_s +
                          static_cast<double>(bytes) /
                              disk.bandwidth_bytes_per_s;
  const SimTime rounded = static_cast<SimTime>(service + 0.5);

  const auto first =
      router.route(make_request(1, 50, 3, bytes), 50, waker);
  ASSERT_TRUE(first.has_value());
  EXPECT_TRUE(first->forced_wakeup);
  EXPECT_EQ(first->completion, 170 + rounded);

  const auto second =
      router.route(make_request(2, 50, 3, bytes), 50, waker);
  ASSERT_TRUE(second.has_value());
  // The fallback booked the first service on the replica's disk clock,
  // so the second request queues behind it instead of seeing phantom
  // free capacity.
  EXPECT_EQ(second->completion, first->completion + rounded);
  EXPECT_GT(second->latency_s, first->latency_s + service - 1.5);
  EXPECT_NEAR(router.stats().busy_disk_seconds, 2.0 * service, 1e-9);
  EXPECT_EQ(router.stats().forced_wakeups, 2u);
}

}  // namespace
}  // namespace gm::storage
