// gm::scenario tests: deterministic stochastic-event generation
// (failure processes, grid spikes, curtailment windows), their energy-
// layer carriers (GridEvent multipliers, ModulatedSource), engine
// integration (a generated failure week passes every audit check), and
// the step/observe/act interface's bit-identity with the legacy slot
// loop.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "audit/audit.hpp"
#include "core/engine.hpp"
#include "core/policy.hpp"
#include "energy/grid.hpp"
#include "energy/supply.hpp"
#include "scenario/scenario.hpp"
#include "util/assert.hpp"

namespace gm {
namespace {

using scenario::CurtailmentConfig;
using scenario::FailureProcess;
using scenario::FailureProcessConfig;
using scenario::GridSpikeConfig;
using scenario::NodeOutage;

constexpr SimTime kWeek = 7 * 24 * 3600;

TEST(FailureProcessGen, DeterministicAndSorted) {
  FailureProcessConfig config;
  config.process = FailureProcess::kPoisson;
  config.mtbf_hours = 48.0;
  config.mttr_hours = 6.0;
  const auto a = scenario::generate_node_outages(config, 32, kWeek);
  const auto b = scenario::generate_node_outages(config, 32, kWeek);
  ASSERT_EQ(a.size(), b.size());
  ASSERT_FALSE(a.empty());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].fail_at, b[i].fail_at);
    EXPECT_EQ(a[i].recover_at, b[i].recover_at);
    EXPECT_EQ(a[i].node, b[i].node);
    if (i > 0) { EXPECT_GE(a[i].fail_at, a[i - 1].fail_at); }
  }
}

TEST(FailureProcessGen, PoissonRateMatchesMtbf) {
  FailureProcessConfig config;
  config.process = FailureProcess::kPoisson;
  config.mtbf_hours = 120.0;
  config.mttr_hours = 8.0;
  const int nodes = 200;
  const SimTime horizon = 60 * 24 * 3600;  // 60 days
  const auto outages =
      scenario::generate_node_outages(config, nodes, horizon);
  // Renewal process with mean cycle = MTBF + MTTR.
  const double expected =
      nodes * (static_cast<double>(horizon) / 3600.0) /
      (config.mtbf_hours + config.mttr_hours);
  EXPECT_GT(outages.size(), expected * 0.85);
  EXPECT_LT(outages.size(), expected * 1.15);
}

TEST(FailureProcessGen, WeibullShapeOneMatchesPoissonRate) {
  FailureProcessConfig poisson;
  poisson.process = FailureProcess::kPoisson;
  poisson.mtbf_hours = 72.0;
  FailureProcessConfig weibull = poisson;
  weibull.process = FailureProcess::kWeibull;
  weibull.weibull_shape = 1.0;
  const SimTime horizon = 90 * 24 * 3600;
  const auto np =
      scenario::generate_node_outages(poisson, 100, horizon).size();
  const auto nw =
      scenario::generate_node_outages(weibull, 100, horizon).size();
  // Shape 1 degenerates to the exponential: same mean rate (the draws
  // differ, the statistics agree).
  EXPECT_NEAR(static_cast<double>(nw), static_cast<double>(np),
              0.15 * static_cast<double>(np));
}

TEST(FailureProcessGen, BurstyShapeClustersFailures) {
  FailureProcessConfig config;
  config.process = FailureProcess::kWeibull;
  config.mtbf_hours = 100.0;
  config.weibull_shape = 0.5;
  config.mttr_hours = 2.0;
  const SimTime horizon = 120 * 24 * 3600;
  const auto outages =
      scenario::generate_node_outages(config, 50, horizon);
  ASSERT_GT(outages.size(), 100u);
  // Coefficient of variation of inter-failure gaps (per node) must
  // exceed 1 — the exponential's CV — for a bursty shape < 1.
  double sum = 0.0, sq = 0.0;
  std::size_t n = 0;
  std::vector<SimTime> last(50, -1);
  for (const auto& o : outages) {
    // Gaps measured per node, from recovery to the next failure.
    if (last[o.node] >= 0) {
      const double gap = static_cast<double>(o.fail_at - last[o.node]);
      sum += gap;
      sq += gap * gap;
      ++n;
    }
    last[o.node] = o.recover_at;
  }
  ASSERT_GT(n, 50u);
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_GT(std::sqrt(var) / mean, 1.2);
}

TEST(FailureProcessGen, OutagesWellFormedPerNode) {
  FailureProcessConfig config;
  config.process = FailureProcess::kWeibull;
  config.mtbf_hours = 24.0;
  config.weibull_shape = 0.7;
  config.mttr_hours = 12.0;
  const auto outages =
      scenario::generate_node_outages(config, 16, kWeek);
  std::vector<SimTime> last_recover(16, 0);
  for (const auto& o : outages) {
    EXPECT_LT(o.fail_at, kWeek);
    EXPECT_GT(o.recover_at, o.fail_at);
    // A node cannot fail while already down.
    EXPECT_GE(o.fail_at, last_recover[o.node]);
    last_recover[o.node] = o.recover_at;
  }
}

TEST(FailureProcessGen, FleetGrowthKeepsExistingStreams) {
  FailureProcessConfig config;
  config.process = FailureProcess::kPoisson;
  config.mtbf_hours = 36.0;
  const auto small = scenario::generate_node_outages(config, 8, kWeek);
  const auto large = scenario::generate_node_outages(config, 16, kWeek);
  // Every outage of nodes 0-7 reappears verbatim in the larger fleet.
  std::size_t matched = 0;
  for (const auto& s : small)
    for (const auto& l : large)
      if (l.node == s.node && l.fail_at == s.fail_at &&
          l.recover_at == s.recover_at)
        ++matched;
  EXPECT_EQ(matched, small.size());
}

TEST(FailureProcessGen, NoneAndZeroInputsYieldNothing) {
  FailureProcessConfig config;
  EXPECT_TRUE(
      scenario::generate_node_outages(config, 100, kWeek).empty());
  config.process = FailureProcess::kPoisson;
  EXPECT_TRUE(scenario::generate_node_outages(config, 0, kWeek).empty());
  EXPECT_TRUE(scenario::generate_node_outages(config, 100, 0).empty());
}

TEST(FailureProcessGen, ValidatesConfig) {
  FailureProcessConfig config;
  config.process = FailureProcess::kPoisson;
  config.mtbf_hours = 0.0;
  EXPECT_THROW(config.validate(), InvalidArgument);
  config.mtbf_hours = 24.0;
  config.weibull_shape = -1.0;
  EXPECT_THROW(config.validate(), InvalidArgument);
  // kNone skips the checks entirely (inert defaults stay valid).
  config.process = FailureProcess::kNone;
  EXPECT_NO_THROW(config.validate());
}

TEST(GridSpikeGen, DeterministicNonOverlappingWindows) {
  GridSpikeConfig config;
  config.rate_per_day = 2.0;
  config.duration_h = 3.0;
  config.carbon_multiplier = 4.0;
  config.price_multiplier = 2.0;
  const auto a = scenario::generate_grid_spikes(config, kWeek);
  const auto b = scenario::generate_grid_spikes(config, kWeek);
  ASSERT_FALSE(a.empty());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].start, b[i].start);
    EXPECT_EQ(a[i].end, b[i].end);
    EXPECT_LT(a[i].start, a[i].end);
    EXPECT_DOUBLE_EQ(a[i].carbon_multiplier, 4.0);
    EXPECT_DOUBLE_EQ(a[i].price_multiplier, 2.0);
    if (i > 0) { EXPECT_GE(a[i].start, a[i - 1].end); }
  }
  // ~2 per day over a week, exponential gaps: loose Poisson bounds.
  EXPECT_GT(a.size(), 4u);
  EXPECT_LT(a.size(), 40u);
}

TEST(GridSpikeGen, EventMultiplierAppliesInsideWindowOnly) {
  energy::GridConfig grid = energy::GridConfig::flat(300.0);
  grid.events.push_back({1000, 2000, 4.0, 2.0});
  EXPECT_DOUBLE_EQ(grid.carbon_g_per_kwh_at(500), 300.0);
  EXPECT_DOUBLE_EQ(grid.carbon_g_per_kwh_at(1500), 1200.0);
  EXPECT_DOUBLE_EQ(grid.carbon_g_per_kwh_at(2000), 300.0);  // end exclusive
  EXPECT_DOUBLE_EQ(grid.price_usd_per_kwh_at(1500), 0.24);
  // Overlapping events compound.
  grid.events.push_back({1500, 1800, 3.0, 1.0});
  EXPECT_DOUBLE_EQ(grid.carbon_g_per_kwh_at(1600), 3600.0);
}

TEST(GridSpikeGen, MeterChargesSpikedRates) {
  energy::GridConfig grid = energy::GridConfig::flat(100.0);
  grid.events.push_back({0, 3600, 5.0, 3.0});
  energy::GridMeter meter(grid);
  meter.draw(1800, kwh_to_j(1.0));   // inside the spike
  meter.draw(7200, kwh_to_j(1.0));   // after it
  EXPECT_NEAR(meter.total_carbon_g(), 500.0 + 100.0, 1e-9);
  EXPECT_NEAR(meter.total_cost_usd(), 0.36 + 0.12, 1e-9);
}

TEST(CurtailmentGen, WindowsCarryTheSupplyFraction) {
  CurtailmentConfig config;
  config.rate_per_day = 1.0;
  config.duration_h = 4.0;
  config.supply_fraction = 0.25;
  const auto windows =
      scenario::generate_curtailment_windows(config, kWeek);
  ASSERT_FALSE(windows.empty());
  for (std::size_t i = 0; i < windows.size(); ++i) {
    EXPECT_LT(windows[i].start, windows[i].end);
    EXPECT_DOUBLE_EQ(windows[i].factor, 0.25);
    if (i > 0) { EXPECT_GE(windows[i].start, windows[i - 1].end); }
  }
}

TEST(CurtailmentGen, ModulatedSourceDeratesExactly) {
  auto base = std::make_shared<energy::ConstantSource>(1000.0);
  energy::ModulatedSource source(
      base, {{100, 200, 0.2}, {150, 300, 0.5}});
  EXPECT_DOUBLE_EQ(source.power_w(50), 1000.0);
  EXPECT_DOUBLE_EQ(source.power_w(120), 200.0);
  EXPECT_DOUBLE_EQ(source.power_w(180), 100.0);  // overlap compounds
  EXPECT_DOUBLE_EQ(source.power_w(250), 500.0);
  EXPECT_DOUBLE_EQ(source.power_w(300), 1000.0);
  // energy_j splits at window boundaries: the edges are exact, not
  // smeared by trapezoid steps.
  const double expected = 100 * 1000.0   // [0,100) full
                          + 50 * 200.0   // [100,150) x0.2
                          + 50 * 100.0   // [150,200) x0.1
                          + 100 * 500.0  // [200,300) x0.5
                          + 100 * 1000.0;  // [300,400) full
  EXPECT_NEAR(source.energy_j(0, 400), expected, 1e-6);
}

TEST(ScenarioConfigCheck, AnyReflectsActiveProcesses) {
  scenario::ScenarioConfig config;
  EXPECT_FALSE(config.any());
  config.grid_spikes.rate_per_day = 1.0;
  EXPECT_TRUE(config.any());
  config.grid_spikes.rate_per_day = 0.0;
  config.failures.process = FailureProcess::kWeibull;
  EXPECT_TRUE(config.any());
}

// ------------------------------------------------- engine integration

core::ExperimentConfig scenario_config() {
  core::ExperimentConfig config = core::ExperimentConfig::canonical();
  config.workload.duration_days = 2;
  config.battery = energy::BatteryConfig::lithium_ion(kwh_to_j(40));
  config.battery.initial_soc_fraction = 0.5;
  config.scenario.failures.process = FailureProcess::kPoisson;
  config.scenario.failures.mtbf_hours = 100.0;
  config.scenario.failures.mttr_hours = 6.0;
  config.scenario.grid_spikes.rate_per_day = 2.0;
  config.scenario.curtailment.rate_per_day = 1.0;
  config.scenario.curtailment.supply_fraction = 0.3;
  return config;
}

TEST(ScenarioEngine, GeneratedFailureWeekPassesEveryAuditCheck) {
  const core::ExperimentConfig config = scenario_config();
  core::SimulationEngine engine(config);
  const core::RunArtifacts artifacts = engine.run();
  // The storm actually happened...
  EXPECT_GT(artifacts.result.scheduler.nodes_failed, 0u);
  // ...and all conservation books still close.
  const audit::AuditReport report = audit::audit_run(engine, artifacts);
  EXPECT_GE(report.checks.size(), 18u);
  for (const auto& check : report.checks)
    EXPECT_TRUE(check.passed) << check.name << ": " << check.detail;
  const auto round_trip = audit::config_roundtrip(config);
  EXPECT_TRUE(round_trip.fixed_point);
}

TEST(ScenarioEngine, CurtailmentReducesDeliveredSupply) {
  core::ExperimentConfig config = core::ExperimentConfig::canonical();
  config.workload.duration_days = 2;
  core::SimulationEngine plain(config);
  config.scenario.curtailment.rate_per_day = 3.0;
  config.scenario.curtailment.duration_h = 5.0;
  config.scenario.curtailment.supply_fraction = 0.1;
  core::SimulationEngine curtailed(config);
  const auto a = plain.run();
  const auto b = curtailed.run();
  EXPECT_LT(b.result.energy.green_supply_j,
            a.result.energy.green_supply_j * 0.95);
}

// The step/observe/act decomposition must reproduce run() exactly: an
// external agent holding its own policy instance (initialized with the
// engine's facts) and driving observe -> decide -> act produces a
// bit-identical ledger, completion record, and audit result.
TEST(ScenarioEngine, ObserveActMatchesRunBitExactly) {
  core::ExperimentConfig config = scenario_config();
  config.noisy_forecast = true;  // exercise the forecast path too
  config.forecast_noise.ar1_rho = 0.6;

  core::SimulationEngine legacy(config);
  const core::RunArtifacts want = legacy.run();

  core::SimulationEngine stepped(config);
  auto agent = core::make_policy(config.policy);
  agent->initialize(stepped.facts());
  const SlotIndex n = stepped.total_slots();
  for (SlotIndex slot = 0; slot < n; ++slot) {
    const core::SlotContext& ctx = stepped.observe(slot);
    stepped.act(slot, agent->decide(ctx));
  }
  const core::RunArtifacts got = stepped.finalize();

  const auto& ws = want.ledger.slots();
  const auto& gs = got.ledger.slots();
  ASSERT_EQ(ws.size(), gs.size());
  for (std::size_t i = 0; i < ws.size(); ++i) {
    EXPECT_EQ(ws[i].demand_j, gs[i].demand_j) << "slot " << i;
    EXPECT_EQ(ws[i].green_supply_j, gs[i].green_supply_j) << "slot " << i;
    EXPECT_EQ(ws[i].green_direct_j, gs[i].green_direct_j) << "slot " << i;
    EXPECT_EQ(ws[i].brown_j, gs[i].brown_j) << "slot " << i;
    EXPECT_EQ(ws[i].curtailed_j, gs[i].curtailed_j) << "slot " << i;
    EXPECT_EQ(ws[i].battery_stored_end_j, gs[i].battery_stored_end_j)
        << "slot " << i;
    EXPECT_EQ(want.active_nodes_per_slot[i], got.active_nodes_per_slot[i])
        << "slot " << i;
  }
  EXPECT_EQ(want.result.qos.tasks_completed, got.result.qos.tasks_completed);
  EXPECT_EQ(want.result.qos.deadline_misses, got.result.qos.deadline_misses);
  EXPECT_EQ(want.result.scheduler.nodes_failed,
            got.result.scheduler.nodes_failed);
  EXPECT_EQ(want.result.grid_carbon_g, got.result.grid_carbon_g);
}

TEST(ScenarioEngine, ObserveActGuardsMisuse) {
  core::ExperimentConfig config = core::ExperimentConfig::canonical();
  config.workload.duration_days = 1;
  core::SimulationEngine engine(config);
  core::SlotDecision decision;
  EXPECT_THROW(engine.act(0, decision), InvalidArgument);  // no observe
  engine.observe(0);
  EXPECT_THROW(engine.observe(0), InvalidArgument);  // double observe
  engine.act(0, decision);
  EXPECT_THROW(engine.act(0, decision), InvalidArgument);  // stale act
}

}  // namespace
}  // namespace gm
