// Discrete-event kernel and statistics tests.

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "sim/simulator.hpp"
#include "sim/stats.hpp"
#include "util/rng.hpp"

namespace gm::sim {
namespace {

TEST(Simulator, FiresInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(30, [&] { order.push_back(3); });
  sim.schedule_at(10, [&] { order.push_back(1); });
  sim.schedule_at(20, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30);
}

TEST(Simulator, SameTimeFifoOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i)
    sim.schedule_at(5, [&, i] { order.push_back(i); });
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Simulator, ScheduleAfterUsesNow) {
  Simulator sim;
  SimTime fired_at = -1;
  sim.schedule_at(100, [&] {
    sim.schedule_after(50, [&] { fired_at = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(fired_at, 150);
}

TEST(Simulator, RejectsPastScheduling) {
  Simulator sim;
  sim.schedule_at(10, [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(5, [] {}), InvalidArgument);
  EXPECT_THROW(sim.schedule_after(-1, [] {}), InvalidArgument);
}

TEST(Simulator, RunUntilStopsAndAdvancesClock) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(10, [&] { ++fired; });
  sim.schedule_at(20, [&] { ++fired; });
  sim.schedule_at(30, [&] { ++fired; });
  sim.run_until(20);
  EXPECT_EQ(fired, 2);  // events exactly at the bound fire
  EXPECT_EQ(sim.now(), 20);
  sim.run_until(100);
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(sim.now(), 100);  // clock ends at the bound
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  bool fired = false;
  auto handle = sim.schedule_at(10, [&] { fired = true; });
  EXPECT_TRUE(handle.pending());
  handle.cancel();
  EXPECT_FALSE(handle.pending());
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(Simulator, CancelIsIdempotentAndSafeOnDefault) {
  EventHandle empty;
  EXPECT_FALSE(empty.pending());
  empty.cancel();  // no crash

  Simulator sim;
  auto h = sim.schedule_at(1, [] {});
  h.cancel();
  h.cancel();
  sim.run();
}

TEST(Simulator, HandleNotPendingInsideCallback) {
  Simulator sim;
  EventHandle h;
  bool pending_inside = true;
  h = sim.schedule_at(5, [&] { pending_inside = h.pending(); });
  sim.run();
  EXPECT_FALSE(pending_inside);
}

TEST(Simulator, PeriodicFiresRepeatedly) {
  Simulator sim;
  std::vector<SimTime> times;
  EventHandle h;
  h = sim.schedule_periodic(10, 5, [&] {
    times.push_back(sim.now());
    if (times.size() == 4) h.cancel();
  });
  sim.run_until(1000);
  EXPECT_EQ(times, (std::vector<SimTime>{10, 15, 20, 25}));
}

TEST(Simulator, PeriodicCancelFromOutside) {
  Simulator sim;
  int count = 0;
  auto h = sim.schedule_periodic(0, 10, [&] { ++count; });
  sim.schedule_at(35, [&] { h.cancel(); });
  sim.run_until(200);
  EXPECT_EQ(count, 4);  // t = 0, 10, 20, 30
}

TEST(Simulator, CountsExecutedEvents) {
  Simulator sim;
  for (int i = 0; i < 7; ++i) sim.schedule_at(i, [] {});
  auto h = sim.schedule_at(100, [] {});
  h.cancel();
  sim.run();
  EXPECT_EQ(sim.events_executed(), 7u);
}

TEST(Simulator, StressAgainstReferenceModel) {
  // Random schedule/cancel against a std::multimap reference.
  Simulator sim;
  Rng rng(12345);
  std::multimap<SimTime, int> reference;
  std::vector<int> fired;
  std::vector<EventHandle> handles;
  int next_id = 0;

  for (int round = 0; round < 200; ++round) {
    const SimTime t = static_cast<SimTime>(rng.uniform_u64(10000));
    const int id = next_id++;
    reference.emplace(t, id);
    handles.push_back(
        sim.schedule_at(t, [&fired, id] { fired.push_back(id); }));
    if (round % 7 == 3) {
      // Cancel a random previous event if still pending.
      const auto victim = rng.uniform_u64(handles.size());
      if (handles[victim].pending()) {
        handles[victim].cancel();
        // Remove from reference (linear scan is fine at this size).
        for (auto it = reference.begin(); it != reference.end(); ++it) {
          if (it->second == static_cast<int>(victim)) {
            reference.erase(it);
            break;
          }
        }
      }
    }
  }
  sim.run();

  std::vector<int> expected;
  for (const auto& [t, id] : reference) expected.push_back(id);
  // multimap preserves insertion order per key only since C++11 for
  // equal_range with hint-less insert — and ids were inserted in
  // increasing order per timestamp, matching the kernel's FIFO rule.
  EXPECT_EQ(fired, expected);
}

// -------------------------------------------------------------- Stats

TEST(Accumulator, MatchesNaiveComputation) {
  Accumulator acc;
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0, 5.0, -1.0};
  double sum = 0.0;
  for (double x : xs) {
    acc.add(x);
    sum += x;
  }
  EXPECT_EQ(acc.count(), xs.size());
  EXPECT_DOUBLE_EQ(acc.sum(), sum);
  EXPECT_NEAR(acc.mean(), sum / xs.size(), 1e-12);
  EXPECT_DOUBLE_EQ(acc.min(), -1.0);
  EXPECT_DOUBLE_EQ(acc.max(), 5.0);
  // Naive sample variance.
  double var = 0.0;
  for (double x : xs) var += (x - acc.mean()) * (x - acc.mean());
  var /= xs.size() - 1;
  EXPECT_NEAR(acc.variance(), var, 1e-12);
}

TEST(Accumulator, EmptyIsZero) {
  Accumulator acc;
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_DOUBLE_EQ(acc.mean(), 0.0);
  EXPECT_DOUBLE_EQ(acc.variance(), 0.0);
}

TEST(Accumulator, MergeEqualsSingleStream) {
  Rng rng(99);
  Accumulator whole, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-10, 10);
    whole.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), whole.min());
  EXPECT_DOUBLE_EQ(a.max(), whole.max());
}

TEST(Accumulator, MergeWithEmpty) {
  Accumulator a, b;
  a.add(1.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 1u);
  b.merge(a);
  EXPECT_EQ(b.count(), 1u);
  EXPECT_DOUBLE_EQ(b.mean(), 1.0);
}

TEST(TimeWeighted, IntegratesPiecewiseConstant) {
  TimeWeighted tw(0, 2.0);
  tw.set(10, 5.0);   // 2.0 over [0, 10) = 20
  tw.set(20, 0.0);   // 5.0 over [10, 20) = 50
  tw.advance_to(30); // 0.0 over [20, 30) = 0
  EXPECT_DOUBLE_EQ(tw.integral(), 70.0);
  EXPECT_DOUBLE_EQ(tw.time_average(), 70.0 / 30.0);
  EXPECT_DOUBLE_EQ(tw.value(), 0.0);
}

TEST(TimeWeighted, RejectsBackwardsTime) {
  TimeWeighted tw(0, 1.0);
  tw.set(10, 2.0);
  EXPECT_THROW(tw.set(5, 3.0), InvalidArgument);
}

TEST(Histogram, CountsAndQuantiles) {
  Histogram h(0.0, 100.0, 100);
  for (int i = 0; i < 100; ++i) h.add(i + 0.5);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_NEAR(h.quantile(0.5), 50.0, 1.5);
  EXPECT_NEAR(h.quantile(0.95), 95.0, 1.5);
  EXPECT_NEAR(h.quantile(0.0), 0.0, 1.5);
}

TEST(Histogram, UnderOverflow) {
  Histogram h(0.0, 10.0, 10);
  h.add(-5.0);
  h.add(15.0);
  h.add(5.0);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.count(), 3u);
}

TEST(Histogram, QuantileOfEmptyThrows) {
  Histogram h(0.0, 1.0, 4);
  EXPECT_THROW(h.quantile(0.5), InvalidArgument);
  h.add(0.5);
  EXPECT_THROW(h.quantile(1.5), InvalidArgument);
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), InvalidArgument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), InvalidArgument);
}

}  // namespace
}  // namespace gm::sim
