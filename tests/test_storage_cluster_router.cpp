// Cluster coverage/activation and request-router tests.

#include <gtest/gtest.h>

#include <algorithm>

#include "storage/cluster.hpp"
#include "storage/router.hpp"
#include "util/assert.hpp"

namespace gm::storage {
namespace {

ClusterConfig small_cluster(int replication = 3) {
  ClusterConfig c;
  c.racks = 2;
  c.nodes_per_rack = 4;
  c.placement.group_count = 64;
  c.placement.replication = replication;
  return c;
}

TEST(Cluster, AllActiveIsFeasible) {
  Cluster cl(small_cluster());
  ActiveSet all(cl.node_count(), true);
  EXPECT_TRUE(cl.is_feasible(all));
  EXPECT_EQ(cl.covered_groups(all), 64u);
}

TEST(Cluster, NoneActiveCoversNothing) {
  Cluster cl(small_cluster());
  ActiveSet none(cl.node_count(), false);
  EXPECT_EQ(cl.covered_groups(none), 0u);
}

TEST(Cluster, ChooseActiveSetIsFeasibleForAnyTarget) {
  Cluster cl(small_cluster());
  for (int target = 0; target <= static_cast<int>(cl.node_count());
       ++target) {
    const ActiveSet s = cl.choose_active_set(target);
    EXPECT_TRUE(cl.is_feasible(s)) << "target " << target;
    EXPECT_GE(Cluster::active_count(s), std::min(
        target, static_cast<int>(cl.node_count())));
  }
}

TEST(Cluster, ChooseActiveSetMonotoneNested) {
  // Larger targets keep everything a smaller target kept (the greedy
  // deactivation order is fixed), which minimizes churn across slots.
  Cluster cl(small_cluster());
  const ActiveSet small = cl.choose_active_set(0);
  const ActiveSet large =
      cl.choose_active_set(static_cast<int>(cl.node_count()) - 1);
  for (NodeId n = 0; n < cl.node_count(); ++n)
    if (small[n]) EXPECT_TRUE(large[n]);
}

TEST(Cluster, MinFeasibleBelowTotal) {
  Cluster cl(small_cluster());
  EXPECT_LE(cl.min_feasible_count(),
            static_cast<int>(cl.node_count()));
  EXPECT_GT(cl.min_feasible_count(), 0);
}

TEST(Cluster, HigherReplicationLowersFloor) {
  // On realistically-sized clusters more replicas per group give the
  // greedy deactivation strictly more room. (Tiny clusters can invert
  // this: the greedy order is not optimal.)
  ClusterConfig big2 = small_cluster(2), big3 = small_cluster(3);
  big2.racks = big3.racks = 4;
  big2.nodes_per_rack = big3.nodes_per_rack = 16;
  big2.placement.group_count = big3.placement.group_count = 512;
  Cluster r2(big2), r3(big3);
  EXPECT_LT(r3.min_feasible_count(), r2.min_feasible_count());
}

TEST(Cluster, ActiveCountHelper) {
  ActiveSet s{true, false, true, true};
  EXPECT_EQ(Cluster::active_count(s), 3);
}

TEST(Cluster, CoverageRejectsWrongSize) {
  Cluster cl(small_cluster());
  EXPECT_THROW(cl.covered_groups(ActiveSet(3, true)), InvalidArgument);
}

TEST(Cluster, NodeAccessBounds) {
  Cluster cl(small_cluster());
  EXPECT_NO_THROW(cl.node(0));
  EXPECT_THROW(cl.node(static_cast<NodeId>(cl.node_count())),
               InvalidArgument);
}

// -------------------------------------------------------------- Router

IoRequest make_read(RequestId id, SimTime at, ObjectId object,
                    std::uint64_t bytes = 1 << 20) {
  IoRequest r;
  r.id = id;
  r.arrival = at;
  r.object = object;
  r.size_bytes = bytes;
  r.is_write = false;
  return r;
}

TEST(Router, ServesReadOnActiveReplica) {
  Cluster cl(small_cluster());
  RequestRouter router(cl, RouterConfig{});
  const auto outcome = router.route(make_read(1, 0, 42), 0, nullptr);
  ASSERT_TRUE(outcome.has_value());
  EXPECT_GT(outcome->latency_s, 0.0);
  EXPECT_LT(outcome->latency_s, 1.0);
  EXPECT_FALSE(outcome->offloaded);
  EXPECT_FALSE(outcome->forced_wakeup);
  // Served by a replica of the object's group.
  const GroupId g = cl.placement().group_of(42);
  const auto& reps = cl.placement().replicas(g);
  EXPECT_NE(std::find(reps.begin(), reps.end(), outcome->served_by),
            reps.end());
}

TEST(Router, QueueingDelaysSecondRequest) {
  Cluster cl(small_cluster());
  RequestRouter router(cl, RouterConfig{});
  // Two large requests for the same object arrive together; per-disk
  // FIFO queueing must make one wait (there are 3 replicas × 4 disks,
  // but the least-loaded-disk choice spreads them; hammer with many).
  const ObjectId object = 7;
  double max_latency = 0.0;
  for (int i = 0; i < 64; ++i) {
    const auto out =
        router.route(make_read(i, 0, object, 200 << 20), 0, nullptr);
    ASSERT_TRUE(out.has_value());
    max_latency = std::max(max_latency, out->latency_s);
  }
  // 64 × ~1.4 s of service over 12 replica disks → some request waits
  // several service times.
  EXPECT_GT(max_latency, 3.0);
}

TEST(Router, ReadUnavailableWithoutWaker) {
  Cluster cl(small_cluster());
  // Deactivate every node (bypassing coverage for the test).
  for (NodeId n = 0; n < cl.node_count(); ++n)
    cl.node(n).complete_power_off(cl.node(n).begin_power_off(0));
  RequestRouter router(cl, RouterConfig{});
  const auto out = router.route(make_read(1, 100, 5), 100, nullptr);
  EXPECT_FALSE(out.has_value());
  EXPECT_EQ(router.unavailable_reads(), 1u);
}

TEST(Router, WriteOffloadsToAnyActiveNode) {
  Cluster cl(small_cluster());
  // Find an object and deactivate all its replicas.
  const ObjectId object = 11;
  const GroupId g = cl.placement().group_of(object);
  for (NodeId n : cl.placement().replicas(g))
    cl.node(n).complete_power_off(cl.node(n).begin_power_off(0));

  RequestRouter router(cl, RouterConfig{});
  IoRequest w = make_read(1, 10, object);
  w.is_write = true;
  const auto out = router.route(w, 10, nullptr);
  ASSERT_TRUE(out.has_value());
  EXPECT_TRUE(out->offloaded);
  // Served by a non-replica node.
  const auto& reps = cl.placement().replicas(g);
  EXPECT_EQ(std::find(reps.begin(), reps.end(), out->served_by),
            reps.end());
  EXPECT_EQ(router.stats().offloaded_writes, 1u);

  // A reconciliation task was emitted.
  const auto tasks = router.drain_offload_tasks();
  ASSERT_EQ(tasks.size(), 1u);
  EXPECT_EQ(tasks[0].group, g);
  EXPECT_GT(tasks[0].deadline, tasks[0].release);
  EXPECT_TRUE(router.drain_offload_tasks().empty());  // drained
}

TEST(Router, ForcedWakeupViaWaker) {
  Cluster cl(small_cluster());
  const ObjectId object = 13;
  const GroupId g = cl.placement().group_of(object);
  for (NodeId n : cl.placement().replicas(g))
    cl.node(n).complete_power_off(cl.node(n).begin_power_off(0));

  RequestRouter router(cl, RouterConfig{});
  int wakes = 0;
  const NodeWaker waker = [&](GroupId group, SimTime now) -> SimTime {
    EXPECT_EQ(group, g);
    ++wakes;
    // Wake the primary replica.
    const NodeId n = cl.placement().replicas(group).front();
    cl.node(n).complete_power_on(cl.node(n).begin_power_on(now) );
    return now + 120;
  };
  const auto out = router.route(make_read(1, 50, object), 50, waker);
  ASSERT_TRUE(out.has_value());
  EXPECT_TRUE(out->forced_wakeup);
  EXPECT_EQ(wakes, 1);
  EXPECT_GE(out->latency_s, 0.0);
  EXPECT_EQ(router.stats().forced_wakeups, 1u);
}

TEST(Router, StatsCountKinds) {
  Cluster cl(small_cluster());
  RequestRouter router(cl, RouterConfig{});
  router.route(make_read(1, 0, 1), 0, nullptr);
  IoRequest w = make_read(2, 0, 2);
  w.is_write = true;
  router.route(w, 0, nullptr);
  EXPECT_EQ(router.stats().requests, 2u);
  EXPECT_EQ(router.stats().reads, 1u);
  EXPECT_EQ(router.stats().writes, 1u);
  EXPECT_GT(router.stats().busy_disk_seconds, 0.0);
  EXPECT_EQ(router.latency_histogram().count(), 2u);
}

}  // namespace
}  // namespace gm::storage
