// Disk and storage-node state machine and power model tests.

#include <gtest/gtest.h>

#include "storage/disk.hpp"
#include "storage/node.hpp"
#include "util/assert.hpp"

namespace gm::storage {
namespace {

TEST(Disk, InitialStateIdleSpinning) {
  Disk d(0, DiskConfig{});
  EXPECT_EQ(d.state(), DiskState::kIdle);
  EXPECT_TRUE(d.spinning());
  EXPECT_EQ(d.spinup_count(), 0u);
}

TEST(Disk, SpinDownAndUpCycle) {
  DiskConfig config;
  Disk d(0, config);
  d.spin_down(100);
  EXPECT_EQ(d.state(), DiskState::kStandby);
  EXPECT_FALSE(d.spinning());

  const SimTime done = d.begin_spinup(200);
  EXPECT_EQ(done, 200 + static_cast<SimTime>(config.spinup_time_s));
  EXPECT_EQ(d.state(), DiskState::kSpinningUp);
  d.complete_spinup(done);
  EXPECT_EQ(d.state(), DiskState::kIdle);
  EXPECT_EQ(d.spinup_count(), 1u);
}

TEST(Disk, SpinupOnSpinningDiskIsNoop) {
  Disk d(0, DiskConfig{});
  EXPECT_EQ(d.begin_spinup(50), 50);
  EXPECT_EQ(d.spinup_count(), 0u);
}

TEST(Disk, RepeatedSpinupReturnsSameCompletion) {
  Disk d(0, DiskConfig{});
  d.spin_down(0);
  const SimTime done = d.begin_spinup(10);
  EXPECT_EQ(d.begin_spinup(12), done);
  EXPECT_EQ(d.spinup_count(), 1u);
}

TEST(Disk, SpinDownRequiresSpinning) {
  Disk d(0, DiskConfig{});
  d.spin_down(0);
  EXPECT_THROW(d.spin_down(1), InvalidArgument);
}

TEST(Disk, ServiceTimeModel) {
  DiskConfig config;
  config.avg_seek_s = 0.01;
  config.bandwidth_bytes_per_s = 100e6;
  Disk d(0, config);
  EXPECT_NEAR(d.service_time_s(100'000'000), 0.01 + 1.0, 1e-9);
  EXPECT_NEAR(d.service_time_s(0), 0.01, 1e-12);
}

TEST(Disk, NoIoWhileStandby) {
  Disk d(0, DiskConfig{});
  d.spin_down(0);
  EXPECT_THROW(d.service_time_s(1024), InvalidArgument);
}

TEST(Disk, PowerPerState) {
  DiskConfig config;
  Disk d(0, config);
  EXPECT_DOUBLE_EQ(d.power_w(), config.idle_power_w);
  d.spin_down(0);
  EXPECT_DOUBLE_EQ(d.power_w(), config.standby_power_w);
  d.begin_spinup(10);
  EXPECT_DOUBLE_EQ(d.power_w(), config.spinup_power_w);
}

TEST(Disk, CycleBudget) {
  DiskConfig config;
  config.max_spinup_cycles_per_day = 2.0;
  Disk d(0, config);
  EXPECT_TRUE(d.cycle_budget_allows(1.0));
  for (int i = 0; i < 2; ++i) {
    d.spin_down(i * 100);
    d.complete_spinup(d.begin_spinup(i * 100 + 50));
  }
  EXPECT_FALSE(d.cycle_budget_allows(1.0));  // third cycle would exceed
  EXPECT_TRUE(d.cycle_budget_allows(2.0));
}

TEST(DiskConfig, Validation) {
  DiskConfig c;
  c.idle_power_w = 20.0;  // above active
  EXPECT_THROW(c.validate(), InvalidArgument);
  c = DiskConfig{};
  c.bandwidth_bytes_per_s = 0.0;
  EXPECT_THROW(c.validate(), InvalidArgument);
}

// ---------------------------------------------------------------- Node

TEST(Node, StartsOnWithSpinningDisks) {
  StorageNode n(0, 0, NodeConfig{});
  EXPECT_TRUE(n.available());
  EXPECT_EQ(n.disks().size(), 4u);
  for (const auto& d : n.disks()) EXPECT_TRUE(d.spinning());
}

TEST(Node, PowerOffCycleSpinsDownDisks) {
  NodeConfig config;
  StorageNode n(0, 0, config);
  const SimTime done = n.begin_power_off(100);
  EXPECT_EQ(done, 100 + static_cast<SimTime>(config.shutdown_time_s));
  for (const auto& d : n.disks()) EXPECT_FALSE(d.spinning());
  n.complete_power_off(done);
  EXPECT_EQ(n.state(), NodeState::kOff);
  EXPECT_DOUBLE_EQ(n.power_w(0.0), 0.0);
}

TEST(Node, PowerOnRestoresDisks) {
  NodeConfig config;
  StorageNode n(0, 0, config);
  n.complete_power_off(n.begin_power_off(0));
  const SimTime done = n.begin_power_on(1000);
  EXPECT_EQ(done, 1000 + static_cast<SimTime>(config.boot_time_s));
  n.complete_power_on(done);
  EXPECT_TRUE(n.available());
  for (const auto& d : n.disks()) EXPECT_TRUE(d.spinning());
  EXPECT_EQ(n.power_cycle_count(), 1u);
}

TEST(Node, PowerOnWhenOnIsNoop) {
  StorageNode n(0, 0, NodeConfig{});
  EXPECT_EQ(n.begin_power_on(42), 42);
  EXPECT_EQ(n.power_cycle_count(), 0u);
}

TEST(Node, LinearPowerModel) {
  NodeConfig config;
  StorageNode n(0, 0, config);
  const Watts disks = 4 * config.disk.idle_power_w;
  EXPECT_NEAR(n.power_w(0.0), config.cpu_idle_w + disks, 1e-9);
  EXPECT_NEAR(n.power_w(1.0), config.cpu_peak_w + disks, 1e-9);
  EXPECT_NEAR(n.power_w(0.5),
              config.cpu_idle_w +
                  0.5 * (config.cpu_peak_w - config.cpu_idle_w) + disks,
              1e-9);
}

TEST(Node, IdleIsRoughlyHalfPeak) {
  // The structural fact the paper family leans on.
  NodeConfig config;
  const double ratio = config.idle_floor_w() / config.peak_w();
  EXPECT_GT(ratio, 0.4);
  EXPECT_LT(ratio, 0.6);
}

TEST(Node, PowerDuringTransitions) {
  NodeConfig config;
  StorageNode n(0, 0, config);
  n.begin_power_off(0);
  EXPECT_DOUBLE_EQ(n.power_w(0.0), config.boot_power_w);
}

TEST(Node, UtilizationOutOfRangeRejected) {
  StorageNode n(0, 0, NodeConfig{});
  EXPECT_THROW(n.power_w(-0.1), InvalidArgument);
  EXPECT_THROW(n.power_w(1.2), InvalidArgument);
}

TEST(Node, TaskUtilizationClamped) {
  StorageNode n(0, 0, NodeConfig{});
  EXPECT_DOUBLE_EQ(n.task_utilization(2, 0.25), 0.5);
  EXPECT_DOUBLE_EQ(n.task_utilization(10, 0.25), 1.0);
  EXPECT_THROW(n.task_utilization(-1, 0.25), InvalidArgument);
}

TEST(Node, IllegalTransitionsRejected) {
  StorageNode n(0, 0, NodeConfig{});
  n.begin_power_off(0);
  EXPECT_THROW(n.begin_power_on(1), InvalidArgument);  // while shutting
}

TEST(NodeConfig, Validation) {
  NodeConfig c;
  c.cpu_idle_w = 300.0;  // above peak
  EXPECT_THROW(c.validate(), InvalidArgument);
  c = NodeConfig{};
  c.task_slots = -1;
  EXPECT_THROW(c.validate(), InvalidArgument);
}

}  // namespace
}  // namespace gm::storage
