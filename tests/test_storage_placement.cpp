// Placement map tests: determinism, replication, rack-disjointness,
// balance, stability under node-set changes.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <unordered_set>

#include "storage/placement.hpp"
#include "util/assert.hpp"

namespace gm::storage {
namespace {

std::vector<NodeDescriptor> grid_nodes(int racks, int per_rack) {
  std::vector<NodeDescriptor> nodes;
  NodeId id = 0;
  for (int r = 0; r < racks; ++r)
    for (int n = 0; n < per_rack; ++n)
      nodes.push_back({id++, static_cast<RackId>(r)});
  return nodes;
}

PlacementConfig config_with(int replication, std::uint32_t groups) {
  PlacementConfig c;
  c.replication = replication;
  c.group_count = groups;
  return c;
}

TEST(Placement, EveryGroupHasExactlyRReplicas) {
  PlacementMap map(config_with(3, 256), grid_nodes(4, 8));
  for (GroupId g = 0; g < 256; ++g) {
    const auto& reps = map.replicas(g);
    EXPECT_EQ(reps.size(), 3u) << "group " << g;
    // Replicas are distinct nodes.
    std::set<NodeId> unique(reps.begin(), reps.end());
    EXPECT_EQ(unique.size(), reps.size());
  }
}

TEST(Placement, ReplicasInDistinctRacks) {
  const auto nodes = grid_nodes(4, 8);
  PlacementMap map(config_with(3, 256), nodes);
  for (GroupId g = 0; g < 256; ++g) {
    std::set<RackId> racks;
    for (NodeId n : map.replicas(g)) racks.insert(nodes[n].rack);
    EXPECT_EQ(racks.size(), 3u) << "group " << g;
  }
}

TEST(Placement, RelaxesRackConstraintWhenImpossible) {
  // 2 racks but replication 3: still places 3 distinct nodes.
  PlacementMap map(config_with(3, 64), grid_nodes(2, 4));
  for (GroupId g = 0; g < 64; ++g) {
    const auto& reps = map.replicas(g);
    EXPECT_EQ(reps.size(), 3u);
    std::set<NodeId> unique(reps.begin(), reps.end());
    EXPECT_EQ(unique.size(), 3u);
  }
}

TEST(Placement, DeterministicPerSeed) {
  PlacementConfig c = config_with(2, 128);
  PlacementMap a(c, grid_nodes(4, 4)), b(c, grid_nodes(4, 4));
  for (GroupId g = 0; g < 128; ++g)
    EXPECT_EQ(a.replicas(g), b.replicas(g));

  c.seed = 99;
  PlacementMap other(c, grid_nodes(4, 4));
  int moved = 0;
  for (GroupId g = 0; g < 128; ++g)
    if (a.replicas(g) != other.replicas(g)) ++moved;
  EXPECT_GT(moved, 64);  // different seed reshuffles most groups
}

TEST(Placement, LoadIsBalanced) {
  const auto nodes = grid_nodes(4, 8);
  PlacementMap map(config_with(3, 4096), nodes);
  std::vector<int> load(nodes.size(), 0);
  for (GroupId g = 0; g < 4096; ++g)
    for (NodeId n : map.replicas(g)) ++load[n];
  const double expected = 4096.0 * 3 / nodes.size();  // 384
  const auto [lo, hi] = std::minmax_element(load.begin(), load.end());
  EXPECT_GT(*lo, expected * 0.7);
  EXPECT_LT(*hi, expected * 1.3);
}

TEST(Placement, GroupsOnInvertsReplicas) {
  const auto nodes = grid_nodes(3, 5);
  PlacementMap map(config_with(2, 200), nodes);
  for (const auto& nd : nodes) {
    for (GroupId g : map.groups_on(nd.id)) {
      const auto& reps = map.replicas(g);
      EXPECT_NE(std::find(reps.begin(), reps.end(), nd.id), reps.end());
    }
  }
  // Total group-slots match.
  std::size_t total = 0;
  for (const auto& nd : nodes) total += map.groups_on(nd.id).size();
  EXPECT_EQ(total, 200u * 2u);
}

TEST(Placement, ObjectToGroupStableAndUniform) {
  PlacementMap map(config_with(2, 64), grid_nodes(2, 4));
  std::vector<int> hits(64, 0);
  for (ObjectId o = 0; o < 64000; ++o) {
    const GroupId g = map.group_of(o);
    EXPECT_EQ(g, map.group_of(o));
    ASSERT_LT(g, 64u);
    ++hits[g];
  }
  const auto [lo, hi] = std::minmax_element(hits.begin(), hits.end());
  EXPECT_GT(*lo, 700);
  EXPECT_LT(*hi, 1300);
}

TEST(Placement, MinimalMovementOnNodeRemoval) {
  // Rendezvous property: dropping one node only moves the groups that
  // had a replica there.
  auto nodes = grid_nodes(4, 8);
  PlacementConfig c = config_with(2, 512);
  PlacementMap full(c, nodes);

  auto fewer = nodes;
  const NodeId removed = 17;
  fewer.erase(std::remove_if(fewer.begin(), fewer.end(),
                             [&](const NodeDescriptor& d) {
                               return d.id == removed;
                             }),
              fewer.end());
  PlacementMap reduced(c, fewer);

  for (GroupId g = 0; g < 512; ++g) {
    const auto& before = full.replicas(g);
    const auto& after = reduced.replicas(g);
    const bool touched =
        std::find(before.begin(), before.end(), removed) != before.end();
    if (!touched) {
      EXPECT_EQ(before, after) << "untouched group " << g << " moved";
    } else {
      // The surviving replica keeps its slot.
      for (NodeId n : before)
        if (n != removed)
          EXPECT_NE(std::find(after.begin(), after.end(), n),
                    after.end());
    }
  }
}

TEST(Placement, ValidationErrors) {
  EXPECT_THROW(PlacementMap(config_with(0, 10), grid_nodes(2, 2)),
               InvalidArgument);
  EXPECT_THROW(PlacementMap(config_with(2, 0), grid_nodes(2, 2)),
               InvalidArgument);
  EXPECT_THROW(PlacementMap(config_with(2, 10), {}), InvalidArgument);
  EXPECT_THROW(PlacementMap(config_with(2, 10),
                            {{0, 0}, {0, 1}}),  // duplicate id
               InvalidArgument);
}

TEST(Placement, UnknownNodeQueriesThrow) {
  PlacementMap map(config_with(2, 16), grid_nodes(2, 2));
  EXPECT_THROW(map.groups_on(99), InvalidArgument);
  EXPECT_THROW(map.replicas(16), InvalidArgument);
}

}  // namespace
}  // namespace gm::storage
