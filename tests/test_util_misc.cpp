// Tests for CSV, tables, math helpers, units, calendar/slot time,
// assertion machinery and the thread pool.

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/assert.hpp"
#include "util/csv.hpp"
#include "util/math_utils.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"
#include "util/time_types.hpp"
#include "util/units.hpp"

namespace gm {
namespace {

// ---------------------------------------------------------------- CSV

TEST(Csv, WriterBasicRow) {
  std::ostringstream os;
  CsvWriter w(os);
  w.field("a").field(std::int64_t{42}).field(2.5);
  w.end_row();
  EXPECT_EQ(os.str(), "a,42,2.5\n");
}

TEST(Csv, WriterQuotesSpecialCharacters) {
  std::ostringstream os;
  CsvWriter w(os);
  w.field("has,comma").field("has\"quote").field("has\nnewline");
  w.end_row();
  EXPECT_EQ(os.str(), "\"has,comma\",\"has\"\"quote\",\"has\nnewline\"\n");
}

TEST(Csv, RoundTripPreservesFields) {
  std::ostringstream os;
  CsvWriter w(os);
  w.row({"x,y", "plain", "q\"q", "line\nbreak", ""});
  const auto rows = parse_csv(os.str());
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0],
            (std::vector<std::string>{"x,y", "plain", "q\"q",
                                      "line\nbreak", ""}));
}

TEST(Csv, ParseMultipleRowsAndCrlf) {
  const auto rows = parse_csv("a,b\r\nc,d\r\n");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(rows[1], (std::vector<std::string>{"c", "d"}));
}

TEST(Csv, ParseNoTrailingNewline) {
  const auto rows = parse_csv("a,b\nc,d");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[1], (std::vector<std::string>{"c", "d"}));
}

TEST(Csv, ParseEmptyTextYieldsNoRows) {
  EXPECT_TRUE(parse_csv("").empty());
}

TEST(Csv, UnterminatedQuoteThrows) {
  EXPECT_THROW(parse_csv("\"open"), InvalidArgument);
}

TEST(Csv, DoubleRoundTripExact) {
  std::ostringstream os;
  CsvWriter w(os);
  const double v = 0.1 + 0.2;  // not exactly representable
  w.field(v);
  w.end_row();
  const auto rows = parse_csv(os.str());
  EXPECT_DOUBLE_EQ(csv_to_double(rows[0][0]), v);
}

TEST(Csv, NumericConversionRejectsGarbage) {
  EXPECT_THROW(csv_to_double("12abc"), InvalidArgument);
  EXPECT_THROW(csv_to_double("xyz"), InvalidArgument);
  EXPECT_THROW(csv_to_int("1.5"), InvalidArgument);
  EXPECT_THROW(csv_to_int(""), InvalidArgument);
  EXPECT_EQ(csv_to_int("-17"), -17);
}

TEST(Csv, MissingFileThrows) {
  EXPECT_THROW(read_csv_file("/nonexistent/path.csv"), RuntimeError);
}

// -------------------------------------------------------------- Table

TEST(Table, AlignsColumnsAndCountsRows) {
  TextTable t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  EXPECT_EQ(t.row_count(), 2u);
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("alpha"), std::string::npos);
  EXPECT_NE(os.str().find("-----"), std::string::npos);
}

TEST(Table, RejectsWrongArity) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), InvalidArgument);
}

TEST(Table, Formatters) {
  EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::integer(-5), "-5");
  EXPECT_EQ(TextTable::percent(0.1234, 1), "12.3%");
}

TEST(Table, MarkdownShape) {
  TextTable t({"h1", "h2"});
  t.add_row({"x", "y"});
  std::ostringstream os;
  t.print_markdown(os);
  EXPECT_EQ(os.str(), "| h1 | h2 |\n|---|---|\n| x | y |\n");
}

// --------------------------------------------------------------- Math

TEST(Math, LerpAndClamp) {
  EXPECT_DOUBLE_EQ(lerp(2.0, 4.0, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(clamp(5.0, 0.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(clamp(-1.0, 0.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(clamp(0.4, 0.0, 1.0), 0.4);
}

TEST(Math, ApproxEqual) {
  EXPECT_TRUE(approx_equal(1.0, 1.0 + 1e-12));
  EXPECT_FALSE(approx_equal(1.0, 1.001));
  EXPECT_TRUE(approx_equal(1e12, 1e12 + 1.0));
}

TEST(Math, PercentileInterpolates) {
  std::vector<double> v{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100.0), 4.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50.0), 2.5);
}

TEST(Math, PercentileValidation) {
  EXPECT_THROW(percentile({}, 50.0), InvalidArgument);
  EXPECT_THROW(percentile({1.0}, 101.0), InvalidArgument);
}

TEST(Math, MeanHandlesEmpty) {
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  EXPECT_DOUBLE_EQ(mean({2.0, 4.0}), 3.0);
}

TEST(PiecewiseLinear, InterpolatesAndExtrapolatesFlat) {
  PiecewiseLinear f({0.0, 10.0, 20.0}, {1.0, 3.0, 2.0});
  EXPECT_DOUBLE_EQ(f(-5.0), 1.0);
  EXPECT_DOUBLE_EQ(f(0.0), 1.0);
  EXPECT_DOUBLE_EQ(f(5.0), 2.0);
  EXPECT_DOUBLE_EQ(f(15.0), 2.5);
  EXPECT_DOUBLE_EQ(f(25.0), 2.0);
  EXPECT_DOUBLE_EQ(f.max_value(), 3.0);
}

TEST(PiecewiseLinear, RejectsUnsortedXs) {
  EXPECT_THROW(PiecewiseLinear({1.0, 1.0}, {0.0, 0.0}), InvalidArgument);
  EXPECT_THROW(PiecewiseLinear({2.0, 1.0}, {0.0, 0.0}), InvalidArgument);
  EXPECT_THROW(PiecewiseLinear({1.0}, {0.0, 0.0}), InvalidArgument);
}

// -------------------------------------------------------------- Units

TEST(Units, Conversions) {
  EXPECT_DOUBLE_EQ(kwh_to_j(1.0), 3.6e6);
  EXPECT_DOUBLE_EQ(j_to_kwh(3.6e6), 1.0);
  EXPECT_DOUBLE_EQ(wh_to_j(1.0), 3600.0);
  EXPECT_DOUBLE_EQ(hours_to_s(2.0), 7200.0);
  EXPECT_DOUBLE_EQ(s_to_days(86400.0), 1.0);
  EXPECT_DOUBLE_EQ(energy_j(100.0, 10.0), 1000.0);
  EXPECT_DOUBLE_EQ(power_w(1000.0, 10.0), 100.0);
}

// --------------------------------------------------------------- Time

TEST(Time, CalendarDecomposition) {
  const auto c = calendar_of(0);
  EXPECT_EQ(c.day, 0);
  EXPECT_EQ(c.day_of_week, 0);
  EXPECT_DOUBLE_EQ(c.hour, 0.0);

  const auto d = calendar_of(86400 * 8 + 3600 * 14 + 1800);
  EXPECT_EQ(d.day, 8);
  EXPECT_EQ(d.day_of_week, 1);  // day 8 = Tuesday (day 0 Monday)
  EXPECT_DOUBLE_EQ(d.hour, 14.5);
}

TEST(Time, CalendarDayOfYearWraps) {
  const auto c = calendar_of(0, 365);
  EXPECT_EQ(c.day_of_year, 365);
  const auto d = calendar_of(86400, 365);
  EXPECT_EQ(d.day_of_year, 1);
}

TEST(Time, CalendarRejectsBadInput) {
  EXPECT_THROW(calendar_of(-1), InvalidArgument);
  EXPECT_THROW(calendar_of(0, 0), InvalidArgument);
  EXPECT_THROW(calendar_of(0, 366), InvalidArgument);
}

TEST(Time, SlotGridArithmetic) {
  SlotGrid grid(3600);
  EXPECT_EQ(grid.slot_of(0), 0);
  EXPECT_EQ(grid.slot_of(3599), 0);
  EXPECT_EQ(grid.slot_of(3600), 1);
  EXPECT_EQ(grid.start_of(2), 7200);
  EXPECT_EQ(grid.end_of(2), 10800);
  EXPECT_EQ(grid.next_boundary(0), 0);
  EXPECT_EQ(grid.next_boundary(1), 3600);
  EXPECT_EQ(grid.next_boundary(3600), 3600);
}

TEST(Time, Formatting) {
  EXPECT_EQ(format_sim_time(0), "d0 00:00:00");
  EXPECT_EQ(format_sim_time(86400 + 3661), "d1 01:01:01");
}

// ------------------------------------------------------------- Assert

TEST(Assert, CheckThrowsWithMessage) {
  try {
    GM_CHECK(false, "value was " << 42);
    FAIL() << "expected throw";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("value was 42"),
              std::string::npos);
  }
}

TEST(Assert, AssertThrowsLogicError) {
  EXPECT_THROW(GM_ASSERT(1 == 2), std::logic_error);
  EXPECT_NO_THROW(GM_ASSERT(1 == 1));
}

// --------------------------------------------------------- ThreadPool

TEST(ThreadPool, BatchRunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  ThreadPool::Batch batch(pool);
  for (int i = 0; i < 100; ++i)
    batch.submit([&] { count.fetch_add(1); });
  batch.wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, ParallelForCoversRange) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(pool, hits.size(),
               [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForZeroIsNoop) {
  ThreadPool pool(2);
  parallel_for(pool, 0, [](std::size_t) { FAIL(); });
}

TEST(ThreadPool, ParallelForFewerItemsThanThreads) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(3);
  parallel_for(pool, hits.size(),
               [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForPropagatesException) {
  ThreadPool pool(2);
  EXPECT_THROW(parallel_for(pool, 64,
                            [](std::size_t i) {
                              if (i == 33)
                                throw std::runtime_error("boom");
                            }),
               std::runtime_error);
}

// "First one wins": with a single failing index the propagated
// exception is necessarily that one; the throw aborts only the rest
// of its own chunk, other chunks still complete, and the pool stays
// usable for the next batch.
TEST(ThreadPool, ExceptionFirstOneWinsAndPoolSurvives) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  try {
    parallel_for(pool, 64, [&](std::size_t i) {
      if (i == 33) throw std::runtime_error("boom-33");
      count.fetch_add(1);
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom-33");
  }
  // All chunks but the throwing one's tail ran: with 2 threads the
  // 64 indices split into 8 chunks of 8, so at most 7 more indices
  // (the remainder of the failing chunk) can be skipped.
  EXPECT_GE(count.load(), 64 - 8);
  EXPECT_LT(count.load(), 64);
  std::atomic<int> again{0};
  parallel_for(pool, 8, [&](std::size_t) { again.fetch_add(1); });
  EXPECT_EQ(again.load(), 8);
}

// Per-batch completion: a batch's wait() returns once *its own* tasks
// finish, even while another client's tasks sit blocked on the same
// pool. The old pool-wide wait_idle() hung here forever.
TEST(ThreadPool, OverlappingBatchesWaitOnlyForTheirOwnWork) {
  ThreadPool pool(4);
  std::mutex gate_mutex;
  std::condition_variable gate_cv;
  bool gate_open = false;
  std::atomic<int> blocked{0};

  ThreadPool::Batch slow(pool);
  for (int i = 0; i < 2; ++i)
    slow.submit([&] {
      blocked.fetch_add(1);
      std::unique_lock lock(gate_mutex);
      gate_cv.wait(lock, [&] { return gate_open; });
    });
  while (blocked.load() < 2) std::this_thread::yield();

  std::atomic<int> quick{0};
  parallel_for(pool, 16, [&](std::size_t) { quick.fetch_add(1); });
  EXPECT_EQ(quick.load(), 16);

  {
    std::lock_guard lock(gate_mutex);
    gate_open = true;
  }
  gate_cv.notify_all();
  slow.wait();
}

// Nested parallel_for on the same pool runs inline on the calling
// worker instead of deadlocking a saturated pool.
TEST(ThreadPool, NestedParallelForRunsInline) {
  ThreadPool pool(2);
  std::vector<std::atomic<int>> hits(64);
  parallel_for(pool, 8, [&](std::size_t outer) {
    EXPECT_TRUE(pool.on_worker_thread());
    parallel_for(pool, 8, [&](std::size_t inner) {
      hits[outer * 8 + inner].fetch_add(1);
    });
  });
  EXPECT_FALSE(pool.on_worker_thread());
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

// Constructing a Batch on a worker of its own pool is the deadlock
// shape the nested-submit safety check rejects.
TEST(ThreadPool, BatchOnOwnWorkerAsserts) {
  ThreadPool pool(1);
  std::atomic<bool> threw{false};
  ThreadPool::Batch batch(pool);
  batch.submit([&] {
    try {
      ThreadPool::Batch nested(pool);
    } catch (const std::logic_error&) {
      threw.store(true);
    }
  });
  batch.wait();
  EXPECT_TRUE(threw.load());
}

TEST(ThreadPool, TransientHelper) {
  std::atomic<long> sum{0};
  parallel_for(500, [&](std::size_t i) {
    sum.fetch_add(static_cast<long>(i));
  });
  EXPECT_EQ(sum.load(), 500L * 499L / 2);
}

}  // namespace
}  // namespace gm
