// RNG and distribution tests: determinism, bounds, and statistical
// shape checks with generous tolerances (fixed seeds, so no flakes).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "util/assert.hpp"
#include "util/distributions.hpp"
#include "util/rng.hpp"

namespace gm {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 1000; ++i)
    if (a.next() == b.next()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformU64Bounded) {
  Rng rng(11);
  for (std::uint64_t n : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 2000; ++i) EXPECT_LT(rng.uniform_u64(n), n);
  }
}

TEST(Rng, UniformU64CoversAllValues) {
  Rng rng(13);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_u64(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(17);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.uniform_int(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= v == -2;
    saw_hi |= v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(19);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(23);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, ForkIndependentOfParentConsumption) {
  // fork(key) depends only on the parent's current state; two
  // identically-seeded parents give identical children.
  Rng a(5), b(5);
  Rng ca = a.fork(1), cb = b.fork(1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(ca.next(), cb.next());
}

TEST(Rng, ForkDifferentKeysDiffer) {
  Rng a(5);
  Rng c1 = a.fork(1), c2 = a.fork(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (c1.next() == c2.next()) ++same;
  EXPECT_LT(same, 2);
}

TEST(MixHash, DeterministicAndSpread) {
  EXPECT_EQ(mix_hash(1, 2), mix_hash(1, 2));
  EXPECT_NE(mix_hash(1, 2), mix_hash(2, 1));
  std::set<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < 1000; ++i) seen.insert(mix_hash(42, i));
  EXPECT_EQ(seen.size(), 1000u);
}

// ---------------------------------------------------------------------
// Distributions

TEST(Distributions, ExponentialMoments) {
  Rng rng(31);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += sample_exponential(rng, 2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Distributions, ExponentialRejectsBadRate) {
  Rng rng(1);
  EXPECT_THROW(sample_exponential(rng, 0.0), InvalidArgument);
  EXPECT_THROW(sample_exponential(rng, -1.0), InvalidArgument);
}

TEST(Distributions, NormalMoments) {
  Rng rng(37);
  double sum = 0.0, sq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = sample_normal(rng, 3.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 3.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.15);
}

TEST(Distributions, LognormalMedian) {
  Rng rng(41);
  std::vector<double> xs(20001);
  for (auto& x : xs) x = sample_lognormal(rng, 2.0, 0.7);
  std::nth_element(xs.begin(), xs.begin() + 10000, xs.end());
  EXPECT_NEAR(xs[10000], std::exp(2.0), 0.3);
}

TEST(Distributions, WeibullMean) {
  Rng rng(43);
  // k=2, λ=1 → mean = Γ(1.5) = √π/2 ≈ 0.8862.
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += sample_weibull(rng, 2.0, 1.0);
  EXPECT_NEAR(sum / n, 0.8862, 0.02);
}

TEST(Distributions, PoissonSmallMean) {
  Rng rng(47);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i)
    sum += static_cast<double>(sample_poisson(rng, 3.5));
  EXPECT_NEAR(sum / n, 3.5, 0.1);
}

TEST(Distributions, PoissonLargeMean) {
  Rng rng(53);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i)
    sum += static_cast<double>(sample_poisson(rng, 200.0));
  EXPECT_NEAR(sum / n, 200.0, 2.0);
}

TEST(Distributions, PoissonZeroMean) {
  Rng rng(59);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(sample_poisson(rng, 0.0), 0);
}

TEST(Zipf, PmfSumsToOne) {
  ZipfSampler zipf(100, 1.0);
  double sum = 0.0;
  for (std::size_t k = 0; k < zipf.size(); ++k) sum += zipf.pmf(k);
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(Zipf, RankZeroMostPopular) {
  ZipfSampler zipf(1000, 0.9);
  EXPECT_GT(zipf.pmf(0), zipf.pmf(1));
  EXPECT_GT(zipf.pmf(1), zipf.pmf(10));
  EXPECT_GT(zipf.pmf(10), zipf.pmf(999));
}

TEST(Zipf, EmpiricalMatchesPmf) {
  ZipfSampler zipf(50, 1.2);
  Rng rng(61);
  std::vector<int> counts(50, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[zipf(rng)];
  for (std::size_t k : {0u, 1u, 5u, 20u}) {
    EXPECT_NEAR(static_cast<double>(counts[k]) / n, zipf.pmf(k),
                0.01)
        << "rank " << k;
  }
}

TEST(Zipf, UniformWhenExponentZero) {
  ZipfSampler zipf(10, 0.0);
  for (std::size_t k = 0; k < 10; ++k)
    EXPECT_NEAR(zipf.pmf(k), 0.1, 1e-9);
}

TEST(Nhpp, CountMatchesIntegratedRate) {
  Rng rng(67);
  // rate(t) = 2 + sin-free ramp: mean count = ∫ rate over [0, 1000].
  const auto rate = [](double t) { return 2.0 + t / 1000.0; };
  double total = 0.0;
  const int reps = 50;
  for (int i = 0; i < reps; ++i)
    total += static_cast<double>(
        sample_nhpp(rng, 0.0, 1000.0, 3.0, rate).size());
  EXPECT_NEAR(total / reps, 2500.0, 60.0);
}

TEST(Nhpp, SortedAndInRange) {
  Rng rng(71);
  const auto arr =
      sample_nhpp(rng, 10.0, 20.0, 5.0, [](double) { return 4.0; });
  EXPECT_TRUE(std::is_sorted(arr.begin(), arr.end()));
  for (double t : arr) {
    EXPECT_GE(t, 10.0);
    EXPECT_LT(t, 20.0);
  }
}

TEST(Nhpp, EmptyIntervalYieldsNothing) {
  Rng rng(73);
  EXPECT_TRUE(
      sample_nhpp(rng, 5.0, 5.0, 1.0, [](double) { return 1.0; })
          .empty());
  // Inverted windows are a caller bug and rejected loudly.
  Rng rng2(73);
  EXPECT_THROW(
      sample_nhpp(rng2, 9.0, 5.0, 1.0, [](double) { return 1.0; }),
      InvalidArgument);
}

TEST(Nhpp, RateHittingZeroMidWindowThinsEverythingThere) {
  // rate drops to 0 on [400, 600): thinning must accept no arrival in
  // the dead zone while still producing arrivals on both sides.
  Rng rng(79);
  const auto rate = [](double t) {
    return (t >= 400.0 && t < 600.0) ? 0.0 : 2.0;
  };
  const auto arr = sample_nhpp(rng, 0.0, 1000.0, 2.0, rate);
  ASSERT_FALSE(arr.empty());
  bool before = false, after = false;
  for (double t : arr) {
    EXPECT_FALSE(t >= 400.0 && t < 600.0) << "arrival in zero-rate zone";
    before |= t < 400.0;
    after |= t >= 600.0;
  }
  EXPECT_TRUE(before);
  EXPECT_TRUE(after);
}

TEST(Nhpp, TightRateMaxBoundAcceptsEveryCandidate) {
  // When rate == rate_max everywhere, thinning accepts every
  // candidate: the NHPP degenerates to a plain Poisson process whose
  // count matches rate_max * |window|.
  Rng rng(83);
  double total = 0.0;
  const int reps = 40;
  for (int i = 0; i < reps; ++i)
    total += static_cast<double>(
        sample_nhpp(rng, 0.0, 500.0, 3.0, [](double) { return 3.0; })
            .size());
  EXPECT_NEAR(total / reps, 1500.0, 30.0);
}

TEST(Nhpp, CrossSeedDeterminismAndDivergence) {
  const auto rate = [](double t) { return 1.0 + 0.5 * (t > 100.0); };
  Rng a(89), b(89), c(97);
  const auto ra = sample_nhpp(a, 0.0, 400.0, 1.5, rate);
  const auto rb = sample_nhpp(b, 0.0, 400.0, 1.5, rate);
  const auto rc = sample_nhpp(c, 0.0, 400.0, 1.5, rate);
  ASSERT_EQ(ra.size(), rb.size());
  for (std::size_t i = 0; i < ra.size(); ++i)
    EXPECT_DOUBLE_EQ(ra[i], rb[i]);
  bool differs = ra.size() != rc.size();
  for (std::size_t i = 0; !differs && i < ra.size(); ++i)
    differs = ra[i] != rc[i];
  EXPECT_TRUE(differs);
}

// Determinism across all distributions, parameterized by seed.
class SeedDeterminism : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeedDeterminism, StreamsReproduce) {
  const std::uint64_t seed = GetParam();
  Rng a(seed), b(seed);
  for (int i = 0; i < 50; ++i) {
    EXPECT_DOUBLE_EQ(sample_exponential(a, 1.5),
                     sample_exponential(b, 1.5));
    EXPECT_DOUBLE_EQ(sample_normal(a), sample_normal(b));
    EXPECT_DOUBLE_EQ(sample_weibull(a, 2.0, 3.0),
                     sample_weibull(b, 2.0, 3.0));
    EXPECT_EQ(sample_poisson(a, 8.0), sample_poisson(b, 8.0));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedDeterminism,
                         ::testing::Values(0ULL, 1ULL, 42ULL, 1234ULL,
                                           0xdeadbeefULL,
                                           UINT64_MAX));

}  // namespace
}  // namespace gm
