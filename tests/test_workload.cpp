// Workload generator and trace serialization tests.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/assert.hpp"
#include "workload/generator.hpp"
#include "workload/trace.hpp"

namespace gm::workload {
namespace {

WorkloadSpec tiny_spec(int days = 2, std::uint64_t seed = 7) {
  WorkloadSpec spec = WorkloadSpec::canonical(days, seed);
  spec.foreground.base_rate_per_s = 0.5;  // keep tests fast
  return spec;
}

TEST(Generator, DeterministicPerSeed) {
  const Workload a = generate_workload(tiny_spec(), 128);
  const Workload b = generate_workload(tiny_spec(), 128);
  ASSERT_EQ(a.requests.size(), b.requests.size());
  ASSERT_EQ(a.tasks.size(), b.tasks.size());
  for (std::size_t i = 0; i < a.requests.size(); ++i) {
    EXPECT_EQ(a.requests[i].arrival, b.requests[i].arrival);
    EXPECT_EQ(a.requests[i].object, b.requests[i].object);
    EXPECT_EQ(a.requests[i].size_bytes, b.requests[i].size_bytes);
  }
  const Workload c = generate_workload(tiny_spec(2, 8), 128);
  EXPECT_NE(a.requests.size(), c.requests.size());
}

TEST(Generator, RequestsSortedAndInRange) {
  const Workload w = generate_workload(tiny_spec(), 128);
  EXPECT_TRUE(std::is_sorted(
      w.requests.begin(), w.requests.end(),
      [](const auto& a, const auto& b) { return a.arrival < b.arrival; }));
  for (const auto& r : w.requests) {
    EXPECT_GE(r.arrival, 0);
    EXPECT_LT(r.arrival, w.duration);
    EXPECT_GE(r.size_bytes, 512u);
  }
}

TEST(Generator, RequestCountTracksRateAndDuration) {
  WorkloadSpec spec = tiny_spec(4);
  const Workload w = generate_workload(spec, 128);
  // Mean diurnal multiplier ≈ 0.93 by construction of the default
  // profile; accept a broad band.
  const double expected =
      spec.foreground.base_rate_per_s * 4 * 86400.0;
  EXPECT_GT(static_cast<double>(w.requests.size()), expected * 0.5);
  EXPECT_LT(static_cast<double>(w.requests.size()), expected * 1.3);

  const Workload longer = generate_workload(tiny_spec(8), 128);
  EXPECT_GT(longer.requests.size(), w.requests.size());
}

TEST(Generator, DiurnalShapePresent) {
  WorkloadSpec spec = tiny_spec(7);
  spec.foreground.base_rate_per_s = 2.0;
  const Workload w = generate_workload(spec, 128);
  // Afternoon (12–18 h) should out-arrive night (0–6 h) clearly.
  std::int64_t day_hits = 0, night_hits = 0;
  for (const auto& r : w.requests) {
    const double hour =
        static_cast<double>(r.arrival % 86400) / 3600.0;
    if (hour >= 12.0 && hour < 18.0) ++day_hits;
    if (hour < 6.0) ++night_hits;
  }
  EXPECT_GT(day_hits, night_hits * 2);
}

TEST(Generator, ReadWriteMixMatchesSpec) {
  WorkloadSpec spec = tiny_spec(4);
  spec.foreground.read_fraction = 0.8;
  spec.foreground.base_rate_per_s = 2.0;
  const Workload w = generate_workload(spec, 128);
  std::int64_t reads = 0;
  for (const auto& r : w.requests) reads += !r.is_write;
  EXPECT_NEAR(static_cast<double>(reads) /
                  static_cast<double>(w.requests.size()),
              0.8, 0.03);
}

TEST(Generator, PopularitySkewed) {
  WorkloadSpec spec = tiny_spec(4);
  spec.foreground.base_rate_per_s = 3.0;
  spec.foreground.object_count = 10000;
  spec.foreground.zipf_exponent = 1.1;
  const Workload w = generate_workload(spec, 128);
  std::unordered_map<storage::ObjectId, int> counts;
  for (const auto& r : w.requests) ++counts[r.object];
  // Top object should carry far more than the mean.
  int top = 0;
  for (const auto& [o, c] : counts) top = std::max(top, c);
  const double mean_count = static_cast<double>(w.requests.size()) /
                            static_cast<double>(counts.size());
  EXPECT_GT(top, mean_count * 5);
}

TEST(Generator, TasksRespectInvariants) {
  const Workload w = generate_workload(tiny_spec(3), 64);
  EXPECT_FALSE(w.tasks.empty());
  for (const auto& t : w.tasks) {
    EXPECT_GE(t.release, 0);
    EXPECT_GE(t.work_s, 60.0);
    EXPECT_GE(t.deadline,
              t.release + static_cast<SimTime>(t.work_s));
    EXPECT_GT(t.utilization, 0.0);
    EXPECT_LE(t.utilization, 1.0);
    EXPECT_LT(t.group, 64u);
  }
  EXPECT_TRUE(std::is_sorted(
      w.tasks.begin(), w.tasks.end(),
      [](const auto& a, const auto& b) { return a.release < b.release; }));
}

TEST(Generator, BackupsReleasedInWindow) {
  const Workload w = generate_workload(tiny_spec(5), 64);
  for (const auto& t : w.tasks) {
    if (t.type != storage::TaskType::kBackup) continue;
    const double hour =
        static_cast<double>(t.release % 86400) / 3600.0;
    EXPECT_GE(hour, 18.0);
    EXPECT_LT(hour, 23.0);
  }
}

TEST(Generator, TaskVolumeScalesWithRate) {
  WorkloadSpec base = tiny_spec(4);
  WorkloadSpec doubled = base;
  for (auto& c : doubled.task_classes) c.mean_per_day *= 2.0;
  const auto w1 = generate_workload(base, 64);
  const auto w2 = generate_workload(doubled, 64);
  EXPECT_GT(w2.tasks.size(), w1.tasks.size() * 3 / 2);
}

TEST(Generator, MixesDiffer) {
  const auto canonical = generate_workload(
      WorkloadSpec::canonical(2, 1), 64);
  const auto read_heavy = generate_workload(
      WorkloadSpec::read_heavy(2, 1), 64);
  const auto backup_heavy = generate_workload(
      WorkloadSpec::backup_heavy(2, 1), 64);
  EXPECT_GT(read_heavy.requests.size(), canonical.requests.size());
  EXPECT_LT(read_heavy.tasks.size(), canonical.tasks.size());

  const auto count_backups = [](const Workload& w) {
    return std::count_if(w.tasks.begin(), w.tasks.end(),
                         [](const auto& t) {
                           return t.type == storage::TaskType::kBackup;
                         });
  };
  EXPECT_GT(count_backups(backup_heavy), count_backups(canonical));
}

TEST(Generator, TelemetryHelpers) {
  const Workload w = generate_workload(tiny_spec(2), 64);
  EXPECT_GT(w.total_bytes(), 0u);
  EXPECT_GT(w.total_task_work_s(), 0.0);
}

TEST(Generator, ValidatesInput) {
  EXPECT_THROW(generate_workload(tiny_spec(), 0), InvalidArgument);
  WorkloadSpec bad = tiny_spec();
  bad.duration_days = 0;
  EXPECT_THROW(generate_workload(bad, 64), InvalidArgument);
  bad = tiny_spec();
  bad.foreground.read_fraction = 2.0;
  EXPECT_THROW(generate_workload(bad, 64), InvalidArgument);
}

// --------------------------------------------------------------- Trace

TEST(Trace, RoundTripExact) {
  const Workload original = generate_workload(tiny_spec(2), 64);
  std::ostringstream os;
  write_trace(os, original);
  const Workload loaded = read_trace(os.str());

  ASSERT_EQ(loaded.requests.size(), original.requests.size());
  for (std::size_t i = 0; i < original.requests.size(); ++i) {
    const auto& a = original.requests[i];
    const auto& b = loaded.requests[i];
    EXPECT_EQ(a.id, b.id);
    EXPECT_EQ(a.arrival, b.arrival);
    EXPECT_EQ(a.object, b.object);
    EXPECT_EQ(a.size_bytes, b.size_bytes);
    EXPECT_EQ(a.is_write, b.is_write);
  }
  ASSERT_EQ(loaded.tasks.size(), original.tasks.size());
  for (std::size_t i = 0; i < original.tasks.size(); ++i) {
    const auto& a = original.tasks[i];
    const auto& b = loaded.tasks[i];
    EXPECT_EQ(a.id, b.id);
    EXPECT_EQ(a.type, b.type);
    EXPECT_EQ(a.release, b.release);
    EXPECT_EQ(a.deadline, b.deadline);
    EXPECT_DOUBLE_EQ(a.work_s, b.work_s);
    EXPECT_DOUBLE_EQ(a.utilization, b.utilization);
    EXPECT_EQ(a.group, b.group);
  }
}

TEST(Trace, FileRoundTrip) {
  const Workload original = generate_workload(tiny_spec(1), 32);
  const std::string path = "/tmp/gm_trace_test.csv";
  write_trace_file(path, original);
  const Workload loaded = read_trace_file(path);
  EXPECT_EQ(loaded.requests.size(), original.requests.size());
  EXPECT_EQ(loaded.tasks.size(), original.tasks.size());
}

TEST(Trace, RejectsMalformedRows) {
  EXPECT_THROW(read_trace("kind,id,t0,a,b,c,d,e\nX,1,2,3,4,5,6,7\n"),
               InvalidArgument);
  EXPECT_THROW(read_trace("R,1,2\n"), InvalidArgument);
  EXPECT_THROW(read_trace(""), InvalidArgument);
  // Bad task type.
  EXPECT_THROW(read_trace("T,1,0,99,10,60,0.5,0\n"), InvalidArgument);
}

TEST(Trace, MissingFileThrows) {
  EXPECT_THROW(read_trace_file("/nonexistent/trace.csv"), RuntimeError);
}

}  // namespace
}  // namespace gm::workload
