#!/usr/bin/env python3
"""Validate a Chrome trace-event JSON file emitted by the GreenMatch
recorder (--chrome-trace=FILE).

Stdlib only — CI loads the trace exactly the way Perfetto's legacy
JSON importer does (one json.load) and checks the subset of the Trace
Event Format the simulator emits:

  * top level: an object with a "traceEvents" list
  * every event: an object with "ph" in {"X", "C", "M"} and int pids
  * "X" (complete) events: name, ts, dur >= 0
  * "C" (counter) events: name, ts, args object with numeric values
  * "M" (metadata) events: name + args

Usage: check_chrome_trace.py <trace.json> [--min-events=N]
Exit codes: 0 valid, 1 invalid, 2 usage/IO error.
"""

import json
import sys

REQUIRED_PH = {"X", "C", "M"}


def fail(msg: str) -> None:
    print(f"check_chrome_trace: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main(argv: list) -> None:
    if len(argv) < 2:
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    path = argv[1]
    min_events = 1
    for arg in argv[2:]:
        if arg.startswith("--min-events="):
            min_events = int(arg.split("=", 1)[1])
        else:
            print(f"unexpected argument: {arg}", file=sys.stderr)
            sys.exit(2)

    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        fail(f"cannot load {path}: {e}")

    if not isinstance(doc, dict) or "traceEvents" not in doc:
        fail("top level must be an object with a 'traceEvents' key")
    events = doc["traceEvents"]
    if not isinstance(events, list):
        fail("'traceEvents' must be a list")

    counts = {"X": 0, "C": 0, "M": 0}
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            fail(f"{where}: event is not an object")
        ph = ev.get("ph")
        if ph not in REQUIRED_PH:
            fail(f"{where}: ph={ph!r} not in {sorted(REQUIRED_PH)}")
        if not isinstance(ev.get("pid"), int):
            fail(f"{where}: pid missing or not an int")
        if not isinstance(ev.get("name"), str) or not ev["name"]:
            fail(f"{where}: name missing or empty")
        if ph == "X":
            for key in ("ts", "dur"):
                if not isinstance(ev.get(key), (int, float)):
                    fail(f"{where}: {key} missing or not numeric")
            if ev["dur"] < 0:
                fail(f"{where}: negative dur {ev['dur']}")
        elif ph == "C":
            if not isinstance(ev.get("ts"), (int, float)):
                fail(f"{where}: ts missing or not numeric")
            args = ev.get("args")
            if not isinstance(args, dict) or not args:
                fail(f"{where}: counter args missing or empty")
            for k, v in args.items():
                if not isinstance(v, (int, float)):
                    fail(f"{where}: args[{k!r}] not numeric")
        else:  # "M"
            if not isinstance(ev.get("args"), dict):
                fail(f"{where}: metadata args missing")
        counts[ph] += 1

    total = sum(counts.values())
    if total < min_events:
        fail(f"only {total} events, expected at least {min_events}")
    print(
        f"check_chrome_trace: OK: {total} events "
        f"({counts['X']} spans, {counts['C']} counters, "
        f"{counts['M']} metadata)"
    )


if __name__ == "__main__":
    main(sys.argv)
