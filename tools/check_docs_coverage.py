#!/usr/bin/env python3
"""Checks that every src/ subsystem is referenced from the docs.

Companion to check_md_links.py (which checks that links resolve; this
checks that the docs actually cover the tree). Every immediate
subdirectory of src/ — util, core, metrics, ... — must be mentioned as
`src/<name>` somewhere in at least one docs/*.md page, so a new
subsystem cannot land without at least a pointer from the docs, and a
renamed one cannot leave stale coverage behind unnoticed. Mentions
inside code fences count: docs routinely cite subsystem paths in
command and layout listings, and those are coverage too.

Exits non-zero listing every uncovered subsystem. Stdlib only, so CI
needs nothing but python3.
"""

import re
import sys
from pathlib import Path


def main() -> int:
    root = Path(__file__).resolve().parent.parent
    subsystems = sorted(
        p.name for p in (root / "src").iterdir() if p.is_dir())
    docs = sorted((root / "docs").glob("*.md"))
    if not subsystems or not docs:
        print("nothing to check (no src/ subdirs or no docs/*.md)")
        return 1

    text = "\n".join(d.read_text(encoding="utf-8") for d in docs)
    uncovered = [
        name for name in subsystems
        # `src/<name>` followed by a path separator, word boundary, or
        # end — so src/sim does not count as coverage of src/simXYZ.
        if not re.search(rf"src/{re.escape(name)}\b", text)
    ]
    if uncovered:
        print("src/ subsystems not referenced by any docs/*.md page:")
        for name in uncovered:
            print(f"  src/{name}/")
        print("add at least a pointer (docs/architecture.md lists the "
              "subsystem map)")
        return 1
    print(f"{len(subsystems)} src/ subsystems covered by "
          f"{len(docs)} docs pages")
    return 0


if __name__ == "__main__":
    sys.exit(main())
