#!/usr/bin/env python3
"""Checks that every relative markdown link in the repo resolves.

Scans all *.md files (build trees and dot-directories excluded),
extracts inline links, ignores external URLs and same-file anchors,
and verifies the linked file or directory exists. Exits non-zero
listing every broken link. Stdlib only, so CI needs nothing but
python3.
"""

import re
import sys
from pathlib import Path

LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
FENCE = re.compile(r"```.*?```", re.S)
EXTERNAL = ("http://", "https://", "mailto:")


def md_files(root: Path):
    for path in sorted(root.rglob("*.md")):
        parts = path.relative_to(root).parts
        if any(p.startswith((".", "build")) for p in parts[:-1]):
            continue
        yield path


def main() -> int:
    root = Path(__file__).resolve().parent.parent
    broken = []
    checked = 0
    for md in md_files(root):
        text = FENCE.sub("", md.read_text(encoding="utf-8"))
        for match in LINK.finditer(text):
            target = match.group(1)
            if target.startswith(EXTERNAL):
                continue
            path = target.split("#", 1)[0]
            if not path:  # same-file anchor
                continue
            checked += 1
            if not (md.parent / path).resolve().exists():
                broken.append(f"{md.relative_to(root)}: {target}")
    if broken:
        print("broken markdown links:")
        for entry in broken:
            print(f"  {entry}")
        return 1
    print(f"{checked} relative links OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
